/// \file session_multiplexer.hpp
/// Concurrent driver for thousands of live simulation sessions.
///
/// Production framing (ROADMAP north star): every tenant/workload is one
/// sim::Session — a fleet of k >= 1 servers — streaming its own request
/// sequence; the multiplexer shards the live sessions across a
/// parallel::ThreadPool and advances them in rounds. The API is
/// drain/step/snapshot/checkpoint:
///   * step(k)     — advance every live session by up to k steps;
///   * drain()     — run every session to the end of its workload;
///   * snapshot()  — per-session accounting (costs, progress, positions);
///   * checkpoint()/restore() — capture/resume every session's full engine
///     + algorithm state so a long-running service survives restarts
///     bit-identically (trace/checkpoint.hpp serialises to disk).
///
/// Determinism: each session's state lives in its own slot and is touched
/// only by whichever worker drew that slot; no cross-session state exists,
/// and every algorithm is seeded explicitly. Results are therefore
/// bit-identical for ANY thread count, including 1 — covered by tests.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "sim/session.hpp"

namespace mobsrv::core {

/// One tenant's workload: which algorithm serves which request sequence
/// under which engine options. The instance is shared (read-only) so a
/// corpus replayed by k algorithms stores its coordinates once.
struct SessionSpec {
  std::shared_ptr<const sim::Instance> workload;  ///< never null
  std::string algorithm;                          ///< alg::make_fleet_algorithm name
  std::uint64_t algo_seed = 0;
  double speed_factor = 1.0;
  sim::SpeedLimitPolicy policy = sim::SpeedLimitPolicy::kThrow;
  std::string tenant;  ///< free-form accounting label (may be empty)
  /// Fleet size; single-server names require 1, fleet-native strategies
  /// accept any k >= 1.
  std::size_t fleet_size = 1;
  /// Explicit start layout (size fleet_size, dimensions matching the
  /// workload). Empty = every server starts at workload->start(); use
  /// ext::spread_starts for a circular layout.
  std::vector<sim::Point> starts;
};

/// Per-session accounting snapshot.
struct SessionStats {
  std::string tenant;
  std::string algorithm;
  std::size_t steps = 0;      ///< steps consumed so far
  std::size_t horizon = 0;    ///< workload length
  bool done = false;          ///< steps == horizon
  std::size_t fleet_size = 1;
  double total_cost = 0.0;
  double move_cost = 0.0;
  double service_cost = 0.0;
  sim::Point position;                       ///< first server's position
  std::vector<sim::Point> positions;         ///< every server's position
  std::vector<double> per_server_move_cost;  ///< move split by server
};

/// Aggregate accounting over all sessions.
struct MuxTotals {
  std::size_t sessions = 0;
  std::size_t live = 0;
  std::size_t steps = 0;  ///< total steps consumed across sessions
  double total_cost = 0.0;
  double move_cost = 0.0;
  double service_cost = 0.0;
};

/// Everything needed to resume one multiplexed session: the spec identity
/// binding it to its slot (verified on restore — a checkpoint applied to
/// the wrong spec fails loudly) plus the engine checkpoint.
struct SessionCheckpointRecord {
  std::string tenant;
  std::string algorithm;
  std::uint64_t algo_seed = 0;
  std::size_t cursor = 0;   ///< workload steps consumed
  std::size_t horizon = 0;  ///< workload length at save time
  sim::SessionCheckpoint engine;
};

class SessionMultiplexer {
 public:
  /// \p grain is the number of consecutive sessions one pool task advances
  /// (scheduling only — results never depend on it).
  explicit SessionMultiplexer(par::ThreadPool& pool, std::size_t grain = 16);
  ~SessionMultiplexer();

  SessionMultiplexer(const SessionMultiplexer&) = delete;
  SessionMultiplexer& operator=(const SessionMultiplexer&) = delete;

  /// Registers a session (constructing its algorithm from the fleet
  /// registry) and returns its dense id. Sessions never record
  /// position/trace history — memory stays O(1) per session regardless of
  /// horizon.
  std::size_t add(SessionSpec spec);

  [[nodiscard]] std::size_t size() const noexcept;
  /// Sessions that have not yet consumed their whole workload.
  [[nodiscard]] std::size_t live() const noexcept;

  /// Advances every live session by up to \p max_steps steps, in parallel.
  /// Returns the number of sessions still live afterwards. Exceptions from
  /// any session (e.g. a kThrow speed violation) propagate to the caller.
  std::size_t step(std::size_t max_steps = 1);

  /// Runs every session to completion.
  void drain();

  [[nodiscard]] SessionStats stats(std::size_t id) const;
  [[nodiscard]] std::vector<SessionStats> snapshot() const;
  [[nodiscard]] MuxTotals totals() const;

  /// Captures every session's full state (one record per slot, in id
  /// order). Serialise with trace::write_checkpoint to survive restarts.
  [[nodiscard]] std::vector<SessionCheckpointRecord> checkpoint() const;

  /// Resumes a checkpoint taken from a multiplexer with the SAME sessions
  /// added in the same order (workloads are re-supplied by the specs — a
  /// checkpoint stores engine state, not request data). Verifies each
  /// record against its slot's spec (algorithm, seed, tenant, horizon,
  /// fleet size) and fails loudly on any mismatch. After restore the mux
  /// continues bit-identically to one that was never interrupted.
  void restore(const std::vector<SessionCheckpointRecord>& records);

 private:
  struct Slot;
  par::ThreadPool& pool_;
  std::size_t grain_;
  std::vector<std::unique_ptr<Slot>> slots_;
  std::size_t live_ = 0;
};

}  // namespace mobsrv::core
