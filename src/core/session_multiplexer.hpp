/// \file session_multiplexer.hpp
/// Concurrent driver for thousands of live simulation sessions.
///
/// Production framing (ROADMAP north star): every tenant/workload is one
/// sim::Session — a fleet of k >= 1 servers — streaming its own request
/// sequence; the multiplexer shards the live sessions across a
/// parallel::ThreadPool and advances them in rounds. The API is
/// drain/step/snapshot/checkpoint:
///   * step(k)     — advance every live session by up to k steps;
///   * step_capturing(k, errors) — same, but a throwing session closes only
///     its own slot (the service front-end's loud-error discipline);
///   * drain() / drain(id) — run every (or one) session to the end of its
///     workload;
///   * close(id)   — release one session, caching its final accounting;
///   * snapshot()  — per-session accounting (costs, progress, positions);
///   * checkpoint()/restore() — capture/resume every session's full engine
///     + algorithm state so a long-running service survives restarts
///     bit-identically (trace/checkpoint.hpp serialises to disk).
///
/// Workloads may grow in place between rounds (serve/ appends arriving
/// request batches to each tenant's Instance); step()/drain() re-evaluate
/// done-ness against the current horizons on entry.
///
/// Determinism: each session's state lives in its own slot and is touched
/// only by whichever worker drew that slot; no cross-session state exists,
/// and every algorithm is seeded explicitly. Results are therefore
/// bit-identical for ANY thread count, including 1 — covered by tests.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "parallel/thread_pool.hpp"
#include "sim/session.hpp"

namespace mobsrv::core {

/// One tenant's workload: which algorithm serves which request sequence
/// under which engine options. The instance is shared (read-only) so a
/// corpus replayed by k algorithms stores its coordinates once.
struct SessionSpec {
  std::shared_ptr<const sim::Instance> workload;  ///< never null
  std::string algorithm;                          ///< alg::make_fleet_algorithm name
  std::uint64_t algo_seed = 0;
  double speed_factor = 1.0;
  sim::SpeedLimitPolicy policy = sim::SpeedLimitPolicy::kThrow;
  std::string tenant;  ///< free-form accounting label (may be empty)
  /// Fleet size; single-server names require 1, fleet-native strategies
  /// accept any k >= 1.
  std::size_t fleet_size = 1;
  /// Explicit start layout (size fleet_size, dimensions matching the
  /// workload). Empty = every server starts at workload->start(); use
  /// ext::spread_starts for a circular layout.
  std::vector<sim::Point> starts;
};

/// Per-session accounting snapshot.
struct SessionStats {
  std::string tenant;
  std::string algorithm;
  std::size_t steps = 0;      ///< steps consumed so far
  std::size_t horizon = 0;    ///< workload length
  bool done = false;          ///< steps == horizon
  bool closed = false;        ///< slot was close()d (final accounting cached)
  std::size_t fleet_size = 1;
  double total_cost = 0.0;
  double move_cost = 0.0;
  double service_cost = 0.0;
  sim::Point position;                       ///< first server's position
  std::vector<sim::Point> positions;         ///< every server's position
  std::vector<double> per_server_move_cost;  ///< move split by server
};

/// Aggregate accounting over all sessions.
struct MuxTotals {
  std::size_t sessions = 0;
  std::size_t live = 0;
  std::size_t closed = 0;  ///< slots released via close()
  std::size_t steps = 0;   ///< total steps consumed across sessions
  double total_cost = 0.0;
  double move_cost = 0.0;
  double service_cost = 0.0;
  /// Pending workload steps summed over open sessions (horizon - cursor):
  /// the live queue depth the ROADMAP's million-session item asks for.
  std::size_t queue_depth = 0;
  /// Wall time of each step()/step_capturing()/drain() round, ns. Empty
  /// when timing is disabled (set_timing_enabled(false) / serve --lean).
  obs::HistogramSummary step_latency;
  /// Steps consumed per session — open sessions' cursors merged with the
  /// final step counts of every close()d session, so aggregate percentiles
  /// survive tenant churn instead of vanishing with the slot's engine.
  obs::HistogramSummary steps_per_session;
};

/// Everything needed to resume one multiplexed session: the spec identity
/// binding it to its slot (verified on restore — a checkpoint applied to
/// the wrong spec fails loudly) plus the engine checkpoint.
struct SessionCheckpointRecord {
  std::string tenant;
  std::string algorithm;
  std::uint64_t algo_seed = 0;
  std::size_t cursor = 0;   ///< workload steps consumed
  std::size_t horizon = 0;  ///< workload length at save time
  sim::SessionCheckpoint engine;
};

class SessionMultiplexer {
 public:
  /// \p grain is the number of consecutive sessions one pool task advances
  /// (scheduling only — results never depend on it).
  explicit SessionMultiplexer(par::ThreadPool& pool, std::size_t grain = 16);
  ~SessionMultiplexer();

  SessionMultiplexer(const SessionMultiplexer&) = delete;
  SessionMultiplexer& operator=(const SessionMultiplexer&) = delete;

  /// Registers a session (constructing its algorithm from the fleet
  /// registry) and returns its dense id. Sessions never record
  /// position/trace history — memory stays O(1) per session regardless of
  /// horizon. Sessions may be added at any time between step() calls.
  std::size_t add(SessionSpec spec);

  [[nodiscard]] std::size_t size() const noexcept;
  /// Sessions that have not yet consumed their whole workload, as of the
  /// last add/step/drain/close. A workload Instance that gained steps since
  /// then (the streaming ingestion path grows them in place) is re-evaluated
  /// by the next step()/drain() call, not here.
  [[nodiscard]] std::size_t live() const noexcept;

  /// Advances every live session by up to \p max_steps steps, in parallel.
  /// Returns the number of sessions still live afterwards. Exceptions from
  /// any session (e.g. a kThrow speed violation) propagate to the caller.
  /// Workloads may grow between (never during) calls: done-ness is
  /// re-evaluated against the current horizons on entry.
  std::size_t step(std::size_t max_steps = 1);

  /// One failure captured by step_capturing.
  struct SlotError {
    std::size_t id = 0;
    std::string message;
  };

  /// Like step(), but a session that throws (e.g. a kThrow speed violation)
  /// never takes the whole round down: the offending slot's error is
  /// appended to \p errors, that slot alone is closed (final accounting
  /// cached, engine released), and every other session advances normally.
  /// The service front-end steps through this so one misbehaving tenant
  /// cannot kill the process.
  std::size_t step_capturing(std::size_t max_steps, std::vector<SlotError>& errors);

  /// Runs every session to completion.
  void drain();

  /// Runs session \p id alone to the end of its current workload on the
  /// calling thread (the per-tenant drain hook: e.g. a service consuming a
  /// tenant's queued requests before closing it). No-op on closed slots.
  void drain(std::size_t id);

  /// Closes session \p id: the engine and algorithm are destroyed (memory
  /// released), the final accounting is cached so stats()/totals() keep
  /// reporting it, and the slot is skipped by step/drain/checkpoint from now
  /// on. Ids of other sessions are unaffected; closing twice is a no-op.
  void close(std::size_t id);
  [[nodiscard]] bool closed(std::size_t id) const;

  [[nodiscard]] SessionStats stats(std::size_t id) const;
  [[nodiscard]] std::vector<SessionStats> snapshot() const;
  [[nodiscard]] MuxTotals totals() const;

  /// Captures every OPEN session's full state (one record per open slot, in
  /// id order; closed slots are gone and leave no record). Serialise with
  /// trace::write_checkpoint to survive restarts.
  [[nodiscard]] std::vector<SessionCheckpointRecord> checkpoint() const;

  /// Round wall-time timing (obs layer). On by default — the cost is two
  /// clock reads plus one histogram increment per *round*, amortised over
  /// every session the round advances (the obs/overhead perf row pins it
  /// within 2% of the lean path even at one session per round). Timing is
  /// observational only: results are bit-identical either way (§7).
  void set_timing_enabled(bool enabled) noexcept { timing_ = enabled; }
  [[nodiscard]] bool timing_enabled() const noexcept { return timing_; }

  /// Distribution of per-round wall times (ns) recorded so far.
  [[nodiscard]] const obs::Histogram& step_latency_histogram() const noexcept {
    return step_latency_;
  }
  /// Final step counts of close()d sessions (the churn-surviving half of
  /// MuxTotals::steps_per_session; totals() folds open cursors on top).
  [[nodiscard]] const obs::Histogram& closed_steps_histogram() const noexcept {
    return closed_steps_;
  }

  /// Resumes a checkpoint taken from a multiplexer with the SAME open
  /// sessions in the same order (workloads are re-supplied by the specs — a
  /// checkpoint stores engine state, not request data). Verifies each
  /// record against its slot's spec (algorithm, seed, tenant, horizon,
  /// fleet size) and fails loudly on any mismatch. After restore the mux
  /// continues bit-identically to one that was never interrupted.
  void restore(const std::vector<SessionCheckpointRecord>& records);

 private:
  struct Slot;
  void refresh_live();
  /// slot.close() + the closed-steps histogram carry (satellite of the
  /// telemetry layer: per-slot activity must survive close()).
  void close_slot(Slot& slot);

  par::ThreadPool& pool_;
  std::size_t grain_;
  std::vector<std::unique_ptr<Slot>> slots_;
  std::size_t live_ = 0;
  bool timing_ = true;
  obs::Histogram step_latency_;  ///< per-round wall ns (when timing_)
  obs::Histogram closed_steps_;  ///< final step count of each closed slot
};

}  // namespace mobsrv::core
