/// \file session_multiplexer.hpp
/// Concurrent driver for up to millions of live simulation sessions.
///
/// Production framing (ROADMAP north star): every tenant/workload is one
/// sim::Session — a fleet of k >= 1 servers — streaming its own request
/// sequence; the multiplexer shards the live sessions across a
/// parallel::ThreadPool and advances them in rounds. The API is
/// drain/step/snapshot/checkpoint:
///   * step(k)     — advance every READY session by up to k steps;
///   * step_capturing(k, errors) — same, but a throwing session closes only
///     its own slot (the service front-end's loud-error discipline);
///   * drain() / drain(id) — run every (or one) session to the end of its
///     workload;
///   * close(id)   — release one session, caching its final accounting;
///   * snapshot()  — per-session accounting (costs, progress, positions);
///   * checkpoint()/restore() — capture/resume every session's full engine
///     + algorithm state so a long-running service survives restarts
///     bit-identically (trace/checkpoint.hpp serialises to disk).
///
/// ## Active-set scheduling
///
/// Rounds cost O(active), not O(sessions): the multiplexer keeps an
/// intrusive ready-list of slots with pending workload steps. A slot is
/// armed when it is added with work, re-armed by poke() or by the
/// empty-ready rescan (below), and parked again the moment it has consumed
/// its whole workload. step()/step_capturing() touch ready slots only —
/// with a million parked sessions and a thousand hot ones, a round costs a
/// thousand advances, not a million done() checks.
///
/// Workloads may grow in place between rounds (serve/ appends arriving
/// request batches to each tenant's Instance). Growth is detected two ways:
///   * poke(id) — the streaming front-end calls this after appending a
///     batch; O(1), idempotent, safe on parked/done/closed slots;
///   * the empty-ready rescan — a step()/drain() call that finds the ready
///     list empty rescans every slot and arms whatever grew. This keeps the
///     historical "step() re-evaluates done-ness on entry" contract for
///     callers that never poke, at O(sessions) only when the mux was idle.
/// A parked slot that grew while OTHER slots were still ready is not seen
/// until the ready set drains (or it is poked) — live()/step() report the
/// armed set, and totals() reports the true pending count.
///
/// ## Per-tenant rate limits
///
/// SessionSpec::rate is a token bucket: a limited slot accumulates
/// steps_per_round tokens each round (capped at burst) and may only advance
/// while it holds >= 1 whole token. A round that grants a limited slot
/// fewer steps than it wanted is a THROTTLED round: counted per slot
/// (SessionStats::throttled_rounds) and mux-wide (MuxTotals::throttled).
/// Throttled slots stay on the ready list — they park only when their
/// workload is consumed. drain() ignores rate limits (it is the terminal
/// "finish everything" operation); a slot re-armed from parked starts with
/// a full bucket. Token state is scheduling-only: it never touches engine
/// state, so results stay bit-identical for any thread count.
///
/// ## Priorities
///
/// SessionSpec::priority (mutable via set_priority) orders work dispatch
/// within a round: higher-priority slots are placed first in the round's
/// worker schedule, so the serve layer can favour tenants with deep queues.
/// Every ready slot still advances every round — priority affects dispatch
/// order only, and results are bit-identical regardless of priorities.
///
/// ## Dirty-slot tracking
///
/// Every slot remembers the cursor of its last checkpoint (mark_saved());
/// dirty_slots() lists the open slots that stepped since. checkpoint_slot()
/// serialises one slot, so periodic saves cost O(progress since last save)
/// instead of O(sessions) — the serve layer's incremental MSRVSS2 segments
/// are built on these three calls.
///
/// Determinism: each session's state lives in its own slot and is touched
/// only by whichever worker drew that slot; no cross-session state exists,
/// and every algorithm is seeded explicitly. Results are therefore
/// bit-identical for ANY thread count, including 1 — covered by tests.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "parallel/thread_pool.hpp"
#include "sim/session.hpp"

namespace mobsrv::core {

/// Token-bucket rate limit for one session. Zero steps_per_round means
/// unlimited (the default); a limited session accumulates steps_per_round
/// tokens per scheduler round, holds at most burst, and spends one token
/// per workload step. Fractional rates are meaningful: 0.5 is one step
/// every other round. burst == 0 defaults to max(1, steps_per_round);
/// an explicit burst must be >= 1 (a bucket that can never hold a whole
/// token would starve the session forever).
struct RateLimit {
  double steps_per_round = 0.0;  ///< tokens gained per round; 0 = unlimited
  double burst = 0.0;            ///< token cap; 0 = max(1, steps_per_round)
};

/// One tenant's workload: which algorithm serves which request sequence
/// under which engine options. The instance is shared (read-only) so a
/// corpus replayed by k algorithms stores its coordinates once.
struct SessionSpec {
  std::shared_ptr<const sim::Instance> workload;  ///< never null
  std::string algorithm;                          ///< alg::make_fleet_algorithm name
  std::uint64_t algo_seed = 0;
  double speed_factor = 1.0;
  sim::SpeedLimitPolicy policy = sim::SpeedLimitPolicy::kThrow;
  std::string tenant;  ///< free-form accounting label (may be empty)
  /// Fleet size; single-server names require 1, fleet-native strategies
  /// accept any k >= 1.
  std::size_t fleet_size = 1;
  /// Explicit start layout (size fleet_size, dimensions matching the
  /// workload). Empty = every server starts at workload->start(); use
  /// ext::spread_starts for a circular layout.
  std::vector<sim::Point> starts;
  /// Scheduler token bucket (see RateLimit). Enforced by step()/
  /// step_capturing(); ignored by drain().
  RateLimit rate;
  /// Dispatch priority within a round (higher first; ties by slot id).
  /// Scheduling-only — results are identical for any priority assignment.
  double priority = 0.0;
};

/// Per-session accounting snapshot.
struct SessionStats {
  std::string tenant;
  std::string algorithm;
  std::size_t steps = 0;      ///< steps consumed so far
  std::size_t horizon = 0;    ///< workload length
  bool done = false;          ///< steps == horizon
  bool closed = false;        ///< slot was close()d (final accounting cached)
  std::size_t fleet_size = 1;
  double total_cost = 0.0;
  double move_cost = 0.0;
  double service_cost = 0.0;
  /// Rounds in which the rate limiter granted fewer steps than the session
  /// wanted (0 forever on unlimited sessions).
  std::size_t throttled_rounds = 0;
  sim::Point position;                       ///< first server's position
  std::vector<sim::Point> positions;         ///< every server's position
  std::vector<double> per_server_move_cost;  ///< move split by server
};

/// Aggregate accounting over all sessions.
struct MuxTotals {
  std::size_t sessions = 0;
  /// Open sessions with pending workload steps right now (horizon > cursor,
  /// re-evaluated on every totals() call — unlike live(), this sees parked
  /// slots whose workloads grew without a poke()).
  std::size_t live = 0;
  /// Sessions armed on the ready list — the slots the next round will
  /// actually touch. active <= live; the difference is parked-but-grown
  /// slots awaiting a poke()/rescan.
  std::size_t active = 0;
  std::size_t closed = 0;  ///< slots released via close()
  std::size_t steps = 0;   ///< total steps consumed across sessions
  /// Cumulative throttled session-rounds (see SessionStats::throttled_rounds)
  /// summed over the multiplexer's lifetime, closed slots included.
  std::uint64_t throttled = 0;
  double total_cost = 0.0;
  double move_cost = 0.0;
  double service_cost = 0.0;
  /// Pending workload steps summed over open sessions (horizon - cursor):
  /// the live queue depth the ROADMAP's million-session item asks for.
  std::size_t queue_depth = 0;
  /// Wall time of each step()/step_capturing()/drain() round, ns. Empty
  /// when timing is disabled (set_timing_enabled(false) / serve --lean).
  obs::HistogramSummary step_latency;
  /// Steps consumed per session — open sessions' cursors merged with the
  /// final step counts of every close()d session, so aggregate percentiles
  /// survive tenant churn instead of vanishing with the slot's engine.
  obs::HistogramSummary steps_per_session;
};

/// Everything needed to resume one multiplexed session: the spec identity
/// binding it to its slot (verified on restore — a checkpoint applied to
/// the wrong spec fails loudly) plus the engine checkpoint.
struct SessionCheckpointRecord {
  std::string tenant;
  std::string algorithm;
  std::uint64_t algo_seed = 0;
  std::size_t cursor = 0;   ///< workload steps consumed
  std::size_t horizon = 0;  ///< workload length at save time
  sim::SessionCheckpoint engine;
};

class SessionMultiplexer {
 public:
  /// \p grain is the number of consecutive ready sessions one pool task
  /// advances (scheduling only — results never depend on it).
  explicit SessionMultiplexer(par::ThreadPool& pool, std::size_t grain = 16);
  ~SessionMultiplexer();

  SessionMultiplexer(const SessionMultiplexer&) = delete;
  SessionMultiplexer& operator=(const SessionMultiplexer&) = delete;

  /// Registers a session (constructing its algorithm from the fleet
  /// registry) and returns its dense id. Sessions never record
  /// position/trace history — memory stays O(1) per session regardless of
  /// horizon. Sessions may be added at any time between step() calls; a
  /// session with pending work is armed immediately.
  std::size_t add(SessionSpec spec);

  [[nodiscard]] std::size_t size() const noexcept;
  /// Sessions currently armed on the ready list, as of the last
  /// add/poke/step/drain/close. A parked slot whose workload grew since
  /// (the streaming ingestion path grows Instances in place) is re-armed by
  /// poke() or by the next step()/drain() that finds the ready list empty —
  /// totals().live reports the true pending count either way.
  [[nodiscard]] std::size_t live() const noexcept;
  /// Alias for live(): the size of the ready set — the slots the next
  /// round will touch (the "active" half of the active/parked split).
  [[nodiscard]] std::size_t active() const noexcept { return live(); }

  /// Re-arms session \p id after its workload grew in place. O(1) and
  /// idempotent: a no-op on closed, already-armed, or still-done slots.
  /// The streaming front-end calls this after every appended batch so
  /// rounds never need to rescan the full population.
  void poke(std::size_t id);

  /// Updates session \p id's dispatch priority (see SessionSpec::priority).
  void set_priority(std::size_t id, double priority);

  /// Advances every ready session by up to \p max_steps steps (less where a
  /// rate limit bites), in parallel. Returns the number of sessions still
  /// ready afterwards. Exceptions from any session (e.g. a kThrow speed
  /// violation) propagate to the caller. Workloads may grow between (never
  /// during) calls: an empty ready list triggers a full rescan on entry, so
  /// an idle multiplexer always notices growth even without poke().
  std::size_t step(std::size_t max_steps = 1);

  /// One failure captured by step_capturing.
  struct SlotError {
    std::size_t id = 0;
    std::string message;
  };

  /// Like step(), but a session that throws (e.g. a kThrow speed violation)
  /// never takes the whole round down: the offending slot's error is
  /// appended to \p errors, that slot alone is closed (final accounting
  /// cached, engine released), and every other session advances normally.
  /// The service front-end steps through this so one misbehaving tenant
  /// cannot kill the process.
  std::size_t step_capturing(std::size_t max_steps, std::vector<SlotError>& errors);

  /// Runs every session to completion — rate limits are ignored (this is
  /// the terminal "consume everything" operation) and every slot with
  /// pending work is advanced, armed or parked (a full rescan on entry).
  void drain();

  /// Runs session \p id alone to the end of its current workload on the
  /// calling thread (the per-tenant drain hook: e.g. a service consuming a
  /// tenant's queued requests before closing it). No-op on closed slots.
  /// Ignores the slot's rate limit.
  void drain(std::size_t id);

  /// Closes session \p id: the engine and algorithm are destroyed (memory
  /// released), the final accounting is cached so stats()/totals() keep
  /// reporting it, and the slot is skipped by step/drain/checkpoint from now
  /// on. Ids of other sessions are unaffected; closing twice is a no-op.
  void close(std::size_t id);
  [[nodiscard]] bool closed(std::size_t id) const;

  [[nodiscard]] SessionStats stats(std::size_t id) const;
  [[nodiscard]] std::vector<SessionStats> snapshot() const;
  [[nodiscard]] MuxTotals totals() const;

  /// Captures every OPEN session's full state (one record per open slot, in
  /// id order; closed slots are gone and leave no record). Serialise with
  /// trace::write_checkpoint to survive restarts.
  [[nodiscard]] std::vector<SessionCheckpointRecord> checkpoint() const;

  /// Captures ONE open session's state — the incremental-checkpoint
  /// building block: serialising only dirty_slots() makes a periodic save
  /// cost O(progress since last save).
  [[nodiscard]] SessionCheckpointRecord checkpoint_slot(std::size_t id) const;

  /// Open slots that consumed steps since the last mark_saved() (a fresh
  /// slot is dirty until its first save). The scan is O(sessions) but each
  /// check is one integer compare; serialisation — the expensive part — is
  /// O(dirty).
  [[nodiscard]] std::vector<std::size_t> dirty_slots() const;

  /// Declares the current state saved: every open slot's cursor becomes its
  /// saved cursor, emptying dirty_slots(). Call after the bytes are safely
  /// on disk, never before.
  void mark_saved();

  /// Round wall-time timing (obs layer). On by default — the cost is two
  /// clock reads plus one histogram increment per *round*, amortised over
  /// every session the round advances (the obs/overhead perf row pins it
  /// within 2% of the lean path even at one session per round). Timing is
  /// observational only: results are bit-identical either way (§7).
  void set_timing_enabled(bool enabled) noexcept { timing_ = enabled; }
  [[nodiscard]] bool timing_enabled() const noexcept { return timing_; }

  /// Distribution of per-round wall times (ns) recorded so far.
  [[nodiscard]] const obs::Histogram& step_latency_histogram() const noexcept {
    return step_latency_;
  }
  /// Final step counts of close()d sessions (the churn-surviving half of
  /// MuxTotals::steps_per_session; totals() folds open cursors on top).
  [[nodiscard]] const obs::Histogram& closed_steps_histogram() const noexcept {
    return closed_steps_;
  }

  /// Resumes a checkpoint taken from a multiplexer with the SAME open
  /// sessions in the same order (workloads are re-supplied by the specs — a
  /// checkpoint stores engine state, not request data). Verifies each
  /// record against its slot's spec (algorithm, seed, tenant, horizon,
  /// fleet size) and fails loudly on any mismatch. After restore the mux
  /// continues bit-identically to one that was never interrupted; the
  /// ready list is rebuilt from the restored cursors and rate-limit
  /// buckets restart full (token state is scheduling-only).
  void restore(const std::vector<SessionCheckpointRecord>& records);

 private:
  struct Slot;
  /// Arms one slot if it is open, unarmed, and has pending work; a slot
  /// armed from parked starts with a full token bucket.
  void arm(std::size_t id);
  /// Arms every pending slot (the growth fallback and drain()'s entry scan).
  void rescan();
  /// Compacts stale ready entries, orders the round by priority, and
  /// computes each ready slot's per-round step grant from its token bucket.
  void prepare_round(std::size_t max_steps);
  /// Refills token buckets, parks finished slots, recounts live_.
  std::size_t finish_round();
  /// slot.close() + the closed-steps histogram carry (satellite of the
  /// telemetry layer: per-slot activity must survive close()).
  void close_slot(Slot& slot);

  par::ThreadPool& pool_;
  std::size_t grain_;
  std::vector<std::unique_ptr<Slot>> slots_;
  std::vector<std::size_t> ready_ids_;  ///< the active set (armed slots)
  std::size_t live_ = 0;                ///< == ready count after each op
  std::uint64_t throttled_total_ = 0;   ///< lifetime throttled session-rounds
  bool has_priority_ = false;           ///< any nonzero priority ever seen
  bool timing_ = true;
  obs::Histogram step_latency_;  ///< per-round wall ns (when timing_)
  obs::Histogram closed_steps_;  ///< final step count of each closed slot
};

}  // namespace mobsrv::core
