#include "core/audit.hpp"

#include <algorithm>
#include <cmath>

#include "adversary/workloads.hpp"
#include "algorithms/move_to_center.hpp"
#include "median/geometric_median.hpp"

namespace mobsrv::core {

using geo::Point;

Lemma6Sample sample_lemma6(int dim, double delta, stats::Rng& rng) {
  MOBSRV_CHECK(dim >= 1 && delta > 0.0 && delta <= 1.0);
  // Geometry: PAlg and c random; P'Alg on the segment [PAlg, c]; P'Opt at
  // distance s2 from c with s2 within the premise bound.
  const Point p_alg = adv::gaussian_around(Point::zero(dim), 10.0, rng);
  const Point c = adv::gaussian_around(Point::zero(dim), 10.0, rng);
  const double a_total = geo::distance(p_alg, c);
  const double f = rng.uniform();
  const Point p_alg_next = geo::lerp(p_alg, c, f);

  Lemma6Sample s;
  s.a1 = f * a_total;
  s.a2 = (1.0 - f) * a_total;
  const double premise_cap = std::sqrt(delta) / (1.0 + delta / 2.0) * s.a2;
  s.s2 = rng.uniform() * premise_cap;
  const Point p_opt_next = c + adv::random_unit_vector(dim, rng) * s.s2;

  s.h = geo::distance(p_opt_next, p_alg);
  s.q = geo::distance(p_opt_next, p_alg_next);
  s.bound = (1.0 + delta / 2.0) / (1.0 + delta) * s.a1;
  s.margin = (s.h - s.q) - s.bound;
  return s;
}

Lemma5Sample sample_lemma5(int dim, std::size_t r, double half_width, stats::Rng& rng) {
  MOBSRV_CHECK(dim >= 1 && r >= 1 && half_width > 0.0);
  std::vector<Point> requests;
  requests.reserve(r);
  for (std::size_t i = 0; i < r; ++i) {
    Point v(dim);
    for (int d = 0; d < dim; ++d) v[d] = rng.uniform(-half_width, half_width);
    requests.push_back(v);
  }
  Point a(dim), o(dim);
  for (int d = 0; d < dim; ++d) {
    a[d] = rng.uniform(-half_width, half_width);
    o[d] = rng.uniform(-half_width, half_width);
  }
  const Point c = med::closest_center(requests, a);

  Lemma5Sample s;
  s.service_at_center = med::sum_distances(c, requests);
  s.service_at_opt = med::sum_distances(o, requests);
  s.simplified_opt = static_cast<double>(r) * geo::distance(o, c);
  return s;
}

double potential(const PotentialConfig& config, double p) {
  const double r = static_cast<double>(config.requests);
  const double D = config.move_cost_weight;
  const double m = config.max_step;
  const double delta = config.delta;
  const double threshold = delta * D * m / (4.0 * r);
  // Coefficients double in the r <= D regime (Section 4.2).
  const double quad = (r > D ? 8.0 : 16.0) * r / (delta * m);
  const double lin = r > D ? 2.0 * D : 4.0 * D;
  return p > threshold ? quad * p * p : lin * p;
}

PotentialSample sample_potential_step(const PotentialConfig& config, stats::Rng& rng) {
  MOBSRV_CHECK(config.dim >= 1 && config.delta > 0.0 && config.delta <= 1.0);
  MOBSRV_CHECK(config.move_cost_weight >= 1.0 && config.max_step > 0.0);
  MOBSRV_CHECK(config.requests >= 1);
  const double m = config.max_step;
  const double D = config.move_cost_weight;
  const double r = static_cast<double>(config.requests);
  const double delta = config.delta;

  // Sample p (the Opt–Alg distance) so that all analysis cases are hit:
  // below/above the potential threshold δDm/(4r), around the 4m boundary of
  // cases 4/5, and far away.
  const double threshold = delta * D * m / (4.0 * r);
  double p = 0.0;
  switch (rng.uniform_int(0, 3)) {
    case 0: p = rng.uniform() * threshold; break;
    case 1: p = threshold + rng.uniform() * (4.0 * m - threshold); break;
    case 2: p = 4.0 * m * (1.0 + rng.uniform()); break;
    default: p = rng.uniform() * 40.0 * m; break;
  }

  const Point p_alg = Point::zero(config.dim);
  const Point p_opt = p_alg + adv::random_unit_vector(config.dim, rng) * p;
  // Request point c at a distance spanning "reachable this round" through
  // "far away".
  const double dc = rng.uniform() * 30.0 * m;
  const Point c = p_alg + adv::random_unit_vector(config.dim, rng) * dc;

  // OPT's move: feasible (s1 <= m); mix of adversarial strategies.
  Point p_opt_next = p_opt;
  switch (rng.uniform_int(0, 2)) {
    case 0:  // stay
      break;
    case 1:  // chase c at full speed
      p_opt_next = geo::move_toward(p_opt, c, m);
      break;
    default:  // random feasible move
      p_opt_next = p_opt + adv::random_unit_vector(config.dim, rng) * (rng.uniform() * m);
      break;
  }

  // MtC's actual move rule with augmentation (1+δ)m toward c.
  const double dist = geo::distance(p_alg, c);
  const double step = std::min(alg::MoveToCenter::damped_step(config.requests, D, dist),
                               (1.0 + delta) * m);
  const Point p_alg_next = geo::move_toward(p_alg, c, step);

  PotentialSample s;
  const double a1 = geo::distance(p_alg, p_alg_next);
  const double a2 = geo::distance(p_alg_next, c);
  const double s1 = geo::distance(p_opt, p_opt_next);
  const double s2 = geo::distance(p_opt_next, c);
  s.online_cost = D * a1 + r * a2;
  s.opt_cost = D * s1 + r * s2;
  s.phi_before = potential(config, geo::distance(p_opt, p_alg));
  s.phi_after = potential(config, geo::distance(p_opt_next, p_alg_next));
  return s;
}

}  // namespace mobsrv::core
