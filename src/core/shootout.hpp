/// \file shootout.hpp
/// Head-to-head comparison of online strategies on shared instances.
///
/// Each trial samples ONE instance, computes ONE offline proxy, and runs
/// every contender on it — so per-trial noise cancels in the comparison and
/// "who wins" is meaningful even with few trials.
#pragma once

#include <string>
#include <vector>

#include "core/ratio.hpp"

namespace mobsrv::core {

/// Per-algorithm aggregate over the shared trials.
struct ShootoutRow {
  std::string name;
  stats::Summary cost;    ///< total online cost per trial
  stats::Summary ratio;   ///< cost / offline proxy per trial
  int wins = 0;           ///< trials where this algorithm was strictly cheapest
};

/// Runs the named algorithms (see alg::make_algorithm) over shared sampled
/// instances. Options' oracle/trials/speed_factor apply as in
/// estimate_ratio.
[[nodiscard]] std::vector<ShootoutRow> shootout(par::ThreadPool& pool,
                                                const std::vector<std::string>& names,
                                                const SampleFn& sample,
                                                const RatioOptions& options);

}  // namespace mobsrv::core
