/// \file mobsrv.hpp
/// Umbrella header: the whole public API of the Mobile Server Problem
/// library. Examples include just this.
#pragma once

#include "adversary/lower_bounds.hpp"     // IWYU pragma: export
#include "adversary/mobility.hpp"         // IWYU pragma: export
#include "adversary/moving_client_lb.hpp" // IWYU pragma: export
#include "adversary/workloads.hpp"        // IWYU pragma: export
#include "algorithms/baselines.hpp"       // IWYU pragma: export
#include "algorithms/move_to_center.hpp"  // IWYU pragma: export
#include "algorithms/registry.hpp"        // IWYU pragma: export
#include "core/audit.hpp"                 // IWYU pragma: export
#include "core/ratio.hpp"                 // IWYU pragma: export
#include "core/session_multiplexer.hpp"   // IWYU pragma: export
#include "core/shootout.hpp"              // IWYU pragma: export
#include "ext/multi_server.hpp"           // IWYU pragma: export
#include "geometry/aabb.hpp"              // IWYU pragma: export
#include "geometry/point.hpp"             // IWYU pragma: export
#include "geometry/segment.hpp"           // IWYU pragma: export
#include "io/args.hpp"                    // IWYU pragma: export
#include "io/json.hpp"                    // IWYU pragma: export
#include "io/table.hpp"                   // IWYU pragma: export
#include "median/geometric_median.hpp"    // IWYU pragma: export
#include "obs/journal.hpp"                // IWYU pragma: export
#include "obs/metrics.hpp"                // IWYU pragma: export
#include "opt/brute_force.hpp"            // IWYU pragma: export
#include "opt/convex_descent.hpp"         // IWYU pragma: export
#include "opt/coordinate_descent.hpp"     // IWYU pragma: export
#include "opt/grid_dp.hpp"                // IWYU pragma: export
#include "parallel/parallel_for.hpp"      // IWYU pragma: export
#include "scenario/scenario.hpp"          // IWYU pragma: export
#include "scenario/tournament.hpp"        // IWYU pragma: export
#include "sim/engine.hpp"                 // IWYU pragma: export
#include "sim/fleet.hpp"                  // IWYU pragma: export
#include "sim/moving_client.hpp"          // IWYU pragma: export
#include "sim/session.hpp"                // IWYU pragma: export
#include "stats/bootstrap.hpp"            // IWYU pragma: export
#include "stats/regression.hpp"           // IWYU pragma: export
#include "trace/batch_runner.hpp"         // IWYU pragma: export
#include "trace/checkpoint.hpp"           // IWYU pragma: export
#include "trace/codec.hpp"                // IWYU pragma: export
#include "trace/corpus.hpp"               // IWYU pragma: export
#include "trace/recorder.hpp"             // IWYU pragma: export
#include "trace/replay.hpp"               // IWYU pragma: export
#include "trace/trace.hpp"                // IWYU pragma: export
