#include "core/session_multiplexer.hpp"

#include <algorithm>
#include <limits>

#include "algorithms/registry.hpp"
#include "parallel/parallel_for.hpp"

namespace mobsrv::core {

namespace {

/// Sentinel saved-cursor: a slot that was never checkpointed is dirty.
constexpr std::size_t kNeverSaved = std::numeric_limits<std::size_t>::max();

/// The start layout a spec describes: explicit positions when given,
/// otherwise fleet_size copies of the workload's start.
std::vector<sim::Point> spec_starts(const SessionSpec& spec) {
  MOBSRV_CHECK_MSG(spec.fleet_size >= 1, "session needs at least one server");
  if (!spec.starts.empty()) {
    MOBSRV_CHECK_MSG(spec.starts.size() == spec.fleet_size,
                     "spec.starts must match spec.fleet_size");
    for (const sim::Point& start : spec.starts)
      MOBSRV_CHECK_MSG(start.dim() == spec.workload->dim(),
                       "spec.starts dimension does not match the workload");
    return spec.starts;
  }
  return std::vector<sim::Point>(spec.fleet_size, spec.workload->start());
}

sim::RunOptions spec_options(const SessionSpec& spec) {
  sim::RunOptions options;
  options.speed_factor = spec.speed_factor;
  options.policy = spec.policy;
  options.record_positions = false;  // O(1) memory per session
  options.record_trace = false;
  return options;
}

}  // namespace

/// All state of one live session. Owned via unique_ptr so slot addresses are
/// stable (Session keeps a pointer to the algorithm; workers touch only
/// their own slots). The engine half lives behind its own pointer so
/// close() can release it while the slot keeps its identity and cached
/// accounting.
struct SessionMultiplexer::Slot {
  /// The releasable half: algorithm + session (session pins a pointer to
  /// the algorithm, so they live and die together).
  struct Engine {
    Engine(const SessionSpec& spec, sim::FleetAlgorithmPtr algorithm_in,
           const sim::RunOptions& options)
        : algorithm(std::move(algorithm_in)),
          session(spec_starts(spec), spec.workload->params(), *algorithm, options) {}

    /// Restore form: resumes the session from a checkpoint record.
    Engine(sim::FleetAlgorithmPtr algorithm_in, const SessionCheckpointRecord& record)
        : algorithm(std::move(algorithm_in)), session(record.engine, *algorithm) {}

    sim::FleetAlgorithmPtr algorithm;
    sim::Session session;
  };

  Slot(SessionSpec spec_in, sim::FleetAlgorithmPtr algorithm_in, const sim::RunOptions& options)
      : spec(std::move(spec_in)),
        engine(std::make_unique<Engine>(spec, std::move(algorithm_in), options)) {}

  SessionSpec spec;
  std::unique_ptr<Engine> engine;  ///< null once close()d
  std::size_t cursor = 0;          ///< next workload step to reveal
  std::size_t saved_cursor = kNeverSaved;  ///< cursor at the last mark_saved()
  SessionStats final_stats;        ///< cached accounting, set by close()
  std::string error;               ///< set by a guarded advance on throw
  // --- scheduler state (touched only between rounds or by this slot's
  // worker; never by another slot's) ---
  bool ready = false;              ///< armed on the ready list
  std::size_t take = 0;            ///< steps granted for the current round
  double tokens = 0.0;             ///< rate-limit bucket (meaningful iff limited())
  double burst = 0.0;              ///< normalised bucket cap (>= 1 iff limited())
  std::size_t throttled_rounds = 0;

  [[nodiscard]] bool open() const noexcept { return engine != nullptr; }

  [[nodiscard]] bool limited() const noexcept { return spec.rate.steps_per_round > 0.0; }

  [[nodiscard]] bool done() const noexcept {
    return !open() || cursor >= spec.workload->horizon();
  }

  /// Pending workload steps right now.
  [[nodiscard]] std::size_t pending() const noexcept {
    if (!open()) return 0;
    const std::size_t horizon = spec.workload->horizon();
    return horizon > cursor ? horizon - cursor : 0;
  }

  void advance(std::size_t max_steps) {
    const std::size_t horizon = spec.workload->horizon();
    for (std::size_t k = 0; k < max_steps && cursor < horizon; ++k, ++cursor)
      engine->session.push(spec.workload->step(cursor));
  }

  /// advance() under a try/catch: a throwing session records its error in
  /// the slot (collected and closed after the join) instead of unwinding
  /// through the pool.
  void advance_guarded(std::size_t max_steps) {
    try {
      advance(max_steps);
    } catch (const std::exception& failure) {
      error = failure.what();
    }
  }

  /// Live accounting snapshot (requires an open engine).
  [[nodiscard]] SessionStats live_stats() const {
    SessionStats stats;
    stats.tenant = spec.tenant;
    stats.algorithm = spec.algorithm;
    stats.steps = cursor;
    stats.horizon = spec.workload->horizon();
    stats.done = done();
    stats.fleet_size = engine->session.fleet_size();
    stats.total_cost = engine->session.total_cost();
    stats.move_cost = engine->session.move_cost();
    stats.service_cost = engine->session.service_cost();
    stats.throttled_rounds = throttled_rounds;
    stats.position = engine->session.position();
    stats.positions = engine->session.fleet();
    stats.per_server_move_cost.reserve(engine->session.fleet_size());
    for (std::size_t i = 0; i < engine->session.fleet_size(); ++i)
      stats.per_server_move_cost.push_back(engine->session.server_move_cost(i));
    return stats;
  }

  /// Caches the final accounting and releases the engine.
  void close() {
    if (!open()) return;
    final_stats = live_stats();
    final_stats.closed = true;
    engine.reset();
  }

  /// Serialises this slot's resumable state (requires an open engine).
  [[nodiscard]] SessionCheckpointRecord checkpoint_record() const {
    SessionCheckpointRecord record;
    record.tenant = spec.tenant;
    record.algorithm = spec.algorithm;
    record.algo_seed = spec.algo_seed;
    record.cursor = cursor;
    record.horizon = spec.workload->horizon();
    record.engine = engine->session.save();
    return record;
  }
};

SessionMultiplexer::SessionMultiplexer(par::ThreadPool& pool, std::size_t grain)
    : pool_(pool), grain_(grain == 0 ? 1 : grain) {}

SessionMultiplexer::~SessionMultiplexer() = default;

std::size_t SessionMultiplexer::add(SessionSpec spec) {
  MOBSRV_CHECK_MSG(spec.workload != nullptr, "session needs a workload");
  MOBSRV_CHECK_MSG(spec.rate.steps_per_round >= 0.0, "rate limit cannot be negative");
  if (spec.rate.steps_per_round > 0.0) {
    MOBSRV_CHECK_MSG(spec.rate.burst == 0.0 || spec.rate.burst >= 1.0,
                     "rate-limit burst must be >= 1 token (or 0 for the default)");
  } else {
    MOBSRV_CHECK_MSG(spec.rate.burst == 0.0, "rate-limit burst needs steps_per_round > 0");
  }
  sim::FleetAlgorithmPtr algorithm = alg::make_fleet_algorithm(spec.algorithm, spec.algo_seed);
  const sim::RunOptions options = spec_options(spec);
  if (spec.priority != 0.0) has_priority_ = true;
  slots_.push_back(std::make_unique<Slot>(std::move(spec), std::move(algorithm), options));
  Slot& slot = *slots_.back();
  if (slot.limited())
    slot.burst = slot.spec.rate.burst > 0.0 ? slot.spec.rate.burst
                                            : std::max(1.0, slot.spec.rate.steps_per_round);
  arm(slots_.size() - 1);
  return slots_.size() - 1;
}

std::size_t SessionMultiplexer::size() const noexcept { return slots_.size(); }

std::size_t SessionMultiplexer::live() const noexcept { return live_; }

void SessionMultiplexer::arm(std::size_t id) {
  Slot& slot = *slots_[id];
  if (slot.ready || !slot.open() || slot.pending() == 0) return;
  // Re-armed from parked: the bucket refilled while the slot sat idle.
  if (slot.limited()) slot.tokens = slot.burst;
  slot.ready = true;
  ready_ids_.push_back(id);
  ++live_;
}

void SessionMultiplexer::rescan() {
  for (std::size_t i = 0; i < slots_.size(); ++i) arm(i);
}

void SessionMultiplexer::poke(std::size_t id) {
  MOBSRV_CHECK(id < slots_.size());
  arm(id);
}

void SessionMultiplexer::set_priority(std::size_t id, double priority) {
  MOBSRV_CHECK(id < slots_.size());
  slots_[id]->spec.priority = priority;
  if (priority != 0.0) has_priority_ = true;
}

void SessionMultiplexer::prepare_round(std::size_t max_steps) {
  // Compact entries that went stale since they were armed (closed or
  // individually drained slots cleared their flag in place).
  std::size_t keep = 0;
  for (const std::size_t id : ready_ids_) {
    Slot& slot = *slots_[id];
    if (!slot.ready) continue;
    if (slot.pending() == 0) {
      slot.ready = false;
      continue;
    }
    ready_ids_[keep++] = id;
  }
  ready_ids_.resize(keep);
  live_ = keep;
  // Priority orders dispatch only; the id tiebreak keeps the order total,
  // so the round schedule is deterministic. Skipped entirely while every
  // priority is the default 0.
  if (has_priority_) {
    std::sort(ready_ids_.begin(), ready_ids_.end(), [this](std::size_t a, std::size_t b) {
      const double pa = slots_[a]->spec.priority;
      const double pb = slots_[b]->spec.priority;
      if (pa != pb) return pa > pb;
      return a < b;
    });
  }
  // Token math is single-threaded and pre-round: workers only ever read
  // their own slot's grant.
  for (const std::size_t id : ready_ids_) {
    Slot& slot = *slots_[id];
    const std::size_t desired = std::min(max_steps, slot.pending());
    if (slot.limited()) {
      const auto whole = static_cast<std::size_t>(slot.tokens);  // floor, tokens >= 0
      slot.take = std::min(desired, whole);
      if (slot.take < desired) {
        ++slot.throttled_rounds;
        ++throttled_total_;
      }
    } else {
      slot.take = desired;
    }
  }
}

std::size_t SessionMultiplexer::finish_round() {
  std::size_t keep = 0;
  for (const std::size_t id : ready_ids_) {
    Slot& slot = *slots_[id];
    if (slot.limited()) {
      slot.tokens -= static_cast<double>(slot.take);
      slot.tokens = std::min(slot.burst, slot.tokens + slot.spec.rate.steps_per_round);
    }
    if (slot.open() && slot.pending() > 0) {
      ready_ids_[keep++] = id;  // still hungry (long workload or throttled)
    } else {
      slot.ready = false;  // park: consumed its workload (or was closed)
    }
  }
  ready_ids_.resize(keep);
  live_ = keep;
  return live_;
}

std::size_t SessionMultiplexer::step(std::size_t max_steps) {
  MOBSRV_CHECK(max_steps >= 1);
  // Growth fallback: an idle mux rescans so workloads that grew without a
  // poke() are still noticed (the historical contract).
  if (ready_ids_.empty()) rescan();
  prepare_round(max_steps);
  if (ready_ids_.empty()) return 0;
  const std::uint64_t begin = timing_ ? obs::now_ns() : 0;
  par::parallel_for(pool_, 0, ready_ids_.size(), grain_, [&](std::size_t i) {
    Slot& slot = *slots_[ready_ids_[i]];
    slot.advance(slot.take);
  });
  // Timing + bookkeeping after the join (workers never touch shared state).
  if (timing_) step_latency_.record(obs::now_ns() - begin);
  return finish_round();
}

std::size_t SessionMultiplexer::step_capturing(std::size_t max_steps,
                                               std::vector<SlotError>& errors) {
  MOBSRV_CHECK(max_steps >= 1);
  if (ready_ids_.empty()) rescan();
  prepare_round(max_steps);
  if (ready_ids_.empty()) return 0;
  const std::uint64_t begin = timing_ ? obs::now_ns() : 0;
  par::parallel_for(pool_, 0, ready_ids_.size(), grain_, [&](std::size_t i) {
    Slot& slot = *slots_[ready_ids_[i]];
    slot.advance_guarded(slot.take);
  });
  if (timing_) step_latency_.record(obs::now_ns() - begin);
  // Only slots this round touched can have failed.
  for (const std::size_t id : ready_ids_) {
    Slot& slot = *slots_[id];
    if (slot.error.empty()) continue;
    errors.push_back({id, std::move(slot.error)});
    slot.error.clear();
    close_slot(slot);
  }
  return finish_round();
}

void SessionMultiplexer::drain() {
  rescan();  // every pending slot drains, armed or parked
  // Compact without the token math: drain ignores rate limits, so no
  // throttle is counted and no bucket is spent here.
  std::size_t keep = 0;
  for (const std::size_t id : ready_ids_) {
    Slot& slot = *slots_[id];
    if (!slot.ready) continue;
    if (slot.pending() == 0) {
      slot.ready = false;
      continue;
    }
    ready_ids_[keep++] = id;
  }
  ready_ids_.resize(keep);
  live_ = keep;
  if (ready_ids_.empty()) return;
  const std::uint64_t begin = timing_ ? obs::now_ns() : 0;
  par::parallel_for(pool_, 0, ready_ids_.size(), grain_, [&](std::size_t i) {
    Slot& slot = *slots_[ready_ids_[i]];
    slot.advance(slot.pending());  // rate limits do not apply to drain
  });
  if (timing_) step_latency_.record(obs::now_ns() - begin);
  for (const std::size_t id : ready_ids_) slots_[id]->ready = false;
  ready_ids_.clear();
  live_ = 0;
}

void SessionMultiplexer::drain(std::size_t id) {
  MOBSRV_CHECK(id < slots_.size());
  Slot& slot = *slots_[id];
  if (slot.done()) return;
  slot.advance(slot.pending());
  if (slot.ready) {
    // The stale ready entry is dropped by the next round's compaction.
    slot.ready = false;
    if (live_ > 0) --live_;
  }
}

void SessionMultiplexer::close_slot(Slot& slot) {
  if (!slot.open()) return;
  slot.close();
  // Carry the closed session's activity into the aggregate distribution:
  // totals().steps_per_session keeps true percentiles across tenant churn
  // instead of only seeing whoever happens to be open right now.
  closed_steps_.record(slot.cursor);
}

void SessionMultiplexer::close(std::size_t id) {
  MOBSRV_CHECK(id < slots_.size());
  Slot& slot = *slots_[id];
  if (!slot.open()) return;
  close_slot(slot);
  if (slot.ready) {
    slot.ready = false;
    if (live_ > 0) --live_;
  }
}

bool SessionMultiplexer::closed(std::size_t id) const {
  MOBSRV_CHECK(id < slots_.size());
  return !slots_[id]->open();
}

SessionStats SessionMultiplexer::stats(std::size_t id) const {
  MOBSRV_CHECK(id < slots_.size());
  const Slot& slot = *slots_[id];
  return slot.open() ? slot.live_stats() : slot.final_stats;
}

std::vector<SessionStats> SessionMultiplexer::snapshot() const {
  std::vector<SessionStats> all;
  all.reserve(slots_.size());
  for (std::size_t i = 0; i < slots_.size(); ++i) all.push_back(stats(i));
  return all;
}

MuxTotals SessionMultiplexer::totals() const {
  MuxTotals totals;
  totals.sessions = slots_.size();
  totals.active = live_;
  totals.throttled = throttled_total_;
  // Closed sessions' step counts were folded in at close() time; open
  // cursors are merged on top here, so the percentiles cover every session
  // this multiplexer ever ran.
  obs::Histogram per_session = closed_steps_;
  for (const auto& slot : slots_) {
    if (slot->open()) {
      totals.steps += slot->cursor;
      totals.total_cost += slot->engine->session.total_cost();
      totals.move_cost += slot->engine->session.move_cost();
      totals.service_cost += slot->engine->session.service_cost();
      const std::size_t pending = slot->pending();
      if (pending > 0) {
        totals.queue_depth += pending;
        ++totals.live;  // true pending count, parked-but-grown included
      }
      per_session.record(slot->cursor);
    } else {
      ++totals.closed;
      totals.steps += slot->final_stats.steps;
      totals.total_cost += slot->final_stats.total_cost;
      totals.move_cost += slot->final_stats.move_cost;
      totals.service_cost += slot->final_stats.service_cost;
    }
  }
  totals.step_latency = step_latency_.summary();
  totals.steps_per_session = per_session.summary();
  return totals;
}

std::vector<SessionCheckpointRecord> SessionMultiplexer::checkpoint() const {
  std::vector<SessionCheckpointRecord> records;
  records.reserve(slots_.size());
  for (const auto& slot : slots_) {
    if (!slot->open()) continue;
    records.push_back(slot->checkpoint_record());
  }
  return records;
}

SessionCheckpointRecord SessionMultiplexer::checkpoint_slot(std::size_t id) const {
  MOBSRV_CHECK(id < slots_.size());
  MOBSRV_CHECK_MSG(slots_[id]->open(), "cannot checkpoint a closed slot");
  return slots_[id]->checkpoint_record();
}

std::vector<std::size_t> SessionMultiplexer::dirty_slots() const {
  std::vector<std::size_t> dirty;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const Slot& slot = *slots_[i];
    if (slot.open() && slot.cursor != slot.saved_cursor) dirty.push_back(i);
  }
  return dirty;
}

void SessionMultiplexer::mark_saved() {
  for (const auto& slot : slots_)
    if (slot->open()) slot->saved_cursor = slot->cursor;
}

void SessionMultiplexer::restore(const std::vector<SessionCheckpointRecord>& records) {
  std::vector<std::size_t> open_ids;
  open_ids.reserve(slots_.size());
  for (std::size_t i = 0; i < slots_.size(); ++i)
    if (slots_[i]->open()) open_ids.push_back(i);
  MOBSRV_CHECK_MSG(records.size() == open_ids.size(),
                   "checkpoint holds " + std::to_string(records.size()) +
                       " sessions but this multiplexer has " + std::to_string(open_ids.size()) +
                       " open");
  for (std::size_t r = 0; r < open_ids.size(); ++r) {
    const SessionCheckpointRecord& record = records[r];
    const SessionSpec& spec = slots_[open_ids[r]]->spec;
    const std::string where = "checkpoint session " + std::to_string(r);
    MOBSRV_CHECK_MSG(record.algorithm == spec.algorithm,
                     where + " was saved by \"" + record.algorithm + "\" but the slot runs \"" +
                         spec.algorithm + "\"");
    MOBSRV_CHECK_MSG(record.algo_seed == spec.algo_seed, where + " algo seed mismatch");
    MOBSRV_CHECK_MSG(record.tenant == spec.tenant, where + " tenant mismatch");
    MOBSRV_CHECK_MSG(record.horizon == spec.workload->horizon(),
                     where + " workload horizon mismatch (different workload supplied?)");
    MOBSRV_CHECK_MSG(record.cursor <= record.horizon, where + " cursor beyond horizon");
    MOBSRV_CHECK_MSG(record.cursor == record.engine.step,
                     where + " cursor disagrees with engine step count");
    MOBSRV_CHECK_MSG(record.engine.servers.size() == spec.fleet_size,
                     where + " fleet size mismatch");
    MOBSRV_CHECK_MSG(record.engine.servers.front().dim() == spec.workload->dim(),
                     where + " server dimension disagrees with the supplied workload");
    MOBSRV_CHECK_MSG(record.engine.speed_factor == spec.speed_factor &&
                         record.engine.policy == spec.policy,
                     where + " engine options disagree with the slot's spec");
    const sim::ModelParams& saved = record.engine.params;
    const sim::ModelParams& live = spec.workload->params();
    MOBSRV_CHECK_MSG(saved.move_cost_weight == live.move_cost_weight &&
                         saved.max_step == live.max_step && saved.order == live.order,
                     where + " model params disagree with the supplied workload "
                             "(different workload supplied?)");
  }
  // All records verified; rebuild engines on the side and swap in only after
  // every one constructed, so a restore that fails halfway (e.g. a corrupt
  // AlgorithmState rejected by restore_state) leaves this multiplexer
  // exactly as it was. Closed slots are untouched — they keep their cached
  // accounting.
  std::vector<std::unique_ptr<Slot::Engine>> rebuilt;
  rebuilt.reserve(open_ids.size());
  for (std::size_t r = 0; r < open_ids.size(); ++r) {
    const SessionSpec& spec = slots_[open_ids[r]]->spec;
    sim::FleetAlgorithmPtr algorithm = alg::make_fleet_algorithm(spec.algorithm, spec.algo_seed);
    rebuilt.push_back(std::make_unique<Slot::Engine>(std::move(algorithm), records[r]));
  }
  for (std::size_t r = 0; r < open_ids.size(); ++r) {
    Slot& slot = *slots_[open_ids[r]];
    slot.engine = std::move(rebuilt[r]);
    slot.cursor = records[r].cursor;
  }
  // Rebuild the ready list from the restored cursors.
  for (const auto& slot : slots_) slot->ready = false;
  ready_ids_.clear();
  live_ = 0;
  rescan();
}

}  // namespace mobsrv::core
