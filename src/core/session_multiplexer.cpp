#include "core/session_multiplexer.hpp"

#include "algorithms/registry.hpp"
#include "parallel/parallel_for.hpp"

namespace mobsrv::core {

/// All state of one live session. Owned via unique_ptr so slot addresses are
/// stable (Session keeps a pointer to the algorithm; workers touch only
/// their own slots).
struct SessionMultiplexer::Slot {
  Slot(SessionSpec spec_in, sim::AlgorithmPtr algorithm_in, const sim::RunOptions& options)
      : spec(std::move(spec_in)),
        algorithm(std::move(algorithm_in)),
        session(spec.workload->start(), spec.workload->params(), *algorithm, options) {}

  SessionSpec spec;
  sim::AlgorithmPtr algorithm;
  sim::Session session;
  std::size_t cursor = 0;  ///< next workload step to reveal

  [[nodiscard]] bool done() const noexcept { return cursor >= spec.workload->horizon(); }

  void advance(std::size_t max_steps) {
    const std::size_t horizon = spec.workload->horizon();
    for (std::size_t k = 0; k < max_steps && cursor < horizon; ++k, ++cursor)
      session.push(spec.workload->step(cursor));
  }
};

SessionMultiplexer::SessionMultiplexer(par::ThreadPool& pool, std::size_t grain)
    : pool_(pool), grain_(grain == 0 ? 1 : grain) {}

SessionMultiplexer::~SessionMultiplexer() = default;

std::size_t SessionMultiplexer::add(SessionSpec spec) {
  MOBSRV_CHECK_MSG(spec.workload != nullptr, "session needs a workload");
  sim::AlgorithmPtr algorithm = alg::make_algorithm(spec.algorithm, spec.algo_seed);
  sim::RunOptions options;
  options.speed_factor = spec.speed_factor;
  options.policy = spec.policy;
  options.record_positions = false;  // O(1) memory per session
  const bool live_on_add = spec.workload->horizon() > 0;
  slots_.push_back(std::make_unique<Slot>(std::move(spec), std::move(algorithm), options));
  if (live_on_add) ++live_;
  return slots_.size() - 1;
}

std::size_t SessionMultiplexer::size() const noexcept { return slots_.size(); }

std::size_t SessionMultiplexer::live() const noexcept { return live_; }

std::size_t SessionMultiplexer::step(std::size_t max_steps) {
  MOBSRV_CHECK(max_steps >= 1);
  if (live_ == 0) return 0;
  par::parallel_for(pool_, 0, slots_.size(), grain_, [&](std::size_t i) {
    Slot& slot = *slots_[i];
    if (!slot.done()) slot.advance(max_steps);
  });
  // Recount after the join (workers never touch shared state).
  live_ = 0;
  for (const auto& slot : slots_)
    if (!slot->done()) ++live_;
  return live_;
}

void SessionMultiplexer::drain() {
  if (live_ == 0) return;
  par::parallel_for(pool_, 0, slots_.size(), grain_, [&](std::size_t i) {
    Slot& slot = *slots_[i];
    if (!slot.done()) slot.advance(slot.spec.workload->horizon() - slot.cursor);
  });
  live_ = 0;
}

SessionStats SessionMultiplexer::stats(std::size_t id) const {
  MOBSRV_CHECK(id < slots_.size());
  const Slot& slot = *slots_[id];
  SessionStats stats;
  stats.tenant = slot.spec.tenant;
  stats.algorithm = slot.spec.algorithm;
  stats.steps = slot.cursor;
  stats.horizon = slot.spec.workload->horizon();
  stats.done = slot.done();
  stats.total_cost = slot.session.total_cost();
  stats.move_cost = slot.session.move_cost();
  stats.service_cost = slot.session.service_cost();
  stats.position = slot.session.position();
  return stats;
}

std::vector<SessionStats> SessionMultiplexer::snapshot() const {
  std::vector<SessionStats> all;
  all.reserve(slots_.size());
  for (std::size_t i = 0; i < slots_.size(); ++i) all.push_back(stats(i));
  return all;
}

MuxTotals SessionMultiplexer::totals() const {
  MuxTotals totals;
  totals.sessions = slots_.size();
  totals.live = live_;
  for (const auto& slot : slots_) {
    totals.steps += slot->cursor;
    totals.total_cost += slot->session.total_cost();
    totals.move_cost += slot->session.move_cost();
    totals.service_cost += slot->session.service_cost();
  }
  return totals;
}

}  // namespace mobsrv::core
