#include "core/session_multiplexer.hpp"

#include "algorithms/registry.hpp"
#include "parallel/parallel_for.hpp"

namespace mobsrv::core {

namespace {

/// The start layout a spec describes: explicit positions when given,
/// otherwise fleet_size copies of the workload's start.
std::vector<sim::Point> spec_starts(const SessionSpec& spec) {
  MOBSRV_CHECK_MSG(spec.fleet_size >= 1, "session needs at least one server");
  if (!spec.starts.empty()) {
    MOBSRV_CHECK_MSG(spec.starts.size() == spec.fleet_size,
                     "spec.starts must match spec.fleet_size");
    for (const sim::Point& start : spec.starts)
      MOBSRV_CHECK_MSG(start.dim() == spec.workload->dim(),
                       "spec.starts dimension does not match the workload");
    return spec.starts;
  }
  return std::vector<sim::Point>(spec.fleet_size, spec.workload->start());
}

sim::RunOptions spec_options(const SessionSpec& spec) {
  sim::RunOptions options;
  options.speed_factor = spec.speed_factor;
  options.policy = spec.policy;
  options.record_positions = false;  // O(1) memory per session
  options.record_trace = false;
  return options;
}

}  // namespace

/// All state of one live session. Owned via unique_ptr so slot addresses are
/// stable (Session keeps a pointer to the algorithm; workers touch only
/// their own slots). The engine half lives behind its own pointer so
/// close() can release it while the slot keeps its identity and cached
/// accounting.
struct SessionMultiplexer::Slot {
  /// The releasable half: algorithm + session (session pins a pointer to
  /// the algorithm, so they live and die together).
  struct Engine {
    Engine(const SessionSpec& spec, sim::FleetAlgorithmPtr algorithm_in,
           const sim::RunOptions& options)
        : algorithm(std::move(algorithm_in)),
          session(spec_starts(spec), spec.workload->params(), *algorithm, options) {}

    /// Restore form: resumes the session from a checkpoint record.
    Engine(sim::FleetAlgorithmPtr algorithm_in, const SessionCheckpointRecord& record)
        : algorithm(std::move(algorithm_in)), session(record.engine, *algorithm) {}

    sim::FleetAlgorithmPtr algorithm;
    sim::Session session;
  };

  Slot(SessionSpec spec_in, sim::FleetAlgorithmPtr algorithm_in, const sim::RunOptions& options)
      : spec(std::move(spec_in)),
        engine(std::make_unique<Engine>(spec, std::move(algorithm_in), options)) {}

  SessionSpec spec;
  std::unique_ptr<Engine> engine;  ///< null once close()d
  std::size_t cursor = 0;          ///< next workload step to reveal
  SessionStats final_stats;        ///< cached accounting, set by close()
  std::string error;               ///< set by a guarded advance on throw

  [[nodiscard]] bool open() const noexcept { return engine != nullptr; }

  [[nodiscard]] bool done() const noexcept {
    return !open() || cursor >= spec.workload->horizon();
  }

  void advance(std::size_t max_steps) {
    const std::size_t horizon = spec.workload->horizon();
    for (std::size_t k = 0; k < max_steps && cursor < horizon; ++k, ++cursor)
      engine->session.push(spec.workload->step(cursor));
  }

  /// advance() under a try/catch: a throwing session records its error in
  /// the slot (collected and closed after the join) instead of unwinding
  /// through the pool.
  void advance_guarded(std::size_t max_steps) {
    try {
      advance(max_steps);
    } catch (const std::exception& failure) {
      error = failure.what();
    }
  }

  /// Live accounting snapshot (requires an open engine).
  [[nodiscard]] SessionStats live_stats() const {
    SessionStats stats;
    stats.tenant = spec.tenant;
    stats.algorithm = spec.algorithm;
    stats.steps = cursor;
    stats.horizon = spec.workload->horizon();
    stats.done = done();
    stats.fleet_size = engine->session.fleet_size();
    stats.total_cost = engine->session.total_cost();
    stats.move_cost = engine->session.move_cost();
    stats.service_cost = engine->session.service_cost();
    stats.position = engine->session.position();
    stats.positions = engine->session.fleet();
    stats.per_server_move_cost.reserve(engine->session.fleet_size());
    for (std::size_t i = 0; i < engine->session.fleet_size(); ++i)
      stats.per_server_move_cost.push_back(engine->session.server_move_cost(i));
    return stats;
  }

  /// Caches the final accounting and releases the engine.
  void close() {
    if (!open()) return;
    final_stats = live_stats();
    final_stats.closed = true;
    engine.reset();
  }
};

SessionMultiplexer::SessionMultiplexer(par::ThreadPool& pool, std::size_t grain)
    : pool_(pool), grain_(grain == 0 ? 1 : grain) {}

SessionMultiplexer::~SessionMultiplexer() = default;

std::size_t SessionMultiplexer::add(SessionSpec spec) {
  MOBSRV_CHECK_MSG(spec.workload != nullptr, "session needs a workload");
  sim::FleetAlgorithmPtr algorithm = alg::make_fleet_algorithm(spec.algorithm, spec.algo_seed);
  const sim::RunOptions options = spec_options(spec);
  const bool live_on_add = spec.workload->horizon() > 0;
  slots_.push_back(std::make_unique<Slot>(std::move(spec), std::move(algorithm), options));
  if (live_on_add) ++live_;
  return slots_.size() - 1;
}

std::size_t SessionMultiplexer::size() const noexcept { return slots_.size(); }

std::size_t SessionMultiplexer::live() const noexcept { return live_; }

void SessionMultiplexer::refresh_live() {
  live_ = 0;
  for (const auto& slot : slots_)
    if (!slot->done()) ++live_;
}

std::size_t SessionMultiplexer::step(std::size_t max_steps) {
  MOBSRV_CHECK(max_steps >= 1);
  refresh_live();  // workloads may have grown since the last round
  if (live_ == 0) return 0;
  const std::uint64_t begin = timing_ ? obs::now_ns() : 0;
  par::parallel_for(pool_, 0, slots_.size(), grain_, [&](std::size_t i) {
    Slot& slot = *slots_[i];
    if (!slot.done()) slot.advance(max_steps);
  });
  // Timing + recount after the join (workers never touch shared state).
  if (timing_) step_latency_.record(obs::now_ns() - begin);
  refresh_live();
  return live_;
}

std::size_t SessionMultiplexer::step_capturing(std::size_t max_steps,
                                               std::vector<SlotError>& errors) {
  MOBSRV_CHECK(max_steps >= 1);
  refresh_live();
  if (live_ == 0) return 0;
  const std::uint64_t begin = timing_ ? obs::now_ns() : 0;
  par::parallel_for(pool_, 0, slots_.size(), grain_, [&](std::size_t i) {
    Slot& slot = *slots_[i];
    if (!slot.done()) slot.advance_guarded(max_steps);
  });
  if (timing_) step_latency_.record(obs::now_ns() - begin);
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    Slot& slot = *slots_[i];
    if (slot.error.empty()) continue;
    errors.push_back({i, std::move(slot.error)});
    slot.error.clear();
    close_slot(slot);
  }
  refresh_live();
  return live_;
}

void SessionMultiplexer::drain() {
  refresh_live();
  if (live_ == 0) return;
  const std::uint64_t begin = timing_ ? obs::now_ns() : 0;
  par::parallel_for(pool_, 0, slots_.size(), grain_, [&](std::size_t i) {
    Slot& slot = *slots_[i];
    if (!slot.done()) slot.advance(slot.spec.workload->horizon() - slot.cursor);
  });
  if (timing_) step_latency_.record(obs::now_ns() - begin);
  live_ = 0;
}

void SessionMultiplexer::drain(std::size_t id) {
  MOBSRV_CHECK(id < slots_.size());
  Slot& slot = *slots_[id];
  if (slot.done()) return;
  slot.advance(slot.spec.workload->horizon() - slot.cursor);
  if (live_ > 0) --live_;
}

void SessionMultiplexer::close_slot(Slot& slot) {
  if (!slot.open()) return;
  slot.close();
  // Carry the closed session's activity into the aggregate distribution:
  // totals().steps_per_session keeps true percentiles across tenant churn
  // instead of only seeing whoever happens to be open right now.
  closed_steps_.record(slot.cursor);
}

void SessionMultiplexer::close(std::size_t id) {
  MOBSRV_CHECK(id < slots_.size());
  Slot& slot = *slots_[id];
  if (!slot.open()) return;
  const bool was_live = !slot.done();
  close_slot(slot);
  if (was_live && live_ > 0) --live_;
}

bool SessionMultiplexer::closed(std::size_t id) const {
  MOBSRV_CHECK(id < slots_.size());
  return !slots_[id]->open();
}

SessionStats SessionMultiplexer::stats(std::size_t id) const {
  MOBSRV_CHECK(id < slots_.size());
  const Slot& slot = *slots_[id];
  return slot.open() ? slot.live_stats() : slot.final_stats;
}

std::vector<SessionStats> SessionMultiplexer::snapshot() const {
  std::vector<SessionStats> all;
  all.reserve(slots_.size());
  for (std::size_t i = 0; i < slots_.size(); ++i) all.push_back(stats(i));
  return all;
}

MuxTotals SessionMultiplexer::totals() const {
  MuxTotals totals;
  totals.sessions = slots_.size();
  totals.live = live_;
  // Closed sessions' step counts were folded in at close() time; open
  // cursors are merged on top here, so the percentiles cover every session
  // this multiplexer ever ran.
  obs::Histogram per_session = closed_steps_;
  for (const auto& slot : slots_) {
    if (slot->open()) {
      totals.steps += slot->cursor;
      totals.total_cost += slot->engine->session.total_cost();
      totals.move_cost += slot->engine->session.move_cost();
      totals.service_cost += slot->engine->session.service_cost();
      const std::size_t horizon = slot->spec.workload->horizon();
      if (horizon > slot->cursor) totals.queue_depth += horizon - slot->cursor;
      per_session.record(slot->cursor);
    } else {
      ++totals.closed;
      totals.steps += slot->final_stats.steps;
      totals.total_cost += slot->final_stats.total_cost;
      totals.move_cost += slot->final_stats.move_cost;
      totals.service_cost += slot->final_stats.service_cost;
    }
  }
  totals.step_latency = step_latency_.summary();
  totals.steps_per_session = per_session.summary();
  return totals;
}

std::vector<SessionCheckpointRecord> SessionMultiplexer::checkpoint() const {
  std::vector<SessionCheckpointRecord> records;
  records.reserve(slots_.size());
  for (const auto& slot : slots_) {
    if (!slot->open()) continue;
    SessionCheckpointRecord record;
    record.tenant = slot->spec.tenant;
    record.algorithm = slot->spec.algorithm;
    record.algo_seed = slot->spec.algo_seed;
    record.cursor = slot->cursor;
    record.horizon = slot->spec.workload->horizon();
    record.engine = slot->engine->session.save();
    records.push_back(std::move(record));
  }
  return records;
}

void SessionMultiplexer::restore(const std::vector<SessionCheckpointRecord>& records) {
  std::vector<std::size_t> open_ids;
  open_ids.reserve(slots_.size());
  for (std::size_t i = 0; i < slots_.size(); ++i)
    if (slots_[i]->open()) open_ids.push_back(i);
  MOBSRV_CHECK_MSG(records.size() == open_ids.size(),
                   "checkpoint holds " + std::to_string(records.size()) +
                       " sessions but this multiplexer has " + std::to_string(open_ids.size()) +
                       " open");
  for (std::size_t r = 0; r < open_ids.size(); ++r) {
    const SessionCheckpointRecord& record = records[r];
    const SessionSpec& spec = slots_[open_ids[r]]->spec;
    const std::string where = "checkpoint session " + std::to_string(r);
    MOBSRV_CHECK_MSG(record.algorithm == spec.algorithm,
                     where + " was saved by \"" + record.algorithm + "\" but the slot runs \"" +
                         spec.algorithm + "\"");
    MOBSRV_CHECK_MSG(record.algo_seed == spec.algo_seed, where + " algo seed mismatch");
    MOBSRV_CHECK_MSG(record.tenant == spec.tenant, where + " tenant mismatch");
    MOBSRV_CHECK_MSG(record.horizon == spec.workload->horizon(),
                     where + " workload horizon mismatch (different workload supplied?)");
    MOBSRV_CHECK_MSG(record.cursor <= record.horizon, where + " cursor beyond horizon");
    MOBSRV_CHECK_MSG(record.cursor == record.engine.step,
                     where + " cursor disagrees with engine step count");
    MOBSRV_CHECK_MSG(record.engine.servers.size() == spec.fleet_size,
                     where + " fleet size mismatch");
    MOBSRV_CHECK_MSG(record.engine.servers.front().dim() == spec.workload->dim(),
                     where + " server dimension disagrees with the supplied workload");
    MOBSRV_CHECK_MSG(record.engine.speed_factor == spec.speed_factor &&
                         record.engine.policy == spec.policy,
                     where + " engine options disagree with the slot's spec");
    const sim::ModelParams& saved = record.engine.params;
    const sim::ModelParams& live = spec.workload->params();
    MOBSRV_CHECK_MSG(saved.move_cost_weight == live.move_cost_weight &&
                         saved.max_step == live.max_step && saved.order == live.order,
                     where + " model params disagree with the supplied workload "
                             "(different workload supplied?)");
  }
  // All records verified; rebuild engines on the side and swap in only after
  // every one constructed, so a restore that fails halfway (e.g. a corrupt
  // AlgorithmState rejected by restore_state) leaves this multiplexer
  // exactly as it was. Closed slots are untouched — they keep their cached
  // accounting.
  std::vector<std::unique_ptr<Slot::Engine>> rebuilt;
  rebuilt.reserve(open_ids.size());
  for (std::size_t r = 0; r < open_ids.size(); ++r) {
    const SessionSpec& spec = slots_[open_ids[r]]->spec;
    sim::FleetAlgorithmPtr algorithm = alg::make_fleet_algorithm(spec.algorithm, spec.algo_seed);
    rebuilt.push_back(std::make_unique<Slot::Engine>(std::move(algorithm), records[r]));
  }
  for (std::size_t r = 0; r < open_ids.size(); ++r) {
    Slot& slot = *slots_[open_ids[r]];
    slot.engine = std::move(rebuilt[r]);
    slot.cursor = records[r].cursor;
  }
  refresh_live();
}

}  // namespace mobsrv::core
