#include "core/session_multiplexer.hpp"

#include "algorithms/registry.hpp"
#include "parallel/parallel_for.hpp"

namespace mobsrv::core {

namespace {

/// The start layout a spec describes: explicit positions when given,
/// otherwise fleet_size copies of the workload's start.
std::vector<sim::Point> spec_starts(const SessionSpec& spec) {
  MOBSRV_CHECK_MSG(spec.fleet_size >= 1, "session needs at least one server");
  if (!spec.starts.empty()) {
    MOBSRV_CHECK_MSG(spec.starts.size() == spec.fleet_size,
                     "spec.starts must match spec.fleet_size");
    for (const sim::Point& start : spec.starts)
      MOBSRV_CHECK_MSG(start.dim() == spec.workload->dim(),
                       "spec.starts dimension does not match the workload");
    return spec.starts;
  }
  return std::vector<sim::Point>(spec.fleet_size, spec.workload->start());
}

sim::RunOptions spec_options(const SessionSpec& spec) {
  sim::RunOptions options;
  options.speed_factor = spec.speed_factor;
  options.policy = spec.policy;
  options.record_positions = false;  // O(1) memory per session
  options.record_trace = false;
  return options;
}

}  // namespace

/// All state of one live session. Owned via unique_ptr so slot addresses are
/// stable (Session keeps a pointer to the algorithm; workers touch only
/// their own slots).
struct SessionMultiplexer::Slot {
  Slot(SessionSpec spec_in, sim::FleetAlgorithmPtr algorithm_in, const sim::RunOptions& options)
      : spec(std::move(spec_in)),
        algorithm(std::move(algorithm_in)),
        session(spec_starts(spec), spec.workload->params(), *algorithm, options) {}

  /// Restore form: resumes the session from a checkpoint record.
  Slot(SessionSpec spec_in, sim::FleetAlgorithmPtr algorithm_in,
       const SessionCheckpointRecord& record)
      : spec(std::move(spec_in)),
        algorithm(std::move(algorithm_in)),
        session(record.engine, *algorithm),
        cursor(record.cursor) {}

  SessionSpec spec;
  sim::FleetAlgorithmPtr algorithm;
  sim::Session session;
  std::size_t cursor = 0;  ///< next workload step to reveal

  [[nodiscard]] bool done() const noexcept { return cursor >= spec.workload->horizon(); }

  void advance(std::size_t max_steps) {
    const std::size_t horizon = spec.workload->horizon();
    for (std::size_t k = 0; k < max_steps && cursor < horizon; ++k, ++cursor)
      session.push(spec.workload->step(cursor));
  }
};

SessionMultiplexer::SessionMultiplexer(par::ThreadPool& pool, std::size_t grain)
    : pool_(pool), grain_(grain == 0 ? 1 : grain) {}

SessionMultiplexer::~SessionMultiplexer() = default;

std::size_t SessionMultiplexer::add(SessionSpec spec) {
  MOBSRV_CHECK_MSG(spec.workload != nullptr, "session needs a workload");
  sim::FleetAlgorithmPtr algorithm = alg::make_fleet_algorithm(spec.algorithm, spec.algo_seed);
  const sim::RunOptions options = spec_options(spec);
  const bool live_on_add = spec.workload->horizon() > 0;
  slots_.push_back(std::make_unique<Slot>(std::move(spec), std::move(algorithm), options));
  if (live_on_add) ++live_;
  return slots_.size() - 1;
}

std::size_t SessionMultiplexer::size() const noexcept { return slots_.size(); }

std::size_t SessionMultiplexer::live() const noexcept { return live_; }

std::size_t SessionMultiplexer::step(std::size_t max_steps) {
  MOBSRV_CHECK(max_steps >= 1);
  if (live_ == 0) return 0;
  par::parallel_for(pool_, 0, slots_.size(), grain_, [&](std::size_t i) {
    Slot& slot = *slots_[i];
    if (!slot.done()) slot.advance(max_steps);
  });
  // Recount after the join (workers never touch shared state).
  live_ = 0;
  for (const auto& slot : slots_)
    if (!slot->done()) ++live_;
  return live_;
}

void SessionMultiplexer::drain() {
  if (live_ == 0) return;
  par::parallel_for(pool_, 0, slots_.size(), grain_, [&](std::size_t i) {
    Slot& slot = *slots_[i];
    if (!slot.done()) slot.advance(slot.spec.workload->horizon() - slot.cursor);
  });
  live_ = 0;
}

SessionStats SessionMultiplexer::stats(std::size_t id) const {
  MOBSRV_CHECK(id < slots_.size());
  const Slot& slot = *slots_[id];
  SessionStats stats;
  stats.tenant = slot.spec.tenant;
  stats.algorithm = slot.spec.algorithm;
  stats.steps = slot.cursor;
  stats.horizon = slot.spec.workload->horizon();
  stats.done = slot.done();
  stats.fleet_size = slot.session.fleet_size();
  stats.total_cost = slot.session.total_cost();
  stats.move_cost = slot.session.move_cost();
  stats.service_cost = slot.session.service_cost();
  stats.position = slot.session.position();
  stats.positions = slot.session.fleet();
  stats.per_server_move_cost.reserve(slot.session.fleet_size());
  for (std::size_t i = 0; i < slot.session.fleet_size(); ++i)
    stats.per_server_move_cost.push_back(slot.session.server_move_cost(i));
  return stats;
}

std::vector<SessionStats> SessionMultiplexer::snapshot() const {
  std::vector<SessionStats> all;
  all.reserve(slots_.size());
  for (std::size_t i = 0; i < slots_.size(); ++i) all.push_back(stats(i));
  return all;
}

MuxTotals SessionMultiplexer::totals() const {
  MuxTotals totals;
  totals.sessions = slots_.size();
  totals.live = live_;
  for (const auto& slot : slots_) {
    totals.steps += slot->cursor;
    totals.total_cost += slot->session.total_cost();
    totals.move_cost += slot->session.move_cost();
    totals.service_cost += slot->session.service_cost();
  }
  return totals;
}

std::vector<SessionCheckpointRecord> SessionMultiplexer::checkpoint() const {
  std::vector<SessionCheckpointRecord> records;
  records.reserve(slots_.size());
  for (const auto& slot : slots_) {
    SessionCheckpointRecord record;
    record.tenant = slot->spec.tenant;
    record.algorithm = slot->spec.algorithm;
    record.algo_seed = slot->spec.algo_seed;
    record.cursor = slot->cursor;
    record.horizon = slot->spec.workload->horizon();
    record.engine = slot->session.save();
    records.push_back(std::move(record));
  }
  return records;
}

void SessionMultiplexer::restore(const std::vector<SessionCheckpointRecord>& records) {
  MOBSRV_CHECK_MSG(records.size() == slots_.size(),
                   "checkpoint holds " + std::to_string(records.size()) +
                       " sessions but this multiplexer has " + std::to_string(slots_.size()));
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const SessionCheckpointRecord& record = records[i];
    const SessionSpec& spec = slots_[i]->spec;
    const std::string where = "checkpoint session " + std::to_string(i);
    MOBSRV_CHECK_MSG(record.algorithm == spec.algorithm,
                     where + " was saved by \"" + record.algorithm + "\" but the slot runs \"" +
                         spec.algorithm + "\"");
    MOBSRV_CHECK_MSG(record.algo_seed == spec.algo_seed, where + " algo seed mismatch");
    MOBSRV_CHECK_MSG(record.tenant == spec.tenant, where + " tenant mismatch");
    MOBSRV_CHECK_MSG(record.horizon == spec.workload->horizon(),
                     where + " workload horizon mismatch (different workload supplied?)");
    MOBSRV_CHECK_MSG(record.cursor <= record.horizon, where + " cursor beyond horizon");
    MOBSRV_CHECK_MSG(record.cursor == record.engine.step,
                     where + " cursor disagrees with engine step count");
    MOBSRV_CHECK_MSG(record.engine.servers.size() == spec.fleet_size,
                     where + " fleet size mismatch");
    MOBSRV_CHECK_MSG(record.engine.servers.front().dim() == spec.workload->dim(),
                     where + " server dimension disagrees with the supplied workload");
    MOBSRV_CHECK_MSG(record.engine.speed_factor == spec.speed_factor &&
                         record.engine.policy == spec.policy,
                     where + " engine options disagree with the slot's spec");
    const sim::ModelParams& saved = record.engine.params;
    const sim::ModelParams& live = spec.workload->params();
    MOBSRV_CHECK_MSG(saved.move_cost_weight == live.move_cost_weight &&
                         saved.max_step == live.max_step && saved.order == live.order,
                     where + " model params disagree with the supplied workload "
                             "(different workload supplied?)");
  }
  // All records verified; rebuild into fresh slots and swap in only after
  // every one constructed, so a restore that fails halfway (e.g. a corrupt
  // AlgorithmState rejected by restore_state) leaves this multiplexer
  // exactly as it was.
  std::vector<std::unique_ptr<Slot>> restored;
  restored.reserve(slots_.size());
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    SessionSpec spec = slots_[i]->spec;
    sim::FleetAlgorithmPtr algorithm = alg::make_fleet_algorithm(spec.algorithm, spec.algo_seed);
    restored.push_back(std::make_unique<Slot>(std::move(spec), std::move(algorithm), records[i]));
  }
  slots_ = std::move(restored);
  live_ = 0;
  for (const auto& slot : slots_)
    if (!slot->done()) ++live_;
}

}  // namespace mobsrv::core
