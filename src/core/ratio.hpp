/// \file ratio.hpp
/// Competitive-ratio estimation: the measurement at the heart of every
/// experiment.
///
/// A trial samples an instance (seeded deterministically from
/// (experiment, row, trial)), runs the online algorithm through the engine,
/// obtains an OPT proxy from the configured oracle, and records
/// ratio = C_online / proxy. Trials run in parallel on a ThreadPool; results
/// are identical for any thread count.
///
/// Proxy semantics (see DESIGN.md §4): every oracle returns the cost of a
/// *feasible* offline solution, i.e. an upper bound on OPT, so measured
/// ratios are conservative lower estimates of the true competitive ratio —
/// exactly the right direction for lower-bound experiments and a
/// conservative one for boundedness claims. The DP oracle additionally
/// yields a certified OPT lower bound for bracketing.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "opt/convex_descent.hpp"
#include "opt/coordinate_descent.hpp"
#include "opt/grid_dp.hpp"
#include "parallel/thread_pool.hpp"
#include "sim/session.hpp"
#include "stats/rng.hpp"
#include "stats/summary.hpp"

namespace mobsrv::obs {
class Histogram;  // obs/metrics.hpp — RatioOptions only carries a pointer
}

namespace mobsrv::core {

/// Which offline solver supplies the OPT proxy.
enum class OptOracle {
  kAdversaryCost,   ///< the generator's own trajectory (lower-bound experiments)
  kGridDp1D,        ///< near-exact DP; requires dim == 1
  kConvexDescent,   ///< any dimension; warm-started with the adversary when present
  kBestAvailable,   ///< min over everything applicable (tightest upper bound)
};

/// One sampled instance, optionally with the adversary's own solution.
struct PreparedSample {
  sim::Instance instance;
  /// Adversary trajectory cost if the generator provides one; 0 otherwise.
  double adversary_cost = 0.0;
  /// Adversary positions in flat SoA storage (used to warm-start the
  /// convex oracle without a conversion copy).
  sim::TrajectoryStore adversary_positions;
};

/// Samples an instance for trial \p trial using the given seeded Rng.
using SampleFn = std::function<PreparedSample(std::size_t trial, stats::Rng& rng)>;

/// Constructs a fresh algorithm for a trial (seed only matters for
/// randomized strategies).
using AlgorithmFn = std::function<sim::AlgorithmPtr(std::uint64_t seed)>;

/// Everything an observer may look at after one trial's engine run (all
/// pointers outlive the callback invocation only).
struct TrialObservation {
  std::size_t trial = 0;
  const PreparedSample* sample = nullptr;
  const sim::OnlineAlgorithm* algorithm = nullptr;
  const sim::RunResult* run = nullptr;
  double speed_factor = 1.0;
  sim::SpeedLimitPolicy policy = sim::SpeedLimitPolicy::kThrow;
  std::uint64_t algo_seed = 0;
};

/// Per-trial instrumentation hook; called from worker threads, so it must
/// be thread-safe. Used by the bench driver's --record-dir trace capture.
using ObserveFn = std::function<void(const TrialObservation&)>;

/// Estimation settings.
struct RatioOptions {
  int trials = 8;
  double speed_factor = 1.0;  ///< (1+δ) for the online algorithm
  sim::SpeedLimitPolicy policy = sim::SpeedLimitPolicy::kThrow;
  OptOracle oracle = OptOracle::kBestAvailable;
  opt::GridDpOptions dp;
  opt::ConvexDescentOptions convex;
  /// Stable key distinguishing experiments/rows in the seed derivation.
  std::uint64_t seed_key = 0;
  /// Optional per-trial observer (see ObserveFn); empty = no instrumentation.
  ObserveFn observe;
  /// Optional per-trial wall-time sink (whole trial: sample + engine +
  /// oracle). Trials write into per-slot storage and merge after the join,
  /// so the histogram needs no locking and results stay scheduling-free.
  obs::Histogram* trial_latency = nullptr;
};

/// Aggregated measurement.
struct RatioEstimate {
  stats::Summary ratio;          ///< C_online / proxy per trial
  stats::Summary online_cost;
  stats::Summary offline_proxy;  ///< proxy cost per trial
  stats::Summary opt_lower;      ///< certified OPT lower bounds (0 if none)
  /// Ratio against the certified lower bound (only when available):
  /// an *upper* estimate of the trial ratios.
  stats::Summary ratio_vs_lower;
};

/// Runs the trials on \p pool and aggregates. Throws if a trial's proxy is
/// non-positive (a generator bug), or if the oracle is inapplicable.
[[nodiscard]] RatioEstimate estimate_ratio(par::ThreadPool& pool, const AlgorithmFn& make_algorithm,
                                           const SampleFn& sample, const RatioOptions& options);

/// Single-trial convenience used by tests: runs the algorithm and the
/// oracle on one prepared sample.
struct TrialResult {
  double online_cost = 0.0;
  double proxy_cost = 0.0;
  double opt_lower = 0.0;
  [[nodiscard]] double ratio() const { return online_cost / proxy_cost; }
};
/// \p run_out, when non-null, receives the full engine result (used by the
/// observer plumbing in estimate_ratio).
[[nodiscard]] TrialResult run_trial(const PreparedSample& sample, sim::OnlineAlgorithm& algorithm,
                                    const RatioOptions& options,
                                    sim::RunResult* run_out = nullptr);

}  // namespace mobsrv::core
