#include "core/ratio.hpp"

#include <algorithm>
#include <limits>
#include <mutex>
#include <vector>

#include "obs/metrics.hpp"
#include "parallel/parallel_for.hpp"

namespace mobsrv::core {

namespace {

/// Resolves the OPT proxy (an upper bound on OPT) and, when available, a
/// certified lower bound.
std::pair<double, double> resolve_proxy(const PreparedSample& sample,
                                        const RatioOptions& options) {
  const bool has_adversary = sample.adversary_cost > 0.0;
  const bool is_1d = sample.instance.dim() == 1;

  auto run_dp = [&]() {
    const opt::GridDpResult dp = opt::solve_grid_dp_1d(sample.instance, options.dp);
    return std::pair{dp.solution.cost, dp.solution.opt_lower_bound};
  };
  auto run_convex = [&]() {
    // Full pipeline: subgradient shaping + coordinate-descent polish.
    const sim::TrajectoryStore* warm =
        sample.adversary_positions.empty() ? nullptr : &sample.adversary_positions;
    const opt::OfflineSolution sol = opt::solve_best_offline(sample.instance, warm);
    return std::pair{sol.cost, sol.opt_lower_bound};
  };

  switch (options.oracle) {
    case OptOracle::kAdversaryCost:
      MOBSRV_CHECK_MSG(has_adversary, "oracle kAdversaryCost needs an adversary trajectory");
      return {sample.adversary_cost, 0.0};
    case OptOracle::kGridDp1D: {
      MOBSRV_CHECK_MSG(is_1d, "oracle kGridDp1D needs a 1-dimensional instance");
      return run_dp();
    }
    case OptOracle::kConvexDescent:
      return run_convex();
    case OptOracle::kBestAvailable: {
      double upper = std::numeric_limits<double>::infinity();
      double lower = 0.0;
      if (has_adversary) upper = std::min(upper, sample.adversary_cost);
      if (is_1d) {
        const auto [u, l] = run_dp();
        upper = std::min(upper, u);
        lower = std::max(lower, l);
      } else {
        const auto [u, l] = run_convex();
        upper = std::min(upper, u);
        lower = std::max(lower, l);
      }
      return {upper, lower};
    }
  }
  throw ContractViolation("unhandled oracle");
}

}  // namespace

TrialResult run_trial(const PreparedSample& sample, sim::OnlineAlgorithm& algorithm,
                      const RatioOptions& options, sim::RunResult* run_out) {
  sim::RunOptions run_options;
  run_options.speed_factor = options.speed_factor;
  run_options.policy = options.policy;
  // Stream the workload through the incremental session engine — one step
  // revealed per push, exactly the online model (sim::run wraps the same
  // Session, so costs are bit-identical either way).
  sim::Session session(sample.instance.start(), sample.instance.params(), algorithm, run_options);
  session.reserve(sample.instance.horizon());
  for (std::size_t t = 0; t < sample.instance.horizon(); ++t)
    session.push(sample.instance.step(t));
  sim::RunResult run = std::move(session).result();

  const auto [proxy, lower] = resolve_proxy(sample, options);
  MOBSRV_CHECK_MSG(proxy > 0.0, "OPT proxy must be positive; degenerate instance?");

  TrialResult out;
  out.online_cost = run.total_cost;
  out.proxy_cost = proxy;
  out.opt_lower = lower;
  if (run_out) *run_out = std::move(run);
  return out;
}

RatioEstimate estimate_ratio(par::ThreadPool& pool, const AlgorithmFn& make_algorithm,
                             const SampleFn& sample, const RatioOptions& options) {
  MOBSRV_CHECK(options.trials >= 1);
  std::vector<TrialResult> results(static_cast<std::size_t>(options.trials));
  // Per-slot trial timings, merged into the caller's histogram after the
  // join — no locking, and the measurement stays purely observational.
  std::vector<std::uint64_t> trial_ns(
      options.trial_latency != nullptr ? results.size() : 0);

  par::parallel_for(pool, 0, results.size(), 1, [&](std::size_t i) {
    const std::uint64_t begin_ns = trial_ns.empty() ? 0 : obs::now_ns();
    // Seed derived from (experiment key, trial); independent of scheduling.
    stats::Rng rng({options.seed_key, 0xA11CE5ULL, static_cast<std::uint64_t>(i)});
    const PreparedSample prepared = sample(i, rng);
    const std::uint64_t algo_seed =
        stats::mix_keys({options.seed_key, 0xA190ULL, static_cast<std::uint64_t>(i)});
    const sim::AlgorithmPtr algorithm = make_algorithm(algo_seed);
    sim::RunResult run;
    results[i] = run_trial(prepared, *algorithm, options, options.observe ? &run : nullptr);
    if (options.observe) {
      TrialObservation observation;
      observation.trial = i;
      observation.sample = &prepared;
      observation.algorithm = algorithm.get();
      observation.run = &run;
      observation.speed_factor = options.speed_factor;
      observation.policy = options.policy;
      observation.algo_seed = algo_seed;
      options.observe(observation);
    }
    if (!trial_ns.empty()) trial_ns[i] = obs::now_ns() - begin_ns;
  });

  if (options.trial_latency != nullptr)
    for (const std::uint64_t ns : trial_ns) options.trial_latency->record(ns);

  RatioEstimate estimate;
  for (const auto& r : results) {
    estimate.ratio.add(r.online_cost / r.proxy_cost);
    estimate.online_cost.add(r.online_cost);
    estimate.offline_proxy.add(r.proxy_cost);
    estimate.opt_lower.add(r.opt_lower);
    if (r.opt_lower > 0.0) estimate.ratio_vs_lower.add(r.online_cost / r.opt_lower);
  }
  return estimate;
}

}  // namespace mobsrv::core
