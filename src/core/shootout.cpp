#include "core/shootout.hpp"

#include <limits>

#include "algorithms/registry.hpp"
#include "parallel/parallel_for.hpp"

namespace mobsrv::core {

std::vector<ShootoutRow> shootout(par::ThreadPool& pool, const std::vector<std::string>& names,
                                  const SampleFn& sample, const RatioOptions& options) {
  MOBSRV_CHECK(!names.empty() && options.trials >= 1);
  const auto n_algorithms = names.size();
  const auto n_trials = static_cast<std::size_t>(options.trials);

  // results[trial][algorithm]
  std::vector<std::vector<TrialResult>> results(n_trials,
                                                std::vector<TrialResult>(n_algorithms));

  par::parallel_for(pool, 0, n_trials, 1, [&](std::size_t i) {
    stats::Rng rng({options.seed_key, 0x5400700ULL, static_cast<std::uint64_t>(i)});
    const PreparedSample prepared = sample(i, rng);
    for (std::size_t a = 0; a < n_algorithms; ++a) {
      const std::uint64_t algo_seed = stats::mix_keys(
          {options.seed_key, static_cast<std::uint64_t>(i), static_cast<std::uint64_t>(a)});
      const sim::AlgorithmPtr algorithm = alg::make_algorithm(names[a], algo_seed);
      sim::RunResult run;
      results[i][a] = run_trial(prepared, *algorithm, options, options.observe ? &run : nullptr);
      if (options.observe) {
        TrialObservation observation;
        observation.trial = i;
        observation.sample = &prepared;
        observation.algorithm = algorithm.get();
        observation.run = &run;
        observation.speed_factor = options.speed_factor;
        observation.policy = options.policy;
        observation.algo_seed = algo_seed;
        options.observe(observation);
      }
    }
  });

  std::vector<ShootoutRow> rows(n_algorithms);
  for (std::size_t a = 0; a < n_algorithms; ++a) rows[a].name = names[a];
  for (std::size_t i = 0; i < n_trials; ++i) {
    std::size_t best = 0;
    double best_cost = std::numeric_limits<double>::infinity();
    for (std::size_t a = 0; a < n_algorithms; ++a) {
      const TrialResult& r = results[i][a];
      rows[a].cost.add(r.online_cost);
      rows[a].ratio.add(r.online_cost / r.proxy_cost);
      if (r.online_cost < best_cost) {
        best_cost = r.online_cost;
        best = a;
      }
    }
    ++rows[best].wins;
  }
  return rows;
}

}  // namespace mobsrv::core
