/// \file audit.hpp
/// Numerical audits of the paper's analysis machinery: Lemma 5's reduction,
/// Lemma 6's geometric inequality (the content of Figures 1 and 2), and the
/// per-step potential-function inequality behind Theorem 4.
///
/// These are *reproduction artifacts*: each theorem-level experiment
/// (E1–E8) measures end-to-end ratios, while the audits check the paper's
/// proof steps directly on millions of sampled configurations — the closest
/// one can get to "reproducing" a proof empirically.
#pragma once

#include "geometry/point.hpp"
#include "stats/rng.hpp"

namespace mobsrv::core {

// ---------------------------------------------------------------------------
// Lemma 6 (Figures 1 & 2): if s2 <= √δ/(1+δ/2) · a2 then
//                          h − q >= (1+δ/2)/(1+δ) · a1,
// where PAlg, P'Alg, c are collinear (P'Alg between PAlg and c), a1 =
// d(PAlg,P'Alg), a2 = d(P'Alg,c), s2 = d(P'Opt,c), h = d(P'Opt,PAlg),
// q = d(P'Opt,P'Alg).
//
// REPRODUCTION FINDING: the lemma as *literally* stated admits hairline
// violations (≈1% of the bound at worst) for OBTUSE placements of P'Opt
// (angle at c beyond 90°) when a1 << a2: the proof reduces every
// configuration to a right-angle one with the same h, s2, a1 but a smaller
// effective a2' = √(h²−s2²) − a1, and the premise cap is only guaranteed
// for a2', not for the actual a2. Example (δ=0.5, a1=0.001, a2=10, s2 at
// the premise cap, P'Opt at 124°): h−q = 8.246e-4 < bound = 8.333e-4.
// The amended bound with a (1−λ) slack factor, λ = kLemma6ObtuseSlack,
// holds in all our sampling; the potential-function inequality (the
// lemma's only consumer, audited end-to-end below and in E10) is unaffected
// because its constants absorb far more than 2%.
// ---------------------------------------------------------------------------

/// Relative slack under which the amended Lemma 6 holds empirically
/// (violations of the literal bound never exceeded ~1% in 10^6 samples;
/// 2% gives comfortable headroom).
inline constexpr double kLemma6ObtuseSlack = 0.02;

/// One sampled Lemma-6 configuration and its verdict.
struct Lemma6Sample {
  double a1 = 0.0, a2 = 0.0, s2 = 0.0, h = 0.0, q = 0.0;
  double bound = 0.0;   ///< (1+δ/2)/(1+δ)·a1
  double margin = 0.0;  ///< (h−q) − bound; >= −eps iff the literal lemma holds
  /// The lemma exactly as printed in the paper.
  [[nodiscard]] bool holds(double eps = 1e-9) const { return margin >= -eps; }
  /// The amended lemma with the obtuse-case slack (see file comment).
  [[nodiscard]] bool holds_amended(double eps = 1e-9) const {
    return margin >= -kLemma6ObtuseSlack * bound - eps;
  }
};

/// Samples a random configuration satisfying the lemma's premise in the
/// given dimension (>= 1) and evaluates the conclusion.
[[nodiscard]] Lemma6Sample sample_lemma6(int dim, double delta, stats::Rng& rng);

// ---------------------------------------------------------------------------
// Lemma 5: with c the closest center to the algorithm and o the optimum's
// position, (a) the median truly minimises the service cost, and (b)
// r·d(o,c) <= 4·Σ_i d(o,v_i) — the inequality that lets the analysis assume
// all requests sit on one point.
// ---------------------------------------------------------------------------

/// One sampled Lemma-5 configuration and its verdicts.
struct Lemma5Sample {
  double service_at_center = 0.0;  ///< Σ d(c, v_i)
  double service_at_opt = 0.0;     ///< Σ d(o, v_i)
  double simplified_opt = 0.0;     ///< r·d(o, c)
  [[nodiscard]] bool median_optimal(double eps = 1e-7) const {
    return service_at_center <= service_at_opt + eps;
  }
  [[nodiscard]] bool reduction_holds(double eps = 1e-7) const {
    return simplified_opt <= 4.0 * service_at_opt + eps;
  }
};

/// Samples r requests plus algorithm/optimum positions in a box of the
/// given half-width and evaluates the lemma.
[[nodiscard]] Lemma5Sample sample_lemma5(int dim, std::size_t r, double half_width,
                                         stats::Rng& rng);

// ---------------------------------------------------------------------------
// Potential-function audit (Sections 4.1 & 4.2): for every reachable
// configuration and every feasible OPT move, one MtC step satisfies
//     C_Alg + Δφ <= K(δ) · C_Opt            with K(δ) = O(1/δ^{3/2}),
// where φ is the paper's two-regime potential (quadratic far, linear near,
// coefficients doubled for r <= D).
// ---------------------------------------------------------------------------

/// Model/regime parameters for the audit.
struct PotentialConfig {
  int dim = 2;
  double delta = 0.5;
  double move_cost_weight = 4.0;  ///< D
  double max_step = 1.0;          ///< m
  std::size_t requests = 8;       ///< r (requests all at the point c)
};

/// One sampled potential step.
struct PotentialSample {
  double online_cost = 0.0;   ///< C_Alg = D·a1 + r·a2
  double opt_cost = 0.0;      ///< C_Opt = D·s1 + r·s2
  double phi_before = 0.0;
  double phi_after = 0.0;
  [[nodiscard]] double delta_phi() const { return phi_after - phi_before; }
  /// LHS of the inequality.
  [[nodiscard]] double lhs() const { return online_cost + delta_phi(); }
  /// Holds with bound K·C_Opt (+ small absolute slack for C_Opt ≈ 0)?
  [[nodiscard]] bool holds(double k, double eps = 1e-7) const {
    return lhs() <= k * opt_cost + eps;
  }
};

/// The paper's potential for the given regime (r vs D).
[[nodiscard]] double potential(const PotentialConfig& config, double p);

/// Samples a configuration (positions of OPT/Alg/c and a feasible OPT move,
/// spread across the analysis' case boundaries), executes MtC's actual move
/// rule, and returns the audit values.
[[nodiscard]] PotentialSample sample_potential_step(const PotentialConfig& config,
                                                    stats::Rng& rng);

/// The K(δ) our audit checks against: 500/δ^{3/2} covers every case
/// constant appearing in Sections 4.1–4.2 (the paper does not optimise
/// constants; neither do we).
[[nodiscard]] inline double audit_bound(double delta) {
  return 500.0 / (delta * std::sqrt(delta));
}

}  // namespace mobsrv::core
