/// \file scenario.hpp
/// The declarative scenario layer: workloads as versioned JSON files.
///
/// Every workload the library can generate in C++ — the Theorem 1–3/8
/// lower-bound adversaries, the realistic demand workloads and the mobility
/// models — plus the PR 2 CSV importers is expressible as one small JSON
/// file: generator kind + parameters + seed + an optional fleet spec.
/// Dropping a file into a corpus directory is all it takes to add a
/// scenario; no recompile (the ROADMAP's scenario-diversity axis).
///
/// The format is strict in the serve/frames tradition: unknown members,
/// wrong types and out-of-range values fail loudly with the file and
/// scenario name attached — a typo'd "hroizon" must never silently run the
/// default workload. Materialisation is bit-identical to the compiled-in
/// corpus: a scenario file named after a corpus scenario with matching
/// parameters produces exactly the `sim::Instance` that
/// `trace::make_corpus_trace` builds (the RNG stream is keyed by scenario
/// *name*, like the corpus — parity-tested per generator).
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "io/json.hpp"
#include "sim/model.hpp"
#include "trace/trace.hpp"

namespace mobsrv::scenario {

/// Format version declared by every scenario file ("v": 1).
inline constexpr std::uint32_t kFormatVersion = 1;

/// Hard ceiling on horizons, inline step counts and pause/phase lengths —
/// the trace importers' limit, for the same reason: a wall-clock timestamp
/// pasted into "horizon" must fail loudly, not allocate terabytes.
inline constexpr std::size_t kMaxRounds = std::size_t{1} << 22;

/// Thrown on malformed scenario files. The message carries the file (or
/// parse context) and, once known, the scenario name — the frames layer's
/// attributed-error discipline.
class ScenarioError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Optional fleet request: run this scenario with k servers spread on a
/// circle (interval in 1-D) of the given radius around the start
/// (ext::spread_starts). Scenarios with size > 1 are driven only by
/// fleet-native strategies in a tournament.
struct FleetSpec {
  std::size_t size = 1;
  double spread = 2.0;
};

/// Kind-specific generator parameters: the superset of every generator's
/// knobs, with the slice a kind reads defined by its parameter allowlist
/// (see scenario.cpp). parse() fills kind-appropriate defaults (the
/// adversary structs' own defaults, corpus values for the mobility extras)
/// before applying the file's overrides, so to_json(parse(x)) pins every
/// parameter explicitly.
struct ScenarioParams {
  std::size_t horizon = 0;
  double move_cost_weight = 1.0;  ///< JSON key "d"
  double max_step = 1.0;          ///< JSON key "m"
  int dim = 1;
  std::size_t requests_per_step = 1;
  std::size_t x = 0;
  double delta = 0.5;
  std::size_t r_min = 1;
  std::size_t r_max = 1;
  double server_speed = 1.0;
  double epsilon = 0.5;
  double drift_speed = 0.0;
  double spread = 1.0;
  double site_distance = 20.0;
  std::size_t period = 64;
  double burst_probability = 0.1;
  double half_width = 8.0;
  double speed = 1.0;
  double alpha = 0.85;
  double mean_speed_fraction = 0.5;
  double noise_fraction = 0.4;
  double min_speed_fraction = 0.5;
  std::size_t max_pause = 8;
  std::size_t half_period = 16;
  sim::ServiceOrder order = sim::ServiceOrder::kMoveThenServe;
  double agent_speed = 1.0;
  /// Importer kinds: explicit server start (demand; empty = first request).
  sim::Point start;
  /// Importer kinds: CSV path, resolved against the scenario file's
  /// directory at materialise time. Exactly one of file/steps for "demand";
  /// "waypoints" is file-only.
  std::string file;
  /// Inline demand data: one entry per step, each a (possibly empty) batch.
  std::vector<std::vector<sim::Point>> steps;
  bool has_inline_steps = false;
};

/// One parsed, validated scenario.
struct Scenario {
  std::string name;
  std::string kind;
  std::uint64_t seed = 0;
  double speed_factor = 1.5;  ///< (1+δ) granted to online algorithms
  std::optional<FleetSpec> fleet;
  ScenarioParams params;
};

/// Every generator/importer kind, in registry order.
[[nodiscard]] const std::vector<std::string>& scenario_kinds();
[[nodiscard]] bool is_scenario_kind(const std::string& kind);

/// Parses and validates one scenario document. \p context prefixes error
/// messages (a file path, or "<inline>" for tests). Throws ScenarioError on
/// any unknown member, missing required member, wrong type or out-of-range
/// value.
[[nodiscard]] Scenario parse(std::string_view text, const std::string& context);
[[nodiscard]] Scenario from_json(const io::Json& doc, const std::string& context);

/// Reads and parses \p path (context = the path itself).
[[nodiscard]] Scenario load(const std::filesystem::path& path);

/// The scenario as a JSON document with every parameter pinned explicitly,
/// members in canonical order — from_json(to_json(s)) reproduces s exactly.
[[nodiscard]] io::Json to_json(const Scenario& sc);

/// The canonical on-disk form: to_json pretty-printed (2-space indent,
/// newline-terminated). Committed corpus files are byte-compared against it
/// in tests, so regeneration is always possible from code.
[[nodiscard]] std::string canonical_text(const Scenario& sc);

/// Builds the scenario's workload: generator kinds drive the same seeded
/// constructions as trace::make_corpus_trace (bit-identical instances for
/// matching name/parameters/seed); importer kinds read their CSV relative
/// to \p base_dir. The result carries meta {name, "scenario", seed} plus
/// the adversary solution / moving-client provenance where the generator
/// provides one.
[[nodiscard]] trace::TraceFile materialize(const Scenario& sc,
                                           const std::filesystem::path& base_dir = {});

/// All *.json files directly inside \p dir, sorted by name. Throws
/// ScenarioError when the directory is missing or holds none.
[[nodiscard]] std::vector<std::filesystem::path> list_scenario_files(
    const std::filesystem::path& dir);

/// The committed starter corpus (scenarios/ in the repo): scenario-file
/// equivalents of all 12 compiled-in corpus generators (corpus-pinned
/// parameters), importer examples (inline + CSV demand, CSV waypoints) and
/// a fleet scenario. scenarios/<name>.json holds canonical_text() of each.
[[nodiscard]] const std::vector<Scenario>& starter_corpus();

}  // namespace mobsrv::scenario
