#include "scenario/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <initializer_list>
#include <iterator>
#include <utility>

#include "adversary/lower_bounds.hpp"
#include "adversary/mobility.hpp"
#include "adversary/moving_client_lb.hpp"
#include "adversary/workloads.hpp"
#include "stats/rng.hpp"
#include "trace/corpus.hpp"

namespace mobsrv::scenario {

namespace {

using io::Json;

[[noreturn]] void fail(const std::string& ctx, const std::string& message) {
  throw ScenarioError(ctx + ": " + message);
}

std::string quoted(const char* key) {
  std::string out;
  out += '"';
  out += key;
  out += '"';
  return out;
}

/// The frames-layer allowlist discipline: every member of \p obj must be
/// named in \p allowed, so typos fail loudly instead of silently running
/// defaults. The error enumerates the allowed members — a scenario author's
/// only feedback channel is this message.
void reject_unknown_members(const Json& obj, std::initializer_list<const char*> allowed,
                            const std::string& what, const std::string& ctx) {
  for (const Json::Member& member : obj.as_object()) {
    bool ok = false;
    for (const char* key : allowed) ok = ok || member.first == key;
    if (ok) continue;
    std::string list;
    for (const char* key : allowed) {
      if (!list.empty()) list += ", ";
      list += key;
    }
    fail(ctx, "unknown member \"" + member.first + "\" in " + what + " (allowed: " + list + ")");
  }
}

const Json& require(const Json& obj, const char* key, const std::string& ctx) {
  const Json* value = obj.find(key);
  if (value == nullptr) fail(ctx, "missing required member " + quoted(key));
  return *value;
}

double double_field(const Json& obj, const char* key, double fallback, const std::string& ctx) {
  const Json* value = obj.find(key);
  if (value == nullptr) return fallback;
  if (!value->is_number()) fail(ctx, quoted(key) + " must be a number");
  const double v = value->as_double();
  if (!std::isfinite(v)) fail(ctx, quoted(key) + " must be finite");
  return v;
}

double double_at_least(const Json& obj, const char* key, double fallback, double min,
                       const std::string& ctx) {
  const double v = double_field(obj, key, fallback, ctx);
  if (v < min) fail(ctx, quoted(key) + " must be >= " + std::to_string(min));
  return v;
}

double double_above(const Json& obj, const char* key, double fallback, double min,
                    const std::string& ctx) {
  const double v = double_field(obj, key, fallback, ctx);
  if (v <= min) fail(ctx, quoted(key) + " must be > " + std::to_string(min));
  return v;
}

double unit_field(const Json& obj, const char* key, double fallback, const std::string& ctx) {
  const double v = double_field(obj, key, fallback, ctx);
  if (v < 0.0 || v > 1.0) fail(ctx, quoted(key) + " must be in [0, 1]");
  return v;
}

double fraction_field(const Json& obj, const char* key, double fallback, const std::string& ctx) {
  const double v = double_field(obj, key, fallback, ctx);
  if (v <= 0.0 || v > 1.0) fail(ctx, quoted(key) + " must be in (0, 1]");
  return v;
}

/// Integer-valued member in [min, kMaxRounds] — the shared ceiling keeps a
/// pasted wall-clock timestamp from dense-allocating terabytes.
std::size_t count_field(const Json& obj, const char* key, std::size_t fallback, std::size_t min,
                        const std::string& ctx) {
  const Json* value = obj.find(key);
  if (value == nullptr) return fallback;
  if (!value->is_number()) fail(ctx, quoted(key) + " must be a number");
  std::uint64_t v = 0;
  try {
    v = value->as_uint64();
  } catch (const io::JsonError&) {
    fail(ctx, quoted(key) + " must be a non-negative integer");
  }
  if (v < min) fail(ctx, quoted(key) + " must be >= " + std::to_string(min));
  if (v > kMaxRounds)
    fail(ctx, quoted(key) + " exceeds the limit of " + std::to_string(kMaxRounds));
  return static_cast<std::size_t>(v);
}

int dim_field(const Json& obj, const char* key, int fallback, const std::string& ctx) {
  const std::size_t v = count_field(obj, key, static_cast<std::size_t>(fallback), 1, ctx);
  if (v > static_cast<std::size_t>(sim::Point::kMaxDim))
    fail(ctx, quoted(key) + " must be in [1, " + std::to_string(sim::Point::kMaxDim) + "]");
  return static_cast<int>(v);
}

std::string string_field(const Json& obj, const char* key, const std::string& ctx) {
  const Json& value = require(obj, key, ctx);
  if (!value.is_string()) fail(ctx, quoted(key) + " must be a string");
  if (value.as_string().empty()) fail(ctx, quoted(key) + " must not be empty");
  return value.as_string();
}

sim::ServiceOrder order_field(const Json& obj, const char* key, sim::ServiceOrder fallback,
                              const std::string& ctx) {
  const Json* value = obj.find(key);
  if (value == nullptr) return fallback;
  if (!value->is_string()) fail(ctx, quoted(key) + " must be a string");
  const std::string& s = value->as_string();
  if (s == "move-then-serve") return sim::ServiceOrder::kMoveThenServe;
  if (s == "serve-then-move") return sim::ServiceOrder::kServeThenMove;
  fail(ctx, quoted(key) + " must be \"move-then-serve\" or \"serve-then-move\", got \"" + s + "\"");
}

sim::Point point_value(const Json& value, const std::string& what, const std::string& ctx) {
  if (!value.is_array()) fail(ctx, what + " must be an array of coordinates");
  const Json::Array& coords = value.as_array();
  if (coords.empty() || coords.size() > static_cast<std::size_t>(sim::Point::kMaxDim))
    fail(ctx, what + " must hold 1-" + std::to_string(sim::Point::kMaxDim) + " coordinates");
  sim::Point p(static_cast<int>(coords.size()));
  for (std::size_t i = 0; i < coords.size(); ++i) {
    if (!coords[i].is_number()) fail(ctx, what + " coordinates must be numbers");
    p[static_cast<int>(i)] = coords[i].as_double();
    if (!std::isfinite(p[static_cast<int>(i)])) fail(ctx, what + " coordinates must be finite");
  }
  return p;
}

/// Kind-appropriate defaults, copied from the generator parameter structs
/// themselves so the two cannot drift. The mobility kinds additionally pin
/// the corpus hardcodes (server at unit speed, D = 2) as their defaults.
ScenarioParams defaults_for(const std::string& kind) {
  ScenarioParams p;
  if (kind == "theorem1") {
    const adv::Theorem1Params d;
    p.horizon = d.horizon;
    p.move_cost_weight = d.move_cost_weight;
    p.max_step = d.max_step;
    p.dim = d.dim;
    p.requests_per_step = d.requests_per_step;
    p.x = d.x;
  } else if (kind == "theorem2") {
    const adv::Theorem2Params d;
    p.horizon = d.horizon;
    p.move_cost_weight = d.move_cost_weight;
    p.max_step = d.max_step;
    p.dim = d.dim;
    p.delta = d.delta;
    p.r_min = d.r_min;
    p.r_max = d.r_max;
    p.x = d.x;
  } else if (kind == "theorem3") {
    const adv::Theorem3Params d;
    p.horizon = d.horizon;
    p.move_cost_weight = d.move_cost_weight;
    p.max_step = d.max_step;
    p.dim = d.dim;
    p.requests_per_step = d.requests_per_step;
  } else if (kind == "theorem8-moving-client") {
    const adv::Theorem8Params d;
    p.horizon = d.horizon;
    p.server_speed = d.server_speed;
    p.epsilon = d.epsilon;
    p.move_cost_weight = d.move_cost_weight;
    p.dim = d.dim;
    p.x = d.x;
  } else if (kind == "drifting-hotspot") {
    const adv::DriftingHotspotParams d;
    p.horizon = d.horizon;
    p.dim = d.dim;
    p.move_cost_weight = d.move_cost_weight;
    p.max_step = d.max_step;
    p.drift_speed = d.drift_speed;
    p.spread = d.spread;
    p.r_min = d.r_min;
    p.r_max = d.r_max;
  } else if (kind == "commute") {
    const adv::CommuteParams d;
    p.horizon = d.horizon;
    p.dim = d.dim;
    p.move_cost_weight = d.move_cost_weight;
    p.max_step = d.max_step;
    p.site_distance = d.site_distance;
    p.period = d.period;
    p.spread = d.spread;
    p.requests_per_step = d.requests_per_step;
  } else if (kind == "bursts") {
    const adv::BurstParams d;
    p.horizon = d.horizon;
    p.dim = d.dim;
    p.move_cost_weight = d.move_cost_weight;
    p.max_step = d.max_step;
    p.drift_speed = d.drift_speed;
    p.spread = d.spread;
    p.r_min = d.r_min;
    p.r_max = d.r_max;
    p.burst_probability = d.burst_probability;
  } else if (kind == "uniform-noise") {
    const adv::UniformNoiseParams d;
    p.horizon = d.horizon;
    p.dim = d.dim;
    p.move_cost_weight = d.move_cost_weight;
    p.max_step = d.max_step;
    p.half_width = d.half_width;
    p.requests_per_step = d.requests_per_step;
  } else if (kind == "random-waypoint") {
    const adv::RandomWaypointParams d;
    p.horizon = d.horizon;
    p.dim = d.dim;
    p.speed = d.speed;
    p.half_width = d.half_width;
    p.max_pause = d.max_pause;
    p.min_speed_fraction = d.min_speed_fraction;
    p.move_cost_weight = 2.0;  // the corpus single-agent wrapper's choice
    p.server_speed = 1.0;
  } else if (kind == "gauss-markov") {
    const adv::GaussMarkovParams d;
    p.horizon = d.horizon;
    p.dim = d.dim;
    p.speed = d.speed;
    p.alpha = d.alpha;
    p.mean_speed_fraction = d.mean_speed_fraction;
    p.noise_fraction = d.noise_fraction;
    p.move_cost_weight = 2.0;
    p.server_speed = 1.0;
  } else if (kind == "zigzag") {
    const adv::ZigZagParams d;
    p.horizon = d.horizon;
    p.dim = d.dim;
    p.speed = d.speed;
    p.half_period = d.half_period;
    p.move_cost_weight = 2.0;
    p.server_speed = 1.0;
  } else if (kind == "demand") {
    p.move_cost_weight = 1.0;
    p.max_step = 1.0;
    p.order = sim::ServiceOrder::kMoveThenServe;
  } else if (kind == "waypoints") {
    p.move_cost_weight = 1.0;
    p.server_speed = 1.0;
    p.agent_speed = 1.0;
  }
  return p;
}

void parse_inline_steps(const Json& value, ScenarioParams& p, const std::string& ctx) {
  if (!value.is_array()) fail(ctx, "\"steps\" must be an array of request batches");
  const Json::Array& steps = value.as_array();
  if (steps.empty()) fail(ctx, "\"steps\" must contain at least one step");
  if (steps.size() > kMaxRounds)
    fail(ctx, "\"steps\" exceeds the limit of " + std::to_string(kMaxRounds) + " rounds");
  int dim = p.start.empty() ? 0 : p.start.dim();
  p.steps.reserve(steps.size());
  for (std::size_t t = 0; t < steps.size(); ++t) {
    const std::string where = "\"steps\"[" + std::to_string(t) + "]";
    if (!steps[t].is_array()) fail(ctx, where + " must be an array of points");
    std::vector<sim::Point> batch;
    batch.reserve(steps[t].as_array().size());
    for (const Json& request : steps[t].as_array()) {
      sim::Point point = point_value(request, where + " request", ctx);
      if (dim == 0) dim = point.dim();
      if (point.dim() != dim)
        fail(ctx, where + ": inconsistent dimension (expected " + std::to_string(dim) +
                      " coordinates)");
      batch.push_back(std::move(point));
    }
    p.steps.push_back(std::move(batch));
  }
  if (dim == 0)
    fail(ctx, "\"steps\" holds no requests and no \"start\" is given — cannot infer the dimension");
  p.has_inline_steps = true;
}

ScenarioParams parse_params(const std::string& kind, const Json& obj, const std::string& ctx) {
  ScenarioParams p = defaults_for(kind);
  const std::string what = "\"params\" for kind \"" + kind + "\"";

  if (kind == "theorem1" || kind == "theorem3") {
    reject_unknown_members(obj, {"horizon", "d", "m", "dim", "requests_per_step", "x"}, what, ctx);
    if (kind == "theorem3" && obj.find("x") != nullptr)
      fail(ctx, "unknown member \"x\" in " + what +
                    " (allowed: horizon, d, m, dim, requests_per_step)");
    p.horizon = count_field(obj, "horizon", p.horizon, 1, ctx);
    p.move_cost_weight = double_at_least(obj, "d", p.move_cost_weight, 1.0, ctx);
    p.max_step = double_above(obj, "m", p.max_step, 0.0, ctx);
    p.dim = dim_field(obj, "dim", p.dim, ctx);
    p.requests_per_step = count_field(obj, "requests_per_step", p.requests_per_step, 1, ctx);
    p.x = count_field(obj, "x", p.x, 0, ctx);
    return p;
  }
  if (kind == "theorem2") {
    reject_unknown_members(obj, {"horizon", "d", "m", "dim", "delta", "r_min", "r_max", "x"}, what,
                           ctx);
    p.horizon = count_field(obj, "horizon", p.horizon, 1, ctx);
    p.move_cost_weight = double_at_least(obj, "d", p.move_cost_weight, 1.0, ctx);
    p.max_step = double_above(obj, "m", p.max_step, 0.0, ctx);
    p.dim = dim_field(obj, "dim", p.dim, ctx);
    p.delta = double_above(obj, "delta", p.delta, 0.0, ctx);
    p.r_min = count_field(obj, "r_min", p.r_min, 1, ctx);
    p.r_max = count_field(obj, "r_max", p.r_max, 1, ctx);
    if (p.r_max < p.r_min) fail(ctx, "\"r_max\" must be >= \"r_min\"");
    p.x = count_field(obj, "x", p.x, 0, ctx);
    return p;
  }
  if (kind == "theorem8-moving-client") {
    reject_unknown_members(obj, {"horizon", "server_speed", "epsilon", "d", "dim", "x"}, what, ctx);
    p.horizon = count_field(obj, "horizon", p.horizon, 1, ctx);
    p.server_speed = double_above(obj, "server_speed", p.server_speed, 0.0, ctx);
    p.epsilon = double_above(obj, "epsilon", p.epsilon, 0.0, ctx);
    p.move_cost_weight = double_at_least(obj, "d", p.move_cost_weight, 1.0, ctx);
    p.dim = dim_field(obj, "dim", p.dim, ctx);
    p.x = count_field(obj, "x", p.x, 0, ctx);
    return p;
  }
  if (kind == "drifting-hotspot") {
    reject_unknown_members(obj, {"horizon", "dim", "d", "m", "drift_speed", "spread", "r_min",
                                 "r_max"},
                           what, ctx);
    p.horizon = count_field(obj, "horizon", p.horizon, 1, ctx);
    p.dim = dim_field(obj, "dim", p.dim, ctx);
    p.move_cost_weight = double_at_least(obj, "d", p.move_cost_weight, 1.0, ctx);
    p.max_step = double_above(obj, "m", p.max_step, 0.0, ctx);
    p.drift_speed = double_at_least(obj, "drift_speed", p.drift_speed, 0.0, ctx);
    p.spread = double_at_least(obj, "spread", p.spread, 0.0, ctx);
    p.r_min = count_field(obj, "r_min", p.r_min, 1, ctx);
    p.r_max = count_field(obj, "r_max", p.r_max, 1, ctx);
    if (p.r_max < p.r_min) fail(ctx, "\"r_max\" must be >= \"r_min\"");
    return p;
  }
  if (kind == "commute") {
    reject_unknown_members(obj, {"horizon", "dim", "d", "m", "site_distance", "period", "spread",
                                 "requests_per_step"},
                           what, ctx);
    p.horizon = count_field(obj, "horizon", p.horizon, 1, ctx);
    p.dim = dim_field(obj, "dim", p.dim, ctx);
    p.move_cost_weight = double_at_least(obj, "d", p.move_cost_weight, 1.0, ctx);
    p.max_step = double_above(obj, "m", p.max_step, 0.0, ctx);
    p.site_distance = double_above(obj, "site_distance", p.site_distance, 0.0, ctx);
    p.period = count_field(obj, "period", p.period, 1, ctx);
    p.spread = double_at_least(obj, "spread", p.spread, 0.0, ctx);
    p.requests_per_step = count_field(obj, "requests_per_step", p.requests_per_step, 1, ctx);
    return p;
  }
  if (kind == "bursts") {
    reject_unknown_members(obj, {"horizon", "dim", "d", "m", "drift_speed", "spread", "r_min",
                                 "r_max", "burst_probability"},
                           what, ctx);
    p.horizon = count_field(obj, "horizon", p.horizon, 1, ctx);
    p.dim = dim_field(obj, "dim", p.dim, ctx);
    p.move_cost_weight = double_at_least(obj, "d", p.move_cost_weight, 1.0, ctx);
    p.max_step = double_above(obj, "m", p.max_step, 0.0, ctx);
    p.drift_speed = double_at_least(obj, "drift_speed", p.drift_speed, 0.0, ctx);
    p.spread = double_at_least(obj, "spread", p.spread, 0.0, ctx);
    p.r_min = count_field(obj, "r_min", p.r_min, 1, ctx);
    p.r_max = count_field(obj, "r_max", p.r_max, 1, ctx);
    if (p.r_max < p.r_min) fail(ctx, "\"r_max\" must be >= \"r_min\"");
    p.burst_probability = unit_field(obj, "burst_probability", p.burst_probability, ctx);
    return p;
  }
  if (kind == "uniform-noise") {
    reject_unknown_members(obj, {"horizon", "dim", "d", "m", "half_width", "requests_per_step"},
                           what, ctx);
    p.horizon = count_field(obj, "horizon", p.horizon, 1, ctx);
    p.dim = dim_field(obj, "dim", p.dim, ctx);
    p.move_cost_weight = double_at_least(obj, "d", p.move_cost_weight, 1.0, ctx);
    p.max_step = double_above(obj, "m", p.max_step, 0.0, ctx);
    p.half_width = double_above(obj, "half_width", p.half_width, 0.0, ctx);
    p.requests_per_step = count_field(obj, "requests_per_step", p.requests_per_step, 1, ctx);
    return p;
  }
  if (kind == "random-waypoint") {
    reject_unknown_members(obj, {"horizon", "dim", "speed", "half_width", "max_pause",
                                 "min_speed_fraction", "d", "server_speed"},
                           what, ctx);
    p.horizon = count_field(obj, "horizon", p.horizon, 1, ctx);
    p.dim = dim_field(obj, "dim", p.dim, ctx);
    p.speed = double_above(obj, "speed", p.speed, 0.0, ctx);
    p.half_width = double_above(obj, "half_width", p.half_width, 0.0, ctx);
    p.max_pause = count_field(obj, "max_pause", p.max_pause, 0, ctx);
    p.min_speed_fraction = fraction_field(obj, "min_speed_fraction", p.min_speed_fraction, ctx);
    p.move_cost_weight = double_at_least(obj, "d", p.move_cost_weight, 1.0, ctx);
    p.server_speed = double_above(obj, "server_speed", p.server_speed, 0.0, ctx);
    return p;
  }
  if (kind == "gauss-markov") {
    reject_unknown_members(obj, {"horizon", "dim", "speed", "alpha", "mean_speed_fraction",
                                 "noise_fraction", "d", "server_speed"},
                           what, ctx);
    p.horizon = count_field(obj, "horizon", p.horizon, 1, ctx);
    p.dim = dim_field(obj, "dim", p.dim, ctx);
    p.speed = double_above(obj, "speed", p.speed, 0.0, ctx);
    p.alpha = unit_field(obj, "alpha", p.alpha, ctx);
    p.mean_speed_fraction = fraction_field(obj, "mean_speed_fraction", p.mean_speed_fraction, ctx);
    p.noise_fraction = double_at_least(obj, "noise_fraction", p.noise_fraction, 0.0, ctx);
    p.move_cost_weight = double_at_least(obj, "d", p.move_cost_weight, 1.0, ctx);
    p.server_speed = double_above(obj, "server_speed", p.server_speed, 0.0, ctx);
    return p;
  }
  if (kind == "zigzag") {
    reject_unknown_members(obj, {"horizon", "dim", "speed", "half_period", "d", "server_speed"},
                           what, ctx);
    p.horizon = count_field(obj, "horizon", p.horizon, 1, ctx);
    p.dim = dim_field(obj, "dim", p.dim, ctx);
    p.speed = double_above(obj, "speed", p.speed, 0.0, ctx);
    p.half_period = count_field(obj, "half_period", p.half_period, 1, ctx);
    p.move_cost_weight = double_at_least(obj, "d", p.move_cost_weight, 1.0, ctx);
    p.server_speed = double_above(obj, "server_speed", p.server_speed, 0.0, ctx);
    return p;
  }
  if (kind == "demand") {
    reject_unknown_members(obj, {"order", "d", "m", "start", "file", "steps"}, what, ctx);
    p.order = order_field(obj, "order", p.order, ctx);
    p.move_cost_weight = double_at_least(obj, "d", p.move_cost_weight, 1.0, ctx);
    p.max_step = double_above(obj, "m", p.max_step, 0.0, ctx);
    if (const Json* start = obj.find("start")) p.start = point_value(*start, "\"start\"", ctx);
    const Json* file = obj.find("file");
    const Json* steps = obj.find("steps");
    if ((file != nullptr) == (steps != nullptr))
      fail(ctx, "kind \"demand\" requires exactly one of \"file\" and \"steps\"");
    if (file != nullptr) {
      p.file = string_field(obj, "file", ctx);
    } else {
      parse_inline_steps(*steps, p, ctx);
      if (!p.start.empty()) {
        // parse_inline_steps already enforced one dimension across requests;
        // an explicit start must share it.
        for (const std::vector<sim::Point>& batch : p.steps)
          for (const sim::Point& request : batch)
            if (request.dim() != p.start.dim())
              fail(ctx, "\"start\" dimension " + std::to_string(p.start.dim()) +
                            " does not match the request dimension " +
                            std::to_string(request.dim()));
      }
    }
    return p;
  }
  if (kind == "waypoints") {
    reject_unknown_members(obj, {"d", "server_speed", "agent_speed", "file"}, what, ctx);
    p.move_cost_weight = double_at_least(obj, "d", p.move_cost_weight, 1.0, ctx);
    p.server_speed = double_above(obj, "server_speed", p.server_speed, 0.0, ctx);
    p.agent_speed = double_above(obj, "agent_speed", p.agent_speed, 0.0, ctx);
    p.file = string_field(obj, "file", ctx);
    return p;
  }
  fail(ctx, "unknown kind \"" + kind + "\"");  // unreachable: kind pre-validated
}

trace::TraceFile from_adversarial(trace::TraceMeta meta, adv::AdversarialInstance a) {
  trace::TraceFile file(std::move(meta), std::move(a.instance));
  file.adversary = trace::AdversaryInfo{a.adversary_cost, std::move(a.adversary_positions)};
  return file;
}

trace::TraceFile from_moving_client(trace::TraceMeta meta, sim::MovingClientInstance mc) {
  trace::TraceFile file(std::move(meta), sim::to_instance(mc));
  file.moving_client = std::move(mc);
  return file;
}

sim::MovingClientInstance single_agent(sim::Point start, double server_speed, double agent_speed,
                                       double d_weight, sim::AgentPath path) {
  sim::MovingClientInstance mc;
  mc.start = std::move(start);
  mc.server_speed = server_speed;
  mc.agent_speed = agent_speed;
  mc.move_cost_weight = d_weight;
  mc.agents.push_back(std::move(path));
  return mc;
}

std::filesystem::path resolve_path(const std::filesystem::path& base_dir,
                                   const std::string& file) {
  const std::filesystem::path path(file);
  if (path.is_absolute() || base_dir.empty()) return path;
  return base_dir / path;
}

const char* order_name(sim::ServiceOrder order) {
  return order == sim::ServiceOrder::kMoveThenServe ? "move-then-serve" : "serve-then-move";
}

Json point_json(const sim::Point& p) {
  Json arr = Json::array();
  for (int i = 0; i < p.dim(); ++i) arr.push_back(Json(p[i]));
  return arr;
}

Json params_json(const Scenario& sc) {
  const ScenarioParams& p = sc.params;
  Json obj = Json::object();
  if (sc.kind == "theorem1" || sc.kind == "theorem3") {
    obj.set("horizon", Json(p.horizon));
    obj.set("d", Json(p.move_cost_weight));
    obj.set("m", Json(p.max_step));
    obj.set("dim", Json(p.dim));
    obj.set("requests_per_step", Json(p.requests_per_step));
    if (sc.kind == "theorem1") obj.set("x", Json(p.x));
  } else if (sc.kind == "theorem2") {
    obj.set("horizon", Json(p.horizon));
    obj.set("d", Json(p.move_cost_weight));
    obj.set("m", Json(p.max_step));
    obj.set("dim", Json(p.dim));
    obj.set("delta", Json(p.delta));
    obj.set("r_min", Json(p.r_min));
    obj.set("r_max", Json(p.r_max));
    obj.set("x", Json(p.x));
  } else if (sc.kind == "theorem8-moving-client") {
    obj.set("horizon", Json(p.horizon));
    obj.set("server_speed", Json(p.server_speed));
    obj.set("epsilon", Json(p.epsilon));
    obj.set("d", Json(p.move_cost_weight));
    obj.set("dim", Json(p.dim));
    obj.set("x", Json(p.x));
  } else if (sc.kind == "drifting-hotspot") {
    obj.set("horizon", Json(p.horizon));
    obj.set("dim", Json(p.dim));
    obj.set("d", Json(p.move_cost_weight));
    obj.set("m", Json(p.max_step));
    obj.set("drift_speed", Json(p.drift_speed));
    obj.set("spread", Json(p.spread));
    obj.set("r_min", Json(p.r_min));
    obj.set("r_max", Json(p.r_max));
  } else if (sc.kind == "commute") {
    obj.set("horizon", Json(p.horizon));
    obj.set("dim", Json(p.dim));
    obj.set("d", Json(p.move_cost_weight));
    obj.set("m", Json(p.max_step));
    obj.set("site_distance", Json(p.site_distance));
    obj.set("period", Json(p.period));
    obj.set("spread", Json(p.spread));
    obj.set("requests_per_step", Json(p.requests_per_step));
  } else if (sc.kind == "bursts") {
    obj.set("horizon", Json(p.horizon));
    obj.set("dim", Json(p.dim));
    obj.set("d", Json(p.move_cost_weight));
    obj.set("m", Json(p.max_step));
    obj.set("drift_speed", Json(p.drift_speed));
    obj.set("spread", Json(p.spread));
    obj.set("r_min", Json(p.r_min));
    obj.set("r_max", Json(p.r_max));
    obj.set("burst_probability", Json(p.burst_probability));
  } else if (sc.kind == "uniform-noise") {
    obj.set("horizon", Json(p.horizon));
    obj.set("dim", Json(p.dim));
    obj.set("d", Json(p.move_cost_weight));
    obj.set("m", Json(p.max_step));
    obj.set("half_width", Json(p.half_width));
    obj.set("requests_per_step", Json(p.requests_per_step));
  } else if (sc.kind == "random-waypoint") {
    obj.set("horizon", Json(p.horizon));
    obj.set("dim", Json(p.dim));
    obj.set("speed", Json(p.speed));
    obj.set("half_width", Json(p.half_width));
    obj.set("max_pause", Json(p.max_pause));
    obj.set("min_speed_fraction", Json(p.min_speed_fraction));
    obj.set("d", Json(p.move_cost_weight));
    obj.set("server_speed", Json(p.server_speed));
  } else if (sc.kind == "gauss-markov") {
    obj.set("horizon", Json(p.horizon));
    obj.set("dim", Json(p.dim));
    obj.set("speed", Json(p.speed));
    obj.set("alpha", Json(p.alpha));
    obj.set("mean_speed_fraction", Json(p.mean_speed_fraction));
    obj.set("noise_fraction", Json(p.noise_fraction));
    obj.set("d", Json(p.move_cost_weight));
    obj.set("server_speed", Json(p.server_speed));
  } else if (sc.kind == "zigzag") {
    obj.set("horizon", Json(p.horizon));
    obj.set("dim", Json(p.dim));
    obj.set("speed", Json(p.speed));
    obj.set("half_period", Json(p.half_period));
    obj.set("d", Json(p.move_cost_weight));
    obj.set("server_speed", Json(p.server_speed));
  } else if (sc.kind == "demand") {
    obj.set("order", Json(order_name(p.order)));
    obj.set("d", Json(p.move_cost_weight));
    obj.set("m", Json(p.max_step));
    if (!p.start.empty()) obj.set("start", point_json(p.start));
    if (p.has_inline_steps) {
      Json steps = Json::array();
      for (const std::vector<sim::Point>& batch : p.steps) {
        Json requests = Json::array();
        for (const sim::Point& request : batch) requests.push_back(point_json(request));
        steps.push_back(std::move(requests));
      }
      obj.set("steps", std::move(steps));
    } else {
      obj.set("file", Json(p.file));
    }
  } else if (sc.kind == "waypoints") {
    obj.set("d", Json(p.move_cost_weight));
    obj.set("server_speed", Json(p.server_speed));
    obj.set("agent_speed", Json(p.agent_speed));
    obj.set("file", Json(p.file));
  }
  return obj;
}

/// True when \p arr can stay on one line: only numbers, or arrays of
/// numbers (a point, or a batch of points). "steps" (arrays of arrays of
/// arrays) breaks one batch per line.
bool inline_array(const Json& arr) {
  for (const Json& element : arr.as_array()) {
    if (element.is_object()) return false;
    if (element.is_array())
      for (const Json& inner : element.as_array())
        if (inner.is_array() || inner.is_object()) return false;
  }
  return true;
}

void pretty(std::string& out, const Json& value, int indent) {
  const auto pad = [&out](int level) { out.append(static_cast<std::size_t>(level) * 2, ' '); };
  if (value.is_object()) {
    const Json::Object& obj = value.as_object();
    if (obj.empty()) {
      out += "{}";
      return;
    }
    out += "{\n";
    for (std::size_t i = 0; i < obj.size(); ++i) {
      pad(indent + 1);
      Json(obj[i].first).dump_to(out);
      out += ": ";
      pretty(out, obj[i].second, indent + 1);
      if (i + 1 < obj.size()) out += ",";
      out += "\n";
    }
    pad(indent);
    out += "}";
    return;
  }
  if (value.is_array() && !inline_array(value)) {
    const Json::Array& arr = value.as_array();
    out += "[\n";
    for (std::size_t i = 0; i < arr.size(); ++i) {
      pad(indent + 1);
      pretty(out, arr[i], indent + 1);
      if (i + 1 < arr.size()) out += ",";
      out += "\n";
    }
    pad(indent);
    out += "]";
    return;
  }
  value.dump_to(out);
}

bool valid_name(const std::string& name) {
  if (name.empty()) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
                    c == '-' || c == '_' || c == '.';
    if (!ok) return false;
  }
  return true;
}

}  // namespace

const std::vector<std::string>& scenario_kinds() {
  static const std::vector<std::string> kKinds = {
      "theorem1",       "theorem2", "theorem3",      "theorem8-moving-client",
      "drifting-hotspot", "commute", "bursts",        "uniform-noise",
      "random-waypoint", "gauss-markov", "zigzag",   "demand",
      "waypoints",
  };
  return kKinds;
}

bool is_scenario_kind(const std::string& kind) {
  const std::vector<std::string>& kinds = scenario_kinds();
  return std::find(kinds.begin(), kinds.end(), kind) != kinds.end();
}

Scenario from_json(const Json& doc, const std::string& context) {
  std::string ctx = context;
  if (!doc.is_object()) fail(ctx, "a scenario document must be a JSON object");

  // Pull the name before anything else so every later error is attributed
  // to the scenario, not just the file.
  if (const Json* name = doc.find("name"); name != nullptr && name->is_string())
    ctx += ": scenario \"" + name->as_string() + "\"";

  reject_unknown_members(doc, {"v", "name", "kind", "seed", "speed_factor", "params", "fleet"},
                         "a scenario document", ctx);

  const Json& version = require(doc, "v", ctx);
  bool version_ok = version.is_number();
  if (version_ok) {
    try {
      version_ok = version.as_uint64() == kFormatVersion;
    } catch (const io::JsonError&) {
      version_ok = false;
    }
  }
  if (!version_ok)
    fail(ctx, "unsupported format version (this build reads \"v\": " +
                  std::to_string(kFormatVersion) + ")");

  Scenario sc;
  sc.name = string_field(doc, "name", ctx);
  if (!valid_name(sc.name))
    fail(ctx, "\"name\" must use only letters, digits, '-', '_' and '.', got \"" + sc.name + "\"");
  sc.kind = string_field(doc, "kind", ctx);
  if (!is_scenario_kind(sc.kind)) {
    std::string list;
    for (const std::string& kind : scenario_kinds()) {
      if (!list.empty()) list += ", ";
      list += kind;
    }
    fail(ctx, "unknown kind \"" + sc.kind + "\" (known kinds: " + list + ")");
  }

  if (const Json* seed = doc.find("seed")) {
    if (!seed->is_number()) fail(ctx, "\"seed\" must be a number");
    try {
      sc.seed = seed->as_uint64();
    } catch (const io::JsonError&) {
      fail(ctx, "\"seed\" must be a non-negative integer");
    }
  }
  sc.speed_factor = double_at_least(doc, "speed_factor", sc.speed_factor, 1.0, ctx);

  const Json* params = doc.find("params");
  if (params != nullptr && !params->is_object()) fail(ctx, "\"params\" must be an object");
  const Json empty = Json::object();
  sc.params = parse_params(sc.kind, params != nullptr ? *params : empty, ctx);

  if (const Json* fleet = doc.find("fleet")) {
    if (!fleet->is_object()) fail(ctx, "\"fleet\" must be an object");
    reject_unknown_members(*fleet, {"size", "spread"}, "\"fleet\"", ctx);
    FleetSpec spec;
    spec.size = count_field(*fleet, "size", spec.size, 1, ctx);
    if (spec.size > 4096) fail(ctx, "\"size\" must be in [1, 4096]");
    spec.spread = double_above(*fleet, "spread", spec.spread, 0.0, ctx);
    sc.fleet = spec;
  }
  return sc;
}

Scenario parse(std::string_view text, const std::string& context) {
  Json doc;
  try {
    doc = Json::parse(text);
  } catch (const io::JsonError& error) {
    throw ScenarioError(context + ": " + error.what());
  }
  return from_json(doc, context);
}

Scenario load(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) throw ScenarioError(path.string() + ": cannot open (missing file?)");
  const std::string text((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  return parse(text, path.string());
}

Json to_json(const Scenario& sc) {
  Json doc = Json::object();
  doc.set("v", Json(kFormatVersion));
  doc.set("name", Json(sc.name));
  doc.set("kind", Json(sc.kind));
  doc.set("seed", Json(sc.seed));
  doc.set("speed_factor", Json(sc.speed_factor));
  doc.set("params", params_json(sc));
  if (sc.fleet) {
    Json fleet = Json::object();
    fleet.set("size", Json(sc.fleet->size));
    fleet.set("spread", Json(sc.fleet->spread));
    doc.set("fleet", std::move(fleet));
  }
  return doc;
}

std::string canonical_text(const Scenario& sc) {
  std::string out;
  pretty(out, to_json(sc), 0);
  out += "\n";
  return out;
}

trace::TraceFile materialize(const Scenario& sc, const std::filesystem::path& base_dir) {
  const ScenarioParams& p = sc.params;
  // Keyed exactly like trace::make_corpus_trace ("corpus", name, seed): a
  // scenario file that names a corpus scenario and pins its parameters
  // materialises the compiled-in instance bit for bit (parity-tested).
  stats::Rng rng({stats::hash_name("corpus"), stats::hash_name(sc.name), sc.seed});
  trace::TraceMeta meta{sc.name, "scenario", sc.seed};

  if (sc.kind == "theorem1") {
    adv::Theorem1Params a;
    a.horizon = p.horizon;
    a.move_cost_weight = p.move_cost_weight;
    a.max_step = p.max_step;
    a.dim = p.dim;
    a.requests_per_step = p.requests_per_step;
    a.x = p.x;
    return from_adversarial(std::move(meta), adv::make_theorem1(a, rng));
  }
  if (sc.kind == "theorem2") {
    adv::Theorem2Params a;
    a.horizon = p.horizon;
    a.move_cost_weight = p.move_cost_weight;
    a.max_step = p.max_step;
    a.dim = p.dim;
    a.delta = p.delta;
    a.r_min = p.r_min;
    a.r_max = p.r_max;
    a.x = p.x;
    return from_adversarial(std::move(meta), adv::make_theorem2(a, rng));
  }
  if (sc.kind == "theorem3") {
    adv::Theorem3Params a;
    a.horizon = p.horizon;
    a.move_cost_weight = p.move_cost_weight;
    a.max_step = p.max_step;
    a.dim = p.dim;
    a.requests_per_step = p.requests_per_step;
    return from_adversarial(std::move(meta), adv::make_theorem3(a, rng));
  }
  if (sc.kind == "theorem8-moving-client") {
    adv::Theorem8Params a;
    a.horizon = p.horizon;
    a.server_speed = p.server_speed;
    a.epsilon = p.epsilon;
    a.move_cost_weight = p.move_cost_weight;
    a.dim = p.dim;
    a.x = p.x;
    adv::MovingClientAdversarial result = adv::make_theorem8(a, rng);
    trace::TraceFile file = from_moving_client(std::move(meta), std::move(result.mc));
    file.adversary = trace::AdversaryInfo{result.adversary_cost,
                                          std::move(result.adversary_positions)};
    return file;
  }
  if (sc.kind == "drifting-hotspot") {
    adv::DriftingHotspotParams a;
    a.horizon = p.horizon;
    a.dim = p.dim;
    a.move_cost_weight = p.move_cost_weight;
    a.max_step = p.max_step;
    a.drift_speed = p.drift_speed;
    a.spread = p.spread;
    a.r_min = p.r_min;
    a.r_max = p.r_max;
    return trace::TraceFile(std::move(meta), adv::make_drifting_hotspot(a, rng));
  }
  if (sc.kind == "commute") {
    adv::CommuteParams a;
    a.horizon = p.horizon;
    a.dim = p.dim;
    a.move_cost_weight = p.move_cost_weight;
    a.max_step = p.max_step;
    a.site_distance = p.site_distance;
    a.period = p.period;
    a.spread = p.spread;
    a.requests_per_step = p.requests_per_step;
    return trace::TraceFile(std::move(meta), adv::make_commute(a, rng));
  }
  if (sc.kind == "bursts") {
    adv::BurstParams a;
    a.horizon = p.horizon;
    a.dim = p.dim;
    a.move_cost_weight = p.move_cost_weight;
    a.max_step = p.max_step;
    a.drift_speed = p.drift_speed;
    a.spread = p.spread;
    a.r_min = p.r_min;
    a.r_max = p.r_max;
    a.burst_probability = p.burst_probability;
    return trace::TraceFile(std::move(meta), adv::make_bursts(a, rng));
  }
  if (sc.kind == "uniform-noise") {
    adv::UniformNoiseParams a;
    a.horizon = p.horizon;
    a.dim = p.dim;
    a.move_cost_weight = p.move_cost_weight;
    a.max_step = p.max_step;
    a.half_width = p.half_width;
    a.requests_per_step = p.requests_per_step;
    return trace::TraceFile(std::move(meta), adv::make_uniform_noise(a, rng));
  }
  if (sc.kind == "random-waypoint") {
    adv::RandomWaypointParams a;
    a.horizon = p.horizon;
    a.dim = p.dim;
    a.speed = p.speed;
    a.half_width = p.half_width;
    a.max_pause = p.max_pause;
    a.min_speed_fraction = p.min_speed_fraction;
    const sim::Point start = sim::Point::zero(a.dim);
    sim::AgentPath path = adv::make_random_waypoint(a, start, rng);
    return from_moving_client(std::move(meta),
                              single_agent(start, p.server_speed, a.speed, p.move_cost_weight,
                                           std::move(path)));
  }
  if (sc.kind == "gauss-markov") {
    adv::GaussMarkovParams a;
    a.horizon = p.horizon;
    a.dim = p.dim;
    a.speed = p.speed;
    a.alpha = p.alpha;
    a.mean_speed_fraction = p.mean_speed_fraction;
    a.noise_fraction = p.noise_fraction;
    const sim::Point start = sim::Point::zero(a.dim);
    sim::AgentPath path = adv::make_gauss_markov(a, start, rng);
    return from_moving_client(std::move(meta),
                              single_agent(start, p.server_speed, a.speed, p.move_cost_weight,
                                           std::move(path)));
  }
  if (sc.kind == "zigzag") {
    adv::ZigZagParams a;
    a.horizon = p.horizon;
    a.dim = p.dim;
    a.speed = p.speed;
    a.half_period = p.half_period;
    const sim::Point start = sim::Point::zero(a.dim);
    sim::AgentPath path = adv::make_zigzag(a, start);
    return from_moving_client(std::move(meta),
                              single_agent(start, p.server_speed, a.speed, p.move_cost_weight,
                                           std::move(path)));
  }
  if (sc.kind == "demand") {
    if (p.has_inline_steps) {
      std::vector<sim::RequestBatch> steps(p.steps.size());
      for (std::size_t t = 0; t < p.steps.size(); ++t) steps[t].requests = p.steps[t];
      sim::Point start = p.start;
      if (start.empty())
        for (const sim::RequestBatch& batch : steps) {
          if (batch.empty()) continue;
          start = batch.requests.front();
          break;
        }
      sim::ModelParams params;
      params.move_cost_weight = p.move_cost_weight;
      params.max_step = p.max_step;
      params.order = p.order;
      return trace::TraceFile(std::move(meta), sim::Instance(start, params, std::move(steps)));
    }
    trace::DemandImportOptions options;
    options.move_cost_weight = p.move_cost_weight;
    options.max_step = p.max_step;
    options.order = p.order;
    options.start = p.start;
    trace::TraceFile file = trace::import_demand(resolve_path(base_dir, p.file), options);
    file.meta = std::move(meta);
    return file;
  }
  if (sc.kind == "waypoints") {
    trace::WaypointImportOptions options;
    options.server_speed = p.server_speed;
    options.agent_speed = p.agent_speed;
    options.move_cost_weight = p.move_cost_weight;
    trace::TraceFile file = trace::import_waypoints(resolve_path(base_dir, p.file), options);
    file.meta = std::move(meta);
    return file;
  }
  throw ScenarioError("scenario \"" + sc.name + "\": unknown kind \"" + sc.kind + "\"");
}

std::vector<std::filesystem::path> list_scenario_files(const std::filesystem::path& dir) {
  std::error_code ec;
  if (!std::filesystem::is_directory(dir, ec))
    throw ScenarioError(dir.string() + ": not a directory (missing corpus?)");
  std::vector<std::filesystem::path> files;
  for (const std::filesystem::directory_entry& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".json")
      files.push_back(entry.path());
  }
  if (files.empty()) throw ScenarioError(dir.string() + ": no *.json scenario files found");
  std::sort(files.begin(), files.end());
  return files;
}

const std::vector<Scenario>& starter_corpus() {
  static const std::vector<Scenario> kCorpus = [] {
    std::vector<Scenario> corpus;
    const auto add = [&corpus](const std::string& name, const std::string& kind) -> Scenario& {
      Scenario sc;
      sc.name = name;
      sc.kind = kind;
      sc.params = defaults_for(kind);
      corpus.push_back(std::move(sc));
      return corpus.back();
    };

    // The 12 compiled-in corpus scenarios with their corpus-pinned
    // parameters (make_corpus_trace at scale 1) — the generator-parity
    // suite materialises these against the C++ corpus bit for bit.
    add("theorem1", "theorem1").params.horizon = 1024;
    {
      Scenario& sc = add("theorem2", "theorem2");
      sc.params.horizon = 2048;
      sc.params.delta = 0.5;
      sc.params.r_max = 4;
    }
    add("theorem3", "theorem3").params.horizon = 1024;
    add("theorem8-moving-client", "theorem8-moving-client").params.horizon = 1024;
    add("drifting-hotspot", "drifting-hotspot").params.horizon = 512;
    {
      Scenario& sc = add("drifting-hotspot-1d", "drifting-hotspot");
      sc.params.horizon = 512;
      sc.params.dim = 1;
    }
    add("commute", "commute").params.horizon = 512;
    add("bursts", "bursts").params.horizon = 512;
    add("uniform-noise", "uniform-noise").params.horizon = 512;
    add("random-waypoint", "random-waypoint").params.horizon = 512;
    add("gauss-markov", "gauss-markov").params.horizon = 512;
    add("zigzag", "zigzag").params.horizon = 256;

    // Importer examples: inline demand data, CSV demand, CSV waypoints.
    {
      Scenario& sc = add("inline-demand", "demand");
      sc.params.move_cost_weight = 2.0;
      sc.params.has_inline_steps = true;
      sc.params.steps = {
          {sim::Point({0.0, 0.0}), sim::Point({1.0, 0.0})},
          {sim::Point({2.0, 1.0})},
          {},
          {sim::Point({3.0, 2.0}), sim::Point({3.0, 3.0})},
          {sim::Point({4.0, 4.0})},
          {},
          {sim::Point({5.0, 4.0})},
          {sim::Point({6.0, 5.0}), sim::Point({7.0, 5.0})},
      };
    }
    {
      Scenario& sc = add("demand-csv", "demand");
      sc.params.move_cost_weight = 4.0;
      sc.params.file = "data/edge_demand.csv";
    }
    {
      Scenario& sc = add("waypoints-csv", "waypoints");
      sc.params.move_cost_weight = 2.0;
      sc.params.agent_speed = 1.25;
      sc.params.file = "data/helpers.csv";
    }

    // A fleet scenario: four servers spread around the start.
    {
      Scenario& sc = add("fleet-noise", "uniform-noise");
      sc.params.horizon = 256;
      sc.fleet = FleetSpec{4, 4.0};
    }
    return corpus;
  }();
  return kCorpus;
}

}  // namespace mobsrv::scenario
