#include "scenario/tournament.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>

#include "algorithms/registry.hpp"
#include "common/contracts.hpp"
#include "core/session_multiplexer.hpp"
#include "ext/multi_server.hpp"
#include "stats/rng.hpp"

namespace mobsrv::scenario {

namespace {

/// Classic Elo update constants: everyone starts at 1000, K = 32.
constexpr double kInitialElo = 1000.0;
constexpr double kEloK = 32.0;

struct LoadedScenario {
  Scenario scenario;
  std::filesystem::path base_dir;
};

/// The roster slice allowed to play \p sc: fleet scenarios (size > 1) are
/// driven only by fleet-native strategies — the single-server adapters are
/// k = 1 by construction.
std::vector<std::string> roster_for(const Scenario& sc, const std::vector<std::string>& roster,
                                    const std::vector<std::string>& fleet_native) {
  if (!sc.fleet || sc.fleet->size <= 1) return roster;
  std::vector<std::string> allowed;
  for (const std::string& algorithm : roster)
    if (std::find(fleet_native.begin(), fleet_native.end(), algorithm) != fleet_native.end())
      allowed.push_back(algorithm);
  return allowed;
}

/// cost / best with the trace::batch_runner conventions: the best row
/// reports exactly 1; a free best run makes every costly run report 0
/// (ratio undefined) and every other free run report 1.
double ratio_vs(double cost, double best) {
  if (best > 0.0) return cost / best;
  return cost == 0.0 ? 1.0 : 0.0;
}

}  // namespace

TournamentResult run_tournament(const std::vector<std::filesystem::path>& files,
                                par::ThreadPool& pool, const TournamentOptions& options) {
  const std::vector<std::string> known = alg::fleet_algorithm_names();
  std::vector<std::string> roster;
  for (const std::string& algorithm :
       options.algorithms.empty() ? known : options.algorithms) {
    if (std::find(known.begin(), known.end(), algorithm) == known.end())
      throw ContractViolation("unknown algorithm '" + algorithm + "' (see --algorithms)");
    if (std::find(roster.begin(), roster.end(), algorithm) == roster.end())
      roster.push_back(algorithm);
  }
  const std::vector<std::string> fleet_native = alg::fleet_native_names();

  std::vector<LoadedScenario> loaded;
  loaded.reserve(files.size());
  for (const std::filesystem::path& path : files)
    loaded.push_back({load(path), path.parent_path()});

  if (!options.only.empty()) {
    for (const std::string& name : options.only) {
      const bool found = std::any_of(loaded.begin(), loaded.end(), [&name](const LoadedScenario& l) {
        return l.scenario.name == name;
      });
      if (!found) throw ContractViolation("--only: no scenario named '" + name + "' in the corpus");
    }
    std::vector<LoadedScenario> filtered;
    for (LoadedScenario& l : loaded)
      if (std::find(options.only.begin(), options.only.end(), l.scenario.name) !=
          options.only.end())
        filtered.push_back(std::move(l));
    loaded = std::move(filtered);
  }

  TournamentResult result;
  result.seed = options.seed;
  result.algorithms = roster;

  // Ratings and per-algorithm accumulators, indexed by roster position.
  std::vector<double> elo(roster.size(), kInitialElo);
  std::vector<LeaderboardRow> rows(roster.size());
  for (std::size_t i = 0; i < roster.size(); ++i) rows[i].algorithm = roster[i];
  const auto roster_index = [&roster](const std::string& algorithm) {
    return static_cast<std::size_t>(
        std::find(roster.begin(), roster.end(), algorithm) - roster.begin());
  };

  const std::size_t chunk = options.chunk == 0 ? 1 : options.chunk;
  for (std::size_t begin = 0; begin < loaded.size(); begin += chunk) {
    const std::size_t end = std::min(begin + chunk, loaded.size());

    struct PendingCell {
      std::size_t session = 0;
      std::string scenario;
      std::string algorithm;
      std::size_t fleet_size = 1;
      double adversary_cost = 0.0;
      bool last_of_scenario = false;
    };
    std::vector<PendingCell> pending;
    core::SessionMultiplexer mux(pool);

    for (std::size_t s = begin; s < end; ++s) {
      const Scenario& sc = loaded[s].scenario;
      const std::vector<std::string> players = roster_for(sc, roster, fleet_native);
      if (players.empty()) {
        result.skipped.push_back(sc.name);
        continue;
      }
      result.scenarios.push_back(sc.name);

      trace::TraceFile file = materialize(sc, loaded[s].base_dir);
      const double adversary_cost = file.adversary ? file.adversary->cost : 0.0;
      const auto workload = std::make_shared<const sim::Instance>(std::move(file.instance));
      const std::size_t fleet_size = sc.fleet ? sc.fleet->size : 1;
      std::vector<sim::Point> starts;
      if (fleet_size > 1)
        starts = ext::spread_starts(*workload, static_cast<int>(fleet_size), sc.fleet->spread);

      for (const std::string& algorithm : players) {
        core::SessionSpec spec;
        spec.workload = workload;
        spec.algorithm = algorithm;
        // --seed steers every algorithm's coin flips without touching the
        // workloads (those are pinned by each file's own "seed" member).
        spec.algo_seed = stats::mix_keys({stats::hash_name("tournament"),
                                          stats::hash_name(sc.name), stats::hash_name(algorithm),
                                          options.seed});
        spec.speed_factor = sc.speed_factor;
        spec.tenant = sc.name;
        spec.fleet_size = fleet_size;
        spec.starts = starts;
        PendingCell cell;
        cell.session = mux.add(std::move(spec));
        cell.scenario = sc.name;
        cell.algorithm = algorithm;
        cell.fleet_size = fleet_size;
        cell.adversary_cost = adversary_cost;
        cell.last_of_scenario = algorithm == players.back();
        pending.push_back(std::move(cell));
      }
    }

    mux.drain();

    // Harvest chunk cells in submission order (scenario-major, roster order
    // within), then close out each scenario group: ratios against the
    // group's best cost, pairwise Elo in roster order.
    std::size_t group_begin = result.cells.size();
    for (const PendingCell& cell : pending) {
      const core::SessionStats stats = mux.stats(cell.session);
      TournamentCell out;
      out.scenario = cell.scenario;
      out.algorithm = cell.algorithm;
      out.fleet_size = cell.fleet_size;
      out.total_cost = stats.total_cost;
      out.move_cost = stats.move_cost;
      out.service_cost = stats.service_cost;
      if (cell.adversary_cost > 0.0) out.ratio_vs_adversary = stats.total_cost / cell.adversary_cost;
      result.cells.push_back(std::move(out));

      if (!cell.last_of_scenario) continue;
      const std::size_t group_end = result.cells.size();
      double best = result.cells[group_begin].total_cost;
      for (std::size_t i = group_begin; i < group_end; ++i)
        best = std::min(best, result.cells[i].total_cost);
      for (std::size_t i = group_begin; i < group_end; ++i) {
        TournamentCell& played = result.cells[i];
        played.ratio_vs_best = ratio_vs(played.total_cost, best);
        LeaderboardRow& row = rows[roster_index(played.algorithm)];
        row.scenarios += 1;
        row.total_cost += played.total_cost;
        if (played.ratio_vs_best > 0.0) row.ratio_vs_best.add(played.ratio_vs_best);
      }
      for (std::size_t i = group_begin; i < group_end; ++i) {
        for (std::size_t j = i + 1; j < group_end; ++j) {
          const std::size_t a = roster_index(result.cells[i].algorithm);
          const std::size_t b = roster_index(result.cells[j].algorithm);
          const double cost_a = result.cells[i].total_cost;
          const double cost_b = result.cells[j].total_cost;
          const double score_a = cost_a < cost_b ? 1.0 : (cost_a == cost_b ? 0.5 : 0.0);
          if (score_a == 1.0) {
            rows[a].wins += 1;
            rows[b].losses += 1;
          } else if (score_a == 0.0) {
            rows[a].losses += 1;
            rows[b].wins += 1;
          } else {
            rows[a].draws += 1;
            rows[b].draws += 1;
          }
          const double expected_a = 1.0 / (1.0 + std::pow(10.0, (elo[b] - elo[a]) / 400.0));
          const double delta = kEloK * (score_a - expected_a);
          elo[a] += delta;  // zero-sum by construction
          elo[b] -= delta;
        }
      }
      group_begin = group_end;
    }
  }

  for (std::size_t i = 0; i < roster.size(); ++i) rows[i].elo = elo[i];
  result.leaderboard = std::move(rows);
  std::stable_sort(result.leaderboard.begin(), result.leaderboard.end(),
                   [](const LeaderboardRow& a, const LeaderboardRow& b) { return a.elo > b.elo; });
  return result;
}

TournamentResult run_tournament(const std::filesystem::path& corpus_dir, par::ThreadPool& pool,
                                const TournamentOptions& options) {
  return run_tournament(list_scenario_files(corpus_dir), pool, options);
}

io::Json tournament_to_json(const TournamentResult& result) {
  io::Json doc = io::Json::object();
  doc.set("v", io::Json(1U));
  doc.set("seed", io::Json(result.seed));

  io::Json algorithms = io::Json::array();
  for (const std::string& name : result.algorithms) algorithms.push_back(io::Json(name));
  doc.set("algorithms", std::move(algorithms));

  io::Json scenarios = io::Json::array();
  for (const std::string& name : result.scenarios) scenarios.push_back(io::Json(name));
  doc.set("scenarios", std::move(scenarios));

  io::Json skipped = io::Json::array();
  for (const std::string& name : result.skipped) skipped.push_back(io::Json(name));
  doc.set("skipped", std::move(skipped));

  io::Json leaderboard = io::Json::array();
  for (const LeaderboardRow& row : result.leaderboard) {
    io::Json entry = io::Json::object();
    entry.set("algorithm", io::Json(row.algorithm));
    entry.set("elo", io::Json(row.elo));
    entry.set("scenarios", io::Json(row.scenarios));
    entry.set("wins", io::Json(row.wins));
    entry.set("draws", io::Json(row.draws));
    entry.set("losses", io::Json(row.losses));
    entry.set("mean_ratio_vs_best",
              io::Json(row.ratio_vs_best.count() > 0 ? row.ratio_vs_best.mean() : 0.0));
    entry.set("total_cost", io::Json(row.total_cost));
    leaderboard.push_back(std::move(entry));
  }
  doc.set("leaderboard", std::move(leaderboard));

  io::Json cells = io::Json::array();
  for (const TournamentCell& cell : result.cells) {
    io::Json entry = io::Json::object();
    entry.set("scenario", io::Json(cell.scenario));
    entry.set("algorithm", io::Json(cell.algorithm));
    entry.set("fleet_size", io::Json(cell.fleet_size));
    entry.set("total_cost", io::Json(cell.total_cost));
    entry.set("move_cost", io::Json(cell.move_cost));
    entry.set("service_cost", io::Json(cell.service_cost));
    entry.set("ratio_vs_best", io::Json(cell.ratio_vs_best));
    entry.set("ratio_vs_adversary", io::Json(cell.ratio_vs_adversary));
    cells.push_back(std::move(entry));
  }
  doc.set("cells", std::move(cells));
  return doc;
}

std::string leaderboard_markdown(const TournamentResult& result) {
  std::string out;
  out += "| rank | algorithm | Elo | W/D/L | mean ratio vs best | total cost |\n";
  out += "|-----:|-----------|----:|:-----:|-------------------:|-----------:|\n";
  std::size_t rank = 1;
  for (const LeaderboardRow& row : result.leaderboard) {
    out += "| " + std::to_string(rank++) + " | " + row.algorithm + " | ";
    io::append_double(out, std::round(row.elo * 10.0) / 10.0);
    out += " | " + std::to_string(row.wins) + "/" + std::to_string(row.draws) + "/" +
           std::to_string(row.losses) + " | ";
    const double mean = row.ratio_vs_best.count() > 0 ? row.ratio_vs_best.mean() : 0.0;
    io::append_double(out, std::round(mean * 1000.0) / 1000.0);
    out += " | ";
    io::append_double(out, std::round(row.total_cost * 100.0) / 100.0);
    out += " |\n";
  }
  if (!result.skipped.empty()) {
    out += "\nskipped (no fleet-native algorithm in the roster):";
    for (const std::string& name : result.skipped) out += " " + name;
    out += "\n";
  }
  return out;
}

}  // namespace mobsrv::scenario
