/// \file tournament.hpp
/// Corpus-scale algorithm tournaments over scenario files.
///
/// A tournament runs every rostered fleet algorithm over every scenario of
/// a corpus directory, aggregates per-cell costs and competitive-ratio
/// samples, and ranks the algorithms on an Elo leaderboard (every pair of
/// algorithms "plays" each scenario; lower total cost wins). Execution is
/// chunked: `chunk` scenarios are materialised at a time and all their
/// (scenario × algorithm) cells run through one core::SessionMultiplexer,
/// so the memory high-water mark is bounded by the chunk, not the corpus.
/// Because the multiplexer is bit-deterministic at any thread count and
/// chunking never reorders cells, the whole result — leaderboard JSON
/// included — is byte-identical for any `--threads`/`--chunk` choice.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "io/json.hpp"
#include "parallel/thread_pool.hpp"
#include "scenario/scenario.hpp"
#include "stats/summary.hpp"

namespace mobsrv::scenario {

struct TournamentOptions {
  /// Roster; empty = every registered fleet algorithm
  /// (alg::fleet_algorithm_names()). Unknown names are a ContractViolation
  /// (a usage error at the CLI).
  std::vector<std::string> algorithms;
  /// Scenario-name filter; empty = the whole corpus. Names that match no
  /// loaded scenario are a ContractViolation.
  std::vector<std::string> only;
  /// Seeds the *algorithms* (mixed per cell with the scenario name).
  /// Workloads are pinned by each scenario file's own "seed" member.
  std::uint64_t seed = 0;
  /// Scenarios materialised per multiplexer batch.
  std::size_t chunk = 8;
};

/// One (scenario × algorithm) outcome.
struct TournamentCell {
  std::string scenario;
  std::string algorithm;
  std::size_t fleet_size = 1;
  double total_cost = 0.0;
  double move_cost = 0.0;
  double service_cost = 0.0;
  /// cost / best cost on this scenario (best = 1; 0 when the best run was
  /// free and this one was not) — the batch_runner convention.
  double ratio_vs_best = 0.0;
  /// cost / adversary cost when the scenario carries an adversary solution,
  /// else 0.
  double ratio_vs_adversary = 0.0;
};

struct LeaderboardRow {
  std::string algorithm;
  double elo = 1000.0;
  std::size_t scenarios = 0;  ///< cells played
  std::size_t wins = 0;       ///< pairwise outcomes across all scenarios
  std::size_t draws = 0;
  std::size_t losses = 0;
  stats::Summary ratio_vs_best;
  double total_cost = 0.0;  ///< summed across played cells
};

struct TournamentResult {
  std::uint64_t seed = 0;
  std::vector<std::string> algorithms;  ///< the roster, in play order
  std::vector<std::string> scenarios;   ///< run order (sorted file order)
  /// Scenarios no rostered algorithm could play (fleet scenarios when the
  /// roster holds no fleet-native strategy). Reported, never silent.
  std::vector<std::string> skipped;
  std::vector<TournamentCell> cells;  ///< scenario-major, roster order within
  std::vector<LeaderboardRow> leaderboard;  ///< Elo descending (stable)
};

/// Runs the tournament over the given scenario files in their given order
/// (pass list_scenario_files() output for the canonical sorted order).
/// Relative CSV paths inside a scenario resolve against that scenario
/// file's directory.
[[nodiscard]] TournamentResult run_tournament(const std::vector<std::filesystem::path>& files,
                                              par::ThreadPool& pool,
                                              const TournamentOptions& options = {});

/// Convenience: list_scenario_files(corpus_dir) + run_tournament.
[[nodiscard]] TournamentResult run_tournament(const std::filesystem::path& corpus_dir,
                                              par::ThreadPool& pool,
                                              const TournamentOptions& options = {});

/// Machine-readable report; byte-deterministic for a fixed result (doubles
/// in shortest round-trip form, fixed member order).
[[nodiscard]] io::Json tournament_to_json(const TournamentResult& result);

/// The leaderboard as a GitHub-flavoured markdown table.
[[nodiscard]] std::string leaderboard_markdown(const TournamentResult& result);

}  // namespace mobsrv::scenario
