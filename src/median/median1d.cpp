#include "median/median1d.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

namespace mobsrv::med {

Interval1D weighted_median_interval(std::span<const double> values,
                                    std::span<const double> weights) {
  MOBSRV_CHECK_MSG(!values.empty(), "median of empty set");
  MOBSRV_CHECK_MSG(weights.empty() || weights.size() == values.size(),
                   "weights/values size mismatch");

  std::vector<std::size_t> order(values.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return values[a] < values[b]; });

  auto weight_of = [&](std::size_t i) {
    if (weights.empty()) return 1.0;
    MOBSRV_CHECK_MSG(weights[i] > 0.0, "weights must be strictly positive");
    return weights[i];
  };

  double total = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) total += weight_of(i);
  const double half = total / 2.0;

  // The subgradient of x ↦ Σ w_i|x−v_i| is weight{v < x} − weight{v > x}
  // (±boundary). The minimiser set is therefore [lo, hi] with
  //   lo = smallest v with cumweight(<= v) >= W/2,
  //   hi = smallest v with cumweight(<= v) >  W/2;
  // lo < hi exactly when the cumulative weight hits W/2 on the nose at lo.
  const double tol = 1e-12 * total;
  double lo = values[order.back()];
  double hi = values[order.back()];
  bool lo_set = false;
  double cum = 0.0;
  for (const std::size_t k : order) {
    cum += weight_of(k);
    if (!lo_set && cum >= half - tol) {
      lo = values[k];
      lo_set = true;
    }
    if (cum > half + tol) {
      hi = values[k];
      break;
    }
  }
  return {lo, std::max(lo, hi)};
}

Interval1D median_interval(std::span<const double> values) {
  return weighted_median_interval(values, {});
}

double sum_abs_deviation(double x, std::span<const double> values,
                         std::span<const double> weights) {
  MOBSRV_CHECK(weights.empty() || weights.size() == values.size());
  double s = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i)
    s += (weights.empty() ? 1.0 : weights[i]) * std::abs(x - values[i]);
  return s;
}

double sum_abs_deviation(double x, std::span<const double> values) {
  return sum_abs_deviation(x, values, {});
}

}  // namespace mobsrv::med
