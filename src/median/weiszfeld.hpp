/// \file weiszfeld.hpp
/// Weiszfeld iteration for the geometric median (Fermat–Weber point) with
/// the Vardi–Zhang modification for iterates that land on a data point.
///
/// For non-collinear point sets in R^d (d >= 2) the geometric median is
/// unique and Weiszfeld converges globally; the Vardi–Zhang rule both
/// detects optimal anchor points (a data point can *be* the median when its
/// weight dominates) and escapes non-optimal ones.
#pragma once

#include <span>

#include "geometry/point.hpp"

namespace mobsrv::med {

/// Tuning knobs for the iteration.
struct WeiszfeldOptions {
  int max_iterations = 200;
  /// Convergence: stop when the iterate moves less than rel_tol * spread
  /// (spread = diameter proxy of the input set) in one step.
  double rel_tol = 1e-12;
  /// Distance below which an iterate is treated as sitting on a data point.
  double anchor_tol = 1e-13;
};

/// Outcome of the iteration.
struct WeiszfeldResult {
  geo::Point median;      ///< approximate minimiser of Σ w_i·d(·, v_i)
  double objective = 0.0; ///< Σ w_i·d(median, v_i)
  int iterations = 0;     ///< iterations actually performed
  bool converged = false; ///< step tolerance reached (or exact optimum hit)
};

/// Runs Weiszfeld from \p initial. Points must share one dimension; weights
/// (if non-empty) must match in size and be strictly positive.
[[nodiscard]] WeiszfeldResult weiszfeld(std::span<const geo::Point> points,
                                        std::span<const double> weights,
                                        const geo::Point& initial,
                                        const WeiszfeldOptions& opt = {});

/// Convenience: starts at the weighted centroid.
[[nodiscard]] WeiszfeldResult weiszfeld(std::span<const geo::Point> points,
                                        std::span<const double> weights = {},
                                        const WeiszfeldOptions& opt = {});

/// Objective Σ w_i · d(c, v_i); the function every median solver minimises.
[[nodiscard]] double sum_distances(const geo::Point& c, std::span<const geo::Point> points,
                                   std::span<const double> weights = {});

/// Weighted centroid (the classic Weiszfeld starting point).
[[nodiscard]] geo::Point centroid(std::span<const geo::Point> points,
                                  std::span<const double> weights = {});

}  // namespace mobsrv::med
