/// \file geometric_median.hpp
/// The full geometric-median *set* and MtC's closest-center tie-break.
///
/// The minimiser set of c ↦ Σ w_i·d(c, v_i) in R^d is:
///   * a single point for non-collinear inputs (d >= 2), found by Weiszfeld;
///   * a closed segment for collinear inputs (this includes every 1-D
///     instance and every r = 2 batch), found exactly by reducing to the
///     weighted 1-D median interval along the common line.
///
/// MtC (Section 4 of the paper) requires: "Let c be the point minimising
/// Σ d(c, v_i). If c is not unique, pick the one minimising d(P_Alg, c)."
/// `closest_center` implements exactly that contract.
#pragma once

#include <span>

#include "geometry/segment.hpp"
#include "median/weiszfeld.hpp"

namespace mobsrv::med {

/// How the median set was computed.
enum class MedianMethod {
  kSinglePoint,  ///< one input point (or all coincide)
  kCollinear,    ///< exact 1-D reduction along the common line
  kWeiszfeld,    ///< iterative solve, unique minimiser
};

/// The minimiser set, always represented as a (possibly degenerate) segment.
struct MedianSet {
  geo::Segment segment;       ///< minimiser set; a == b when unique
  double objective = 0.0;     ///< Σ w_i·d(·, v_i) on the set
  MedianMethod method = MedianMethod::kSinglePoint;
  int iterations = 0;         ///< Weiszfeld iterations (0 for exact paths)

  [[nodiscard]] bool unique() const { return segment.a == segment.b; }
};

/// Computes the median set of \p points (weights optional, strictly
/// positive, matching size).
[[nodiscard]] MedianSet median_set(std::span<const geo::Point> points,
                                   std::span<const double> weights = {},
                                   const WeiszfeldOptions& opt = {});

/// MtC's center: the point of the median set closest to \p anchor.
[[nodiscard]] geo::Point closest_center(std::span<const geo::Point> points,
                                        const geo::Point& anchor,
                                        std::span<const double> weights = {},
                                        const WeiszfeldOptions& opt = {});

/// Brute-force reference minimiser by multi-resolution grid search over the
/// bounding box; used by tests and audits, not by the algorithms. Accuracy
/// roughly extent · 2^{-refinements}.
[[nodiscard]] geo::Point brute_force_median(std::span<const geo::Point> points,
                                            std::span<const double> weights = {},
                                            int cells_per_axis = 16, int refinements = 12);

}  // namespace mobsrv::med
