/// \file median1d.hpp
/// Exact weighted 1-D median (as an interval).
///
/// On the line, the minimisers of x ↦ Σ w_i·|x − v_i| form a closed interval
/// [lo, hi] (a single point unless the cumulative weight splits exactly in
/// half). MtC's tie-break — "the center closest to the server" — needs the
/// whole interval, not just one minimiser, so this module returns it
/// exactly.
#pragma once

#include <span>

#include "common/contracts.hpp"

namespace mobsrv::med {

/// Closed interval of minimisers on the line.
struct Interval1D {
  double lo = 0.0;
  double hi = 0.0;
  [[nodiscard]] bool is_point() const noexcept { return lo == hi; }
  /// The point of the interval closest to q.
  [[nodiscard]] double clamp(double q) const noexcept {
    if (q < lo) return lo;
    if (q > hi) return hi;
    return q;
  }
};

/// Exact minimiser interval of Σ w_i·|x − v_i|. Unweighted overload treats
/// all weights as 1. Requires at least one value; weights (if given) must
/// match in size and be strictly positive.
[[nodiscard]] Interval1D weighted_median_interval(std::span<const double> values,
                                                  std::span<const double> weights);
[[nodiscard]] Interval1D median_interval(std::span<const double> values);

/// Objective Σ w_i·|x − v_i| at x (unweighted overload available).
[[nodiscard]] double sum_abs_deviation(double x, std::span<const double> values,
                                       std::span<const double> weights);
[[nodiscard]] double sum_abs_deviation(double x, std::span<const double> values);

}  // namespace mobsrv::med
