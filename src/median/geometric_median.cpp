#include "median/geometric_median.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "geometry/aabb.hpp"
#include "median/median1d.hpp"

namespace mobsrv::med {

namespace {

MedianSet single_point_set(const geo::Point& p, std::span<const geo::Point> points,
                           std::span<const double> weights) {
  MedianSet set;
  set.segment = {p, p};
  set.objective = sum_distances(p, points, weights);
  set.method = MedianMethod::kSinglePoint;
  return set;
}

}  // namespace

MedianSet median_set(std::span<const geo::Point> points, std::span<const double> weights,
                     const WeiszfeldOptions& opt) {
  MOBSRV_CHECK_MSG(!points.empty(), "median of empty point set");
  MOBSRV_CHECK(weights.empty() || weights.size() == points.size());
  const int dim = points[0].dim();
  for (std::size_t i = 1; i < points.size(); ++i)
    MOBSRV_CHECK_MSG(points[i].dim() == dim, "mixed dimensions");

  if (points.size() == 1) return single_point_set(points[0], points, weights);

  if (geo::collinear(points.data(), static_cast<int>(points.size()))) {
    const geo::Point u = geo::collinear_direction(points.data(), static_cast<int>(points.size()));
    if (u.norm() == 0.0) return single_point_set(points[0], points, weights);  // all coincide
    // Reduce to the exact weighted 1-D median along the common line.
    const geo::Point origin = points[0];
    std::vector<double> t(points.size());
    for (std::size_t i = 0; i < points.size(); ++i) t[i] = (points[i] - origin).dot(u);
    const Interval1D interval = weighted_median_interval(t, weights);
    MedianSet set;
    set.segment = {origin + u * interval.lo, origin + u * interval.hi};
    set.objective = sum_distances(set.segment.a, points, weights);
    set.method = MedianMethod::kCollinear;
    return set;
  }

  // Non-collinear in d >= 2: the minimiser is unique; Weiszfeld converges.
  const WeiszfeldResult res = weiszfeld(points, weights, opt);
  MedianSet set;
  set.segment = {res.median, res.median};
  set.objective = res.objective;
  set.method = MedianMethod::kWeiszfeld;
  set.iterations = res.iterations;
  return set;
}

geo::Point closest_center(std::span<const geo::Point> points, const geo::Point& anchor,
                          std::span<const double> weights, const WeiszfeldOptions& opt) {
  const MedianSet set = median_set(points, weights, opt);
  if (set.unique()) return set.segment.a;
  MOBSRV_CHECK(anchor.dim() == set.segment.a.dim());
  return geo::closest_point_on_segment(set.segment, anchor);
}

geo::Point brute_force_median(std::span<const geo::Point> points, std::span<const double> weights,
                              int cells_per_axis, int refinements) {
  MOBSRV_CHECK_MSG(!points.empty(), "median of empty point set");
  const int dim = points[0].dim();
  MOBSRV_CHECK_MSG(dim <= 4, "brute-force median is exponential in dimension; use <= 4");
  MOBSRV_CHECK(cells_per_axis >= 2 && refinements >= 1);

  geo::Aabb box;
  for (const auto& p : points) box.extend(p);
  geo::Point lo = box.lo(), hi = box.hi();

  geo::Point best = box.center();
  double best_obj = sum_distances(best, points, weights);

  for (int pass = 0; pass < refinements; ++pass) {
    // Enumerate the grid of (cells_per_axis+1)^dim lattice points in [lo,hi].
    const int side = cells_per_axis + 1;
    long total = 1;
    for (int d = 0; d < dim; ++d) total *= side;
    for (long code = 0; code < total; ++code) {
      geo::Point cand(dim);
      long rem = code;
      for (int d = 0; d < dim; ++d) {
        const int idx = static_cast<int>(rem % side);
        rem /= side;
        const double frac =
            side == 1 ? 0.0 : static_cast<double>(idx) / static_cast<double>(side - 1);
        cand[d] = lo[d] + (hi[d] - lo[d]) * frac;
      }
      const double obj = sum_distances(cand, points, weights);
      if (obj < best_obj) {
        best_obj = obj;
        best = cand;
      }
    }
    // Shrink the box around the incumbent for the next pass.
    geo::Point new_lo(dim), new_hi(dim);
    for (int d = 0; d < dim; ++d) {
      const double half = (hi[d] - lo[d]) / static_cast<double>(cells_per_axis);
      new_lo[d] = best[d] - half;
      new_hi[d] = best[d] + half;
    }
    lo = new_lo;
    hi = new_hi;
  }
  return best;
}

}  // namespace mobsrv::med
