#include "median/weiszfeld.hpp"

#include <algorithm>
#include <cmath>

#include "geometry/aabb.hpp"

namespace mobsrv::med {

namespace {

double weight_at(std::span<const double> weights, std::size_t i) {
  return weights.empty() ? 1.0 : weights[i];
}

void check_inputs(std::span<const geo::Point> points, std::span<const double> weights) {
  MOBSRV_CHECK_MSG(!points.empty(), "weiszfeld on empty point set");
  MOBSRV_CHECK_MSG(weights.empty() || weights.size() == points.size(),
                   "weights/points size mismatch");
  for (std::size_t i = 1; i < points.size(); ++i)
    MOBSRV_CHECK_MSG(points[i].dim() == points[0].dim(), "mixed dimensions");
  for (std::size_t i = 0; i < weights.size(); ++i)
    MOBSRV_CHECK_MSG(weights[i] > 0.0, "weights must be strictly positive");
}

}  // namespace

double sum_distances(const geo::Point& c, std::span<const geo::Point> points,
                     std::span<const double> weights) {
  MOBSRV_CHECK(weights.empty() || weights.size() == points.size());
  double s = 0.0;
  for (std::size_t i = 0; i < points.size(); ++i)
    s += weight_at(weights, i) * geo::distance(c, points[i]);
  return s;
}

geo::Point centroid(std::span<const geo::Point> points, std::span<const double> weights) {
  check_inputs(points, weights);
  geo::Point c = geo::Point::zero(points[0].dim());
  double total = 0.0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const double w = weight_at(weights, i);
    c += points[i] * w;
    total += w;
  }
  return c / total;
}

WeiszfeldResult weiszfeld(std::span<const geo::Point> points, std::span<const double> weights,
                          const geo::Point& initial, const WeiszfeldOptions& opt) {
  check_inputs(points, weights);
  MOBSRV_CHECK(initial.dim() == points[0].dim());

  // Scale for relative tolerances: the extent of the point cloud, or 1 if
  // all points coincide.
  geo::Aabb box;
  for (const auto& p : points) box.extend(p);
  const double spread = std::max(box.extent(), 1e-300);
  const double step_tol = opt.rel_tol * std::max(spread, 1.0);
  const double anchor_tol = opt.anchor_tol * std::max(spread, 1.0);

  geo::Point y = initial;
  WeiszfeldResult result;
  for (int it = 0; it < opt.max_iterations; ++it) {
    result.iterations = it + 1;

    // Accumulate the standard Weiszfeld update over non-anchor points and
    // detect whether y sits on a data point.
    geo::Point numer = geo::Point::zero(y.dim());
    double denom = 0.0;
    geo::Point pull = geo::Point::zero(y.dim());  // Σ w_i (v_i − y)/d_i
    double anchor_weight = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      const double d = geo::distance(y, points[i]);
      const double w = weight_at(weights, i);
      if (d <= anchor_tol) {
        anchor_weight += w;
        continue;
      }
      numer += points[i] * (w / d);
      denom += w / d;
      pull += (points[i] - y) * (w / d);
    }

    if (anchor_weight > 0.0) {
      // Vardi–Zhang: y coincides with a data point of total weight
      // anchor_weight. It is optimal iff the pull of the remaining points
      // does not exceed that weight.
      const double pull_norm = pull.norm();
      if (pull_norm <= anchor_weight || denom == 0.0) {
        result.converged = true;
        break;
      }
      const geo::Point direction = pull / pull_norm;
      const double step = (pull_norm - anchor_weight) / denom;
      y += direction * step;
      if (step <= step_tol) {
        result.converged = true;
        break;
      }
      continue;
    }

    const geo::Point next = numer / denom;
    const double moved = geo::distance(y, next);
    y = next;
    if (moved <= step_tol) {
      result.converged = true;
      break;
    }
  }

  result.median = y;
  result.objective = sum_distances(y, points, weights);
  return result;
}

WeiszfeldResult weiszfeld(std::span<const geo::Point> points, std::span<const double> weights,
                          const WeiszfeldOptions& opt) {
  check_inputs(points, weights);
  return weiszfeld(points, weights, centroid(points, weights), opt);
}

}  // namespace mobsrv::med
