#include "geometry/segment.hpp"

#include <algorithm>

namespace mobsrv::geo {

Point closest_point_on_segment(const Segment& s, const Point& q) {
  const Point ab = s.b - s.a;
  const double len2 = ab.norm2();
  if (len2 == 0.0) return s.a;
  const double t = (q - s.a).dot(ab) / len2;
  return s.at(t);
}

double distance_to_segment(const Segment& s, const Point& q) {
  return distance(q, closest_point_on_segment(s, q));
}

namespace {

/// Index pair of (approximately) the two most distant points; O(n) heuristic
/// (farthest from pts[0], then farthest from that) which is exact for
/// collinear inputs — the only case we call it in.
std::pair<int, int> farthest_pair_collinear(const Point* pts, int n) {
  int i0 = 0;
  double best = -1.0;
  for (int i = 0; i < n; ++i) {
    const double d = distance(pts[0], pts[i]);
    if (d > best) {
      best = d;
      i0 = i;
    }
  }
  int i1 = i0;
  best = -1.0;
  for (int i = 0; i < n; ++i) {
    const double d = distance(pts[i0], pts[i]);
    if (d > best) {
      best = d;
      i1 = i;
    }
  }
  return {i0, i1};
}

}  // namespace

bool collinear(const Point* pts, int n, double eps) {
  MOBSRV_CHECK(n >= 1);
  if (n <= 2) return true;
  const auto [i0, i1] = farthest_pair_collinear(pts, n);
  const Point dir = pts[i1] - pts[i0];
  const double len = dir.norm();
  if (len == 0.0) return true;  // all points coincide
  const Point u = dir / len;
  double max_dev = 0.0;
  for (int i = 0; i < n; ++i) {
    const Point rel = pts[i] - pts[i0];
    const double along = rel.dot(u);
    const double dev2 = rel.norm2() - along * along;
    max_dev = std::max(max_dev, dev2);
  }
  // Relative tolerance: deviation compared to the spread of the points.
  return max_dev <= (eps * len) * (eps * len) + eps * eps;
}

Point collinear_direction(const Point* pts, int n) {
  MOBSRV_CHECK(n >= 1);
  if (n == 1) return Point::zero(pts[0].dim());
  const auto [i0, i1] = farthest_pair_collinear(pts, n);
  Point u = (pts[i1] - pts[i0]).normalized();
  // Canonical orientation (first nonzero coordinate positive) so callers
  // get a deterministic direction regardless of input order.
  for (int d = 0; d < u.dim(); ++d) {
    if (u[d] > 0.0) break;
    if (u[d] < 0.0) {
      u *= -1.0;
      break;
    }
  }
  return u;
}

}  // namespace mobsrv::geo
