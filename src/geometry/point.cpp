#include "geometry/point.hpp"

#include <ostream>
#include <sstream>

namespace mobsrv::geo {

std::string Point::to_string() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

Point move_toward(const Point& from, const Point& to, double step) {
  MOBSRV_CHECK_MSG(step >= 0.0, "movement step must be non-negative");
  const double d = distance(from, to);
  if (d <= step || d == 0.0) return to;
  return from + (to - from) * (step / d);
}

std::ostream& operator<<(std::ostream& os, const Point& p) {
  os << '(';
  for (int i = 0; i < p.dim(); ++i) {
    if (i > 0) os << ", ";
    os << p[i];
  }
  return os << ')';
}

}  // namespace mobsrv::geo
