/// \file aabb.hpp
/// Axis-aligned bounding boxes.
///
/// Used by the offline solvers to bound the region an optimal trajectory can
/// profitably visit (OPT never leaves the bounding box of the requests plus
/// start position — moving outside only adds cost), which keeps the 1-D DP
/// grid finite and lets the convex solver pick sane initial iterates.
#pragma once

#include <vector>

#include "geometry/point.hpp"

namespace mobsrv::geo {

/// Axis-aligned box [lo, hi] in R^d. Empty until the first extend().
class Aabb {
 public:
  Aabb() = default;
  explicit Aabb(int dim) : lo_(dim), hi_(dim), empty_(true) {}

  /// Grows the box to contain p. The first point fixes the dimension.
  void extend(const Point& p) {
    if (lo_.empty()) {
      lo_ = p;
      hi_ = p;
      empty_ = false;
      return;
    }
    MOBSRV_CHECK(p.dim() == lo_.dim());
    empty_ = false;
    for (int i = 0; i < p.dim(); ++i) {
      if (p[i] < lo_[i]) lo_[i] = p[i];
      if (p[i] > hi_[i]) hi_[i] = p[i];
    }
  }

  /// Grows the box by \p margin on every side.
  void inflate(double margin) {
    MOBSRV_CHECK(!empty_);
    for (int i = 0; i < lo_.dim(); ++i) {
      lo_[i] -= margin;
      hi_[i] += margin;
    }
  }

  [[nodiscard]] bool empty() const noexcept { return empty_; }
  [[nodiscard]] int dim() const noexcept { return lo_.dim(); }
  [[nodiscard]] const Point& lo() const { return lo_; }
  [[nodiscard]] const Point& hi() const { return hi_; }

  [[nodiscard]] Point center() const {
    MOBSRV_CHECK(!empty_);
    return (lo_ + hi_) * 0.5;
  }

  /// Longest side length.
  [[nodiscard]] double extent() const {
    MOBSRV_CHECK(!empty_);
    double e = 0.0;
    for (int i = 0; i < lo_.dim(); ++i) e = std::max(e, hi_[i] - lo_[i]);
    return e;
  }

  [[nodiscard]] bool contains(const Point& p, double eps = 0.0) const {
    if (empty_ || p.dim() != lo_.dim()) return false;
    for (int i = 0; i < p.dim(); ++i)
      if (p[i] < lo_[i] - eps || p[i] > hi_[i] + eps) return false;
    return true;
  }

  /// Clamps p into the box component-wise.
  [[nodiscard]] Point clamp(const Point& p) const {
    MOBSRV_CHECK(!empty_ && p.dim() == lo_.dim());
    Point q = p;
    for (int i = 0; i < p.dim(); ++i) {
      if (q[i] < lo_[i]) q[i] = lo_[i];
      if (q[i] > hi_[i]) q[i] = hi_[i];
    }
    return q;
  }

  /// Bounding box of a point set (must be non-empty, uniform dimension).
  [[nodiscard]] static Aabb of(const std::vector<Point>& pts) {
    MOBSRV_CHECK(!pts.empty());
    Aabb box;
    for (const auto& p : pts) box.extend(p);
    return box;
  }

 private:
  Point lo_;
  Point hi_;
  bool empty_ = true;
};

}  // namespace mobsrv::geo
