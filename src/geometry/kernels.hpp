/// \file kernels.hpp
/// Dimension-specialized geometric kernels over raw coordinate rows.
///
/// The flat trajectory/request buffers (sim::TrajectoryStore,
/// sim::RequestStore) hand out dense `double` rows; these kernels are the
/// point-pair primitives the solvers run on them. Each is templated on a
/// compile-time dimension (`Dim == 1` / `Dim == 2` are the paper's embedding
/// dimensions and become fixed-trip-count loops the compiler unrolls and
/// vectorizes; `Dim == 0` is the generic runtime-dimension fallback).
///
/// CONTRACT: every kernel performs the exact floating-point operation
/// sequence of its geo::Point counterpart (componentwise difference, squares
/// summed in axis order, then sqrt; scale factors applied in the same
/// association). Costs computed through these kernels are bit-identical to
/// the Point-arithmetic path — the offline-solver parity tests depend on it.
#pragma once

#include <cmath>
#include <cstring>
#include <utility>

#include "geometry/point.hpp"

namespace mobsrv::geo::kern {

/// Loop bound: the compile-time dimension when specialized, else the runtime
/// one. `Dim == 0` means "not specialized".
template <int Dim>
[[nodiscard]] constexpr int bound(int dim) noexcept {
  return Dim > 0 ? Dim : dim;
}

/// Squared Euclidean distance between two dense rows; same accumulation
/// order as (a - b).norm2().
template <int Dim>
[[nodiscard]] inline double distance2(const double* a, const double* b, int dim) {
  double s2 = 0.0;
  for (int k = 0; k < bound<Dim>(dim); ++k) {
    const double d = a[k] - b[k];
    s2 += d * d;
  }
  return s2;
}

/// Euclidean distance between two dense rows; bit-identical to
/// geo::distance on the same coordinates.
template <int Dim>
[[nodiscard]] inline double distance(const double* a, const double* b, int dim) {
  return std::sqrt(distance2<Dim>(a, b, dim));
}

/// Moves \p from toward \p to by at most \p step into \p out (dense rows,
/// `out` may alias either input). Bit-identical to geo::move_toward:
///   d <= step or d == 0  ->  out = to
///   otherwise            ->  out[k] = from[k] + (to[k] - from[k]) * (step/d)
template <int Dim>
inline void move_toward(const double* from, const double* to, int dim, double step, double* out) {
  MOBSRV_DCHECK(step >= 0.0);
  const double d = distance<Dim>(from, to, dim);
  if (d <= step || d == 0.0) {
    if (out != to) std::memmove(out, to, sizeof(double) * static_cast<std::size_t>(dim));
    return;
  }
  const double scale = step / d;
  for (int k = 0; k < bound<Dim>(dim); ++k) out[k] = from[k] + (to[k] - from[k]) * scale;
}

/// Invokes `fn(std::integral_constant<int, Dim>{})` with Dim specialized for
/// the paper's low-dimensional embeddings (1 and 2) and 0 (generic) for
/// everything else. The single dispatch point hot loops branch through once
/// per call instead of once per coordinate.
template <class Fn>
decltype(auto) dispatch_dim(int dim, Fn&& fn) {
  switch (dim) {
    case 1:
      return std::forward<Fn>(fn)(std::integral_constant<int, 1>{});
    case 2:
      return std::forward<Fn>(fn)(std::integral_constant<int, 2>{});
    default:
      return std::forward<Fn>(fn)(std::integral_constant<int, 0>{});
  }
}

}  // namespace mobsrv::geo::kern
