/// \file point.hpp
/// A small fixed-capacity Euclidean point/vector type.
///
/// The Mobile Server Problem lives in R^d for arbitrary d; the paper's
/// constructions are low-dimensional embeddings, so a runtime dimension with
/// small inline storage (no heap allocation per point) covers every
/// experiment while keeping the simulator's inner loop allocation-free.
#pragma once

#include <array>
#include <cmath>
#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <string>

#include "common/contracts.hpp"

namespace mobsrv::geo {

/// Euclidean point (equivalently, vector) of runtime dimension 1..kMaxDim.
///
/// All binary operations require matching dimensions (checked with
/// MOBSRV_DCHECK in hot paths). Value type: copyable, comparable,
/// streamable.
class Point {
 public:
  /// Maximum supported dimension. 8 covers every experiment in the paper
  /// reproduction (the lower-bound constructions are 1-D embeddings).
  static constexpr int kMaxDim = 8;

  /// Constructs a 0-dimensional (empty) point. Useful only as a
  /// placeholder; any arithmetic on it is a contract violation.
  constexpr Point() noexcept : dim_(0), x_{} {}

  /// Constructs the origin of R^dim.
  explicit Point(int dim) : dim_(dim), x_{} {
    MOBSRV_CHECK_MSG(dim >= 1 && dim <= kMaxDim, "Point dimension out of range");
  }

  /// Constructs from coordinates, e.g. Point{1.0, 2.0}.
  Point(std::initializer_list<double> coords) : dim_(static_cast<int>(coords.size())), x_{} {
    MOBSRV_CHECK_MSG(dim_ >= 1 && dim_ <= kMaxDim, "Point dimension out of range");
    int i = 0;
    for (double c : coords) x_[i++] = c;
  }

  /// The origin of R^dim.
  [[nodiscard]] static Point zero(int dim) { return Point(dim); }

  /// The i-th canonical unit vector of R^dim.
  [[nodiscard]] static Point unit(int dim, int axis) {
    Point p(dim);
    MOBSRV_CHECK(axis >= 0 && axis < dim);
    p.x_[axis] = 1.0;
    return p;
  }

  /// Embeds a scalar on the first axis of R^dim (the paper's lower bounds
  /// are line constructions inside R^d).
  [[nodiscard]] static Point on_axis(int dim, double value, int axis = 0) {
    Point p(dim);
    MOBSRV_CHECK(axis >= 0 && axis < dim);
    p.x_[axis] = value;
    return p;
  }

  [[nodiscard]] int dim() const noexcept { return dim_; }
  [[nodiscard]] bool empty() const noexcept { return dim_ == 0; }

  [[nodiscard]] double operator[](int i) const {
    MOBSRV_DCHECK(i >= 0 && i < dim_);
    return x_[i];
  }
  [[nodiscard]] double& operator[](int i) {
    MOBSRV_DCHECK(i >= 0 && i < dim_);
    return x_[i];
  }

  Point& operator+=(const Point& o) {
    MOBSRV_DCHECK(dim_ == o.dim_);
    for (int i = 0; i < dim_; ++i) x_[i] += o.x_[i];
    return *this;
  }
  Point& operator-=(const Point& o) {
    MOBSRV_DCHECK(dim_ == o.dim_);
    for (int i = 0; i < dim_; ++i) x_[i] -= o.x_[i];
    return *this;
  }
  Point& operator*=(double s) noexcept {
    for (int i = 0; i < dim_; ++i) x_[i] *= s;
    return *this;
  }
  Point& operator/=(double s) {
    MOBSRV_DCHECK(s != 0.0);
    for (int i = 0; i < dim_; ++i) x_[i] /= s;
    return *this;
  }

  [[nodiscard]] friend Point operator+(Point a, const Point& b) { return a += b; }
  [[nodiscard]] friend Point operator-(Point a, const Point& b) { return a -= b; }
  [[nodiscard]] friend Point operator*(Point a, double s) { return a *= s; }
  [[nodiscard]] friend Point operator*(double s, Point a) { return a *= s; }
  [[nodiscard]] friend Point operator/(Point a, double s) { return a /= s; }
  [[nodiscard]] friend Point operator-(Point a) { return a *= -1.0; }

  [[nodiscard]] friend bool operator==(const Point& a, const Point& b) {
    if (a.dim_ != b.dim_) return false;
    for (int i = 0; i < a.dim_; ++i)
      if (a.x_[i] != b.x_[i]) return false;
    return true;
  }
  [[nodiscard]] friend bool operator!=(const Point& a, const Point& b) { return !(a == b); }

  /// Inner product.
  [[nodiscard]] double dot(const Point& o) const {
    MOBSRV_DCHECK(dim_ == o.dim_);
    double s = 0.0;
    for (int i = 0; i < dim_; ++i) s += x_[i] * o.x_[i];
    return s;
  }

  /// Squared Euclidean norm.
  [[nodiscard]] double norm2() const noexcept {
    double s = 0.0;
    for (int i = 0; i < dim_; ++i) s += x_[i] * x_[i];
    return s;
  }

  /// Euclidean norm.
  [[nodiscard]] double norm() const noexcept { return std::sqrt(norm2()); }

  /// Returns this vector scaled to unit length; the zero vector is returned
  /// unchanged (callers in the simulator treat "no direction" as "stay").
  [[nodiscard]] Point normalized() const {
    const double n = norm();
    if (n == 0.0) return *this;
    return *this / n;
  }

  /// Human-readable "(x, y, …)".
  [[nodiscard]] std::string to_string() const;

  /// Raw coordinate storage (dim() leading doubles are meaningful). The flat
  /// request/trajectory storage (sim::BatchView, sim::TrajectoryView) builds
  /// strided views over Point arrays through these accessors.
  [[nodiscard]] const double* data() const noexcept { return x_.data(); }
  [[nodiscard]] double* data() noexcept { return x_.data(); }

 private:
  int dim_;
  std::array<double, kMaxDim> x_;
};

static_assert(sizeof(Point) % sizeof(double) == 0,
              "BatchView strides over Point arrays in units of double");

/// Euclidean distance between two points.
[[nodiscard]] inline double distance(const Point& a, const Point& b) { return (a - b).norm(); }

/// Squared Euclidean distance.
[[nodiscard]] inline double distance2(const Point& a, const Point& b) { return (a - b).norm2(); }

/// Linear interpolation a + t·(b−a); t is not clamped.
[[nodiscard]] inline Point lerp(const Point& a, const Point& b, double t) {
  return a + (b - a) * t;
}

/// Moves \p from toward \p to by at most \p step; never overshoots.
/// This is the primitive every online algorithm in the library uses to
/// respect the per-round movement limit m.
[[nodiscard]] Point move_toward(const Point& from, const Point& to, double step);

/// True iff the two points are within \p eps of each other (L2).
[[nodiscard]] inline bool approx_equal(const Point& a, const Point& b, double eps = 1e-9) {
  return distance(a, b) <= eps;
}

std::ostream& operator<<(std::ostream& os, const Point& p);

}  // namespace mobsrv::geo
