/// \file segment.hpp
/// Line-segment utilities.
///
/// The geometric-median *set* of a request batch is a segment whenever the
/// requests are collinear with even multiplicity balance (in particular for
/// r = 2 and for all 1-D instances). MtC's tie-break rule — "pick the center
/// closest to the server" — is exactly a closest-point-on-segment query, so
/// the segment primitives here are load-bearing for the algorithm's
/// correctness proof.
#pragma once

#include "geometry/point.hpp"

namespace mobsrv::geo {

/// Closed segment [a, b]; a == b degenerates to a point.
struct Segment {
  Point a;
  Point b;

  [[nodiscard]] double length() const { return distance(a, b); }

  /// Point at parameter t in [0,1] along the segment (clamped).
  [[nodiscard]] Point at(double t) const {
    if (t <= 0.0) return a;
    if (t >= 1.0) return b;
    return lerp(a, b, t);
  }
};

/// The point of [a,b] closest to q (orthogonal projection clamped to the
/// segment). For a degenerate segment returns a.
[[nodiscard]] Point closest_point_on_segment(const Segment& s, const Point& q);

/// Distance from q to the segment.
[[nodiscard]] double distance_to_segment(const Segment& s, const Point& q);

/// True iff all points of \p pts (size >= 1) lie on one line, within
/// tolerance \p eps measured as maximum orthogonal deviation relative to
/// the spread of the points.
[[nodiscard]] bool collinear(const Point* pts, int n, double eps = 1e-9);

/// Unit direction of the best-fit line through collinear points: the
/// direction from the two most distant points. Requires n >= 2 and at least
/// two distinct points; otherwise returns the zero vector.
[[nodiscard]] Point collinear_direction(const Point* pts, int n);

}  // namespace mobsrv::geo
