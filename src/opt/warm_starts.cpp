#include "opt/warm_starts.hpp"

#include <algorithm>

#include "median/geometric_median.hpp"

namespace mobsrv::opt {

std::vector<sim::Point> chase_init(const sim::Instance& instance, bool damped) {
  using geo::Point;
  std::vector<Point> x;
  x.reserve(instance.horizon() + 1);
  x.push_back(instance.start());
  const double m = instance.params().max_step;
  const double D = instance.params().move_cost_weight;
  std::vector<Point> reqs;  // scratch for the point-based median kernel
  for (std::size_t t = 0; t < instance.horizon(); ++t) {
    const sim::BatchView batch = instance.step(t);
    if (batch.empty()) {
      x.push_back(x.back());
      continue;
    }
    batch.copy_to(reqs);
    const Point center = med::closest_center(reqs, x.back());
    double step = m;
    if (damped) {
      const double dist = geo::distance(x.back(), center);
      step = std::min(m, dist * std::min(1.0, static_cast<double>(reqs.size()) / D));
    }
    x.push_back(geo::move_toward(x.back(), center, step));
  }
  return x;
}

std::vector<sim::Point> forward_clamp(const sim::Instance& instance,
                                      const std::vector<sim::Point>& x) {
  std::vector<sim::Point> y(x.size());
  y[0] = instance.start();
  const double m = instance.params().max_step;
  for (std::size_t t = 0; t + 1 < x.size(); ++t) y[t + 1] = geo::move_toward(y[t], x[t + 1], m);
  return y;
}

std::size_t serve_index(const sim::ModelParams& params, std::size_t t) {
  return params.order == sim::ServiceOrder::kMoveThenServe ? t + 1 : t;
}

}  // namespace mobsrv::opt
