#include "opt/warm_starts.hpp"

#include <algorithm>

#include "geometry/kernels.hpp"
#include "median/geometric_median.hpp"

namespace mobsrv::opt {

void chase_init(const sim::Instance& instance, bool damped, sim::TrajectoryStore& out) {
  using geo::Point;
  // Fix the dimension before reserving so the buffer is sized in one
  // allocation (a dimensionless store reserves in units of one double).
  if (out.dim() != instance.dim()) out = sim::TrajectoryStore(instance.dim());
  out.clear_positions();
  out.reserve(instance.horizon() + 1);
  const double m = instance.params().max_step;
  const double D = instance.params().move_cost_weight;
  // The chase itself is a cold O(T) init pass, so it keeps the Point-based
  // median kernel; only the storage is flat.
  Point current = instance.start();
  out.push_back(current);
  std::vector<Point> reqs;  // scratch for the point-based median kernel
  for (std::size_t t = 0; t < instance.horizon(); ++t) {
    const sim::BatchView batch = instance.step(t);
    if (batch.empty()) {
      out.push_back(current);
      continue;
    }
    batch.copy_to(reqs);
    const Point center = med::closest_center(reqs, current);
    double step = m;
    if (damped) {
      const double dist = geo::distance(current, center);
      step = std::min(m, dist * std::min(1.0, static_cast<double>(reqs.size()) / D));
    }
    current = geo::move_toward(current, center, step);
    out.push_back(current);
  }
}

std::vector<sim::Point> chase_init(const sim::Instance& instance, bool damped) {
  sim::TrajectoryStore store;
  chase_init(instance, damped, store);
  return store.to_points();
}

void forward_clamp(const sim::Instance& instance, sim::ConstTrajectoryView x,
                   sim::TrajectoryView y) {
  MOBSRV_CHECK_MSG(x.size() == y.size() && !x.empty(), "clamp target must match the input length");
  MOBSRV_CHECK_MSG(x.dim() == instance.dim() && y.dim() == instance.dim(),
                   "trajectory dimension mismatch");
  const int dim = instance.dim();
  const double m = instance.params().max_step;
  y.set(0, instance.start());
  geo::kern::dispatch_dim(dim, [&](auto d) {
    constexpr int Dim = decltype(d)::value;
    for (std::size_t t = 0; t + 1 < x.size(); ++t)
      geo::kern::move_toward<Dim>(y.row(t), x.row(t + 1), dim, m, y.row(t + 1));
  });
}

std::vector<sim::Point> forward_clamp(const sim::Instance& instance,
                                      const std::vector<sim::Point>& x) {
  sim::TrajectoryStore in = sim::TrajectoryStore::from_points(x);
  sim::TrajectoryStore out(instance.dim(), x.size());
  forward_clamp(instance, in, out.view());
  return out.to_points();
}

std::size_t serve_index(const sim::ModelParams& params, std::size_t t) {
  return params.order == sim::ServiceOrder::kMoveThenServe ? t + 1 : t;
}

}  // namespace mobsrv::opt
