/// \file convex_descent.hpp
/// Best-effort offline optimum in arbitrary dimension by smoothed projected
/// gradient descent.
///
/// The offline objective
///     F(P_1..P_T) = Σ_t [ D·‖P_{t+1}−P_t‖ + Σ_i ‖P_serve(t) − v_{t,i}‖ ]
/// is convex, and the per-step constraints ‖P_{t+1}−P_t‖ ≤ m are convex, so
/// descent converges to the global optimum up to smoothing error. Norms are
/// smoothed pseudo-Huber style (√(‖·‖² + μ²) − μ); after each gradient step
/// the trajectory is pushed back toward feasibility with symmetric pairwise
/// projection sweeps and finally *repaired* by a forward clamp pass, so the
/// returned trajectory is always strictly feasible — i.e. its cost is a
/// true upper bound on OPT.
#pragma once

#include "opt/offline_solution.hpp"

namespace mobsrv::opt {

/// Tuning for the descent.
struct ConvexDescentOptions {
  int iterations = 400;
  /// Initial step size in multiples of the movement limit m.
  double initial_step = 0.5;
  /// Pairwise-projection sweeps after each gradient step.
  int projection_sweeps = 4;
  /// Smoothing parameter in multiples of m.
  double smoothing = 1e-6;
};

/// Solves an instance of any dimension. If \p warm_start is non-null it must
/// hold horizon()+1 feasible-or-not positions beginning at the start
/// position; otherwise the solver initialises with a greedy feasible chase
/// of the per-step batch centroids.
///
/// The whole descent runs on flat trajectory buffers (sim::TrajectoryStore)
/// with dimension-specialized kernels and performs zero allocations inside
/// the iteration loop; the std::vector<Point> warm-start overload is a
/// conversion shim producing bit-identical results.
[[nodiscard]] OfflineSolution solve_convex_descent(const sim::Instance& instance,
                                                   const ConvexDescentOptions& options = {},
                                                   const sim::TrajectoryStore* warm_start = nullptr);
[[nodiscard]] OfflineSolution solve_convex_descent(const sim::Instance& instance,
                                                   const ConvexDescentOptions& options,
                                                   const std::vector<sim::Point>* warm_start);

/// Cheap certified lower bound on OPT in any dimension: the server starts at
/// P_0 and can be at distance at most (t+1)·m_serve from it when serving
/// step t, so every request contributes at least
/// max(0, d(P_0, v) − reach_t). Crude but sound; used as a sanity floor.
[[nodiscard]] double reachability_lower_bound(const sim::Instance& instance);

}  // namespace mobsrv::opt
