/// \file grid_dp.hpp
/// Near-exact offline optimum on the line by dynamic programming over a
/// uniform position grid.
///
/// The offline Mobile Server Problem is convex; on the line it discretises
/// cleanly: anchor a grid of spacing h at the start position, cover the
/// bounding interval of {start} ∪ requests (OPT never profits from leaving
/// it), and run a windowed min-plus DP where a step may move at most
/// floor(m/h) cells.
///
/// Two window policies give an OPT *bracket*:
///   * feasible window  w = floor(m/h):  every DP trajectory is feasible in
///     the continuous problem, so  DP_feas >= OPT;
///   * relaxed window  w+1: every continuous feasible trajectory rounds to
///     a grid trajectory inside this window while changing each step's cost
///     by at most D·h + r_t·h/2, so  DP_relax − Σ_t(D·h + r_t·h/2) <= OPT.
///
/// Both service orders are supported (the Answer-First variant charges the
/// service at the pre-move position, which just moves the service term from
/// the target to the source cell of the transition).
#pragma once

#include "opt/offline_solution.hpp"

namespace mobsrv::opt {

/// Tuning for the DP.
struct GridDpOptions {
  /// Grid resolution: number of cells per movement radius m. Spacing
  /// h = m / cells_per_step. 4–8 is plenty for ratio experiments.
  double cells_per_step = 4.0;
  /// Safety cap on the number of grid cells (memory/time guard). If the
  /// instance needs more, the spacing is coarsened to fit and the error
  /// bound grows accordingly.
  std::size_t max_cells = 300000;
  /// Extra margin (in multiples of m) added around the bounding interval.
  double margin_steps = 1.0;
  /// Reconstruct the optimal trajectory (needs O(T·G) parent memory; the
  /// solver throws if that would exceed max_parent_entries).
  bool want_trajectory = false;
  std::size_t max_parent_entries = 50'000'000;
};

/// Result of the bracket solve.
struct GridDpResult {
  OfflineSolution solution;     ///< feasible-window solution (cost >= OPT)
  double relaxed_cost = 0.0;    ///< relaxed-window DP value
  double rounding_error = 0.0;  ///< Σ_t (D·h + r_t·h/2)
  double spacing = 0.0;         ///< grid spacing h actually used
  std::size_t cells = 0;        ///< grid size actually used

  /// Certified bracket [lower, upper] containing OPT.
  [[nodiscard]] double opt_upper() const noexcept { return solution.cost; }
  [[nodiscard]] double opt_lower() const noexcept { return solution.opt_lower_bound; }
};

/// Solves a 1-dimensional instance. Throws if instance.dim() != 1.
[[nodiscard]] GridDpResult solve_grid_dp_1d(const sim::Instance& instance,
                                            const GridDpOptions& options = {});

}  // namespace mobsrv::opt
