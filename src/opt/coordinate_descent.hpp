/// \file coordinate_descent.hpp
/// Block-coordinate descent for the offline optimum: the strongest general-
/// dimension oracle in the library.
///
/// Fixing every position except P_t, the subproblem
///     min_{P_t}  D·‖P_t − P_{t−1}‖ + D·‖P_{t+1} − P_t‖ + Σ_i ‖P_t − v_i‖
///     s.t.       ‖P_t − P_{t−1}‖ ≤ m,  ‖P_{t+1} − P_t‖ ≤ m
/// is a *constrained Weber problem*: its unconstrained solution is the
/// weighted geometric median of {P_{t−1}(w=D), P_{t+1}(w=D), v_i(w=1)}
/// (computed by the library's Weiszfeld solver), projected back onto the
/// intersection of the two movement balls by alternating projection. Exact
/// coordinate minimisation of a convex function over a product of convex
/// sets decreases the objective monotonically, and every intermediate
/// iterate remains strictly feasible — unlike the subgradient solver, no
/// repair pass is needed.
///
/// In practice this lands within the 1-D DP's certified bracket after a
/// handful of sweeps and is the default "polish" applied on top of
/// convex_descent by the ratio oracles.
#pragma once

#include "opt/offline_solution.hpp"

namespace mobsrv::opt {

struct CoordinateDescentOptions {
  int max_sweeps = 40;        ///< forward+backward passes over the trajectory
  double rel_tol = 1e-7;      ///< stop when a sweep improves less than this (relative)
  int projection_rounds = 32; ///< alternating-projection iterations per subproblem
};

/// Solves an instance of any dimension. If \p warm_start is given it must be
/// a feasible trajectory (horizon()+1 positions starting at the start); the
/// result is never worse than it. Without a warm start the solver seeds
/// itself from the library's standard chase inits. The trajectory lives in
/// flat SoA storage throughout; the std::vector<Point> warm-start overload
/// is a conversion shim producing bit-identical results.
[[nodiscard]] OfflineSolution solve_coordinate_descent(
    const sim::Instance& instance, const CoordinateDescentOptions& options = {},
    const sim::TrajectoryStore* warm_start = nullptr);
[[nodiscard]] OfflineSolution solve_coordinate_descent(const sim::Instance& instance,
                                                       const CoordinateDescentOptions& options,
                                                       const std::vector<sim::Point>* warm_start);

/// Best general-purpose offline pipeline: subgradient descent to shape the
/// trajectory globally, then coordinate descent to polish it. Used by the
/// experiment oracles.
[[nodiscard]] OfflineSolution solve_best_offline(const sim::Instance& instance,
                                                 const sim::TrajectoryStore* warm_start = nullptr);
[[nodiscard]] OfflineSolution solve_best_offline(const sim::Instance& instance,
                                                 const std::vector<sim::Point>* warm_start);

}  // namespace mobsrv::opt
