#include "opt/coordinate_descent.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "median/weiszfeld.hpp"
#include "opt/convex_descent.hpp"
#include "opt/warm_starts.hpp"
#include "sim/cost.hpp"

namespace mobsrv::opt {

namespace {

using geo::Point;

/// Projection of y onto the closed ball B(center, radius).
Point project_ball(const Point& y, const Point& center, double radius) {
  const double d = geo::distance(center, y);
  if (d <= radius) return y;
  return center + (y - center) * (radius / d);
}

/// The local objective of position index t: movement to/from its neighbours
/// plus the service cost of the batch served there.
struct Subproblem {
  const Point* prev = nullptr;  // P_{t-1}, always present
  const Point* next = nullptr;  // P_{t+1}, absent for the last position
  sim::BatchView batch;         // batch served at this index (may be empty)
  double d_weight = 1.0;
  double m = 1.0;

  [[nodiscard]] double value(const Point& p) const {
    double v = d_weight * geo::distance(*prev, p);
    if (next != nullptr) v += d_weight * geo::distance(p, *next);
    v += sim::service_cost(p, batch);
    return v;
  }

  [[nodiscard]] bool feasible(const Point& p, double tol = 1e-9) const {
    if (geo::distance(*prev, p) > m * (1.0 + tol)) return false;
    if (next != nullptr && geo::distance(p, *next) > m * (1.0 + tol)) return false;
    return true;
  }
};

/// Scratch for the Weber-problem assembly, hoisted out of the sweep loops so
/// a full solve allocates the point/weight arrays once, not once per
/// position per sweep.
struct WeberScratch {
  std::vector<Point> points;
  std::vector<double> weights;
};

/// Solves one subproblem: weighted Weiszfeld for the unconstrained Weber
/// point, then alternating projection onto the (nonempty — `current` is in
/// it) intersection of the movement balls. Returns the incumbent if no
/// strict improvement was found, so the sweep is monotone.
Point improve_position(const Subproblem& sub, const Point& current, int projection_rounds,
                       WeberScratch& scratch) {
  // Assemble the Weber problem: neighbours with weight D, requests with 1.
  std::vector<Point>& points = scratch.points;
  std::vector<double>& weights = scratch.weights;
  points.clear();
  weights.clear();
  points.push_back(*sub.prev);
  weights.push_back(sub.d_weight);
  if (sub.next != nullptr) {
    points.push_back(*sub.next);
    weights.push_back(sub.d_weight);
  }
  for (const Point v : sub.batch) {
    points.push_back(v);
    weights.push_back(1.0);
  }

  med::WeiszfeldOptions weiszfeld_options;
  weiszfeld_options.max_iterations = 60;
  Point candidate =
      med::weiszfeld(points, weights, current, weiszfeld_options).median;

  // Pull the candidate back into the feasible intersection.
  if (!sub.feasible(candidate)) {
    for (int k = 0; k < projection_rounds; ++k) {
      candidate = project_ball(candidate, *sub.prev, sub.m);
      if (sub.next != nullptr) candidate = project_ball(candidate, *sub.next, sub.m);
      if (sub.feasible(candidate)) break;
    }
    if (!sub.feasible(candidate)) return current;  // keep the safe incumbent
  }
  return sub.value(candidate) < sub.value(current) ? candidate : current;
}

}  // namespace

OfflineSolution solve_coordinate_descent(const sim::Instance& instance,
                                         const CoordinateDescentOptions& options,
                                         const sim::TrajectoryStore* warm_start) {
  MOBSRV_CHECK(options.max_sweeps >= 1 && options.projection_rounds >= 1);
  const auto& params = instance.params();
  const std::size_t T = instance.horizon();

  OfflineSolution out;
  if (T == 0) {
    out.positions.push_back(instance.start());
    return out;
  }

  // The trajectory lives in one flat buffer; the per-position Weber
  // subproblems materialise Points on demand (the Weiszfeld kernel is
  // point-based) but every read/write of the trajectory itself is dense.
  sim::TrajectoryStore x;
  if (warm_start != nullptr) {
    MOBSRV_CHECK_MSG(warm_start->size() == T + 1, "warm start must have horizon()+1 positions");
    MOBSRV_CHECK_MSG((*warm_start)[0] == instance.start(), "warm start must begin at the start");
    MOBSRV_CHECK_MSG(sim::first_speed_violation(instance, *warm_start) == -1,
                     "coordinate descent requires a FEASIBLE warm start");
    x = *warm_start;
  } else {
    sim::TrajectoryStore eager, damped;
    chase_init(instance, /*damped=*/false, eager);
    chase_init(instance, /*damped=*/true, damped);
    x = sim::trajectory_cost(instance, eager) <= sim::trajectory_cost(instance, damped)
            ? std::move(eager)
            : std::move(damped);
  }

  // Which batch is served at position index t? Move-First: batch t−1;
  // Answer-First: batch t (the last position serves nothing then).
  auto batch_at = [&](std::size_t t) -> sim::BatchView {
    if (params.order == sim::ServiceOrder::kMoveThenServe) return instance.step(t - 1);
    return t < T ? instance.step(t) : sim::BatchView{};
  };

  WeberScratch scratch;
  double cost = sim::trajectory_cost(instance, x);
  for (int sweep = 0; sweep < options.max_sweeps; ++sweep) {
    // Forward then backward pass (a symmetric sweep propagates slack both
    // ways along the chain).
    for (int dir = 0; dir < 2; ++dir) {
      for (std::size_t k = 1; k <= T; ++k) {
        const std::size_t t = dir == 0 ? k : T + 1 - k;
        const Point prev = x[t - 1];
        const Point current = x[t];
        Point next;
        if (t < T) next = x[t + 1];
        Subproblem sub;
        sub.prev = &prev;
        sub.next = t < T ? &next : nullptr;
        sub.batch = batch_at(t);
        sub.d_weight = params.move_cost_weight;
        sub.m = params.max_step;
        x.set(t, improve_position(sub, current, options.projection_rounds, scratch));
      }
    }
    const double new_cost = sim::trajectory_cost(instance, x);
    MOBSRV_CHECK_MSG(new_cost <= cost * (1.0 + 1e-9), "coordinate sweep increased the cost");
    if (cost - new_cost <= options.rel_tol * std::max(1.0, cost)) {
      cost = new_cost;
      break;
    }
    cost = new_cost;
  }

  MOBSRV_CHECK_MSG(sim::first_speed_violation(instance, x) == -1,
                   "coordinate descent lost feasibility");
  out.cost = cost;
  out.positions = std::move(x);
  out.opt_lower_bound = reachability_lower_bound(instance);
  return out;
}

OfflineSolution solve_coordinate_descent(const sim::Instance& instance,
                                         const CoordinateDescentOptions& options,
                                         const std::vector<sim::Point>* warm_start) {
  if (warm_start == nullptr) return solve_coordinate_descent(instance, options);
  const sim::TrajectoryStore warm = sim::TrajectoryStore::from_points(*warm_start);
  return solve_coordinate_descent(instance, options, &warm);
}

OfflineSolution solve_best_offline(const sim::Instance& instance,
                                   const sim::TrajectoryStore* warm_start) {
  OfflineSolution shaped = solve_convex_descent(instance, {}, warm_start);
  if (instance.horizon() == 0) return shaped;
  OfflineSolution polished = solve_coordinate_descent(instance, {}, &shaped.positions);
  polished.opt_lower_bound = std::max(polished.opt_lower_bound, shaped.opt_lower_bound);
  return polished.cost <= shaped.cost ? polished : shaped;
}

OfflineSolution solve_best_offline(const sim::Instance& instance,
                                   const std::vector<sim::Point>* warm_start) {
  if (warm_start == nullptr) return solve_best_offline(instance);
  const sim::TrajectoryStore warm = sim::TrajectoryStore::from_points(*warm_start);
  return solve_best_offline(instance, &warm);
}

}  // namespace mobsrv::opt
