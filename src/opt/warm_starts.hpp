/// \file warm_starts.hpp
/// Feasible starting trajectories shared by the offline solvers.
#pragma once

#include <vector>

#include "sim/model.hpp"

namespace mobsrv::opt {

/// Chase the per-step batch median. damped == false: at full speed m (good
/// when service dominates). damped == true: by min(m, min(1, r/D)·d) —
/// exactly the online MtC rule at speed factor 1, which guarantees offline
/// solutions seeded from it are never worse than the online algorithm.
[[nodiscard]] std::vector<sim::Point> chase_init(const sim::Instance& instance, bool damped);

/// Greedy feasibility repair: follows \p x as closely as the movement limit
/// allows, starting from the instance's start position. The result is
/// always strictly feasible.
[[nodiscard]] std::vector<sim::Point> forward_clamp(const sim::Instance& instance,
                                                    const std::vector<sim::Point>& x);

/// Index of the position batch t is served from (t+1 for Move-First, t for
/// Answer-First).
[[nodiscard]] std::size_t serve_index(const sim::ModelParams& params, std::size_t t);

}  // namespace mobsrv::opt
