/// \file warm_starts.hpp
/// Feasible starting trajectories shared by the offline solvers.
///
/// The store-based entry points are the hot path (the descent solvers call
/// forward_clamp once per iteration); the std::vector<Point> overloads are
/// conversion shims that produce bit-identical positions for AoS callers.
#pragma once

#include <vector>

#include "sim/model.hpp"
#include "sim/trajectory_store.hpp"

namespace mobsrv::opt {

/// Chase the per-step batch median. damped == false: at full speed m (good
/// when service dominates). damped == true: by min(m, min(1, r/D)·d) —
/// exactly the online MtC rule at speed factor 1, which guarantees offline
/// solutions seeded from it are never worse than the online algorithm.
/// Fills \p out with the horizon()+1 positions (previous contents dropped).
void chase_init(const sim::Instance& instance, bool damped, sim::TrajectoryStore& out);
[[nodiscard]] std::vector<sim::Point> chase_init(const sim::Instance& instance, bool damped);

/// Greedy feasibility repair: follows \p x as closely as the movement limit
/// allows, starting from the instance's start position. The result is
/// always strictly feasible. The view form writes into \p y (same length as
/// \p x; \p y may alias \p x for a fully in-place repair) and performs no
/// allocations — the descent loop calls it every iteration.
void forward_clamp(const sim::Instance& instance, sim::ConstTrajectoryView x,
                   sim::TrajectoryView y);
[[nodiscard]] std::vector<sim::Point> forward_clamp(const sim::Instance& instance,
                                                    const std::vector<sim::Point>& x);

/// Index of the position batch t is served from (t+1 for Move-First, t for
/// Answer-First).
[[nodiscard]] std::size_t serve_index(const sim::ModelParams& params, std::size_t t);

}  // namespace mobsrv::opt
