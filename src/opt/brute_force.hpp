/// \file brute_force.hpp
/// Exhaustive offline optimum over an explicit candidate-position grid.
///
/// Exponential in the horizon and only meant for cross-validating the DP
/// recurrence and the convex solver on tiny instances in tests.
#pragma once

#include "opt/offline_solution.hpp"

namespace mobsrv::opt {

/// Enumerates every trajectory P_1..P_T with all positions drawn from
/// \p candidates (P_0 = instance start) that respects the movement limit,
/// and returns the cheapest. \p candidates must be non-empty; the start is
/// added automatically. Guarded to candidates^horizon <= max_states.
[[nodiscard]] OfflineSolution brute_force_offline(const sim::Instance& instance,
                                                  std::vector<sim::Point> candidates,
                                                  std::size_t max_states = 20'000'000);

}  // namespace mobsrv::opt
