#include "opt/grid_dp.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <numeric>
#include <span>
#include <vector>

namespace mobsrv::opt {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Service-cost array: S[j] = Σ_i |x_j − v_i| for the uniform grid
/// x_j = origin + j·h, computed in O(G + r log r) with a sorted sweep.
/// \p requests is sorted in place and \p prefix is caller-owned scratch, so
/// the per-step call allocates nothing once the scratch has grown — the old
/// signature took the request vector by value and copied every batch.
void service_costs(double origin, double h, std::size_t cells, std::span<double> requests,
                   std::vector<double>& prefix, std::vector<double>& out) {
  out.assign(cells, 0.0);
  if (requests.empty()) return;
  std::sort(requests.begin(), requests.end());
  prefix.assign(requests.size() + 1, 0.0);
  for (std::size_t i = 0; i < requests.size(); ++i) prefix[i + 1] = prefix[i] + requests[i];
  const double total = prefix.back();
  const auto r = requests.size();
  std::size_t below = 0;  // number of requests <= current grid point
  for (std::size_t j = 0; j < cells; ++j) {
    const double x = origin + static_cast<double>(j) * h;
    while (below < r && requests[below] <= x) ++below;
    const auto nb = static_cast<double>(below);
    out[j] = x * nb - prefix[below] + (total - prefix[below]) - x * (static_cast<double>(r) - nb);
  }
}

/// dst[j] = min_{|k−j| <= w} (src[k] + unit·|k−j|), O(G) via two monotonic-
/// deque passes. If \p parent is non-null, records the minimising k.
void windowed_minplus(const std::vector<double>& src, long w, double unit,
                      std::vector<double>& dst, std::vector<std::int32_t>* parent) {
  const long n = static_cast<long>(src.size());
  dst.assign(src.size(), kInf);
  if (parent) parent->assign(src.size(), -1);

  // Left pass: k in [j−w, j], objective (src[k] − unit·k) + unit·j.
  {
    std::deque<long> q;  // indices with increasing key
    auto key = [&](long k) { return src[static_cast<std::size_t>(k)] - unit * static_cast<double>(k); };
    for (long j = 0; j < n; ++j) {
      while (!q.empty() && key(q.back()) >= key(j)) q.pop_back();
      q.push_back(j);
      while (q.front() < j - w) q.pop_front();
      const long k = q.front();
      const double val = key(k) + unit * static_cast<double>(j);
      if (val < dst[static_cast<std::size_t>(j)]) {
        dst[static_cast<std::size_t>(j)] = val;
        if (parent) (*parent)[static_cast<std::size_t>(j)] = static_cast<std::int32_t>(k);
      }
    }
  }
  // Right pass: k in [j, j+w], objective (src[k] + unit·k) − unit·j.
  {
    std::deque<long> q;
    auto key = [&](long k) { return src[static_cast<std::size_t>(k)] + unit * static_cast<double>(k); };
    for (long j = n - 1; j >= 0; --j) {
      while (!q.empty() && key(q.back()) >= key(j)) q.pop_back();
      q.push_back(j);
      while (q.front() > j + w) q.pop_front();
      const long k = q.front();
      const double val = key(k) - unit * static_cast<double>(j);
      if (val < dst[static_cast<std::size_t>(j)]) {
        dst[static_cast<std::size_t>(j)] = val;
        if (parent) (*parent)[static_cast<std::size_t>(j)] = static_cast<std::int32_t>(k);
      }
    }
  }
}

struct DpRun {
  double cost = kInf;
  sim::TrajectoryStore positions;  // empty unless trajectory requested
};

DpRun run_dp(const sim::Instance& instance, double origin, double h, std::size_t cells,
             std::size_t start_index, long window, bool want_trajectory,
             std::size_t max_parent_entries) {
  const auto& params = instance.params();
  const double unit = params.move_cost_weight * h;
  const std::size_t T = instance.horizon();

  std::vector<std::vector<std::int32_t>> parents;
  if (want_trajectory) {
    MOBSRV_CHECK_MSG(T * cells <= max_parent_entries,
                     "trajectory reconstruction would exceed the parent memory cap");
    parents.resize(T);
  }

  std::vector<double> dp(cells, kInf), next, service, shifted;
  std::vector<double> coords, prefix;  // per-step scratch, reused across the horizon
  dp[start_index] = 0.0;

  for (std::size_t t = 0; t < T; ++t) {
    const sim::BatchView batch = instance.step(t);
    coords.clear();
    coords.reserve(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) coords.push_back(batch.coord(i, 0));
    service_costs(origin, h, cells, coords, prefix, service);

    if (params.order == sim::ServiceOrder::kServeThenMove) {
      shifted.resize(cells);
      for (std::size_t j = 0; j < cells; ++j) shifted[j] = dp[j] + service[j];
      windowed_minplus(shifted, window, unit, next, want_trajectory ? &parents[t] : nullptr);
    } else {
      windowed_minplus(dp, window, unit, next, want_trajectory ? &parents[t] : nullptr);
      for (std::size_t j = 0; j < cells; ++j) next[j] += service[j];
    }
    dp.swap(next);
  }

  DpRun out;
  std::size_t best = 0;
  for (std::size_t j = 0; j < cells; ++j)
    if (dp[j] < dp[best]) best = j;
  out.cost = dp[best];

  if (want_trajectory) {
    std::vector<std::size_t> idx(T + 1);
    idx[T] = best;
    for (std::size_t t = T; t > 0; --t) {
      const std::int32_t p = parents[t - 1][idx[t]];
      MOBSRV_CHECK_MSG(p >= 0, "broken DP parent chain");
      idx[t - 1] = static_cast<std::size_t>(p);
    }
    out.positions = sim::TrajectoryStore(1);
    out.positions.reserve(T + 1);
    for (std::size_t t = 0; t <= T; ++t)
      out.positions.push_back(
          geo::Point{origin + static_cast<double>(idx[t]) * h});
  }
  return out;
}

}  // namespace

GridDpResult solve_grid_dp_1d(const sim::Instance& instance, const GridDpOptions& options) {
  MOBSRV_CHECK_MSG(instance.dim() == 1, "grid DP requires a 1-dimensional instance");
  MOBSRV_CHECK(options.cells_per_step >= 1.0);
  const auto& params = instance.params();
  const double m = params.max_step;
  const double start = instance.start()[0];

  // OPT never profits from leaving the bounding interval of requests+start
  // (1-D projection onto it is non-expansive); margin is pure safety.
  double lo = start, hi = start;
  // The store's coordinate buffer IS the sorted-by-step list of 1-D request
  // positions — one dense scan finds the bounding interval.
  for (const double v : instance.store().coords()) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  lo -= options.margin_steps * m;
  hi += options.margin_steps * m;

  double h = m / options.cells_per_step;
  auto cell_count = [&](double spacing) {
    const double below = std::ceil((start - lo) / spacing);
    const double above = std::ceil((hi - start) / spacing);
    return static_cast<std::size_t>(below + above) + 1;
  };
  while (cell_count(h) > options.max_cells) h *= 2.0;

  const auto below = static_cast<long>(std::ceil((start - lo) / h));
  const auto above = static_cast<long>(std::ceil((hi - start) / h));
  const std::size_t cells = static_cast<std::size_t>(below + above) + 1;
  const double origin = start - static_cast<double>(below) * h;
  const auto start_index = static_cast<std::size_t>(below);

  const long w_feas = std::max<long>(1, static_cast<long>(std::floor(m / h + 1e-12)));
  const long w_relax = w_feas + 1;

  GridDpResult result;
  result.spacing = h;
  result.cells = cells;

  DpRun feas = run_dp(instance, origin, h, cells, start_index, w_feas,
                      options.want_trajectory, options.max_parent_entries);
  result.solution.cost = feas.cost;
  result.solution.positions = std::move(feas.positions);

  const DpRun relax =
      run_dp(instance, origin, h, cells, start_index, w_relax, false, options.max_parent_entries);
  result.relaxed_cost = relax.cost;

  double err = 0.0;
  for (std::size_t t = 0; t < instance.horizon(); ++t)
    err += params.move_cost_weight * h + static_cast<double>(instance.step(t).size()) * h / 2.0;
  result.rounding_error = err;
  result.solution.opt_lower_bound = std::max(0.0, relax.cost - err);
  return result;
}

}  // namespace mobsrv::opt
