#include "opt/convex_descent.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "opt/warm_starts.hpp"
#include "sim/cost.hpp"

namespace mobsrv::opt {

namespace {

using geo::Point;

/// ∇ of the smoothed norm ‖u‖_μ = √(‖u‖²+μ²) − μ.
Point smooth_norm_grad(const Point& u, double mu) {
  return u / std::sqrt(u.norm2() + mu * mu);
}

/// Smoothed objective gradient w.r.t. X[1..T] (slot 0 of `grad` stays zero —
/// the start is fixed).
void gradient(const sim::Instance& instance, const std::vector<Point>& x, double mu,
              std::vector<Point>& grad) {
  const auto& params = instance.params();
  const double D = params.move_cost_weight;
  for (auto& g : grad) g = Point::zero(instance.dim());

  for (std::size_t t = 0; t < instance.horizon(); ++t) {
    const Point move_grad = smooth_norm_grad(x[t + 1] - x[t], mu) * D;
    grad[t + 1] += move_grad;
    if (t > 0) grad[t] -= move_grad;

    const std::size_t s = serve_index(params, t);
    if (s == 0) continue;  // service at the fixed start costs nothing to optimise
    for (const geo::Point v : instance.step(t)) grad[s] += smooth_norm_grad(x[s] - v, mu);
  }
}

/// Symmetric pairwise projection toward the movement constraints; X[0]
/// never moves. Not an exact projection onto the intersection, only a cheap
/// contraction — the forward clamp below guarantees final feasibility.
void projection_sweeps(std::vector<Point>& x, double m, int sweeps) {
  const std::size_t n = x.size();
  for (int s = 0; s < sweeps; ++s) {
    for (std::size_t t = 0; t + 1 < n; ++t) {
      const double d = geo::distance(x[t], x[t + 1]);
      if (d <= m || d == 0.0) continue;
      const double excess = d - m;
      const Point dir = (x[t + 1] - x[t]) / d;
      if (t == 0) {
        x[t + 1] -= dir * excess;
      } else {
        x[t] += dir * (excess / 2.0);
        x[t + 1] -= dir * (excess / 2.0);
      }
    }
  }
}

}  // namespace

OfflineSolution solve_convex_descent(const sim::Instance& instance,
                                     const ConvexDescentOptions& options,
                                     const std::vector<sim::Point>* warm_start) {
  MOBSRV_CHECK(options.iterations >= 1 && options.projection_sweeps >= 0);
  const double m = instance.params().max_step;
  const double mu = options.smoothing * m;

  OfflineSolution best;
  if (instance.horizon() == 0) {
    best.positions = {instance.start()};
    best.cost = 0.0;
    return best;
  }

  // Candidate starting trajectories; descent starts from the cheapest, so
  // the result is never worse than any candidate.
  std::vector<std::vector<Point>> candidates;
  if (warm_start != nullptr) {
    MOBSRV_CHECK_MSG(warm_start->size() == instance.horizon() + 1,
                     "warm start must have horizon()+1 positions");
    MOBSRV_CHECK_MSG((*warm_start)[0] == instance.start(), "warm start must begin at the start");
    candidates.push_back(*warm_start);
  }
  candidates.push_back(chase_init(instance, /*damped=*/false));
  candidates.push_back(chase_init(instance, /*damped=*/true));

  std::vector<Point> x;
  best.cost = std::numeric_limits<double>::infinity();
  for (auto& candidate : candidates) {
    std::vector<Point> feasible = forward_clamp(instance, candidate);
    const double cost = sim::trajectory_cost(instance, feasible);
    if (cost < best.cost) {
      best.cost = cost;
      best.positions = std::move(feasible);
      x = std::move(candidate);
    }
  }

  // Per-position Lipschitz bound of the objective: a position feels at most
  // two movement terms (gradient norm <= D each) plus its batch's service
  // terms (<= r_max). Scaling the step by it lets every position move
  // O(initial_step·m) per early iteration — a global normalisation would
  // freeze long trajectories (total motion gets split across T positions).
  const double r_max = static_cast<double>(instance.request_bounds().second);
  const double lipschitz = 2.0 * instance.params().move_cost_weight + r_max;

  std::vector<Point> grad(x.size(), Point::zero(instance.dim()));
  for (int k = 0; k < options.iterations; ++k) {
    gradient(instance, x, mu, grad);

    // Diminishing-step subgradient method (classic nonsmooth guarantee).
    const double step =
        options.initial_step * m / (lipschitz * std::sqrt(static_cast<double>(k) + 1.0));
    for (std::size_t t = 1; t < x.size(); ++t) x[t] -= grad[t] * step;

    projection_sweeps(x, m, options.projection_sweeps);

    std::vector<Point> candidate = forward_clamp(instance, x);
    const double cost = sim::trajectory_cost(instance, candidate);
    if (cost < best.cost) {
      best.cost = cost;
      best.positions = std::move(candidate);
    }
  }

  best.opt_lower_bound = reachability_lower_bound(instance);
  return best;
}

double reachability_lower_bound(const sim::Instance& instance) {
  const auto& params = instance.params();
  const double m = params.max_step;
  double lb = 0.0;
  for (std::size_t t = 0; t < instance.horizon(); ++t) {
    const double reach = static_cast<double>(serve_index(params, t)) * m;
    for (const geo::Point v : instance.step(t))
      lb += std::max(0.0, geo::distance(instance.start(), v) - reach);
  }
  return lb;
}

}  // namespace mobsrv::opt
