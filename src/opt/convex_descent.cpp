#include "opt/convex_descent.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "geometry/kernels.hpp"
#include "opt/warm_starts.hpp"
#include "sim/cost.hpp"

namespace mobsrv::opt {

namespace {

using geo::Point;
using geo::kern::bound;

/// Smoothed objective gradient w.r.t. X[1..T], written into the dense
/// buffer \p grad (x.size()·dim doubles; row 0 stays zero — the start is
/// fixed). Per-coordinate operation sequence matches the Point-arithmetic
/// original exactly: u/√(‖u‖²+μ²) scaled by D for the movement terms,
/// w/√(‖w‖²+μ²) for the service terms, accumulated in axis order.
template <int Dim>
void gradient_k(const sim::Instance& instance, sim::ConstTrajectoryView x, double mu,
                double* grad) {
  const auto& params = instance.params();
  const double D = params.move_cost_weight;
  const int dim = instance.dim();
  std::fill(grad, grad + x.size() * static_cast<std::size_t>(dim), 0.0);

  for (std::size_t t = 0; t < instance.horizon(); ++t) {
    const double* xt = x.row(t);
    const double* xt1 = x.row(t + 1);
    double u[Point::kMaxDim];
    double u_norm2 = 0.0;
    for (int k = 0; k < bound<Dim>(dim); ++k) {
      u[k] = xt1[k] - xt[k];
      u_norm2 += u[k] * u[k];
    }
    const double u_denom = std::sqrt(u_norm2 + mu * mu);
    double* gt1 = grad + (t + 1) * static_cast<std::size_t>(dim);
    double* gt = grad + t * static_cast<std::size_t>(dim);
    for (int k = 0; k < bound<Dim>(dim); ++k) {
      const double move_grad = (u[k] / u_denom) * D;
      gt1[k] += move_grad;
      if (t > 0) gt[k] -= move_grad;
    }

    const std::size_t s = serve_index(params, t);
    if (s == 0) continue;  // service at the fixed start costs nothing to optimise
    const sim::BatchView batch = instance.step(t);
    const double* xs = x.row(s);
    double* gs = grad + s * static_cast<std::size_t>(dim);
    const double* v = batch.data();
    for (std::size_t i = 0; i < batch.size(); ++i, v += batch.stride()) {
      double w[Point::kMaxDim];
      double w_norm2 = 0.0;
      for (int k = 0; k < bound<Dim>(dim); ++k) {
        w[k] = xs[k] - v[k];
        w_norm2 += w[k] * w[k];
      }
      const double w_denom = std::sqrt(w_norm2 + mu * mu);
      for (int k = 0; k < bound<Dim>(dim); ++k) gs[k] += w[k] / w_denom;
    }
  }
}

/// Symmetric pairwise projection toward the movement constraints; X[0]
/// never moves. Not an exact projection onto the intersection, only a cheap
/// contraction — the forward clamp guarantees final feasibility. Operates
/// fully in place on the view.
template <int Dim>
void projection_sweeps_k(sim::TrajectoryView x, double m, int sweeps) {
  const int dim = x.dim();
  const std::size_t n = x.size();
  for (int s = 0; s < sweeps; ++s) {
    for (std::size_t t = 0; t + 1 < n; ++t) {
      double* a = x.row(t);
      double* b = x.row(t + 1);
      const double d = geo::kern::distance<Dim>(a, b, dim);
      if (d <= m || d == 0.0) continue;
      const double excess = d - m;
      double dir[Point::kMaxDim];
      for (int k = 0; k < bound<Dim>(dim); ++k) dir[k] = (b[k] - a[k]) / d;
      if (t == 0) {
        for (int k = 0; k < bound<Dim>(dim); ++k) b[k] -= dir[k] * excess;
      } else {
        const double half = excess / 2.0;
        for (int k = 0; k < bound<Dim>(dim); ++k) a[k] += dir[k] * half;
        for (int k = 0; k < bound<Dim>(dim); ++k) b[k] -= dir[k] * half;
      }
    }
  }
}

}  // namespace

OfflineSolution solve_convex_descent(const sim::Instance& instance,
                                     const ConvexDescentOptions& options,
                                     const sim::TrajectoryStore* warm_start) {
  MOBSRV_CHECK(options.iterations >= 1 && options.projection_sweeps >= 0);
  const double m = instance.params().max_step;
  const double mu = options.smoothing * m;
  const int dim = instance.dim();

  OfflineSolution best;
  if (instance.horizon() == 0) {
    best.positions.push_back(instance.start());
    best.cost = 0.0;
    return best;
  }

  // Candidate starting trajectories; descent starts from the cheapest, so
  // the result is never worse than any candidate.
  std::vector<sim::TrajectoryStore> candidates;
  if (warm_start != nullptr) {
    MOBSRV_CHECK_MSG(warm_start->size() == instance.horizon() + 1,
                     "warm start must have horizon()+1 positions");
    MOBSRV_CHECK_MSG((*warm_start)[0] == instance.start(), "warm start must begin at the start");
    candidates.push_back(*warm_start);
  }
  candidates.emplace_back();
  chase_init(instance, /*damped=*/false, candidates.back());
  candidates.emplace_back();
  chase_init(instance, /*damped=*/true, candidates.back());

  // One clamp scratch reused by every candidate evaluation AND every descent
  // iteration — the loop below performs no allocations at all.
  sim::TrajectoryStore clamped(dim, instance.horizon() + 1);
  sim::TrajectoryStore x;
  best.cost = std::numeric_limits<double>::infinity();
  for (auto& candidate : candidates) {
    forward_clamp(instance, candidate, clamped.view());
    const double cost = sim::trajectory_cost(instance, clamped);
    if (cost < best.cost) {
      best.cost = cost;
      best.positions.assign_from(clamped);
      x = std::move(candidate);
    }
  }

  // Per-position Lipschitz bound of the objective: a position feels at most
  // two movement terms (gradient norm <= D each) plus its batch's service
  // terms (<= r_max). Scaling the step by it lets every position move
  // O(initial_step·m) per early iteration — a global normalisation would
  // freeze long trajectories (total motion gets split across T positions).
  const double r_max = static_cast<double>(instance.request_bounds().second);
  const double lipschitz = 2.0 * instance.params().move_cost_weight + r_max;

  std::vector<double> grad(x.size() * static_cast<std::size_t>(dim), 0.0);
  geo::kern::dispatch_dim(dim, [&](auto d) {
    constexpr int Dim = decltype(d)::value;
    for (int k = 0; k < options.iterations; ++k) {
      gradient_k<Dim>(instance, x, mu, grad.data());

      // Diminishing-step subgradient method (classic nonsmooth guarantee).
      const double step =
          options.initial_step * m / (lipschitz * std::sqrt(static_cast<double>(k) + 1.0));
      for (std::size_t t = 1; t < x.size(); ++t) {
        double* xt = x.row(t);
        const double* gt = grad.data() + t * static_cast<std::size_t>(dim);
        for (int c = 0; c < bound<Dim>(dim); ++c) xt[c] -= gt[c] * step;
      }

      projection_sweeps_k<Dim>(x.view(), m, options.projection_sweeps);

      forward_clamp(instance, x, clamped.view());
      const double cost = sim::trajectory_cost(instance, clamped);
      if (cost < best.cost) {
        best.cost = cost;
        best.positions.assign_from(clamped);
      }
    }
  });

  best.opt_lower_bound = reachability_lower_bound(instance);
  return best;
}

OfflineSolution solve_convex_descent(const sim::Instance& instance,
                                     const ConvexDescentOptions& options,
                                     const std::vector<sim::Point>* warm_start) {
  if (warm_start == nullptr) return solve_convex_descent(instance, options);
  const sim::TrajectoryStore warm = sim::TrajectoryStore::from_points(*warm_start);
  return solve_convex_descent(instance, options, &warm);
}

double reachability_lower_bound(const sim::Instance& instance) {
  const auto& params = instance.params();
  const double m = params.max_step;
  double lb = 0.0;
  for (std::size_t t = 0; t < instance.horizon(); ++t) {
    const double reach = static_cast<double>(serve_index(params, t)) * m;
    for (const geo::Point v : instance.step(t))
      lb += std::max(0.0, geo::distance(instance.start(), v) - reach);
  }
  return lb;
}

}  // namespace mobsrv::opt
