/// \file offline_solution.hpp
/// Shared result type for offline (full-knowledge) solvers.
///
/// Competitive ratios are C_online / C_opt; since the true OPT is an
/// analytic object, solvers report both a *feasible* trajectory (whose cost
/// upper-bounds OPT) and — where the method allows it — a *certified lower
/// bound* on OPT, so ratio estimates can be bracketed from both sides.
#pragma once

#include <vector>

#include "sim/model.hpp"
#include "sim/trajectory_store.hpp"

namespace mobsrv::opt {

/// A feasible offline trajectory plus optional OPT bracket information.
struct OfflineSolution {
  /// Cost of the feasible trajectory below (an upper bound on OPT).
  double cost = 0.0;
  /// Certified lower bound on OPT, or 0 when the method provides none.
  double opt_lower_bound = 0.0;
  /// Feasible positions P_0..P_T in flat SoA storage (one dense double
  /// buffer — see sim/trajectory_store.hpp); may be empty when the caller
  /// requested cost-only operation (trajectory reconstruction needs O(T·G)
  /// memory in the DP solver). `positions[t]` materialises a Point;
  /// `positions.to_points()` converts for AoS consumers.
  sim::TrajectoryStore positions;
};

}  // namespace mobsrv::opt
