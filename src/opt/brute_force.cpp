#include "opt/brute_force.hpp"

#include <cmath>
#include <limits>

#include "sim/cost.hpp"

namespace mobsrv::opt {

namespace {

struct Enumerator {
  const sim::Instance& instance;
  const std::vector<sim::Point>& candidates;
  double limit;
  std::vector<sim::Point> current{};
  std::vector<sim::Point> best{};
  double best_cost = std::numeric_limits<double>::infinity();

  void recurse(std::size_t t, double cost_so_far) {
    if (cost_so_far >= best_cost) return;  // branch-and-bound prune
    if (t == instance.horizon()) {
      best_cost = cost_so_far;
      best = current;
      return;
    }
    const sim::Point here = current.back();  // by value: push_back below may reallocate
    for (const auto& next : candidates) {
      if (geo::distance(here, next) > limit) continue;
      const double step =
          sim::step_cost(instance.params(), here, next, instance.step(t)).total();
      current.push_back(next);
      recurse(t + 1, cost_so_far + step);
      current.pop_back();
    }
  }
};

}  // namespace

OfflineSolution brute_force_offline(const sim::Instance& instance,
                                    std::vector<sim::Point> candidates, std::size_t max_states) {
  MOBSRV_CHECK_MSG(!candidates.empty(), "need candidate positions");
  candidates.push_back(instance.start());
  const double states =
      std::pow(static_cast<double>(candidates.size()), static_cast<double>(instance.horizon()));
  MOBSRV_CHECK_MSG(states <= static_cast<double>(max_states),
                   "brute force state space too large");

  Enumerator e{instance, candidates, instance.params().max_step * (1.0 + 1e-12)};
  e.current.reserve(instance.horizon() + 1);
  e.current.push_back(instance.start());
  e.recurse(0, 0.0);

  OfflineSolution out;
  out.cost = e.best_cost;
  out.positions = sim::TrajectoryStore::from_points(e.best);
  return out;
}

}  // namespace mobsrv::opt
