#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/contracts.hpp"

namespace mobsrv::obs {

std::uint64_t Histogram::bucket_upper(std::size_t index) noexcept {
  if (index < kSub) return index;
  if (index >= kBuckets - 1) return std::numeric_limits<std::uint64_t>::max();
  const std::size_t off = index - static_cast<std::size_t>(kSub);
  const int exp = kSubBits + static_cast<int>(off / kSub);
  const std::uint64_t sub = off % kSub;
  // Bucket covers [ (kSub+sub) << (exp-kSubBits), (kSub+sub+1) << (exp-kSubBits) ).
  return ((kSub + sub + 1) << (exp - kSubBits)) - 1;
}

void Histogram::merge(const Histogram& other) noexcept {
  for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.max_ > max_) max_ = other.max_;
}

void Histogram::reset() noexcept {
  buckets_.fill(0);
  count_ = 0;
  sum_ = 0;
  max_ = 0;
}

std::uint64_t Histogram::percentile(double q) const noexcept {
  if (count_ == 0) return 0;
  const double scaled = std::ceil(q * static_cast<double>(count_));
  const std::uint64_t rank =
      scaled < 1.0 ? 1
                   : (scaled > static_cast<double>(count_) ? count_
                                                           : static_cast<std::uint64_t>(scaled));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    cumulative += buckets_[i];
    if (cumulative >= rank) return std::min(bucket_upper(i), max_);
  }
  return max_;  // unreachable: cumulative reaches count_ >= rank
}

Registry::Entry& Registry::entry(std::string name, std::string unit, std::string help,
                                 Kind kind) {
  for (auto& existing : entries_) {
    if (existing->name != name) continue;
    MOBSRV_CHECK_MSG(existing->kind == kind,
                     "metric \"" + name + "\" re-registered as a different kind");
    return *existing;
  }
  auto fresh = std::make_unique<Entry>();
  fresh->name = std::move(name);
  fresh->unit = std::move(unit);
  fresh->help = std::move(help);
  fresh->kind = kind;
  switch (kind) {
    case Kind::kCounter:
      fresh->counter = std::make_unique<Counter>();
      break;
    case Kind::kGauge:
      fresh->gauge = std::make_unique<Gauge>();
      break;
    case Kind::kHistogram:
      fresh->histogram = std::make_unique<Histogram>();
      break;
  }
  entries_.push_back(std::move(fresh));
  return *entries_.back();
}

Counter& Registry::counter(std::string name, std::string unit, std::string help) {
  return *entry(std::move(name), std::move(unit), std::move(help), Kind::kCounter).counter;
}

Gauge& Registry::gauge(std::string name, std::string unit, std::string help) {
  return *entry(std::move(name), std::move(unit), std::move(help), Kind::kGauge).gauge;
}

Histogram& Registry::histogram(std::string name, std::string unit, std::string help) {
  return *entry(std::move(name), std::move(unit), std::move(help), Kind::kHistogram).histogram;
}

const Registry::Entry* Registry::find(std::string_view name) const noexcept {
  for (const auto& entry : entries_)
    if (entry->name == name) return entry.get();
  return nullptr;
}

const char* kind_name(Registry::Kind kind) noexcept {
  switch (kind) {
    case Registry::Kind::kCounter:
      return "counter";
    case Registry::Kind::kGauge:
      return "gauge";
    case Registry::Kind::kHistogram:
      return "histogram";
  }
  return "counter";
}

io::Json summary_to_json(const HistogramSummary& summary) {
  io::Json doc = io::Json::object();
  doc.set("count", summary.count);
  doc.set("sum", summary.sum);
  doc.set("p50", summary.p50);
  doc.set("p90", summary.p90);
  doc.set("p99", summary.p99);
  doc.set("max", summary.max);
  return doc;
}

void append_metric_values(io::Json& doc, const Registry::Entry& entry) {
  switch (entry.kind) {
    case Registry::Kind::kCounter:
      doc.set("value", entry.counter->value());
      break;
    case Registry::Kind::kGauge:
      doc.set("value", entry.gauge->value());
      break;
    case Registry::Kind::kHistogram: {
      const HistogramSummary summary = entry.histogram->summary();
      doc.set("count", summary.count);
      doc.set("sum", summary.sum);
      doc.set("p50", summary.p50);
      doc.set("p90", summary.p90);
      doc.set("p99", summary.p99);
      doc.set("max", summary.max);
      break;
    }
  }
}

io::Json::Array Registry::to_json() const {
  io::Json::Array metrics;
  metrics.reserve(entries_.size());
  for (const auto& entry : entries_) {
    io::Json doc = io::Json::object();
    doc.set("name", entry->name);
    doc.set("type", kind_name(entry->kind));
    doc.set("unit", entry->unit);
    append_metric_values(doc, *entry);
    metrics.push_back(std::move(doc));
  }
  return metrics;
}

}  // namespace mobsrv::obs
