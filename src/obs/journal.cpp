#include "obs/journal.hpp"

#include <chrono>

#include "common/contracts.hpp"

namespace mobsrv::obs {

const char* event_name(EventType type) noexcept {
  switch (type) {
    case EventType::kOpen:
      return "open";
    case EventType::kClose:
      return "close";
    case EventType::kCheckpoint:
      return "checkpoint";
    case EventType::kBusy:
      return "busy";
    case EventType::kError:
      return "error";
    case EventType::kRestore:
      return "restore";
    case EventType::kDrain:
      return "drain";
    case EventType::kThrottle:
      return "throttle";
    case EventType::kCompact:
      return "compact";
    case EventType::kRetry:
      return "retry";
    case EventType::kDegraded:
      return "degraded";
    case EventType::kTimeout:
      return "timeout";
  }
  return "open";
}

namespace {

std::uint64_t wall_ms() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

}  // namespace

Journal::Journal(std::size_t capacity) {
  MOBSRV_CHECK_MSG(capacity >= 1, "journal capacity must be >= 1");
  ring_.resize(capacity);
}

void Journal::record(EventType type, std::string tenant, std::string detail) {
  Event& slot = ring_[static_cast<std::size_t>(total_ % ring_.size())];
  slot.seq = total_;
  slot.unix_ms = wall_ms();
  slot.type = type;
  slot.tenant = std::move(tenant);
  slot.detail = std::move(detail);
  ++total_;
}

std::vector<Event> Journal::events() const {
  std::vector<Event> out;
  const std::uint64_t kept = std::min<std::uint64_t>(total_, ring_.size());
  out.reserve(static_cast<std::size_t>(kept));
  for (std::uint64_t seq = total_ - kept; seq < total_; ++seq)
    out.push_back(ring_[static_cast<std::size_t>(seq % ring_.size())]);
  return out;
}

io::Json Journal::event_to_json(const Event& event) {
  io::Json doc = io::Json::object();
  doc.set("seq", event.seq);
  doc.set("ms", event.unix_ms);
  doc.set("event", event_name(event.type));
  if (!event.tenant.empty()) doc.set("tenant", event.tenant);
  if (!event.detail.empty()) doc.set("detail", event.detail);
  return doc;
}

}  // namespace mobsrv::obs
