/// \file metrics.hpp
/// The observability layer's metric primitives: counters, gauges and
/// fixed-bucket log-scale histograms, plus the named Registry that owns
/// them.
///
/// Design constraints (DESIGN.md §7 determinism, docs/OBSERVABILITY.md):
///   * recording is allocation-free — Counter/Gauge are single integers,
///     Histogram is a fixed std::array of buckets, so the hot loops
///     (Session::push, SessionMultiplexer rounds, serve::Service::pump)
///     can record without touching the allocator;
///   * everything here is OBSERVATIONAL — no timing value ever feeds an
///     algorithm decision, so results stay bit-identical whether telemetry
///     is on, off, or compiled out;
///   * no internal locking — every metric is owned by exactly one
///     single-threaded recording site (the multiplexer records after its
///     parallel rounds join; the service loop is single-threaded).
///
/// Histogram buckets are log2-with-linear-subdivision ("HDR-lite"): values
/// 0..7 get exact unit buckets, every later power-of-two octave is split
/// into 8 linear sub-buckets (relative quantile error <= 1/8), and values
/// at or above 2^48 land in one overflow bucket. percentile() is
/// nearest-rank over the bucket upper bounds, clamped to the exact observed
/// max — so p100 is always the true maximum and small-value distributions
/// are reported exactly. merge() is elementwise and therefore associative
/// and commutative (covered by tests/test_obs.cpp).
#pragma once

#include <array>
#include <bit>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "io/json.hpp"

namespace mobsrv::obs {

/// Monotonic wall-clock nanoseconds (steady_clock). Observational only.
[[nodiscard]] inline std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Compact percentile snapshot of a Histogram — what rides in MuxTotals,
/// stats/metrics frames and the NDJSON metrics snapshot.
struct HistogramSummary {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;  ///< sum of recorded values (same unit as them)
  std::uint64_t p50 = 0;
  std::uint64_t p90 = 0;
  std::uint64_t p99 = 0;
  std::uint64_t max = 0;
};

/// Fixed-bucket log-scale histogram over unsigned values (latency ns, step
/// counts, ...). record() is branch-light, allocation-free and never
/// throws; the whole object is a flat ~3 KB array, so copies are cheap
/// enough for snapshot-time merges.
class Histogram {
 public:
  /// Linear sub-buckets per power-of-two octave (2^3 = 8).
  static constexpr int kSubBits = 3;
  static constexpr std::uint64_t kSub = std::uint64_t{1} << kSubBits;
  /// Largest bucketed exponent: values < 2^(kMaxExp+1) are bucketed with
  /// <= 1/8 relative error, larger ones land in the overflow bucket
  /// (2^48 ns is ~78 hours — far past any sane latency).
  static constexpr int kMaxExp = 47;
  static constexpr std::size_t kBuckets =
      static_cast<std::size_t>(kSub) +
      static_cast<std::size_t>(kMaxExp - kSubBits + 1) * static_cast<std::size_t>(kSub) + 1;

  /// Bucket index of \p value: 0..7 exact, then (octave, sub-bucket),
  /// overflow last.
  [[nodiscard]] static std::size_t bucket_index(std::uint64_t value) noexcept {
    if (value < kSub) return static_cast<std::size_t>(value);
    const int exp = 63 - std::countl_zero(value);  // floor(log2(value)), >= kSubBits
    if (exp > kMaxExp) return kBuckets - 1;
    const std::uint64_t sub = (value >> (exp - kSubBits)) - kSub;
    return static_cast<std::size_t>(kSub) +
           static_cast<std::size_t>(exp - kSubBits) * static_cast<std::size_t>(kSub) +
           static_cast<std::size_t>(sub);
  }

  /// Inclusive upper bound of bucket \p index (UINT64_MAX for overflow):
  /// the largest value bucket_index maps there.
  [[nodiscard]] static std::uint64_t bucket_upper(std::size_t index) noexcept;

  void record(std::uint64_t value) noexcept {
    ++buckets_[bucket_index(value)];
    ++count_;
    sum_ += value;
    if (value > max_) max_ = value;
  }

  /// Elementwise merge (associative + commutative).
  void merge(const Histogram& other) noexcept;

  void reset() noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t sum() const noexcept { return sum_; }
  [[nodiscard]] std::uint64_t max() const noexcept { return max_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  [[nodiscard]] std::uint64_t bucket_count(std::size_t index) const {
    return buckets_.at(index);
  }

  /// Nearest-rank percentile (q in [0, 1]): the upper bound of the bucket
  /// holding the ceil(q * count)-th smallest value, clamped to the exact
  /// observed max. 0 on an empty histogram.
  [[nodiscard]] std::uint64_t percentile(double q) const noexcept;

  [[nodiscard]] HistogramSummary summary() const noexcept {
    return {count_, sum_, percentile(0.50), percentile(0.90), percentile(0.99), max_};
  }

  friend bool operator==(const Histogram&, const Histogram&) = default;

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t max_ = 0;
};

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept { value_ += n; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// A level that can go up and down (open tenants, queue depth, ...).
class Gauge {
 public:
  void set(std::int64_t value) noexcept { value_ = value; }
  void add(std::int64_t delta) noexcept { value_ += delta; }
  /// set(max(current, value)) — high-water-mark maintenance.
  void raise_to(std::int64_t value) noexcept {
    if (value > value_) value_ = value;
  }
  [[nodiscard]] std::int64_t value() const noexcept { return value_; }

 private:
  std::int64_t value_ = 0;
};

/// Named metric store. Registration returns a stable reference (entries
/// live behind unique_ptr and are never removed); re-registering a name
/// returns the existing metric and rejects a kind mismatch loudly. Names
/// are the stable public contract — docs/OBSERVABILITY.md catalogs every
/// one, and tools/check_metrics_docs.py cross-checks both directions.
class Registry {
 public:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Entry {
    std::string name;
    std::string unit;
    std::string help;
    Kind kind = Kind::kCounter;
    std::unique_ptr<Counter> counter;      ///< set iff kCounter
    std::unique_ptr<Gauge> gauge;          ///< set iff kGauge
    std::unique_ptr<Histogram> histogram;  ///< set iff kHistogram
  };

  Counter& counter(std::string name, std::string unit, std::string help);
  Gauge& gauge(std::string name, std::string unit, std::string help);
  Histogram& histogram(std::string name, std::string unit, std::string help);

  [[nodiscard]] const std::vector<std::unique_ptr<Entry>>& entries() const noexcept {
    return entries_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] const Entry* find(std::string_view name) const noexcept;

  /// One JSON object per metric, in registration order:
  /// {"name","type","unit","value"} for counters/gauges,
  /// {"name","type","unit","count","sum","p50","p90","p99","max"} for
  /// histograms.
  [[nodiscard]] io::Json::Array to_json() const;

 private:
  Entry& entry(std::string name, std::string unit, std::string help, Kind kind);

  std::vector<std::unique_ptr<Entry>> entries_;
};

[[nodiscard]] const char* kind_name(Registry::Kind kind) noexcept;

/// {"count","sum","p50","p90","p99","max"} — the shared wire shape for
/// histogram summaries (stats/metrics frames, NDJSON snapshot).
[[nodiscard]] io::Json summary_to_json(const HistogramSummary& summary);

/// The value members of one registry entry appended to \p doc (the shared
/// builder for the metrics frame and the NDJSON snapshot lines).
void append_metric_values(io::Json& doc, const Registry::Entry& entry);

}  // namespace mobsrv::obs
