/// \file journal.hpp
/// Bounded structured event journal for the serve layer.
///
/// The journal records the service's *rare* lifecycle events — tenant
/// open/close, checkpoint saves, busy bounces, tenant errors, restore and
/// drain — as timestamped structured entries in a fixed-capacity ring.
/// Memory is bounded by construction: once full, the oldest event is
/// evicted and counted in dropped() (surfaced as the
/// `obs.journal_dropped_total` metric), never silently lost. The hot data
/// path (req frames, outcome emission, mux rounds) deliberately does NOT
/// journal — per-step volume belongs in histograms, not an event log.
///
/// Timestamps are wall-clock milliseconds (system_clock) and sequence
/// numbers are process-local and monotonic; both are observational only
/// and never feed algorithm decisions (DESIGN.md §7). The journal rides
/// the `metrics` frame and the --metrics-out NDJSON snapshot as
/// {"kind":"event",...} lines — see docs/OBSERVABILITY.md.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "io/json.hpp"

namespace mobsrv::obs {

/// What happened. Wire names via event_name().
enum class EventType {
  kOpen,        ///< tenant admitted
  kClose,       ///< tenant closed (graceful)
  kCheckpoint,  ///< snapshot saved
  kBusy,        ///< req frame bounced by backpressure
  kError,       ///< tenant failed (malformed frame / step error)
  kRestore,     ///< service restored from a snapshot
  kDrain,       ///< graceful drain (eof / shutdown / signal)
  kThrottle,    ///< tenant entered a rate-limit throttle episode
  kCompact,     ///< snapshot segment chain compacted into a fresh base
  kRetry,       ///< persistence write failed; service is backing off to retry
  kDegraded,    ///< degraded-mode transition (entered after exhausted retries,
                ///< or recovered on the next successful write)
  kTimeout,     ///< tenant closed by the --idle-timeout deadline
};

[[nodiscard]] const char* event_name(EventType type) noexcept;

/// One journal entry.
struct Event {
  std::uint64_t seq = 0;      ///< process-local, monotonic, never reused
  std::uint64_t unix_ms = 0;  ///< wall-clock milliseconds since the epoch
  EventType type = EventType::kOpen;
  std::string tenant;  ///< empty for service-wide events
  std::string detail;  ///< free-form context (error message, path, reason)
};

/// Fixed-capacity ring of Events, oldest-first iteration.
class Journal {
 public:
  explicit Journal(std::size_t capacity = 1024);

  /// Appends an event (stamping seq + wall clock); evicts the oldest when
  /// full.
  void record(EventType type, std::string tenant = {}, std::string detail = {});

  /// Retained events, oldest first.
  [[nodiscard]] std::vector<Event> events() const;

  [[nodiscard]] std::size_t capacity() const noexcept { return ring_.size(); }
  /// Events recorded over the journal's lifetime (retained + dropped).
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  /// Events evicted by the bounded ring.
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    const std::uint64_t kept = std::min<std::uint64_t>(total_, ring_.size());
    return total_ - kept;
  }

  /// {"seq","ms","event","tenant"?,"detail"?} for one event.
  [[nodiscard]] static io::Json event_to_json(const Event& event);

 private:
  std::vector<Event> ring_;  ///< fixed size; slot = seq % capacity
  std::uint64_t total_ = 0;
};

}  // namespace mobsrv::obs
