#include "parallel/thread_pool.hpp"

#include <algorithm>

namespace mobsrv::par {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  MOBSRV_CHECK_MSG(task != nullptr, "null task");
  {
    std::lock_guard lock(mutex_);
    MOBSRV_CHECK_MSG(!stopping_, "submit() on a stopping pool");
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  all_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
  if (first_error_) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      work_available_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    try {
      task();
    } catch (...) {
      std::lock_guard lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) all_idle_.notify_all();
    }
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace mobsrv::par
