/// \file thread_pool.hpp
/// A fixed-size worker pool with exception propagation.
///
/// The experiment harness runs hundreds of independent simulation trials;
/// the pool executes them across hardware threads while `parallel_for`
/// guarantees that results are written to caller-owned slots, so no
/// synchronisation is needed beyond the final join. Determinism is preserved
/// because every trial seeds its own RNG from its index, never from shared
/// state (see stats/rng.hpp).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/contracts.hpp"

namespace mobsrv::par {

/// Fixed-size thread pool. Tasks are arbitrary void() callables; the first
/// exception thrown by any task in a wait_idle() epoch is captured and
/// rethrown to the caller of wait_idle(). Destruction joins all workers.
class ThreadPool {
 public:
  /// Creates \p threads workers; 0 means hardware_concurrency (at least 1).
  explicit ThreadPool(unsigned threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool();

  /// Number of worker threads.
  [[nodiscard]] unsigned size() const noexcept { return static_cast<unsigned>(workers_.size()); }

  /// Enqueues a task. Thread-safe.
  void submit(std::function<void()> task);

  /// Blocks until the queue is drained and all workers are idle, then
  /// rethrows the first captured task exception (if any).
  void wait_idle();

  /// The process-wide default pool (lazily constructed with
  /// hardware_concurrency workers). Intended for the experiment harness;
  /// tests construct their own pools.
  [[nodiscard]] static ThreadPool& global();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::exception_ptr first_error_;
  std::size_t active_ = 0;
  bool stopping_ = false;
};

}  // namespace mobsrv::par
