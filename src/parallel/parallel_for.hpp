/// \file parallel_for.hpp
/// Data-parallel loops over index ranges on a ThreadPool.
///
/// Work is split into contiguous chunks of at least \p grain iterations
/// (static chunking keeps per-task overhead negligible for simulation
/// trials, which dominate runtime anyway). The body receives the global
/// index, so deterministic per-index seeding works regardless of how the
/// range is split.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "parallel/thread_pool.hpp"

namespace mobsrv::par {

/// Invokes body(i) for i in [begin, end) across the pool. Blocks until all
/// iterations completed; rethrows the first exception a body threw.
template <typename Body>
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end, std::size_t grain,
                  Body&& body) {
  MOBSRV_CHECK(begin <= end);
  if (begin == end) return;
  if (grain == 0) grain = 1;
  const std::size_t total = end - begin;
  // No point paying queue overhead for tiny ranges or a single worker.
  if (total <= grain || pool.size() == 1) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  const std::size_t chunks = (total + grain - 1) / grain;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * grain;
    const std::size_t hi = lo + grain < end ? lo + grain : end;
    pool.submit([lo, hi, &body] {
      for (std::size_t i = lo; i < hi; ++i) body(i);
    });
  }
  pool.wait_idle();
}

/// Convenience overload on the global pool.
template <typename Body>
void parallel_for(std::size_t begin, std::size_t end, std::size_t grain, Body&& body) {
  parallel_for(ThreadPool::global(), begin, end, grain, std::forward<Body>(body));
}

/// Maps fn over [0, n) into a vector. fn must be callable as fn(i) -> T and
/// safe to run concurrently for distinct indices.
template <typename T, typename Fn>
[[nodiscard]] std::vector<T> parallel_map(ThreadPool& pool, std::size_t n, std::size_t grain,
                                          Fn&& fn) {
  std::vector<T> out(n);
  parallel_for(pool, 0, n, grain, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace mobsrv::par
