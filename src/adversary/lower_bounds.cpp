#include "adversary/lower_bounds.hpp"

#include <algorithm>
#include <cmath>

#include "sim/cost.hpp"

namespace mobsrv::adv {

namespace {

using geo::Point;

/// ±1 with a fair coin — the single random choice each construction makes
/// (independently per cycle), exactly as in the proofs.
double coin_direction(stats::Rng& rng) { return rng.coin() ? 1.0 : -1.0; }

AdversarialInstance finish(sim::Instance instance, sim::TrajectoryStore adversary) {
  AdversarialInstance out{std::move(instance), std::move(adversary), 0.0};
  MOBSRV_CHECK_MSG(sim::first_speed_violation(out.instance, out.adversary_positions) == -1,
                   "adversary trajectory violates its own speed limit");
  out.adversary_cost = sim::trajectory_cost(out.instance, out.adversary_positions);
  return out;
}

}  // namespace

AdversarialInstance make_theorem1(const Theorem1Params& params, stats::Rng& rng) {
  MOBSRV_CHECK(params.horizon >= 4 && params.requests_per_step >= 1);
  const std::size_t T = params.horizon;
  std::size_t x = params.x != 0
                      ? params.x
                      : static_cast<std::size_t>(std::llround(std::sqrt(static_cast<double>(T))));
  x = std::clamp<std::size_t>(x, 1, T - 1);

  const double m = params.max_step;
  const Point start = Point::zero(params.dim);
  const Point step_vec = Point::unit(params.dim, 0) * (coin_direction(rng) * m);

  sim::TrajectoryStore adversary(params.dim);
  adversary.reserve(T + 1);
  adversary.push_back(start);
  std::vector<sim::RequestBatch> steps(T);
  for (std::size_t t = 0; t < T; ++t) {
    adversary.push_back(adversary.back() + step_vec);
    const Point request_at = t < x ? start : adversary.back();
    steps[t].requests.assign(params.requests_per_step, request_at);
  }

  sim::ModelParams mp;
  mp.move_cost_weight = params.move_cost_weight;
  mp.max_step = m;
  mp.order = sim::ServiceOrder::kMoveThenServe;
  return finish(sim::Instance(start, mp, std::move(steps)), std::move(adversary));
}

AdversarialInstance make_theorem2(const Theorem2Params& params, stats::Rng& rng) {
  MOBSRV_CHECK(params.horizon >= 4);
  MOBSRV_CHECK(params.delta > 0.0 && params.delta <= 1.0);
  MOBSRV_CHECK(params.r_min >= 1 && params.r_max >= params.r_min);

  const std::size_t T = params.horizon;
  const double m = params.max_step;
  const double D = params.move_cost_weight;
  const double delta = params.delta;

  // Smallest x the proof allows: x >= 2/δ (for the chase-cost estimate) and
  // x >= D(1+1/δ)/(2·Rmin) (so the adversary's movement cost is dominated
  // by its phase-A service cost).
  std::size_t x = params.x;
  if (x == 0) {
    const double by_delta = 2.0 / delta;
    const double by_cost = D * (1.0 + 1.0 / delta) / (2.0 * static_cast<double>(params.r_min));
    x = static_cast<std::size_t>(std::ceil(std::max({by_delta, by_cost, 4.0})));
  }
  const auto chase = static_cast<std::size_t>(std::ceil(static_cast<double>(x) / delta));

  const Point start = Point::zero(params.dim);
  sim::TrajectoryStore adversary(params.dim);
  adversary.reserve(T + 1);
  adversary.push_back(start);
  std::vector<sim::RequestBatch> steps(T);

  std::size_t t = 0;
  while (t < T) {
    const Point anchor = adversary.back();
    const Point step_vec = Point::unit(params.dim, 0) * (coin_direction(rng) * m);
    // Phase A: Rmin requests pinned to the cycle anchor while the adversary
    // walks away.
    for (std::size_t i = 0; i < x && t < T; ++i, ++t) {
      adversary.push_back(adversary.back() + step_vec);
      steps[t].requests.assign(params.r_min, anchor);
    }
    // Phase B: Rmax requests riding on the (post-move) adversary for the
    // ⌈x/δ⌉ rounds a full-speed augmented chaser needs to catch up.
    for (std::size_t i = 0; i < chase && t < T; ++i, ++t) {
      adversary.push_back(adversary.back() + step_vec);
      steps[t].requests.assign(params.r_max, adversary.back());
    }
  }

  sim::ModelParams mp;
  mp.move_cost_weight = D;
  mp.max_step = m;
  mp.order = sim::ServiceOrder::kMoveThenServe;
  return finish(sim::Instance(start, mp, std::move(steps)), std::move(adversary));
}

AdversarialInstance make_theorem3(const Theorem3Params& params, stats::Rng& rng) {
  MOBSRV_CHECK(params.horizon >= 2 && params.requests_per_step >= 1);
  const std::size_t T = params.horizon - params.horizon % 2;  // whole cycles
  const double m = params.max_step;

  const Point start = Point::zero(params.dim);
  sim::TrajectoryStore adversary(params.dim);
  adversary.reserve(T + 1);
  adversary.push_back(start);
  std::vector<sim::RequestBatch> steps(T);

  for (std::size_t t = 0; t < T; t += 2) {
    const Point here = adversary.back();
    const Point hop = Point::unit(params.dim, 0) * (coin_direction(rng) * m);
    // First step of the cycle: requests on the common position; the
    // adversary serves them in place (Answer-First) and then hops away.
    steps[t].requests.assign(params.requests_per_step, here);
    adversary.push_back(here + hop);
    // Second step: requests on the adversary's new position; it serves them
    // free and stays.
    steps[t + 1].requests.assign(params.requests_per_step, adversary.back());
    adversary.push_back(adversary.back());
  }

  sim::ModelParams mp;
  mp.move_cost_weight = params.move_cost_weight;
  mp.max_step = m;
  mp.order = sim::ServiceOrder::kServeThenMove;
  return finish(sim::Instance(start, mp, std::move(steps)), std::move(adversary));
}

}  // namespace mobsrv::adv
