#include "adversary/workloads.hpp"

#include <cmath>

namespace mobsrv::adv {

using geo::Point;

Point gaussian_around(const Point& center, double stddev, stats::Rng& rng) {
  Point p = center;
  for (int i = 0; i < p.dim(); ++i) p[i] += rng.normal(0.0, stddev);
  return p;
}

Point random_unit_vector(int dim, stats::Rng& rng) {
  MOBSRV_CHECK(dim >= 1 && dim <= Point::kMaxDim);
  for (;;) {
    Point v(dim);
    for (int i = 0; i < dim; ++i) v[i] = rng.normal();
    const double n = v.norm();
    if (n > 1e-12) return v / n;
  }
}

namespace {

sim::ModelParams base_params(double d_weight, double m) {
  sim::ModelParams p;
  p.move_cost_weight = d_weight;
  p.max_step = m;
  p.order = sim::ServiceOrder::kMoveThenServe;
  return p;
}

}  // namespace

sim::Instance make_drifting_hotspot(const DriftingHotspotParams& params, stats::Rng& rng) {
  MOBSRV_CHECK(params.r_min >= 1 && params.r_max >= params.r_min);
  const Point start = Point::zero(params.dim);
  Point hotspot = start;
  std::vector<sim::RequestBatch> steps(params.horizon);
  for (auto& step : steps) {
    hotspot += random_unit_vector(params.dim, rng) * (params.drift_speed * rng.uniform());
    const auto r = static_cast<std::size_t>(
        rng.uniform_int(static_cast<std::int64_t>(params.r_min),
                        static_cast<std::int64_t>(params.r_max)));
    step.requests.reserve(r);
    for (std::size_t i = 0; i < r; ++i)
      step.requests.push_back(gaussian_around(hotspot, params.spread, rng));
  }
  return sim::Instance(start, base_params(params.move_cost_weight, params.max_step),
                       std::move(steps));
}

sim::Instance make_commute(const CommuteParams& params, stats::Rng& rng) {
  MOBSRV_CHECK(params.period >= 1 && params.requests_per_step >= 1);
  const Point start = Point::zero(params.dim);
  const Point offset = Point::unit(params.dim, 0) * (params.site_distance / 2.0);
  const Point site_a = start - offset;
  const Point site_b = start + offset;
  std::vector<sim::RequestBatch> steps(params.horizon);
  for (std::size_t t = 0; t < params.horizon; ++t) {
    const bool at_a = (t / params.period) % 2 == 0;
    const Point& site = at_a ? site_a : site_b;
    steps[t].requests.reserve(params.requests_per_step);
    for (std::size_t i = 0; i < params.requests_per_step; ++i)
      steps[t].requests.push_back(gaussian_around(site, params.spread, rng));
  }
  return sim::Instance(start, base_params(params.move_cost_weight, params.max_step),
                       std::move(steps));
}

sim::Instance make_bursts(const BurstParams& params, stats::Rng& rng) {
  MOBSRV_CHECK(params.r_min >= 1 && params.r_max >= params.r_min);
  MOBSRV_CHECK(params.burst_probability >= 0.0 && params.burst_probability <= 1.0);
  const Point start = Point::zero(params.dim);
  Point hotspot = start;
  std::vector<sim::RequestBatch> steps(params.horizon);
  for (auto& step : steps) {
    hotspot += random_unit_vector(params.dim, rng) * (params.drift_speed * rng.uniform());
    const std::size_t r = rng.bernoulli(params.burst_probability) ? params.r_max : params.r_min;
    step.requests.reserve(r);
    for (std::size_t i = 0; i < r; ++i)
      step.requests.push_back(gaussian_around(hotspot, params.spread, rng));
  }
  return sim::Instance(start, base_params(params.move_cost_weight, params.max_step),
                       std::move(steps));
}

sim::Instance make_uniform_noise(const UniformNoiseParams& params, stats::Rng& rng) {
  MOBSRV_CHECK(params.half_width > 0.0 && params.requests_per_step >= 1);
  const Point start = Point::zero(params.dim);
  std::vector<sim::RequestBatch> steps(params.horizon);
  for (auto& step : steps) {
    step.requests.reserve(params.requests_per_step);
    for (std::size_t i = 0; i < params.requests_per_step; ++i) {
      Point p(params.dim);
      for (int d = 0; d < params.dim; ++d)
        p[d] = rng.uniform(-params.half_width, params.half_width);
      step.requests.push_back(p);
    }
  }
  return sim::Instance(start, base_params(params.move_cost_weight, params.max_step),
                       std::move(steps));
}

}  // namespace mobsrv::adv
