/// \file lower_bounds.hpp
/// The randomized lower-bound constructions of Theorems 1–3, realised as
/// oblivious instance generators.
///
/// Yao's principle turns each proof into an input distribution; sampling it
/// (seeded) and averaging the measured ratio over seeds estimates the same
/// expectation the theorems bound from below. Every generator also returns
/// the adversary's own feasible trajectory: its cost upper-bounds OPT, so
///     measured ratio  =  C_online / C_adversary  <=  C_online / OPT,
/// i.e. the measurement is a *lower bound* on the competitive ratio — the
/// correct direction for reproducing lower-bound theorems.
#pragma once

#include "sim/model.hpp"
#include "sim/trajectory_store.hpp"
#include "stats/rng.hpp"

namespace mobsrv::adv {

/// An instance bundled with the adversary's own solution. The trajectory
/// lives in flat SoA storage (sim::TrajectoryStore) like every other
/// solution path in the library; `adversary_positions[t]` materialises a
/// Point for AoS consumers.
struct AdversarialInstance {
  sim::Instance instance;
  sim::TrajectoryStore adversary_positions;  ///< P_0..P_T, feasible at speed m
  double adversary_cost = 0.0;               ///< cost of that trajectory (>= OPT)
};

/// Theorem 1 — no augmentation, ratio Ω(√T/D).
/// Phase 1 (x = round(√T) steps): requests on the start; the adversary walks
/// away at full speed m in a coin-flipped direction. Phase 2 (T−x steps):
/// requests ride on the adversary, which keeps walking. The online server
/// trails by ~x·m forever.
struct Theorem1Params {
  std::size_t horizon = 1024;      ///< T
  double move_cost_weight = 1.0;   ///< D
  double max_step = 1.0;           ///< m
  int dim = 1;
  std::size_t requests_per_step = 1;
  /// Separation-phase length; 0 = the paper's choice round(√T).
  std::size_t x = 0;
};
[[nodiscard]] AdversarialInstance make_theorem1(const Theorem1Params& params, stats::Rng& rng);

/// Theorem 2 — with (1+δ)m augmentation, ratio Ω((1/δ)·Rmax/Rmin).
/// Cycles of: Phase A (x steps, Rmin requests on the cycle anchor, adversary
/// walks away), Phase B (⌈x/δ⌉ steps, Rmax requests riding on the adversary)
/// — long enough that even a full-speed augmented chaser pays Θ(Rmax·m·x²/δ)
/// before catching up. Direction re-flipped each cycle.
struct Theorem2Params {
  std::size_t horizon = 2048;     ///< T
  double move_cost_weight = 1.0;  ///< D
  double max_step = 1.0;          ///< m
  int dim = 1;
  double delta = 0.5;             ///< δ of the online algorithm under test
  std::size_t r_min = 1;
  std::size_t r_max = 1;
  /// Phase-A length; 0 = smallest x the proof allows (max of 2/δ and
  /// D(1+1/δ)/(2·Rmin), at least 4).
  std::size_t x = 0;
};
[[nodiscard]] AdversarialInstance make_theorem2(const Theorem2Params& params, stats::Rng& rng);

/// Theorem 3 — Answer-First variant, ratio Ω(r/D) even with augmentation.
/// Two-step cycles: r requests on the common position, the adversary then
/// hops m in a coin-flipped direction; r requests on its new position. An
/// Answer-First online server must serve the second batch before it may
/// move, paying r·m with probability 1/2 per cycle, vs. the adversary's Dm.
struct Theorem3Params {
  std::size_t horizon = 1024;     ///< T (rounded down to even)
  double move_cost_weight = 1.0;  ///< D
  double max_step = 1.0;          ///< m
  int dim = 1;
  std::size_t requests_per_step = 8;  ///< r
};
[[nodiscard]] AdversarialInstance make_theorem3(const Theorem3Params& params, stats::Rng& rng);

}  // namespace mobsrv::adv
