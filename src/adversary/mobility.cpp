#include "adversary/mobility.hpp"

#include "adversary/workloads.hpp"

namespace mobsrv::adv {

using geo::Point;

sim::AgentPath make_random_waypoint(const RandomWaypointParams& params, const Point& start,
                                    stats::Rng& rng) {
  MOBSRV_CHECK(params.dim == start.dim());
  MOBSRV_CHECK(params.speed > 0.0 && params.half_width > 0.0);
  MOBSRV_CHECK(params.min_speed_fraction > 0.0 && params.min_speed_fraction <= 1.0);

  sim::AgentPath path;
  path.positions.reserve(params.horizon);
  Point pos = start;
  Point waypoint = pos;
  double leg_speed = params.speed;
  std::size_t pause_left = 0;

  for (std::size_t t = 0; t < params.horizon; ++t) {
    if (pause_left > 0) {
      --pause_left;
    } else {
      if (geo::approx_equal(pos, waypoint, 1e-9)) {
        // Arrived: draw the next leg.
        for (int d = 0; d < params.dim; ++d)
          waypoint = [&] {
            Point w(params.dim);
            for (int k = 0; k < params.dim; ++k)
              w[k] = rng.uniform(-params.half_width, params.half_width);
            return w;
          }();
        leg_speed = params.speed * rng.uniform(params.min_speed_fraction, 1.0);
        pause_left = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(params.max_pause)));
      }
      if (pause_left == 0) pos = geo::move_toward(pos, waypoint, leg_speed);
    }
    path.positions.push_back(pos);
  }
  return path;
}

sim::AgentPath make_gauss_markov(const GaussMarkovParams& params, const Point& start,
                                 stats::Rng& rng) {
  MOBSRV_CHECK(params.dim == start.dim());
  MOBSRV_CHECK(params.alpha >= 0.0 && params.alpha <= 1.0);
  MOBSRV_CHECK(params.speed > 0.0);

  sim::AgentPath path;
  path.positions.reserve(params.horizon);
  Point pos = start;
  Point velocity =
      random_unit_vector(params.dim, rng) * (params.mean_speed_fraction * params.speed);
  const Point mean_velocity = velocity;
  const double noise = params.noise_fraction * params.speed;
  const double a = params.alpha;
  const double innovation = std::sqrt(std::max(0.0, 1.0 - a * a));

  for (std::size_t t = 0; t < params.horizon; ++t) {
    Point eps(params.dim);
    for (int d = 0; d < params.dim; ++d) eps[d] = rng.normal(0.0, noise);
    velocity = velocity * a + mean_velocity * (1.0 - a) + eps * innovation;
    const double sp = velocity.norm();
    if (sp > params.speed) velocity *= params.speed / sp;
    pos += velocity;
    path.positions.push_back(pos);
  }
  return path;
}

sim::AgentPath make_zigzag(const ZigZagParams& params, const Point& start) {
  MOBSRV_CHECK(params.dim == start.dim());
  MOBSRV_CHECK(params.half_period >= 1 && params.speed > 0.0);
  sim::AgentPath path;
  path.positions.reserve(params.horizon);
  Point pos = start;
  const Point step = Point::unit(params.dim, 0) * params.speed;
  for (std::size_t t = 0; t < params.horizon; ++t) {
    const bool forward = (t / params.half_period) % 2 == 0;
    pos += forward ? step : -step;
    path.positions.push_back(pos);
  }
  return path;
}

}  // namespace mobsrv::adv
