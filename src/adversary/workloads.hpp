/// \file workloads.hpp
/// Realistic request-sequence generators for upper-bound and shootout
/// experiments.
///
/// These model the edge-computing scenarios the paper's introduction
/// motivates: demand hotspots that drift as users move, day/night commutes
/// between sites, and bursty request volumes. All generators are
/// deterministic given their Rng.
#pragma once

#include "sim/model.hpp"
#include "stats/rng.hpp"

namespace mobsrv::adv {

/// A demand hotspot performing a bounded random walk; requests are Gaussian
/// around it. The canonical "server should follow the users" workload.
struct DriftingHotspotParams {
  std::size_t horizon = 1024;
  int dim = 2;
  double move_cost_weight = 4.0;  ///< D
  double max_step = 1.0;          ///< m
  double drift_speed = 0.5;       ///< hotspot speed per round (<= m keeps MtC in its sweet spot)
  double spread = 2.0;            ///< request std-dev around the hotspot
  std::size_t r_min = 1;
  std::size_t r_max = 4;          ///< batch size uniform in [r_min, r_max]
};
[[nodiscard]] sim::Instance make_drifting_hotspot(const DriftingHotspotParams& params,
                                                  stats::Rng& rng);

/// Demand alternating between two sites with a fixed period (day/night).
/// The crossover workload: when the sites are far apart relative to p·m, a
/// lazy mid-point server beats any chaser.
struct CommuteParams {
  std::size_t horizon = 1024;
  int dim = 2;
  double move_cost_weight = 4.0;
  double max_step = 1.0;
  double site_distance = 20.0;  ///< distance between the two sites
  std::size_t period = 64;      ///< rounds spent at each site
  double spread = 1.0;
  std::size_t requests_per_step = 2;
};
[[nodiscard]] sim::Instance make_commute(const CommuteParams& params, stats::Rng& rng);

/// Bursty volumes on a slowly drifting hotspot: Rmin background requests,
/// with probability burst_probability a burst of Rmax. Exercises the
/// Rmax/Rmin dependence of Theorems 2/4.
struct BurstParams {
  std::size_t horizon = 1024;
  int dim = 2;
  double move_cost_weight = 4.0;
  double max_step = 1.0;
  double drift_speed = 0.25;
  double spread = 1.0;
  std::size_t r_min = 1;
  std::size_t r_max = 16;
  double burst_probability = 0.1;
};
[[nodiscard]] sim::Instance make_bursts(const BurstParams& params, stats::Rng& rng);

/// Uniform noise in a fixed box around the start — no structure to exploit;
/// sanity workload where Lazy at the centre is near-optimal.
struct UniformNoiseParams {
  std::size_t horizon = 1024;
  int dim = 2;
  double move_cost_weight = 4.0;
  double max_step = 1.0;
  double half_width = 8.0;  ///< box is [−half_width, half_width]^dim
  std::size_t requests_per_step = 2;
};
[[nodiscard]] sim::Instance make_uniform_noise(const UniformNoiseParams& params, stats::Rng& rng);

/// Draws an isotropic Gaussian point around \p center.
[[nodiscard]] sim::Point gaussian_around(const sim::Point& center, double stddev, stats::Rng& rng);

/// Draws a uniformly random unit vector (any dimension >= 1).
[[nodiscard]] sim::Point random_unit_vector(int dim, stats::Rng& rng);

}  // namespace mobsrv::adv
