#include "adversary/moving_client_lb.hpp"

#include <algorithm>
#include <cmath>

#include "sim/cost.hpp"

namespace mobsrv::adv {

MovingClientAdversarial make_theorem8(const Theorem8Params& params, stats::Rng& rng) {
  MOBSRV_CHECK(params.horizon >= 16);
  MOBSRV_CHECK(params.epsilon > 0.0);
  MOBSRV_CHECK(params.server_speed > 0.0);

  const std::size_t T = params.horizon;
  const double ms = params.server_speed;
  const double ma = (1.0 + params.epsilon) * ms;

  std::size_t x = params.x != 0
                      ? params.x
                      : static_cast<std::size_t>(
                            std::llround(std::sqrt(static_cast<double>(T) * ms / ma)));
  x = std::max<std::size_t>(x, 1);
  // Phase-1 length: the adversary walks L rounds so that sprinting x rounds
  // at m_a lets the agent just cover the distance L·m_s.
  auto L = static_cast<std::size_t>(std::ceil(static_cast<double>(x) * ma / ms));
  L = std::min(L, T);
  const auto sprint_rounds =
      static_cast<std::size_t>(std::ceil(static_cast<double>(L) * ms / ma));

  const geo::Point start = geo::Point::zero(params.dim);
  const double sigma = rng.coin() ? 1.0 : -1.0;
  const geo::Point adv_step = geo::Point::unit(params.dim, 0) * (sigma * ms);
  const geo::Point phase1_end = start + adv_step * static_cast<double>(L);

  sim::TrajectoryStore adversary(params.dim);
  adversary.reserve(T + 1);
  adversary.push_back(start);
  sim::AgentPath agent;
  agent.positions.reserve(T);
  geo::Point agent_pos = start;

  for (std::size_t t = 1; t <= T; ++t) {
    adversary.push_back(adversary.back() + adv_step);
    if (t <= L) {
      // Agent idles, then sprints to the adversary's phase-1 endpoint.
      if (t > L - std::min(sprint_rounds, L))
        agent_pos = geo::move_toward(agent_pos, phase1_end, ma);
    } else {
      // Phase 2: march together at m_s.
      agent_pos += adv_step;
    }
    agent.positions.push_back(agent_pos);
  }

  MovingClientAdversarial out;
  out.mc.start = start;
  out.mc.server_speed = ms;
  out.mc.agent_speed = ma;
  out.mc.move_cost_weight = params.move_cost_weight;
  out.mc.agents.push_back(std::move(agent));
  out.mc.validate();
  out.adversary_positions = std::move(adversary);

  const sim::Instance as_instance = sim::to_instance(out.mc);
  MOBSRV_CHECK_MSG(sim::first_speed_violation(as_instance, out.adversary_positions) == -1,
                   "adversary server trajectory violates m_s");
  out.adversary_cost = sim::trajectory_cost(as_instance, out.adversary_positions);
  return out;
}

}  // namespace mobsrv::adv
