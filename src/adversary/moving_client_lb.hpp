/// \file moving_client_lb.hpp
/// Theorem 8's lower-bound construction for the Moving Client variant.
///
/// With agent speed m_a = (1+ε)·m_s and no augmentation, no online algorithm
/// beats Ω(√T · ε/(1+ε)). The construction: the adversary's server walks
/// away at m_s in a coin-flipped direction for L ≈ x·m_a/m_s rounds while
/// the agent idles at the start, sprinting (at m_a) to the adversary only in
/// the last rounds of the phase; afterwards agent and adversary march on
/// together at m_s. An online server that guessed the direction wrong is
/// ~x·ε·m_s behind and, being slower than the agent, can never catch up.
#pragma once

#include "sim/moving_client.hpp"
#include "sim/trajectory_store.hpp"
#include "stats/rng.hpp"

namespace mobsrv::adv {

/// A Moving Client instance bundled with the adversary's server trajectory
/// (flat SoA storage, like every solution path in the library).
struct MovingClientAdversarial {
  sim::MovingClientInstance mc;
  sim::TrajectoryStore adversary_positions;  ///< P_0..P_T at speed m_s
  double adversary_cost = 0.0;               ///< >= OPT of the instance
};

struct Theorem8Params {
  std::size_t horizon = 4096;  ///< T
  double server_speed = 1.0;   ///< m_s
  double epsilon = 0.5;        ///< agent speed m_a = (1+ε)·m_s
  double move_cost_weight = 1.0;  ///< D
  int dim = 1;
  /// Separation parameter; 0 = the paper's choice √(T·m_s/m_a).
  std::size_t x = 0;
};

[[nodiscard]] MovingClientAdversarial make_theorem8(const Theorem8Params& params, stats::Rng& rng);

}  // namespace mobsrv::adv
