/// \file mobility.hpp
/// Agent mobility models for the Moving Client variant (Section 5).
///
/// The paper's motivating example is a disaster-response ad-hoc network
/// whose helpers walk around; these are the standard mobility models from
/// that literature. Every generated path respects the agent speed limit by
/// construction (and MovingClientInstance::validate re-checks).
#pragma once

#include "sim/moving_client.hpp"
#include "stats/rng.hpp"

namespace mobsrv::adv {

/// Random Waypoint: pick a uniform waypoint in a box, walk toward it at a
/// uniform fraction of full speed, pause, repeat.
struct RandomWaypointParams {
  std::size_t horizon = 1024;
  int dim = 2;
  double speed = 1.0;        ///< m_a
  double half_width = 20.0;  ///< waypoints drawn from [−w, w]^dim
  std::size_t max_pause = 8; ///< pause duration uniform in [0, max_pause]
  double min_speed_fraction = 0.5;
};
[[nodiscard]] sim::AgentPath make_random_waypoint(const RandomWaypointParams& params,
                                                  const sim::Point& start, stats::Rng& rng);

/// Gauss–Markov mobility: velocity is an AR(1) process with memory alpha,
/// renormalised to the speed limit when it exceeds it.
struct GaussMarkovParams {
  std::size_t horizon = 1024;
  int dim = 2;
  double speed = 1.0;        ///< m_a
  double alpha = 0.85;       ///< velocity memory in [0,1]
  double mean_speed_fraction = 0.5;
  double noise_fraction = 0.4;
};
[[nodiscard]] sim::AgentPath make_gauss_markov(const GaussMarkovParams& params,
                                               const sim::Point& start, stats::Rng& rng);

/// Deterministic zig-zag along the first axis with the given half-period —
/// an adversarial stress path that maximises direction reversals.
struct ZigZagParams {
  std::size_t horizon = 1024;
  int dim = 1;
  double speed = 1.0;
  std::size_t half_period = 16;
};
[[nodiscard]] sim::AgentPath make_zigzag(const ZigZagParams& params, const sim::Point& start);

}  // namespace mobsrv::adv
