#include "trace/trace.hpp"

#include "algorithms/registry.hpp"

namespace mobsrv::trace {

RecordedRun record_run(const sim::Instance& instance, const std::string& algorithm,
                       std::uint64_t algo_seed, double speed_factor,
                       sim::SpeedLimitPolicy policy) {
  const sim::AlgorithmPtr algo = alg::make_algorithm(algorithm, algo_seed);
  sim::RunOptions options;
  options.speed_factor = speed_factor;
  options.policy = policy;
  options.record_trace = true;
  const sim::RunResult result = sim::run(instance, *algo, options);
  return to_recorded_run(algorithm, algo_seed, speed_factor, policy, result);
}

RecordedRun to_recorded_run(std::string algorithm, std::uint64_t algo_seed, double speed_factor,
                            sim::SpeedLimitPolicy policy, const sim::RunResult& result) {
  RecordedRun run;
  run.algorithm = std::move(algorithm);
  run.algo_seed = algo_seed;
  run.speed_factor = speed_factor;
  run.policy = policy;
  run.total_cost = result.total_cost;
  run.move_cost = result.move_cost;
  run.service_cost = result.service_cost;
  run.positions = result.positions;
  run.step_costs.reserve(result.trace.size());
  for (const sim::TraceStep& step : result.trace) run.step_costs.push_back(step.cost);
  return run;
}

namespace {

bool identical_points(const std::vector<sim::Point>& a, const std::vector<sim::Point>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i] != b[i]) return false;  // Point::operator== compares doubles exactly
  return true;
}

}  // namespace

bool identical(const sim::Instance& a, const sim::Instance& b) {
  if (a.dim() != b.dim() || a.horizon() != b.horizon()) return false;
  if (a.start() != b.start()) return false;
  if (a.params().move_cost_weight != b.params().move_cost_weight) return false;
  if (a.params().max_step != b.params().max_step) return false;
  if (a.params().order != b.params().order) return false;
  for (std::size_t t = 0; t < a.horizon(); ++t) {
    const sim::BatchView x = a.step(t), y = b.step(t);
    if (x.size() != y.size()) return false;
    for (std::size_t i = 0; i < x.size(); ++i)
      for (int k = 0; k < a.dim(); ++k)
        if (x.coord(i, k) != y.coord(i, k)) return false;  // exact double compare
  }
  return true;
}

bool identical(const RecordedRun& a, const RecordedRun& b) {
  if (a.algorithm != b.algorithm || a.algo_seed != b.algo_seed) return false;
  if (a.speed_factor != b.speed_factor || a.policy != b.policy) return false;
  if (a.total_cost != b.total_cost || a.move_cost != b.move_cost ||
      a.service_cost != b.service_cost)
    return false;
  if (!identical_points(a.positions, b.positions)) return false;
  if (a.step_costs.size() != b.step_costs.size()) return false;
  for (std::size_t i = 0; i < a.step_costs.size(); ++i)
    if (a.step_costs[i].move != b.step_costs[i].move ||
        a.step_costs[i].service != b.step_costs[i].service)
      return false;
  return true;
}

bool identical(const TraceFile& a, const TraceFile& b) {
  if (a.meta.name != b.meta.name || a.meta.source != b.meta.source ||
      a.meta.seed != b.meta.seed)
    return false;
  if (!identical(a.instance, b.instance)) return false;
  if (a.moving_client.has_value() != b.moving_client.has_value()) return false;
  if (a.moving_client) {
    const sim::MovingClientInstance& x = *a.moving_client;
    const sim::MovingClientInstance& y = *b.moving_client;
    if (x.start != y.start || x.server_speed != y.server_speed ||
        x.agent_speed != y.agent_speed || x.move_cost_weight != y.move_cost_weight)
      return false;
    if (x.agents.size() != y.agents.size()) return false;
    for (std::size_t i = 0; i < x.agents.size(); ++i)
      if (!identical_points(x.agents[i].positions, y.agents[i].positions)) return false;
  }
  if (a.adversary.has_value() != b.adversary.has_value()) return false;
  if (a.adversary) {
    if (a.adversary->cost != b.adversary->cost) return false;
    // TrajectoryStore::operator== compares coordinates with the same IEEE
    // semantics identical_points uses for Point vectors.
    if (!(a.adversary->positions == b.adversary->positions)) return false;
  }
  if (a.runs.size() != b.runs.size()) return false;
  for (std::size_t i = 0; i < a.runs.size(); ++i)
    if (!identical(a.runs[i], b.runs[i])) return false;
  return true;
}

}  // namespace mobsrv::trace
