#include "trace/replay.hpp"

#include "algorithms/registry.hpp"
#include "sim/session.hpp"

namespace mobsrv::trace {

namespace {

/// Streams the stored workload through an incremental sim::Session — the
/// replay path exercises the same engine object a live deployment would.
sim::RunResult run_session(const sim::Instance& instance, sim::OnlineAlgorithm& algorithm,
                           double speed_factor, sim::SpeedLimitPolicy policy) {
  sim::RunOptions options;
  options.speed_factor = speed_factor;
  options.policy = policy;
  sim::Session session(instance.start(), instance.params(), algorithm, options);
  session.reserve(instance.horizon());
  for (std::size_t t = 0; t < instance.horizon(); ++t) session.push(instance.step(t));
  return std::move(session).result();
}

}  // namespace

ReplayOutcome replay_run(const sim::Instance& instance, const RecordedRun& run) {
  const sim::AlgorithmPtr algo = alg::make_algorithm(run.algorithm, run.algo_seed);
  const sim::RunResult result = run_session(instance, *algo, run.speed_factor, run.policy);

  ReplayOutcome outcome;
  outcome.algorithm = run.algorithm;
  outcome.algo_seed = run.algo_seed;
  outcome.recorded_total = run.total_cost;
  outcome.replayed_total = result.total_cost;
  outcome.recorded_move = run.move_cost;
  outcome.replayed_move = result.move_cost;
  outcome.recorded_service = run.service_cost;
  outcome.replayed_service = result.service_cost;
  outcome.match = result.total_cost == run.total_cost && result.move_cost == run.move_cost &&
                  result.service_cost == run.service_cost;
  return outcome;
}

ReplayReport replay(const TraceFile& file) {
  ReplayReport report;
  report.outcomes.reserve(file.runs.size());
  for (const RecordedRun& run : file.runs) report.outcomes.push_back(replay_run(file.instance, run));
  return report;
}

sim::RunResult run_on_trace(const TraceFile& file, const std::string& algorithm,
                            std::uint64_t algo_seed, double speed_factor,
                            sim::SpeedLimitPolicy policy) {
  const sim::AlgorithmPtr algo = alg::make_algorithm(algorithm, algo_seed);
  return run_session(file.instance, *algo, speed_factor, policy);
}

}  // namespace mobsrv::trace
