/// \file recorder.hpp
/// Captures engine runs into trace files on disk.
///
/// A Recorder owns an output directory and a codec and hands out unique
/// file names; it is thread-safe, so parallel trial harnesses (the bench
/// driver's --record-dir instrumentation) can record from worker threads.
#pragma once

#include <filesystem>
#include <map>
#include <mutex>
#include <string>

#include "trace/codec.hpp"

namespace mobsrv::trace {

struct RecorderOptions {
  std::filesystem::path dir;      ///< created if missing
  Codec codec = Codec::kJsonl;
};

class Recorder {
 public:
  /// Creates the directory (recursively) if needed; throws TraceError when
  /// that fails.
  explicit Recorder(RecorderOptions options);

  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  [[nodiscard]] const std::filesystem::path& dir() const noexcept { return options_.dir; }
  [[nodiscard]] Codec codec() const noexcept { return options_.codec; }

  /// Writes \p file as `<sanitised meta.name><ext>` inside the directory,
  /// suffixing `-2`, `-3`, ... when the name is already taken this session.
  /// Thread-safe; returns the path written.
  std::filesystem::path write(const TraceFile& file);

  /// Number of files written through this recorder so far. Thread-safe.
  [[nodiscard]] std::size_t files_written() const;

 private:
  RecorderOptions options_;
  mutable std::mutex mutex_;
  std::map<std::string, int> used_names_;
  std::size_t files_written_ = 0;
};

/// Replaces every character outside [A-Za-z0-9._-] with '-' (file-system
/// safe scenario names).
[[nodiscard]] std::string sanitize_name(const std::string& name);

}  // namespace mobsrv::trace
