/// \file replay.hpp
/// Re-runs recorded traces and verifies them bit-identically.
///
/// Replaying reconstructs the algorithm from the registry (name + seed),
/// runs it through the engine on the stored instance under the stored
/// speed factor and policy, and compares the resulting cost split against
/// the recorded one with EXACT double equality. The whole stack is
/// deterministic (engine, algorithms, RNG), so any mismatch means the
/// file, the algorithm or the engine changed — which is precisely what the
/// check is for.
#pragma once

#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace mobsrv::trace {

/// Result of replaying one recorded run.
struct ReplayOutcome {
  std::string algorithm;
  std::uint64_t algo_seed = 0;
  double recorded_total = 0.0;
  double replayed_total = 0.0;
  double recorded_move = 0.0;
  double replayed_move = 0.0;
  double recorded_service = 0.0;
  double replayed_service = 0.0;
  bool match = false;  ///< all three cost components exactly equal
};

struct ReplayReport {
  std::vector<ReplayOutcome> outcomes;
  [[nodiscard]] bool all_match() const {
    for (const ReplayOutcome& o : outcomes)
      if (!o.match) return false;
    return true;
  }
};

/// Replays one recorded run against \p instance.
[[nodiscard]] ReplayOutcome replay_run(const sim::Instance& instance, const RecordedRun& run);

/// Replays every recorded run in the file. Files without recorded runs
/// yield an empty (trivially matching) report.
[[nodiscard]] ReplayReport replay(const TraceFile& file);

/// Runs a (possibly different) algorithm against a stored workload and
/// returns the full engine result — the "re-run any registered algorithm"
/// half of the replay path, used by the batch runner and the tools.
[[nodiscard]] sim::RunResult run_on_trace(const TraceFile& file, const std::string& algorithm,
                                          std::uint64_t algo_seed = 0, double speed_factor = 1.0,
                                          sim::SpeedLimitPolicy policy =
                                              sim::SpeedLimitPolicy::kThrow);

}  // namespace mobsrv::trace
