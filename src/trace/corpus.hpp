/// \file corpus.hpp
/// The scenario corpus: every generator in src/adversary/ snapshotted into
/// a named, seeded, serializable TraceFile — plus importers for external
/// demand/waypoint traces the generators cannot express.
///
/// The corpus is the bridge between in-process generator code and the
/// on-disk world: `mobsrv_trace corpus` materialises it into a directory,
/// the batch runner replays such directories, and CI records/replays a
/// corpus smoke. Generation is deterministic: (name, seed, scale) fully
/// determine the bytes written.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "trace/recorder.hpp"

namespace mobsrv::trace {

struct CorpusScenario {
  std::string name;
  std::string description;
};

/// All named scenarios, in stable order: the three lower-bound theorems,
/// the Moving Client theorem, the realistic workloads, and the three
/// mobility models (as Moving Client instances).
[[nodiscard]] const std::vector<CorpusScenario>& corpus_scenarios();

[[nodiscard]] bool is_corpus_scenario(const std::string& name);

/// Builds one scenario. \p scale multiplies the scenario's default horizon
/// (minimum 16 steps). Throws ContractViolation for unknown names.
[[nodiscard]] TraceFile make_corpus_trace(const std::string& name, std::uint64_t seed,
                                          double scale = 1.0);

/// Writes every scenario through the recorder; returns the paths written.
/// When \p algorithms is non-empty, each file additionally carries runs of
/// those algorithms recorded at \p speed_factor (seeded with \p seed).
std::vector<std::filesystem::path> write_corpus(Recorder& recorder, std::uint64_t seed,
                                                double scale = 1.0,
                                                const std::vector<std::string>& algorithms = {},
                                                double speed_factor = 1.5);

// ---------------------------------------------------------------------------
// External trace import.
// ---------------------------------------------------------------------------

/// Demand traces: text lines "t x1 [x2 ...]" (space- or comma-separated,
/// '#' comments), one request per line, step indices non-decreasing. Steps
/// without lines become empty batches; the dimension is inferred from the
/// first line. This admits arbitrary request sequences — bursty, vanishing,
/// teleporting demand — that no generator in src/adversary/ produces.
struct DemandImportOptions {
  double move_cost_weight = 1.0;  ///< D
  double max_step = 1.0;          ///< m
  sim::ServiceOrder order = sim::ServiceOrder::kMoveThenServe;
  /// Server start; empty → the first request's position (so imported traces
  /// begin "on demand" rather than at an arbitrary origin).
  sim::Point start;
};
[[nodiscard]] TraceFile import_demand(const std::filesystem::path& path,
                                      const DemandImportOptions& options = {});

/// Waypoint traces for the Moving Client variant: lines
/// "agent t x1 [x2 ...]" giving per-agent waypoints. Each agent's per-round
/// position walks from the common start toward the linear interpolation of
/// its waypoints, clamped to the agent speed limit — so every imported
/// instance is feasible by construction even when the raw trace is not.
struct WaypointImportOptions {
  double server_speed = 1.0;      ///< m_s
  double agent_speed = 1.0;       ///< m_a
  double move_cost_weight = 1.0;  ///< D
};
[[nodiscard]] TraceFile import_waypoints(const std::filesystem::path& path,
                                         const WaypointImportOptions& options = {});

}  // namespace mobsrv::trace
