/// \file codec.hpp
/// Two interchangeable on-disk codecs for TraceFile.
///
/// * kJsonl  — human-readable JSON Lines: one header object, one array per
///             request batch, one object per recorded run, and an explicit
///             end marker so truncation is always detected. Doubles are
///             written in shortest round-trip form, so nothing is lost.
/// * kBinary — compact little-endian framing ("MSTRCB1\n" magic, versioned,
///             length-prefixed sections ending in an end tag). Roughly 3–5×
///             smaller and an order of magnitude faster to parse.
///
/// read_trace sniffs the codec from the first bytes, so every consumer
/// (replayer, batch runner, tools) accepts either format transparently.
#pragma once

#include <filesystem>
#include <stdexcept>
#include <string>

#include "trace/trace.hpp"

namespace mobsrv::trace {

/// Thrown on unreadable, corrupt, truncated or version-mismatched files.
/// Messages always include the offending path and what was being decoded.
class TraceError : public std::runtime_error {
 public:
  explicit TraceError(const std::string& what) : std::runtime_error(what) {}
};

enum class Codec {
  kJsonl,   ///< JSON Lines (".jsonl")
  kBinary,  ///< length-prefixed binary framing (".mtb")
};

/// Canonical file extension (with dot) for a codec.
[[nodiscard]] std::string extension(Codec codec);

/// Picks the codec from a path's extension: ".jsonl" → kJsonl, ".mtb" →
/// kBinary. Throws TraceError for anything else.
[[nodiscard]] Codec codec_for_path(const std::filesystem::path& path);

/// Parses a codec name ("jsonl" or "binary", as printed by to_string).
/// Throws TraceError for anything else. Shared by every --codec-style flag.
[[nodiscard]] Codec codec_from_name(const std::string& name);

/// Serialises \p file with the given codec. Throws TraceError on I/O
/// failure. Writing is atomic enough for our purposes: a short write leaves
/// a file the reader rejects loudly.
void write_trace(const std::filesystem::path& path, const TraceFile& file, Codec codec);

/// Convenience: codec chosen from the extension.
void write_trace(const std::filesystem::path& path, const TraceFile& file);

/// Reads a trace file, sniffing the codec from its leading bytes. Throws
/// TraceError on missing/corrupt/truncated input or version mismatch.
[[nodiscard]] TraceFile read_trace(const std::filesystem::path& path);

/// In-memory encode/decode (the file functions are thin wrappers; these
/// exist for tests and for streaming over other transports).
[[nodiscard]] std::string encode_trace(const TraceFile& file, Codec codec);
[[nodiscard]] TraceFile decode_trace(const std::string& bytes, const std::string& origin);

/// Stable string forms used by both codecs and the tools.
[[nodiscard]] std::string to_string(Codec codec);
[[nodiscard]] std::string policy_name(sim::SpeedLimitPolicy policy);
[[nodiscard]] sim::SpeedLimitPolicy policy_from_name(const std::string& name);
[[nodiscard]] std::string order_name(sim::ServiceOrder order);
[[nodiscard]] sim::ServiceOrder order_from_name(const std::string& name);

}  // namespace mobsrv::trace
