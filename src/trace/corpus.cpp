#include "trace/corpus.hpp"

#include <algorithm>
#include <fstream>
#include <map>

#include "adversary/lower_bounds.hpp"
#include "adversary/mobility.hpp"
#include "adversary/moving_client_lb.hpp"
#include "adversary/workloads.hpp"

namespace mobsrv::trace {

namespace {

std::size_t scaled(std::size_t base, double scale) {
  const double h = static_cast<double>(base) * scale;
  // Guard the double→size_t cast: casting a value ≥ 2^64 (or NaN) is UB,
  // and anything near it is an absurd horizon anyway.
  MOBSRV_CHECK_MSG(scale > 0.0 && h < 1e9, "corpus scale out of range (horizon would exceed 1e9)");
  const auto rounds = static_cast<std::size_t>(h);
  return rounds < 16 ? 16 : rounds;
}

TraceFile from_adversarial(const std::string& name, std::uint64_t seed,
                           adv::AdversarialInstance a) {
  TraceFile file(TraceMeta{name, "corpus", seed}, std::move(a.instance));
  file.adversary = AdversaryInfo{a.adversary_cost, std::move(a.adversary_positions)};
  return file;
}

TraceFile from_moving_client(const std::string& name, std::uint64_t seed,
                             sim::MovingClientInstance mc) {
  TraceFile file(TraceMeta{name, "corpus", seed}, sim::to_instance(mc));
  file.moving_client = std::move(mc);
  return file;
}

sim::MovingClientInstance single_agent(sim::Point start, double agent_speed, double d_weight,
                                       sim::AgentPath path) {
  sim::MovingClientInstance mc;
  mc.start = std::move(start);
  mc.server_speed = 1.0;
  mc.agent_speed = agent_speed;
  mc.move_cost_weight = d_weight;
  mc.agents.push_back(std::move(path));
  return mc;
}

}  // namespace

const std::vector<CorpusScenario>& corpus_scenarios() {
  static const std::vector<CorpusScenario> kScenarios = {
      {"theorem1", "Theorem 1 adversary: Ω(√T/D) lower bound, no augmentation (1-D)"},
      {"theorem2", "Theorem 2 adversary: Ω((1/δ)·Rmax/Rmin) with augmentation (1-D)"},
      {"theorem3", "Theorem 3 adversary: Answer-First Ω(r/D) two-step cycler (1-D)"},
      {"theorem8-moving-client", "Theorem 8 Moving Client adversary: Ω(√T·ε/(1+ε)) (1-D)"},
      {"drifting-hotspot", "demand hotspot on a bounded random walk, Gaussian requests (2-D)"},
      {"drifting-hotspot-1d", "the same drifting hotspot on the line"},
      {"commute", "day/night demand alternating between two distant sites (2-D)"},
      {"bursts", "bursty volumes on a slowly drifting hotspot (2-D)"},
      {"uniform-noise", "structureless uniform demand in a fixed box (2-D)"},
      {"random-waypoint", "Moving Client with a Random-Waypoint agent (2-D)"},
      {"gauss-markov", "Moving Client with a Gauss–Markov agent (2-D)"},
      {"zigzag", "Moving Client with a deterministic zig-zag agent (1-D)"},
  };
  return kScenarios;
}

bool is_corpus_scenario(const std::string& name) {
  for (const CorpusScenario& s : corpus_scenarios())
    if (s.name == name) return true;
  return false;
}

TraceFile make_corpus_trace(const std::string& name, std::uint64_t seed, double scale) {
  stats::Rng rng({stats::hash_name("corpus"), stats::hash_name(name), seed});

  if (name == "theorem1") {
    adv::Theorem1Params p;
    p.horizon = scaled(1024, scale);
    return from_adversarial(name, seed, adv::make_theorem1(p, rng));
  }
  if (name == "theorem2") {
    adv::Theorem2Params p;
    p.horizon = scaled(2048, scale);
    p.delta = 0.5;
    p.r_max = 4;
    return from_adversarial(name, seed, adv::make_theorem2(p, rng));
  }
  if (name == "theorem3") {
    adv::Theorem3Params p;
    p.horizon = scaled(1024, scale);
    return from_adversarial(name, seed, adv::make_theorem3(p, rng));
  }
  if (name == "theorem8-moving-client") {
    adv::Theorem8Params p;
    p.horizon = scaled(1024, scale);
    adv::MovingClientAdversarial a = adv::make_theorem8(p, rng);
    TraceFile file = from_moving_client(name, seed, std::move(a.mc));
    file.adversary = AdversaryInfo{a.adversary_cost, std::move(a.adversary_positions)};
    return file;
  }
  if (name == "drifting-hotspot" || name == "drifting-hotspot-1d") {
    adv::DriftingHotspotParams p;
    p.horizon = scaled(512, scale);
    p.dim = name == "drifting-hotspot-1d" ? 1 : 2;
    return TraceFile(TraceMeta{name, "corpus", seed}, adv::make_drifting_hotspot(p, rng));
  }
  if (name == "commute") {
    adv::CommuteParams p;
    p.horizon = scaled(512, scale);
    return TraceFile(TraceMeta{name, "corpus", seed}, adv::make_commute(p, rng));
  }
  if (name == "bursts") {
    adv::BurstParams p;
    p.horizon = scaled(512, scale);
    return TraceFile(TraceMeta{name, "corpus", seed}, adv::make_bursts(p, rng));
  }
  if (name == "uniform-noise") {
    adv::UniformNoiseParams p;
    p.horizon = scaled(512, scale);
    return TraceFile(TraceMeta{name, "corpus", seed}, adv::make_uniform_noise(p, rng));
  }
  if (name == "random-waypoint") {
    adv::RandomWaypointParams p;
    p.horizon = scaled(512, scale);
    const sim::Point start = sim::Point::zero(p.dim);
    sim::AgentPath path = adv::make_random_waypoint(p, start, rng);
    return from_moving_client(name, seed, single_agent(start, p.speed, 2.0, std::move(path)));
  }
  if (name == "gauss-markov") {
    adv::GaussMarkovParams p;
    p.horizon = scaled(512, scale);
    const sim::Point start = sim::Point::zero(p.dim);
    sim::AgentPath path = adv::make_gauss_markov(p, start, rng);
    return from_moving_client(name, seed, single_agent(start, p.speed, 2.0, std::move(path)));
  }
  if (name == "zigzag") {
    adv::ZigZagParams p;
    p.horizon = scaled(256, scale);
    const sim::Point start = sim::Point::zero(p.dim);
    sim::AgentPath path = adv::make_zigzag(p, start);
    return from_moving_client(name, seed, single_agent(start, p.speed, 2.0, std::move(path)));
  }
  throw ContractViolation("unknown corpus scenario: " + name);
}

std::vector<std::filesystem::path> write_corpus(Recorder& recorder, std::uint64_t seed,
                                                double scale,
                                                const std::vector<std::string>& algorithms,
                                                double speed_factor) {
  std::vector<std::filesystem::path> paths;
  paths.reserve(corpus_scenarios().size());
  for (const CorpusScenario& scenario : corpus_scenarios()) {
    TraceFile file = make_corpus_trace(scenario.name, seed, scale);
    for (const std::string& algorithm : algorithms)
      file.runs.push_back(record_run(file.instance, algorithm, seed, speed_factor));
    paths.push_back(recorder.write(file));
  }
  return paths;
}

// ---------------------------------------------------------------------------
// Importers.
// ---------------------------------------------------------------------------

namespace {

struct ParsedLine {
  std::size_t lineno = 0;
  std::vector<double> fields;
};

/// Hard ceiling on imported horizons. Real traces index rounds from 0; a
/// value like a unix timestamp would otherwise dense-allocate terabytes.
constexpr std::size_t kMaxImportRounds = std::size_t{1} << 22;  // ~4.2M rounds

[[noreturn]] void import_fail(const std::filesystem::path& path, std::size_t lineno,
                              const std::string& message) {
  throw TraceError(path.string() + ":" + std::to_string(lineno) + ": " + message);
}

/// Reads all data lines of a '#'-commented, space/comma-separated table.
std::vector<ParsedLine> read_table(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) throw TraceError(path.string() + ": cannot open (missing file?)");
  std::vector<ParsedLine> rows;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    ParsedLine row;
    row.lineno = lineno;
    std::size_t pos = 0;
    while (pos < line.size()) {
      while (pos < line.size() && (line[pos] == ' ' || line[pos] == '\t' || line[pos] == ','))
        ++pos;
      if (pos >= line.size()) break;
      std::size_t end = pos;
      while (end < line.size() && line[end] != ' ' && line[end] != '\t' && line[end] != ',')
        ++end;
      const std::string token = line.substr(pos, end - pos);
      try {
        std::size_t used = 0;
        const double v = std::stod(token, &used);
        if (used != token.size()) throw std::invalid_argument(token);
        row.fields.push_back(v);
      } catch (const std::exception&) {
        import_fail(path, lineno, "cannot parse number '" + token + "'");
      }
      pos = end;
    }
    if (!row.fields.empty()) rows.push_back(std::move(row));
  }
  if (rows.empty()) throw TraceError(path.string() + ": no data lines found");
  return rows;
}

std::size_t field_as_index(const std::filesystem::path& path, const ParsedLine& row,
                           std::size_t field, const char* what) {
  const double v = row.fields[field];
  // Range-check BEFORE casting: double→size_t is UB for NaN or values out
  // of range, so the comparison must happen entirely in double.
  if (!(v >= 0.0 && v < 9007199254740992.0))  // 2^53: above this, not exact anyway
    import_fail(path, row.lineno,
                std::string(what) + " must be a non-negative integer, got " + std::to_string(v));
  const auto index = static_cast<std::size_t>(v);
  if (static_cast<double>(index) != v)
    import_fail(path, row.lineno,
                std::string(what) + " must be a non-negative integer, got " + std::to_string(v));
  return index;
}

std::string import_name(const std::filesystem::path& path) {
  return "import:" + path.filename().string();
}

}  // namespace

TraceFile import_demand(const std::filesystem::path& path, const DemandImportOptions& options) {
  const std::vector<ParsedLine> rows = read_table(path);

  const int dim = static_cast<int>(rows.front().fields.size()) - 1;
  if (dim < 1 || dim > sim::Point::kMaxDim)
    import_fail(path, rows.front().lineno,
                "expected 't x1 [x2 ...]' with 1–" + std::to_string(sim::Point::kMaxDim) +
                    " coordinates, got " + std::to_string(dim));

  std::vector<sim::RequestBatch> steps;
  std::size_t prev_t = 0;
  for (const ParsedLine& row : rows) {
    if (static_cast<int>(row.fields.size()) - 1 != dim)
      import_fail(path, row.lineno,
                  "inconsistent dimension: expected " + std::to_string(dim) + " coordinates");
    const std::size_t t = field_as_index(path, row, 0, "step index");
    if (t >= kMaxImportRounds)
      import_fail(path, row.lineno,
                  "step index " + std::to_string(t) + " exceeds the import limit of " +
                      std::to_string(kMaxImportRounds) +
                      " rounds (renumber rounds from 0, not wall-clock time)");
    if (!steps.empty() && t < prev_t)
      import_fail(path, row.lineno, "step indices must be non-decreasing (got " +
                                        std::to_string(t) + " after " + std::to_string(prev_t) +
                                        ")");
    prev_t = t;
    sim::Point v(dim);
    for (int i = 0; i < dim; ++i) v[i] = row.fields[static_cast<std::size_t>(i) + 1];
    if (steps.size() <= t) steps.resize(t + 1);
    steps[t].requests.push_back(v);
  }

  sim::Point start = options.start;
  if (start.empty()) {
    // Default: start on the first request, so the trace begins "on demand".
    start = sim::Point(dim);
    for (const sim::RequestBatch& batch : steps)
      if (!batch.empty()) {
        start = batch.requests.front();
        break;
      }
  } else if (start.dim() != dim) {
    throw TraceError(path.string() + ": start position dimension " +
                     std::to_string(start.dim()) + " does not match trace dimension " +
                     std::to_string(dim));
  }

  sim::ModelParams params;
  params.move_cost_weight = options.move_cost_weight;
  params.max_step = options.max_step;
  params.order = options.order;
  return TraceFile(TraceMeta{import_name(path), "import", 0},
                   sim::Instance(start, params, std::move(steps)));
}

TraceFile import_waypoints(const std::filesystem::path& path,
                           const WaypointImportOptions& options) {
  const std::vector<ParsedLine> rows = read_table(path);

  const int dim = static_cast<int>(rows.front().fields.size()) - 2;
  if (dim < 1 || dim > sim::Point::kMaxDim)
    import_fail(path, rows.front().lineno,
                "expected 'agent t x1 [x2 ...]' with 1–" + std::to_string(sim::Point::kMaxDim) +
                    " coordinates, got " + std::to_string(dim));

  // Collect per-agent waypoints, preserving first-seen agent order.
  std::map<std::size_t, std::vector<std::pair<std::size_t, sim::Point>>> waypoints;
  std::size_t horizon = 0;
  for (const ParsedLine& row : rows) {
    if (static_cast<int>(row.fields.size()) - 2 != dim)
      import_fail(path, row.lineno,
                  "inconsistent dimension: expected " + std::to_string(dim) + " coordinates");
    const std::size_t agent = field_as_index(path, row, 0, "agent id");
    const std::size_t t = field_as_index(path, row, 1, "round");
    if (t >= kMaxImportRounds)
      import_fail(path, row.lineno,
                  "round " + std::to_string(t) + " exceeds the import limit of " +
                      std::to_string(kMaxImportRounds) +
                      " rounds (renumber rounds from 0, not wall-clock time)");
    sim::Point p(dim);
    for (int i = 0; i < dim; ++i) p[i] = row.fields[static_cast<std::size_t>(i) + 2];
    auto& list = waypoints[agent];
    if (!list.empty() && t <= list.back().first)
      import_fail(path, row.lineno, "agent " + std::to_string(agent) +
                                        ": rounds must be strictly increasing");
    list.emplace_back(t, p);
    horizon = std::max(horizon, t);
  }
  if (horizon == 0)
    throw TraceError(path.string() + ": all waypoints are at round 0 — nothing to simulate");

  // Common start: centroid of every agent's first waypoint (the Moving
  // Client model couples all agents to the server's start).
  sim::Point start = sim::Point::zero(dim);
  for (const auto& entry : waypoints) start += entry.second.front().second;
  start /= static_cast<double>(waypoints.size());

  // Interpolate each agent's waypoints into a per-round target, then walk
  // toward it clamped to the agent speed so the path is always feasible.
  sim::MovingClientInstance mc;
  mc.start = start;
  mc.server_speed = options.server_speed;
  mc.agent_speed = options.agent_speed;
  mc.move_cost_weight = options.move_cost_weight;
  for (const auto& entry : waypoints) {
    const auto& list = entry.second;
    sim::AgentPath agent_path;
    agent_path.positions.reserve(horizon);
    sim::Point pos = start;
    std::size_t next = 0;
    for (std::size_t t = 1; t <= horizon; ++t) {
      while (next < list.size() && list[next].first < t) ++next;
      sim::Point target(dim);
      if (next >= list.size()) {
        target = list.back().second;  // past the last waypoint: hold it
      } else if (next == 0 || list[next].first == t) {
        target = list[next].second;
      } else {
        const auto& [t0, p0] = list[next - 1];
        const auto& [t1, p1] = list[next];
        const double f = static_cast<double>(t - t0) / static_cast<double>(t1 - t0);
        target = geo::lerp(p0, p1, f);
      }
      pos = geo::move_toward(pos, target, options.agent_speed);
      agent_path.positions.push_back(pos);
    }
    mc.agents.push_back(std::move(agent_path));
  }

  TraceFile file(TraceMeta{import_name(path), "import", 0}, sim::to_instance(mc));
  file.moving_client = std::move(mc);
  return file;
}

}  // namespace mobsrv::trace
