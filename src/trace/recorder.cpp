#include "trace/recorder.hpp"

namespace mobsrv::trace {

Recorder::Recorder(RecorderOptions options) : options_(std::move(options)) {
  std::error_code ec;
  std::filesystem::create_directories(options_.dir, ec);
  if (ec) {
    std::string message = options_.dir.string();
    message += ": cannot create record directory: ";
    message += ec.message();
    throw TraceError(message);
  }
}

std::filesystem::path Recorder::write(const TraceFile& file) {
  std::string base = sanitize_name(file.meta.name);
  if (base.empty()) base = "trace";

  std::filesystem::path path;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const int n = ++used_names_[base];
    std::string stem = base;
    if (n > 1) {
      stem += '-';
      stem += std::to_string(n);
    }
    path = options_.dir / (stem + extension(options_.codec));
    ++files_written_;
  }
  write_trace(path, file, options_.codec);
  return path;
}

std::size_t Recorder::files_written() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return files_written_;
}

std::string sanitize_name(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
                    c == '.' || c == '_' || c == '-';
    out.push_back(ok ? c : '-');
  }
  return out;
}

}  // namespace mobsrv::trace
