#include "trace/codec.hpp"

#include <bit>
#include <cstring>
#include <fstream>

#include "io/json.hpp"

static_assert(std::endian::native == std::endian::little,
              "the binary trace codec assumes a little-endian host");

namespace mobsrv::trace {

namespace {

constexpr char kMagic[8] = {'M', 'S', 'T', 'R', 'C', 'B', '1', '\n'};

enum SectionTag : std::uint8_t {
  kSectionMeta = 1,
  kSectionInstance = 2,
  kSectionMovingClient = 3,
  kSectionAdversary = 4,
  kSectionRun = 5,
  kSectionEnd = 0xFF,
};

[[noreturn]] void fail(const std::string& origin, const std::string& message) {
  throw TraceError(origin + ": " + message);
}

// ---------------------------------------------------------------------------
// JSONL codec.
// ---------------------------------------------------------------------------

io::Json point_to_json(const sim::Point& p) {
  io::Json arr = io::Json::array();
  for (int i = 0; i < p.dim(); ++i) arr.push_back(p[i]);
  return arr;
}

io::Json points_to_json(const std::vector<sim::Point>& points) {
  io::Json arr = io::Json::array();
  for (const sim::Point& p : points) arr.push_back(point_to_json(p));
  return arr;
}

/// Flat-trajectory overload: serialises identically to the Point-vector
/// form (same per-point JSON), so files written from TrajectoryStore paths
/// are byte-compatible with the format as first shipped.
io::Json points_to_json(const sim::TrajectoryStore& points) {
  io::Json arr = io::Json::array();
  for (std::size_t t = 0; t < points.size(); ++t) arr.push_back(point_to_json(points[t]));
  return arr;
}

sim::Point point_from_json(const io::Json& j, int dim, const std::string& origin,
                           const char* what) {
  const io::Json::Array& coords = j.as_array();
  if (static_cast<int>(coords.size()) != dim)
    fail(origin, std::string(what) + ": point has " + std::to_string(coords.size()) +
                     " coordinates, expected " + std::to_string(dim));
  sim::Point p(dim);
  for (int i = 0; i < dim; ++i) p[i] = coords[static_cast<std::size_t>(i)].as_double();
  return p;
}

std::vector<sim::Point> points_from_json(const io::Json& j, int dim, const std::string& origin,
                                         const char* what) {
  std::vector<sim::Point> out;
  out.reserve(j.as_array().size());
  for (const io::Json& pj : j.as_array()) out.push_back(point_from_json(pj, dim, origin, what));
  return out;
}

std::string encode_jsonl(const TraceFile& file) {
  std::string out;

  io::Json header = io::Json::object();
  header.set("format", "mobsrv-trace");
  header.set("version", kFormatVersion);
  header.set("name", file.meta.name);
  header.set("source", file.meta.source);
  header.set("seed", file.meta.seed);
  header.set("dim", file.instance.dim());
  header.set("horizon", file.instance.horizon());
  header.set("D", file.instance.params().move_cost_weight);
  header.set("m", file.instance.params().max_step);
  header.set("order", order_name(file.instance.params().order));
  header.set("start", point_to_json(file.instance.start()));
  header.dump_to(out);
  out.push_back('\n');

  for (std::size_t t = 0; t < file.instance.horizon(); ++t) {
    points_to_json(file.instance.step(t).to_points()).dump_to(out);
    out.push_back('\n');
  }

  if (file.moving_client) {
    const sim::MovingClientInstance& mc = *file.moving_client;
    io::Json agents = io::Json::array();
    for (const sim::AgentPath& agent : mc.agents) agents.push_back(points_to_json(agent.positions));
    io::Json body = io::Json::object();
    body.set("server_speed", mc.server_speed);
    body.set("agent_speed", mc.agent_speed);
    body.set("D", mc.move_cost_weight);
    body.set("start", point_to_json(mc.start));
    body.set("agents", std::move(agents));
    io::Json line = io::Json::object();
    line.set("moving_client", std::move(body));
    line.dump_to(out);
    out.push_back('\n');
  }

  if (file.adversary) {
    io::Json body = io::Json::object();
    body.set("cost", file.adversary->cost);
    body.set("positions", points_to_json(file.adversary->positions));
    io::Json line = io::Json::object();
    line.set("adversary", std::move(body));
    line.dump_to(out);
    out.push_back('\n');
  }

  for (const RecordedRun& run : file.runs) {
    io::Json body = io::Json::object();
    body.set("algorithm", run.algorithm);
    body.set("algo_seed", run.algo_seed);
    body.set("speed_factor", run.speed_factor);
    body.set("policy", policy_name(run.policy));
    body.set("total_cost", run.total_cost);
    body.set("move_cost", run.move_cost);
    body.set("service_cost", run.service_cost);
    body.set("positions", points_to_json(run.positions));
    if (!run.step_costs.empty()) {
      io::Json costs = io::Json::array();
      for (const sim::StepCost& c : run.step_costs)
        costs.push_back(io::Json(io::Json::Array{io::Json(c.move), io::Json(c.service)}));
      body.set("step_costs", std::move(costs));
    }
    io::Json line = io::Json::object();
    line.set("run", std::move(body));
    line.dump_to(out);
    out.push_back('\n');
  }

  io::Json end = io::Json::object();
  end.set("end", true);
  end.set("steps", file.instance.horizon());
  end.set("runs", file.runs.size());
  end.dump_to(out);
  out.push_back('\n');
  return out;
}

TraceFile decode_jsonl(const std::string& bytes, const std::string& origin) {
  // Split into non-empty lines.
  std::vector<std::string_view> lines;
  std::string_view rest(bytes);
  while (!rest.empty()) {
    const std::size_t nl = rest.find('\n');
    const std::string_view line = rest.substr(0, nl);
    if (!line.empty()) lines.push_back(line);
    if (nl == std::string_view::npos) break;
    rest.remove_prefix(nl + 1);
  }
  if (lines.empty()) fail(origin, "empty trace file");

  std::size_t cursor = 0;
  auto next_line = [&](const char* what) -> std::string_view {
    if (cursor >= lines.size())
      fail(origin, std::string("truncated: unexpected end of file while reading ") + what);
    return lines[cursor++];
  };
  auto parse_line = [&](const char* what) {
    const std::string_view line = next_line(what);
    try {
      return io::Json::parse(line);
    } catch (const io::JsonError& error) {
      fail(origin, std::string("corrupt ") + what + " line " + std::to_string(cursor) + ": " +
                       error.what());
    }
  };

  const io::Json header = parse_line("header");
  if (const io::Json* format = header.find("format"); !format || format->as_string() != "mobsrv-trace")
    fail(origin, "not a mobsrv trace file (bad or missing \"format\" in header)");
  const std::uint64_t version = header.at("version").as_uint64();
  if (version != kFormatVersion)
    fail(origin, "unsupported trace format version " + std::to_string(version) + " (this build reads version " +
                     std::to_string(kFormatVersion) + ")");

  TraceMeta meta;
  meta.name = header.at("name").as_string();
  meta.source = header.at("source").as_string();
  meta.seed = header.at("seed").as_uint64();

  const int dim = static_cast<int>(header.at("dim").as_int64());
  if (dim < 1 || dim > sim::Point::kMaxDim)
    fail(origin, "header dim " + std::to_string(dim) + " out of range [1, " +
                     std::to_string(sim::Point::kMaxDim) + "]");
  const std::uint64_t horizon = header.at("horizon").as_uint64();
  if (horizon > lines.size())
    fail(origin, "truncated: header announces " + std::to_string(horizon) +
                     " steps but the file has only " + std::to_string(lines.size()) + " lines");
  sim::ModelParams params;
  params.move_cost_weight = header.at("D").as_double();
  params.max_step = header.at("m").as_double();
  params.order = order_from_name(header.at("order").as_string());
  const sim::Point start = point_from_json(header.at("start"), dim, origin, "header start");

  std::vector<sim::RequestBatch> steps;
  steps.reserve(horizon);
  for (std::uint64_t t = 0; t < horizon; ++t) {
    if (cursor >= lines.size())
      fail(origin, "truncated: expected " + std::to_string(horizon) + " batch lines, found " +
                       std::to_string(t));
    const io::Json batch = parse_line("batch");
    steps.push_back(sim::RequestBatch{points_from_json(batch, dim, origin, "request")});
  }

  TraceFile file(std::move(meta), sim::Instance(start, params, std::move(steps)));

  bool saw_end = false;
  while (cursor < lines.size()) {
    const io::Json line = parse_line("trailer");
    const io::Json::Object& obj = line.as_object();
    if (obj.empty()) fail(origin, "corrupt trailer: empty object");
    const std::string& key = obj.front().first;
    const io::Json& body = obj.front().second;
    if (key == "end") {
      if (body.as_bool() != true) fail(origin, "corrupt end marker");
      if (line.at("steps").as_uint64() != horizon)
        fail(origin, "corrupt end marker: step count disagrees with header");
      const std::uint64_t runs = line.at("runs").as_uint64();
      if (runs != file.runs.size())
        fail(origin, "corrupt end marker: announces " + std::to_string(runs) + " runs, found " +
                         std::to_string(file.runs.size()));
      saw_end = true;
      if (cursor != lines.size()) fail(origin, "trailing data after end marker");
      break;
    }
    if (key == "moving_client") {
      sim::MovingClientInstance mc;
      mc.server_speed = body.at("server_speed").as_double();
      mc.agent_speed = body.at("agent_speed").as_double();
      mc.move_cost_weight = body.at("D").as_double();
      mc.start = point_from_json(body.at("start"), dim, origin, "moving_client start");
      for (const io::Json& path : body.at("agents").as_array())
        mc.agents.push_back(
            sim::AgentPath{points_from_json(path, dim, origin, "moving_client path")});
      file.moving_client = std::move(mc);
      continue;
    }
    if (key == "adversary") {
      AdversaryInfo adv;
      adv.cost = body.at("cost").as_double();
      adv.positions = sim::TrajectoryStore::from_points(
          points_from_json(body.at("positions"), dim, origin, "adversary position"));
      file.adversary = std::move(adv);
      continue;
    }
    if (key == "run") {
      RecordedRun run;
      run.algorithm = body.at("algorithm").as_string();
      run.algo_seed = body.at("algo_seed").as_uint64();
      run.speed_factor = body.at("speed_factor").as_double();
      run.policy = policy_from_name(body.at("policy").as_string());
      run.total_cost = body.at("total_cost").as_double();
      run.move_cost = body.at("move_cost").as_double();
      run.service_cost = body.at("service_cost").as_double();
      run.positions = points_from_json(body.at("positions"), dim, origin, "run position");
      if (const io::Json* costs = body.find("step_costs")) {
        for (const io::Json& c : costs->as_array()) {
          const io::Json::Array& pair = c.as_array();
          if (pair.size() != 2) fail(origin, "corrupt step_costs entry");
          run.step_costs.push_back(sim::StepCost{pair[0].as_double(), pair[1].as_double()});
        }
      }
      file.runs.push_back(std::move(run));
      continue;
    }
    fail(origin, "unknown trailer record \"" + key + "\"");
  }
  if (!saw_end)
    fail(origin, "truncated: missing end marker (file was cut off after the batch lines)");
  return file;
}

// ---------------------------------------------------------------------------
// Binary codec: length-prefixed little-endian sections.
// ---------------------------------------------------------------------------

void put_u8(std::string& out, std::uint8_t v) { out.push_back(static_cast<char>(v)); }

void put_u32(std::string& out, std::uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out.append(buf, 4);
}

void put_u64(std::string& out, std::uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out.append(buf, 8);
}

void put_f64(std::string& out, double v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out.append(buf, 8);
}

void put_str(std::string& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out += s;
}

void put_point(std::string& out, const sim::Point& p) {
  for (int i = 0; i < p.dim(); ++i) put_f64(out, p[i]);
}

void put_points(std::string& out, const std::vector<sim::Point>& points) {
  put_u64(out, points.size());
  for (const sim::Point& p : points) put_point(out, p);
}

void put_points(std::string& out, const sim::TrajectoryStore& points) {
  put_u64(out, points.size());
  for (std::size_t t = 0; t < points.size(); ++t) put_point(out, points[t]);
}

void put_section(std::string& out, std::uint8_t tag, const std::string& payload) {
  put_u8(out, tag);
  put_u64(out, payload.size());
  out += payload;
}

std::string encode_binary(const TraceFile& file) {
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  put_u32(out, kFormatVersion);

  std::string payload;
  put_str(payload, file.meta.name);
  put_str(payload, file.meta.source);
  put_u64(payload, file.meta.seed);
  put_section(out, kSectionMeta, payload);

  payload.clear();
  const sim::Instance& inst = file.instance;
  put_u8(payload, static_cast<std::uint8_t>(inst.dim()));
  put_u8(payload, inst.params().order == sim::ServiceOrder::kMoveThenServe ? 0 : 1);
  put_f64(payload, inst.params().move_cost_weight);
  put_f64(payload, inst.params().max_step);
  put_point(payload, inst.start());
  put_u64(payload, inst.horizon());
  for (std::size_t t = 0; t < inst.horizon(); ++t) {
    const sim::BatchView batch = inst.step(t);
    put_u32(payload, static_cast<std::uint32_t>(batch.size()));
    for (const sim::Point v : batch) put_point(payload, v);
  }
  put_section(out, kSectionInstance, payload);

  if (file.moving_client) {
    const sim::MovingClientInstance& mc = *file.moving_client;
    payload.clear();
    put_f64(payload, mc.server_speed);
    put_f64(payload, mc.agent_speed);
    put_f64(payload, mc.move_cost_weight);
    put_point(payload, mc.start);
    put_u32(payload, static_cast<std::uint32_t>(mc.agents.size()));
    put_u64(payload, mc.horizon());
    for (const sim::AgentPath& agent : mc.agents)
      for (const sim::Point& p : agent.positions) put_point(payload, p);
    put_section(out, kSectionMovingClient, payload);
  }

  if (file.adversary) {
    payload.clear();
    put_f64(payload, file.adversary->cost);
    put_points(payload, file.adversary->positions);
    put_section(out, kSectionAdversary, payload);
  }

  for (const RecordedRun& run : file.runs) {
    payload.clear();
    put_str(payload, run.algorithm);
    put_u64(payload, run.algo_seed);
    put_f64(payload, run.speed_factor);
    put_u8(payload, run.policy == sim::SpeedLimitPolicy::kThrow ? 0 : 1);
    put_f64(payload, run.total_cost);
    put_f64(payload, run.move_cost);
    put_f64(payload, run.service_cost);
    put_points(payload, run.positions);
    put_u8(payload, run.step_costs.empty() ? 0 : 1);
    if (!run.step_costs.empty()) {
      put_u64(payload, run.step_costs.size());
      for (const sim::StepCost& c : run.step_costs) {
        put_f64(payload, c.move);
        put_f64(payload, c.service);
      }
    }
    put_section(out, kSectionRun, payload);
  }

  put_u8(out, kSectionEnd);
  put_u64(out, 0);
  return out;
}

/// Bounds-checked cursor over the binary payload; every read names the
/// section being decoded so truncation errors are actionable.
class BinReader {
 public:
  BinReader(const std::string& bytes, std::string origin)
      : bytes_(bytes), origin_(std::move(origin)) {}

  void set_context(const char* what) { context_ = what; }
  [[nodiscard]] std::size_t pos() const noexcept { return pos_; }
  [[nodiscard]] std::size_t size() const noexcept { return bytes_.size(); }

  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(bytes_[pos_++]);
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v;
    std::memcpy(&v, bytes_.data() + pos_, 4);
    pos_ += 4;
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v;
    std::memcpy(&v, bytes_.data() + pos_, 8);
    pos_ += 8;
    return v;
  }
  double f64() {
    need(8);
    double v;
    std::memcpy(&v, bytes_.data() + pos_, 8);
    pos_ += 8;
    return v;
  }
  std::string str() {
    const std::uint32_t n = u32();
    need(n);
    std::string s = bytes_.substr(pos_, n);
    pos_ += n;
    return s;
  }
  sim::Point point(int dim) {
    sim::Point p(dim);
    for (int i = 0; i < dim; ++i) p[i] = f64();
    return p;
  }
  std::vector<sim::Point> points(int dim) {
    const std::uint64_t n = u64();
    // Guard against a corrupt count asking for more points than the file
    // could possibly hold (8 bytes per coordinate).
    if (n > bytes_.size() / (8 * static_cast<std::uint64_t>(dim)) + 1)
      fail(origin_, std::string("corrupt ") + context_ + ": implausible point count " +
                        std::to_string(n));
    std::vector<sim::Point> out;
    out.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) out.push_back(point(dim));
    return out;
  }

 private:
  void need(std::size_t n) {
    if (pos_ + n > bytes_.size())
      fail(origin_, std::string("truncated: unexpected end of file while reading ") + context_ +
                        " (at byte " + std::to_string(pos_) + " of " +
                        std::to_string(bytes_.size()) + ")");
  }

  const std::string& bytes_;
  std::string origin_;
  const char* context_ = "header";
  std::size_t pos_ = 0;
};

TraceFile decode_binary(const std::string& bytes, const std::string& origin) {
  BinReader r(bytes, origin);
  r.set_context("magic");
  if (bytes.size() < sizeof(kMagic) || std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0)
    fail(origin, "not a mobsrv binary trace file (bad magic)");
  for (std::size_t i = 0; i < sizeof(kMagic); ++i) (void)r.u8();
  r.set_context("version");
  const std::uint32_t version = r.u32();
  if (version != kFormatVersion)
    fail(origin, "unsupported trace format version " + std::to_string(version) +
                     " (this build reads version " + std::to_string(kFormatVersion) + ")");

  std::optional<TraceMeta> meta;
  std::optional<TraceFile> file;
  int dim = 0;
  bool saw_end = false;

  while (!saw_end) {
    r.set_context("section header");
    const std::uint8_t tag = r.u8();
    const std::uint64_t size = r.u64();
    // The declared size feeds every downstream plausibility guard, so it
    // must itself be bounded by what the file actually holds.
    if (size > r.size() - r.pos())
      fail(origin, "truncated: section (tag " + std::to_string(tag) + ") declares " +
                       std::to_string(size) + " bytes but only " +
                       std::to_string(r.size() - r.pos()) + " remain");
    const std::size_t section_start = r.pos();
    switch (tag) {
      case kSectionMeta: {
        r.set_context("meta section");
        TraceMeta m;
        m.name = r.str();
        m.source = r.str();
        m.seed = r.u64();
        meta = std::move(m);
        break;
      }
      case kSectionInstance: {
        r.set_context("instance section");
        if (!meta) fail(origin, "corrupt file: instance section before meta section");
        dim = r.u8();
        if (dim < 1 || dim > sim::Point::kMaxDim)
          fail(origin, "instance dim " + std::to_string(dim) + " out of range [1, " +
                           std::to_string(sim::Point::kMaxDim) + "]");
        sim::ModelParams params;
        params.order = r.u8() == 0 ? sim::ServiceOrder::kMoveThenServe
                                   : sim::ServiceOrder::kServeThenMove;
        params.move_cost_weight = r.f64();
        params.max_step = r.f64();
        const sim::Point start = r.point(dim);
        const std::uint64_t horizon = r.u64();
        if (horizon > size / 4 + 1)
          fail(origin, "corrupt instance section: implausible horizon " + std::to_string(horizon));
        std::vector<sim::RequestBatch> steps;
        steps.reserve(horizon);
        for (std::uint64_t t = 0; t < horizon; ++t) {
          const std::uint32_t nreq = r.u32();
          // Each request needs 8·dim payload bytes; a larger count is a
          // corrupt field, not a short file — reject before reserving.
          if (nreq > size / 8 + 1)
            fail(origin,
                 "corrupt instance section: implausible batch size " + std::to_string(nreq));
          sim::RequestBatch batch;
          batch.requests.reserve(nreq);
          for (std::uint32_t i = 0; i < nreq; ++i) batch.requests.push_back(r.point(dim));
          steps.push_back(std::move(batch));
        }
        file.emplace(*meta, sim::Instance(start, params, std::move(steps)));
        break;
      }
      case kSectionMovingClient: {
        r.set_context("moving_client section");
        if (!file) fail(origin, "corrupt file: moving_client section before instance section");
        sim::MovingClientInstance mc;
        mc.server_speed = r.f64();
        mc.agent_speed = r.f64();
        mc.move_cost_weight = r.f64();
        mc.start = r.point(dim);
        const std::uint32_t nagents = r.u32();
        const std::uint64_t horizon = r.u64();
        if (nagents > size / 8 + 1 || horizon > size / 8 + 1)
          fail(origin, "corrupt moving_client section: implausible shape " +
                           std::to_string(nagents) + " agents x " + std::to_string(horizon) +
                           " rounds");
        for (std::uint32_t a = 0; a < nagents; ++a) {
          sim::AgentPath path;
          path.positions.reserve(horizon);
          for (std::uint64_t t = 0; t < horizon; ++t) path.positions.push_back(r.point(dim));
          mc.agents.push_back(std::move(path));
        }
        file->moving_client = std::move(mc);
        break;
      }
      case kSectionAdversary: {
        r.set_context("adversary section");
        if (!file) fail(origin, "corrupt file: adversary section before instance section");
        AdversaryInfo adv;
        adv.cost = r.f64();
        adv.positions = sim::TrajectoryStore::from_points(r.points(dim));
        file->adversary = std::move(adv);
        break;
      }
      case kSectionRun: {
        r.set_context("run section");
        if (!file) fail(origin, "corrupt file: run section before instance section");
        RecordedRun run;
        run.algorithm = r.str();
        run.algo_seed = r.u64();
        run.speed_factor = r.f64();
        run.policy =
            r.u8() == 0 ? sim::SpeedLimitPolicy::kThrow : sim::SpeedLimitPolicy::kClamp;
        run.total_cost = r.f64();
        run.move_cost = r.f64();
        run.service_cost = r.f64();
        run.positions = r.points(dim);
        if (r.u8() != 0) {
          const std::uint64_t n = r.u64();
          if (n > size / 16 + 1)
            fail(origin, "corrupt run section: implausible step count " + std::to_string(n));
          run.step_costs.reserve(n);
          for (std::uint64_t i = 0; i < n; ++i) {
            const double move = r.f64();
            const double service = r.f64();
            run.step_costs.push_back(sim::StepCost{move, service});
          }
        }
        file->runs.push_back(std::move(run));
        break;
      }
      case kSectionEnd:
        if (size != 0) fail(origin, "corrupt end section");
        saw_end = true;
        break;
      default:
        fail(origin, "unknown section tag " + std::to_string(tag) +
                         " (corrupt file or newer format)");
    }
    if (tag != kSectionEnd && r.pos() - section_start != size)
      fail(origin, "corrupt section (tag " + std::to_string(tag) + "): payload declares " +
                       std::to_string(size) + " bytes, decoder consumed " +
                       std::to_string(r.pos() - section_start));
  }
  if (r.pos() != r.size()) fail(origin, "trailing data after end section");
  if (!file) fail(origin, "truncated: file ends before the instance section");
  return std::move(*file);
}

/// Shared invariants enforced on BOTH directions: decoding rejects corrupt
/// files, and encoding refuses to write a file that could never be read
/// back (e.g. unequal agent path lengths).
void validate_trace_file(const TraceFile& file, const std::string& origin) {
  const std::size_t horizon = file.instance.horizon();
  if (file.moving_client) {
    if (file.moving_client->horizon() != horizon)
      fail(origin, "moving_client horizon " + std::to_string(file.moving_client->horizon()) +
                       " does not match instance horizon " + std::to_string(horizon));
    try {
      file.moving_client->validate();
    } catch (const ContractViolation& error) {
      fail(origin, std::string("invalid moving_client section: ") + error.what());
    }
  }
  for (const RecordedRun& run : file.runs) {
    if (!run.positions.empty() && run.positions.size() != horizon + 1)
      fail(origin, "run \"" + run.algorithm + "\" has " + std::to_string(run.positions.size()) +
                       " positions, expected " + std::to_string(horizon + 1));
    if (!run.step_costs.empty() && run.step_costs.size() != horizon)
      fail(origin, "run \"" + run.algorithm + "\" has " + std::to_string(run.step_costs.size()) +
                       " step costs, expected " + std::to_string(horizon));
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Public API.
// ---------------------------------------------------------------------------

std::string to_string(Codec codec) { return codec == Codec::kJsonl ? "jsonl" : "binary"; }

std::string extension(Codec codec) { return codec == Codec::kJsonl ? ".jsonl" : ".mtb"; }

Codec codec_from_name(const std::string& name) {
  if (name == "jsonl") return Codec::kJsonl;
  if (name == "binary") return Codec::kBinary;
  throw TraceError("unknown codec \"" + name + "\" (expected jsonl or binary)");
}

Codec codec_for_path(const std::filesystem::path& path) {
  const std::string ext = path.extension().string();
  if (ext == ".jsonl") return Codec::kJsonl;
  if (ext == ".mtb") return Codec::kBinary;
  throw TraceError(path.string() + ": unknown trace extension \"" + ext +
                   "\" (expected .jsonl or .mtb)");
}

std::string encode_trace(const TraceFile& file, Codec codec) {
  try {
    validate_trace_file(file, "encode");
  } catch (const ContractViolation& error) {
    throw TraceError(std::string("encode: invalid trace contents: ") + error.what());
  }
  return codec == Codec::kJsonl ? encode_jsonl(file) : encode_binary(file);
}

TraceFile decode_trace(const std::string& bytes, const std::string& origin) {
  // Sniff the codec on the first non-whitespace byte, so hand-edited JSONL
  // with a leading newline is still routed to the JSONL decoder.
  const std::size_t first = bytes.find_first_not_of(" \t\r\n");
  if (first == std::string::npos) fail(origin, "empty trace file");
  try {
    TraceFile file =
        bytes[first] == '{' ? decode_jsonl(bytes, origin) : decode_binary(bytes, origin);
    validate_trace_file(file, origin);
    return file;
  } catch (const TraceError&) {
    throw;
  } catch (const io::JsonError& error) {
    fail(origin, std::string("corrupt JSON: ") + error.what());
  } catch (const ContractViolation& error) {
    // Instance/params validation rejected decoded values (e.g. D < 1).
    fail(origin, std::string("invalid trace contents: ") + error.what());
  }
}

void write_trace(const std::filesystem::path& path, const TraceFile& file, Codec codec) {
  const std::string bytes = encode_trace(file, codec);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw TraceError(path.string() + ": cannot open for writing");
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) throw TraceError(path.string() + ": write failed");
}

void write_trace(const std::filesystem::path& path, const TraceFile& file) {
  write_trace(path, file, codec_for_path(path));
}

TraceFile read_trace(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw TraceError(path.string() + ": cannot open (missing file?)");
  std::string bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  if (in.bad()) throw TraceError(path.string() + ": read failed");
  return decode_trace(bytes, path.string());
}

std::string policy_name(sim::SpeedLimitPolicy policy) {
  return policy == sim::SpeedLimitPolicy::kThrow ? "throw" : "clamp";
}

sim::SpeedLimitPolicy policy_from_name(const std::string& name) {
  if (name == "throw") return sim::SpeedLimitPolicy::kThrow;
  if (name == "clamp") return sim::SpeedLimitPolicy::kClamp;
  throw TraceError("unknown speed-limit policy \"" + name + "\"");
}

std::string order_name(sim::ServiceOrder order) {
  return order == sim::ServiceOrder::kMoveThenServe ? "move-then-serve" : "serve-then-move";
}

sim::ServiceOrder order_from_name(const std::string& name) {
  if (name == "move-then-serve") return sim::ServiceOrder::kMoveThenServe;
  if (name == "serve-then-move") return sim::ServiceOrder::kServeThenMove;
  throw TraceError("unknown service order \"" + name + "\"");
}

}  // namespace mobsrv::trace
