/// \file batch_runner.hpp
/// Sharded replay of a trace corpus across a ThreadPool.
///
/// Given a directory (or explicit list) of trace files, the runner shards
/// whole files across workers — one task per file, since files are
/// independent and dominate I/O — runs every requested algorithm on each
/// workload, verifies any recorded runs bit-identically, and aggregates
/// per-algorithm cost/ratio summaries. Results are deterministic and
/// independent of thread count: every entry is computed into its own slot
/// and aggregation happens after the join.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "io/json.hpp"
#include "parallel/thread_pool.hpp"
#include "stats/summary.hpp"
#include "trace/codec.hpp"
#include "trace/replay.hpp"

namespace mobsrv::trace {

struct BatchOptions {
  /// Algorithms to run on every workload; empty → all registered names.
  std::vector<std::string> algorithms;
  double speed_factor = 1.5;  ///< (1+δ) granted to each online algorithm
  std::uint64_t algo_seed = 0;
  /// Also re-run the traces' recorded runs and verify them bit-identically.
  bool verify_recorded = true;
};

/// One (file, algorithm) measurement.
struct BatchEntry {
  std::string file;       ///< file name (no directory)
  std::string scenario;   ///< meta.name
  std::string algorithm;
  double cost = 0.0;
  /// cost / min-cost-across-algorithms on this file (>= 1, best = 1).
  /// 0 when unavailable: the best cost on the file is 0, so a nonzero cost
  /// has no finite ratio (0-cost algorithms still report 1).
  double ratio_vs_best = 0.0;
  /// cost / adversary cost when the trace carries one, else 0.
  double ratio_vs_adversary = 0.0;
};

/// Per-algorithm aggregate over all files.
struct BatchAlgoSummary {
  std::string algorithm;
  stats::Summary cost;
  stats::Summary ratio_vs_best;
  stats::Summary ratio_vs_adversary;  ///< only files with an adversary solution
  int wins = 0;  ///< files where this algorithm was strictly cheapest
};

struct BatchResult {
  std::vector<BatchEntry> entries;          ///< file-major, algorithm-minor order
  std::vector<BatchAlgoSummary> summaries;  ///< one per algorithm, input order
  std::size_t files = 0;
  std::size_t replay_checks = 0;      ///< recorded runs re-verified
  std::size_t replay_mismatches = 0;  ///< recorded runs that failed bit-identity
  double wall_seconds = 0.0;
};

/// All trace files (*.jsonl, *.mtb) directly inside \p dir, sorted by name.
/// Throws TraceError when the directory is missing or holds no traces.
[[nodiscard]] std::vector<std::filesystem::path> list_trace_files(
    const std::filesystem::path& dir);

/// Replays \p files on \p pool. File-level errors (corrupt trace, unknown
/// algorithm) propagate as exceptions — a batch is an all-or-nothing
/// verification artifact.
[[nodiscard]] BatchResult run_batch(par::ThreadPool& pool,
                                    const std::vector<std::filesystem::path>& files,
                                    const BatchOptions& options);

/// Machine-readable form of a batch result (for --json surfaces).
[[nodiscard]] io::Json batch_to_json(const BatchResult& result);

/// Human-readable summary table + footer shared by `mobsrv_trace batch`
/// and `mobsrv_bench --replay`. \p source names the replayed input (a
/// directory); \p threads is the pool size used.
void print_batch_summary(std::ostream& os, const std::string& source, const BatchResult& result,
                         const BatchOptions& options, unsigned threads);

}  // namespace mobsrv::trace
