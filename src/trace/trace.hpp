/// \file trace.hpp
/// The on-disk trace data model: a serializable workload plus any number of
/// recorded engine runs.
///
/// A trace file is the unit of exchange for the whole subsystem: corpus
/// snapshots, `mobsrv_bench --record-dir` output, imported external demand
/// traces and batch-replay inputs are all TraceFiles. Two interchangeable
/// codecs exist (JSONL and a compact binary framing — see codec.hpp); both
/// preserve every double bit-exactly, so replaying a stored instance with
/// the recorded algorithm reproduces the recorded costs bit-identically.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/moving_client.hpp"

namespace mobsrv::trace {

/// Format version written by this build; readers accept only this version.
inline constexpr std::uint32_t kFormatVersion = 1;

/// Provenance of a trace file.
struct TraceMeta {
  std::string name;    ///< scenario name ("theorem1", "import:taxi.csv", ...)
  std::string source;  ///< producing tool/generator ("corpus", "mobsrv_bench", "import")
  std::uint64_t seed = 0;  ///< generator seed (0 when not applicable)
};

/// The adversary's own feasible solution, when the generator provides one
/// (lower-bound constructions). Its cost upper-bounds OPT, so replays can
/// report conservative competitive ratios without re-running a solver.
/// Positions are flat SoA storage (sim::TrajectoryStore) like every other
/// solution path; both codecs serialise them identically to the original
/// Point-vector representation.
struct AdversaryInfo {
  double cost = 0.0;
  sim::TrajectoryStore positions;  ///< P_0..P_T, feasible at speed m
};

/// One recorded engine run: enough to reconstruct the algorithm (registry
/// name + seed), re-run it under identical conditions, and verify the
/// outcome bit-identically.
struct RecordedRun {
  std::string algorithm;        ///< alg::make_algorithm name
  std::uint64_t algo_seed = 0;  ///< seed handed to make_algorithm
  double speed_factor = 1.0;    ///< (1+δ) used for the run
  sim::SpeedLimitPolicy policy = sim::SpeedLimitPolicy::kThrow;
  double total_cost = 0.0;
  double move_cost = 0.0;
  double service_cost = 0.0;
  std::vector<sim::Point> positions;       ///< P_0..P_T
  std::vector<sim::StepCost> step_costs;   ///< optional per-step split (may be empty)
};

/// A complete trace file: workload (+ optional moving-client provenance and
/// adversary solution) and recorded runs.
struct TraceFile {
  TraceFile(TraceMeta meta_in, sim::Instance instance_in)
      : meta(std::move(meta_in)), instance(std::move(instance_in)) {}

  TraceMeta meta;
  sim::Instance instance;
  /// Present when the workload originated as a Moving Client instance
  /// (Section 5): preserves agent speeds and paths the flat request
  /// sequence cannot express.
  std::optional<sim::MovingClientInstance> moving_client;
  std::optional<AdversaryInfo> adversary;
  std::vector<RecordedRun> runs;
};

/// Runs `alg::make_algorithm(algorithm, algo_seed)` on \p instance through
/// the engine and captures the outcome as a RecordedRun (including the
/// per-step cost split).
[[nodiscard]] RecordedRun record_run(const sim::Instance& instance, const std::string& algorithm,
                                     std::uint64_t algo_seed = 0, double speed_factor = 1.0,
                                     sim::SpeedLimitPolicy policy = sim::SpeedLimitPolicy::kThrow);

/// Converts an already-computed engine result into a RecordedRun.
[[nodiscard]] RecordedRun to_recorded_run(std::string algorithm, std::uint64_t algo_seed,
                                          double speed_factor, sim::SpeedLimitPolicy policy,
                                          const sim::RunResult& result);

/// Exact (bitwise on doubles) equality — the codec round-trip contract.
[[nodiscard]] bool identical(const sim::Instance& a, const sim::Instance& b);
[[nodiscard]] bool identical(const RecordedRun& a, const RecordedRun& b);
[[nodiscard]] bool identical(const TraceFile& a, const TraceFile& b);

}  // namespace mobsrv::trace
