/// \file checkpoint.hpp
/// Versioned on-disk codec for session checkpoints.
///
/// A checkpoint file captures the full resumable state of a
/// core::SessionMultiplexer (or a single session — a one-record file):
/// per slot, the spec identity (tenant, algorithm, seed), the workload
/// cursor, and the engine's sim::SessionCheckpoint (fleet positions,
/// accumulated cost split, step index, algorithm internals). Workload
/// request data is NOT stored — checkpoints reference workloads by
/// identity (horizon + slot order), which the restoring process re-supplies
/// from its specs/trace files; this keeps checkpoints small and restart
/// cheap.
///
/// Format: little-endian binary framing ("MSCKPT1\n" magic, format
/// version, record count, length-prefixed records, end tag). Every double
/// round-trips bit-exactly, so `checkpoint → write → read → restore`
/// resumes bit-identically. Truncated, corrupt or version-mismatched files
/// fail loudly with a TraceError naming the offending path and field.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "core/session_multiplexer.hpp"
#include "trace/codec.hpp"

namespace mobsrv::trace {

/// Checkpoint format version written by this build; readers accept only
/// this version (a version bump is a deliberate compatibility break).
inline constexpr std::uint32_t kCheckpointVersion = 1;

/// In-memory encode/decode (the file functions are thin wrappers; these
/// exist for tests and for streaming over other transports). decode throws
/// TraceError on corrupt/truncated input or version mismatch.
[[nodiscard]] std::string encode_checkpoint(
    const std::vector<core::SessionCheckpointRecord>& records);
[[nodiscard]] std::vector<core::SessionCheckpointRecord> decode_checkpoint(
    const std::string& bytes, const std::string& origin);

/// Serialises \p records to \p path. Throws TraceError on I/O failure.
void write_checkpoint(const std::filesystem::path& path,
                      const std::vector<core::SessionCheckpointRecord>& records);

/// The periodic-save entry point: writes \p bytes to a sibling temp file
/// and renames it over \p path, so a crash mid-save never clobbers the
/// previous good checkpoint — the file at \p path is always either the old
/// complete save or the new complete save. Throws TraceError on I/O
/// failure (the temp file is removed). Shared by every periodic saver
/// (mobsrv_serve snapshots ride on it with their own framing).
void write_bytes_atomic(const std::filesystem::path& path, const std::string& bytes);

/// write_checkpoint through write_bytes_atomic: what a long-running service
/// calls on its checkpoint cadence.
void write_checkpoint_atomic(const std::filesystem::path& path,
                             const std::vector<core::SessionCheckpointRecord>& records);

/// Reads a checkpoint file. Throws TraceError on missing/corrupt/truncated
/// input or version mismatch.
[[nodiscard]] std::vector<core::SessionCheckpointRecord> read_checkpoint(
    const std::filesystem::path& path);

}  // namespace mobsrv::trace
