/// \file checkpoint.hpp
/// Versioned on-disk codec for session checkpoints.
///
/// A checkpoint file captures the full resumable state of a
/// core::SessionMultiplexer (or a single session — a one-record file):
/// per slot, the spec identity (tenant, algorithm, seed), the workload
/// cursor, and the engine's sim::SessionCheckpoint (fleet positions,
/// accumulated cost split, step index, algorithm internals). Workload
/// request data is NOT stored — checkpoints reference workloads by
/// identity (horizon + slot order), which the restoring process re-supplies
/// from its specs/trace files; this keeps checkpoints small and restart
/// cheap.
///
/// Format: little-endian binary framing ("MSCKPT1\n" magic, format
/// version, record count, length-prefixed records, end tag). Every double
/// round-trips bit-exactly, so `checkpoint → write → read → restore`
/// resumes bit-identically. Truncated, corrupt or version-mismatched files
/// fail loudly with a TraceError naming the offending path and field.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "core/session_multiplexer.hpp"
#include "trace/codec.hpp"

namespace mobsrv::fault {
class Injector;
}  // namespace mobsrv::fault

namespace mobsrv::trace {

/// Checkpoint format version written by this build; readers accept only
/// this version (a version bump is a deliberate compatibility break).
inline constexpr std::uint32_t kCheckpointVersion = 1;

/// In-memory encode/decode (the file functions are thin wrappers; these
/// exist for tests and for streaming over other transports). decode throws
/// TraceError on corrupt/truncated input or version mismatch.
[[nodiscard]] std::string encode_checkpoint(
    const std::vector<core::SessionCheckpointRecord>& records);
[[nodiscard]] std::vector<core::SessionCheckpointRecord> decode_checkpoint(
    const std::string& bytes, const std::string& origin);

/// Serialises \p records to \p path. Atomic (temp file + rename) since
/// PR 10: the historical plain-ofstream path could leave a half-written
/// checkpoint behind a crash, so no caller is allowed to produce one any
/// more. Throws TraceError on I/O failure.
void write_checkpoint(const std::filesystem::path& path,
                      const std::vector<core::SessionCheckpointRecord>& records);

/// Durability and fault-injection knobs for write_bytes_atomic. The
/// defaults are what every production caller wants: crash-durable, no
/// faults. The site names let a fault plan target the distinct failure
/// points of the atomic-write protocol (payload write, fsync, rename)
/// independently; a null site is simply never hit.
struct AtomicWriteOptions {
  /// fsync the temp file before the rename and the parent directory after
  /// it, so the rename itself survives power loss — without both syncs the
  /// "atomic" save is only atomic against process crashes, not power cuts.
  bool durable = true;
  /// Fault hook (null = disabled, zero cost — the step_latency discipline).
  fault::Injector* faults = nullptr;
  const char* write_site = nullptr;   ///< hit before the payload write
  const char* fsync_site = nullptr;   ///< hit before each fsync
  const char* rename_site = nullptr;  ///< hit before the rename
};

/// fsyncs a file (or, with \p directory, its directory entry's container)
/// by path. POSIX-only; on other platforms this is a no-op and durability
/// degrades to the stream flush the caller already did. Throws TraceError
/// when a FILE sync fails; directory syncs are best-effort (some
/// filesystems refuse to open directories for fsync).
void fsync_path(const std::filesystem::path& path, bool directory = false);

/// The periodic-save entry point: writes \p bytes to a sibling temp file
/// (path + ".tmp"), fsyncs it (options.durable), renames it over \p path,
/// and fsyncs the parent directory — so the file at \p path is always
/// either the old complete save or the new complete save, even across
/// power loss. Throws TraceError on I/O failure (the temp file is
/// removed). Shared by every periodic saver (mobsrv_serve snapshots ride
/// on it with their own framing). Stale ".tmp" files left by a crashed
/// writer are harmless: the next save truncates them, and they are never
/// read.
void write_bytes_atomic(const std::filesystem::path& path, const std::string& bytes,
                        const AtomicWriteOptions& options = {});

/// Synonym for write_checkpoint, kept for the callers that spelled the
/// atomicity out; both run the same temp-file + rename path.
void write_checkpoint_atomic(const std::filesystem::path& path,
                             const std::vector<core::SessionCheckpointRecord>& records);

/// Reads a checkpoint file. Throws TraceError on missing/corrupt/truncated
/// input or version mismatch.
[[nodiscard]] std::vector<core::SessionCheckpointRecord> read_checkpoint(
    const std::filesystem::path& path);

}  // namespace mobsrv::trace
