#include "trace/batch_runner.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <optional>
#include <ostream>

#include "algorithms/registry.hpp"
#include "core/session_multiplexer.hpp"
#include "io/table.hpp"
#include "parallel/parallel_for.hpp"

namespace mobsrv::trace {

std::vector<std::filesystem::path> list_trace_files(const std::filesystem::path& dir) {
  std::error_code ec;
  if (!std::filesystem::is_directory(dir, ec))
    throw TraceError(dir.string() + ": not a directory");
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext == ".jsonl" || ext == ".mtb") files.push_back(entry.path());
  }
  if (files.empty())
    throw TraceError(dir.string() + ": no trace files (*.jsonl, *.mtb) found");
  std::sort(files.begin(), files.end());
  return files;
}

BatchResult run_batch(par::ThreadPool& pool, const std::vector<std::filesystem::path>& files,
                      const BatchOptions& options) {
  MOBSRV_CHECK_MSG(!files.empty(), "batch replay needs at least one trace file");
  const std::vector<std::string> algorithms =
      options.algorithms.empty() ? alg::algorithm_names() : options.algorithms;

  const auto wall_start = std::chrono::steady_clock::now();

  // Phase 1 — load: decode whole files across the pool (one slot per file;
  // decoding dominates I/O).
  std::vector<std::optional<TraceFile>> traces(files.size());
  par::parallel_for(pool, 0, files.size(), 1,
                    [&](std::size_t i) { traces[i].emplace(read_trace(files[i])); });

  // Phase 2 — run: one live session per (file, algorithm), all advanced by
  // the session multiplexer. Each file's workload (flat SoA store) is shared
  // read-only across its k algorithm sessions, and sharding happens at
  // session granularity — finer than the old file-level sharding, so a
  // corpus with one huge trace no longer serialises on a single worker.
  // Grain 1: sessions are whole-workload units of work, and small corpora
  // must still spread across the pool.
  core::SessionMultiplexer mux(pool, /*grain=*/1);
  for (std::size_t i = 0; i < files.size(); ++i) {
    // Non-owning share: `traces` outlives the multiplexer (both are local,
    // mux is declared after and destroyed first), so no instance copy.
    const std::shared_ptr<const sim::Instance> workload(std::shared_ptr<void>(),
                                                        &traces[i]->instance);
    for (const std::string& name : algorithms) {
      core::SessionSpec spec;
      spec.workload = workload;
      spec.algorithm = name;
      spec.algo_seed = options.algo_seed;
      spec.speed_factor = options.speed_factor;
      spec.tenant = files[i].filename().string();
      mux.add(std::move(spec));
    }
  }
  mux.drain();

  // Phase 3 — verify recorded runs bit-identically (per file, in parallel).
  std::vector<std::pair<std::size_t, std::size_t>> checks(files.size(), {0, 0});
  if (options.verify_recorded) {
    par::parallel_for(pool, 0, files.size(), 1, [&](std::size_t i) {
      const ReplayReport report = replay(*traces[i]);
      checks[i].first = report.outcomes.size();
      for (const ReplayOutcome& o : report.outcomes)
        if (!o.match) ++checks[i].second;
    });
  }

  BatchResult result;
  result.files = files.size();
  result.summaries.resize(algorithms.size());
  for (std::size_t a = 0; a < algorithms.size(); ++a)
    result.summaries[a].algorithm = algorithms[a];

  for (std::size_t i = 0; i < files.size(); ++i) {
    std::vector<double> costs(algorithms.size());
    for (std::size_t a = 0; a < algorithms.size(); ++a)
      costs[a] = mux.stats(i * algorithms.size() + a).total_cost;
    const double adversary_cost = traces[i]->adversary ? traces[i]->adversary->cost : 0.0;

    double best = std::numeric_limits<double>::infinity();
    for (const double c : costs) best = std::min(best, c);
    for (std::size_t a = 0; a < algorithms.size(); ++a) {
      BatchEntry entry;
      entry.file = files[i].filename().string();
      entry.scenario = traces[i]->meta.name;
      entry.algorithm = algorithms[a];
      entry.cost = costs[a];
      // best == 0 admits no finite ratio for a nonzero cost; record 0
      // ("unavailable", same convention as ratio_vs_adversary) rather than
      // silently calling an expensive algorithm tied-for-best.
      if (best > 0.0)
        entry.ratio_vs_best = costs[a] / best;
      else
        entry.ratio_vs_best = costs[a] == 0.0 ? 1.0 : 0.0;
      entry.ratio_vs_adversary = adversary_cost > 0.0 ? costs[a] / adversary_cost : 0.0;

      BatchAlgoSummary& summary = result.summaries[a];
      summary.cost.add(entry.cost);
      if (entry.ratio_vs_best > 0.0) summary.ratio_vs_best.add(entry.ratio_vs_best);
      if (entry.ratio_vs_adversary > 0.0)
        summary.ratio_vs_adversary.add(entry.ratio_vs_adversary);
      bool strictly_best = true;
      for (std::size_t b = 0; b < costs.size(); ++b)
        if (b != a && costs[b] <= costs[a]) strictly_best = false;
      if (strictly_best) ++summary.wins;

      result.entries.push_back(std::move(entry));
    }
    result.replay_checks += checks[i].first;
    result.replay_mismatches += checks[i].second;
  }

  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
  return result;
}

io::Json batch_to_json(const BatchResult& result) {
  io::Json root = io::Json::object();
  root.set("files", result.files);
  root.set("replay_checks", result.replay_checks);
  root.set("replay_mismatches", result.replay_mismatches);
  root.set("wall_seconds", result.wall_seconds);

  io::Json summaries = io::Json::array();
  for (const BatchAlgoSummary& s : result.summaries) {
    io::Json row = io::Json::object();
    row.set("algorithm", s.algorithm);
    row.set("mean_cost", s.cost.mean());
    row.set("mean_ratio_vs_best", s.ratio_vs_best.mean());
    if (s.ratio_vs_adversary.count() > 0)
      row.set("mean_ratio_vs_adversary", s.ratio_vs_adversary.mean());
    row.set("wins", s.wins);
    summaries.push_back(std::move(row));
  }
  root.set("algorithms", std::move(summaries));

  io::Json entries = io::Json::array();
  for (const BatchEntry& e : result.entries) {
    io::Json row = io::Json::object();
    row.set("file", e.file);
    row.set("scenario", e.scenario);
    row.set("algorithm", e.algorithm);
    row.set("cost", e.cost);
    row.set("ratio_vs_best", e.ratio_vs_best);
    if (e.ratio_vs_adversary > 0.0) row.set("ratio_vs_adversary", e.ratio_vs_adversary);
    entries.push_back(std::move(row));
  }
  root.set("entries", std::move(entries));
  return root;
}

void print_batch_summary(std::ostream& os, const std::string& source, const BatchResult& result,
                         const BatchOptions& options, unsigned threads) {
  io::Table table("Batch replay of " + source + " (" + std::to_string(result.files) +
                      " traces, speed factor " + io::format_double(options.speed_factor) + ")",
                  {"algorithm", "mean cost", "mean ratio vs best", "wins"});
  for (const BatchAlgoSummary& s : result.summaries)
    table.row()
        .cell(s.algorithm)
        .cell(s.cost.mean(), 5)
        .cell(s.ratio_vs_best.mean(), 4)
        .cell(s.wins)
        .done();
  table.print(os);
  os << "  replayed " << result.files << " trace(s) in "
     << io::format_double(result.wall_seconds, 3) << " s on " << threads
     << " thread(s); recorded-run checks: " << result.replay_checks << " ("
     << result.replay_mismatches << " mismatches)\n";
}

}  // namespace mobsrv::trace
