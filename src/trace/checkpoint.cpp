#include "trace/checkpoint.hpp"

#include <bit>
#include <cstring>
#include <fstream>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

#include "fault/injector.hpp"

static_assert(std::endian::native == std::endian::little,
              "the checkpoint codec assumes a little-endian host");

namespace mobsrv::trace {

namespace {

constexpr char kMagic[8] = {'M', 'S', 'C', 'K', 'P', 'T', '1', '\n'};

enum RecordTag : std::uint8_t {
  kRecordSession = 1,
  kRecordEnd = 0xFF,
};

[[noreturn]] void fail(const std::string& origin, const std::string& message) {
  throw TraceError(origin + ": " + message);
}

void put_u8(std::string& out, std::uint8_t v) { out.push_back(static_cast<char>(v)); }

void put_u32(std::string& out, std::uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out.append(buf, 4);
}

void put_u64(std::string& out, std::uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out.append(buf, 8);
}

void put_f64(std::string& out, double v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out.append(buf, 8);
}

void put_str(std::string& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out += s;
}

void put_point(std::string& out, const sim::Point& p) {
  put_u8(out, static_cast<std::uint8_t>(p.dim()));
  for (int i = 0; i < p.dim(); ++i) put_f64(out, p[i]);
}

void put_points(std::string& out, const std::vector<sim::Point>& points) {
  put_u64(out, points.size());
  for (const sim::Point& p : points) put_point(out, p);
}

void encode_record(std::string& payload, const core::SessionCheckpointRecord& record) {
  put_str(payload, record.tenant);
  put_str(payload, record.algorithm);
  put_u64(payload, record.algo_seed);
  put_u64(payload, record.cursor);
  put_u64(payload, record.horizon);

  const sim::SessionCheckpoint& engine = record.engine;
  put_u8(payload, engine.params.order == sim::ServiceOrder::kMoveThenServe ? 0 : 1);
  put_f64(payload, engine.params.move_cost_weight);
  put_f64(payload, engine.params.max_step);
  put_f64(payload, engine.speed_factor);
  put_u8(payload, engine.policy == sim::SpeedLimitPolicy::kThrow ? 0 : 1);
  put_u64(payload, engine.step);
  put_f64(payload, engine.move_cost);
  put_f64(payload, engine.service_cost);
  put_points(payload, engine.servers);
  put_u64(payload, engine.server_move.size());
  for (double move : engine.server_move) put_f64(payload, move);
  put_str(payload, engine.algorithm);
  const sim::AlgorithmState& state = engine.algorithm_state;
  put_u64(payload, state.words.size());
  for (std::uint64_t w : state.words) put_u64(payload, w);
  put_u64(payload, state.reals.size());
  for (double r : state.reals) put_f64(payload, r);
  put_points(payload, state.points);
}

/// Bounds-checked cursor over the payload; every read names the field being
/// decoded so truncation errors are actionable.
class Reader {
 public:
  Reader(const std::string& bytes, std::string origin)
      : bytes_(bytes), origin_(std::move(origin)) {}

  void set_context(const char* what) { context_ = what; }
  [[nodiscard]] std::size_t pos() const noexcept { return pos_; }
  [[nodiscard]] std::size_t size() const noexcept { return bytes_.size(); }
  [[nodiscard]] const std::string& origin() const noexcept { return origin_; }

  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(bytes_[pos_++]);
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v;
    std::memcpy(&v, bytes_.data() + pos_, 4);
    pos_ += 4;
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v;
    std::memcpy(&v, bytes_.data() + pos_, 8);
    pos_ += 8;
    return v;
  }
  double f64() {
    need(8);
    double v;
    std::memcpy(&v, bytes_.data() + pos_, 8);
    pos_ += 8;
    return v;
  }
  std::string str() {
    const std::uint32_t n = u32();
    if (n > bytes_.size() - pos_)
      fail(origin_, std::string("corrupt ") + context_ + ": implausible string length " +
                        std::to_string(n));
    std::string s = bytes_.substr(pos_, n);
    pos_ += n;
    return s;
  }
  sim::Point point() {
    const int dim = u8();
    if (dim < 1 || dim > sim::Point::kMaxDim)
      fail(origin_, std::string("corrupt ") + context_ + ": point dimension " +
                        std::to_string(dim) + " out of range [1, " +
                        std::to_string(sim::Point::kMaxDim) + "]");
    sim::Point p(dim);
    for (int i = 0; i < dim; ++i) p[i] = f64();
    return p;
  }
  std::uint64_t count(const char* what, std::size_t bytes_per_item) {
    const std::uint64_t n = u64();
    if (n > bytes_.size() / bytes_per_item + 1)
      fail(origin_, std::string("corrupt ") + context_ + ": implausible " + what + " count " +
                        std::to_string(n));
    return n;
  }
  std::vector<sim::Point> points() {
    const std::uint64_t n = count("point", 9);
    std::vector<sim::Point> out;
    out.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) out.push_back(point());
    return out;
  }

 private:
  void need(std::size_t n) {
    if (pos_ + n > bytes_.size())
      fail(origin_, std::string("truncated: unexpected end of file while reading ") + context_ +
                        " (at byte " + std::to_string(pos_) + " of " +
                        std::to_string(bytes_.size()) + ")");
  }

  const std::string& bytes_;
  std::string origin_;
  const char* context_ = "header";
  std::size_t pos_ = 0;
};

core::SessionCheckpointRecord decode_record(Reader& r) {
  core::SessionCheckpointRecord record;
  record.tenant = r.str();
  record.algorithm = r.str();
  record.algo_seed = r.u64();
  record.cursor = r.u64();
  record.horizon = r.u64();
  if (record.cursor > record.horizon)
    fail(r.origin(), "corrupt session record: cursor " + std::to_string(record.cursor) +
                         " beyond horizon " + std::to_string(record.horizon));

  sim::SessionCheckpoint& engine = record.engine;
  engine.params.order =
      r.u8() == 0 ? sim::ServiceOrder::kMoveThenServe : sim::ServiceOrder::kServeThenMove;
  engine.params.move_cost_weight = r.f64();
  engine.params.max_step = r.f64();
  engine.speed_factor = r.f64();
  engine.policy = r.u8() == 0 ? sim::SpeedLimitPolicy::kThrow : sim::SpeedLimitPolicy::kClamp;
  engine.step = r.u64();
  engine.move_cost = r.f64();
  engine.service_cost = r.f64();
  engine.servers = r.points();
  const std::uint64_t splits = r.count("move-split", 8);
  engine.server_move.reserve(splits);
  for (std::uint64_t i = 0; i < splits; ++i) engine.server_move.push_back(r.f64());
  engine.algorithm = r.str();
  sim::AlgorithmState& state = engine.algorithm_state;
  const std::uint64_t words = r.count("state word", 8);
  state.words.reserve(words);
  for (std::uint64_t i = 0; i < words; ++i) state.words.push_back(r.u64());
  const std::uint64_t reals = r.count("state real", 8);
  state.reals.reserve(reals);
  for (std::uint64_t i = 0; i < reals; ++i) state.reals.push_back(r.f64());
  state.points = r.points();

  if (engine.servers.empty())
    fail(r.origin(), "corrupt session record: no server positions");
  if (engine.server_move.size() != engine.servers.size())
    fail(r.origin(), "corrupt session record: per-server move split holds " +
                         std::to_string(engine.server_move.size()) + " entries for " +
                         std::to_string(engine.servers.size()) + " servers");
  if (engine.step != record.cursor)
    fail(r.origin(), "corrupt session record: engine step " + std::to_string(engine.step) +
                         " disagrees with cursor " + std::to_string(record.cursor));
  return record;
}

}  // namespace

std::string encode_checkpoint(const std::vector<core::SessionCheckpointRecord>& records) {
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  put_u32(out, kCheckpointVersion);
  put_u64(out, records.size());

  std::string payload;
  for (const core::SessionCheckpointRecord& record : records) {
    payload.clear();
    encode_record(payload, record);
    put_u8(out, kRecordSession);
    put_u64(out, payload.size());
    out += payload;
  }
  put_u8(out, kRecordEnd);
  put_u64(out, 0);
  return out;
}

std::vector<core::SessionCheckpointRecord> decode_checkpoint(const std::string& bytes,
                                                             const std::string& origin) {
  Reader r(bytes, origin);
  r.set_context("magic");
  if (bytes.size() < sizeof(kMagic) || std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0)
    fail(origin, "not a mobsrv checkpoint file (bad magic)");
  for (std::size_t i = 0; i < sizeof(kMagic); ++i) (void)r.u8();
  r.set_context("version");
  const std::uint32_t version = r.u32();
  if (version != kCheckpointVersion)
    fail(origin, "unsupported checkpoint format version " + std::to_string(version) +
                     " (this build reads version " + std::to_string(kCheckpointVersion) + ")");
  r.set_context("record count");
  const std::uint64_t expected = r.u64();
  if (expected > bytes.size())
    fail(origin, "corrupt header: implausible record count " + std::to_string(expected));

  std::vector<core::SessionCheckpointRecord> records;
  records.reserve(expected);
  bool saw_end = false;
  while (!saw_end) {
    r.set_context("record header");
    const std::uint8_t tag = r.u8();
    const std::uint64_t size = r.u64();
    if (size > r.size() - r.pos())
      fail(origin, "truncated: record (tag " + std::to_string(tag) + ") declares " +
                       std::to_string(size) + " bytes but only " +
                       std::to_string(r.size() - r.pos()) + " remain");
    const std::size_t record_start = r.pos();
    switch (tag) {
      case kRecordSession:
        r.set_context("session record");
        records.push_back(decode_record(r));
        break;
      case kRecordEnd:
        if (size != 0) fail(origin, "corrupt end record");
        saw_end = true;
        break;
      default:
        fail(origin, "unknown record tag " + std::to_string(tag) +
                         " (corrupt file or newer format)");
    }
    if (tag != kRecordEnd && r.pos() - record_start != size)
      fail(origin, "corrupt session record: payload declares " + std::to_string(size) +
                       " bytes, decoder consumed " + std::to_string(r.pos() - record_start));
  }
  if (r.pos() != r.size()) fail(origin, "trailing data after end record");
  if (records.size() != expected)
    fail(origin, "corrupt file: header announces " + std::to_string(expected) +
                     " sessions, found " + std::to_string(records.size()));
  return records;
}

void fsync_path(const std::filesystem::path& path, bool directory) {
#if defined(__unix__) || defined(__APPLE__)
  const int flags = directory ? (O_RDONLY | O_DIRECTORY) : O_RDONLY;
  const int fd = ::open(path.c_str(), flags);
  if (fd < 0) {
    // Some filesystems refuse to open directories for fsync; the file-level
    // sync already happened, so a directory open failure is best-effort.
    if (directory) return;
    throw TraceError(path.string() + ": cannot open for fsync");
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0 && !directory) throw TraceError(path.string() + ": fsync failed");
#else
  (void)path;
  (void)directory;
#endif
}

void write_checkpoint(const std::filesystem::path& path,
                      const std::vector<core::SessionCheckpointRecord>& records) {
  write_bytes_atomic(path, encode_checkpoint(records));
}

void write_bytes_atomic(const std::filesystem::path& path, const std::string& bytes,
                        const AtomicWriteOptions& options) {
  std::filesystem::path tmp = path;
  tmp += ".tmp";
  {
    if (options.faults != nullptr && options.write_site != nullptr)
      options.faults->hit(options.write_site);
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw TraceError(tmp.string() + ": cannot open for writing");
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      std::error_code ignored;
      std::filesystem::remove(tmp, ignored);
      throw TraceError(tmp.string() + ": write failed");
    }
  }
  if (options.durable) {
    try {
      if (options.faults != nullptr && options.fsync_site != nullptr)
        options.faults->hit(options.fsync_site);
      fsync_path(tmp, /*directory=*/false);
    } catch (...) {
      std::error_code ignored;
      std::filesystem::remove(tmp, ignored);
      throw;
    }
  }
  if (options.faults != nullptr && options.rename_site != nullptr) {
    try {
      options.faults->hit(options.rename_site);
    } catch (...) {
      std::error_code ignored;
      std::filesystem::remove(tmp, ignored);
      throw;
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::error_code ignored;
    std::filesystem::remove(tmp, ignored);
    throw TraceError(path.string() + ": atomic rename failed: " + ec.message());
  }
  // The rename is only on disk once the directory entry is — fsync the
  // parent, or a power cut can roll the whole save back.
  if (options.durable) {
    if (options.faults != nullptr && options.fsync_site != nullptr)
      options.faults->hit(options.fsync_site);
    const std::filesystem::path parent = path.has_parent_path()
                                             ? path.parent_path()
                                             : std::filesystem::path(".");
    fsync_path(parent, /*directory=*/true);
  }
}

void write_checkpoint_atomic(const std::filesystem::path& path,
                             const std::vector<core::SessionCheckpointRecord>& records) {
  write_bytes_atomic(path, encode_checkpoint(records));
}

std::vector<core::SessionCheckpointRecord> read_checkpoint(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw TraceError(path.string() + ": cannot open (missing file?)");
  std::string bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  if (in.bad()) throw TraceError(path.string() + ": read failed");
  return decode_checkpoint(bytes, path.string());
}

}  // namespace mobsrv::trace
