/// \file rng.hpp
/// Deterministic, splittable random number generation.
///
/// Experiments must be reproducible independent of thread count and
/// scheduling, so every trial seeds its own generator from a stable key
/// (experiment id, sweep row, trial index) via SplitMix64; the stream itself
/// is xoshiro256** (Blackman–Vigna). All floating-point draws are
/// implemented here (not via std:: distributions) so results are identical
/// across standard libraries.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "common/contracts.hpp"

namespace mobsrv::stats {

/// SplitMix64 step; used for seeding and key mixing.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Mixes an arbitrary list of 64-bit keys into one seed. Order-sensitive.
[[nodiscard]] constexpr std::uint64_t mix_keys(std::initializer_list<std::uint64_t> keys) noexcept {
  std::uint64_t s = 0x243f6a8885a308d3ULL;  // pi digits
  for (std::uint64_t k : keys) {
    s ^= k + 0x9e3779b97f4a7c15ULL + (s << 6) + (s >> 2);
    (void)splitmix64(s);
  }
  return splitmix64(s);
}

/// Stable 64-bit hash of a string (FNV-1a); lets experiments key RNG streams
/// by name.
[[nodiscard]] constexpr std::uint64_t hash_name(std::string_view name) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : name) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Raw serializable Rng state: the four xoshiro words plus the Box–Muller
/// cache. Restoring it resumes the stream bit-identically — checkpointed
/// randomized algorithms depend on this.
struct RngState {
  std::array<std::uint64_t, 4> words{};
  double cached_normal = 0.0;
  bool has_cached_normal = false;
};

/// xoshiro256** PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four-word state via SplitMix64 from a single seed.
  explicit Rng(std::uint64_t seed = 0xfeedfacecafebeefULL) noexcept { reseed(seed); }

  /// Seeds from a list of keys (experiment, row, trial, ...).
  explicit Rng(std::initializer_list<std::uint64_t> keys) noexcept : Rng(mix_keys(keys)) {}

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Derives an independent child generator; the parent advances once.
  [[nodiscard]] Rng split() noexcept { return Rng(mix_keys({(*this)(), 0x5eedULL})); }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    MOBSRV_CHECK(lo <= hi);
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) return static_cast<std::int64_t>((*this)());  // full 64-bit range
    // Lemire-style rejection-free-ish multiply-shift with rejection for
    // exactness on small spans.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * span;
    auto lowbits = static_cast<std::uint64_t>(m);
    if (lowbits < span) {
      const std::uint64_t threshold = (0 - span) % span;
      while (lowbits < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * span;
        lowbits = static_cast<std::uint64_t>(m);
      }
    }
    return lo + static_cast<std::int64_t>(m >> 64);
  }

  /// Fair coin.
  [[nodiscard]] bool coin() noexcept { return ((*this)() >> 63) != 0; }

  /// Bernoulli with success probability p.
  [[nodiscard]] bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Standard normal via Box–Muller (cached second deviate).
  [[nodiscard]] double normal() noexcept;

  /// Normal with the given mean and standard deviation.
  [[nodiscard]] double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Exponential with the given rate lambda > 0.
  [[nodiscard]] double exponential(double lambda);

  /// Poisson-distributed count with the given mean (Knuth for small means,
  /// normal approximation above 64).
  [[nodiscard]] int poisson(double mean);

  /// Snapshot of the full generator state (checkpoint support).
  [[nodiscard]] RngState state() const noexcept {
    return {{s_[0], s_[1], s_[2], s_[3]}, cached_normal_, has_cached_normal_};
  }

  /// Resumes the stream captured by state() bit-identically.
  void set_state(const RngState& state) noexcept {
    for (int i = 0; i < 4; ++i) s_[i] = state.words[static_cast<std::size_t>(i)];
    cached_normal_ = state.cached_normal;
    has_cached_normal_ = state.has_cached_normal;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace mobsrv::stats
