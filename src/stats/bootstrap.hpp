/// \file bootstrap.hpp
/// Percentile-bootstrap confidence intervals for experiment tables.
#pragma once

#include <span>

#include "stats/rng.hpp"

namespace mobsrv::stats {

/// Two-sided confidence interval.
struct Interval {
  double lo = 0.0;
  double hi = 0.0;
  [[nodiscard]] double width() const noexcept { return hi - lo; }
  [[nodiscard]] bool contains(double v) const noexcept { return v >= lo && v <= hi; }
};

/// Percentile bootstrap CI for the mean of \p xs at the given confidence
/// level (e.g. 0.95), using \p resamples bootstrap replicates drawn from
/// \p rng. Degenerates to [x, x] for a single sample.
[[nodiscard]] Interval bootstrap_mean_ci(std::span<const double> xs, double confidence, int resamples,
                                         Rng& rng);

}  // namespace mobsrv::stats
