/// \file regression.hpp
/// Ordinary least squares and log-log growth-exponent fitting.
///
/// The paper's claims are asymptotic (ratio = Ω(√T), Ω(1/δ), O(1/δ^{3/2}),
/// …). The experiment harness turns each claim into a measurable *growth
/// exponent*: fit log(ratio) against log(parameter) and compare the slope
/// with the exponent the theorem predicts.
#pragma once

#include <span>

#include "common/contracts.hpp"

namespace mobsrv::stats {

/// Result of a simple linear regression y ≈ slope·x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double slope_stderr = 0.0;  ///< standard error of the slope estimate
  double r2 = 0.0;            ///< coefficient of determination
  int n = 0;
};

/// OLS fit of y against x. Requires at least two distinct x values.
[[nodiscard]] LinearFit linear_fit(std::span<const double> x, std::span<const double> y);

/// Fits y ≈ c·x^e by OLS on (log x, log y); returns slope = e.
/// All inputs must be strictly positive.
[[nodiscard]] LinearFit loglog_fit(std::span<const double> x, std::span<const double> y);

/// Theil–Sen slope (median of pairwise slopes): robust alternative used by
/// property tests so that a single noisy trial cannot flip a monotonicity
/// verdict. Requires at least two distinct x values.
[[nodiscard]] double theil_sen_slope(std::span<const double> x, std::span<const double> y);

}  // namespace mobsrv::stats
