#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>

namespace mobsrv::stats {

double Summary::stddev() const noexcept { return std::sqrt(variance()); }

double Summary::stderr_mean() const noexcept {
  return n_ < 2 ? 0.0 : stddev() / std::sqrt(static_cast<double>(n_));
}

double quantile(std::span<const double> xs, double p) {
  MOBSRV_CHECK_MSG(!xs.empty(), "quantile of empty sample");
  MOBSRV_CHECK(p >= 0.0 && p <= 1.0);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double idx = p * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace mobsrv::stats
