#include "stats/regression.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace mobsrv::stats {

LinearFit linear_fit(std::span<const double> x, std::span<const double> y) {
  MOBSRV_CHECK_MSG(x.size() == y.size(), "x/y size mismatch");
  MOBSRV_CHECK_MSG(x.size() >= 2, "need at least two samples");
  const auto n = static_cast<double>(x.size());
  double sx = 0.0, sy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / n, my = sy / n;
  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx, dy = y[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  MOBSRV_CHECK_MSG(sxx > 0.0, "x values must not all coincide");
  LinearFit fit;
  fit.n = static_cast<int>(x.size());
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  double ss_res = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double resid = y[i] - (fit.slope * x[i] + fit.intercept);
    ss_res += resid * resid;
  }
  fit.r2 = syy > 0.0 ? 1.0 - ss_res / syy : 1.0;
  if (x.size() > 2) {
    const double sigma2 = ss_res / (n - 2.0);
    fit.slope_stderr = std::sqrt(sigma2 / sxx);
  }
  return fit;
}

LinearFit loglog_fit(std::span<const double> x, std::span<const double> y) {
  MOBSRV_CHECK(x.size() == y.size());
  std::vector<double> lx(x.size()), ly(y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    MOBSRV_CHECK_MSG(x[i] > 0.0 && y[i] > 0.0, "log-log fit needs positive data");
    lx[i] = std::log(x[i]);
    ly[i] = std::log(y[i]);
  }
  return linear_fit(lx, ly);
}

double theil_sen_slope(std::span<const double> x, std::span<const double> y) {
  MOBSRV_CHECK(x.size() == y.size());
  MOBSRV_CHECK(x.size() >= 2);
  std::vector<double> slopes;
  slopes.reserve(x.size() * (x.size() - 1) / 2);
  for (std::size_t i = 0; i < x.size(); ++i)
    for (std::size_t j = i + 1; j < x.size(); ++j)
      if (x[i] != x[j]) slopes.push_back((y[j] - y[i]) / (x[j] - x[i]));
  MOBSRV_CHECK_MSG(!slopes.empty(), "x values must not all coincide");
  const auto mid = slopes.begin() + static_cast<std::ptrdiff_t>(slopes.size() / 2);
  std::nth_element(slopes.begin(), mid, slopes.end());
  if (slopes.size() % 2 == 1) return *mid;
  const double upper = *mid;
  const double lower = *std::max_element(slopes.begin(), mid);
  return 0.5 * (lower + upper);
}

}  // namespace mobsrv::stats
