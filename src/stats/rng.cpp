#include "stats/rng.hpp"

#include <cmath>

namespace mobsrv::stats {

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; u1 in (0,1] to avoid log(0).
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 == 0.0);
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * 3.14159265358979323846 * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::exponential(double lambda) {
  MOBSRV_CHECK_MSG(lambda > 0.0, "exponential rate must be positive");
  double u = 0.0;
  do {
    u = uniform();
  } while (u == 0.0);
  return -std::log(u) / lambda;
}

int Rng::poisson(double mean) {
  MOBSRV_CHECK_MSG(mean >= 0.0, "poisson mean must be non-negative");
  if (mean == 0.0) return 0;
  if (mean > 64.0) {
    // Normal approximation with continuity correction; adequate for
    // workload generation (we only need plausible batch sizes).
    const double draw = normal(mean, std::sqrt(mean));
    return draw < 0.0 ? 0 : static_cast<int>(draw + 0.5);
  }
  const double limit = std::exp(-mean);
  double product = uniform();
  int count = 0;
  while (product > limit) {
    ++count;
    product *= uniform();
  }
  return count;
}

}  // namespace mobsrv::stats
