#include "stats/bootstrap.hpp"

#include <vector>

#include "stats/summary.hpp"

namespace mobsrv::stats {

Interval bootstrap_mean_ci(std::span<const double> xs, double confidence, int resamples, Rng& rng) {
  MOBSRV_CHECK_MSG(!xs.empty(), "bootstrap of empty sample");
  MOBSRV_CHECK(confidence > 0.0 && confidence < 1.0);
  MOBSRV_CHECK(resamples >= 1);
  if (xs.size() == 1) return {xs[0], xs[0]};
  std::vector<double> means;
  means.reserve(static_cast<std::size_t>(resamples));
  const auto n = static_cast<std::int64_t>(xs.size());
  for (int b = 0; b < resamples; ++b) {
    double sum = 0.0;
    for (std::int64_t i = 0; i < n; ++i) sum += xs[static_cast<std::size_t>(rng.uniform_int(0, n - 1))];
    means.push_back(sum / static_cast<double>(n));
  }
  const double alpha = 1.0 - confidence;
  return {quantile(means, alpha / 2.0), quantile(means, 1.0 - alpha / 2.0)};
}

}  // namespace mobsrv::stats
