/// \file summary.hpp
/// Streaming summary statistics (Welford) and batched descriptive stats.
#pragma once

#include <cstddef>
#include <limits>
#include <span>
#include <vector>

#include "common/contracts.hpp"

namespace mobsrv::stats {

/// Numerically stable streaming mean/variance accumulator (Welford).
/// Mergeable, so parallel trials can reduce partial accumulators.
class Summary {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  /// Merges another accumulator (Chan et al. parallel variance).
  void merge(const Summary& o) noexcept {
    if (o.n_ == 0) return;
    if (n_ == 0) {
      *this = o;
      return;
    }
    const double delta = o.mean_ - mean_;
    const auto n = static_cast<double>(n_), on = static_cast<double>(o.n_);
    const double total = n + on;
    m2_ += o.m2_ + delta * delta * n * on / total;
    mean_ += delta * on / total;
    n_ += o.n_;
    if (o.min_ < min_) min_ = o.min_;
    if (o.max_ > max_) max_ = o.max_;
  }

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
  }
  [[nodiscard]] double stddev() const noexcept;

  /// Standard error of the mean; 0 for fewer than two samples.
  [[nodiscard]] double stderr_mean() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// p-quantile (0 <= p <= 1) with linear interpolation; copies and sorts.
[[nodiscard]] double quantile(std::span<const double> xs, double p);

/// Median convenience wrapper.
[[nodiscard]] inline double median_of(std::span<const double> xs) { return quantile(xs, 0.5); }

}  // namespace mobsrv::stats
