/// \file injector.hpp
/// Seeded, deterministic fault injection for the serve/persistence stack.
///
/// The serve layer's fault-tolerance claims (retry + degraded mode,
/// power-loss-safe snapshots, kill → --resume bit-identity) are only worth
/// anything if the failures that exercise them are reproducible. This
/// subsystem makes them so: hot paths register *named fault sites* —
/// fixed strings like "snapshot.delta_append" — and query them through a
/// null-checked hook that costs nothing when no injector is attached (the
/// same discipline as sim::RunOptions::step_latency):
///
///     if (faults != nullptr) faults->hit(fault::kSiteSnapshotRename);
///
/// An Injector holds rules (usually parsed from a --fault-plan JSON file,
/// see plan.hpp) that decide deterministically what each hit does: nothing,
/// an injected delay, a thrown FaultError (the code under test must treat
/// it exactly like a real I/O failure), or a hard crash (std::_Exit — no
/// flush, no destructors — the honest model of power loss for the
/// kill-at-checkpoint-phase soaks). Probabilistic rules draw from a
/// stats::Rng seeded from (plan seed, site name), so a given plan fires the
/// same hits on every run, on every machine.
///
/// Everything here is test/torture machinery: a production service simply
/// never attaches an injector, and the serve/fault_hook_overhead perf row
/// pins the disabled hook's cost within the existing 2% obs discipline.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "stats/rng.hpp"

namespace mobsrv::fault {

/// Thrown by Injector::hit when a rule fires with Outcome::kFail. Callers
/// must handle it exactly like the real failure the site models (a full
/// disk, a failed rename) — the retry/degraded tests depend on that.
class FaultError : public std::runtime_error {
 public:
  explicit FaultError(const std::string& what) : std::runtime_error(what) {}
};

/// What a firing rule does to the hitting thread.
enum class Outcome {
  kFail,   ///< throw FaultError (a recoverable I/O-style failure)
  kCrash,  ///< std::_Exit(kCrashExitCode): no flush, no atexit — power loss
  kDelay,  ///< sleep delay_us and return normally (latency injection only)
};

/// Exit code of an Outcome::kCrash firing; CI soaks assert on it to
/// distinguish an injected crash from an ordinary failure.
inline constexpr int kCrashExitCode = 86;

/// The fault sites this build wires (plan validation rejects any other
/// name). Hot paths pass these constants so a typo cannot silently create
/// a site nothing ever hits.
inline constexpr const char* kSiteSnapshotBaseWrite = "snapshot.base_write";
inline constexpr const char* kSiteSnapshotDeltaAppend = "snapshot.delta_append";
inline constexpr const char* kSiteSnapshotRename = "snapshot.rename";
inline constexpr const char* kSiteSnapshotFsync = "snapshot.fsync";
inline constexpr const char* kSiteMetricsWrite = "metrics.write";
inline constexpr const char* kSiteServeRead = "serve.read";
inline constexpr const char* kSiteTenantStep = "tenant.step";

/// All known site names, for plan validation and --help text.
[[nodiscard]] const std::vector<std::string>& known_sites();

/// One scheduled fault. Triggers compose with OR: the rule fires on a hit
/// when ANY armed trigger matches (nth-hit, every-Nth, seeded coin).
/// `count` caps the total firings; a fully spent rule never fires again —
/// "fail the first 3 appends, then recover" is {every: 1, count: 3}.
struct SiteRule {
  std::string site;           ///< which site this rule watches (a known_sites name)
  std::uint64_t nth = 0;      ///< fire on exactly the Nth hit (1-based; 0 = off)
  std::uint64_t every = 0;    ///< fire on every hit divisible by N (0 = off)
  double probability = 0.0;   ///< fire on a seeded coin per hit (0 = off)
  std::uint64_t count = 0;    ///< max firings (0 = unlimited)
  std::uint64_t delay_us = 0; ///< injected latency on each firing (any outcome)
  Outcome outcome = Outcome::kFail;
};

/// Deterministic fault scheduler. Not thread-safe: the serve loop hits
/// sites from its frame thread only (the mux workers never hold one).
class Injector {
 public:
  explicit Injector(std::uint64_t seed = 0) : seed_(seed) {}

  /// Registers a rule. A rule with no armed trigger never fires.
  void add_rule(SiteRule rule);

  /// The hot hook: counts the hit, evaluates this site's rules, and — when
  /// one fires — sleeps the rule's delay, then throws FaultError (kFail),
  /// terminates the process (kCrash), or returns normally (kDelay).
  void hit(std::string_view site);

  /// Per-site accounting, for tests and the chaos reports.
  struct SiteStats {
    std::uint64_t hits = 0;   ///< times the site was queried
    std::uint64_t fired = 0;  ///< times any rule fired on it
  };
  [[nodiscard]] SiteStats stats(std::string_view site) const;
  /// Total rule firings across every site.
  [[nodiscard]] std::uint64_t total_fired() const noexcept { return total_fired_; }
  /// True when no rules are registered (the injector is inert).
  [[nodiscard]] bool empty() const noexcept { return sites_.empty(); }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

 private:
  struct RuleState {
    SiteRule rule;
    stats::Rng rng;  ///< seeded from (injector seed, site, rule index)
    std::uint64_t fired = 0;
    explicit RuleState(SiteRule r, std::uint64_t seed)
        : rule(std::move(r)), rng(seed) {}
  };
  struct SiteState {
    std::uint64_t hits = 0;
    std::uint64_t fired = 0;
    std::vector<RuleState> rules;
  };

  std::uint64_t seed_;
  std::uint64_t total_fired_ = 0;
  std::uint64_t rules_added_ = 0;
  std::unordered_map<std::string, SiteState> sites_;
};

}  // namespace mobsrv::fault
