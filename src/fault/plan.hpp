/// \file plan.hpp
/// --fault-plan JSON: a declarative, validated fault schedule.
///
/// A plan file names the seed and the rules an Injector should run:
///
///     {"v": 1, "seed": 7, "faults": [
///       {"site": "snapshot.delta_append", "every": 1, "count": 3},
///       {"site": "snapshot.rename", "nth": 2, "outcome": "crash"},
///       {"site": "serve.read", "probability": 0.01,
///        "delay_us": 250, "outcome": "delay"}
///     ]}
///
/// Validation follows the scenario-file discipline (src/scenario/): every
/// member must be on the allowlist, site names must be registered fault
/// sites (fault::known_sites), each rule needs at least one armed trigger,
/// and every error names the offending rule — a fault plan with a typo'd
/// trigger would otherwise "pass" by never firing, which is the one
/// failure mode a torture harness cannot afford.
#pragma once

#include <cstdint>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "fault/injector.hpp"

namespace mobsrv::fault {

/// Thrown on malformed plan text or an unreadable plan file. mobsrv_serve
/// maps it to a usage error (exit 2): a bad plan is a bad command line.
class PlanError : public std::runtime_error {
 public:
  explicit PlanError(const std::string& what) : std::runtime_error(what) {}
};

/// Plan format version accepted by parse_plan.
inline constexpr std::uint64_t kPlanVersion = 1;

/// A parsed plan: the injector seed plus the rule list, in file order.
struct FaultPlan {
  std::uint64_t seed = 0;
  std::vector<SiteRule> rules;
};

/// Parses and validates plan JSON. \p origin names the source (file path)
/// in error messages. Throws PlanError.
[[nodiscard]] FaultPlan parse_plan(const std::string& text, const std::string& origin);

/// Reads and parses a plan file. Throws PlanError on I/O or parse failure.
[[nodiscard]] FaultPlan load_plan(const std::filesystem::path& path);

/// Builds the injector a plan describes (seed + every rule registered).
[[nodiscard]] Injector make_injector(const FaultPlan& plan);

}  // namespace mobsrv::fault
