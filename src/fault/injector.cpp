#include "fault/injector.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

namespace mobsrv::fault {

const std::vector<std::string>& known_sites() {
  static const std::vector<std::string> sites = {
      kSiteSnapshotBaseWrite, kSiteSnapshotDeltaAppend, kSiteSnapshotRename,
      kSiteSnapshotFsync,     kSiteMetricsWrite,        kSiteServeRead,
      kSiteTenantStep,
  };
  return sites;
}

void Injector::add_rule(SiteRule rule) {
  // Each rule owns its own RNG stream, keyed by injector seed, site name
  // and registration order — adding a rule never perturbs another rule's
  // coin flips, so plans stay deterministic under editing.
  const std::uint64_t rule_seed =
      stats::mix_keys({seed_, stats::hash_name(rule.site), rules_added_++});
  SiteState& site = sites_[rule.site];
  site.rules.emplace_back(std::move(rule), rule_seed);
}

void Injector::hit(std::string_view site) {
  const auto it = sites_.find(std::string(site));
  if (it == sites_.end()) return;
  SiteState& state = it->second;
  ++state.hits;
  for (RuleState& rs : state.rules) {
    const SiteRule& rule = rs.rule;
    if (rule.count != 0 && rs.fired >= rule.count) continue;
    bool fire = false;
    if (rule.nth != 0 && state.hits == rule.nth) fire = true;
    if (rule.every != 0 && state.hits % rule.every == 0) fire = true;
    // The coin is drawn only when armed, so a plan without probabilistic
    // rules consumes no randomness at all.
    if (rule.probability > 0.0 && rs.rng.bernoulli(rule.probability)) fire = true;
    if (!fire) continue;
    ++rs.fired;
    ++state.fired;
    ++total_fired_;
    if (rule.delay_us != 0)
      std::this_thread::sleep_for(std::chrono::microseconds(rule.delay_us));
    switch (rule.outcome) {
      case Outcome::kDelay:
        break;  // latency only; keep evaluating the site's other rules
      case Outcome::kCrash:
        // Power loss: no stream flush, no destructors, no atexit — exactly
        // the failure the durable-write path must survive. stderr is
        // unbuffered, so the breadcrumb still lands.
        std::fprintf(stderr, "fault: injected crash at site %.*s (hit %llu)\n",
                     static_cast<int>(site.size()), site.data(),
                     static_cast<unsigned long long>(state.hits));
        std::_Exit(kCrashExitCode);
      case Outcome::kFail:
        throw FaultError("injected fault at site " + std::string(site) + " (hit " +
                         std::to_string(state.hits) + ")");
    }
  }
}

Injector::SiteStats Injector::stats(std::string_view site) const {
  const auto it = sites_.find(std::string(site));
  if (it == sites_.end()) return {};
  return {it->second.hits, it->second.fired};
}

}  // namespace mobsrv::fault
