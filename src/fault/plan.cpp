#include "fault/plan.hpp"

#include <cmath>
#include <fstream>
#include <initializer_list>

#include "io/json.hpp"

namespace mobsrv::fault {

namespace {

using io::Json;

[[noreturn]] void fail(const std::string& ctx, const std::string& message) {
  throw PlanError(ctx + ": " + message);
}

std::string quoted(const char* key) {
  std::string out = "\"";
  out += key;
  out += '"';
  return out;
}

/// The scenario-validator allowlist discipline: every member must be named,
/// and the error enumerates what IS allowed — the plan author's only
/// feedback channel is this message.
void reject_unknown_members(const Json& obj, std::initializer_list<const char*> allowed,
                            const std::string& what, const std::string& ctx) {
  for (const Json::Member& member : obj.as_object()) {
    bool ok = false;
    for (const char* key : allowed) ok = ok || member.first == key;
    if (ok) continue;
    std::string list;
    for (const char* key : allowed) {
      if (!list.empty()) list += ", ";
      list += key;
    }
    fail(ctx, "unknown member \"" + member.first + "\" in " + what + " (allowed: " + list + ")");
  }
}

std::uint64_t uint_field(const Json& obj, const char* key, std::uint64_t fallback,
                         const std::string& ctx) {
  const Json* value = obj.find(key);
  if (value == nullptr) return fallback;
  if (!value->is_number()) fail(ctx, quoted(key) + " must be a number");
  try {
    return value->as_uint64();
  } catch (const io::JsonError&) {
    fail(ctx, quoted(key) + " must be a non-negative integer");
  }
}

double probability_field(const Json& obj, const char* key, const std::string& ctx) {
  const Json* value = obj.find(key);
  if (value == nullptr) return 0.0;
  if (!value->is_number()) fail(ctx, quoted(key) + " must be a number");
  const double v = value->as_double();
  if (!std::isfinite(v) || v < 0.0 || v > 1.0) fail(ctx, quoted(key) + " must be in [0, 1]");
  return v;
}

Outcome outcome_field(const Json& obj, const char* key, const std::string& ctx) {
  const Json* value = obj.find(key);
  if (value == nullptr) return Outcome::kFail;
  if (!value->is_string()) fail(ctx, quoted(key) + " must be a string");
  const std::string& s = value->as_string();
  if (s == "fail") return Outcome::kFail;
  if (s == "crash") return Outcome::kCrash;
  if (s == "delay") return Outcome::kDelay;
  fail(ctx, quoted(key) + " must be \"fail\", \"crash\" or \"delay\", got \"" + s + "\"");
}

SiteRule parse_rule(const Json& obj, const std::string& ctx) {
  if (!obj.is_object()) fail(ctx, "each fault must be an object");
  reject_unknown_members(
      obj, {"site", "nth", "every", "probability", "count", "delay_us", "outcome"}, "fault", ctx);
  SiteRule rule;
  const Json* site = obj.find("site");
  if (site == nullptr) fail(ctx, "missing required member \"site\"");
  if (!site->is_string()) fail(ctx, "\"site\" must be a string");
  rule.site = site->as_string();
  bool known = false;
  for (const std::string& name : known_sites()) known = known || name == rule.site;
  if (!known) {
    std::string list;
    for (const std::string& name : known_sites()) {
      if (!list.empty()) list += ", ";
      list += name;
    }
    fail(ctx, "unknown fault site \"" + rule.site + "\" (known sites: " + list + ")");
  }
  rule.nth = uint_field(obj, "nth", 0, ctx);
  rule.every = uint_field(obj, "every", 0, ctx);
  rule.probability = probability_field(obj, "probability", ctx);
  rule.count = uint_field(obj, "count", 0, ctx);
  rule.delay_us = uint_field(obj, "delay_us", 0, ctx);
  rule.outcome = outcome_field(obj, "outcome", ctx);
  // A rule that can never fire is a plan bug, not a no-op: the torture run
  // it was written for would silently test nothing.
  if (rule.nth == 0 && rule.every == 0 && rule.probability == 0.0)
    fail(ctx, "rule for site \"" + rule.site +
                  "\" has no trigger (set \"nth\", \"every\" or \"probability\")");
  if (rule.outcome == Outcome::kDelay && rule.delay_us == 0)
    fail(ctx, "rule for site \"" + rule.site + "\" has outcome \"delay\" but no \"delay_us\"");
  return rule;
}

}  // namespace

FaultPlan parse_plan(const std::string& text, const std::string& origin) {
  Json doc = Json::object();
  try {
    doc = Json::parse(text);
  } catch (const std::exception& error) {
    fail(origin, std::string("malformed JSON: ") + error.what());
  }
  if (!doc.is_object()) fail(origin, "plan must be a JSON object");
  reject_unknown_members(doc, {"v", "seed", "faults"}, "fault plan", origin);
  const std::uint64_t version = uint_field(doc, "v", 0, origin);
  if (version != kPlanVersion)
    fail(origin, "unsupported plan version " + std::to_string(version) +
                     " (this build reads version " + std::to_string(kPlanVersion) + ")");

  FaultPlan plan;
  plan.seed = uint_field(doc, "seed", 0, origin);
  const Json* faults = doc.find("faults");
  if (faults == nullptr) fail(origin, "missing required member \"faults\"");
  if (!faults->is_array()) fail(origin, "\"faults\" must be an array");
  std::size_t index = 0;
  for (const Json& entry : faults->as_array())
    plan.rules.push_back(parse_rule(entry, origin + ": fault " + std::to_string(index++)));
  if (plan.rules.empty()) fail(origin, "\"faults\" must name at least one rule");
  return plan;
}

FaultPlan load_plan(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw PlanError(path.string() + ": cannot open fault plan (missing file?)");
  std::string text((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  if (in.bad()) throw PlanError(path.string() + ": read failed");
  return parse_plan(text, path.string());
}

Injector make_injector(const FaultPlan& plan) {
  Injector injector(plan.seed);
  for (const SiteRule& rule : plan.rules) injector.add_rule(rule);
  return injector;
}

}  // namespace mobsrv::fault
