/// \file snapshot.hpp
/// The mobsrv_serve snapshot file: tenant table + engine checkpoint.
///
/// A service restart needs two things the engine checkpoint alone does not
/// carry: WHO the tenants are (their admission specs — algorithm, fleet
/// size, engine options, start layout) and the engine state itself. A
/// snapshot file bundles both: a JSON tenant-table section (one
/// TenantSpec per open tenant, in slot order) followed by the PR 4
/// checkpoint codec's bytes for the matching sessions. Restoring re-admits
/// every tenant from its spec and hands the records to
/// SessionMultiplexer::restore, after which the service continues
/// bit-identically — proven end to end by the kill/restore test.
///
/// Format: little-endian framing ("MSRVSS1\n" magic, u32 version, two
/// length-prefixed sections, end tag). Saves go through
/// trace::write_bytes_atomic (temp file + rename), so a crash mid-save
/// never clobbers the previous good snapshot. Truncated, corrupt or
/// version-mismatched files fail loudly with a TraceError.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "serve/frames.hpp"
#include "trace/checkpoint.hpp"

namespace mobsrv::serve {

/// Snapshot format version written by this build; readers accept only this
/// version (a bump is a deliberate compatibility break).
inline constexpr std::uint32_t kSnapshotVersion = 1;

/// Everything a restarted service needs: the open tenants' admission specs
/// and the matching engine checkpoint records, both in slot order
/// (tenants[i] owns records[i]).
struct ServiceSnapshot {
  std::vector<TenantSpec> tenants;
  std::vector<core::SessionCheckpointRecord> records;
};

/// In-memory encode/decode. decode throws TraceError on corrupt/truncated
/// input, version mismatch, or a tenant table that disagrees with the
/// checkpoint records (count or name mismatch).
[[nodiscard]] std::string encode_snapshot(const ServiceSnapshot& snapshot);
[[nodiscard]] ServiceSnapshot decode_snapshot(const std::string& bytes,
                                              const std::string& origin);

/// Atomically serialises \p snapshot to \p path (temp file + rename: the
/// periodic-save path crashes never corrupt). Throws TraceError on I/O
/// failure.
void write_snapshot(const std::filesystem::path& path, const ServiceSnapshot& snapshot);

/// Reads a snapshot file. Throws TraceError on missing/corrupt/truncated
/// input or version mismatch.
[[nodiscard]] ServiceSnapshot read_snapshot(const std::filesystem::path& path);

}  // namespace mobsrv::serve
