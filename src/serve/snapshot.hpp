/// \file snapshot.hpp
/// The mobsrv_serve snapshot file: tenant table + engine checkpoint.
///
/// A service restart needs two things the engine checkpoint alone does not
/// carry: WHO the tenants are (their admission specs — algorithm, fleet
/// size, engine options, start layout) and the engine state itself. A
/// snapshot file bundles both. Restoring re-admits every tenant from its
/// spec and hands the records to SessionMultiplexer::restore, after which
/// the service continues bit-identically — proven end to end by the
/// kill/restore tests.
///
/// Two on-disk formats, one reader (read_snapshot sniffs the magic):
///
/// * **MSRVSS1** (v1, PR 6): one monolithic image — JSON tenant table +
///   checkpoint codec bytes, length-prefixed, end tag. Written by
///   write_snapshot via trace::write_bytes_atomic; every save re-serialises
///   every session (O(sessions)).
/// * **MSRVSS2** (v2, this PR): an append-only segment chain. The file is
///   "MSRVSS2\n" + u32 version, then segments, each framed as
///   `u8 tag (1=base, 2=delta) | u64 payload_size | u32 crc32 | payload`.
///   A BASE segment carries the whole state (every open tenant + record);
///   a DELTA carries only the changes since the previous segment: tenants
///   opened, slots closed, and the engine records of DIRTY slots (stepped
///   since the last save). Saves therefore cost O(progress since last
///   save). Slot ids are the writing process's dense multiplexer ids — an
///   id space that is only consistent within one process lifetime, which
///   is why every process writes a fresh base on its first save.
///
/// Crash discipline: a base goes through trace::write_bytes_atomic (temp
/// file + rename); deltas are appended and flushed. A crash mid-append
/// leaves a TORN TRAILING segment, which the reader silently drops — the
/// file still resumes from the previous save, a valid quiescent point. A
/// complete segment with a bad CRC is real corruption and fails loudly
/// with a TraceError, as do truncated/corrupt v1 files, version
/// mismatches, and chains whose merged state is inconsistent (a record
/// for an unknown slot, an open tenant with no record).
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "serve/frames.hpp"
#include "trace/checkpoint.hpp"

namespace mobsrv::serve {

/// Monolithic (v1) format version; v1 readers accept only this version.
inline constexpr std::uint32_t kSnapshotVersion = 1;
/// Segmented (v2) format version written by write_snapshot_base.
inline constexpr std::uint32_t kSnapshotVersionV2 = 2;

/// Everything a restarted service needs: the open tenants' admission specs
/// and the matching engine checkpoint records, both in slot order
/// (tenants[i] owns records[i]). This is the MERGED view — read_snapshot
/// returns it for both formats.
struct ServiceSnapshot {
  std::vector<TenantSpec> tenants;
  std::vector<core::SessionCheckpointRecord> records;
};

/// One MSRVSS2 segment: the table changes and dirty engine records since
/// the previous segment. A base is simply "everything changed": every open
/// tenant in `opened`, every open slot's record, `closed_slots` empty.
struct SnapshotSegment {
  std::vector<TenantSpec> opened;           ///< specs admitted since the last segment
  std::vector<std::uint64_t> opened_slots;  ///< mux slot id per `opened` entry
  std::vector<std::uint64_t> closed_slots;  ///< slots closed since the last segment
  std::vector<std::uint64_t> record_slots;  ///< mux slot id per `records` entry
  std::vector<core::SessionCheckpointRecord> records;  ///< dirty slots' engine state
};

/// What a segment chain looks like on disk — the compaction policy and the
/// incremental-bytes tests read this instead of re-parsing the file.
struct SnapshotFileInfo {
  std::uint32_t version = 0;     ///< 1 or 2
  std::size_t segments = 0;      ///< complete segments (v1 counts as 1)
  std::uint64_t base_bytes = 0;  ///< encoded size of the base segment (v1: whole file)
  std::uint64_t delta_bytes = 0; ///< summed encoded size of the delta segments
};

/// In-memory v1 encode/decode. decode throws TraceError on corrupt/
/// truncated input, version mismatch, or a tenant table that disagrees
/// with the checkpoint records (count or name mismatch).
[[nodiscard]] std::string encode_snapshot(const ServiceSnapshot& snapshot);
[[nodiscard]] ServiceSnapshot decode_snapshot(const std::string& bytes,
                                              const std::string& origin);

/// Durability and fault-injection knobs shared by the snapshot writers.
/// Defaults match production: crash- and power-loss-durable, no faults.
struct SnapshotWriteOptions {
  bool durable = true;              ///< fsync file (and dir on base renames)
  fault::Injector* faults = nullptr;  ///< null = disabled, zero cost
};

/// Atomically serialises \p snapshot to \p path in the monolithic v1
/// format (temp file + rename: periodic-save crashes never corrupt).
/// Throws TraceError on I/O failure.
void write_snapshot(const std::filesystem::path& path, const ServiceSnapshot& snapshot);

/// Starts a fresh MSRVSS2 chain at \p path: header + one base segment,
/// written atomically (an existing file — either format — is replaced).
/// Returns the encoded segment size in bytes (the checkpoint-bytes meter).
/// Fault sites: snapshot.base_write, snapshot.fsync, snapshot.rename.
std::uint64_t write_snapshot_base(const std::filesystem::path& path,
                                  const SnapshotSegment& base,
                                  const SnapshotWriteOptions& options = {});

/// Appends one delta segment to an existing MSRVSS2 chain, flushes, and
/// (options.durable) fsyncs the file. Returns the encoded segment size in
/// bytes. Throws TraceError if the file is missing or is not an MSRVSS2
/// file. Fault sites: snapshot.delta_append, snapshot.fsync.
std::uint64_t append_snapshot_delta(const std::filesystem::path& path,
                                    const SnapshotSegment& delta,
                                    const SnapshotWriteOptions& options = {});

/// Reads a snapshot file of either format and returns the merged state.
/// For MSRVSS2 the segment chain is replayed in order (base resets, deltas
/// open/close/upsert); a torn trailing segment is dropped. Throws
/// TraceError on missing/corrupt input or an inconsistent chain.
[[nodiscard]] ServiceSnapshot read_snapshot(const std::filesystem::path& path);

/// read_snapshot on in-memory bytes (\p origin names the source in
/// errors). The chaos fuzzer's workhorse: mutated chains go through the
/// exact production decode path without touching disk.
[[nodiscard]] ServiceSnapshot read_snapshot_bytes(const std::string& bytes,
                                                  const std::string& origin);

/// Segment-chain shape of a snapshot file (either format), torn trailing
/// segment excluded. Throws TraceError on missing/unreadable files.
[[nodiscard]] SnapshotFileInfo inspect_snapshot(const std::filesystem::path& path);

}  // namespace mobsrv::serve
