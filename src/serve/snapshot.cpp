#include "serve/snapshot.hpp"

#include <bit>
#include <cstring>
#include <fstream>

static_assert(std::endian::native == std::endian::little,
              "the snapshot codec assumes a little-endian host");

namespace mobsrv::serve {

namespace {

constexpr char kMagic[8] = {'M', 'S', 'R', 'V', 'S', 'S', '1', '\n'};
constexpr std::uint8_t kEndTag = 0xFF;

using trace::TraceError;

[[noreturn]] void fail(const std::string& origin, const std::string& message) {
  throw TraceError(origin + ": " + message);
}

void put_u32(std::string& out, std::uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out.append(buf, 4);
}

void put_u64(std::string& out, std::uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out.append(buf, 8);
}

/// Length-prefixed section reader with loud truncation errors.
class Reader {
 public:
  Reader(const std::string& bytes, std::string origin)
      : bytes_(bytes), origin_(std::move(origin)) {}

  std::uint8_t u8(const char* what) {
    need(1, what);
    return static_cast<std::uint8_t>(bytes_[pos_++]);
  }
  std::uint32_t u32(const char* what) {
    need(4, what);
    std::uint32_t v;
    std::memcpy(&v, bytes_.data() + pos_, 4);
    pos_ += 4;
    return v;
  }
  std::string section(const char* what) {
    need(8, what);
    std::uint64_t n;
    std::memcpy(&n, bytes_.data() + pos_, 8);
    pos_ += 8;
    if (n > bytes_.size() - pos_)
      fail(origin_, std::string("truncated: ") + what + " declares " + std::to_string(n) +
                        " bytes but only " + std::to_string(bytes_.size() - pos_) + " remain");
    std::string s = bytes_.substr(pos_, n);
    pos_ += n;
    return s;
  }
  [[nodiscard]] std::size_t pos() const noexcept { return pos_; }
  [[nodiscard]] std::size_t size() const noexcept { return bytes_.size(); }
  [[nodiscard]] const std::string& origin() const noexcept { return origin_; }

 private:
  void need(std::size_t n, const char* what) {
    if (pos_ + n > bytes_.size())
      fail(origin_, std::string("truncated: unexpected end of file while reading ") + what);
  }

  const std::string& bytes_;
  std::string origin_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string encode_snapshot(const ServiceSnapshot& snapshot) {
  MOBSRV_CHECK_MSG(snapshot.tenants.size() == snapshot.records.size(),
                   "snapshot tenant table and checkpoint records disagree");
  io::Json table = io::Json::object();
  table.set("v", kSnapshotVersion);
  io::Json tenants = io::Json::array();
  for (const TenantSpec& spec : snapshot.tenants) tenants.push_back(tenant_spec_to_json(spec));
  table.set("tenants", std::move(tenants));
  const std::string json = table.dump();
  const std::string checkpoint = trace::encode_checkpoint(snapshot.records);

  std::string out;
  out.append(kMagic, sizeof(kMagic));
  put_u32(out, kSnapshotVersion);
  put_u64(out, json.size());
  out += json;
  put_u64(out, checkpoint.size());
  out += checkpoint;
  out.push_back(static_cast<char>(kEndTag));
  return out;
}

ServiceSnapshot decode_snapshot(const std::string& bytes, const std::string& origin) {
  Reader r(bytes, origin);
  if (bytes.size() < sizeof(kMagic) || std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0)
    fail(origin, "not a mobsrv_serve snapshot file (bad magic)");
  for (std::size_t i = 0; i < sizeof(kMagic); ++i) (void)r.u8("magic");
  const std::uint32_t version = r.u32("version");
  if (version != kSnapshotVersion)
    fail(origin, "unsupported snapshot format version " + std::to_string(version) +
                     " (this build reads version " + std::to_string(kSnapshotVersion) + ")");

  const std::string json = r.section("tenant table");
  const std::string checkpoint = r.section("checkpoint section");
  if (r.u8("end tag") != kEndTag) fail(origin, "corrupt end tag");
  if (r.pos() != r.size()) fail(origin, "trailing data after end tag");

  ServiceSnapshot snapshot;
  try {
    const io::Json table = io::Json::parse(json);
    const io::Json* v = table.find("v");
    if (v == nullptr || v->as_uint64() != kSnapshotVersion)
      fail(origin, "tenant table version disagrees with the file header");
    for (const io::Json& entry : table.at("tenants").as_array())
      snapshot.tenants.push_back(tenant_spec_from_json(entry));
  } catch (const TraceError&) {
    throw;
  } catch (const std::exception& error) {
    fail(origin, std::string("corrupt tenant table: ") + error.what());
  }
  snapshot.records = trace::decode_checkpoint(checkpoint, origin);

  if (snapshot.tenants.size() != snapshot.records.size())
    fail(origin, "tenant table holds " + std::to_string(snapshot.tenants.size()) +
                     " tenants but the checkpoint holds " +
                     std::to_string(snapshot.records.size()) + " sessions");
  for (std::size_t i = 0; i < snapshot.tenants.size(); ++i)
    if (snapshot.tenants[i].tenant != snapshot.records[i].tenant)
      fail(origin, "tenant table entry " + std::to_string(i) + " is \"" +
                       snapshot.tenants[i].tenant + "\" but the checkpoint record is for \"" +
                       snapshot.records[i].tenant + "\"");
  return snapshot;
}

void write_snapshot(const std::filesystem::path& path, const ServiceSnapshot& snapshot) {
  trace::write_bytes_atomic(path, encode_snapshot(snapshot));
}

ServiceSnapshot read_snapshot(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw TraceError(path.string() + ": cannot open (missing file?)");
  std::string bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  if (in.bad()) throw TraceError(path.string() + ": read failed");
  return decode_snapshot(bytes, path.string());
}

}  // namespace mobsrv::serve
