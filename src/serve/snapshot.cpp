#include "serve/snapshot.hpp"

#include <array>
#include <bit>
#include <cstring>
#include <fstream>
#include <map>
#include <utility>

#include "fault/injector.hpp"

static_assert(std::endian::native == std::endian::little,
              "the snapshot codec assumes a little-endian host");

namespace mobsrv::serve {

namespace {

constexpr char kMagicV1[8] = {'M', 'S', 'R', 'V', 'S', 'S', '1', '\n'};
constexpr char kMagicV2[8] = {'M', 'S', 'R', 'V', 'S', 'S', '2', '\n'};
constexpr std::uint8_t kEndTag = 0xFF;
constexpr std::uint8_t kSegmentBase = 1;
constexpr std::uint8_t kSegmentDelta = 2;
/// magic + u32 version.
constexpr std::size_t kHeaderSize = sizeof(kMagicV2) + 4;
/// u8 tag + u64 payload size + u32 crc.
constexpr std::size_t kSegmentHeaderSize = 1 + 8 + 4;

using trace::TraceError;

[[noreturn]] void fail(const std::string& origin, const std::string& message) {
  throw TraceError(origin + ": " + message);
}

void put_u32(std::string& out, std::uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out.append(buf, 4);
}

void put_u64(std::string& out, std::uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out.append(buf, 8);
}

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320), table-driven — the segment
/// integrity check. No zlib dependency: 1 KiB of table built on first use.
std::uint32_t crc32(const std::string& bytes) {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t n = 0; n < 256; ++n) {
      std::uint32_t c = n;
      for (int k = 0; k < 8; ++k) c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[n] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const char byte : bytes)
    crc = table[(crc ^ static_cast<std::uint8_t>(byte)) & 0xFFu] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

/// Length-prefixed section reader with loud truncation errors.
class Reader {
 public:
  Reader(const std::string& bytes, std::string origin)
      : bytes_(bytes), origin_(std::move(origin)) {}

  std::uint8_t u8(const char* what) {
    need(1, what);
    return static_cast<std::uint8_t>(bytes_[pos_++]);
  }
  std::uint32_t u32(const char* what) {
    need(4, what);
    std::uint32_t v;
    std::memcpy(&v, bytes_.data() + pos_, 4);
    pos_ += 4;
    return v;
  }
  std::uint64_t u64(const char* what) {
    need(8, what);
    std::uint64_t v;
    std::memcpy(&v, bytes_.data() + pos_, 8);
    pos_ += 8;
    return v;
  }
  std::string section(const char* what) {
    need(8, what);
    std::uint64_t n;
    std::memcpy(&n, bytes_.data() + pos_, 8);
    pos_ += 8;
    if (n > bytes_.size() - pos_)
      fail(origin_, std::string("truncated: ") + what + " declares " + std::to_string(n) +
                        " bytes but only " + std::to_string(bytes_.size() - pos_) + " remain");
    std::string s = bytes_.substr(pos_, n);
    pos_ += n;
    return s;
  }
  /// \p n raw bytes (caller already validated the size against remaining()).
  std::string take(std::size_t n, const char* what) {
    need(n, what);
    std::string s = bytes_.substr(pos_, n);
    pos_ += n;
    return s;
  }
  [[nodiscard]] std::size_t pos() const noexcept { return pos_; }
  [[nodiscard]] std::size_t size() const noexcept { return bytes_.size(); }
  [[nodiscard]] std::size_t remaining() const noexcept { return bytes_.size() - pos_; }
  [[nodiscard]] const std::string& origin() const noexcept { return origin_; }

 private:
  void need(std::size_t n, const char* what) {
    if (pos_ + n > bytes_.size())
      fail(origin_, std::string("truncated: unexpected end of file while reading ") + what);
  }

  const std::string& bytes_;
  std::string origin_;
  std::size_t pos_ = 0;
};

/// Segment payload codec, shared by base and delta (a base is "everything
/// changed"): JSON table changes, the records' slot ids, the checkpoint
/// bytes, end tag.
std::string encode_segment_payload(const SnapshotSegment& segment) {
  MOBSRV_CHECK_MSG(segment.opened.size() == segment.opened_slots.size(),
                   "segment opened specs and slot ids disagree");
  MOBSRV_CHECK_MSG(segment.records.size() == segment.record_slots.size(),
                   "segment records and slot ids disagree");
  io::Json table = io::Json::object();
  table.set("v", kSnapshotVersionV2);
  io::Json opened = io::Json::array();
  for (std::size_t i = 0; i < segment.opened.size(); ++i) {
    io::Json entry = tenant_spec_to_json(segment.opened[i]);
    entry.set("slot", segment.opened_slots[i]);
    opened.push_back(std::move(entry));
  }
  table.set("opened", std::move(opened));
  io::Json closed = io::Json::array();
  for (const std::uint64_t slot : segment.closed_slots) closed.push_back(slot);
  table.set("closed", std::move(closed));
  const std::string json = table.dump();
  const std::string checkpoint = trace::encode_checkpoint(segment.records);

  std::string out;
  put_u64(out, json.size());
  out += json;
  put_u64(out, segment.record_slots.size());
  for (const std::uint64_t slot : segment.record_slots) put_u64(out, slot);
  put_u64(out, checkpoint.size());
  out += checkpoint;
  out.push_back(static_cast<char>(kEndTag));
  return out;
}

SnapshotSegment decode_segment_payload(const std::string& payload, const std::string& origin) {
  Reader r(payload, origin);
  SnapshotSegment segment;
  const std::string json = r.section("segment table");
  try {
    const io::Json table = io::Json::parse(json);
    const io::Json* v = table.find("v");
    if (v == nullptr || v->as_uint64() != kSnapshotVersionV2)
      fail(origin, "segment table version disagrees with the file header");
    for (const io::Json& entry : table.at("opened").as_array()) {
      const io::Json* slot = entry.find("slot");
      if (slot == nullptr) fail(origin, "opened tenant without a slot id");
      io::Json spec = entry;  // tenant_spec_from_json rejects unknown members
      std::erase_if(spec.as_object(),
                    [](const io::Json::Member& m) { return m.first == "slot"; });
      segment.opened.push_back(tenant_spec_from_json(spec));
      segment.opened_slots.push_back(slot->as_uint64());
    }
    for (const io::Json& slot : table.at("closed").as_array())
      segment.closed_slots.push_back(slot.as_uint64());
  } catch (const TraceError&) {
    throw;
  } catch (const std::exception& error) {
    fail(origin, std::string("corrupt segment table: ") + error.what());
  }
  const std::uint64_t n_records = r.u64("record slot count");
  if (n_records > r.remaining() / 8)
    fail(origin, "truncated: record slot list longer than the segment");
  segment.record_slots.reserve(n_records);
  for (std::uint64_t i = 0; i < n_records; ++i)
    segment.record_slots.push_back(r.u64("record slot id"));
  const std::string checkpoint = r.section("segment checkpoint");
  if (r.u8("segment end tag") != kEndTag) fail(origin, "corrupt segment end tag");
  if (r.pos() != r.size()) fail(origin, "trailing data after segment end tag");
  segment.records = trace::decode_checkpoint(checkpoint, origin);
  if (segment.records.size() != segment.record_slots.size())
    fail(origin, "segment lists " + std::to_string(segment.record_slots.size()) +
                     " record slots but the checkpoint holds " +
                     std::to_string(segment.records.size()) + " sessions");
  return segment;
}

/// Frames one segment: tag + size + crc + payload.
std::string encode_segment(const SnapshotSegment& segment, bool base) {
  const std::string payload = encode_segment_payload(segment);
  std::string out;
  out.push_back(static_cast<char>(base ? kSegmentBase : kSegmentDelta));
  put_u64(out, payload.size());
  put_u32(out, crc32(payload));
  out += payload;
  return out;
}

/// Walks an MSRVSS2 chain, yielding each COMPLETE segment's (tag, payload,
/// encoded size). A torn trailing segment (header or payload cut short by
/// a crash mid-append) ends the walk silently; a bad CRC on a complete
/// segment fails loudly.
template <typename Visit>
void walk_segments(Reader& r, Visit&& visit) {
  while (r.remaining() > 0) {
    if (r.remaining() < kSegmentHeaderSize) return;  // torn trailing header
    const std::uint8_t tag = r.u8("segment tag");
    if (tag != kSegmentBase && tag != kSegmentDelta)
      fail(r.origin(), "unknown segment tag " + std::to_string(tag));
    const std::uint64_t size = r.u64("segment size");
    const std::uint32_t crc = r.u32("segment crc");
    if (size > r.remaining()) return;  // torn trailing payload
    const std::string payload = r.take(size, "segment payload");
    if (crc32(payload) != crc)
      fail(r.origin(), "segment CRC mismatch (corrupt snapshot chain)");
    visit(tag, payload, kSegmentHeaderSize + size);
  }
}

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw TraceError(path.string() + ": cannot open (missing file?)");
  std::string bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  if (in.bad()) throw TraceError(path.string() + ": read failed");
  return bytes;
}

bool has_magic(const std::string& bytes, const char (&magic)[8]) {
  return bytes.size() >= sizeof(magic) && std::memcmp(bytes.data(), magic, sizeof(magic)) == 0;
}

/// Replays an MSRVSS2 chain into the merged tenant/record state.
ServiceSnapshot merge_chain(const std::string& bytes, const std::string& origin) {
  Reader r(bytes, origin);
  for (std::size_t i = 0; i < sizeof(kMagicV2); ++i) (void)r.u8("magic");
  const std::uint32_t version = r.u32("version");
  if (version != kSnapshotVersionV2)
    fail(origin, "unsupported snapshot format version " + std::to_string(version) +
                     " (this build reads versions 1 and " +
                     std::to_string(kSnapshotVersionV2) + ")");

  std::map<std::uint64_t, TenantSpec> specs;
  std::map<std::uint64_t, core::SessionCheckpointRecord> records;
  std::size_t index = 0;
  walk_segments(r, [&](std::uint8_t tag, const std::string& payload, std::uint64_t) {
    const std::string where = origin + " segment " + std::to_string(index++);
    if (index == 1 && tag != kSegmentBase)
      fail(origin, "chain does not start with a base segment");
    if (tag == kSegmentBase) {
      specs.clear();
      records.clear();
    }
    const SnapshotSegment segment = decode_segment_payload(payload, where);
    for (const std::uint64_t slot : segment.closed_slots) {
      if (specs.erase(slot) == 0)
        fail(where, "closes slot " + std::to_string(slot) + " which is not open");
      records.erase(slot);
    }
    for (std::size_t i = 0; i < segment.opened.size(); ++i) {
      const std::uint64_t slot = segment.opened_slots[i];
      if (!specs.emplace(slot, segment.opened[i]).second)
        fail(where, "opens slot " + std::to_string(slot) + " twice");
    }
    for (std::size_t i = 0; i < segment.records.size(); ++i) {
      const std::uint64_t slot = segment.record_slots[i];
      const auto spec = specs.find(slot);
      if (spec == specs.end())
        fail(where, "checkpoint record for unknown slot " + std::to_string(slot));
      if (spec->second.tenant != segment.records[i].tenant)
        fail(where, "slot " + std::to_string(slot) + " is \"" + spec->second.tenant +
                        "\" but the record is for \"" + segment.records[i].tenant + "\"");
      records.insert_or_assign(slot, segment.records[i]);
    }
  });
  if (index == 0) fail(origin, "snapshot chain holds no complete segment");

  ServiceSnapshot snapshot;
  for (const auto& [slot, spec] : specs) {
    const auto record = records.find(slot);
    if (record == records.end())
      fail(origin, "open tenant \"" + spec.tenant + "\" (slot " + std::to_string(slot) +
                       ") has no checkpoint record in the chain");
    snapshot.tenants.push_back(spec);
    snapshot.records.push_back(record->second);
  }
  return snapshot;
}

}  // namespace

std::string encode_snapshot(const ServiceSnapshot& snapshot) {
  MOBSRV_CHECK_MSG(snapshot.tenants.size() == snapshot.records.size(),
                   "snapshot tenant table and checkpoint records disagree");
  io::Json table = io::Json::object();
  table.set("v", kSnapshotVersion);
  io::Json tenants = io::Json::array();
  for (const TenantSpec& spec : snapshot.tenants) tenants.push_back(tenant_spec_to_json(spec));
  table.set("tenants", std::move(tenants));
  const std::string json = table.dump();
  const std::string checkpoint = trace::encode_checkpoint(snapshot.records);

  std::string out;
  out.append(kMagicV1, sizeof(kMagicV1));
  put_u32(out, kSnapshotVersion);
  put_u64(out, json.size());
  out += json;
  put_u64(out, checkpoint.size());
  out += checkpoint;
  out.push_back(static_cast<char>(kEndTag));
  return out;
}

ServiceSnapshot decode_snapshot(const std::string& bytes, const std::string& origin) {
  Reader r(bytes, origin);
  if (!has_magic(bytes, kMagicV1))
    fail(origin, "not a mobsrv_serve snapshot file (bad magic)");
  for (std::size_t i = 0; i < sizeof(kMagicV1); ++i) (void)r.u8("magic");
  const std::uint32_t version = r.u32("version");
  if (version != kSnapshotVersion)
    fail(origin, "unsupported snapshot format version " + std::to_string(version) +
                     " (this build reads version " + std::to_string(kSnapshotVersion) + ")");

  const std::string json = r.section("tenant table");
  const std::string checkpoint = r.section("checkpoint section");
  if (r.u8("end tag") != kEndTag) fail(origin, "corrupt end tag");
  if (r.pos() != r.size()) fail(origin, "trailing data after end tag");

  ServiceSnapshot snapshot;
  try {
    const io::Json table = io::Json::parse(json);
    const io::Json* v = table.find("v");
    if (v == nullptr || v->as_uint64() != kSnapshotVersion)
      fail(origin, "tenant table version disagrees with the file header");
    for (const io::Json& entry : table.at("tenants").as_array())
      snapshot.tenants.push_back(tenant_spec_from_json(entry));
  } catch (const TraceError&) {
    throw;
  } catch (const std::exception& error) {
    fail(origin, std::string("corrupt tenant table: ") + error.what());
  }
  snapshot.records = trace::decode_checkpoint(checkpoint, origin);

  if (snapshot.tenants.size() != snapshot.records.size())
    fail(origin, "tenant table holds " + std::to_string(snapshot.tenants.size()) +
                     " tenants but the checkpoint holds " +
                     std::to_string(snapshot.records.size()) + " sessions");
  for (std::size_t i = 0; i < snapshot.tenants.size(); ++i)
    if (snapshot.tenants[i].tenant != snapshot.records[i].tenant)
      fail(origin, "tenant table entry " + std::to_string(i) + " is \"" +
                       snapshot.tenants[i].tenant + "\" but the checkpoint record is for \"" +
                       snapshot.records[i].tenant + "\"");
  return snapshot;
}

void write_snapshot(const std::filesystem::path& path, const ServiceSnapshot& snapshot) {
  trace::write_bytes_atomic(path, encode_snapshot(snapshot));
}

std::uint64_t write_snapshot_base(const std::filesystem::path& path,
                                  const SnapshotSegment& base,
                                  const SnapshotWriteOptions& options) {
  const std::string segment = encode_segment(base, /*base=*/true);
  std::string out;
  out.reserve(kHeaderSize + segment.size());
  out.append(kMagicV2, sizeof(kMagicV2));
  put_u32(out, kSnapshotVersionV2);
  out += segment;
  trace::AtomicWriteOptions aw;
  aw.durable = options.durable;
  aw.faults = options.faults;
  aw.write_site = fault::kSiteSnapshotBaseWrite;
  aw.fsync_site = fault::kSiteSnapshotFsync;
  aw.rename_site = fault::kSiteSnapshotRename;
  trace::write_bytes_atomic(path, out, aw);
  return segment.size();
}

std::uint64_t append_snapshot_delta(const std::filesystem::path& path,
                                    const SnapshotSegment& delta,
                                    const SnapshotWriteOptions& options) {
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw TraceError(path.string() + ": cannot append a delta (no base written?)");
    char magic[sizeof(kMagicV2)] = {};
    in.read(magic, sizeof(magic));
    if (in.gcount() != sizeof(magic) || std::memcmp(magic, kMagicV2, sizeof(magic)) != 0)
      fail(path.string(), "cannot append a delta: not an MSRVSS2 snapshot chain");
  }
  const std::string segment = encode_segment(delta, /*base=*/false);
  if (options.faults != nullptr) options.faults->hit(fault::kSiteSnapshotDeltaAppend);
  std::ofstream out(path, std::ios::binary | std::ios::app);
  if (!out) throw TraceError(path.string() + ": cannot open for append");
  out.write(segment.data(), static_cast<std::streamsize>(segment.size()));
  out.flush();
  if (!out) throw TraceError(path.string() + ": delta append failed");
  out.close();
  if (options.durable) {
    // A torn append is fine (the reader drops it); an append the OS never
    // wrote back is not — after this fsync the delta survives power loss.
    if (options.faults != nullptr) options.faults->hit(fault::kSiteSnapshotFsync);
    trace::fsync_path(path);
  }
  return segment.size();
}

ServiceSnapshot read_snapshot(const std::filesystem::path& path) {
  return read_snapshot_bytes(read_file(path), path.string());
}

ServiceSnapshot read_snapshot_bytes(const std::string& bytes, const std::string& origin) {
  if (has_magic(bytes, kMagicV2)) return merge_chain(bytes, origin);
  return decode_snapshot(bytes, origin);
}

SnapshotFileInfo inspect_snapshot(const std::filesystem::path& path) {
  const std::string bytes = read_file(path);
  SnapshotFileInfo info;
  if (!has_magic(bytes, kMagicV2)) {
    // v1 (or garbage — decode_snapshot is the loud check): one monolithic
    // "segment" spanning the whole file.
    (void)decode_snapshot(bytes, path.string());
    info.version = kSnapshotVersion;
    info.segments = 1;
    info.base_bytes = bytes.size();
    return info;
  }
  Reader r(bytes, path.string());
  for (std::size_t i = 0; i < sizeof(kMagicV2); ++i) (void)r.u8("magic");
  info.version = r.u32("version");
  walk_segments(r, [&](std::uint8_t tag, const std::string&, std::uint64_t size) {
    ++info.segments;
    if (tag == kSegmentBase && info.segments == 1) {
      info.base_bytes = size;
    } else if (tag == kSegmentBase) {
      // A mid-chain base (compaction rewrites the file, so this would be
      // unusual) resets the accounting like the merge does.
      info.base_bytes = size;
      info.delta_bytes = 0;
    } else {
      info.delta_bytes += size;
    }
  });
  if (info.segments == 0) fail(path.string(), "snapshot chain holds no complete segment");
  return info;
}

}  // namespace mobsrv::serve
