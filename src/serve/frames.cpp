#include "serve/frames.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace mobsrv::serve {

namespace {

using io::Json;

/// The tenant a frame names, best-effort, for error attribution. Returns
/// empty when the line is too broken to tell.
std::string sniff_tenant(const Json& doc) {
  if (!doc.is_object()) return {};
  const Json* tenant = doc.find("tenant");
  if (tenant != nullptr && tenant->is_string()) return tenant->as_string();
  return {};
}

[[noreturn]] void fail(const std::string& message, const std::string& tenant) {
  throw FrameError(message, tenant);
}

/// Rejects members outside \p allowed — a typo'd member must fail loudly,
/// never be silently ignored (the CLI flag discipline, applied to frames).
void reject_unknown_members(const Json& doc, std::initializer_list<const char*> allowed,
                            const std::string& type, const std::string& tenant) {
  for (const Json::Member& member : doc.as_object()) {
    const bool known = std::any_of(allowed.begin(), allowed.end(),
                                   [&](const char* name) { return member.first == name; });
    if (!known)
      fail("unknown member \"" + member.first + "\" in \"" + type + "\" frame", tenant);
  }
}

/// `key` wrapped in JSON-style quotes for error messages.
std::string quoted(const char* key) {
  std::string out = "\"";
  out += key;
  out += '"';
  return out;
}

const Json& require(const Json& doc, const char* key, const std::string& type,
                    const std::string& tenant) {
  const Json* value = doc.find(key);
  if (value == nullptr) fail("\"" + type + "\" frame is missing \"" + key + "\"", tenant);
  return *value;
}

std::string require_string(const Json& doc, const char* key, const std::string& type,
                           const std::string& tenant) {
  const Json& value = require(doc, key, type, tenant);
  if (!value.is_string()) fail(quoted(key) + " must be a string", tenant);
  return value.as_string();
}

double number_or(const Json& doc, const char* key, double fallback, const std::string& tenant) {
  const Json* value = doc.find(key);
  if (value == nullptr) return fallback;
  if (!value->is_number()) fail(quoted(key) + " must be a number", tenant);
  return value->as_double();
}

std::uint64_t uint_or(const Json& doc, const char* key, std::uint64_t fallback,
                      const std::string& tenant) {
  const Json* value = doc.find(key);
  if (value == nullptr) return fallback;
  if (!value->is_number()) fail(quoted(key) + " must be an unsigned integer", tenant);
  try {
    return value->as_uint64();
  } catch (const io::JsonError&) {
    fail(quoted(key) + " must be an unsigned integer", tenant);
  }
}

/// Checks a frame's optional `v` member (mandatory on `open`, where the
/// protocol contract is declared).
void check_version(const Json& doc, bool required, const std::string& type,
                   const std::string& tenant) {
  const Json* v = doc.find("v");
  if (v == nullptr) {
    if (required)
      fail("\"" + type + "\" frame must declare the protocol version (\"v\": " +
               std::to_string(kProtocolVersion) + ")",
           tenant);
    return;
  }
  const std::uint64_t version = uint_or(doc, "v", 0, tenant);
  if (version != kProtocolVersion)
    fail("protocol version " + std::to_string(version) + " not supported (this build speaks " +
             std::to_string(kProtocolVersion) + ")",
         tenant);
}

/// Parses a coordinate array into a Point of 1..kMaxDim doubles.
sim::Point parse_point(const Json& value, const char* what, const std::string& tenant) {
  if (!value.is_array()) fail(std::string(what) + " must be an array of numbers", tenant);
  const Json::Array& coords = value.as_array();
  if (coords.empty() || coords.size() > static_cast<std::size_t>(sim::Point::kMaxDim))
    fail(std::string(what) + " must have 1.." + std::to_string(sim::Point::kMaxDim) +
             " coordinates, got " + std::to_string(coords.size()),
         tenant);
  sim::Point p(static_cast<int>(coords.size()));
  for (std::size_t i = 0; i < coords.size(); ++i) {
    if (!coords[i].is_number())
      fail(std::string(what) + " coordinates must be numbers", tenant);
    p[static_cast<int>(i)] = coords[i].as_double();
  }
  return p;
}

sim::SpeedLimitPolicy policy_from(const std::string& name, const std::string& tenant) {
  if (name == "clamp") return sim::SpeedLimitPolicy::kClamp;
  if (name == "throw") return sim::SpeedLimitPolicy::kThrow;
  fail("unknown \"policy\" \"" + name + "\" (expected \"clamp\" or \"throw\")", tenant);
}

sim::ServiceOrder order_from(const std::string& name, const std::string& tenant) {
  if (name == "move-then-serve") return sim::ServiceOrder::kMoveThenServe;
  if (name == "serve-then-move") return sim::ServiceOrder::kServeThenMove;
  fail("unknown \"order\" \"" + name +
           "\" (expected \"move-then-serve\" or \"serve-then-move\")",
       tenant);
}

std::string policy_name(sim::SpeedLimitPolicy policy) {
  return policy == sim::SpeedLimitPolicy::kThrow ? "throw" : "clamp";
}

std::string order_name(sim::ServiceOrder order) {
  return order == sim::ServiceOrder::kMoveThenServe ? "move-then-serve" : "serve-then-move";
}

Json point_to_json(const sim::Point& p) {
  Json coords = Json::array();
  for (int i = 0; i < p.dim(); ++i) coords.push_back(p[i]);
  return coords;
}

/// Reads the TenantSpec members out of \p doc (ignoring `type`/`v`, which
/// the frame layer owns). Shared by `open` frames and snapshot entries.
TenantSpec spec_from_members(const Json& doc, const std::string& type) {
  const std::string tenant = require_string(doc, "tenant", type, sniff_tenant(doc));
  if (tenant.empty()) fail("\"tenant\" must be a non-empty string", tenant);

  TenantSpec spec;
  spec.tenant = tenant;
  spec.algorithm = require_string(doc, "algorithm", type, tenant);
  spec.seed = uint_or(doc, "seed", 0, tenant);

  const std::uint64_t dim = uint_or(doc, "dim", 0, tenant);
  if (dim < 1 || dim > static_cast<std::uint64_t>(sim::Point::kMaxDim))
    fail("\"dim\" must be 1.." + std::to_string(sim::Point::kMaxDim), tenant);
  spec.dim = static_cast<int>(dim);

  const std::uint64_t k = uint_or(doc, "k", 1, tenant);
  if (k < 1) fail("\"k\" must be >= 1", tenant);
  spec.fleet_size = static_cast<std::size_t>(k);

  spec.speed_factor = number_or(doc, "speed", 1.0, tenant);
  if (spec.speed_factor < 1.0) fail("\"speed\" must be >= 1", tenant);
  if (const Json* policy = doc.find("policy"); policy != nullptr) {
    if (!policy->is_string()) fail("\"policy\" must be a string", tenant);
    spec.policy = policy_from(policy->as_string(), tenant);
  }
  spec.params.move_cost_weight = number_or(doc, "D", 1.0, tenant);
  if (spec.params.move_cost_weight < 1.0) fail("\"D\" must be >= 1", tenant);
  spec.params.max_step = number_or(doc, "m", 1.0, tenant);
  if (spec.params.max_step <= 0.0) fail("\"m\" must be > 0", tenant);
  if (const Json* order = doc.find("order"); order != nullptr) {
    if (!order->is_string()) fail("\"order\" must be a string", tenant);
    spec.params.order = order_from(order->as_string(), tenant);
  }

  spec.rate = number_or(doc, "rate", 0.0, tenant);
  if (spec.rate < 0.0) fail("\"rate\" must be >= 0", tenant);
  spec.rate_burst = number_or(doc, "burst", 0.0, tenant);
  if (spec.rate_burst != 0.0) {
    if (spec.rate <= 0.0) fail("\"burst\" requires a positive \"rate\"", tenant);
    if (spec.rate_burst < 1.0) fail("\"burst\" must be >= 1", tenant);
  }

  const Json* start = doc.find("start");
  const Json* starts = doc.find("starts");
  if (start != nullptr && starts != nullptr)
    fail("give \"start\" (shared) or \"starts\" (per server), not both", tenant);
  if (starts != nullptr) {
    if (!starts->is_array()) fail("\"starts\" must be an array of points", tenant);
    for (const Json& p : starts->as_array())
      spec.starts.push_back(parse_point(p, "\"starts\" entry", tenant));
    if (spec.starts.size() != spec.fleet_size)
      fail("\"starts\" has " + std::to_string(spec.starts.size()) + " points for k = " +
               std::to_string(spec.fleet_size),
           tenant);
  } else {
    const sim::Point shared = start != nullptr
                                  ? parse_point(*start, "\"start\"", tenant)
                                  : sim::Point::zero(spec.dim);
    spec.starts.assign(spec.fleet_size, shared);
  }
  for (const sim::Point& p : spec.starts)
    if (p.dim() != spec.dim)
      fail("start position has " + std::to_string(p.dim()) + " coordinates, \"dim\" says " +
               std::to_string(spec.dim),
           tenant);
  return spec;
}

}  // namespace

Json tenant_spec_to_json(const TenantSpec& spec) {
  Json doc = Json::object();
  doc.set("tenant", spec.tenant);
  doc.set("algorithm", spec.algorithm);
  doc.set("seed", spec.seed);
  doc.set("dim", spec.dim);
  doc.set("k", spec.fleet_size);
  doc.set("speed", spec.speed_factor);
  doc.set("policy", policy_name(spec.policy));
  doc.set("D", spec.params.move_cost_weight);
  doc.set("m", spec.params.max_step);
  doc.set("order", order_name(spec.params.order));
  // Rate members are emitted only when set, keeping rate-less specs (and
  // thus every pre-rate snapshot/`opened` frame) byte-identical to v1.
  if (spec.rate > 0.0) {
    doc.set("rate", spec.rate);
    if (spec.rate_burst > 0.0) doc.set("burst", spec.rate_burst);
  }
  Json starts = Json::array();
  for (const sim::Point& p : spec.starts) starts.push_back(point_to_json(p));
  doc.set("starts", std::move(starts));
  return doc;
}

TenantSpec tenant_spec_from_json(const Json& doc) {
  if (!doc.is_object()) throw FrameError("tenant spec must be a JSON object");
  reject_unknown_members(doc,
                         {"tenant", "algorithm", "seed", "dim", "k", "speed", "policy", "D", "m",
                          "order", "start", "starts", "rate", "burst"},
                         "tenant spec", sniff_tenant(doc));
  return spec_from_members(doc, "tenant spec");
}

ClientFrame parse_client_frame(std::string_view line) {
  Json doc;
  try {
    doc = Json::parse(line);
  } catch (const io::JsonError& error) {
    throw FrameError(std::string("malformed JSON: ") + error.what());
  }
  if (!doc.is_object()) throw FrameError("frame must be a JSON object");
  const std::string tenant = sniff_tenant(doc);
  const Json* type_member = doc.find("type");
  if (type_member == nullptr || !type_member->is_string())
    fail("frame is missing its \"type\"", tenant);
  const std::string& type = type_member->as_string();

  ClientFrame frame;
  if (type == "open") {
    frame.type = FrameType::kOpen;
    check_version(doc, /*required=*/true, type, tenant);
    reject_unknown_members(doc,
                           {"type", "v", "tenant", "algorithm", "seed", "dim", "k", "speed",
                            "policy", "D", "m", "order", "start", "starts", "rate", "burst"},
                           type, tenant);
    frame.open = spec_from_members(doc, type);
    frame.tenant = frame.open.tenant;
  } else if (type == "req") {
    frame.type = FrameType::kReq;
    check_version(doc, /*required=*/false, type, tenant);
    reject_unknown_members(doc, {"type", "v", "tenant", "batch"}, type, tenant);
    frame.tenant = require_string(doc, "tenant", type, tenant);
    const Json& batch = require(doc, "batch", type, tenant);
    if (!batch.is_array()) fail("\"batch\" must be an array of points", tenant);
    frame.batch.requests.reserve(batch.as_array().size());
    int dim = 0;
    for (const Json& request : batch.as_array()) {
      sim::Point p = parse_point(request, "\"batch\" request", tenant);
      if (dim == 0)
        dim = p.dim();
      else if (p.dim() != dim)
        fail("\"batch\" mixes " + std::to_string(dim) + "- and " + std::to_string(p.dim()) +
                 "-dimensional requests",
             tenant);
      frame.batch.requests.push_back(std::move(p));
    }
  } else if (type == "close") {
    frame.type = FrameType::kClose;
    check_version(doc, /*required=*/false, type, tenant);
    reject_unknown_members(doc, {"type", "v", "tenant"}, type, tenant);
    frame.tenant = require_string(doc, "tenant", type, tenant);
  } else if (type == "stats") {
    frame.type = FrameType::kStats;
    check_version(doc, /*required=*/false, type, tenant);
    reject_unknown_members(doc, {"type", "v", "tenant"}, type, tenant);
    if (doc.find("tenant") != nullptr)
      frame.tenant = require_string(doc, "tenant", type, tenant);
  } else if (type == "metrics") {
    frame.type = FrameType::kMetrics;
    check_version(doc, /*required=*/false, type, tenant);
    reject_unknown_members(doc, {"type", "v"}, type, tenant);
  } else if (type == "checkpoint" || type == "shutdown" || type == "kill") {
    frame.type = type == "checkpoint" ? FrameType::kCheckpoint
                 : type == "shutdown" ? FrameType::kShutdown
                                      : FrameType::kKill;
    check_version(doc, /*required=*/false, type, tenant);
    reject_unknown_members(doc, {"type", "v"}, type, tenant);
  } else {
    fail("unknown frame type \"" + type + "\"", tenant);
  }
  return frame;
}

// ---------------------------------------------------------------------------
// Server frame builders.
// ---------------------------------------------------------------------------

std::string opened_frame(const TenantSpec& spec) {
  Json doc = Json::object();
  doc.set("type", "opened");
  doc.set("v", kProtocolVersion);
  Json body = tenant_spec_to_json(spec);
  for (Json::Member& member : body.as_object())
    doc.set(std::move(member.first), std::move(member.second));
  return doc.dump();
}

std::string outcome_frame(const std::string& tenant, std::size_t t, double move_delta,
                          double service_delta, const core::SessionStats& stats, bool lean) {
  Json doc = Json::object();
  doc.set("type", "outcome");
  doc.set("tenant", tenant);
  doc.set("t", t);
  doc.set("move", move_delta);
  doc.set("service", service_delta);
  doc.set("move_total", stats.move_cost);
  doc.set("service_total", stats.service_cost);
  doc.set("total", stats.total_cost);
  if (!lean) {
    Json positions = Json::array();
    for (const sim::Point& p : stats.positions) positions.push_back(point_to_json(p));
    doc.set("positions", std::move(positions));
  }
  return doc.dump();
}

std::string busy_frame(const std::string& tenant, std::uint64_t line, std::size_t queued,
                       std::size_t limit) {
  Json doc = Json::object();
  doc.set("type", "busy");
  doc.set("tenant", tenant);
  doc.set("line", line);
  doc.set("queued", queued);
  doc.set("limit", limit);
  return doc.dump();
}

std::string error_frame(std::uint64_t line, const std::string& message,
                        const std::string& tenant, bool closed_tenant) {
  Json doc = Json::object();
  doc.set("type", "error");
  if (line > 0) doc.set("line", line);
  doc.set("message", message);
  if (!tenant.empty()) {
    doc.set("tenant", tenant);
    doc.set("closed", closed_tenant);
  }
  return doc.dump();
}

Json stats_to_json(const core::SessionStats& stats, const TenantObsRow* row) {
  Json doc = Json::object();
  doc.set("tenant", stats.tenant);
  doc.set("algorithm", stats.algorithm);
  doc.set("k", stats.fleet_size);
  doc.set("steps", stats.steps);
  doc.set("move", stats.move_cost);
  doc.set("service", stats.service_cost);
  doc.set("total", stats.total_cost);
  doc.set("closed", stats.closed);
  if (row != nullptr) {
    // Telemetry members strictly append to the v1 row (byte-compat rule).
    doc.set("queued", stats.horizon - stats.steps);
    doc.set("reqs", row->reqs);
    doc.set("outcomes", row->outcomes);
    doc.set("busys", row->busys);
    doc.set("errors", row->errors);
    doc.set("inflight_hwm", row->inflight_hwm);
    doc.set("throttled", stats.throttled_rounds);
    doc.set("ingest_latency_ns", obs::summary_to_json(row->ingest_latency));
  }
  return doc;
}

std::string closed_frame(const core::SessionStats& stats) {
  Json doc = Json::object();
  doc.set("type", "closed");
  Json body = stats_to_json(stats);
  for (Json::Member& member : body.as_object())
    doc.set(std::move(member.first), std::move(member.second));
  return doc.dump();
}

namespace {

/// Per-tenant rows for stats/metrics frames; \p rows (when given) is
/// indexed by slot id, parallel to \p stats.
Json tenant_rows(const std::vector<core::SessionStats>& stats,
                 const std::vector<TenantObsRow>* rows) {
  if (rows != nullptr)
    MOBSRV_CHECK_MSG(rows->size() == stats.size(),
                     "telemetry rows out of sync with mux snapshot");
  Json tenants = Json::array();
  for (std::size_t i = 0; i < stats.size(); ++i)
    tenants.push_back(stats_to_json(stats[i], rows != nullptr ? &(*rows)[i] : nullptr));
  return tenants;
}

}  // namespace

std::string stats_frame(const std::vector<core::SessionStats>& stats,
                        const core::MuxTotals& totals, const std::vector<TenantObsRow>* rows,
                        bool degraded) {
  Json doc = Json::object();
  doc.set("type", "stats");
  doc.set("tenants", tenant_rows(stats, rows));
  doc.set("sessions", totals.sessions);
  doc.set("live", totals.live);
  doc.set("steps", totals.steps);
  doc.set("move", totals.move_cost);
  doc.set("service", totals.service_cost);
  doc.set("total", totals.total_cost);
  if (rows != nullptr) {
    // Aggregate telemetry, appended after the v1 members (byte-compat).
    doc.set("active_sessions", totals.active);
    doc.set("throttled", totals.throttled);
    doc.set("queue_depth", totals.queue_depth);
    doc.set("step_latency_ns", obs::summary_to_json(totals.step_latency));
    doc.set("steps_per_session", obs::summary_to_json(totals.steps_per_session));
    doc.set("degraded", degraded);
  }
  return doc.dump();
}

std::string metrics_frame(const io::Json::Array& metrics,
                          const std::vector<core::SessionStats>& stats,
                          const std::vector<TenantObsRow>& rows) {
  Json doc = Json::object();
  doc.set("type", "metrics");
  doc.set("v", kProtocolVersion);
  doc.set("metrics", Json(metrics));
  doc.set("tenants", tenant_rows(stats, &rows));
  return doc.dump();
}

std::string checkpointed_frame(const std::string& path, std::size_t sessions, std::size_t steps,
                               const std::string& mode, std::uint64_t bytes,
                               std::size_t segments) {
  Json doc = Json::object();
  doc.set("type", "checkpointed");
  doc.set("path", path);
  doc.set("sessions", sessions);
  doc.set("steps", steps);
  // Segment-chain shape, appended after the v1 members (byte-compat).
  doc.set("mode", mode);
  doc.set("bytes", bytes);
  doc.set("segments", segments);
  return doc.dump();
}

std::string bye_frame(const std::string& reason, const core::MuxTotals& totals) {
  Json doc = Json::object();
  doc.set("type", "bye");
  doc.set("reason", reason);
  doc.set("sessions", totals.sessions);
  doc.set("steps", totals.steps);
  doc.set("total", totals.total_cost);
  return doc.dump();
}

}  // namespace mobsrv::serve
