#include "serve/tenant_table.hpp"

#include <algorithm>

namespace mobsrv::serve {

namespace {

core::SessionSpec to_session_spec(const Tenant& tenant) {
  core::SessionSpec spec;
  spec.workload = tenant.workload;
  spec.algorithm = tenant.spec.algorithm;
  spec.algo_seed = tenant.spec.seed;
  spec.speed_factor = tenant.spec.speed_factor;
  spec.policy = tenant.spec.policy;
  spec.tenant = tenant.spec.tenant;
  spec.fleet_size = tenant.spec.fleet_size;
  spec.starts = tenant.spec.starts;
  spec.rate.steps_per_round = tenant.spec.rate;
  spec.rate.burst = tenant.spec.rate_burst;
  return spec;
}

}  // namespace

Tenant& TenantTable::admit(TenantSpec spec, core::SessionMultiplexer& mux) {
  auto workload = std::make_shared<sim::Instance>(spec.starts.front(), spec.params,
                                                  sim::RequestStore(spec.dim));
  return install(std::move(spec), std::move(workload), mux);
}

Tenant& TenantTable::admit_restored(TenantSpec spec, std::size_t consumed,
                                    core::SessionMultiplexer& mux) {
  // Pad the rebuilt workload with the steps the saved session already
  // consumed: the cursor resumes past them, so their content is never read
  // again — empty steps keep the restored process's request buffers
  // compact regardless of how long the tenant had been running.
  sim::RequestStore store(spec.dim);
  store.reserve(consumed, 0);
  for (std::size_t t = 0; t < consumed; ++t) store.push_batch(sim::BatchView{});
  auto workload =
      std::make_shared<sim::Instance>(spec.starts.front(), spec.params, std::move(store));
  return install(std::move(spec), std::move(workload), mux);
}

Tenant& TenantTable::install(TenantSpec spec, std::shared_ptr<sim::Instance> workload,
                             core::SessionMultiplexer& mux) {
  if (find(spec.tenant) != nullptr)
    throw FrameError("tenant \"" + spec.tenant + "\" is already open", spec.tenant);
  auto tenant = std::make_unique<Tenant>();
  tenant->spec = std::move(spec);
  tenant->workload = std::move(workload);
  tenant->emitted = tenant->workload->horizon();
  tenant->slot = mux.add(to_session_spec(*tenant));
  entries_.push_back(std::move(tenant));
  Tenant& installed = *entries_.back();
  by_name_.emplace(installed.spec.tenant, &installed);
  by_slot_.emplace(installed.slot, &installed);
  return installed;
}

Tenant* TenantTable::find(const std::string& name) {
  const auto it = by_name_.find(name);
  return it != by_name_.end() ? it->second : nullptr;
}

Tenant* TenantTable::find_slot(std::size_t slot) {
  const auto it = by_slot_.find(slot);
  return it != by_slot_.end() ? it->second : nullptr;
}

void TenantTable::erase(const std::string& name) {
  const auto it = by_name_.find(name);
  if (it == by_name_.end()) return;
  by_slot_.erase(it->second->slot);
  by_name_.erase(it);
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [&](const std::unique_ptr<Tenant>& tenant) {
                                  return tenant->spec.tenant == name;
                                }),
                 entries_.end());
}

}  // namespace mobsrv::serve
