/// \file telemetry.hpp
/// The service's observability surface: registry, journal, per-tenant rows.
///
/// ServeTelemetry owns everything the telemetry layer adds to the serve
/// loop: the obs::Registry of service-wide metrics (stable names, catalogued
/// in docs/OBSERVABILITY.md), the bounded obs::Journal of lifecycle events,
/// and one TenantTelemetry row per mux slot (slot ids are dense and never
/// reused, so a row outlives its tenant and per-tenant accounting survives
/// churn). Service calls inc()/record() at each wiring site; collect()
/// assembles the full registry dump (including the mux-owned metrics) for
/// the `metrics` frame and snapshot_ndjson() renders the --metrics-out
/// file. Everything here is observational only: results are bit-identical
/// with telemetry on, off, or --lean (DESIGN.md §7).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/session_multiplexer.hpp"
#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "serve/frames.hpp"

namespace mobsrv::serve {

/// One catalog row: what `mobsrv_serve --dump-metrics` prints and
/// tools/check_metrics_docs.py cross-checks against docs/OBSERVABILITY.md.
struct MetricInfo {
  std::string name;
  std::string type;  ///< "counter" | "gauge" | "histogram"
  std::string unit;
  std::string help;
};

/// Every metric this build can emit — the registry-backed serve.* names
/// plus the mux/journal-owned ones that collect() pulls in externally.
/// Single source of truth: the frame, the snapshot and the catalog cannot
/// drift apart.
[[nodiscard]] std::vector<MetricInfo> metric_catalog();

/// Per-tenant serve-side counters, one per mux slot.
struct TenantTelemetry {
  std::string tenant;
  std::uint64_t reqs = 0;      ///< accepted + bounced req frames
  std::uint64_t outcomes = 0;  ///< outcome frames emitted
  std::uint64_t busys = 0;     ///< busy bounces
  std::uint64_t errors = 0;    ///< error frames that closed this tenant
  std::size_t inflight_hwm = 0;
  obs::Histogram ingest_latency;  ///< accept -> outcome wall ns

  /// FIFO of accept timestamps for steps accepted but not yet consumed
  /// (head index instead of pop_front keeps accepts allocation-amortised).
  void push_accept(std::uint64_t ns);
  /// Timestamp of the oldest accepted-but-unconsumed step, 0 when none
  /// (e.g. steps restored from a snapshot were accepted by a previous
  /// process and carry no stamp).
  std::uint64_t pop_accept();

  [[nodiscard]] TenantObsRow row() const;

 private:
  std::vector<std::uint64_t> accepted_ns_;
  std::size_t accepted_head_ = 0;
};

/// The service's metrics registry + journal + per-tenant rows.
class ServeTelemetry {
 private:
  // Declared before the public references: member init order is declaration
  // order, and the references below bind into this registry.
  bool lean_;
  obs::Registry registry_;
  obs::Journal journal_;
  std::vector<TenantTelemetry> rows_;  ///< by slot id, grow-only

 public:
  explicit ServeTelemetry(bool lean);

  /// --lean: skip the per-step clock reads (ingest-latency stamps); the
  /// cheap counters stay live. The obs/overhead perf row pins the
  /// instrumented drain within 2% of this path.
  [[nodiscard]] bool lean() const noexcept { return lean_; }

  // Service-wide metrics (names catalogued in docs/OBSERVABILITY.md).
  obs::Counter& frames;           ///< serve.frames_total
  obs::Counter& reqs;             ///< serve.reqs_total
  obs::Counter& outcomes;         ///< serve.outcomes_total
  obs::Counter& busys;            ///< serve.busys_total
  obs::Counter& errors;           ///< serve.errors_total
  obs::Counter& tenants_opened;   ///< serve.tenants_opened_total
  obs::Counter& tenants_closed;   ///< serve.tenants_closed_total
  obs::Counter& snapshots;        ///< serve.snapshots_total
  obs::Counter& checkpoint_bytes; ///< serve.checkpoint_bytes_total
  obs::Counter& throttles;        ///< serve.throttles_total
  obs::Counter& retries;          ///< serve.retries_total
  obs::Counter& degraded_total;   ///< serve.degraded_total
  obs::Counter& idle_timeouts;    ///< serve.idle_timeouts_total
  obs::Gauge& tenants_open;       ///< serve.tenants_open
  obs::Gauge& inflight_hwm;       ///< serve.inflight_hwm
  obs::Gauge& degraded;           ///< serve.degraded
  obs::Histogram& ingest_latency; ///< serve.ingest_latency_ns

  [[nodiscard]] obs::Journal& journal() noexcept { return journal_; }
  [[nodiscard]] const obs::Journal& journal() const noexcept { return journal_; }

  /// Registry entries in registration order (metric_catalog reads these).
  [[nodiscard]] const std::vector<std::unique_ptr<obs::Registry::Entry>>& registry_entries()
      const noexcept {
    return registry_.entries();
  }

  /// The row for mux slot \p slot, created (and labelled) on first use.
  TenantTelemetry& tenant_row(std::size_t slot, const std::string& tenant);
  /// The row for slot \p slot, or nullptr if never created.
  [[nodiscard]] const TenantTelemetry* row(std::size_t slot) const noexcept;

  /// Frame-ready rows for slots 0..count-1 (count = mux.size(); slots with
  /// no serve-side activity get an all-zero row).
  [[nodiscard]] std::vector<TenantObsRow> rows(std::size_t count) const;

  /// Full metrics dump: every registry entry's current value plus the
  /// mux/journal-owned metrics (mux.queue_depth, mux.step_latency_ns,
  /// mux.steps_per_session, obs.journal_dropped_total,
  /// mux.active_sessions, mux.throttled_total).
  [[nodiscard]] io::Json::Array collect(const core::SessionMultiplexer& mux) const;

  /// The --metrics-out NDJSON snapshot: one {"kind":"meta"} header line,
  /// then {"kind":"metric"} / {"kind":"tenant"} / {"kind":"event"} lines
  /// (docs/OBSERVABILITY.md documents the schema). \p stats must be the
  /// mux's current snapshot().
  [[nodiscard]] std::string snapshot_ndjson(const core::SessionMultiplexer& mux,
                                            const std::vector<core::SessionStats>& stats) const;
};

}  // namespace mobsrv::serve
