#include "serve/service.hpp"

#include <istream>
#include <ostream>
#include <utility>

#include "common/contracts.hpp"
#include "trace/checkpoint.hpp"

namespace mobsrv::serve {

Service::Service(ServiceOptions options)
    : options_(std::move(options)),
      pool_(options_.threads),
      mux_(pool_),
      telemetry_(options_.lean) {
  // --lean runs the hot loop clock-free; the counters stay live either way.
  mux_.set_timing_enabled(!options_.lean);
}

void Service::restore(const std::filesystem::path& path) {
  MOBSRV_CHECK_MSG(table_.size() == 0 && mux_.size() == 0,
                   "restore must run before any tenants are admitted");
  const ServiceSnapshot snapshot = read_snapshot(path);
  for (std::size_t i = 0; i < snapshot.tenants.size(); ++i)
    table_.admit_restored(snapshot.tenants[i], snapshot.records[i].cursor, mux_);
  mux_.restore(snapshot.records);
  // Sync the emission ledger with the restored accumulators: outcomes up to
  // the saved cursor were emitted by the previous process.
  for (const auto& tenant : table_.entries()) {
    const core::SessionStats stats = mux_.stats(tenant->slot);
    tenant->emitted = stats.steps;
    tenant->emitted_move = stats.move_cost;
    tenant->emitted_service = stats.service_cost;
  }
  // Telemetry counters are process-local (they start fresh), but the open
  // set is real: rebuild the gauge and the per-slot rows.
  for (const auto& tenant : table_.entries()) {
    telemetry_.tenant_row(tenant->slot, tenant->spec.tenant);
    telemetry_.tenants_open.add(1);
  }
  telemetry_.journal().record(obs::EventType::kRestore, {}, path.string());
}

ExitReason Service::run(std::istream& in, std::ostream& out) {
  std::string line;
  for (;;) {
    if (options_.stop != nullptr && options_.stop->load(std::memory_order_relaxed))
      return finish(ExitReason::kSignal, out);
    // Input pause: nothing buffered means the client is waiting on us, so
    // consume the queues (and stream outcomes) before blocking on the next
    // line. During a burst, frames keep landing and consumption batches up.
    if (in.rdbuf()->in_avail() <= 0) {
      pump(out);
      out.flush();
    }
    if (!std::getline(in, line)) {
      // getline also fails when a signal interrupts the read mid-wait.
      if (options_.stop != nullptr && options_.stop->load(std::memory_order_relaxed))
        return finish(ExitReason::kSignal, out);
      return finish(ExitReason::kEof, out);
    }
    ++lines_;
    if (line.empty()) continue;
    telemetry_.frames.inc();
    handle_line(line, out);
    if (killed_) return ExitReason::kKill;
    if (shutdown_) return finish(ExitReason::kShutdown, out);
  }
}

void Service::handle_line(const std::string& line, std::ostream& out) {
  ClientFrame frame;
  try {
    frame = parse_client_frame(line);
  } catch (const FrameError& error) {
    // The malformed-frame discipline: close the tenant the frame named (its
    // stream is now unreliable), never the process. Unattributable garbage
    // gets an error frame and nothing else.
    if (!error.tenant().empty() && table_.find(error.tenant()) != nullptr)
      fail_tenant(error.tenant(), error.what(), out);
    else
      out << error_frame(lines_, error.what(), error.tenant(), false) << '\n';
    return;
  }
  switch (frame.type) {
    case FrameType::kOpen:
      handle_open(std::move(frame.open), out);
      break;
    case FrameType::kReq:
      handle_req(frame, out);
      break;
    case FrameType::kClose:
      handle_close(frame.tenant, out);
      break;
    case FrameType::kStats:
      handle_stats(frame.tenant, out);
      break;
    case FrameType::kMetrics:
      handle_metrics(out);
      break;
    case FrameType::kCheckpoint:
      handle_checkpoint(out);
      break;
    case FrameType::kShutdown:
      shutdown_ = true;
      break;
    case FrameType::kKill:
      killed_ = true;
      break;
  }
}

void Service::handle_open(TenantSpec spec, std::ostream& out) {
  const std::string name = spec.tenant;
  try {
    Tenant& tenant = table_.admit(std::move(spec), mux_);
    telemetry_.tenant_row(tenant.slot, name);
    telemetry_.tenants_opened.inc();
    telemetry_.tenants_open.add(1);
    telemetry_.journal().record(obs::EventType::kOpen, name, tenant.spec.algorithm);
    out << opened_frame(tenant.spec) << '\n';
  } catch (const std::exception& error) {
    // Admission failures (duplicate name, unknown algorithm, k > 1 on a
    // single-server strategy) reject the candidate; a tenant already open
    // under this name is untouched.
    out << error_frame(lines_, error.what(), name, false) << '\n';
  }
}

void Service::handle_req(const ClientFrame& frame, std::ostream& out) {
  Tenant* tenant = table_.find(frame.tenant);
  if (tenant == nullptr) {
    out << error_frame(lines_,
                       "unknown tenant \"" + frame.tenant + "\" (send an \"open\" frame first)",
                       frame.tenant, false)
        << '\n';
    return;
  }
  if (!frame.batch.empty() && frame.batch.requests.front().dim() != tenant->spec.dim) {
    fail_tenant(frame.tenant,
                "\"batch\" requests have " +
                    std::to_string(frame.batch.requests.front().dim()) +
                    " coordinates but tenant \"" + frame.tenant + "\" declared dim " +
                    std::to_string(tenant->spec.dim),
                out);
    return;
  }
  const std::size_t queued = tenant->workload->horizon() - mux_.stats(tenant->slot).steps;
  TenantTelemetry& row = telemetry_.tenant_row(tenant->slot, frame.tenant);
  if (queued >= options_.max_inflight) {
    // Bounded in-flight queue: the frame is NOT accepted (the client must
    // re-send it) — an explicit busy beats a silent drop. Consume now so
    // the retry lands. Counted in reqs AND busys, so
    // reqs == outcomes + busys holds at every quiescent point.
    telemetry_.reqs.inc();
    telemetry_.busys.inc();
    ++row.reqs;
    ++row.busys;
    telemetry_.journal().record(obs::EventType::kBusy, frame.tenant,
                                "queued " + std::to_string(queued) + " >= limit " +
                                    std::to_string(options_.max_inflight));
    out << busy_frame(frame.tenant, lines_, queued, options_.max_inflight) << '\n';
    pump(out);
    return;
  }
  tenant->workload->push_step(frame.batch);
  telemetry_.reqs.inc();
  ++row.reqs;
  if (queued + 1 > row.inflight_hwm) row.inflight_hwm = queued + 1;
  telemetry_.inflight_hwm.raise_to(static_cast<std::int64_t>(queued + 1));
  if (!telemetry_.lean()) row.push_accept(obs::now_ns());
}

void Service::handle_close(const std::string& name, std::ostream& out) {
  Tenant* tenant = table_.find(name);
  if (tenant == nullptr) {
    out << error_frame(lines_, "unknown tenant \"" + name + "\"", name, false) << '\n';
    return;
  }
  pump(out);  // consume its queue (outcomes still stream) before the final bill
  if (table_.find(name) == nullptr) return;  // the pump failed and closed it
  const std::size_t slot = tenant->slot;
  mux_.close(slot);
  telemetry_.tenants_closed.inc();
  telemetry_.tenants_open.add(-1);
  telemetry_.journal().record(obs::EventType::kClose, name);
  out << closed_frame(mux_.stats(slot)) << '\n';
  table_.erase(name);
}

void Service::handle_stats(const std::string& name, std::ostream& out) {
  if (name.empty()) {
    const std::vector<TenantObsRow> rows = telemetry_.rows(mux_.size());
    out << stats_frame(mux_.snapshot(), mux_.totals(), &rows) << '\n';
    return;
  }
  Tenant* tenant = table_.find(name);
  if (tenant == nullptr) {
    out << error_frame(lines_, "unknown tenant \"" + name + "\"", name, false) << '\n';
    return;
  }
  const TenantTelemetry* row = telemetry_.row(tenant->slot);
  const std::vector<TenantObsRow> rows = {row != nullptr ? row->row() : TenantObsRow{}};
  out << stats_frame({mux_.stats(tenant->slot)}, mux_.totals(), &rows) << '\n';
}

void Service::handle_metrics(std::ostream& out) {
  // Quiesce first: with every accepted step consumed, the frame's counters
  // satisfy reqs == outcomes + busys (barring error-closed tenants).
  pump(out);
  out << metrics_frame(telemetry_.collect(mux_), mux_.snapshot(), telemetry_.rows(mux_.size()))
      << '\n';
  write_metrics(out, /*force=*/true);
}

void Service::handle_checkpoint(std::ostream& out) {
  if (options_.snapshot_path.empty()) {
    out << error_frame(lines_,
                       "checkpointing is disabled (start mobsrv_serve with --snapshot PATH)", "",
                       false)
        << '\n';
    return;
  }
  pump(out);  // snapshots are taken at quiescent points only
  maybe_snapshot(out, /*force=*/true);
}

void Service::fail_tenant(const std::string& name, const std::string& message,
                          std::ostream& out) {
  pump(out);  // already-accepted steps still produce their outcomes
  Tenant* tenant = table_.find(name);
  if (tenant == nullptr) {
    // The pump itself failed the tenant and already reported it.
    out << error_frame(lines_, message, name, true) << '\n';
    return;
  }
  const std::size_t slot = tenant->slot;
  mux_.close(slot);
  note_tenant_error(slot, name, message);
  out << error_frame(lines_, message, name, true) << '\n';
  out << closed_frame(mux_.stats(slot)) << '\n';
  table_.erase(name);
}

void Service::note_tenant_error(std::size_t slot, const std::string& name,
                                const std::string& message) {
  telemetry_.errors.inc();
  ++telemetry_.tenant_row(slot, name).errors;
  telemetry_.tenants_closed.inc();
  telemetry_.tenants_open.add(-1);
  telemetry_.journal().record(obs::EventType::kError, name, message);
}

void Service::pump(std::ostream& out) {
  std::vector<core::SessionMultiplexer::SlotError> errors;
  for (;;) {
    bool pending = false;
    for (const auto& tenant : table_.entries())
      if (tenant->workload->horizon() > tenant->emitted) {
        pending = true;
        break;
      }
    if (!pending) break;

    // One step per round keeps the per-step cost deltas exact: each live
    // session advances by at most one step between ledger snapshots.
    errors.clear();
    mux_.step_capturing(1, errors);

    for (const auto& tenant : table_.entries()) {
      const core::SessionStats stats = mux_.stats(tenant->slot);
      if (stats.steps <= tenant->emitted) continue;
      out << outcome_frame(tenant->spec.tenant, stats.steps - 1,
                           stats.move_cost - tenant->emitted_move,
                           stats.service_cost - tenant->emitted_service, stats, options_.lean)
          << '\n';
      tenant->emitted = stats.steps;
      tenant->emitted_move = stats.move_cost;
      tenant->emitted_service = stats.service_cost;
      ++steps_since_snapshot_;
      ++steps_since_metrics_;
      telemetry_.outcomes.inc();
      TenantTelemetry& row = telemetry_.tenant_row(tenant->slot, tenant->spec.tenant);
      ++row.outcomes;
      // Steps restored from a snapshot carry no accept stamp (pop == 0).
      if (const std::uint64_t accepted = row.pop_accept(); accepted != 0) {
        const std::uint64_t latency = obs::now_ns() - accepted;
        row.ingest_latency.record(latency);
        telemetry_.ingest_latency.record(latency);
      }
    }

    // Sessions that threw were closed by the mux (their slot alone); report
    // and drop them — every other tenant keeps streaming.
    for (const core::SessionMultiplexer::SlotError& error : errors) {
      for (const auto& tenant : table_.entries()) {
        if (tenant->slot != error.id) continue;
        note_tenant_error(error.id, tenant->spec.tenant, error.message);
        out << error_frame(lines_, error.message, tenant->spec.tenant, true) << '\n';
        out << closed_frame(mux_.stats(error.id)) << '\n';
        table_.erase(tenant->spec.tenant);
        break;
      }
    }
  }
  maybe_snapshot(out, /*force=*/false);
  write_metrics(out, /*force=*/false);
}

void Service::maybe_snapshot(std::ostream& out, bool force) {
  if (options_.snapshot_path.empty()) return;
  if (!force &&
      (options_.checkpoint_every == 0 || steps_since_snapshot_ < options_.checkpoint_every))
    return;
  try {
    const ServiceSnapshot snapshot = make_snapshot();
    write_snapshot(options_.snapshot_path, snapshot);
    steps_since_snapshot_ = 0;
    telemetry_.snapshots.inc();
    telemetry_.journal().record(obs::EventType::kCheckpoint, {},
                                options_.snapshot_path.string());
    out << checkpointed_frame(options_.snapshot_path.string(), snapshot.tenants.size(),
                              mux_.totals().steps)
        << '\n';
  } catch (const std::exception& error) {
    // A failed save is loud but not fatal: the service keeps running on the
    // previous good snapshot (write_bytes_atomic never clobbers it).
    out << error_frame(0, std::string("snapshot save failed: ") + error.what(), "", false)
        << '\n';
  }
}

ServiceSnapshot Service::make_snapshot() const {
  ServiceSnapshot snapshot;
  snapshot.tenants.reserve(table_.size());
  for (const auto& tenant : table_.entries()) snapshot.tenants.push_back(tenant->spec);
  snapshot.records = mux_.checkpoint();
  return snapshot;
}

ExitReason Service::finish(ExitReason reason, std::ostream& out) {
  pump(out);
  maybe_snapshot(out, /*force=*/true);
  const char* why = reason == ExitReason::kEof        ? "eof"
                    : reason == ExitReason::kShutdown ? "shutdown"
                                                      : "signal";
  telemetry_.journal().record(obs::EventType::kDrain, {}, why);
  write_metrics(out, /*force=*/true);
  out << bye_frame(why, mux_.totals()) << '\n';
  out.flush();
  return reason;
}

void Service::write_metrics(std::ostream& out, bool force) {
  if (options_.metrics_path.empty()) return;
  if (!force &&
      (options_.metrics_every == 0 || steps_since_metrics_ < options_.metrics_every))
    return;
  try {
    trace::write_bytes_atomic(options_.metrics_path,
                              telemetry_.snapshot_ndjson(mux_, mux_.snapshot()));
    steps_since_metrics_ = 0;
  } catch (const std::exception& error) {
    // Same discipline as snapshot saves: loud but never fatal, and the
    // previous good file survives (write_bytes_atomic never clobbers it).
    out << error_frame(0, std::string("metrics snapshot failed: ") + error.what(), "", false)
        << '\n';
  }
}

}  // namespace mobsrv::serve
