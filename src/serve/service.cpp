#include "serve/service.hpp"

#include <algorithm>
#include <chrono>
#include <istream>
#include <ostream>
#include <thread>
#include <utility>

#include "common/contracts.hpp"
#include "fault/injector.hpp"
#include "trace/checkpoint.hpp"

namespace mobsrv::serve {

Service::Service(ServiceOptions options)
    : options_(std::move(options)),
      pool_(options_.threads),
      mux_(pool_),
      telemetry_(options_.lean) {
  // --lean runs the hot loop clock-free; the counters stay live either way.
  mux_.set_timing_enabled(!options_.lean);
  // A writer killed mid-save leaves a stale ".tmp" beside its target. It is
  // never read (write_bytes_atomic truncates it on the next save), but
  // sweep it so a crashed run leaves nothing an operator could mistake for
  // a real save.
  for (const std::filesystem::path& target : {options_.snapshot_path, options_.metrics_path}) {
    if (target.empty()) continue;
    std::filesystem::path tmp = target;
    tmp += ".tmp";
    std::error_code ignored;
    std::filesystem::remove(tmp, ignored);
  }
}

void Service::restore(const std::filesystem::path& path) {
  MOBSRV_CHECK_MSG(table_.size() == 0 && mux_.size() == 0,
                   "restore must run before any tenants are admitted");
  const ServiceSnapshot snapshot = read_snapshot(path);
  for (std::size_t i = 0; i < snapshot.tenants.size(); ++i)
    table_.admit_restored(snapshot.tenants[i], snapshot.records[i].cursor, mux_);
  mux_.restore(snapshot.records);
  // Sync the emission ledger with the restored accumulators: outcomes up to
  // the saved cursor were emitted by the previous process.
  for (const auto& tenant : table_.entries()) {
    const core::SessionStats stats = mux_.stats(tenant->slot);
    tenant->emitted = stats.steps;
    tenant->emitted_move = stats.move_cost;
    tenant->emitted_service = stats.service_cost;
  }
  // Telemetry counters are process-local (they start fresh), but the open
  // set is real: rebuild the gauge and the per-slot rows.
  for (const auto& tenant : table_.entries()) {
    telemetry_.tenant_row(tenant->slot, tenant->spec.tenant);
    telemetry_.tenants_open.add(1);
  }
  telemetry_.journal().record(obs::EventType::kRestore, {}, path.string());
}

ExitReason Service::run(std::istream& in, std::ostream& out) {
  std::string line;
  for (;;) {
    if (options_.stop != nullptr && options_.stop->load(std::memory_order_relaxed))
      return finish(ExitReason::kSignal, out);
    // Input pause: nothing buffered means the client is waiting on us, so
    // consume the queues (and stream outcomes) before blocking on the next
    // line. During a burst, frames keep landing and consumption batches up.
    if (in.rdbuf()->in_avail() <= 0) {
      pump(out);
      out.flush();
    }
    if (!std::getline(in, line)) {
      // getline also fails when a signal interrupts the read mid-wait.
      if (options_.stop != nullptr && options_.stop->load(std::memory_order_relaxed))
        return finish(ExitReason::kSignal, out);
      return finish(ExitReason::kEof, out);
    }
    ++lines_;
    if (line.empty()) continue;
    if (options_.faults != nullptr) {
      try {
        options_.faults->hit(fault::kSiteServeRead);
      } catch (const std::exception& error) {
        // A `fail` here models a flaky transport read. The line was already
        // read whole, so the honest recovery is to report and keep it —
        // dropping it would deadlock a client waiting on its reply (crash
        // and delay outcomes keep their full effect).
        out << error_frame(lines_, error.what(), "", false) << '\n';
      }
    }
    telemetry_.frames.inc();
    handle_line(line, out);
    if (killed_) return ExitReason::kKill;
    if (shutdown_) return finish(ExitReason::kShutdown, out);
  }
}

void Service::handle_line(const std::string& line, std::ostream& out) {
  ClientFrame frame;
  try {
    frame = parse_client_frame(line);
  } catch (const FrameError& error) {
    // The malformed-frame discipline: close the tenant the frame named (its
    // stream is now unreliable), never the process. Unattributable garbage
    // gets an error frame and nothing else.
    if (!error.tenant().empty() && table_.find(error.tenant()) != nullptr)
      fail_tenant(error.tenant(), error.what(), out);
    else
      out << error_frame(lines_, error.what(), error.tenant(), false) << '\n';
    return;
  }
  switch (frame.type) {
    case FrameType::kOpen:
      handle_open(std::move(frame.open), out);
      break;
    case FrameType::kReq:
      handle_req(frame, out);
      break;
    case FrameType::kClose:
      handle_close(frame.tenant, out);
      break;
    case FrameType::kStats:
      handle_stats(frame.tenant, out);
      break;
    case FrameType::kMetrics:
      handle_metrics(out);
      break;
    case FrameType::kCheckpoint:
      handle_checkpoint(out);
      break;
    case FrameType::kShutdown:
      shutdown_ = true;
      break;
    case FrameType::kKill:
      killed_ = true;
      break;
  }
}

void Service::handle_open(TenantSpec spec, std::ostream& out) {
  const std::string name = spec.tenant;
  // --default-rate fills in an admission rate for tenants that named none;
  // an explicit "rate" (at any value > 0) always wins.
  if (spec.rate == 0.0 && options_.default_rate > 0.0) spec.rate = options_.default_rate;
  try {
    Tenant& tenant = table_.admit(std::move(spec), mux_);
    tenant.last_activity = lines_;
    telemetry_.tenant_row(tenant.slot, name);
    telemetry_.tenants_opened.inc();
    telemetry_.tenants_open.add(1);
    telemetry_.journal().record(obs::EventType::kOpen, name, tenant.spec.algorithm);
    out << opened_frame(tenant.spec) << '\n';
  } catch (const std::exception& error) {
    // Admission failures (duplicate name, unknown algorithm, k > 1 on a
    // single-server strategy) reject the candidate; a tenant already open
    // under this name is untouched.
    out << error_frame(lines_, error.what(), name, false) << '\n';
  }
}

void Service::handle_req(const ClientFrame& frame, std::ostream& out) {
  Tenant* tenant = table_.find(frame.tenant);
  if (tenant == nullptr) {
    out << error_frame(lines_,
                       "unknown tenant \"" + frame.tenant + "\" (send an \"open\" frame first)",
                       frame.tenant, false)
        << '\n';
    return;
  }
  if (!frame.batch.empty() && frame.batch.requests.front().dim() != tenant->spec.dim) {
    fail_tenant(frame.tenant,
                "\"batch\" requests have " +
                    std::to_string(frame.batch.requests.front().dim()) +
                    " coordinates but tenant \"" + frame.tenant + "\" declared dim " +
                    std::to_string(tenant->spec.dim),
                out);
    return;
  }
  // Outside a pump round the emission ledger equals the session cursor, so
  // the queue depth needs no mux stats snapshot (which would allocate
  // position vectors on the req hot path).
  const std::size_t queued = tenant->workload->horizon() - tenant->emitted;
  tenant->last_activity = lines_;  // even a bounced req is a sign of life
  TenantTelemetry& row = telemetry_.tenant_row(tenant->slot, frame.tenant);
  if (queued >= options_.max_inflight) {
    // Bounded in-flight queue: the frame is NOT accepted (the client must
    // re-send it) — an explicit busy beats a silent drop. Consume now so
    // the retry lands. Counted in reqs AND busys, so
    // reqs == outcomes + busys holds at every quiescent point.
    telemetry_.reqs.inc();
    telemetry_.busys.inc();
    ++row.reqs;
    ++row.busys;
    telemetry_.journal().record(obs::EventType::kBusy, frame.tenant,
                                "queued " + std::to_string(queued) + " >= limit " +
                                    std::to_string(options_.max_inflight));
    out << busy_frame(frame.tenant, lines_, queued, options_.max_inflight) << '\n';
    pump(out);
    return;
  }
  tenant->workload->push_step(frame.batch);
  // Re-arm the (possibly parked) slot and bias dispatch toward the deepest
  // queues; enqueue the tenant for the pump's O(pending) sweep.
  mux_.poke(tenant->slot);
  mux_.set_priority(tenant->slot, static_cast<double>(queued + 1));
  if (!tenant->pending) {
    tenant->pending = true;
    pending_slots_.push_back(tenant->slot);
  }
  telemetry_.reqs.inc();
  ++row.reqs;
  if (queued + 1 > row.inflight_hwm) row.inflight_hwm = queued + 1;
  telemetry_.inflight_hwm.raise_to(static_cast<std::int64_t>(queued + 1));
  if (!telemetry_.lean()) row.push_accept(obs::now_ns());
}

void Service::handle_close(const std::string& name, std::ostream& out) {
  Tenant* tenant = table_.find(name);
  if (tenant == nullptr) {
    out << error_frame(lines_, "unknown tenant \"" + name + "\"", name, false) << '\n';
    return;
  }
  pump(out);  // consume its queue (outcomes still stream) before the final bill
  if (table_.find(name) == nullptr) return;  // the pump failed and closed it
  const std::size_t slot = tenant->slot;
  mux_.close(slot);
  telemetry_.tenants_closed.inc();
  telemetry_.tenants_open.add(-1);
  telemetry_.journal().record(obs::EventType::kClose, name);
  out << closed_frame(mux_.stats(slot)) << '\n';
  table_.erase(name);
}

void Service::handle_stats(const std::string& name, std::ostream& out) {
  if (name.empty()) {
    const std::vector<TenantObsRow> rows = telemetry_.rows(mux_.size());
    out << stats_frame(mux_.snapshot(), mux_.totals(), &rows, degraded_) << '\n';
    return;
  }
  Tenant* tenant = table_.find(name);
  if (tenant == nullptr) {
    out << error_frame(lines_, "unknown tenant \"" + name + "\"", name, false) << '\n';
    return;
  }
  tenant->last_activity = lines_;  // a polling client counts as alive
  const TenantTelemetry* row = telemetry_.row(tenant->slot);
  const std::vector<TenantObsRow> rows = {row != nullptr ? row->row() : TenantObsRow{}};
  out << stats_frame({mux_.stats(tenant->slot)}, mux_.totals(), &rows, degraded_) << '\n';
}

void Service::handle_metrics(std::ostream& out) {
  // Quiesce first: with every accepted step consumed, the frame's counters
  // satisfy reqs == outcomes + busys (barring error-closed tenants).
  pump(out);
  out << metrics_frame(telemetry_.collect(mux_), mux_.snapshot(), telemetry_.rows(mux_.size()))
      << '\n';
  write_metrics(out, /*force=*/true);
}

void Service::handle_checkpoint(std::ostream& out) {
  if (options_.snapshot_path.empty()) {
    out << error_frame(lines_,
                       "checkpointing is disabled (start mobsrv_serve with --snapshot PATH)", "",
                       false)
        << '\n';
    return;
  }
  pump(out);  // snapshots are taken at quiescent points only
  maybe_snapshot(out, /*force=*/true);
}

void Service::fail_tenant(const std::string& name, const std::string& message,
                          std::ostream& out) {
  pump(out);  // already-accepted steps still produce their outcomes
  Tenant* tenant = table_.find(name);
  if (tenant == nullptr) {
    // The pump itself failed the tenant and already reported it.
    out << error_frame(lines_, message, name, true) << '\n';
    return;
  }
  const std::size_t slot = tenant->slot;
  mux_.close(slot);
  note_tenant_error(slot, name, message);
  out << error_frame(lines_, message, name, true) << '\n';
  out << closed_frame(mux_.stats(slot)) << '\n';
  table_.erase(name);
}

void Service::note_tenant_error(std::size_t slot, const std::string& name,
                                const std::string& message) {
  telemetry_.errors.inc();
  ++telemetry_.tenant_row(slot, name).errors;
  telemetry_.tenants_closed.inc();
  telemetry_.tenants_open.add(-1);
  telemetry_.journal().record(obs::EventType::kError, name, message);
}

void Service::pump(std::ostream& out) {
  if (!pending_slots_.empty()) {
    // Outcomes stream in slot order within a round — the same order the v1
    // whole-table sweep produced (slot ids are admission-ordered).
    std::sort(pending_slots_.begin(), pending_slots_.end());
    std::vector<core::SessionMultiplexer::SlotError> errors;
    while (!pending_slots_.empty()) {
      // One step per round keeps the per-step cost deltas exact: each live
      // session advances by at most one step between ledger snapshots.
      if (options_.faults != nullptr) {
        try {
          options_.faults->hit(fault::kSiteTenantStep);
        } catch (const std::exception& error) {
          // Observational only (see serve.read): a thrown `fail` on an
          // unconditional rule must not stall the round forever, so the
          // step still runs. Real per-session failures arrive via `errors`.
          out << error_frame(lines_, error.what(), "", false) << '\n';
        }
      }
      errors.clear();
      mux_.step_capturing(1, errors);

      std::size_t keep = 0;
      for (const std::size_t slot : pending_slots_) {
        Tenant* tenant = table_.find_slot(slot);
        if (tenant == nullptr) continue;  // error-closed mid-pump; drop
        const core::SessionStats stats = mux_.stats(slot);
        if (stats.steps > tenant->emitted) {
          tenant->throttling = false;  // the scheduler let it advance again
          out << outcome_frame(tenant->spec.tenant, stats.steps - 1,
                               stats.move_cost - tenant->emitted_move,
                               stats.service_cost - tenant->emitted_service, stats,
                               options_.lean)
              << '\n';
          tenant->emitted = stats.steps;
          tenant->emitted_move = stats.move_cost;
          tenant->emitted_service = stats.service_cost;
          tenant->last_activity = lines_;  // progress counts as life
          ++steps_since_snapshot_;
          ++steps_since_metrics_;
          telemetry_.outcomes.inc();
          TenantTelemetry& row = telemetry_.tenant_row(slot, tenant->spec.tenant);
          ++row.outcomes;
          // Steps restored from a snapshot carry no accept stamp (pop == 0).
          if (const std::uint64_t accepted = row.pop_accept(); accepted != 0) {
            const std::uint64_t latency = obs::now_ns() - accepted;
            row.ingest_latency.record(latency);
            telemetry_.ingest_latency.record(latency);
          }
        } else if (stats.throttled_rounds > tenant->throttled_seen && !tenant->throttling) {
          // Journal one event per throttle EPISODE (entry only), not per
          // starved round — the journal is for rare lifecycle events.
          tenant->throttling = true;
          telemetry_.throttles.inc();
          telemetry_.journal().record(
              obs::EventType::kThrottle, tenant->spec.tenant,
              "rate " + std::to_string(tenant->spec.rate) + " steps/round, queued " +
                  std::to_string(tenant->workload->horizon() - tenant->emitted));
        }
        tenant->throttled_seen = stats.throttled_rounds;
        if (tenant->workload->horizon() > tenant->emitted)
          pending_slots_[keep++] = slot;
        else
          tenant->pending = false;
      }
      pending_slots_.resize(keep);

      // Sessions that threw were closed by the mux (their slot alone);
      // report and drop them — every other tenant keeps streaming.
      for (const core::SessionMultiplexer::SlotError& error : errors) {
        Tenant* tenant = table_.find_slot(error.id);
        if (tenant == nullptr) continue;
        const std::string name = tenant->spec.tenant;
        note_tenant_error(error.id, name, error.message);
        out << error_frame(lines_, error.message, name, true) << '\n';
        out << closed_frame(mux_.stats(error.id)) << '\n';
        table_.erase(name);
      }
    }
  }
  reap_idle(out);
  maybe_snapshot(out, /*force=*/false);
  write_metrics(out, /*force=*/false);
}

void Service::reap_idle(std::ostream& out) {
  if (options_.idle_timeout == 0) return;
  // Collect first: closing mutates the table under iteration otherwise.
  std::vector<std::string> expired;
  for (const auto& tenant : table_.entries()) {
    if (lines_ - tenant->last_activity < options_.idle_timeout) continue;
    // A tenant with queued (possibly throttled) work is waiting on the
    // service, not idle — pausing a rate-limited workload is legitimate.
    if (tenant->workload->horizon() > tenant->emitted) continue;
    expired.push_back(tenant->spec.tenant);
  }
  for (const std::string& name : expired) {
    Tenant* tenant = table_.find(name);
    if (tenant == nullptr) continue;
    const std::size_t slot = tenant->slot;
    const std::string message = "idle timeout: no frames from \"" + name + "\" for " +
                                std::to_string(options_.idle_timeout) + "+ input lines";
    mux_.close(slot);
    telemetry_.idle_timeouts.inc();
    telemetry_.errors.inc();
    ++telemetry_.tenant_row(slot, name).errors;
    telemetry_.tenants_closed.inc();
    telemetry_.tenants_open.add(-1);
    telemetry_.journal().record(obs::EventType::kTimeout, name, message);
    out << error_frame(lines_, message, name, true) << '\n';
    out << closed_frame(mux_.stats(slot)) << '\n';
    table_.erase(name);
  }
}

void Service::maybe_snapshot(std::ostream& out, bool force) {
  if (options_.snapshot_path.empty()) return;
  if (!force &&
      (options_.checkpoint_every == 0 || steps_since_snapshot_ < options_.checkpoint_every))
    return;
  SnapshotWriteOptions write_options;
  write_options.durable = options_.durable;
  write_options.faults = options_.faults;
  std::string last_error;
  for (std::size_t attempt = 0; attempt <= options_.retry_limit; ++attempt) {
    if (attempt != 0) retry_backoff("snapshot save", attempt, last_error);
    try {
      // A fresh base when this process has not written one yet (slot ids
      // are process-local, so appending to a previous process's chain would
      // lie) or when the delta chain has outgrown the compaction threshold.
      // Recomputed per attempt: a failed try clears have_base_ below, so
      // retries always rewrite a fresh base atomically.
      const bool compacting =
          have_base_ && delta_bytes_ >= options_.compact_ratio * static_cast<double>(base_bytes_);
      const bool base = !have_base_ || compacting;
      std::uint64_t bytes = 0;
      if (base) {
        if (compacting)
          telemetry_.journal().record(
              obs::EventType::kCompact, {},
              std::to_string(segments_) + " segments, " + std::to_string(delta_bytes_) +
                  " delta bytes >= " + std::to_string(options_.compact_ratio) + "x base " +
                  std::to_string(base_bytes_));
        bytes = write_snapshot_base(options_.snapshot_path, collect_base_segment(),
                                    write_options);
        base_bytes_ = bytes;
        delta_bytes_ = 0;
        segments_ = 1;
        have_base_ = true;
      } else {
        bytes = append_snapshot_delta(options_.snapshot_path, collect_delta_segment(),
                                      write_options);
        delta_bytes_ += bytes;
        ++segments_;
      }
      mux_.mark_saved();
      saved_slots_.clear();
      for (const auto& tenant : table_.entries()) saved_slots_.insert(tenant->slot);
      steps_since_snapshot_ = 0;
      telemetry_.snapshots.inc();
      telemetry_.checkpoint_bytes.inc(bytes);
      telemetry_.journal().record(obs::EventType::kCheckpoint, {},
                                  options_.snapshot_path.string());
      clear_degraded();
      out << checkpointed_frame(options_.snapshot_path.string(), table_.size(),
                                mux_.totals().steps, base ? "base" : "delta", bytes, segments_)
          << '\n';
      return;
    } catch (const std::exception& error) {
      // A failed save is loud but not fatal: the service keeps running on
      // the previous good snapshot. A failed APPEND may have left a torn
      // tail (the reader drops it), but appending after one would corrupt
      // the chain — every retry rewrites a fresh base atomically.
      have_base_ = false;
      last_error = error.what();
    }
  }
  enter_degraded("snapshot save", last_error, out);
}

SnapshotSegment Service::collect_base_segment() const {
  SnapshotSegment segment;
  segment.opened.reserve(table_.size());
  for (const auto& tenant : table_.entries()) {
    segment.opened.push_back(tenant->spec);
    segment.opened_slots.push_back(tenant->slot);
    segment.record_slots.push_back(tenant->slot);
    segment.records.push_back(mux_.checkpoint_slot(tenant->slot));
  }
  return segment;
}

SnapshotSegment Service::collect_delta_segment() const {
  SnapshotSegment segment;
  for (const auto& tenant : table_.entries()) {
    if (saved_slots_.count(tenant->slot) != 0) continue;
    segment.opened.push_back(tenant->spec);
    segment.opened_slots.push_back(tenant->slot);
  }
  std::unordered_set<std::size_t> current;
  current.reserve(table_.size());
  for (const auto& tenant : table_.entries()) current.insert(tenant->slot);
  for (const std::size_t slot : saved_slots_)
    if (current.count(slot) == 0) segment.closed_slots.push_back(slot);
  std::sort(segment.closed_slots.begin(), segment.closed_slots.end());
  // Only the slots that stepped (or arrived) since mark_saved() are
  // re-serialised — the O(progress) heart of the incremental save.
  for (const std::size_t slot : mux_.dirty_slots()) {
    segment.record_slots.push_back(slot);
    segment.records.push_back(mux_.checkpoint_slot(slot));
  }
  return segment;
}

ExitReason Service::finish(ExitReason reason, std::ostream& out) {
  pump(out);
  maybe_snapshot(out, /*force=*/true);
  const char* why = reason == ExitReason::kEof        ? "eof"
                    : reason == ExitReason::kShutdown ? "shutdown"
                                                      : "signal";
  telemetry_.journal().record(obs::EventType::kDrain, {}, why);
  write_metrics(out, /*force=*/true);
  out << bye_frame(why, mux_.totals()) << '\n';
  out.flush();
  return reason;
}

void Service::write_metrics(std::ostream& out, bool force) {
  if (options_.metrics_path.empty()) return;
  if (!force &&
      (options_.metrics_every == 0 || steps_since_metrics_ < options_.metrics_every))
    return;
  trace::AtomicWriteOptions write_options;
  write_options.durable = options_.durable;
  write_options.faults = options_.faults;
  write_options.write_site = fault::kSiteMetricsWrite;
  std::string last_error;
  for (std::size_t attempt = 0; attempt <= options_.retry_limit; ++attempt) {
    if (attempt != 0) retry_backoff("metrics snapshot", attempt, last_error);
    try {
      trace::write_bytes_atomic(options_.metrics_path,
                                telemetry_.snapshot_ndjson(mux_, mux_.snapshot()), write_options);
      steps_since_metrics_ = 0;
      clear_degraded();
      return;
    } catch (const std::exception& error) {
      // Same discipline as snapshot saves: loud but never fatal, and the
      // previous good file survives (write_bytes_atomic never clobbers it).
      last_error = error.what();
    }
  }
  telemetry_.journal().record(obs::EventType::kError, {},
                              "metrics snapshot failed: " + last_error);
  enter_degraded("metrics snapshot", last_error, out);
}

void Service::retry_backoff(const char* what, std::size_t attempt, const std::string& error) {
  telemetry_.retries.inc();
  telemetry_.journal().record(obs::EventType::kRetry, {},
                              std::string(what) + " retry " + std::to_string(attempt) + "/" +
                                  std::to_string(options_.retry_limit) + ": " + error);
  // Exponential backoff with seeded jitter: base << (attempt-1), scaled by
  // [0.5, 1.5) so a fleet of services never retries in lockstep.
  const double jitter = 0.5 + retry_rng_.uniform();
  const double ms =
      static_cast<double>(options_.retry_base_ms << (attempt - 1)) * jitter;
  if (ms > 0.0)
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

void Service::enter_degraded(const char* what, const std::string& error, std::ostream& out) {
  out << error_frame(0, std::string(what) + " failed: " + error, "", false) << '\n';
  if (degraded_) return;  // one episode, not one per failed save
  degraded_ = true;
  telemetry_.degraded.set(1);
  telemetry_.degraded_total.inc();
  telemetry_.journal().record(obs::EventType::kDegraded, {},
                              std::string("enter: ") + what + " failed: " + error);
}

void Service::clear_degraded() {
  if (!degraded_) return;
  degraded_ = false;
  telemetry_.degraded.set(0);
  telemetry_.journal().record(obs::EventType::kDegraded, {}, "recovered");
}

}  // namespace mobsrv::serve
