/// \file frames.hpp
/// The mobsrv_serve wire protocol: versioned NDJSON frames.
///
/// The service speaks newline-delimited JSON in both directions: every line
/// is one complete JSON object ("frame") with a `type` member. Client
/// frames open tenants, stream request batches, and control the service;
/// server frames acknowledge, report per-step outcomes, apply backpressure
/// (`busy` — never a silent drop) and surface errors with the line number
/// of the offending input (`error` — one bad tenant never takes the
/// process down).
///
/// Versioning follows the trace-format discipline: an `open` frame must
/// declare `"v": 1` (the protocol version this build speaks); any frame may
/// carry `v`, and a mismatch is rejected loudly. Doubles ride through
/// io::Json, so every cost and coordinate round-trips bit-exactly — the
/// foundation of the kill/restore bit-identity guarantee.
///
/// docs/SERVICE.md is the operator-facing reference for every frame type.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/session_multiplexer.hpp"
#include "io/json.hpp"
#include "obs/metrics.hpp"
#include "sim/model.hpp"

namespace mobsrv::serve {

/// Protocol version this build speaks; `open` frames must declare it.
inline constexpr std::uint32_t kProtocolVersion = 1;

/// A tenant's admission contract, declared once by its `open` frame: who it
/// is, which strategy serves it, the fleet size/geometry, and the engine
/// options. Everything the service needs to (re)build the session — the
/// snapshot file persists these so a restarted service re-admits every
/// tenant without new `open` frames.
struct TenantSpec {
  std::string tenant;
  std::string algorithm;
  std::uint64_t seed = 0;
  int dim = 1;
  std::size_t fleet_size = 1;
  double speed_factor = 1.0;
  /// kClamp by default: a live service prefers clamping a misbehaving
  /// strategy to the speed limit over rejecting its step. `"policy":
  /// "throw"` restores the strict contract (a violation then closes the
  /// tenant with an `error` frame).
  sim::SpeedLimitPolicy policy = sim::SpeedLimitPolicy::kClamp;
  sim::ModelParams params;
  /// Start layout, size fleet_size (parse fills it: explicit `starts`,
  /// a shared `start`, or the origin).
  std::vector<sim::Point> starts;
  /// Scheduler rate limit: steps this tenant may consume per mux round
  /// (fractions allowed — 0.5 means a step every other round). 0 = no
  /// limit. Declared by the `open` frame's `rate` member or the service's
  /// --default-rate; enforced by core::SessionMultiplexer's token bucket.
  double rate = 0.0;
  /// Token-bucket burst capacity (whole steps a tenant may save up).
  /// 0 = derive from the rate (max(1, rate)); only meaningful with rate>0.
  double rate_burst = 0.0;
};

/// JSON round-trip for TenantSpec (the snapshot file and the `opened`
/// acknowledgement both use it). from_json throws FrameError.
[[nodiscard]] io::Json tenant_spec_to_json(const TenantSpec& spec);
[[nodiscard]] TenantSpec tenant_spec_from_json(const io::Json& doc);

/// Client frame kinds.
enum class FrameType {
  kOpen,        ///< admit a tenant (declares the TenantSpec)
  kReq,         ///< one step's request batch for a tenant
  kClose,       ///< drain and close a tenant
  kStats,       ///< report accounting (one tenant or all)
  kMetrics,     ///< dump the full metrics registry + per-tenant telemetry
  kCheckpoint,  ///< save a snapshot now
  kShutdown,    ///< drain everything, snapshot, say bye, exit
  kKill,        ///< exit immediately, no drain/snapshot (crash-test aid)
};

/// One parsed client frame (a tagged fat struct: only the members relevant
/// to `type` are meaningful).
struct ClientFrame {
  FrameType type = FrameType::kStats;
  TenantSpec open;            ///< kOpen
  std::string tenant;         ///< kReq/kClose, optional for kStats
  sim::RequestBatch batch;    ///< kReq (may be empty — an idle step)
};

/// Thrown on malformed frames. Carries the tenant the frame named (empty
/// when the line was too broken to attribute), so the service can close
/// only the offending tenant.
class FrameError : public std::runtime_error {
 public:
  explicit FrameError(const std::string& what, std::string tenant = {})
      : std::runtime_error(what), tenant_(std::move(tenant)) {}

  /// Tenant named by the offending frame; empty when unattributable.
  [[nodiscard]] const std::string& tenant() const noexcept { return tenant_; }

 private:
  std::string tenant_;
};

/// Parses one NDJSON line into a client frame. Rejects unknown frame
/// types, unknown members (a typo'd `"batc"` must fail loudly, not be
/// ignored), missing required members, and protocol-version mismatches.
/// Throws FrameError, attributed to the frame's tenant when one was named.
[[nodiscard]] ClientFrame parse_client_frame(std::string_view line);

// ---------------------------------------------------------------------------
// Server frame builders. Each returns one compact JSON line (no trailing
// newline); doubles are written in shortest round-trip form.
// ---------------------------------------------------------------------------

/// Acknowledges an `open`: echoes the admitted spec.
[[nodiscard]] std::string opened_frame(const TenantSpec& spec);

/// One consumed step. `move`/`service` are this step's deltas of the
/// session's cost accumulators; `move_total`/`service_total`/`total` are
/// the exact accumulators (bit-identical across restarts). Positions are
/// included unless \p lean.
[[nodiscard]] std::string outcome_frame(const std::string& tenant, std::size_t t,
                                        double move_delta, double service_delta,
                                        const core::SessionStats& stats, bool lean);

/// Backpressure: the `req` frame on input line \p line was NOT accepted
/// (the tenant's in-flight queue is full); the client must re-send it.
[[nodiscard]] std::string busy_frame(const std::string& tenant, std::uint64_t line,
                                     std::size_t queued, std::size_t limit);

/// A malformed or failing frame. \p line is the 1-based input line number
/// (0 when the error is not tied to a line). \p tenant is empty when the
/// error could not be attributed; \p closed_tenant says whether the
/// offending tenant was closed as a consequence.
[[nodiscard]] std::string error_frame(std::uint64_t line, const std::string& message,
                                      const std::string& tenant, bool closed_tenant);

/// Final accounting of a tenant that was just closed.
[[nodiscard]] std::string closed_frame(const core::SessionStats& stats);

/// Per-tenant serve-side telemetry riding the enriched `stats` frame and
/// the `metrics` frame (docs/OBSERVABILITY.md). Produced by
/// serve::ServeTelemetry, one row per mux slot (slot ids are dense and
/// never reused, so rows survive tenant churn).
struct TenantObsRow {
  std::uint64_t reqs = 0;      ///< accepted + bounced req frames
  std::uint64_t outcomes = 0;  ///< outcome frames emitted
  std::uint64_t busys = 0;     ///< busy bounces
  std::uint64_t errors = 0;    ///< error frames that closed this tenant
  std::size_t inflight_hwm = 0;  ///< max queued-but-unconsumed steps seen
  obs::HistogramSummary ingest_latency;  ///< accept -> outcome wall ns
};

/// Accounting snapshot: per-tenant rows plus the aggregate. When \p rows is
/// non-null (size matching \p stats, indexed by slot id) each tenant row is
/// enriched with the serve-side telemetry and the aggregate gains
/// active_sessions / throttled / queue_depth / step_latency_ns /
/// steps_per_session — all appended after the v1 members, so old consumers
/// keep working byte-for-byte.
/// \p degraded mirrors the serve.degraded gauge into the enriched
/// aggregate (rows != nullptr); the v1 (rows == nullptr) frame is
/// unchanged.
[[nodiscard]] std::string stats_frame(const std::vector<core::SessionStats>& stats,
                                      const core::MuxTotals& totals,
                                      const std::vector<TenantObsRow>* rows = nullptr,
                                      bool degraded = false);

/// Full registry dump: {"type":"metrics","v":1,"metrics":[...],
/// "tenants":[...]} — every registered metric's current value plus the
/// per-tenant telemetry rows (same shape as the enriched stats rows).
[[nodiscard]] std::string metrics_frame(const io::Json::Array& metrics,
                                        const std::vector<core::SessionStats>& stats,
                                        const std::vector<TenantObsRow>& rows);

/// Acknowledges a snapshot save. \p mode is "base" or "delta" (how the
/// save was persisted), \p bytes the encoded segment size, \p segments the
/// chain length after the save — appended after the v1 members.
[[nodiscard]] std::string checkpointed_frame(const std::string& path, std::size_t sessions,
                                             std::size_t steps, const std::string& mode,
                                             std::uint64_t bytes, std::size_t segments);

/// Farewell frame emitted on graceful exit (shutdown frame, EOF, SIGTERM).
[[nodiscard]] std::string bye_frame(const std::string& reason, const core::MuxTotals& totals);

/// Per-tenant accounting object shared by stats/closed frames. With a
/// non-null \p row the serve-side telemetry members (queued, reqs,
/// outcomes, busys, errors, inflight_hwm, throttled, ingest_latency_ns)
/// are appended.
[[nodiscard]] io::Json stats_to_json(const core::SessionStats& stats,
                                     const TenantObsRow* row = nullptr);

}  // namespace mobsrv::serve
