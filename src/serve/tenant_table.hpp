/// \file tenant_table.hpp
/// The service's tenant registry: admission and the spec → session binding.
///
/// Every `open` frame admits one tenant: the table validates the spec
/// (unique name, known algorithm via the fleet registry), builds the
/// tenant's growing workload Instance (the in-flight queue IS the gap
/// between the Instance's horizon and the session's cursor), and registers
/// a session in the SessionMultiplexer. The table is the restart surface:
/// a snapshot persists every open tenant's spec in slot order so a
/// restored service re-admits them without new `open` frames — restored
/// workloads are padded with already-consumed empty steps, so a restart
/// also compacts a long-lived tenant's request history to O(1) bytes/step.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/session_multiplexer.hpp"
#include "serve/frames.hpp"

namespace mobsrv::serve {

/// One admitted tenant.
struct Tenant {
  TenantSpec spec;
  /// The growing workload; serve appends arriving batches in place (the
  /// multiplexer re-reads the horizon every round). Shared with the mux
  /// slot as a const alias.
  std::shared_ptr<sim::Instance> workload;
  std::size_t slot = 0;  ///< id in the SessionMultiplexer
  /// Steps whose `outcome` frames have been emitted (trails the session's
  /// cursor inside a pump round, equals it between rounds).
  std::size_t emitted = 0;
  /// Cost-accumulator snapshots at `emitted`, for per-step deltas.
  double emitted_move = 0.0;
  double emitted_service = 0.0;
  /// True while this tenant sits on the service's pending list (has
  /// consumed-but-unemitted or queued steps). Owned by serve::Service —
  /// the pump is O(pending tenants), not O(table).
  bool pending = false;
  /// True while the tenant is inside a throttle episode (journaled once on
  /// entry, cleared when the scheduler lets it advance again).
  bool throttling = false;
  /// Mux throttled-round count already attributed to journal episodes.
  std::size_t throttled_seen = 0;
  /// Service line counter (Service::lines_) at this tenant's last sign of
  /// life: admission, an accepted/bounced req, a named stats query, or an
  /// emitted outcome. Drives the --idle-timeout reaper.
  std::uint64_t last_activity = 0;
};

/// Name → live session bindings, in slot order. Closed tenants leave the
/// table (their final accounting stays cached in the multiplexer's slot).
class TenantTable {
 public:
  /// Admits a tenant: validates the name is free, builds the workload and
  /// registers the session. Throws FrameError (duplicate name) or
  /// ContractViolation (unknown algorithm, k > 1 for a single-server
  /// strategy — surfaced by the registry/mux) without mutating anything.
  Tenant& admit(TenantSpec spec, core::SessionMultiplexer& mux);

  /// As admit, but for a tenant restored from a snapshot: the workload is
  /// rebuilt as \p consumed already-consumed empty steps (the engine state
  /// arrives separately via SessionMultiplexer::restore).
  Tenant& admit_restored(TenantSpec spec, std::size_t consumed, core::SessionMultiplexer& mux);

  /// The open tenant with this name, or nullptr. O(1) hash lookup —
  /// admission and the req hot path must not scan a million-tenant table.
  [[nodiscard]] Tenant* find(const std::string& name);

  /// The open tenant bound to this mux slot, or nullptr. O(1); the pump
  /// uses it to attribute per-slot scheduler state (errors, throttles).
  [[nodiscard]] Tenant* find_slot(std::size_t slot);

  /// Removes a tenant from the table (the caller is responsible for the
  /// mux-side close/drain). No-op if absent.
  void erase(const std::string& name);

  /// Open tenants in slot order.
  [[nodiscard]] const std::vector<std::unique_ptr<Tenant>>& entries() const noexcept {
    return entries_;
  }

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

 private:
  Tenant& install(TenantSpec spec, std::shared_ptr<sim::Instance> workload,
                  core::SessionMultiplexer& mux);

  std::vector<std::unique_ptr<Tenant>> entries_;
  /// O(1) lookup indexes over entries_ (Tenant addresses are stable —
  /// entries_ holds unique_ptrs). Rebuilt incrementally on admit/erase.
  std::unordered_map<std::string, Tenant*> by_name_;
  std::unordered_map<std::size_t, Tenant*> by_slot_;
};

}  // namespace mobsrv::serve
