/// \file service.hpp
/// The mobsrv_serve frame loop: live NDJSON ingestion over the multiplexer.
///
/// This is the unglamorous server half the ROADMAP asks for — the layer
/// that turns the streaming engine into traffic-facing infrastructure:
///
///   * admission — every tenant declares fleet size, dimension, speed
///     limit and strategy in its `open` frame; admission failures reject
///     the tenant, never the process;
///   * bounded in-flight queues — each tenant may have at most
///     max_inflight unconsumed steps queued; a `req` beyond that is
///     answered with an explicit `busy` frame (never silently dropped);
///   * batched consumption — frames are read greedily while input is
///     already buffered, then the multiplexer advances every tenant in
///     parallel and per-step `outcome` frames stream back;
///   * loud errors — a malformed frame or a throwing session closes only
///     the offending tenant (`error` frame with the input line number);
///   * graceful drain — EOF, a `shutdown` frame, or SIGTERM (via the stop
///     flag) consumes every queued step, saves a final snapshot and says
///     `bye`;
///   * periodic checkpointing — every checkpoint_every consumed steps the
///     service saves a snapshot (tenant table + engine checkpoint) as an
///     MSRVSS2 segment chain: a fresh base first, then incremental deltas
///     covering only the progress since the previous save, compacted when
///     the chain outgrows compact_ratio; a killed service restores from it
///     and continues bit-identically, proven by the kill/restore tests.
///
/// The loop is transport-agnostic: it speaks std::istream/std::ostream, so
/// stdin/stdout, a TCP connection and a Unix socket all drive the same
/// code (tools/serve_main.cpp owns the transports), and tests drive it
/// in-process over string streams.
#pragma once

#include <atomic>
#include <filesystem>
#include <iosfwd>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/session_multiplexer.hpp"
#include "parallel/thread_pool.hpp"
#include "serve/snapshot.hpp"
#include "serve/telemetry.hpp"
#include "serve/tenant_table.hpp"
#include "stats/rng.hpp"

namespace mobsrv::serve {

/// Service configuration (the mobsrv_serve flags, see docs/CLI.md).
struct ServiceOptions {
  /// Max unconsumed steps a tenant may queue before `req` frames bounce
  /// with `busy`.
  std::size_t max_inflight = 64;
  /// Snapshot every N consumed steps (0 = only on `checkpoint` frames and
  /// graceful exit). Requires snapshot_path.
  std::size_t checkpoint_every = 0;
  /// Snapshot file; empty disables checkpointing entirely.
  std::filesystem::path snapshot_path;
  /// Worker threads for the multiplexer (0 = hardware concurrency).
  unsigned threads = 0;
  /// Omit fleet positions from `outcome` frames (smaller frames), and run
  /// the telemetry layer clock-free: no round timing, no ingest-latency
  /// stamps. Counters stay live either way.
  bool lean = false;
  /// Metrics NDJSON snapshot file (--metrics-out); empty disables the
  /// periodic dump. Written atomically on graceful exit, on every
  /// `metrics` frame, and every metrics_every consumed steps.
  std::filesystem::path metrics_path;
  /// Snapshot the metrics file every N consumed steps (0 = only on exit
  /// and `metrics` frames). Requires metrics_path.
  std::size_t metrics_every = 0;
  /// Rate limit applied at admission when an `open` frame names none:
  /// steps per mux round (fractions allowed; 0 = unlimited).
  double default_rate = 0.0;
  /// Compact the MSRVSS2 segment chain (rewrite a fresh base) once the
  /// summed delta bytes exceed this multiple of the base segment's size.
  double compact_ratio = 4.0;
  /// Close a tenant after this many input lines with no sign of life from
  /// it (no req/stats frame, no outcome emitted) — attributed `timeout`
  /// error frame + closed frame. Tenants with queued or throttled work are
  /// exempt (they are waiting on the service, not idle). 0 disables.
  std::size_t idle_timeout = 0;
  /// fsync persistence writes (snapshot base/delta, metrics file) so saves
  /// survive power loss, not just process crashes. --no-durable opts out.
  bool durable = true;
  /// Fault-injection hook (--fault-plan); null = disabled, zero cost.
  fault::Injector* faults = nullptr;
  /// Extra attempts after a failed persistence write before the service
  /// gives up and enters degraded mode.
  std::size_t retry_limit = 3;
  /// Backoff before retry N is retry_base_ms << (N-1) milliseconds, scaled
  /// by a seeded jitter in [0.5, 1.5).
  std::uint64_t retry_base_ms = 1;
  /// External stop flag (the SIGTERM handler sets it); checked between
  /// frames. May be null.
  const std::atomic<bool>* stop = nullptr;
};

/// Why Service::run returned.
enum class ExitReason {
  kEof,       ///< input ended; queues drained, snapshot saved, bye sent
  kShutdown,  ///< `shutdown` frame; same graceful path
  kKill,      ///< `kill` frame: exited immediately, no drain or snapshot
  kSignal,    ///< stop flag set (SIGTERM/SIGINT); graceful path
};

/// One long-running ingestion service over a private multiplexer.
class Service {
 public:
  explicit Service(ServiceOptions options);

  /// Restores the tenant table and every session from a snapshot file, so
  /// the next run() continues bit-identically to the saved service. Must
  /// be called before any frames are processed. Throws trace::TraceError /
  /// ContractViolation on corrupt or mismatched snapshots.
  void restore(const std::filesystem::path& path);

  /// Processes frames from \p in, writing response frames to \p out, until
  /// EOF, a shutdown/kill frame, or the stop flag. Runs the graceful-drain
  /// path (consume queues, snapshot, bye) for every reason except kKill.
  ExitReason run(std::istream& in, std::ostream& out);

  /// Accounting access for tests and the soak bench.
  [[nodiscard]] const core::SessionMultiplexer& mux() const noexcept { return mux_; }
  [[nodiscard]] std::uint64_t lines_seen() const noexcept { return lines_; }
  /// The telemetry surface (metrics registry, journal, per-tenant rows)
  /// for tests and the serve/ingest_p99 perf row.
  [[nodiscard]] const ServeTelemetry& telemetry() const noexcept { return telemetry_; }

 private:
  void handle_line(const std::string& line, std::ostream& out);
  void handle_open(TenantSpec spec, std::ostream& out);
  void handle_req(const ClientFrame& frame, std::ostream& out);
  void handle_close(const std::string& name, std::ostream& out);
  void handle_stats(const std::string& name, std::ostream& out);
  void handle_metrics(std::ostream& out);
  void handle_checkpoint(std::ostream& out);

  /// Fails the named tenant: consumes its accepted queue (outcomes still
  /// stream), closes it, emits error + closed frames. The malformed-frame
  /// discipline: one bad tenant, never the process.
  void fail_tenant(const std::string& name, const std::string& message, std::ostream& out);

  /// Consumes every queued step (one parallel round per step) and emits
  /// per-step outcome frames; sessions that throw are closed and reported.
  /// O(pending tenants) per round — it walks the pending list (fed by
  /// handle_req), never the whole table.
  void pump(std::ostream& out);

  /// Saves a snapshot if due (cadence) or \p force. The first save of a
  /// process writes a fresh MSRVSS2 base; later saves append a delta
  /// carrying only the tenants opened/closed and the slots stepped since
  /// the previous save (O(progress)), compacting back into a base when
  /// the chain outgrows compact_ratio. Reports save failures as error
  /// frames without killing the service.
  void maybe_snapshot(std::ostream& out, bool force);
  [[nodiscard]] SnapshotSegment collect_base_segment() const;
  [[nodiscard]] SnapshotSegment collect_delta_segment() const;

  /// Writes the --metrics-out NDJSON snapshot if due (cadence) or \p
  /// force. Atomic (tmp + rename); failures retry with backoff, then go
  /// degraded — loud error frames + journal, never fatal.
  void write_metrics(std::ostream& out, bool force);

  /// Closes tenants past the --idle-timeout deadline (see
  /// ServiceOptions::idle_timeout). Runs at the pump's quiescent point.
  void reap_idle(std::ostream& out);

  /// Books retry \p attempt of \p what: retries counter, kRetry journal
  /// event, then sleeps retry_base_ms << (attempt-1) ms x jitter.
  void retry_backoff(const char* what, std::size_t attempt, const std::string& error);

  /// Emits the failure's error frame and (first failure only) flips the
  /// service into degraded mode: serve.degraded gauge 1, degraded_total
  /// counter, kDegraded journal entry. Stepping continues throughout.
  void enter_degraded(const char* what, const std::string& error, std::ostream& out);
  /// Re-arms after a successful persistence write: gauge back to 0 plus a
  /// kDegraded "recovered" journal entry.
  void clear_degraded();

  /// Books a tenant's error-close in the telemetry (error counters,
  /// journal, open-tenant gauge).
  void note_tenant_error(std::size_t slot, const std::string& name, const std::string& message);

  ExitReason finish(ExitReason reason, std::ostream& out);

  ServiceOptions options_;
  par::ThreadPool pool_;
  core::SessionMultiplexer mux_;
  TenantTable table_;
  ServeTelemetry telemetry_;
  std::uint64_t lines_ = 0;             ///< input lines seen (error attribution)
  std::size_t steps_since_snapshot_ = 0;
  std::size_t steps_since_metrics_ = 0;
  bool shutdown_ = false;
  bool killed_ = false;
  /// True while persistence is failing (exhausted retries); cleared by the
  /// next successful write. The service keeps stepping either way.
  bool degraded_ = false;
  /// Seeded jitter for the retry backoff (observational only: it shapes
  /// sleep times, never results).
  stats::Rng retry_rng_{0x6d6f62737276'10ULL};
  /// Mux slots with consumed-but-unemitted or queued steps — the pump's
  /// work list (deduped by Tenant::pending). Slot ids are never reused, so
  /// a stale entry for an error-closed tenant is simply skipped.
  std::vector<std::size_t> pending_slots_;
  /// MSRVSS2 chain state. have_base_ is false until this process writes
  /// its base (slot ids are process-local, so a restored service must not
  /// append to the previous process's chain).
  bool have_base_ = false;
  std::uint64_t base_bytes_ = 0;   ///< encoded size of the current base segment
  std::uint64_t delta_bytes_ = 0;  ///< summed encoded size of appended deltas
  std::size_t segments_ = 0;       ///< chain length (base + deltas)
  /// Slots open as of the last successful save (the delta's open/close
  /// diff base).
  std::unordered_set<std::size_t> saved_slots_;
};

}  // namespace mobsrv::serve
