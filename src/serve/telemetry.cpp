#include "serve/telemetry.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

namespace mobsrv::serve {

namespace {

using io::Json;

/// Metrics owned by the multiplexer / journal rather than the serve
/// registry; collect() pulls their values at dump time. Listed here so the
/// catalog, the `metrics` frame and the NDJSON snapshot share one source.
struct ExternalMetric {
  const char* name;
  const char* type;
  const char* unit;
  const char* help;
};

constexpr ExternalMetric kExternal[] = {
    {"mux.queue_depth", "gauge", "steps",
     "pending workload steps summed over open sessions (horizon - cursor)"},
    {"mux.step_latency_ns", "histogram", "ns",
     "wall time of each multiplexer round (empty under --lean)"},
    {"mux.steps_per_session", "histogram", "steps",
     "steps consumed per session, closed sessions included"},
    {"obs.journal_dropped_total", "counter", "events",
     "journal events evicted by the bounded ring"},
    {"mux.active_sessions", "gauge", "sessions",
     "sessions on the scheduler's ready list (the open/parked split)"},
    {"mux.throttled_total", "counter", "rounds",
     "session-rounds starved by per-tenant rate limits"},
};

Json metric_header(const ExternalMetric& metric) {
  Json doc = Json::object();
  doc.set("name", metric.name);
  doc.set("type", metric.type);
  doc.set("unit", metric.unit);
  return doc;
}

void set_summary(Json& doc, const obs::HistogramSummary& summary) {
  doc.set("count", summary.count);
  doc.set("sum", summary.sum);
  doc.set("p50", summary.p50);
  doc.set("p90", summary.p90);
  doc.set("p99", summary.p99);
  doc.set("max", summary.max);
}

/// {"kind": <kind>, ...body members...} — the NDJSON line discriminator
/// leads every snapshot line.
Json with_kind(const char* kind, Json body) {
  Json doc = Json::object();
  doc.set("kind", kind);
  for (Json::Member& member : body.as_object())
    doc.set(std::move(member.first), std::move(member.second));
  return doc;
}

std::uint64_t wall_ms() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

}  // namespace

void TenantTelemetry::push_accept(std::uint64_t ns) {
  // Compact the consumed prefix once it dominates the buffer.
  if (accepted_head_ > 64 && accepted_head_ * 2 >= accepted_ns_.size()) {
    accepted_ns_.erase(accepted_ns_.begin(),
                       accepted_ns_.begin() + static_cast<std::ptrdiff_t>(accepted_head_));
    accepted_head_ = 0;
  }
  accepted_ns_.push_back(ns);
}

std::uint64_t TenantTelemetry::pop_accept() {
  if (accepted_head_ >= accepted_ns_.size()) return 0;
  return accepted_ns_[accepted_head_++];
}

TenantObsRow TenantTelemetry::row() const {
  TenantObsRow out;
  out.reqs = reqs;
  out.outcomes = outcomes;
  out.busys = busys;
  out.errors = errors;
  out.inflight_hwm = inflight_hwm;
  out.ingest_latency = ingest_latency.summary();
  return out;
}

ServeTelemetry::ServeTelemetry(bool lean)
    : lean_(lean),
      journal_(1024),
      frames(registry_.counter("serve.frames_total", "frames", "input frames processed")),
      reqs(registry_.counter("serve.reqs_total", "frames",
                             "req frames accepted or bounced (accepted + busys)")),
      outcomes(registry_.counter("serve.outcomes_total", "frames", "outcome frames emitted")),
      busys(registry_.counter("serve.busys_total", "frames",
                              "req frames bounced by backpressure")),
      errors(registry_.counter("serve.errors_total", "frames",
                               "error frames that closed a tenant")),
      tenants_opened(registry_.counter("serve.tenants_opened_total", "tenants",
                                       "tenants admitted this process")),
      tenants_closed(registry_.counter("serve.tenants_closed_total", "tenants",
                                       "tenants closed (graceful or error)")),
      snapshots(registry_.counter("serve.snapshots_total", "snapshots",
                                  "checkpoint snapshots saved")),
      checkpoint_bytes(registry_.counter("serve.checkpoint_bytes_total", "bytes",
                                         "encoded snapshot segment bytes written")),
      throttles(registry_.counter("serve.throttles_total", "episodes",
                                  "rate-limit throttle episodes entered by tenants")),
      retries(registry_.counter("serve.retries_total", "attempts",
                                "persistence write retries (snapshot + metrics)")),
      degraded_total(registry_.counter("serve.degraded_total", "episodes",
                                       "degraded-mode episodes entered after exhausted retries")),
      idle_timeouts(registry_.counter("serve.idle_timeouts_total", "tenants",
                                      "tenants closed by the --idle-timeout deadline")),
      tenants_open(registry_.gauge("serve.tenants_open", "tenants", "tenants open right now")),
      inflight_hwm(registry_.gauge("serve.inflight_hwm", "steps",
                                   "highest in-flight queue depth any tenant reached")),
      degraded(registry_.gauge("serve.degraded", "bool",
                               "1 while persistence is degraded (saves failing), else 0")),
      ingest_latency(registry_.histogram("serve.ingest_latency_ns", "ns",
                                         "req accepted -> outcome emitted wall time")) {}

TenantTelemetry& ServeTelemetry::tenant_row(std::size_t slot, const std::string& tenant) {
  if (slot >= rows_.size()) rows_.resize(slot + 1);
  if (rows_[slot].tenant.empty()) rows_[slot].tenant = tenant;
  return rows_[slot];
}

const TenantTelemetry* ServeTelemetry::row(std::size_t slot) const noexcept {
  return slot < rows_.size() ? &rows_[slot] : nullptr;
}

std::vector<TenantObsRow> ServeTelemetry::rows(std::size_t count) const {
  std::vector<TenantObsRow> out(count);
  const std::size_t known = std::min(count, rows_.size());
  for (std::size_t slot = 0; slot < known; ++slot) out[slot] = rows_[slot].row();
  return out;
}

io::Json::Array ServeTelemetry::collect(const core::SessionMultiplexer& mux) const {
  io::Json::Array metrics = registry_.to_json();
  const core::MuxTotals totals = mux.totals();

  Json queue = metric_header(kExternal[0]);
  queue.set("value", totals.queue_depth);
  metrics.push_back(std::move(queue));

  Json rounds = metric_header(kExternal[1]);
  set_summary(rounds, totals.step_latency);
  metrics.push_back(std::move(rounds));

  Json per_session = metric_header(kExternal[2]);
  set_summary(per_session, totals.steps_per_session);
  metrics.push_back(std::move(per_session));

  Json dropped = metric_header(kExternal[3]);
  dropped.set("value", journal_.dropped());
  metrics.push_back(std::move(dropped));

  Json active = metric_header(kExternal[4]);
  active.set("value", totals.active);
  metrics.push_back(std::move(active));

  Json throttled = metric_header(kExternal[5]);
  throttled.set("value", totals.throttled);
  metrics.push_back(std::move(throttled));

  return metrics;
}

std::string ServeTelemetry::snapshot_ndjson(const core::SessionMultiplexer& mux,
                                            const std::vector<core::SessionStats>& stats) const {
  std::string out;
  const core::MuxTotals totals = mux.totals();

  Json meta = Json::object();
  meta.set("kind", "meta");
  meta.set("v", std::uint64_t{1});
  meta.set("unix_ms", wall_ms());
  meta.set("sessions", totals.sessions);
  meta.set("live", totals.live);
  meta.set("active", totals.active);
  meta.set("steps", totals.steps);
  out += meta.dump();
  out += '\n';

  for (Json& metric : collect(mux)) {
    out += with_kind("metric", std::move(metric)).dump();
    out += '\n';
  }

  const std::vector<TenantObsRow> obs_rows = rows(stats.size());
  for (std::size_t i = 0; i < stats.size(); ++i) {
    out += with_kind("tenant", stats_to_json(stats[i], &obs_rows[i])).dump();
    out += '\n';
  }

  for (const obs::Event& event : journal_.events()) {
    out += with_kind("event", obs::Journal::event_to_json(event)).dump();
    out += '\n';
  }
  return out;
}

std::vector<MetricInfo> metric_catalog() {
  std::vector<MetricInfo> catalog;
  const ServeTelemetry telemetry(/*lean=*/false);
  for (const auto& entry : telemetry.registry_entries()) {
    MetricInfo info;
    info.name = entry->name;
    info.type = obs::kind_name(entry->kind);
    info.unit = entry->unit;
    info.help = entry->help;
    catalog.push_back(std::move(info));
  }
  for (const ExternalMetric& metric : kExternal)
    catalog.push_back({metric.name, metric.type, metric.unit, metric.help});
  return catalog;
}

}  // namespace mobsrv::serve
