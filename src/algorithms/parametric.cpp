#include "algorithms/parametric.hpp"

#include <cmath>

#include "io/table.hpp"

namespace mobsrv::alg {

sim::Point ParametricChaser::decide(const sim::StepView& view) {
  if (view.batch.empty()) return view.server;
  view.batch.copy_to(scratch_);
  const geo::Point center = med::closest_center(scratch_, view.server);
  const double dist = geo::distance(view.server, center);
  const double ratio =
      static_cast<double>(view.batch.size()) / view.params->move_cost_weight;
  const double damping = std::min(1.0, std::pow(ratio, gamma_));
  const double step = std::min(damping * dist, view.speed_limit);
  return geo::move_toward(view.server, center, step);
}

std::string ParametricChaser::name() const {
  return "Chaser(gamma=" + io::format_double(gamma_, 3) + ")";
}

}  // namespace mobsrv::alg
