/// \file baselines.hpp
/// Baseline online strategies the paper is implicitly compared against.
///
/// The paper's related work is the Page Migration literature; its two
/// classic strategies — Westbrook's deterministic Move-To-Min and the
/// randomized Coin-Flip algorithm — assume the page can jump to any point
/// after a batch, which the Mobile Server model forbids. Both are adapted
/// here by *steering toward* their target at full speed instead of jumping
/// (the paper, Section 5: "standard solutions to the Page Migration Problem
/// still do not apply, since they require moving to a specific point …
/// [which] may still lie outside the allowed moving distance"). Lazy and
/// GreedyCenter bracket the design space: never move vs. always move
/// maximally.
#pragma once

#include <deque>
#include <vector>

#include "median/geometric_median.hpp"
#include "sim/online_algorithm.hpp"
#include "stats/rng.hpp"

namespace mobsrv::alg {

/// Never moves. Optimal when requests stay centred on the start; unboundedly
/// bad when the request hotspot drifts away.
class Lazy final : public sim::OnlineAlgorithm {
 public:
  [[nodiscard]] sim::Point decide(const sim::StepView& view) override { return view.server; }
  [[nodiscard]] std::string name() const override { return "Lazy"; }
};

/// Moves at full speed toward the current batch's center every round,
/// ignoring the r/D damping that makes MtC competitive. Over-eager: pays
/// Θ(D·m) movement for batches that a still server could serve cheaply.
class GreedyCenter final : public sim::OnlineAlgorithm {
 public:
  explicit GreedyCenter(med::WeiszfeldOptions median_options = {})
      : median_options_(median_options) {}

  [[nodiscard]] sim::Point decide(const sim::StepView& view) override;
  [[nodiscard]] std::string name() const override { return "GreedyCenter"; }

 private:
  med::WeiszfeldOptions median_options_;
  std::vector<sim::Point> scratch_;  ///< batch materialised for the median kernel
};

/// Westbrook's Move-To-Min adapted to bounded movement: every ceil(D)
/// rounds, re-target the geometric median of all requests from the last
/// ceil(D) batches; steer toward the current target at full speed in every
/// round.
class MoveToMin final : public sim::OnlineAlgorithm {
 public:
  void reset(const sim::Point& start, const sim::ModelParams& params) override;
  [[nodiscard]] sim::Point decide(const sim::StepView& view) override;
  [[nodiscard]] std::string name() const override { return "MoveToMin"; }
  void save_state(sim::AlgorithmState& state) const override;
  void restore_state(const sim::AlgorithmState& state) override;

 private:
  std::deque<std::vector<sim::Point>> window_;  ///< last ceil(D) batches, materialised
  sim::Point target_;
  std::size_t window_size_ = 1;
  std::size_t steps_since_retarget_ = 0;
};

/// The randomized Coin-Flip page-migration strategy adapted to bounded
/// movement: after each batch, with probability 1/(2D) re-target the batch's
/// center; steer toward the current target at full speed. Deterministic
/// given its seed.
class CoinFlip final : public sim::OnlineAlgorithm {
 public:
  explicit CoinFlip(std::uint64_t seed) : seed_(seed), rng_(seed) {}

  void reset(const sim::Point& start, const sim::ModelParams& params) override;
  [[nodiscard]] sim::Point decide(const sim::StepView& view) override;
  [[nodiscard]] std::string name() const override { return "CoinFlip"; }
  void save_state(sim::AlgorithmState& state) const override;
  void restore_state(const sim::AlgorithmState& state) override;

 private:
  std::uint64_t seed_;
  stats::Rng rng_;
  sim::Point target_;
  std::vector<sim::Point> scratch_;
};

}  // namespace mobsrv::alg
