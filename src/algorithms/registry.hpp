/// \file registry.hpp
/// Name-based construction of online algorithms for benches and examples.
#pragma once

#include <string>
#include <vector>

#include "sim/fleet.hpp"
#include "sim/online_algorithm.hpp"

namespace mobsrv::alg {

/// Constructs an algorithm by display name ("MtC", "Lazy", "GreedyCenter",
/// "MoveToMin", "CoinFlip"). The seed only matters for randomized
/// strategies. Throws ContractViolation for unknown names.
[[nodiscard]] sim::AlgorithmPtr make_algorithm(const std::string& name, std::uint64_t seed = 0);

/// All registered names, in shootout display order.
[[nodiscard]] std::vector<std::string> algorithm_names();

/// Constructs a fleet strategy by name. Every single-server registry name
/// resolves to the same algorithm lifted through sim::SingleServerAdapter
/// (usable for fleets of size 1, unchanged behaviour and name); the
/// fleet-native strategies ("AssignAndChase", "Static") drive any k >= 1.
/// Throws ContractViolation for unknown names.
[[nodiscard]] sim::FleetAlgorithmPtr make_fleet_algorithm(const std::string& name,
                                                          std::uint64_t seed = 0);

/// All names make_fleet_algorithm accepts: the single-server registry plus
/// the fleet-native strategies.
[[nodiscard]] std::vector<std::string> fleet_algorithm_names();

/// The subset of fleet names that can drive fleets of ANY size (k >= 1);
/// the rest are single-server adaptations valid only at k = 1.
[[nodiscard]] std::vector<std::string> fleet_native_names();

}  // namespace mobsrv::alg
