/// \file registry.hpp
/// Name-based construction of online algorithms for benches and examples.
#pragma once

#include <string>
#include <vector>

#include "sim/online_algorithm.hpp"

namespace mobsrv::alg {

/// Constructs an algorithm by display name ("MtC", "Lazy", "GreedyCenter",
/// "MoveToMin", "CoinFlip"). The seed only matters for randomized
/// strategies. Throws ContractViolation for unknown names.
[[nodiscard]] sim::AlgorithmPtr make_algorithm(const std::string& name, std::uint64_t seed = 0);

/// All registered names, in shootout display order.
[[nodiscard]] std::vector<std::string> algorithm_names();

}  // namespace mobsrv::alg
