/// \file parametric.hpp
/// A family of chasers parameterised by the damping exponent — the ablation
/// knob for MtC's central design choice.
///
/// MtC steps min{1, r/D}·d toward the center. Generalising the damping to
///     step = min{1, (r/D)^gamma} · d    (capped at the speed limit)
/// recovers GreedyCenter at gamma = 0 and MtC at gamma = 1; larger gamma
/// makes the server even more reluctant when requests are scarce relative
/// to D. Experiment E14 sweeps gamma to show the paper's choice sits at the
/// sweet spot.
#pragma once

#include <vector>

#include "median/geometric_median.hpp"
#include "sim/online_algorithm.hpp"

namespace mobsrv::alg {

class ParametricChaser final : public sim::OnlineAlgorithm {
 public:
  /// gamma >= 0; 0 = undamped (GreedyCenter-like), 1 = MtC's rule.
  explicit ParametricChaser(double gamma) : gamma_(gamma) {
    MOBSRV_CHECK_MSG(gamma >= 0.0, "damping exponent must be non-negative");
  }

  [[nodiscard]] sim::Point decide(const sim::StepView& view) override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] double gamma() const noexcept { return gamma_; }

 private:
  double gamma_;
  std::vector<sim::Point> scratch_;  ///< batch materialised for the median kernel
};

}  // namespace mobsrv::alg
