#include "algorithms/registry.hpp"

#include <memory>

#include "algorithms/baselines.hpp"
#include "algorithms/move_to_center.hpp"
#include "ext/multi_server.hpp"

namespace mobsrv::alg {

sim::AlgorithmPtr make_algorithm(const std::string& name, std::uint64_t seed) {
  if (name == "MtC") return std::make_unique<MoveToCenter>();
  if (name == "Lazy") return std::make_unique<Lazy>();
  if (name == "GreedyCenter") return std::make_unique<GreedyCenter>();
  if (name == "MoveToMin") return std::make_unique<MoveToMin>();
  if (name == "CoinFlip") return std::make_unique<CoinFlip>(seed);
  throw ContractViolation("unknown algorithm: " + name);
}

std::vector<std::string> algorithm_names() {
  return {"MtC", "GreedyCenter", "MoveToMin", "CoinFlip", "Lazy"};
}

sim::FleetAlgorithmPtr make_fleet_algorithm(const std::string& name, std::uint64_t seed) {
  if (name == "AssignAndChase") return std::make_unique<ext::AssignAndChase>();
  if (name == "Static") return std::make_unique<ext::StaticServers>();
  // Single-server names keep their registry identity through the adapter
  // (it throws loudly if asked to drive k > 1 servers).
  return std::make_unique<sim::SingleServerAdapter>(make_algorithm(name, seed));
}

std::vector<std::string> fleet_algorithm_names() {
  std::vector<std::string> names = algorithm_names();
  for (const std::string& name : fleet_native_names()) names.push_back(name);
  return names;
}

std::vector<std::string> fleet_native_names() { return {"AssignAndChase", "Static"}; }

}  // namespace mobsrv::alg
