#include "algorithms/registry.hpp"

#include <memory>

#include "algorithms/baselines.hpp"
#include "algorithms/move_to_center.hpp"

namespace mobsrv::alg {

sim::AlgorithmPtr make_algorithm(const std::string& name, std::uint64_t seed) {
  if (name == "MtC") return std::make_unique<MoveToCenter>();
  if (name == "Lazy") return std::make_unique<Lazy>();
  if (name == "GreedyCenter") return std::make_unique<GreedyCenter>();
  if (name == "MoveToMin") return std::make_unique<MoveToMin>();
  if (name == "CoinFlip") return std::make_unique<CoinFlip>(seed);
  throw ContractViolation("unknown algorithm: " + name);
}

std::vector<std::string> algorithm_names() {
  return {"MtC", "GreedyCenter", "MoveToMin", "CoinFlip", "Lazy"};
}

}  // namespace mobsrv::alg
