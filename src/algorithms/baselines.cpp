#include "algorithms/baselines.hpp"

#include <cmath>
#include <vector>

namespace mobsrv::alg {

sim::Point GreedyCenter::decide(const sim::StepView& view) {
  if (view.batch.empty()) return view.server;
  view.batch.copy_to(scratch_);
  const geo::Point center =
      med::closest_center(scratch_, view.server, /*weights=*/{}, median_options_);
  return geo::move_toward(view.server, center, view.speed_limit);
}

void MoveToMin::reset(const sim::Point& start, const sim::ModelParams& params) {
  window_.clear();
  target_ = start;
  window_size_ = static_cast<std::size_t>(std::ceil(params.move_cost_weight));
  if (window_size_ == 0) window_size_ = 1;
  steps_since_retarget_ = 0;
}

sim::Point MoveToMin::decide(const sim::StepView& view) {
  window_.push_back(view.batch.to_points());
  if (window_.size() > window_size_) window_.pop_front();
  ++steps_since_retarget_;

  if (steps_since_retarget_ >= window_size_) {
    steps_since_retarget_ = 0;
    std::vector<geo::Point> all;
    for (const auto& batch : window_) all.insert(all.end(), batch.begin(), batch.end());
    if (!all.empty()) target_ = med::closest_center(all, view.server);
  }
  return geo::move_toward(view.server, target_, view.speed_limit);
}

void CoinFlip::reset(const sim::Point& start, const sim::ModelParams&) {
  rng_.reseed(seed_);
  target_ = start;
}

sim::Point CoinFlip::decide(const sim::StepView& view) {
  if (!view.batch.empty() &&
      rng_.bernoulli(1.0 / (2.0 * view.params->move_cost_weight))) {
    view.batch.copy_to(scratch_);
    target_ = med::closest_center(scratch_, view.server);
  }
  return geo::move_toward(view.server, target_, view.speed_limit);
}

}  // namespace mobsrv::alg
