#include "algorithms/baselines.hpp"

#include <cmath>
#include <vector>

namespace mobsrv::alg {

sim::Point GreedyCenter::decide(const sim::StepView& view) {
  if (view.batch.empty()) return view.server;
  view.batch.copy_to(scratch_);
  const geo::Point center =
      med::closest_center(scratch_, view.server, /*weights=*/{}, median_options_);
  return geo::move_toward(view.server, center, view.speed_limit);
}

void MoveToMin::reset(const sim::Point& start, const sim::ModelParams& params) {
  window_.clear();
  target_ = start;
  window_size_ = static_cast<std::size_t>(std::ceil(params.move_cost_weight));
  if (window_size_ == 0) window_size_ = 1;
  steps_since_retarget_ = 0;
}

sim::Point MoveToMin::decide(const sim::StepView& view) {
  window_.push_back(view.batch.to_points());
  if (window_.size() > window_size_) window_.pop_front();
  ++steps_since_retarget_;

  if (steps_since_retarget_ >= window_size_) {
    steps_since_retarget_ = 0;
    std::vector<geo::Point> all;
    for (const auto& batch : window_) all.insert(all.end(), batch.begin(), batch.end());
    if (!all.empty()) target_ = med::closest_center(all, view.server);
  }
  return geo::move_toward(view.server, target_, view.speed_limit);
}

// State layout (save_state/restore_state must agree; restore runs after
// reset(), so window_size_ is already re-derived from params):
//   words  = [batch count, size of each remembered batch..., steps_since_retarget_]
//   points = [target_, then every remembered request in window order]
void MoveToMin::save_state(sim::AlgorithmState& state) const {
  state.words.push_back(window_.size());
  for (const auto& batch : window_) state.words.push_back(batch.size());
  state.words.push_back(steps_since_retarget_);
  state.points.push_back(target_);
  for (const auto& batch : window_)
    state.points.insert(state.points.end(), batch.begin(), batch.end());
}

void MoveToMin::restore_state(const sim::AlgorithmState& state) {
  MOBSRV_CHECK_MSG(state.words.size() >= 2 && state.reals.empty() && !state.points.empty(),
                   "corrupt MoveToMin checkpoint state (wrong section shapes)");
  const std::size_t batches = state.words.front();
  MOBSRV_CHECK_MSG(state.words.size() == batches + 2,
                   "corrupt MoveToMin checkpoint state (batch count disagrees)");
  std::size_t total = 1;  // the target
  for (std::size_t b = 0; b < batches; ++b) total += state.words[1 + b];
  MOBSRV_CHECK_MSG(state.points.size() == total,
                   "corrupt MoveToMin checkpoint state (point count disagrees)");
  target_ = state.points.front();
  steps_since_retarget_ = state.words.back();
  window_.clear();
  std::size_t cursor = 1;
  for (std::size_t b = 0; b < batches; ++b) {
    const std::size_t n = state.words[1 + b];
    window_.emplace_back(state.points.begin() + static_cast<std::ptrdiff_t>(cursor),
                         state.points.begin() + static_cast<std::ptrdiff_t>(cursor + n));
    cursor += n;
  }
}

void CoinFlip::reset(const sim::Point& start, const sim::ModelParams&) {
  rng_.reseed(seed_);
  target_ = start;
}

sim::Point CoinFlip::decide(const sim::StepView& view) {
  if (!view.batch.empty() &&
      rng_.bernoulli(1.0 / (2.0 * view.params->move_cost_weight))) {
    view.batch.copy_to(scratch_);
    target_ = med::closest_center(scratch_, view.server);
  }
  return geo::move_toward(view.server, target_, view.speed_limit);
}

// State layout:
//   words  = [rng word 0..3, has-cached-normal flag]
//   reals  = [cached normal deviate]
//   points = [target_]
void CoinFlip::save_state(sim::AlgorithmState& state) const {
  const stats::RngState rng = rng_.state();
  state.words.insert(state.words.end(), rng.words.begin(), rng.words.end());
  state.words.push_back(rng.has_cached_normal ? 1 : 0);
  state.reals.push_back(rng.cached_normal);
  state.points.push_back(target_);
}

void CoinFlip::restore_state(const sim::AlgorithmState& state) {
  MOBSRV_CHECK_MSG(state.words.size() == 5 && state.reals.size() == 1 && state.points.size() == 1,
                   "corrupt CoinFlip checkpoint state (wrong section shapes)");
  stats::RngState rng;
  for (std::size_t i = 0; i < 4; ++i) rng.words[i] = state.words[i];
  rng.has_cached_normal = state.words[4] != 0;
  rng.cached_normal = state.reals[0];
  rng_.set_state(rng);
  target_ = state.points[0];
}

}  // namespace mobsrv::alg
