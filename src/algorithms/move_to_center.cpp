#include "algorithms/move_to_center.hpp"

namespace mobsrv::alg {

sim::Point MoveToCenter::decide(const sim::StepView& view) {
  if (view.batch.empty()) return view.server;  // nothing to chase this round

  view.batch.copy_to(scratch_);
  const geo::Point center =
      med::closest_center(scratch_, view.server, /*weights=*/{}, median_options_);
  const double dist = geo::distance(view.server, center);
  const double step = std::min(
      damped_step(view.batch.size(), view.params->move_cost_weight, dist), view.speed_limit);
  return geo::move_toward(view.server, center, step);
}

}  // namespace mobsrv::alg
