#include "algorithms/move_to_center.hpp"

namespace mobsrv::alg {

sim::Point MoveToCenter::decide(const sim::StepView& view) {
  const auto& requests = view.batch->requests;
  if (requests.empty()) return view.server;  // nothing to chase this round

  const geo::Point center =
      med::closest_center(requests, view.server, /*weights=*/{}, median_options_);
  const double dist = geo::distance(view.server, center);
  const double step =
      std::min(damped_step(requests.size(), view.params->move_cost_weight, dist),
               view.speed_limit);
  return geo::move_toward(view.server, center, step);
}

}  // namespace mobsrv::alg
