/// \file move_to_center.hpp
/// The paper's algorithm: Move-to-Center (MtC), Section 4.
///
/// Every step: let c be the geometric median of the current batch (if the
/// median set is not unique, the point of it closest to the server — see
/// median/geometric_median.hpp). Move toward c by
///     min{1, r/D} · d(P_Alg, c),
/// capped at the augmented speed limit (1+δ)m.
///
/// With r = 1 this specialises to "move min(m, d/D) toward the request",
/// which is exactly the Moving-Client algorithm of Theorem 10 — so MtC
/// serves both the core problem and the Moving-Client variant (with any
/// number of agents, whose median it then chases).
#pragma once

#include <vector>

#include "median/geometric_median.hpp"
#include "sim/online_algorithm.hpp"

namespace mobsrv::alg {

class MoveToCenter final : public sim::OnlineAlgorithm {
 public:
  explicit MoveToCenter(med::WeiszfeldOptions median_options = {})
      : median_options_(median_options) {}

  [[nodiscard]] sim::Point decide(const sim::StepView& view) override;
  [[nodiscard]] std::string name() const override { return "MtC"; }

  /// The damped step length before capping: min{1, r/D} · dist.
  [[nodiscard]] static double damped_step(std::size_t r, double d_weight, double dist) {
    MOBSRV_CHECK(d_weight >= 1.0 && dist >= 0.0);
    const double damping = std::min(1.0, static_cast<double>(r) / d_weight);
    return damping * dist;
  }

 private:
  med::WeiszfeldOptions median_options_;
  std::vector<sim::Point> scratch_;  ///< batch materialised for the median kernel
};

}  // namespace mobsrv::alg
