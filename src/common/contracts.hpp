/// \file contracts.hpp
/// Lightweight contract checking used across the library.
///
/// Two levels are provided:
///   * MOBSRV_CHECK   — always-on precondition check on public API
///                      boundaries; throws mobsrv::ContractViolation.
///   * MOBSRV_DCHECK  — debug-only check for hot inner loops; compiles to
///                      nothing in release builds (NDEBUG).
///
/// Throwing (rather than aborting) keeps the checks testable: the test
/// suite asserts that invalid usage is rejected.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace mobsrv {

/// Exception thrown when a MOBSRV_CHECK precondition fails.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void contract_fail(const char* expr, const char* file, int line,
                                       const std::string& message) {
  std::ostringstream os;
  os << "contract violated: (" << expr << ") at " << file << ":" << line;
  if (!message.empty()) os << " — " << message;
  throw ContractViolation(os.str());
}

}  // namespace detail
}  // namespace mobsrv

#define MOBSRV_CHECK(expr)                                                  \
  do {                                                                      \
    if (!(expr)) ::mobsrv::detail::contract_fail(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define MOBSRV_CHECK_MSG(expr, msg)                                         \
  do {                                                                      \
    if (!(expr)) ::mobsrv::detail::contract_fail(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

#ifdef NDEBUG
#define MOBSRV_DCHECK(expr) ((void)0)
#else
#define MOBSRV_DCHECK(expr) MOBSRV_CHECK(expr)
#endif
