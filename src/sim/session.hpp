/// \file session.hpp
/// The incremental (streaming) simulation engine.
///
/// The paper's model is online: requests are revealed one step at a time and
/// the server must commit to a move before seeing the next batch. Session is
/// that model as an object — `push(batch)` reveals one step, enforces the
/// (possibly augmented) movement limit, charges costs per the service order,
/// and returns the step's outcome. `sim::run()` is a thin loop over a
/// Session (bit-identical costs); core::SessionMultiplexer drives thousands
/// of Sessions concurrently for live multi-tenant traffic.
///
/// Accounting matches the batch engine exactly: move/service components are
/// accumulated per step in push order and `total = move + service`, so a
/// workload streamed through a Session reproduces a recorded `run()` of the
/// same algorithm bit-identically.
#pragma once

#include <vector>

#include "sim/engine.hpp"

namespace mobsrv::sim {

/// What one push() produced.
struct StepOutcome {
  std::size_t t = 0;     ///< index of the step just consumed (0-based)
  StepCost cost;         ///< this step's cost split
  Point position;        ///< server position after the move (P_{t+1})
  bool clamped = false;  ///< the proposal exceeded the limit (kClamp only)
};

/// An in-flight run of one online algorithm. The algorithm is reset on
/// construction and must outlive the session; the session owns all engine
/// state (position, accumulated costs, optional position/trace history).
class Session {
 public:
  Session(Point start, ModelParams params, OnlineAlgorithm& algorithm,
          const RunOptions& options = {});

  /// Pre-sizes the history buffers for a known horizon (optional).
  void reserve(std::size_t horizon);

  /// Reveals the next step's requests, moves the server, charges costs.
  /// Throws ContractViolation under SpeedLimitPolicy::kThrow when the
  /// algorithm proposes a move beyond the limit.
  StepOutcome push(BatchView batch);

  /// Number of steps consumed so far.
  [[nodiscard]] std::size_t steps() const noexcept { return t_; }
  [[nodiscard]] double move_cost() const noexcept { return move_cost_; }
  [[nodiscard]] double service_cost() const noexcept { return service_cost_; }
  [[nodiscard]] double total_cost() const noexcept { return move_cost_ + service_cost_; }
  /// Current server position P_t.
  [[nodiscard]] const Point& position() const noexcept { return server_; }
  /// P_0..P_t — filled iff options.record_positions.
  [[nodiscard]] const std::vector<Point>& positions() const noexcept { return positions_; }
  /// Per-step records — filled iff options.record_trace.
  [[nodiscard]] const std::vector<TraceStep>& trace() const noexcept { return trace_; }

  /// Snapshot of the accumulated run as a RunResult.
  [[nodiscard]] RunResult result() const&;
  /// Moving form: hands the history buffers to the result.
  [[nodiscard]] RunResult result() &&;

 private:
  ModelParams params_;
  RunOptions options_;
  OnlineAlgorithm* algorithm_;
  double limit_ = 0.0;       ///< (1+δ)·m
  double hard_limit_ = 0.0;  ///< limit with relative rounding slack
  Point server_;
  std::size_t t_ = 0;
  double move_cost_ = 0.0;
  double service_cost_ = 0.0;
  std::vector<Point> positions_;
  std::vector<TraceStep> trace_;
};

}  // namespace mobsrv::sim
