/// \file session.hpp
/// The incremental (streaming) simulation engine over a fleet of k >= 1
/// mobile servers.
///
/// The paper's model is online: requests are revealed one step at a time and
/// the servers must commit to their moves before seeing the next batch.
/// Session is that model as an object — `push(batch)` reveals one step,
/// enforces the (possibly augmented) per-server movement limit, charges
/// costs per the service order, and returns the step's outcome. Every
/// driver is a thin loop over it: `sim::run()` (k = 1, bit-identical to the
/// pre-fleet engine), `ext::run_multi()` (k >= 1, bit-identical to the old
/// private batch loop), and `core::SessionMultiplexer` (thousands of
/// concurrent fleet sessions).
///
/// Accounting:
///   * k = 1 — exactly the single-server engine: move = D·d(P_t, P_{t+1}),
///     service per the instance's service order, accumulated per step in
///     push order (total = move + service);
///   * k > 1 — each server pays D per unit moved (accumulated per server in
///     fleet order), every request is served by its NEAREST server
///     (Σ_v min_i d(P_i, v)), from the post-move positions under
///     kMoveThenServe and the pre-move positions under kServeThenMove.
/// A per-server move split is kept either way (`server_move_cost(i)`).
///
/// Checkpoint/restore: `save()` captures the full engine state — positions,
/// accumulated cost split, step index, and the algorithm's internals via
/// its save_state hook — as a SessionCheckpoint; the restore constructor
/// resumes a run that continues bit-identically to one that was never
/// interrupted. trace/checkpoint.hpp serialises checkpoints to disk.
#pragma once

#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/fleet.hpp"

namespace mobsrv::sim {

/// What one push() produced.
struct StepOutcome {
  std::size_t t = 0;     ///< index of the step just consumed (0-based)
  StepCost cost;         ///< this step's cost split (summed over the fleet)
  Point position;        ///< first server's position after the move (P_{t+1})
  /// kClamp only: some proposal exceeded the limit beyond the numerical
  /// slack. (Proposals riding the limit within rounding error are clamped
  /// to it too, but that is fp noise, not an algorithm violation, and is
  /// not flagged.)
  bool clamped = false;
};

/// Complete serializable state of a live Session: everything needed to
/// resume the run bit-identically. Produced by Session::save(), consumed by
/// the restore constructor; trace::encode_checkpoint round-trips it to disk.
struct SessionCheckpoint {
  ModelParams params;
  double speed_factor = 1.0;
  SpeedLimitPolicy policy = SpeedLimitPolicy::kThrow;
  std::size_t step = 0;                 ///< steps consumed so far
  double move_cost = 0.0;               ///< accumulated move component
  double service_cost = 0.0;            ///< accumulated service component
  std::vector<Point> servers;           ///< current fleet positions
  std::vector<double> server_move;      ///< per-server move split
  std::string algorithm;                ///< FleetAlgorithm::name() that produced this
  AlgorithmState algorithm_state;       ///< the strategy's mutable internals
};

/// An in-flight run of one strategy over a fleet of k >= 1 servers. The
/// algorithm must outlive the session (it is reset on construction); the
/// session owns all engine state (positions, accumulated costs, optional
/// history). Sessions pin internal pointers, so they are neither copyable
/// nor movable — construct them in place.
class Session {
 public:
  /// Fleet form: k = starts.size() servers driven by a FleetAlgorithm.
  Session(std::vector<Point> starts, ModelParams params, FleetAlgorithm& algorithm,
          const RunOptions& options = {});

  /// Single-server convenience: wraps \p algorithm in an internal
  /// SingleServerAdapter. Behaviour and costs are bit-identical to the
  /// pre-fleet single-server engine.
  Session(Point start, ModelParams params, OnlineAlgorithm& algorithm,
          const RunOptions& options = {});

  /// Restores a checkpointed run. The algorithm must match the checkpoint
  /// (same name()); it is reset with the checkpointed positions/params and
  /// then handed its saved internals, after which push() continues exactly
  /// where the saved session left off.
  Session(const SessionCheckpoint& checkpoint, FleetAlgorithm& algorithm);
  Session(const SessionCheckpoint& checkpoint, OnlineAlgorithm& algorithm);

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Pre-sizes the history buffers for a known horizon (optional).
  void reserve(std::size_t horizon);

  /// Reveals the next step's requests, moves the fleet, charges costs.
  /// Throws ContractViolation under SpeedLimitPolicy::kThrow when any
  /// proposal exceeds the limit (before any state is mutated).
  StepOutcome push(BatchView batch);

  /// Number of steps consumed so far.
  [[nodiscard]] std::size_t steps() const noexcept { return t_; }
  [[nodiscard]] double move_cost() const noexcept { return move_cost_; }
  [[nodiscard]] double service_cost() const noexcept { return service_cost_; }
  [[nodiscard]] double total_cost() const noexcept { return move_cost_ + service_cost_; }

  /// Number of servers in the fleet.
  [[nodiscard]] std::size_t fleet_size() const noexcept { return servers_.size(); }
  /// Current position of server \p i.
  [[nodiscard]] const Point& position(std::size_t i) const {
    MOBSRV_CHECK(i < servers_.size());
    return servers_[i];
  }
  /// Current position of the first server (the server, for k = 1).
  [[nodiscard]] const Point& position() const noexcept { return servers_[0]; }
  /// All current fleet positions.
  [[nodiscard]] const std::vector<Point>& fleet() const noexcept { return servers_; }
  /// Move cost accumulated by server \p i alone (Σ over i equals move_cost
  /// up to the accumulation order; the engine sums per server in fleet
  /// order, so for k = 1 the split IS move_cost()).
  [[nodiscard]] double server_move_cost(std::size_t i) const {
    MOBSRV_CHECK(i < server_move_.size());
    return server_move_[i];
  }

  /// P_0..P_t of the first server — filled iff options.record_positions
  /// (k = 1 only).
  [[nodiscard]] const std::vector<Point>& positions() const noexcept { return positions_; }
  /// Per-step records — filled iff options.record_trace (k = 1 only).
  [[nodiscard]] const std::vector<TraceStep>& trace() const noexcept { return trace_; }

  /// Snapshot of the accumulated run as a RunResult (k = 1 only).
  [[nodiscard]] RunResult result() const&;
  /// Moving form: hands the history buffers to the result.
  [[nodiscard]] RunResult result() &&;

  /// Captures the full engine + algorithm state for a bit-identical resume.
  /// History buffers are not part of a checkpoint (checkpointing targets
  /// long-lived streaming sessions, which keep none), so saving requires
  /// record_positions/record_trace off.
  [[nodiscard]] SessionCheckpoint save() const;

 private:
  /// Owning-adapter form backing the OnlineAlgorithm constructors.
  Session(std::vector<Point> starts, ModelParams params,
          std::unique_ptr<FleetAlgorithm> owned_adapter, const RunOptions& options);
  Session(const SessionCheckpoint& checkpoint, std::unique_ptr<FleetAlgorithm> owned_adapter);

  void init_fresh();
  void init_from(const SessionCheckpoint& checkpoint);
  /// The actual engine step; push() adds the optional timing wrapper.
  StepOutcome push_untimed(BatchView batch);

  ModelParams params_;
  RunOptions options_;
  std::unique_ptr<FleetAlgorithm> owned_adapter_;  ///< set iff built from an OnlineAlgorithm
  FleetAlgorithm* algorithm_;
  double limit_ = 0.0;       ///< (1+δ)·m
  double hard_limit_ = 0.0;  ///< limit with relative rounding slack
  std::vector<Point> servers_;
  std::vector<double> server_move_;  ///< per-server move-cost split
  std::vector<Point> proposals_;     ///< scratch reused across steps
  std::vector<double> moved_;        ///< scratch: proposal distances (k > 1)
  std::size_t t_ = 0;
  double move_cost_ = 0.0;
  double service_cost_ = 0.0;
  std::vector<Point> positions_;
  std::vector<TraceStep> trace_;
};

}  // namespace mobsrv::sim
