/// \file moving_client.hpp
/// The Moving Client variant (Section 5 of the paper).
///
/// A single agent starts at the server's position and moves at speed at most
/// m_a per round; its new position A_t is revealed *before* the server moves.
/// The step cost is D·d(P_{t-1},P_t) + d(P_t, A_t) — exactly the Move-First
/// model with one request per round placed on the agent's path, so the
/// variant converts losslessly to an ordinary Instance and reuses the whole
/// engine/solver stack. (The paper treats multiple agents as a sketched
/// extension; we support any number of agents, each contributing one request
/// per round.)
#pragma once

#include <vector>

#include "sim/model.hpp"

namespace mobsrv::sim {

/// One agent's trajectory A_1..A_T (A_0 is the common start).
struct AgentPath {
  std::vector<Point> positions;
};

/// Full description of a Moving Client instance.
struct MovingClientInstance {
  Point start;                   ///< P_0 = A_0 for every agent
  double server_speed = 1.0;     ///< m_s
  double agent_speed = 1.0;      ///< m_a
  double move_cost_weight = 1.0; ///< D
  std::vector<AgentPath> agents; ///< at least one; equal lengths

  [[nodiscard]] std::size_t horizon() const {
    return agents.empty() ? 0 : agents.front().positions.size();
  }

  /// Validates speeds, start coupling and path step lengths (with relative
  /// tolerance for accumulated rounding).
  void validate(double tolerance = 1e-9) const;
};

/// Converts to an ordinary Instance: one request per agent per round at the
/// agent's revealed position, movement limit m_s, Move-First service order.
[[nodiscard]] Instance to_instance(const MovingClientInstance& mc);

}  // namespace mobsrv::sim
