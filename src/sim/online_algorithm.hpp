/// \file online_algorithm.hpp
/// The interface every online strategy implements.
///
/// The engine reveals one step at a time; the algorithm proposes a new
/// position and the engine enforces the (possibly augmented) movement limit
/// and does all cost accounting — an algorithm cannot cheat on either.
///
/// Checkpointing: a Session snapshot must capture algorithm internals too
/// (targets, batch windows, RNG streams), so the interface carries
/// `save_state`/`restore_state` hooks over a typed AlgorithmState container.
/// Stateless strategies inherit the no-op defaults.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/model.hpp"

namespace mobsrv::sim {

/// Serializable snapshot of an algorithm's mutable internals. A flat,
/// self-describing container (integers, reals, points) rather than an
/// opaque byte blob, so the trace checkpoint codec can round-trip it
/// losslessly and validate it on read. Encoding layout is the algorithm's
/// own contract: save_state and restore_state must agree on the order.
struct AlgorithmState {
  std::vector<std::uint64_t> words;  ///< counters, sizes, RNG state, flags
  std::vector<double> reals;         ///< scalar state (cached deviates, ...)
  std::vector<Point> points;         ///< targets, remembered batches, ...

  [[nodiscard]] bool empty() const noexcept {
    return words.empty() && reals.empty() && points.empty();
  }
  friend bool operator==(const AlgorithmState&, const AlgorithmState&) = default;
};

/// Everything an online algorithm may look at when deciding step t.
/// (Oblivious of the future by construction: the engine only ever exposes
/// the current batch.)
struct StepView {
  std::size_t t = 0;                ///< step index, 0-based
  BatchView batch;                  ///< requests of this step (non-owning span)
  Point server;                     ///< current server position P_t
  double speed_limit = 0.0;         ///< (1+δ)·m for this run
  const ModelParams* params = nullptr;  ///< D, m, service order (never null)
};

/// Abstract online strategy. Implementations must be deterministic given
/// their construction arguments (randomized strategies take an explicit
/// seed), so experiment results are reproducible.
class OnlineAlgorithm {
 public:
  virtual ~OnlineAlgorithm() = default;

  /// Called once before a run; resets all internal state.
  virtual void reset(const Point& start, const ModelParams& params) {
    (void)start;
    (void)params;
  }

  /// Returns the desired position P_{t+1}. Must satisfy
  /// d(view.server, result) <= view.speed_limit (the engine verifies).
  [[nodiscard]] virtual Point decide(const StepView& view) = 0;

  /// Stable display name used in tables ("MtC", "Lazy", ...). Registered
  /// algorithms return their registry name, which checkpoints use to bind a
  /// saved state to the strategy that produced it.
  [[nodiscard]] virtual std::string name() const = 0;

  /// Appends the algorithm's mutable internals to \p state so a restored
  /// run continues bit-identically. Stateless strategies save nothing.
  virtual void save_state(AlgorithmState& state) const { (void)state; }

  /// Restores internals saved by save_state. Called after reset(), which
  /// re-derives everything reset computes from (start, params); only state
  /// that evolves during a run needs to round-trip. The default accepts
  /// only an empty state — a stateful algorithm that forgets to override
  /// both hooks fails loudly instead of silently diverging after restore.
  virtual void restore_state(const AlgorithmState& state) {
    MOBSRV_CHECK_MSG(state.empty(),
                     "algorithm " + name() + " cannot restore a non-empty checkpoint state");
  }
};

using AlgorithmPtr = std::unique_ptr<OnlineAlgorithm>;

}  // namespace mobsrv::sim
