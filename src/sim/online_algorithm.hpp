/// \file online_algorithm.hpp
/// The interface every online strategy implements.
///
/// The engine reveals one step at a time; the algorithm proposes a new
/// position and the engine enforces the (possibly augmented) movement limit
/// and does all cost accounting — an algorithm cannot cheat on either.
#pragma once

#include <memory>
#include <string>

#include "sim/model.hpp"

namespace mobsrv::sim {

/// Everything an online algorithm may look at when deciding step t.
/// (Oblivious of the future by construction: the engine only ever exposes
/// the current batch.)
struct StepView {
  std::size_t t = 0;                ///< step index, 0-based
  BatchView batch;                  ///< requests of this step (non-owning span)
  Point server;                     ///< current server position P_t
  double speed_limit = 0.0;         ///< (1+δ)·m for this run
  const ModelParams* params = nullptr;  ///< D, m, service order (never null)
};

/// Abstract online strategy. Implementations must be deterministic given
/// their construction arguments (randomized strategies take an explicit
/// seed), so experiment results are reproducible.
class OnlineAlgorithm {
 public:
  virtual ~OnlineAlgorithm() = default;

  /// Called once before a run; resets all internal state.
  virtual void reset(const Point& start, const ModelParams& params) {
    (void)start;
    (void)params;
  }

  /// Returns the desired position P_{t+1}. Must satisfy
  /// d(view.server, result) <= view.speed_limit (the engine verifies).
  [[nodiscard]] virtual Point decide(const StepView& view) = 0;

  /// Stable display name used in tables ("MtC", "Lazy", ...).
  [[nodiscard]] virtual std::string name() const = 0;
};

using AlgorithmPtr = std::unique_ptr<OnlineAlgorithm>;

}  // namespace mobsrv::sim
