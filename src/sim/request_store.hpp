/// \file request_store.hpp
/// Flat structure-of-arrays request storage and the BatchView span over it.
///
/// The engine's inner loop is cost accounting: for every request of every
/// step, one Euclidean distance from the server. Storing requests as
/// `std::vector<RequestBatch>` of 72-byte `Point`s (runtime dim + an 8-wide
/// inline array) made that loop stride over mostly-dead coordinates; the
/// RequestStore keeps ONE contiguous `double` buffer holding only the live
/// coordinates (request i of the store occupies `[i·dim, (i+1)·dim)`) plus a
/// per-step offset table, so a 1-D workload reads 8 bytes per request instead
/// of 72. Every consumer — the Session engine, cost.cpp, the offline oracles,
/// the trace codecs — sees batches through `BatchView`, a non-owning span.
///
/// BatchView is *strided* so the same view type can also wrap an AoS
/// `RequestBatch` (stride = sizeof(Point)/sizeof(double)); the SoA fast path
/// has stride == dim, i.e. a dense buffer. This keeps single-batch call sites
/// (tests, algorithm unit benches, ad-hoc StepViews) working on owning
/// RequestBatch values without a copy while the engine path stays flat.
#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "geometry/point.hpp"

namespace mobsrv::sim {

using geo::Point;

/// Requests appearing in one time step (possibly none). The *owning* AoS
/// batch type: workload generators and importers build these; the engine
/// stores them flat (RequestStore) and reads them through BatchView.
struct RequestBatch {
  std::vector<Point> requests;

  [[nodiscard]] std::size_t size() const noexcept { return requests.size(); }
  [[nodiscard]] bool empty() const noexcept { return requests.empty(); }
};

/// Non-owning view of one step's requests. Cheap to copy (pointer + sizes).
/// The backing storage (RequestStore or RequestBatch) must outlive the view.
class BatchView {
 public:
  /// Empty view (no requests, dimension 0).
  constexpr BatchView() noexcept = default;

  /// View over raw coordinates: request i's k-th coordinate is
  /// `base[i·stride + k]`. A dense buffer has stride == dim.
  BatchView(const double* base, std::size_t count, int dim, std::size_t stride)
      : base_(base), count_(count), dim_(dim), stride_(stride) {
    MOBSRV_DCHECK(count == 0 || (base != nullptr && dim >= 1 && stride >= static_cast<std::size_t>(dim)));
  }

  /// Wraps an owning AoS batch (stride = sizeof(Point) in doubles). Validates
  /// that all requests share one dimension — the one O(batch) check the SoA
  /// path pays at build time instead.
  BatchView(const RequestBatch& batch)  // NOLINT(google-explicit-constructor)
      : count_(batch.requests.size()) {
    if (count_ == 0) return;
    dim_ = batch.requests.front().dim();
    for (const Point& v : batch.requests)
      MOBSRV_CHECK_MSG(v.dim() == dim_, "request dimension mismatch");
    base_ = batch.requests.front().data();
    stride_ = sizeof(Point) / sizeof(double);
  }

  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  /// Dimension of the requests; 0 for an empty view.
  [[nodiscard]] int dim() const noexcept { return dim_; }
  /// First coordinate of the first request (nullptr when empty).
  [[nodiscard]] const double* data() const noexcept { return base_; }
  /// Doubles between consecutive requests (== dim() on the dense SoA path).
  [[nodiscard]] std::size_t stride() const noexcept { return stride_; }

  /// Coordinate k of request i, unchecked beyond debug asserts.
  [[nodiscard]] double coord(std::size_t i, int k) const {
    MOBSRV_DCHECK(i < count_ && k >= 0 && k < dim_);
    return base_[i * stride_ + static_cast<std::size_t>(k)];
  }

  /// Materialises request i as a Point.
  [[nodiscard]] Point operator[](std::size_t i) const {
    MOBSRV_DCHECK(i < count_);
    Point p(dim_);
    const double* v = base_ + i * stride_;
    for (int k = 0; k < dim_; ++k) p[k] = v[k];
    return p;
  }

  /// Replaces the contents of \p out with the materialised requests.
  /// Call sites that feed point-based kernels (Weiszfeld, median sets) keep a
  /// scratch vector so capacity is reused across steps.
  void copy_to(std::vector<Point>& out) const {
    out.clear();
    out.reserve(count_);
    for (std::size_t i = 0; i < count_; ++i) out.push_back((*this)[i]);
  }

  /// Materialises the whole view (convenience for cold paths and tests).
  [[nodiscard]] std::vector<Point> to_points() const {
    std::vector<Point> out;
    copy_to(out);
    return out;
  }

  /// Forward iteration yielding Points by value.
  class iterator {
   public:
    iterator(const BatchView* view, std::size_t i) : view_(view), i_(i) {}
    [[nodiscard]] Point operator*() const { return (*view_)[i_]; }
    iterator& operator++() {
      ++i_;
      return *this;
    }
    [[nodiscard]] bool operator!=(const iterator& o) const { return i_ != o.i_; }

   private:
    const BatchView* view_;
    std::size_t i_;
  };
  [[nodiscard]] iterator begin() const { return {this, 0}; }
  [[nodiscard]] iterator end() const { return {this, count_}; }

 private:
  const double* base_ = nullptr;
  std::size_t count_ = 0;
  int dim_ = 0;
  std::size_t stride_ = 0;
};

/// Owning flat SoA storage for a request sequence: one contiguous coordinate
/// buffer plus per-step offsets. Dimension checks happen ONCE, on insertion;
/// copying a store (and therefore an Instance) is a plain buffer copy with no
/// re-validation.
class RequestStore {
 public:
  /// Empty store of unspecified dimension (fixed by the first non-empty
  /// batch pushed).
  RequestStore() = default;

  /// Empty store of fixed dimension \p dim.
  explicit RequestStore(int dim) : dim_(dim) {
    MOBSRV_CHECK_MSG(dim >= 1 && dim <= Point::kMaxDim, "RequestStore dimension out of range");
  }

  /// Builds a store from AoS batches (validating every request's dimension).
  [[nodiscard]] static RequestStore from_batches(int dim, const std::vector<RequestBatch>& steps) {
    RequestStore store(dim);
    store.fill(steps);
    return store;
  }

  /// As above, adopting the dimension from the first non-empty batch
  /// (dimensionless when all batches are empty).
  [[nodiscard]] static RequestStore from_batches(const std::vector<RequestBatch>& steps) {
    RequestStore store;
    for (const RequestBatch& batch : steps)
      if (!batch.empty()) {
        store.dim_ = batch.requests.front().dim();
        MOBSRV_CHECK_MSG(store.dim_ >= 1 && store.dim_ <= Point::kMaxDim,
                         "RequestStore dimension out of range");
        break;
      }
    store.fill(steps);
    return store;
  }

  void reserve(std::size_t steps, std::size_t requests) {
    offsets_.reserve(steps + 1);
    coords_.reserve(requests * static_cast<std::size_t>(dim_ > 0 ? dim_ : 1));
  }

  /// Appends one step. The view's dimension must match the store's (an empty
  /// batch always matches); a dimensionless store adopts the first non-empty
  /// batch's dimension.
  void push_batch(BatchView batch) {
    if (!batch.empty()) {
      if (dim_ == 0) {
        MOBSRV_CHECK_MSG(batch.dim() >= 1 && batch.dim() <= Point::kMaxDim,
                         "RequestStore dimension out of range");
        dim_ = batch.dim();
      }
      MOBSRV_CHECK_MSG(batch.dim() == dim_, "request dimension mismatch");
      const std::size_t d = static_cast<std::size_t>(dim_);
      const double* base = batch.data();
      if (batch.stride() == d) {
        coords_.insert(coords_.end(), base, base + batch.size() * d);
      } else {
        for (std::size_t i = 0; i < batch.size(); ++i)
          coords_.insert(coords_.end(), base + i * batch.stride(), base + i * batch.stride() + d);
      }
    }
    offsets_.push_back(coords_.size() / std::max<std::size_t>(1, static_cast<std::size_t>(dim_)));
  }

  /// Dimension; 0 until fixed by a constructor or the first non-empty batch.
  [[nodiscard]] int dim() const noexcept { return dim_; }
  [[nodiscard]] std::size_t horizon() const noexcept { return offsets_.size() - 1; }
  [[nodiscard]] std::size_t total_requests() const noexcept { return offsets_.back(); }

  [[nodiscard]] BatchView batch(std::size_t t) const {
    MOBSRV_CHECK(t < horizon());
    const std::size_t begin = offsets_[t], end = offsets_[t + 1];
    if (begin == end) return {};
    const std::size_t d = static_cast<std::size_t>(dim_);
    return {coords_.data() + begin * d, end - begin, dim_, d};
  }

  /// {Rmin, Rmax} over the sequence; {0, 0} when empty.
  [[nodiscard]] std::pair<std::size_t, std::size_t> request_bounds() const noexcept {
    if (horizon() == 0) return {0, 0};
    std::size_t lo = offsets_[1] - offsets_[0], hi = lo;
    for (std::size_t t = 1; t < horizon(); ++t) {
      const std::size_t n = offsets_[t + 1] - offsets_[t];
      lo = std::min(lo, n);
      hi = std::max(hi, n);
    }
    return {lo, hi};
  }

  /// The dense coordinate buffer (total_requests()·dim() doubles).
  [[nodiscard]] const std::vector<double>& coords() const noexcept { return coords_; }

 private:
  /// Appends every batch with one exact up-front reservation.
  void fill(const std::vector<RequestBatch>& steps) {
    std::size_t total = 0;
    for (const RequestBatch& batch : steps) total += batch.size();
    reserve(steps.size(), total);
    for (const RequestBatch& batch : steps) push_batch(batch);
  }

  int dim_ = 0;
  std::vector<double> coords_;
  std::vector<std::size_t> offsets_ = {0};  ///< size horizon()+1, cumulative requests
};

}  // namespace mobsrv::sim
