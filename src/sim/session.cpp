#include "sim/session.hpp"

#include <sstream>

namespace mobsrv::sim {

Session::Session(Point start, ModelParams params, OnlineAlgorithm& algorithm,
                 const RunOptions& options)
    : params_(params), options_(options), algorithm_(&algorithm), server_(std::move(start)) {
  options_.validate();
  params_.validate();
  MOBSRV_CHECK_MSG(!server_.empty(), "start position must have a dimension");
  limit_ = params_.max_step * options_.speed_factor;
  // Numerical slack: algorithms move exactly at the limit along computed
  // directions, so allow relative rounding error before calling foul.
  hard_limit_ = limit_ * (1.0 + 1e-9);
  algorithm_->reset(server_, params_);
  if (options_.record_positions) positions_.push_back(server_);
}

void Session::reserve(std::size_t horizon) {
  if (options_.record_positions) positions_.reserve(horizon + 1);
  if (options_.record_trace) trace_.reserve(horizon);
}

StepOutcome Session::push(BatchView batch) {
  StepView view;
  view.t = t_;
  view.batch = batch;
  view.server = server_;
  view.speed_limit = limit_;
  view.params = &params_;

  Point proposal = algorithm_->decide(view);
  MOBSRV_CHECK_MSG(proposal.dim() == server_.dim(), "algorithm changed dimension");
  const double moved = geo::distance(server_, proposal);
  bool clamped = false;
  if (moved > hard_limit_) {
    if (options_.policy == SpeedLimitPolicy::kThrow) {
      std::ostringstream os;
      os << algorithm_->name() << " proposed a move of " << moved << " > limit " << limit_
         << " at step " << t_;
      throw ContractViolation(os.str());
    }
    proposal = geo::move_toward(server_, proposal, limit_);
    clamped = true;
  }

  const StepCost cost = step_cost(params_, server_, proposal, batch);
  move_cost_ += cost.move;
  service_cost_ += cost.service;
  if (options_.record_trace) trace_.push_back({t_, server_, proposal, cost});
  server_ = proposal;
  if (options_.record_positions) positions_.push_back(server_);

  StepOutcome outcome;
  outcome.t = t_++;
  outcome.cost = cost;
  outcome.position = server_;
  outcome.clamped = clamped;
  return outcome;
}

RunResult Session::result() const& {
  RunResult result;
  result.move_cost = move_cost_;
  result.service_cost = service_cost_;
  result.total_cost = move_cost_ + service_cost_;
  result.final_position = server_;
  result.positions = positions_;
  result.trace = trace_;
  return result;
}

RunResult Session::result() && {
  RunResult result;
  result.move_cost = move_cost_;
  result.service_cost = service_cost_;
  result.total_cost = move_cost_ + service_cost_;
  result.final_position = server_;
  result.positions = std::move(positions_);
  result.trace = std::move(trace_);
  return result;
}

}  // namespace mobsrv::sim
