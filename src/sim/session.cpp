#include "sim/session.hpp"

#include <sstream>

#include "obs/metrics.hpp"

namespace mobsrv::sim {

namespace {

std::vector<Point> single_start(Point start) {
  std::vector<Point> starts;
  starts.push_back(std::move(start));
  return starts;
}

}  // namespace

Session::Session(std::vector<Point> starts, ModelParams params, FleetAlgorithm& algorithm,
                 const RunOptions& options)
    : params_(params), options_(options), algorithm_(&algorithm), servers_(std::move(starts)) {
  init_fresh();
}

Session::Session(std::vector<Point> starts, ModelParams params,
                 std::unique_ptr<FleetAlgorithm> owned_adapter, const RunOptions& options)
    : params_(params),
      options_(options),
      owned_adapter_(std::move(owned_adapter)),
      algorithm_(owned_adapter_.get()),
      servers_(std::move(starts)) {
  init_fresh();
}

Session::Session(Point start, ModelParams params, OnlineAlgorithm& algorithm,
                 const RunOptions& options)
    : Session(single_start(std::move(start)), params,
              std::make_unique<SingleServerAdapter>(algorithm), options) {}

Session::Session(const SessionCheckpoint& checkpoint, FleetAlgorithm& algorithm)
    : params_(checkpoint.params), algorithm_(&algorithm) {
  init_from(checkpoint);
}

Session::Session(const SessionCheckpoint& checkpoint, std::unique_ptr<FleetAlgorithm> owned_adapter)
    : params_(checkpoint.params),
      owned_adapter_(std::move(owned_adapter)),
      algorithm_(owned_adapter_.get()) {
  init_from(checkpoint);
}

Session::Session(const SessionCheckpoint& checkpoint, OnlineAlgorithm& algorithm)
    : Session(checkpoint, std::make_unique<SingleServerAdapter>(algorithm)) {}

void Session::init_fresh() {
  options_.validate();
  params_.validate();
  MOBSRV_CHECK_MSG(!servers_.empty(), "a session needs at least one server");
  const int dim = servers_.front().dim();
  MOBSRV_CHECK_MSG(dim >= 1, "start position must have a dimension");
  for (const Point& start : servers_)
    MOBSRV_CHECK_MSG(start.dim() == dim, "fleet start positions must share one dimension");
  MOBSRV_CHECK_MSG(servers_.size() == 1 || (!options_.record_positions && !options_.record_trace),
                   "fleet sessions (k > 1) keep no history; disable "
                   "record_positions/record_trace");
  limit_ = params_.max_step * options_.speed_factor;
  // Numerical slack: algorithms move exactly at the limit along computed
  // directions, so allow relative rounding error before calling foul.
  hard_limit_ = limit_ * (1.0 + 1e-9);
  server_move_.assign(servers_.size(), 0.0);
  algorithm_->reset({servers_.data(), servers_.size()}, params_);
  if (options_.record_positions && servers_.size() == 1) positions_.push_back(servers_.front());
}

void Session::init_from(const SessionCheckpoint& checkpoint) {
  params_.validate();
  options_.speed_factor = checkpoint.speed_factor;
  options_.policy = checkpoint.policy;
  options_.record_positions = false;  // history is not part of a checkpoint
  options_.record_trace = false;
  options_.validate();
  MOBSRV_CHECK_MSG(!checkpoint.servers.empty(), "checkpoint has no server positions");
  const int dim = checkpoint.servers.front().dim();
  MOBSRV_CHECK_MSG(dim >= 1, "checkpoint server position must have a dimension");
  for (const Point& server : checkpoint.servers)
    MOBSRV_CHECK_MSG(server.dim() == dim, "checkpoint fleet positions must share one dimension");
  MOBSRV_CHECK_MSG(checkpoint.server_move.size() == checkpoint.servers.size(),
                   "checkpoint per-server move split does not match its fleet size");
  MOBSRV_CHECK_MSG(algorithm_->name() == checkpoint.algorithm,
                   "checkpoint was saved by algorithm \"" + checkpoint.algorithm +
                       "\" but \"" + algorithm_->name() + "\" was supplied to restore it");
  servers_ = checkpoint.servers;
  server_move_ = checkpoint.server_move;
  t_ = checkpoint.step;
  move_cost_ = checkpoint.move_cost;
  service_cost_ = checkpoint.service_cost;
  limit_ = params_.max_step * options_.speed_factor;
  hard_limit_ = limit_ * (1.0 + 1e-9);
  // reset() re-derives everything the algorithm computes from (start,
  // params); restore_state then overwrites the state that evolved during
  // the interrupted run. See the OnlineAlgorithm checkpoint contract.
  algorithm_->reset({servers_.data(), servers_.size()}, params_);
  algorithm_->restore_state(checkpoint.algorithm_state);
}

void Session::reserve(std::size_t horizon) {
  if (options_.record_positions && servers_.size() == 1) positions_.reserve(horizon + 1);
  if (options_.record_trace) trace_.reserve(horizon);
}

StepOutcome Session::push(BatchView batch) {
  if (options_.step_latency == nullptr) return push_untimed(batch);
  const std::uint64_t begin = obs::now_ns();
  StepOutcome outcome = push_untimed(batch);
  options_.step_latency->record(obs::now_ns() - begin);
  return outcome;
}

StepOutcome Session::push_untimed(BatchView batch) {
  const std::size_t k = servers_.size();
  FleetStepView view;
  view.t = t_;
  view.batch = batch;
  view.servers = {servers_.data(), k};
  view.speed_limit = limit_;
  view.params = &params_;

  proposals_.assign(servers_.begin(), servers_.end());
  algorithm_->decide(view, {proposals_.data(), k});

  StepOutcome outcome;
  StepCost cost;
  bool clamped = false;

  if (k == 1) {
    // Single-server path. kThrow runs are bit-for-bit the pre-fleet engine
    // (the corpus bit-identity contract); under kClamp the engine now
    // clamps to the EXACT limit — the historical multi-server semantics —
    // where the pre-fleet engine accepted proposals up to the numerical
    // slack verbatim. Proposals inside the slack band are fp noise riding
    // the limit, so shortening them is not reported as a clamp.
    Point& server = servers_[0];
    Point proposal = proposals_[0];
    MOBSRV_CHECK_MSG(proposal.dim() == server.dim(), "algorithm changed dimension");
    const double moved = geo::distance(server, proposal);
    if (moved > hard_limit_ && options_.policy == SpeedLimitPolicy::kThrow) {
      std::ostringstream os;
      os << algorithm_->name() << " proposed a move of " << moved << " > limit " << limit_
         << " at step " << t_;
      throw ContractViolation(os.str());
    }
    if (moved > limit_ && options_.policy == SpeedLimitPolicy::kClamp) {
      proposal = geo::move_toward(server, proposal, limit_);
      clamped = moved > hard_limit_;
    }
    cost = step_cost(params_, server, proposal, batch);
    move_cost_ += cost.move;
    service_cost_ += cost.service;
    server_move_[0] += cost.move;
    if (options_.record_trace) trace_.push_back({t_, server, proposal, cost});
    server = proposal;
    if (options_.record_positions) positions_.push_back(server);
  } else {
    // Fleet path. Two passes so kThrow rejects a violating step before any
    // state is mutated (the strong guarantee the k = 1 path has always had).
    moved_.resize(k);
    for (std::size_t i = 0; i < k; ++i) {
      MOBSRV_CHECK_MSG(proposals_[i].dim() == servers_[i].dim(), "algorithm changed dimension");
      moved_[i] = geo::distance(servers_[i], proposals_[i]);
      if (moved_[i] > hard_limit_ && options_.policy == SpeedLimitPolicy::kThrow) {
        std::ostringstream os;
        os << algorithm_->name() << " proposed a move of " << moved_[i] << " > limit " << limit_
           << " for server " << i << " at step " << t_;
        throw ContractViolation(os.str());
      }
    }
    if (params_.order == ServiceOrder::kServeThenMove) {
      cost.service = nearest_service_cost({servers_.data(), k}, batch);
      service_cost_ += cost.service;
    }
    for (std::size_t i = 0; i < k; ++i) {
      Point& server = servers_[i];
      Point proposal = proposals_[i];
      double travelled = moved_[i];
      if (travelled > limit_ && options_.policy == SpeedLimitPolicy::kClamp) {
        proposal = geo::move_toward(server, proposal, limit_);
        travelled = geo::distance(server, proposal);
        if (moved_[i] > hard_limit_) clamped = true;
      }
      const double move_i = params_.move_cost_weight * travelled;
      cost.move += move_i;
      // Accumulate per server straight into the running totals (not via the
      // step sum): floating-point addition is order-sensitive and this is
      // the order the pre-fleet ext::run_multi loop used.
      move_cost_ += move_i;
      server_move_[i] += move_i;
      server = proposal;
    }
    if (params_.order == ServiceOrder::kMoveThenServe) {
      cost.service = nearest_service_cost({servers_.data(), k}, batch);
      service_cost_ += cost.service;
    }
  }

  outcome.t = t_++;
  outcome.cost = cost;
  outcome.position = servers_[0];
  outcome.clamped = clamped;
  return outcome;
}

RunResult Session::result() const& {
  MOBSRV_CHECK_MSG(servers_.size() == 1, "RunResult is the single-server outcome (k = 1)");
  RunResult result;
  result.move_cost = move_cost_;
  result.service_cost = service_cost_;
  result.total_cost = move_cost_ + service_cost_;
  result.final_position = servers_[0];
  result.positions = positions_;
  result.trace = trace_;
  return result;
}

RunResult Session::result() && {
  MOBSRV_CHECK_MSG(servers_.size() == 1, "RunResult is the single-server outcome (k = 1)");
  RunResult result;
  result.move_cost = move_cost_;
  result.service_cost = service_cost_;
  result.total_cost = move_cost_ + service_cost_;
  result.final_position = servers_[0];
  result.positions = std::move(positions_);
  result.trace = std::move(trace_);
  return result;
}

SessionCheckpoint Session::save() const {
  MOBSRV_CHECK_MSG(!options_.record_positions && !options_.record_trace,
                   "checkpointing targets streaming sessions: history buffers are not "
                   "serialised, so disable record_positions/record_trace");
  SessionCheckpoint checkpoint;
  checkpoint.params = params_;
  checkpoint.speed_factor = options_.speed_factor;
  checkpoint.policy = options_.policy;
  checkpoint.step = t_;
  checkpoint.move_cost = move_cost_;
  checkpoint.service_cost = service_cost_;
  checkpoint.servers = servers_;
  checkpoint.server_move = server_move_;
  checkpoint.algorithm = algorithm_->name();
  algorithm_->save_state(checkpoint.algorithm_state);
  return checkpoint;
}

}  // namespace mobsrv::sim
