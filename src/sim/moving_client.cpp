#include "sim/moving_client.hpp"

namespace mobsrv::sim {

void MovingClientInstance::validate(double tolerance) const {
  MOBSRV_CHECK_MSG(!start.empty(), "start position must have a dimension");
  MOBSRV_CHECK_MSG(server_speed > 0.0, "server speed must be positive");
  MOBSRV_CHECK_MSG(agent_speed > 0.0, "agent speed must be positive");
  MOBSRV_CHECK_MSG(move_cost_weight >= 1.0, "the paper requires D >= 1");
  MOBSRV_CHECK_MSG(!agents.empty(), "need at least one agent");
  const std::size_t T = agents.front().positions.size();
  const double limit = agent_speed * (1.0 + tolerance);
  for (const auto& agent : agents) {
    MOBSRV_CHECK_MSG(agent.positions.size() == T, "agent paths must share one horizon");
    Point prev = start;
    for (const auto& pos : agent.positions) {
      MOBSRV_CHECK_MSG(pos.dim() == start.dim(), "agent position dimension mismatch");
      MOBSRV_CHECK_MSG(geo::distance(prev, pos) <= limit, "agent exceeded its speed limit");
      prev = pos;
    }
  }
}

Instance to_instance(const MovingClientInstance& mc) {
  mc.validate();
  std::vector<RequestBatch> steps(mc.horizon());
  for (std::size_t t = 0; t < mc.horizon(); ++t) {
    steps[t].requests.reserve(mc.agents.size());
    for (const auto& agent : mc.agents) steps[t].requests.push_back(agent.positions[t]);
  }
  ModelParams params;
  params.move_cost_weight = mc.move_cost_weight;
  params.max_step = mc.server_speed;
  params.order = ServiceOrder::kMoveThenServe;
  return Instance(mc.start, params, std::move(steps));
}

}  // namespace mobsrv::sim
