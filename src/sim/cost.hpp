/// \file cost.hpp
/// Cost accounting for the Mobile Server Problem.
///
/// All cost paid in the library flows through these functions so that
/// online algorithms, offline solvers and audits are guaranteed to use the
/// identical objective.
#pragma once

#include <span>

#include "sim/model.hpp"
#include "sim/trajectory_store.hpp"

namespace mobsrv::sim {

/// Cost of one time step split into its two components.
struct StepCost {
  double move = 0.0;     ///< D · d(P_before, P_after)
  double service = 0.0;  ///< Σ_i d(P_serve, v_i), P_serve per service order
  [[nodiscard]] double total() const noexcept { return move + service; }
};

/// Cost of serving \p batch from position \p server. Operates on the view's
/// raw coordinate buffer — the engine's hot loop touches dense doubles, never
/// Point temporaries. (RequestBatch converts implicitly, so owning batches
/// still flow through the same function.)
[[nodiscard]] double service_cost(const Point& server, BatchView batch);

/// Nearest-server service cost for a fleet: Σ_v min_i d(P_i, v). The
/// k-server generalisation of service_cost (identical operation sequence
/// per distance, so a one-server fleet charges bit-identical costs).
[[nodiscard]] double nearest_service_cost(std::span<const Point> servers, BatchView batch);

/// Cost of step t when the server moves \p before → \p after while \p batch
/// arrives, under the given model parameters/service order.
[[nodiscard]] StepCost step_cost(const ModelParams& params, const Point& before,
                                 const Point& after, BatchView batch);

/// Total cost of a full trajectory against an instance. \p positions must
/// hold horizon()+1 points: positions[0] is the start (must equal
/// instance.start()) and positions[t+1] is the server position after the
/// move of step t. Movement limits are NOT checked here (see
/// validate_trajectory) because offline solvers call this on intermediate,
/// possibly infeasible iterates.
///
/// The view overload is the hot path: it walks raw coordinate rows through
/// the dimension-specialized kernels (geometry/kernels.hpp) with zero
/// allocations and charges bit-identical costs to the Point overload —
/// TrajectoryStore converts implicitly, and std::vector<Point> call sites
/// keep hitting the span overload unchanged.
[[nodiscard]] double trajectory_cost(const Instance& instance, ConstTrajectoryView positions);
[[nodiscard]] double trajectory_cost(const Instance& instance, std::span<const Point> positions);

/// Checks a trajectory's feasibility: correct length, correct start, every
/// step within max_step·(1+tolerance). Returns the index of the first
/// violating move, or -1 if feasible.
[[nodiscard]] long first_speed_violation(const Instance& instance, ConstTrajectoryView positions,
                                         double speed_factor = 1.0, double tolerance = 1e-9);
[[nodiscard]] long first_speed_violation(const Instance& instance,
                                         std::span<const Point> positions,
                                         double speed_factor = 1.0, double tolerance = 1e-9);

}  // namespace mobsrv::sim
