/// \file fleet.hpp
/// The unified fleet decision interface: every run is over k >= 1 servers.
///
/// The paper's Section 6 poses the multi-server generalisation as its open
/// question; the follow-up literature (Feldkord et al., "Managing Multiple
/// Mobile Resources"; Ghodselahi & Kuhn, "Serving Online Requests with
/// Mobile Servers") treats fleets of bounded-movement servers as the real
/// object of study. The engine therefore speaks ONE interface:
///
///   * FleetStepView  — what a strategy may look at: the step's requests,
///     the current server positions as a NON-OWNING span (no per-step
///     vector copies), the per-server movement limit and model params;
///   * FleetAlgorithm — proposes one target per server by writing into a
///     caller-provided span (pre-filled with the current positions, so
///     "stay put" is the zero-cost default);
///   * SingleServerAdapter — lifts any OnlineAlgorithm into a k = 1 fleet,
///     preserving its behaviour and registry name bit-for-bit. Every
///     single-server strategy joins the fleet engine through it.
///
/// Checkpointing mirrors OnlineAlgorithm: save_state/restore_state round-
/// trip mutable internals through an AlgorithmState.
#pragma once

#include <memory>
#include <span>
#include <string>

#include "sim/online_algorithm.hpp"

namespace mobsrv::sim {

/// Everything a fleet strategy may look at when deciding step t.
/// (Oblivious of the future by construction: the engine only ever exposes
/// the current batch.)
struct FleetStepView {
  std::size_t t = 0;                ///< step index, 0-based
  BatchView batch;                  ///< requests of this step (non-owning span)
  std::span<const Point> servers;   ///< current positions P_t (non-owning)
  double speed_limit = 0.0;         ///< per-server movement limit (1+δ)·m
  const ModelParams* params = nullptr;  ///< D, m, service order (never null)
};

/// Abstract fleet strategy: proposes one new position per server.
/// Implementations must be deterministic given their construction arguments
/// (randomized strategies take an explicit seed).
class FleetAlgorithm {
 public:
  virtual ~FleetAlgorithm() = default;

  /// Called once before a run; resets all internal state.
  virtual void reset(std::span<const Point> starts, const ModelParams& params) {
    (void)starts;
    (void)params;
  }

  /// Writes the desired positions P_{t+1} into \p proposals (one slot per
  /// server, pre-filled by the engine with the current positions, so an
  /// untouched slot means "stay"). Each proposal must satisfy
  /// d(view.servers[i], proposals[i]) <= view.speed_limit (the engine
  /// enforces this under the run's SpeedLimitPolicy).
  virtual void decide(const FleetStepView& view, std::span<Point> proposals) = 0;

  /// Stable display/registry name ("AssignAndChase", or the wrapped
  /// single-server name for adapters).
  [[nodiscard]] virtual std::string name() const = 0;

  /// Checkpoint hooks; see OnlineAlgorithm for the contract.
  virtual void save_state(AlgorithmState& state) const { (void)state; }
  virtual void restore_state(const AlgorithmState& state) {
    MOBSRV_CHECK_MSG(state.empty(),
                     "algorithm " + name() + " cannot restore a non-empty checkpoint state");
  }
};

using FleetAlgorithmPtr = std::unique_ptr<FleetAlgorithm>;

/// Lifts a single-server OnlineAlgorithm into the fleet interface for
/// k = 1 runs. The adapter is transparent: the wrapped strategy sees the
/// exact StepView it always saw, so costs are bit-identical to the
/// pre-fleet engine, and name()/checkpoint state pass straight through.
class SingleServerAdapter final : public FleetAlgorithm {
 public:
  /// Non-owning: \p inner must outlive the adapter.
  explicit SingleServerAdapter(OnlineAlgorithm& inner) : inner_(&inner) {}

  /// Owning form (the fleet registry constructs algorithms this way).
  explicit SingleServerAdapter(AlgorithmPtr inner) : owned_(std::move(inner)) {
    MOBSRV_CHECK_MSG(owned_ != nullptr, "adapter needs an algorithm");
    inner_ = owned_.get();
  }

  void reset(std::span<const Point> starts, const ModelParams& params) override {
    MOBSRV_CHECK_MSG(starts.size() == 1,
                     "single-server algorithm " + inner_->name() + " cannot drive a fleet of " +
                         std::to_string(starts.size()) + " servers");
    inner_->reset(starts[0], params);
  }

  void decide(const FleetStepView& view, std::span<Point> proposals) override {
    StepView single;
    single.t = view.t;
    single.batch = view.batch;
    single.server = view.servers[0];
    single.speed_limit = view.speed_limit;
    single.params = view.params;
    proposals[0] = inner_->decide(single);
  }

  [[nodiscard]] std::string name() const override { return inner_->name(); }

  void save_state(AlgorithmState& state) const override { inner_->save_state(state); }
  void restore_state(const AlgorithmState& state) override { inner_->restore_state(state); }

  /// The wrapped strategy (for callers that need the single-server view).
  [[nodiscard]] OnlineAlgorithm& inner() noexcept { return *inner_; }

 private:
  AlgorithmPtr owned_;  ///< present only for the owning form
  OnlineAlgorithm* inner_;
};

}  // namespace mobsrv::sim
