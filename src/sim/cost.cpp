#include "sim/cost.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "geometry/kernels.hpp"

namespace mobsrv::sim {

namespace {

/// Raw-row service cost, dimension-specialized. Exactly the operation
/// sequence of service_cost(const Point&, BatchView) — componentwise
/// difference, squares summed in axis order, then sqrt — so the two paths
/// charge bit-identical costs.
template <int Dim>
double service_cost_k(const double* server, int dim, BatchView batch) {
  if (batch.empty()) return 0.0;
  MOBSRV_DCHECK(dim == batch.dim());
  const double* v = batch.data();
  const std::size_t stride = batch.stride();
  double total = 0.0;
  for (std::size_t i = 0; i < batch.size(); ++i, v += stride) {
    double s2 = 0.0;
    for (int k = 0; k < geo::kern::bound<Dim>(dim); ++k) {
      const double d = server[k] - v[k];
      s2 += d * d;
    }
    total += std::sqrt(s2);
  }
  return total;
}

}  // namespace

std::string to_string(ServiceOrder order) {
  switch (order) {
    case ServiceOrder::kMoveThenServe:
      return "move-then-serve";
    case ServiceOrder::kServeThenMove:
      return "answer-first";
  }
  return "unknown";
}

double service_cost(const Point& server, BatchView batch) {
  if (batch.empty()) return 0.0;
  MOBSRV_DCHECK(server.dim() == batch.dim());
  const int dim = batch.dim();
  const double* s = server.data();
  const double* v = batch.data();
  const std::size_t stride = batch.stride();
  double total = 0.0;
  // Same operation sequence as geo::distance(server, v_i) — componentwise
  // difference, squares summed in axis order, then sqrt — so costs are
  // bit-identical to the AoS path and to recorded traces.
  for (std::size_t i = 0; i < batch.size(); ++i, v += stride) {
    double s2 = 0.0;
    for (int k = 0; k < dim; ++k) {
      const double d = s[k] - v[k];
      s2 += d * d;
    }
    total += std::sqrt(s2);
  }
  return total;
}

double nearest_service_cost(std::span<const Point> servers, BatchView batch) {
  MOBSRV_CHECK_MSG(!servers.empty(), "need at least one server");
  if (batch.empty()) return 0.0;
  MOBSRV_DCHECK(servers[0].dim() == batch.dim());
  const int dim = batch.dim();
  const double* v = batch.data();
  const std::size_t stride = batch.stride();
  double total = 0.0;
  // Same per-distance operation sequence as service_cost / geo::distance,
  // so a one-server fleet reproduces single-server service bit-identically.
  for (std::size_t i = 0; i < batch.size(); ++i, v += stride) {
    double best = std::numeric_limits<double>::infinity();
    for (const Point& server : servers) {
      const double* s = server.data();
      double s2 = 0.0;
      for (int k = 0; k < dim; ++k) {
        const double d = s[k] - v[k];
        s2 += d * d;
      }
      best = std::min(best, std::sqrt(s2));
    }
    total += best;
  }
  return total;
}

StepCost step_cost(const ModelParams& params, const Point& before, const Point& after,
                   BatchView batch) {
  StepCost cost;
  cost.move = params.move_cost_weight * geo::distance(before, after);
  const Point& serve_from = params.order == ServiceOrder::kMoveThenServe ? after : before;
  cost.service = service_cost(serve_from, batch);
  return cost;
}

double trajectory_cost(const Instance& instance, ConstTrajectoryView positions) {
  MOBSRV_CHECK_MSG(positions.size() == instance.horizon() + 1,
                   "trajectory must have horizon()+1 positions");
  const int dim = instance.dim();
  MOBSRV_CHECK_MSG(positions.dim() == dim, "trajectory dimension mismatch");
  const ModelParams& params = instance.params();
  const bool move_then_serve = params.order == ServiceOrder::kMoveThenServe;
  return geo::kern::dispatch_dim(dim, [&](auto d) {
    constexpr int Dim = decltype(d)::value;
    double total = 0.0;
    for (std::size_t t = 0; t < instance.horizon(); ++t) {
      const double* before = positions.row(t);
      const double* after = positions.row(t + 1);
      const double move = params.move_cost_weight * geo::kern::distance<Dim>(before, after, dim);
      const double service =
          service_cost_k<Dim>(move_then_serve ? after : before, dim, instance.step(t));
      total += move + service;
    }
    return total;
  });
}

double trajectory_cost(const Instance& instance, std::span<const Point> positions) {
  MOBSRV_CHECK_MSG(positions.size() == instance.horizon() + 1,
                   "trajectory must have horizon()+1 positions");
  double total = 0.0;
  for (std::size_t t = 0; t < instance.horizon(); ++t)
    total += step_cost(instance.params(), positions[t], positions[t + 1], instance.step(t)).total();
  return total;
}

long first_speed_violation(const Instance& instance, ConstTrajectoryView positions,
                           double speed_factor, double tolerance) {
  if (positions.size() != instance.horizon() + 1) return 0;
  const int dim = instance.dim();
  if (positions.dim() != dim) return 0;
  if (!(positions[0] == instance.start())) return 0;
  const double limit = instance.params().max_step * speed_factor;
  return geo::kern::dispatch_dim(dim, [&](auto d) -> long {
    constexpr int Dim = decltype(d)::value;
    for (std::size_t t = 0; t + 1 < positions.size(); ++t) {
      if (geo::kern::distance<Dim>(positions.row(t), positions.row(t + 1), dim) >
          limit * (1.0 + tolerance))
        return static_cast<long>(t);
    }
    return -1;
  });
}

long first_speed_violation(const Instance& instance, std::span<const Point> positions,
                           double speed_factor, double tolerance) {
  if (positions.size() != instance.horizon() + 1) return 0;
  if (!(positions[0] == instance.start())) return 0;
  const double limit = instance.params().max_step * speed_factor;
  for (std::size_t t = 0; t + 1 < positions.size(); ++t) {
    if (geo::distance(positions[t], positions[t + 1]) > limit * (1.0 + tolerance))
      return static_cast<long>(t);
  }
  return -1;
}

}  // namespace mobsrv::sim
