/// \file trajectory_store.hpp
/// Flat structure-of-arrays trajectory storage and the TrajectoryView spans
/// over it — the offline twin of request_store.hpp.
///
/// A trajectory is P_0..P_T: `horizon+1` positions of one dimension. Stored
/// as `std::vector<Point>` every position paid the 72-byte Point layout
/// (4-byte dim + padding + 8 inline doubles, ~8x waste at d = 1), and the
/// descent/DP/brute-force oracles strode over mostly-dead coordinates in
/// their hottest loops. TrajectoryStore keeps ONE contiguous `double` buffer
/// of `size() * dim()` live coordinates (position t occupies
/// `[t*dim, (t+1)*dim)`), so the solver side of the library reads and writes
/// dense rows — mirroring what RequestStore/BatchView did for requests.
///
/// Two non-owning spans expose the buffer: `TrajectoryView` (mutable — the
/// descent loops update positions in place) and `ConstTrajectoryView`. Both
/// are *strided* like BatchView, so the same view types can also alias an
/// AoS `Point` array (stride = sizeof(Point)/sizeof(double)) — that is how
/// the `std::vector<Point>` shims run through the exact same kernels without
/// a copy. The dense fast path has stride == dim.
///
/// TrajectoryStore deliberately speaks most of the `std::vector<Point>`
/// surface (size/empty/operator[]/back/push_back/reserve/assign/iteration)
/// so call sites that carried trajectories as point vectors keep compiling
/// — only the storage underneath changed.
#pragma once

#include <algorithm>
#include <cstddef>
#include <span>
#include <vector>

#include "geometry/point.hpp"

namespace mobsrv::sim {

using geo::Point;

/// Non-owning read-only view of a trajectory: position t's k-th coordinate
/// is `base[t*stride + k]`. Cheap to copy; the backing storage
/// (TrajectoryStore or a Point array) must outlive the view.
class ConstTrajectoryView {
 public:
  /// Empty view (no positions, dimension 0).
  constexpr ConstTrajectoryView() noexcept = default;

  ConstTrajectoryView(const double* base, std::size_t count, int dim, std::size_t stride)
      : base_(base), count_(count), dim_(dim), stride_(stride) {
    MOBSRV_DCHECK(count == 0 ||
                  (base != nullptr && dim >= 1 && stride >= static_cast<std::size_t>(dim)));
  }

  /// Aliases an AoS Point array (stride = sizeof(Point) in doubles).
  /// Validates that all positions share one dimension — the one O(T) check
  /// the strided path pays at wrap time.
  [[nodiscard]] static ConstTrajectoryView of(std::span<const Point> points) {
    if (points.empty()) return {};
    const int dim = points.front().dim();
    for (const Point& p : points) MOBSRV_CHECK_MSG(p.dim() == dim, "position dimension mismatch");
    return {points.front().data(), points.size(), dim, sizeof(Point) / sizeof(double)};
  }

  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  /// Dimension of the positions; 0 for an empty view.
  [[nodiscard]] int dim() const noexcept { return dim_; }
  /// Doubles between consecutive positions (== dim() on the dense path).
  [[nodiscard]] std::size_t stride() const noexcept { return stride_; }

  /// First coordinate of position t.
  [[nodiscard]] const double* row(std::size_t t) const {
    MOBSRV_DCHECK(t < count_);
    return base_ + t * stride_;
  }

  /// Coordinate k of position t, unchecked beyond debug asserts.
  [[nodiscard]] double coord(std::size_t t, int k) const {
    MOBSRV_DCHECK(t < count_ && k >= 0 && k < dim_);
    return base_[t * stride_ + static_cast<std::size_t>(k)];
  }

  /// Materialises position t as a Point.
  [[nodiscard]] Point operator[](std::size_t t) const {
    MOBSRV_DCHECK(t < count_);
    Point p(dim_);
    const double* v = row(t);
    for (int k = 0; k < dim_; ++k) p[k] = v[k];
    return p;
  }

  /// Materialises the whole view (cold paths and tests).
  [[nodiscard]] std::vector<Point> to_points() const {
    std::vector<Point> out;
    out.reserve(count_);
    for (std::size_t t = 0; t < count_; ++t) out.push_back((*this)[t]);
    return out;
  }

 private:
  const double* base_ = nullptr;
  std::size_t count_ = 0;
  int dim_ = 0;
  std::size_t stride_ = 0;
};

/// Mutable counterpart: the descent/projection/clamp loops write positions
/// in place through it.
class TrajectoryView {
 public:
  constexpr TrajectoryView() noexcept = default;

  TrajectoryView(double* base, std::size_t count, int dim, std::size_t stride)
      : base_(base), count_(count), dim_(dim), stride_(stride) {
    MOBSRV_DCHECK(count == 0 ||
                  (base != nullptr && dim >= 1 && stride >= static_cast<std::size_t>(dim)));
  }

  /// Aliases a mutable AoS Point array; writes through the view land in the
  /// Points' coordinate storage (their dims are untouched, so all positions
  /// must already share one dimension — checked).
  [[nodiscard]] static TrajectoryView of(std::span<Point> points) {
    if (points.empty()) return {};
    const int dim = points.front().dim();
    for (const Point& p : points) MOBSRV_CHECK_MSG(p.dim() == dim, "position dimension mismatch");
    return {points.front().data(), points.size(), dim, sizeof(Point) / sizeof(double)};
  }

  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  [[nodiscard]] int dim() const noexcept { return dim_; }
  [[nodiscard]] std::size_t stride() const noexcept { return stride_; }

  [[nodiscard]] double* row(std::size_t t) const {
    MOBSRV_DCHECK(t < count_);
    return base_ + t * stride_;
  }

  [[nodiscard]] double coord(std::size_t t, int k) const {
    MOBSRV_DCHECK(t < count_ && k >= 0 && k < dim_);
    return base_[t * stride_ + static_cast<std::size_t>(k)];
  }

  [[nodiscard]] Point operator[](std::size_t t) const {
    MOBSRV_DCHECK(t < count_);
    Point p(dim_);
    const double* v = row(t);
    for (int k = 0; k < dim_; ++k) p[k] = v[k];
    return p;
  }

  /// Overwrites position t with \p p (dimension-checked).
  void set(std::size_t t, const Point& p) const {
    MOBSRV_DCHECK(t < count_);
    MOBSRV_DCHECK(p.dim() == dim_);
    double* v = row(t);
    for (int k = 0; k < dim_; ++k) v[k] = p[k];
  }

  /// Read-only aliasing view of the same storage.
  operator ConstTrajectoryView() const noexcept {  // NOLINT(google-explicit-constructor)
    return {base_, count_, dim_, stride_};
  }

 private:
  double* base_ = nullptr;
  std::size_t count_ = 0;
  int dim_ = 0;
  std::size_t stride_ = 0;
};

/// Owning flat SoA storage for one trajectory: `size() * dim()` doubles in
/// one dense buffer. The dimension is fixed by a constructor or the first
/// push_back, exactly like RequestStore.
class TrajectoryStore {
 public:
  /// Empty store of unspecified dimension (fixed by the first push_back).
  TrajectoryStore() = default;

  /// Empty store of fixed dimension \p dim.
  explicit TrajectoryStore(int dim) : dim_(dim) {
    MOBSRV_CHECK_MSG(dim >= 1 && dim <= Point::kMaxDim, "TrajectoryStore dimension out of range");
  }

  /// Store of \p count positions, all at the origin of R^dim.
  TrajectoryStore(int dim, std::size_t count) : TrajectoryStore(dim) {
    coords_.assign(count * static_cast<std::size_t>(dim), 0.0);
  }

  /// Builds a store from an AoS point array (validating every dimension).
  [[nodiscard]] static TrajectoryStore from_points(std::span<const Point> points) {
    if (points.empty()) return {};
    TrajectoryStore store(points.front().dim());  // size the buffer in one allocation
    store.reserve(points.size());
    for (const Point& p : points) store.push_back(p);
    return store;
  }
  [[nodiscard]] static TrajectoryStore from_points(const std::vector<Point>& points) {
    return from_points(std::span<const Point>(points.data(), points.size()));
  }

  /// Dimension; 0 until fixed by a constructor or the first push_back.
  [[nodiscard]] int dim() const noexcept { return dim_; }
  [[nodiscard]] std::size_t size() const noexcept {
    return dim_ == 0 ? 0 : coords_.size() / static_cast<std::size_t>(dim_);
  }
  [[nodiscard]] bool empty() const noexcept { return coords_.empty(); }

  void reserve(std::size_t count) {
    coords_.reserve(count * static_cast<std::size_t>(dim_ > 0 ? dim_ : 1));
  }

  /// Appends one position; a dimensionless store adopts its dimension.
  void push_back(const Point& p) {
    if (dim_ == 0) {
      MOBSRV_CHECK_MSG(p.dim() >= 1 && p.dim() <= Point::kMaxDim,
                       "TrajectoryStore dimension out of range");
      dim_ = p.dim();
    }
    MOBSRV_CHECK_MSG(p.dim() == dim_, "position dimension mismatch");
    coords_.insert(coords_.end(), p.data(), p.data() + dim_);
  }

  /// Replaces the contents with \p count copies of \p p.
  void assign(std::size_t count, const Point& p) {
    clear_positions();
    reserve(count);
    for (std::size_t t = 0; t < count; ++t) push_back(p);
  }

  /// Drops all positions (the dimension is kept).
  void clear_positions() noexcept { coords_.clear(); }

  /// Grows/shrinks to \p count positions (new positions at the origin).
  void resize(std::size_t count) {
    MOBSRV_CHECK_MSG(dim_ > 0 || count == 0, "cannot size a dimensionless store");
    coords_.resize(count * static_cast<std::size_t>(dim_), 0.0);
  }

  /// Bulk overwrite from any view of matching dimension — a plain buffer
  /// copy on the dense path, reusing this store's capacity.
  void assign_from(ConstTrajectoryView view) {
    if (view.empty()) {
      coords_.clear();
      return;
    }
    MOBSRV_CHECK_MSG(dim_ == 0 || dim_ == view.dim(), "position dimension mismatch");
    dim_ = view.dim();
    const std::size_t d = static_cast<std::size_t>(dim_);
    if (view.stride() == d) {
      coords_.assign(view.row(0), view.row(0) + view.size() * d);
    } else {
      coords_.clear();
      coords_.reserve(view.size() * d);
      for (std::size_t t = 0; t < view.size(); ++t)
        coords_.insert(coords_.end(), view.row(t), view.row(t) + d);
    }
  }

  [[nodiscard]] Point operator[](std::size_t t) const { return cview()[t]; }
  [[nodiscard]] Point back() const {
    MOBSRV_CHECK(!empty());
    return (*this)[size() - 1];
  }
  void set(std::size_t t, const Point& p) { view().set(t, p); }

  [[nodiscard]] const double* row(std::size_t t) const {
    MOBSRV_DCHECK(t < size());
    return coords_.data() + t * static_cast<std::size_t>(dim_);
  }
  [[nodiscard]] double* row(std::size_t t) {
    MOBSRV_DCHECK(t < size());
    return coords_.data() + t * static_cast<std::size_t>(dim_);
  }

  /// Dense mutable/const views over the whole buffer (stride == dim).
  [[nodiscard]] TrajectoryView view() {
    return {coords_.data(), size(), dim_, static_cast<std::size_t>(dim_)};
  }
  [[nodiscard]] ConstTrajectoryView cview() const {
    return {coords_.data(), size(), dim_, static_cast<std::size_t>(dim_)};
  }
  operator ConstTrajectoryView() const { return cview(); }  // NOLINT(google-explicit-constructor)

  /// The dense coordinate buffer (size()*dim() doubles).
  [[nodiscard]] const std::vector<double>& coords() const noexcept { return coords_; }

  [[nodiscard]] std::vector<Point> to_points() const { return cview().to_points(); }

  /// IEEE-equality compare (same semantics as comparing Point vectors:
  /// coordinate-wise operator==, so -0.0 == 0.0 and NaN != NaN).
  [[nodiscard]] friend bool operator==(const TrajectoryStore& a, const TrajectoryStore& b) {
    if (a.size() != b.size()) return false;
    if (a.empty()) return true;
    if (a.dim_ != b.dim_) return false;
    for (std::size_t i = 0; i < a.coords_.size(); ++i)
      if (a.coords_[i] != b.coords_[i]) return false;
    return true;
  }
  [[nodiscard]] friend bool operator!=(const TrajectoryStore& a, const TrajectoryStore& b) {
    return !(a == b);
  }

  /// Forward iteration yielding Points by value (mirrors BatchView).
  class iterator {
   public:
    iterator(const TrajectoryStore* store, std::size_t t) : store_(store), t_(t) {}
    [[nodiscard]] Point operator*() const { return (*store_)[t_]; }
    iterator& operator++() {
      ++t_;
      return *this;
    }
    [[nodiscard]] bool operator!=(const iterator& o) const { return t_ != o.t_; }

   private:
    const TrajectoryStore* store_;
    std::size_t t_;
  };
  [[nodiscard]] iterator begin() const { return {this, 0}; }
  [[nodiscard]] iterator end() const { return {this, size()}; }

 private:
  int dim_ = 0;
  std::vector<double> coords_;
};

}  // namespace mobsrv::sim
