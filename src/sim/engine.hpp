/// \file engine.hpp
/// The simulation engine: runs an online algorithm against an instance.
#pragma once

#include <vector>

#include "sim/cost.hpp"
#include "sim/online_algorithm.hpp"

namespace mobsrv::obs {
class Histogram;
}  // namespace mobsrv::obs

namespace mobsrv::sim {

/// What to do when an algorithm proposes a move beyond its speed limit.
enum class SpeedLimitPolicy {
  kThrow,  ///< contract violation (used by tests to catch algorithm bugs)
  kClamp,  ///< move as far toward the proposal as the limit allows
};

/// Per-step record for analysis and visualisation.
struct TraceStep {
  std::size_t t = 0;
  Point before;      ///< P_t
  Point after;       ///< P_{t+1}
  StepCost cost;     ///< this step's cost split
};

/// Options controlling a run.
struct RunOptions {
  /// Speed augmentation factor (1+δ); the online algorithm may move
  /// speed_factor · m per round. 1.0 = no augmentation.
  double speed_factor = 1.0;
  SpeedLimitPolicy policy = SpeedLimitPolicy::kThrow;
  bool record_trace = false;
  /// Keep the P_0..P_T history. On by default (cheap, and audits need it);
  /// long-lived streaming sessions (the multiplexer) turn it off so memory
  /// stays O(1) per session.
  bool record_positions = true;
  /// Optional per-push wall-time sink (ns). When set, every push() records
  /// its duration into this histogram (not owned; must outlive the
  /// session). Observational only — results are bit-identical either way
  /// (DESIGN.md §7). Default off: the engine/step_latency perf row carries
  /// the instrumented path so the plain path stays clock-free.
  obs::Histogram* step_latency = nullptr;

  void validate() const { MOBSRV_CHECK_MSG(speed_factor >= 1.0, "speed factor must be >= 1"); }
};

/// Outcome of a run.
struct RunResult {
  double total_cost = 0.0;
  double move_cost = 0.0;
  double service_cost = 0.0;
  Point final_position;
  std::vector<TraceStep> trace;  ///< filled iff record_trace
  /// Server positions P_0..P_T (always filled; cheap and needed by audits).
  std::vector<Point> positions;
};

/// Runs \p algorithm over \p instance from its start position: a thin loop
/// over sim::Session (see session.hpp) that reveals batches one step at a
/// time, enforces the movement limit under the given policy, and accounts
/// costs per the instance's service order. Costs are bit-identical to
/// streaming the same batches through a Session by hand.
[[nodiscard]] RunResult run(const Instance& instance, OnlineAlgorithm& algorithm,
                            const RunOptions& options = {});

}  // namespace mobsrv::sim
