#include "sim/engine.hpp"

#include "sim/session.hpp"

namespace mobsrv::sim {

RunResult run(const Instance& instance, OnlineAlgorithm& algorithm, const RunOptions& options) {
  Session session(instance.start(), instance.params(), algorithm, options);
  session.reserve(instance.horizon());
  for (std::size_t t = 0; t < instance.horizon(); ++t) session.push(instance.step(t));
  return std::move(session).result();
}

}  // namespace mobsrv::sim
