#include "sim/engine.hpp"

#include <sstream>

namespace mobsrv::sim {

RunResult run(const Instance& instance, OnlineAlgorithm& algorithm, const RunOptions& options) {
  options.validate();
  const ModelParams& params = instance.params();
  const double limit = params.max_step * options.speed_factor;
  // Numerical slack: algorithms move exactly at the limit along computed
  // directions, so allow relative rounding error before calling foul.
  const double hard_limit = limit * (1.0 + 1e-9);

  RunResult result;
  result.positions.reserve(instance.horizon() + 1);
  result.positions.push_back(instance.start());
  if (options.record_trace) result.trace.reserve(instance.horizon());

  algorithm.reset(instance.start(), params);
  Point server = instance.start();

  for (std::size_t t = 0; t < instance.horizon(); ++t) {
    const RequestBatch& batch = instance.step(t);
    StepView view;
    view.t = t;
    view.batch = &batch;
    view.server = server;
    view.speed_limit = limit;
    view.params = &params;

    Point proposal = algorithm.decide(view);
    MOBSRV_CHECK_MSG(proposal.dim() == server.dim(), "algorithm changed dimension");
    const double moved = geo::distance(server, proposal);
    if (moved > hard_limit) {
      if (options.policy == SpeedLimitPolicy::kThrow) {
        std::ostringstream os;
        os << algorithm.name() << " proposed a move of " << moved << " > limit " << limit
           << " at step " << t;
        throw ContractViolation(os.str());
      }
      proposal = geo::move_toward(server, proposal, limit);
    }

    const StepCost cost = step_cost(params, server, proposal, batch);
    result.move_cost += cost.move;
    result.service_cost += cost.service;
    if (options.record_trace) result.trace.push_back({t, server, proposal, cost});
    server = proposal;
    result.positions.push_back(server);
  }

  result.total_cost = result.move_cost + result.service_cost;
  result.final_position = server;
  return result;
}

}  // namespace mobsrv::sim
