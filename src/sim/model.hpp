/// \file model.hpp
/// The Mobile Server Problem model: parameters, request batches, instances.
///
/// Faithful to Section 2 of the paper: a single server in R^d, per-step
/// movement limit m, movement cost weight D >= 1, and per-step request
/// batches served at the sum of distances from the server. Two service
/// orders exist:
///   * kMoveThenServe (the paper's default): requests are revealed, the
///     server moves, requests are served from the *new* position;
///   * kServeThenMove (the "Answer-First" variant): requests are served from
///     the *old* position, then the server may move (still knowing them).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "geometry/point.hpp"

namespace mobsrv::sim {

using geo::Point;

/// Which side of the move the service cost is charged on.
enum class ServiceOrder {
  kMoveThenServe,  ///< cost_t = D·d(P_t,P_{t+1}) + Σ d(P_{t+1}, v_{t,i})
  kServeThenMove,  ///< cost_t = Σ d(P_t, v_{t,i}) + D·d(P_t,P_{t+1})
};

[[nodiscard]] std::string to_string(ServiceOrder order);

/// Model constants shared by online algorithms and offline solvers.
struct ModelParams {
  double move_cost_weight = 1.0;  ///< D >= 1, cost per unit distance moved
  double max_step = 1.0;          ///< m > 0, per-round movement limit (offline)
  ServiceOrder order = ServiceOrder::kMoveThenServe;

  void validate() const {
    MOBSRV_CHECK_MSG(move_cost_weight >= 1.0, "the paper requires D >= 1");
    MOBSRV_CHECK_MSG(max_step > 0.0, "movement limit m must be positive");
  }
};

/// Requests appearing in one time step (possibly none).
struct RequestBatch {
  std::vector<Point> requests;

  [[nodiscard]] std::size_t size() const noexcept { return requests.size(); }
  [[nodiscard]] bool empty() const noexcept { return requests.empty(); }
};

/// A full problem instance: start position plus the request sequence.
class Instance {
 public:
  Instance(Point start, ModelParams params, std::vector<RequestBatch> steps)
      : start_(std::move(start)), params_(params), steps_(std::move(steps)) {
    params_.validate();
    MOBSRV_CHECK_MSG(!start_.empty(), "start position must have a dimension");
    for (const auto& step : steps_)
      for (const auto& v : step.requests)
        MOBSRV_CHECK_MSG(v.dim() == start_.dim(), "request dimension mismatch");
  }

  [[nodiscard]] int dim() const noexcept { return start_.dim(); }
  [[nodiscard]] const Point& start() const noexcept { return start_; }
  [[nodiscard]] const ModelParams& params() const noexcept { return params_; }
  [[nodiscard]] std::size_t horizon() const noexcept { return steps_.size(); }
  [[nodiscard]] const std::vector<RequestBatch>& steps() const noexcept { return steps_; }
  [[nodiscard]] const RequestBatch& step(std::size_t t) const {
    MOBSRV_CHECK(t < steps_.size());
    return steps_[t];
  }

  /// Minimum and maximum batch size over the sequence (Rmin, Rmax in the
  /// paper). Returns {0, 0} for an empty sequence.
  [[nodiscard]] std::pair<std::size_t, std::size_t> request_bounds() const noexcept {
    if (steps_.empty()) return {0, 0};
    std::size_t lo = steps_[0].size(), hi = steps_[0].size();
    for (const auto& s : steps_) {
      lo = std::min(lo, s.size());
      hi = std::max(hi, s.size());
    }
    return {lo, hi};
  }

  /// Total number of requests over the whole sequence.
  [[nodiscard]] std::size_t total_requests() const noexcept {
    std::size_t n = 0;
    for (const auto& s : steps_) n += s.size();
    return n;
  }

  /// Returns a copy with the service order flipped (used to replay the same
  /// request sequence under the Answer-First variant, as in Theorem 7).
  [[nodiscard]] Instance with_order(ServiceOrder order) const {
    ModelParams p = params_;
    p.order = order;
    return Instance(start_, p, steps_);
  }

 private:
  Point start_;
  ModelParams params_;
  std::vector<RequestBatch> steps_;
};

}  // namespace mobsrv::sim
