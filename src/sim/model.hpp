/// \file model.hpp
/// The Mobile Server Problem model: parameters, request batches, instances.
///
/// Faithful to Section 2 of the paper: a single server in R^d, per-step
/// movement limit m, movement cost weight D >= 1, and per-step request
/// batches served at the sum of distances from the server. Two service
/// orders exist:
///   * kMoveThenServe (the paper's default): requests are revealed, the
///     server moves, requests are served from the *new* position;
///   * kServeThenMove (the "Answer-First" variant): requests are served from
///     the *old* position, then the server may move (still knowing them).
///
/// Requests live in a flat SoA RequestStore (see request_store.hpp);
/// `step(t)` hands out BatchView spans into it. Validation (D, m, request
/// dimensions) happens exactly once, when the store is built — copying an
/// Instance (e.g. with_order) is a plain buffer copy.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sim/request_store.hpp"

namespace mobsrv::sim {

/// Which side of the move the service cost is charged on.
enum class ServiceOrder {
  kMoveThenServe,  ///< cost_t = D·d(P_t,P_{t+1}) + Σ d(P_{t+1}, v_{t,i})
  kServeThenMove,  ///< cost_t = Σ d(P_t, v_{t,i}) + D·d(P_t,P_{t+1})
};

[[nodiscard]] std::string to_string(ServiceOrder order);

/// Model constants shared by online algorithms and offline solvers.
struct ModelParams {
  double move_cost_weight = 1.0;  ///< D >= 1, cost per unit distance moved
  double max_step = 1.0;          ///< m > 0, per-round movement limit (offline)
  ServiceOrder order = ServiceOrder::kMoveThenServe;

  void validate() const {
    MOBSRV_CHECK_MSG(move_cost_weight >= 1.0, "the paper requires D >= 1");
    MOBSRV_CHECK_MSG(max_step > 0.0, "movement limit m must be positive");
  }
};

/// A full problem instance: start position plus the request sequence.
class Instance {
 public:
  /// Builds from owning AoS batches; validates every request's dimension
  /// against the start (once — copies never re-validate) and sizes the flat
  /// buffer with a single exact reservation.
  Instance(Point start, ModelParams params, const std::vector<RequestBatch>& steps)
      : Instance(std::move(start), params, RequestStore::from_batches(steps)) {}

  /// Adopts an already-built (and therefore already-validated) store. The
  /// store's dimension must match the start's unless it is still
  /// dimensionless (no requests yet).
  Instance(Point start, ModelParams params, RequestStore store)
      : start_(std::move(start)), params_(params), store_(std::move(store)) {
    params_.validate();
    MOBSRV_CHECK_MSG(!start_.empty(), "start position must have a dimension");
    MOBSRV_CHECK_MSG(store_.dim() == 0 || store_.dim() == start_.dim(),
                     "request dimension mismatch");
  }

  [[nodiscard]] int dim() const noexcept { return start_.dim(); }
  [[nodiscard]] const Point& start() const noexcept { return start_; }
  [[nodiscard]] const ModelParams& params() const noexcept { return params_; }
  [[nodiscard]] std::size_t horizon() const noexcept { return store_.horizon(); }
  [[nodiscard]] const RequestStore& store() const noexcept { return store_; }
  [[nodiscard]] BatchView step(std::size_t t) const { return store_.batch(t); }

  /// Appends one step to the request sequence (the streaming build path;
  /// dimension-checked against the start).
  void push_step(BatchView batch) {
    MOBSRV_CHECK_MSG(batch.empty() || batch.dim() == start_.dim(), "request dimension mismatch");
    store_.push_batch(batch);
  }

  /// Minimum and maximum batch size over the sequence (Rmin, Rmax in the
  /// paper). Returns {0, 0} for an empty sequence.
  [[nodiscard]] std::pair<std::size_t, std::size_t> request_bounds() const noexcept {
    return store_.request_bounds();
  }

  /// Total number of requests over the whole sequence.
  [[nodiscard]] std::size_t total_requests() const noexcept { return store_.total_requests(); }

  /// Returns a copy with the service order flipped (used to replay the same
  /// request sequence under the Answer-First variant, as in Theorem 7).
  /// A flat buffer copy: no per-request re-validation.
  [[nodiscard]] Instance with_order(ServiceOrder order) const {
    ModelParams p = params_;
    p.order = order;
    return Instance(start_, p, store_);
  }

 private:
  Point start_;
  ModelParams params_;
  RequestStore store_;
};

}  // namespace mobsrv::sim
