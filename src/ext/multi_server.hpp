/// \file multi_server.hpp
/// EXPLORATORY EXTENSION (paper Section 6): several mobile servers.
///
/// The paper closes by asking whether the bounded-movement idea transfers
/// to the k-Server Problem / Page Migration with multiple pages. This
/// module implements the natural model: k servers, each holding a copy of
/// the page and bound by the same per-round movement limit m; every request
/// is served by the *nearest* server (after the moves, Move-First
/// semantics); movement of every server costs D per unit.
///
/// No competitive bound is claimed here — the point is an executable
/// substrate for the open question, plus the ablation experiment E14
/// (marginal value of additional servers on multi-hotspot demand).
#pragma once

#include <memory>
#include <vector>

#include "sim/cost.hpp"
#include "stats/rng.hpp"

namespace mobsrv::ext {

/// Everything a multi-server strategy may look at when deciding step t.
struct MultiStepView {
  std::size_t t = 0;
  sim::BatchView batch;             ///< requests of this step (non-owning span)
  std::vector<sim::Point> servers;  ///< current positions
  double speed_limit = 0.0;         ///< per-server movement limit this round
  const sim::ModelParams* params = nullptr;
};

/// Strategy interface: proposes one new position per server.
class MultiServerAlgorithm {
 public:
  virtual ~MultiServerAlgorithm() = default;
  virtual void reset(const std::vector<sim::Point>& starts, const sim::ModelParams& params) {
    (void)starts;
    (void)params;
  }
  [[nodiscard]] virtual std::vector<sim::Point> decide(const MultiStepView& view) = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Nearest-server service cost: Σ_v min_i d(P_i, v).
[[nodiscard]] double nearest_service_cost(const std::vector<sim::Point>& servers,
                                          sim::BatchView batch);

/// Result of a multi-server run.
struct MultiRunResult {
  double total_cost = 0.0;
  double move_cost = 0.0;
  double service_cost = 0.0;
  std::vector<sim::Point> final_positions;
};

/// Runs a multi-server strategy. Starts are spread by the caller; every
/// server obeys speed_factor·m per round (clamped — extensions favour
/// robustness over strictness here, and cost accounting is done by the
/// engine either way).
[[nodiscard]] MultiRunResult run_multi(const sim::Instance& instance,
                                       std::vector<sim::Point> starts,
                                       MultiServerAlgorithm& algorithm,
                                       double speed_factor = 1.0);

/// The natural generalisation of MtC: requests are assigned to their
/// nearest server; each server runs the MtC rule (damped step toward the
/// closest median of its assigned sub-batch).
class AssignAndChase final : public MultiServerAlgorithm {
 public:
  [[nodiscard]] std::vector<sim::Point> decide(const MultiStepView& view) override;
  [[nodiscard]] std::string name() const override { return "AssignAndChase"; }
};

/// Baseline: servers never move (a static cache grid).
class StaticServers final : public MultiServerAlgorithm {
 public:
  [[nodiscard]] std::vector<sim::Point> decide(const MultiStepView& view) override {
    return view.servers;
  }
  [[nodiscard]] std::string name() const override { return "Static"; }
};

/// Workload for the ablation: `clusters` independent drifting hotspots.
struct MultiHotspotParams {
  std::size_t horizon = 1024;
  int dim = 2;
  double move_cost_weight = 4.0;
  double max_step = 1.0;
  int clusters = 4;
  double cluster_spread = 1.5;    ///< request std-dev around each hotspot
  double drift_speed = 0.4;
  double arena_half_width = 20.0; ///< initial hotspot positions
  std::size_t requests_per_cluster = 1;
};
[[nodiscard]] sim::Instance make_multi_hotspot(const MultiHotspotParams& params,
                                               stats::Rng& rng);

/// Evenly spread start positions on a circle (2-D+) or interval (1-D) of
/// the given radius around the origin-start of \p instance.
[[nodiscard]] std::vector<sim::Point> spread_starts(const sim::Instance& instance, int k,
                                                    double radius);

}  // namespace mobsrv::ext
