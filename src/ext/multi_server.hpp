/// \file multi_server.hpp
/// EXPLORATORY EXTENSION (paper Section 6): several mobile servers.
///
/// The paper closes by asking whether the bounded-movement idea transfers
/// to the k-Server Problem / Page Migration with multiple pages. This
/// module implements the natural model: k servers, each holding a copy of
/// the page and bound by the same per-round movement limit m; every request
/// is served by the *nearest* server (after the moves, Move-First
/// semantics); movement of every server costs D per unit.
///
/// The engine itself lives in sim::Session — fleet strategies implement the
/// unified sim::FleetAlgorithm interface and `run_multi` is a thin batch
/// loop over a fleet Session, bit-identical to the historical private loop
/// here on Move-First instances (every workload this module generates).
/// One deliberate upgrade over the seed loop: the fleet engine honours the
/// instance's ServiceOrder — kServeThenMove instances are now served from
/// the pre-move positions, where the old loop silently ignored the order.
/// Single-server strategies join fleets of size 1 through
/// sim::SingleServerAdapter; this header keeps the fleet-native strategies
/// and the multi-hotspot workload generator.
///
/// No competitive bound is claimed here — the point is an executable
/// substrate for the open question, plus the ablation experiment E14
/// (marginal value of additional servers on multi-hotspot demand).
#pragma once

#include <vector>

#include "sim/session.hpp"
#include "stats/rng.hpp"

namespace mobsrv::ext {

/// Nearest-server service cost: Σ_v min_i d(P_i, v). Forwards to the
/// engine's kernel in sim/cost.hpp (kept here for API continuity).
[[nodiscard]] inline double nearest_service_cost(const std::vector<sim::Point>& servers,
                                                 sim::BatchView batch) {
  return sim::nearest_service_cost({servers.data(), servers.size()}, batch);
}

/// Result of a multi-server run.
struct MultiRunResult {
  double total_cost = 0.0;
  double move_cost = 0.0;
  double service_cost = 0.0;
  std::vector<sim::Point> final_positions;
  std::vector<double> per_server_move_cost;  ///< move split by server
};

/// Runs a fleet strategy over \p instance: a thin loop over sim::Session.
/// Starts are spread by the caller; every server obeys speed_factor·m per
/// round (clamped — extensions favour robustness over strictness here, and
/// cost accounting is done by the engine either way).
[[nodiscard]] MultiRunResult run_multi(const sim::Instance& instance,
                                       std::vector<sim::Point> starts,
                                       sim::FleetAlgorithm& algorithm,
                                       double speed_factor = 1.0);

/// The natural generalisation of MtC: requests are assigned to their
/// nearest server; each server runs the MtC rule (damped step toward the
/// closest median of its assigned sub-batch). Stateless, so checkpoints
/// carry no algorithm state.
class AssignAndChase final : public sim::FleetAlgorithm {
 public:
  void decide(const sim::FleetStepView& view, std::span<sim::Point> proposals) override;
  [[nodiscard]] std::string name() const override { return "AssignAndChase"; }

 private:
  std::vector<std::vector<geo::Point>> assigned_;  ///< scratch reused across steps
};

/// Baseline: servers never move (a static cache grid). The engine pre-fills
/// proposals with the current positions, so deciding is a no-op.
class StaticServers final : public sim::FleetAlgorithm {
 public:
  void decide(const sim::FleetStepView& view, std::span<sim::Point> proposals) override {
    (void)view;
    (void)proposals;
  }
  [[nodiscard]] std::string name() const override { return "Static"; }
};

/// Workload for the ablation: `clusters` independent drifting hotspots.
struct MultiHotspotParams {
  std::size_t horizon = 1024;
  int dim = 2;
  double move_cost_weight = 4.0;
  double max_step = 1.0;
  int clusters = 4;
  double cluster_spread = 1.5;    ///< request std-dev around each hotspot
  double drift_speed = 0.4;
  double arena_half_width = 20.0; ///< initial hotspot positions
  std::size_t requests_per_cluster = 1;
};
[[nodiscard]] sim::Instance make_multi_hotspot(const MultiHotspotParams& params,
                                               stats::Rng& rng);

/// Evenly spread start positions on a circle (2-D+) or interval (1-D) of
/// the given radius around the origin-start of \p instance.
[[nodiscard]] std::vector<sim::Point> spread_starts(const sim::Instance& instance, int k,
                                                    double radius);

}  // namespace mobsrv::ext
