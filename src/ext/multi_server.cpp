#include "ext/multi_server.hpp"

#include <cmath>
#include <limits>

#include "adversary/workloads.hpp"
#include "algorithms/move_to_center.hpp"
#include "median/geometric_median.hpp"

namespace mobsrv::ext {

double nearest_service_cost(const std::vector<sim::Point>& servers, sim::BatchView batch) {
  MOBSRV_CHECK_MSG(!servers.empty(), "need at least one server");
  double total = 0.0;
  for (const sim::Point v : batch) {
    double best = std::numeric_limits<double>::infinity();
    for (const auto& s : servers) best = std::min(best, geo::distance(s, v));
    total += best;
  }
  return total;
}

MultiRunResult run_multi(const sim::Instance& instance, std::vector<sim::Point> starts,
                         MultiServerAlgorithm& algorithm, double speed_factor) {
  MOBSRV_CHECK_MSG(!starts.empty(), "need at least one server");
  MOBSRV_CHECK(speed_factor >= 1.0);
  for (const auto& s : starts) MOBSRV_CHECK(s.dim() == instance.dim());
  const sim::ModelParams& params = instance.params();
  const double limit = params.max_step * speed_factor;

  algorithm.reset(starts, params);
  std::vector<sim::Point> servers = std::move(starts);

  MultiRunResult result;
  for (std::size_t t = 0; t < instance.horizon(); ++t) {
    MultiStepView view;
    view.t = t;
    view.batch = instance.step(t);
    view.servers = servers;
    view.speed_limit = limit;
    view.params = &params;

    std::vector<sim::Point> proposals = algorithm.decide(view);
    MOBSRV_CHECK_MSG(proposals.size() == servers.size(), "strategy changed the fleet size");
    for (std::size_t i = 0; i < servers.size(); ++i) {
      // Clamp overshoots to the limit (robust engine policy for extensions).
      const sim::Point next = geo::move_toward(servers[i], proposals[i], limit);
      result.move_cost += params.move_cost_weight * geo::distance(servers[i], next);
      servers[i] = next;
    }
    result.service_cost += nearest_service_cost(servers, instance.step(t));
  }
  result.total_cost = result.move_cost + result.service_cost;
  result.final_positions = std::move(servers);
  return result;
}

std::vector<sim::Point> AssignAndChase::decide(const MultiStepView& view) {
  std::vector<sim::Point> next = view.servers;
  if (view.batch.empty()) return next;

  // Assign each request to its nearest server (by pre-move positions).
  std::vector<std::vector<geo::Point>> assigned(view.servers.size());
  for (const sim::Point v : view.batch) {
    std::size_t best = 0;
    double best_d = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < view.servers.size(); ++i) {
      const double d = geo::distance(view.servers[i], v);
      if (d < best_d) {
        best_d = d;
        best = i;
      }
    }
    assigned[best].push_back(v);
  }

  // Each server runs the MtC rule on its own sub-batch.
  for (std::size_t i = 0; i < next.size(); ++i) {
    if (assigned[i].empty()) continue;
    const geo::Point center = med::closest_center(assigned[i], view.servers[i]);
    const double dist = geo::distance(view.servers[i], center);
    const double step =
        std::min(alg::MoveToCenter::damped_step(assigned[i].size(),
                                                view.params->move_cost_weight, dist),
                 view.speed_limit);
    next[i] = geo::move_toward(view.servers[i], center, step);
  }
  return next;
}

sim::Instance make_multi_hotspot(const MultiHotspotParams& params, stats::Rng& rng) {
  MOBSRV_CHECK(params.clusters >= 1 && params.requests_per_cluster >= 1);
  const sim::Point start = sim::Point::zero(params.dim);

  std::vector<sim::Point> hotspots;
  for (int c = 0; c < params.clusters; ++c) {
    sim::Point h(params.dim);
    for (int d = 0; d < params.dim; ++d)
      h[d] = rng.uniform(-params.arena_half_width, params.arena_half_width);
    hotspots.push_back(h);
  }

  std::vector<sim::RequestBatch> steps(params.horizon);
  for (auto& step : steps) {
    for (auto& h : hotspots) {
      h += adv::random_unit_vector(params.dim, rng) * (params.drift_speed * rng.uniform());
      for (std::size_t i = 0; i < params.requests_per_cluster; ++i)
        step.requests.push_back(adv::gaussian_around(h, params.cluster_spread, rng));
    }
  }

  sim::ModelParams mp;
  mp.move_cost_weight = params.move_cost_weight;
  mp.max_step = params.max_step;
  return sim::Instance(start, mp, std::move(steps));
}

std::vector<sim::Point> spread_starts(const sim::Instance& instance, int k, double radius) {
  MOBSRV_CHECK(k >= 1 && radius >= 0.0);
  std::vector<sim::Point> starts;
  starts.reserve(static_cast<std::size_t>(k));
  const int dim = instance.dim();
  for (int i = 0; i < k; ++i) {
    sim::Point p = instance.start();
    if (k > 1) {
      if (dim == 1) {
        p[0] += radius * (2.0 * static_cast<double>(i) / (k - 1) - 1.0);
      } else {
        const double angle = 2.0 * 3.14159265358979323846 * static_cast<double>(i) / k;
        p[0] += radius * std::cos(angle);
        p[1] += radius * std::sin(angle);
      }
    }
    starts.push_back(p);
  }
  return starts;
}

}  // namespace mobsrv::ext
