#include "ext/multi_server.hpp"

#include <cmath>
#include <limits>

#include "adversary/workloads.hpp"
#include "algorithms/move_to_center.hpp"
#include "median/geometric_median.hpp"

namespace mobsrv::ext {

MultiRunResult run_multi(const sim::Instance& instance, std::vector<sim::Point> starts,
                         sim::FleetAlgorithm& algorithm, double speed_factor) {
  MOBSRV_CHECK_MSG(!starts.empty(), "need at least one server");
  MOBSRV_CHECK(speed_factor >= 1.0);
  for (const auto& s : starts) MOBSRV_CHECK(s.dim() == instance.dim());

  sim::RunOptions options;
  options.speed_factor = speed_factor;
  options.policy = sim::SpeedLimitPolicy::kClamp;  // robust engine policy for extensions
  options.record_positions = false;
  options.record_trace = false;
  sim::Session session(std::move(starts), instance.params(), algorithm, options);
  for (std::size_t t = 0; t < instance.horizon(); ++t) session.push(instance.step(t));

  MultiRunResult result;
  result.move_cost = session.move_cost();
  result.service_cost = session.service_cost();
  result.total_cost = session.total_cost();
  result.final_positions = session.fleet();
  result.per_server_move_cost.reserve(session.fleet_size());
  for (std::size_t i = 0; i < session.fleet_size(); ++i)
    result.per_server_move_cost.push_back(session.server_move_cost(i));
  return result;
}

void AssignAndChase::decide(const sim::FleetStepView& view, std::span<sim::Point> proposals) {
  if (view.batch.empty()) return;  // proposals are pre-filled with "stay"

  // Assign each request to its nearest server (by pre-move positions).
  assigned_.resize(view.servers.size());
  for (auto& bucket : assigned_) bucket.clear();
  for (const sim::Point v : view.batch) {
    std::size_t best = 0;
    double best_d = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < view.servers.size(); ++i) {
      const double d = geo::distance(view.servers[i], v);
      if (d < best_d) {
        best_d = d;
        best = i;
      }
    }
    assigned_[best].push_back(v);
  }

  // Each server runs the MtC rule on its own sub-batch.
  for (std::size_t i = 0; i < proposals.size(); ++i) {
    if (assigned_[i].empty()) continue;
    const geo::Point center = med::closest_center(assigned_[i], view.servers[i]);
    const double dist = geo::distance(view.servers[i], center);
    const double step =
        std::min(alg::MoveToCenter::damped_step(assigned_[i].size(),
                                                view.params->move_cost_weight, dist),
                 view.speed_limit);
    proposals[i] = geo::move_toward(view.servers[i], center, step);
  }
}

sim::Instance make_multi_hotspot(const MultiHotspotParams& params, stats::Rng& rng) {
  MOBSRV_CHECK(params.clusters >= 1 && params.requests_per_cluster >= 1);
  const sim::Point start = sim::Point::zero(params.dim);

  std::vector<sim::Point> hotspots;
  for (int c = 0; c < params.clusters; ++c) {
    sim::Point h(params.dim);
    for (int d = 0; d < params.dim; ++d)
      h[d] = rng.uniform(-params.arena_half_width, params.arena_half_width);
    hotspots.push_back(h);
  }

  std::vector<sim::RequestBatch> steps(params.horizon);
  for (auto& step : steps) {
    for (auto& h : hotspots) {
      h += adv::random_unit_vector(params.dim, rng) * (params.drift_speed * rng.uniform());
      for (std::size_t i = 0; i < params.requests_per_cluster; ++i)
        step.requests.push_back(adv::gaussian_around(h, params.cluster_spread, rng));
    }
  }

  sim::ModelParams mp;
  mp.move_cost_weight = params.move_cost_weight;
  mp.max_step = params.max_step;
  return sim::Instance(start, mp, std::move(steps));
}

std::vector<sim::Point> spread_starts(const sim::Instance& instance, int k, double radius) {
  MOBSRV_CHECK(k >= 1 && radius >= 0.0);
  std::vector<sim::Point> starts;
  starts.reserve(static_cast<std::size_t>(k));
  const int dim = instance.dim();
  for (int i = 0; i < k; ++i) {
    sim::Point p = instance.start();
    if (k > 1) {
      if (dim == 1) {
        p[0] += radius * (2.0 * static_cast<double>(i) / (k - 1) - 1.0);
      } else {
        const double angle = 2.0 * 3.14159265358979323846 * static_cast<double>(i) / k;
        p[0] += radius * std::cos(angle);
        p[1] += radius * std::sin(angle);
      }
    }
    starts.push_back(p);
  }
  return starts;
}

}  // namespace mobsrv::ext
