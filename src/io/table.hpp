/// \file table.hpp
/// Experiment tables: the reproduction artifacts every bench binary prints.
///
/// A Table is a named grid of cells with typed-ish formatting helpers; it
/// renders as GitHub markdown (for EXPERIMENTS.md) or CSV (for downstream
/// plotting).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/contracts.hpp"

namespace mobsrv::io {

/// Formats a double with \p digits significant digits, trimming trailing
/// zeros ("3.1416", "0.5", "120000").
[[nodiscard]] std::string format_double(double v, int digits = 4);

/// Tabular result container.
class Table {
 public:
  Table(std::string title, std::vector<std::string> columns);

  [[nodiscard]] const std::string& title() const noexcept { return title_; }
  [[nodiscard]] std::size_t num_columns() const noexcept { return columns_.size(); }
  [[nodiscard]] std::size_t num_rows() const noexcept { return rows_.size(); }
  [[nodiscard]] const std::vector<std::string>& columns() const noexcept { return columns_; }

  /// Appends a fully formed row; must match the column count.
  void add_row(std::vector<std::string> cells);

  /// Row builder: table.row().cell("a").cell(1.5).done();
  class RowBuilder {
   public:
    explicit RowBuilder(Table& t) : table_(t) {}
    RowBuilder& cell(const std::string& s) {
      cells_.push_back(s);
      return *this;
    }
    RowBuilder& cell(const char* s) {
      cells_.emplace_back(s);
      return *this;
    }
    RowBuilder& cell(double v, int digits = 4) {
      cells_.push_back(format_double(v, digits));
      return *this;
    }
    RowBuilder& cell(int v) {
      cells_.push_back(std::to_string(v));
      return *this;
    }
    RowBuilder& cell(long v) {
      cells_.push_back(std::to_string(v));
      return *this;
    }
    RowBuilder& cell(std::size_t v) {
      cells_.push_back(std::to_string(v));
      return *this;
    }
    /// Commits the row into the table.
    void done() { table_.add_row(std::move(cells_)); }

   private:
    Table& table_;
    std::vector<std::string> cells_;
  };

  [[nodiscard]] RowBuilder row() { return RowBuilder(*this); }

  /// Cell accessor (row-major); bounds-checked.
  [[nodiscard]] const std::string& at(std::size_t r, std::size_t c) const;

  /// Renders a column-aligned GitHub markdown table (with the title as a
  /// bold caption line).
  [[nodiscard]] std::string to_markdown() const;

  /// Renders RFC-4180-ish CSV (quotes cells containing commas/quotes).
  [[nodiscard]] std::string to_csv() const;

  /// Prints the markdown rendering to the stream followed by a blank line.
  void print(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mobsrv::io
