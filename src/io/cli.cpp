#include "io/cli.hpp"

#include <exception>
#include <iostream>
#include <string>

#include "common/contracts.hpp"

namespace mobsrv::io {

int usage_error(std::string_view tool, std::string_view message, void (*usage)(std::ostream&)) {
  std::cerr << tool << ": " << message << "\n";
  if (usage != nullptr) usage(std::cerr);
  return 2;
}

int run_cli(std::string_view tool, void (*usage)(std::ostream&),
            const std::function<int()>& body) {
  try {
    return body();
  } catch (const ContractViolation& error) {
    return usage_error(tool, error.what(), usage);
  } catch (const std::exception& error) {
    std::cerr << tool << ": " << error.what() << "\n";
    return 1;
  }
}

namespace {

bool flag_matches(const std::string& name, std::string_view pattern) {
  if (!pattern.empty() && pattern.back() == '*')
    return name.rfind(pattern.substr(0, pattern.size() - 1), 0) == 0;
  return name == pattern;
}

}  // namespace

void require_known_flags(const Args& args, std::initializer_list<const char*> known) {
  for (const std::string& name : args.flag_names()) {
    if (name == "help") continue;
    bool ok = false;
    for (const char* flag : known) ok = ok || flag_matches(name, flag);
    if (!ok) throw ContractViolation("unknown flag --" + name);
  }
}

void require_no_positionals(const Args& args) {
  if (!args.positionals().empty())
    throw ContractViolation("unexpected argument '" + args.positionals().front() +
                            "' (flags start with --)");
}

}  // namespace mobsrv::io
