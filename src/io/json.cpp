#include "io/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "common/contracts.hpp"

namespace mobsrv::io {

namespace {

[[noreturn]] void type_error(const char* want, Json::Type got) {
  static const char* names[] = {"null", "bool", "double", "int", "uint", "string", "array",
                                "object"};
  throw JsonError(std::string("expected ") + want + ", got " +
                      names[static_cast<std::size_t>(got)],
                  0);
}

}  // namespace

bool Json::as_bool() const {
  if (const bool* b = std::get_if<bool>(&value_)) return *b;
  type_error("bool", type());
}

double Json::as_double() const {
  switch (type()) {
    case Type::kDouble:
      return std::get<double>(value_);
    case Type::kInt:
      return static_cast<double>(std::get<std::int64_t>(value_));
    case Type::kUint:
      return static_cast<double>(std::get<std::uint64_t>(value_));
    default:
      type_error("number", type());
  }
}

std::int64_t Json::as_int64() const {
  switch (type()) {
    case Type::kInt:
      return std::get<std::int64_t>(value_);
    case Type::kUint: {
      const std::uint64_t u = std::get<std::uint64_t>(value_);
      if (u > static_cast<std::uint64_t>(INT64_MAX)) type_error("int64", type());
      return static_cast<std::int64_t>(u);
    }
    case Type::kDouble: {
      const double d = std::get<double>(value_);
      const auto i = static_cast<std::int64_t>(d);
      if (static_cast<double>(i) != d) type_error("integer", type());
      return i;
    }
    default:
      type_error("integer", type());
  }
}

std::uint64_t Json::as_uint64() const {
  switch (type()) {
    case Type::kUint:
      return std::get<std::uint64_t>(value_);
    case Type::kInt: {
      const std::int64_t i = std::get<std::int64_t>(value_);
      if (i < 0) type_error("uint64", type());
      return static_cast<std::uint64_t>(i);
    }
    case Type::kDouble: {
      const double d = std::get<double>(value_);
      if (d < 0.0) type_error("uint64", type());
      const auto u = static_cast<std::uint64_t>(d);
      if (static_cast<double>(u) != d) type_error("unsigned integer", type());
      return u;
    }
    default:
      type_error("unsigned integer", type());
  }
}

const std::string& Json::as_string() const {
  if (const std::string* s = std::get_if<std::string>(&value_)) return *s;
  type_error("string", type());
}

const Json::Array& Json::as_array() const {
  if (const Array* a = std::get_if<Array>(&value_)) return *a;
  type_error("array", type());
}

const Json::Object& Json::as_object() const {
  if (const Object* o = std::get_if<Object>(&value_)) return *o;
  type_error("object", type());
}

Json::Array& Json::as_array() {
  if (Array* a = std::get_if<Array>(&value_)) return *a;
  type_error("array", type());
}

Json::Object& Json::as_object() {
  if (Object* o = std::get_if<Object>(&value_)) return *o;
  type_error("object", type());
}

Json& Json::set(std::string key, Json value) {
  Object& obj = as_object();
  for (Member& m : obj) {
    if (m.first == key) {
      m.second = std::move(value);
      return *this;
    }
  }
  obj.emplace_back(std::move(key), std::move(value));
  return *this;
}

const Json* Json::find(std::string_view key) const {
  const Object& obj = as_object();
  for (const Member& m : obj)
    if (m.first == key) return &m.second;
  return nullptr;
}

const Json& Json::at(std::string_view key) const {
  if (const Json* v = find(key)) return *v;
  throw JsonError("missing key '" + std::string(key) + "'", 0);
}

Json& Json::push_back(Json value) {
  as_array().push_back(std::move(value));
  return *this;
}

// ---------------------------------------------------------------------------
// Serialisation.
// ---------------------------------------------------------------------------

void append_double(std::string& out, double v) {
  MOBSRV_CHECK_MSG(std::isfinite(v), "JSON cannot represent a non-finite number");
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  MOBSRV_CHECK(res.ec == std::errc());
  // Keep the sign of -0.0: to_chars prints "-0", which our parser maps back
  // to the double -0.0 (see parse_number).
  out.append(buf, res.ptr);
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);  // UTF-8 bytes pass through verbatim
        }
    }
  }
  out.push_back('"');
}

}  // namespace

void Json::dump_to(std::string& out) const {
  switch (type()) {
    case Type::kNull:
      out += "null";
      return;
    case Type::kBool:
      out += std::get<bool>(value_) ? "true" : "false";
      return;
    case Type::kDouble:
      append_double(out, std::get<double>(value_));
      return;
    case Type::kInt: {
      char buf[24];
      const auto res = std::to_chars(buf, buf + sizeof(buf), std::get<std::int64_t>(value_));
      out.append(buf, res.ptr);
      return;
    }
    case Type::kUint: {
      char buf[24];
      const auto res = std::to_chars(buf, buf + sizeof(buf), std::get<std::uint64_t>(value_));
      out.append(buf, res.ptr);
      return;
    }
    case Type::kString:
      append_escaped(out, std::get<std::string>(value_));
      return;
    case Type::kArray: {
      out.push_back('[');
      const Array& a = std::get<Array>(value_);
      for (std::size_t i = 0; i < a.size(); ++i) {
        if (i) out.push_back(',');
        a[i].dump_to(out);
      }
      out.push_back(']');
      return;
    }
    case Type::kObject: {
      out.push_back('{');
      const Object& o = std::get<Object>(value_);
      for (std::size_t i = 0; i < o.size(); ++i) {
        if (i) out.push_back(',');
        append_escaped(out, o[i].first);
        out.push_back(':');
        o[i].second.dump_to(out);
      }
      out.push_back('}');
      return;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

// ---------------------------------------------------------------------------
// Parsing: recursive descent with a depth guard.
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON document");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 256;

  [[noreturn]] void fail(const std::string& message) const { throw JsonError(message, pos_); }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_ws();
    switch (peek()) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"':
        return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Json(nullptr);
        fail("invalid literal");
      default:
        return parse_number();
    }
  }

  Json parse_object(int depth) {
    expect('{');
    Json::Object obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(obj));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.emplace_back(std::move(key), parse_value(depth + 1));
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return Json(std::move(obj));
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  Json parse_array(int depth) {
    expect('[');
    Json::Array arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value(depth + 1));
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return Json(std::move(arr));
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    if (peek() != '"') fail("expected string");
    ++pos_;
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("unescaped control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"':
        case '\\':
        case '/':
          out.push_back(e);
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'u': {
          unsigned code = parse_hex4();
          if (code >= 0xD800 && code <= 0xDBFF) {
            // Surrogate pair: require a following \uDC00..\uDFFF.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' || text_[pos_ + 1] != 'u')
              fail("unpaired UTF-16 surrogate");
            pos_ += 2;
            const unsigned low = parse_hex4();
            if (low < 0xDC00 || low > 0xDFFF) fail("invalid UTF-16 surrogate pair");
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            fail("unpaired UTF-16 surrogate");
          }
          append_utf8(out, code);
          break;
        }
        default:
          fail("invalid escape character");
      }
    }
  }

  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9')
        code += static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f')
        code += static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        code += static_cast<unsigned>(c - 'A' + 10);
      else
        fail("invalid hex digit in \\u escape");
    }
    return code;
  }

  static void append_utf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (code >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-')
        ++pos_;
      else
        break;
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") fail("invalid number");

    const bool integral = token.find_first_of(".eE") == std::string_view::npos;
    if (integral) {
      if (token[0] == '-') {
        std::int64_t i = 0;
        const auto res = std::from_chars(token.data(), token.data() + token.size(), i);
        if (res.ec == std::errc() && res.ptr == token.data() + token.size()) {
          // "-0" must keep its sign when read back as a double.
          if (i == 0) return Json(-0.0);
          return Json(i);
        }
      } else {
        std::uint64_t u = 0;
        const auto res = std::from_chars(token.data(), token.data() + token.size(), u);
        if (res.ec == std::errc() && res.ptr == token.data() + token.size()) return Json(u);
      }
      // Integer overflow: fall through to double.
    }
    double d = 0.0;
    const auto res = std::from_chars(token.data(), token.data() + token.size(), d);
    if (res.ec != std::errc() || res.ptr != token.data() + token.size())
      fail("invalid number '" + std::string(token) + "'");
    return Json(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace mobsrv::io
