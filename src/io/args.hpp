/// \file args.hpp
/// Minimal command-line flag parsing for examples and bench binaries.
///
/// Understands `--name=value`, `--name value` and boolean `--name`.
/// Unrecognised arguments are collected as positionals so the bench mains
/// can forward them to google-benchmark untouched.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/contracts.hpp"

namespace mobsrv::io {

/// Parsed command line.
class Args {
 public:
  Args(int argc, const char* const* argv);

  /// Program name (argv[0]).
  [[nodiscard]] const std::string& program() const noexcept { return program_; }

  [[nodiscard]] bool has(const std::string& name) const { return flags_.count(name) > 0; }

  /// Raw string value; empty optional if absent.
  [[nodiscard]] std::optional<std::string> get(const std::string& name) const;

  [[nodiscard]] std::string get_string(const std::string& name, const std::string& fallback) const;
  [[nodiscard]] double get_double(const std::string& name, double fallback) const;
  [[nodiscard]] int get_int(const std::string& name, int fallback) const;
  [[nodiscard]] std::uint64_t get_uint64(const std::string& name, std::uint64_t fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  /// Arguments that did not look like --flags, in order.
  [[nodiscard]] const std::vector<std::string>& positionals() const noexcept { return positionals_; }

  /// Names of every --flag that was passed (sorted; for allowlist checks).
  [[nodiscard]] std::vector<std::string> flag_names() const;

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positionals_;
};

/// Splits a comma-separated flag value ("MtC, Lazy,, e01") into trimmed,
/// de-duplicated items preserving first-occurrence order; empty segments
/// are dropped. Shared by every list-valued CLI flag (`--only`, `--algos`).
[[nodiscard]] std::vector<std::string> split_list(const std::string& value);

}  // namespace mobsrv::io
