#include "io/args.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

namespace mobsrv::io {

Args::Args(int argc, const char* const* argv) {
  MOBSRV_CHECK(argc >= 1);
  program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positionals_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      flags_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[body] = argv[++i];
    } else {
      flags_[body] = "true";
    }
  }
}

std::vector<std::string> Args::flag_names() const {
  std::vector<std::string> names;
  names.reserve(flags_.size());
  for (const auto& entry : flags_) names.push_back(entry.first);
  return names;  // flags_ is an ordered map, so this is already sorted
}

std::optional<std::string> Args::get(const std::string& name) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return std::nullopt;
  return it->second;
}

std::string Args::get_string(const std::string& name, const std::string& fallback) const {
  return get(name).value_or(fallback);
}

double Args::get_double(const std::string& name, double fallback) const {
  const auto v = get(name);
  if (!v) return fallback;
  try {
    return std::stod(*v);
  } catch (const std::exception&) {
    throw ContractViolation("flag --" + name + " expects a number, got '" + *v + "'");
  }
}

int Args::get_int(const std::string& name, int fallback) const {
  const auto v = get(name);
  if (!v) return fallback;
  try {
    return std::stoi(*v);
  } catch (const std::exception&) {
    throw ContractViolation("flag --" + name + " expects an integer, got '" + *v + "'");
  }
}

std::uint64_t Args::get_uint64(const std::string& name, std::uint64_t fallback) const {
  const auto v = get(name);
  if (!v) return fallback;
  try {
    std::size_t used = 0;
    const unsigned long long parsed = std::stoull(*v, &used);
    if (used != v->size() || v->front() == '-') throw std::invalid_argument(*v);
    return static_cast<std::uint64_t>(parsed);
  } catch (const std::exception&) {
    throw ContractViolation("flag --" + name + " expects an unsigned 64-bit integer, got '" + *v +
                            "'");
  }
}

bool Args::get_bool(const std::string& name, bool fallback) const {
  const auto v = get(name);
  if (!v) return fallback;
  if (*v == "true" || *v == "1" || *v == "yes" || *v == "on") return true;
  if (*v == "false" || *v == "0" || *v == "no" || *v == "off") return false;
  throw ContractViolation("flag --" + name + " expects a boolean, got '" + *v + "'");
}

std::vector<std::string> split_list(const std::string& value) {
  std::vector<std::string> items;
  std::size_t begin = 0;
  while (begin <= value.size()) {
    std::size_t end = value.find(',', begin);
    if (end == std::string::npos) end = value.size();
    std::string item = value.substr(begin, end - begin);
    const auto first = item.find_first_not_of(" \t");
    if (first == std::string::npos) {
      item.clear();
    } else {
      const auto last = item.find_last_not_of(" \t");
      item = item.substr(first, last - first + 1);
    }
    if (!item.empty() && std::find(items.begin(), items.end(), item) == items.end())
      items.push_back(item);
    begin = end + 1;
  }
  return items;
}

}  // namespace mobsrv::io
