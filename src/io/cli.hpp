/// \file cli.hpp
/// The shared command-line exit discipline for every mobsrv binary.
///
/// All tools speak the same contract (docs/CLI.md): exit 0 on success, 1 on
/// a runtime failure, 2 on a bad command line — where "bad command line"
/// covers unknown flags, stray positionals AND malformed flag values
/// (`--trials=abc`), which the io::Args getters surface as
/// ContractViolation. mobsrv_serve pinned that behaviour down first; this
/// header is the one shared implementation so the other binaries cannot
/// drift again (mobsrv_trace shipped a catch-all that turned malformed
/// values into exit 1 before it existed).
#pragma once

#include <functional>
#include <initializer_list>
#include <iosfwd>
#include <string_view>

#include "io/args.hpp"

namespace mobsrv::io {

/// Prints "<tool>: <message>" to stderr, then the usage text when \p usage
/// is non-null, and returns 2 — the one place the usage-error exit code
/// lives.
int usage_error(std::string_view tool, std::string_view message,
                void (*usage)(std::ostream&) = nullptr);

/// Runs \p body and maps escaping exceptions onto the shared exit
/// discipline: ContractViolation (the io::Args getters' malformed-value
/// error, and the conventional type for flag-combination violations) is a
/// usage error — message + usage + exit 2; anything else is a runtime
/// failure — message + exit 1.
int run_cli(std::string_view tool, void (*usage)(std::ostream&),
            const std::function<int()>& body);

/// Throws ContractViolation for any parsed flag whose name is not in
/// \p known. "help" is always accepted; an entry ending in '*' matches by
/// prefix (the `--benchmark_*` passthrough of the bench binaries).
void require_known_flags(const Args& args, std::initializer_list<const char*> known);

/// Throws ContractViolation when the command line carries positional
/// arguments (for tools whose grammar is flags-only).
void require_no_positionals(const Args& args);

}  // namespace mobsrv::io
