/// \file json.hpp
/// Minimal JSON value type, writer and parser.
///
/// Backs every machine-readable surface of the library: the JSONL trace
/// codec, `mobsrv_bench --json` reports and `mobsrv_trace inspect`. Two
/// properties matter more than generality:
///   * doubles round-trip exactly (shortest std::to_chars form on write,
///     std::from_chars on read), so replaying a JSONL trace reproduces
///     costs bit-identically;
///   * 64-bit integers (seeds) are stored as integers, never squeezed
///     through a double.
/// Object member order is preserved so output is stable and diffable.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace mobsrv::io {

/// Thrown on malformed JSON input and on type-mismatched access.
class JsonError : public std::runtime_error {
 public:
  JsonError(const std::string& what, std::size_t offset)
      : std::runtime_error(offset ? what + " (at byte " + std::to_string(offset) + ")" : what),
        offset_(offset) {}

  /// Byte offset into the parsed text (0 when not applicable).
  [[nodiscard]] std::size_t offset() const noexcept { return offset_; }

 private:
  std::size_t offset_;
};

/// A JSON document: null, bool, number (double or exact 64-bit integer),
/// string, array, or object.
class Json {
 public:
  using Array = std::vector<Json>;
  using Member = std::pair<std::string, Json>;
  using Object = std::vector<Member>;

  enum class Type { kNull, kBool, kDouble, kInt, kUint, kString, kArray, kObject };

  Json() noexcept : value_(nullptr) {}
  Json(std::nullptr_t) noexcept : value_(nullptr) {}          // NOLINT(google-explicit-constructor)
  Json(bool b) noexcept : value_(b) {}                        // NOLINT(google-explicit-constructor)
  Json(double v) : value_(v) {}                               // NOLINT(google-explicit-constructor)
  Json(int v) noexcept : value_(static_cast<std::int64_t>(v)) {}  // NOLINT
  Json(long v) noexcept : value_(static_cast<std::int64_t>(v)) {}  // NOLINT
  Json(long long v) noexcept : value_(static_cast<std::int64_t>(v)) {}  // NOLINT
  Json(unsigned v) noexcept : value_(static_cast<std::uint64_t>(v)) {}  // NOLINT
  Json(unsigned long v) noexcept : value_(static_cast<std::uint64_t>(v)) {}  // NOLINT
  Json(unsigned long long v) noexcept : value_(static_cast<std::uint64_t>(v)) {}  // NOLINT
  Json(const char* s) : value_(std::string(s)) {}             // NOLINT(google-explicit-constructor)
  Json(std::string s) noexcept : value_(std::move(s)) {}      // NOLINT(google-explicit-constructor)
  Json(std::string_view s) : value_(std::string(s)) {}        // NOLINT(google-explicit-constructor)
  Json(Array a) noexcept : value_(std::move(a)) {}            // NOLINT(google-explicit-constructor)
  Json(Object o) noexcept : value_(std::move(o)) {}           // NOLINT(google-explicit-constructor)

  [[nodiscard]] static Json array() { return Json(Array{}); }
  [[nodiscard]] static Json object() { return Json(Object{}); }

  [[nodiscard]] Type type() const noexcept { return static_cast<Type>(value_.index()); }
  [[nodiscard]] bool is_null() const noexcept { return type() == Type::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return type() == Type::kBool; }
  [[nodiscard]] bool is_number() const noexcept {
    return type() == Type::kDouble || type() == Type::kInt || type() == Type::kUint;
  }
  [[nodiscard]] bool is_string() const noexcept { return type() == Type::kString; }
  [[nodiscard]] bool is_array() const noexcept { return type() == Type::kArray; }
  [[nodiscard]] bool is_object() const noexcept { return type() == Type::kObject; }

  /// Typed access; throws JsonError on mismatch. as_double accepts any
  /// number; as_uint64/as_int64 require a value exactly representable in
  /// the target type.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] std::int64_t as_int64() const;
  [[nodiscard]] std::uint64_t as_uint64() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;
  [[nodiscard]] Array& as_array();
  [[nodiscard]] Object& as_object();

  /// Object helpers. set() appends (or replaces an existing key); find()
  /// returns nullptr when absent; at() throws JsonError when absent.
  Json& set(std::string key, Json value);
  [[nodiscard]] const Json* find(std::string_view key) const;
  [[nodiscard]] const Json& at(std::string_view key) const;

  /// Array helper.
  Json& push_back(Json value);

  /// Compact serialisation (no whitespace). Doubles use the shortest
  /// round-trip form; non-finite doubles are a contract violation (JSON
  /// cannot represent them).
  [[nodiscard]] std::string dump() const;
  void dump_to(std::string& out) const;

  /// Parses exactly one JSON document spanning the whole input (trailing
  /// whitespace allowed). Throws JsonError with a byte offset.
  [[nodiscard]] static Json parse(std::string_view text);

  [[nodiscard]] friend bool operator==(const Json& a, const Json& b) {
    return a.value_ == b.value_;
  }

 private:
  std::variant<std::nullptr_t, bool, double, std::int64_t, std::uint64_t, std::string, Array,
               Object>
      value_;
};

/// Appends the shortest decimal form of \p v that parses back to exactly
/// the same double ("0.1", "1e+300", "-0.0"). Throws ContractViolation for
/// non-finite values.
void append_double(std::string& out, double v);

}  // namespace mobsrv::io
