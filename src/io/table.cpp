#include "io/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace mobsrv::io {

std::string format_double(double v, int digits) {
  MOBSRV_CHECK(digits >= 1 && digits <= 17);
  if (std::isnan(v)) return "nan";
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", digits, v);
  return buf;
}

Table::Table(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {
  MOBSRV_CHECK_MSG(!columns_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  MOBSRV_CHECK_MSG(cells.size() == columns_.size(), "row width != column count");
  rows_.push_back(std::move(cells));
}

const std::string& Table::at(std::size_t r, std::size_t c) const {
  MOBSRV_CHECK(r < rows_.size() && c < columns_.size());
  return rows_[r][c];
}

std::string Table::to_markdown() const {
  std::vector<std::size_t> width(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) width[c] = columns_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  if (!title_.empty()) os << "**" << title_ << "**\n\n";
  auto emit_row = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << cells[c] << std::string(width[c] - cells[c].size(), ' ') << " |";
    }
    os << '\n';
  };
  emit_row(columns_);
  os << '|';
  for (std::size_t c = 0; c < columns_.size(); ++c) os << std::string(width[c] + 2, '-') << '|';
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

namespace {

std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

std::string Table::to_csv() const {
  std::ostringstream os;
  for (std::size_t c = 0; c < columns_.size(); ++c)
    os << (c ? "," : "") << csv_escape(columns_[c]);
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) os << (c ? "," : "") << csv_escape(row[c]);
    os << '\n';
  }
  return os.str();
}

void Table::print(std::ostream& os) const { os << to_markdown() << '\n'; }

}  // namespace mobsrv::io
