// The paper's Section-5 motivating scenario: helpers in a disaster area
// form an ad-hoc network; a mobile signal station (the server) should
// follow them around. Agents move by random-waypoint / Gauss-Markov
// mobility at the same speed as the station — Theorem 10 says the simple
// follow rule is O(1)-competitive with NO speed advantage.
//
//   $ ./disaster_response [--horizon=2048] [--agents=3] [--d-weight=8]
#include <iostream>

#include "core/mobsrv.hpp"

int main(int argc, char** argv) {
  using namespace mobsrv;
  const io::Args args(argc, argv);
  const auto horizon = static_cast<std::size_t>(args.get_int("horizon", 2048));
  const int agents = args.get_int("agents", 3);
  const double d_weight = args.get_double("d-weight", 8.0);

  std::cout << "Disaster response: " << agents << " helper(s), " << horizon
            << " rounds, moving the station costs D = " << d_weight << " per unit\n\n";

  stats::Rng rng(stats::hash_name("disaster-response"));
  sim::MovingClientInstance mc;
  mc.start = geo::Point{0.0, 0.0};
  mc.server_speed = 1.0;
  mc.agent_speed = 1.0;  // Theorem 10 regime: equal speeds
  mc.move_cost_weight = d_weight;
  for (int a = 0; a < agents; ++a) {
    if (a % 2 == 0) {
      adv::RandomWaypointParams p;
      p.horizon = horizon;
      p.speed = 1.0;
      p.half_width = 25.0;
      mc.agents.push_back(adv::make_random_waypoint(p, mc.start, rng));
    } else {
      adv::GaussMarkovParams p;
      p.horizon = horizon;
      p.speed = 1.0;
      mc.agents.push_back(adv::make_gauss_markov(p, mc.start, rng));
    }
  }
  const sim::Instance instance = sim::to_instance(mc);

  // The follow rule of Theorem 10 is exactly MtC on the converted instance
  // (for several agents it chases their geometric median).
  alg::MoveToCenter follower;
  const sim::RunResult online = sim::run(instance, follower);

  // Baselines: a station that never moves, and one that sprints to the
  // median every round.
  alg::Lazy lazy;
  alg::GreedyCenter greedy;
  const double cost_lazy = sim::run(instance, lazy).total_cost;
  const double cost_greedy = sim::run(instance, greedy).total_cost;

  // Offline benchmark with full knowledge of every helper's path.
  const opt::OfflineSolution offline = opt::solve_best_offline(instance);

  io::Table table("Station strategies (equal speeds, no augmentation)",
                  {"strategy", "total cost", "vs offline"});
  table.row().cell("MtC follower (Thm 10)").cell(online.total_cost, 5)
      .cell(online.total_cost / offline.cost, 3).done();
  table.row().cell("GreedyCenter").cell(cost_greedy, 5)
      .cell(cost_greedy / offline.cost, 3).done();
  table.row().cell("Lazy (never move)").cell(cost_lazy, 5)
      .cell(cost_lazy / offline.cost, 3).done();
  table.row().cell("offline (full knowledge)").cell(offline.cost, 5).cell(1.0, 3).done();
  table.print(std::cout);

  std::cout << "Theorem 10 predicts an O(1) ratio for the follower — the paper's\n"
            << "constants are ≤ 36; the measured value above is typically below 3.\n";
  return 0;
}
