// Fleet dispatch (exploratory, paper Section 6): a city with several demand
// hotspots served by a fleet of k mobile data servers. Each request is
// answered by the nearest server; each server follows the MtC rule on its
// assigned share of the demand (ext::AssignAndChase, a sim::FleetAlgorithm
// driven by the unified fleet Session). Shows how much fleet size buys,
// what the chase is worth compared with parking the fleet, and how evenly
// the movement bill splits across the fleet.
//
//   $ ./fleet_dispatch [--horizon=768] [--clusters=4] [--max-servers=8]
#include <algorithm>
#include <iostream>

#include "core/mobsrv.hpp"

int main(int argc, char** argv) {
  using namespace mobsrv;
  const io::Args args(argc, argv);
  const auto horizon = static_cast<std::size_t>(args.get_int("horizon", 768));
  const int clusters = args.get_int("clusters", 4);
  const int max_servers = args.get_int("max-servers", 8);

  std::cout << "Fleet dispatch: " << clusters << " drifting hotspots, " << horizon
            << " rounds.\nEvery request is served by the nearest server; each server\n"
            << "runs the MtC rule on its assigned requests.\n\n";

  stats::Rng rng(stats::hash_name("fleet-dispatch"));
  ext::MultiHotspotParams wl;
  wl.horizon = horizon;
  wl.clusters = clusters;
  const sim::Instance instance = ext::make_multi_hotspot(wl, rng);

  io::Table table("Cost vs fleet size",
                  {"k", "AssignAndChase", "Static fleet", "savings %", "busiest/avg move"});
  for (int k = 1; k <= max_servers; k *= 2) {
    const auto starts = ext::spread_starts(instance, k, 10.0);
    ext::AssignAndChase chase;
    ext::StaticServers still;
    const ext::MultiRunResult moving = ext::run_multi(instance, starts, chase);
    const double parked = ext::run_multi(instance, starts, still).total_cost;
    // Per-server move accounting: how skewed is the chase across the fleet?
    const double busiest = *std::max_element(moving.per_server_move_cost.begin(),
                                             moving.per_server_move_cost.end());
    const double average = moving.move_cost / static_cast<double>(k);
    table.row()
        .cell(k)
        .cell(moving.total_cost, 5)
        .cell(parked, 5)
        .cell(100.0 * (parked - moving.total_cost) / parked, 3)
        .cell(average > 0.0 ? busiest / average : 1.0, 3)
        .done();
  }
  table.print(std::cout);

  std::cout << "No competitive guarantee is claimed for k > 1 — the paper leaves the\n"
            << "k-server version open (Section 6); this binary is the experimental\n"
            << "substrate for that question.\n";
  return 0;
}
