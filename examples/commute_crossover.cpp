// Crossover study: demand commutes between two sites (day/night). When the
// sites are close relative to what a server can traverse in one period,
// following the demand wins; when they are far apart, parking in the middle
// (Lazy from the midpoint — or MtC, which converges to the same behaviour)
// is better than frantic chasing. This is the design intuition behind
// MtC's min{1, r/D} damping.
//
//   $ ./commute_crossover [--horizon=1536] [--period=96] [--trials=4]
#include <iostream>

#include "core/mobsrv.hpp"

int main(int argc, char** argv) {
  using namespace mobsrv;
  const io::Args args(argc, argv);
  const auto horizon = static_cast<std::size_t>(args.get_int("horizon", 1536));
  const auto period = static_cast<std::size_t>(args.get_int("period", 96));
  const int trials = args.get_int("trials", 4);

  std::cout << "Two-site commute, period " << period << " rounds per site; the server can\n"
            << "cover distance " << period << "·m per period. Crossover expected where the\n"
            << "site distance passes what a chaser can amortise.\n\n";

  par::ThreadPool pool;
  io::Table table("Mean cost by strategy vs site distance",
                  {"site distance", "MtC", "GreedyCenter", "Lazy", "winner"});

  for (const double distance : {8.0, 16.0, 32.0, 64.0, 128.0, 256.0}) {
    core::RatioOptions options;
    options.trials = trials;
    options.speed_factor = 1.5;
    options.oracle = core::OptOracle::kConvexDescent;
    options.seed_key =
        stats::mix_keys({stats::hash_name("commute-x"), static_cast<std::uint64_t>(distance)});
    const auto rows = core::shootout(
        pool, {"MtC", "GreedyCenter", "Lazy"},
        [&](std::size_t, stats::Rng& rng) {
          adv::CommuteParams wl;
          wl.horizon = horizon;
          wl.period = period;
          wl.site_distance = distance;
          wl.move_cost_weight = 4.0;
          return core::PreparedSample{adv::make_commute(wl, rng), 0.0, {}};
        },
        options);

    const auto* winner = &rows[0];
    for (const auto& row : rows)
      if (row.cost.mean() < winner->cost.mean()) winner = &row;
    table.row()
        .cell(distance, 4)
        .cell(rows[0].cost.mean(), 4)
        .cell(rows[1].cost.mean(), 4)
        .cell(rows[2].cost.mean(), 4)
        .cell(winner->name)
        .done();
  }
  table.print(std::cout);

  std::cout << "Expected shape: chasers (MtC/Greedy) win at small distances; beyond the\n"
            << "point where a period cannot amortise the travel, staying central wins —\n"
            << "and MtC's damping makes it degrade gracefully rather than thrash.\n";
  return 0;
}
