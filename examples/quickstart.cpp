// Quickstart: build an instance, run Move-to-Center, compare with the
// offline optimum. Start here.
//
//   $ ./quickstart [--horizon=512] [--delta=0.5] [--seed=1]
#include <iostream>

#include "core/mobsrv.hpp"

int main(int argc, char** argv) {
  using namespace mobsrv;
  const io::Args args(argc, argv);
  const auto horizon = static_cast<std::size_t>(args.get_int("horizon", 512));
  const double delta = args.get_double("delta", 0.5);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  // 1. A workload: a demand hotspot drifting through the plane, a handful
  //    of requests per round (the edge-computing scenario from the paper's
  //    introduction).
  adv::DriftingHotspotParams wl;
  wl.horizon = horizon;
  wl.dim = 2;
  wl.move_cost_weight = 4.0;  // D: moving data is 4x as expensive as serving
  wl.max_step = 1.0;          // m: the offline benchmark's speed limit
  stats::Rng rng(seed);
  const sim::Instance instance = adv::make_drifting_hotspot(wl, rng);

  // 2. The paper's algorithm, with (1+delta) resource augmentation.
  alg::MoveToCenter mtc;
  sim::RunOptions run_options;
  run_options.speed_factor = 1.0 + delta;
  const sim::RunResult online = sim::run(instance, mtc, run_options);

  // 3. An offline benchmark with full knowledge of the request sequence
  //    (subgradient shaping + coordinate-descent polish).
  const opt::OfflineSolution offline = opt::solve_best_offline(instance);

  std::cout << "Mobile Server Problem quickstart\n"
            << "  horizon T          : " << instance.horizon() << "\n"
            << "  requests (total)   : " << instance.total_requests() << "\n"
            << "  D, m, delta        : " << instance.params().move_cost_weight << ", "
            << instance.params().max_step << ", " << delta << "\n\n"
            << "  MtC online cost    : " << online.total_cost << "  (move "
            << online.move_cost << " + service " << online.service_cost << ")\n"
            << "  offline (feasible) : " << offline.cost << "\n"
            << "  measured ratio     : " << online.total_cost / offline.cost << "\n";
  return 0;
}
