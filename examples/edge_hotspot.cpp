// Edge-computing scenario from the paper's introduction: a data page serves
// a crowd of mobile users whose demand hotspot drifts through the city.
// Compares every strategy in the library on the same workload and shows the
// per-phase behaviour of MtC through its trace.
//
//   $ ./edge_hotspot [--horizon=1024] [--delta=0.5] [--d-weight=4] [--trials=5]
#include <iostream>

#include "core/mobsrv.hpp"

int main(int argc, char** argv) {
  using namespace mobsrv;
  const io::Args args(argc, argv);
  const auto horizon = static_cast<std::size_t>(args.get_int("horizon", 1024));
  const double delta = args.get_double("delta", 0.5);
  const double d_weight = args.get_double("d-weight", 4.0);
  const int trials = args.get_int("trials", 5);

  std::cout << "Edge hotspot: " << horizon << " rounds, D = " << d_weight
            << ", online speed (1+" << delta << ")·m\n\n";

  // Head-to-head on shared instances, scored against the best feasible
  // offline trajectory the convex solver finds.
  par::ThreadPool pool;
  core::RatioOptions options;
  options.trials = trials;
  options.speed_factor = 1.0 + delta;
  options.oracle = core::OptOracle::kConvexDescent;
  options.seed_key = stats::hash_name("edge-hotspot-example");
  const auto rows = core::shootout(
      pool, alg::algorithm_names(),
      [&](std::size_t, stats::Rng& rng) {
        adv::DriftingHotspotParams wl;
        wl.horizon = horizon;
        wl.move_cost_weight = d_weight;
        wl.drift_speed = 0.6;
        wl.r_min = 1;
        wl.r_max = 6;
        return core::PreparedSample{adv::make_drifting_hotspot(wl, rng), 0.0, {}};
      },
      options);

  io::Table table("Strategy comparison (" + std::to_string(trials) + " shared instances)",
                  {"algorithm", "mean cost", "ratio vs offline", "wins"});
  for (const auto& row : rows)
    table.row()
        .cell(row.name)
        .cell(row.cost.mean(), 5)
        .cell(row.ratio.mean(), 3)
        .cell(row.wins)
        .done();
  table.print(std::cout);

  // A single traced run: how far does MtC trail the hotspot?
  stats::Rng rng(stats::hash_name("edge-hotspot-trace"));
  adv::DriftingHotspotParams wl;
  wl.horizon = horizon;
  wl.move_cost_weight = d_weight;
  const sim::Instance instance = adv::make_drifting_hotspot(wl, rng);
  alg::MoveToCenter mtc;
  sim::RunOptions run_options;
  run_options.speed_factor = 1.0 + delta;
  run_options.record_trace = true;
  const sim::RunResult run = sim::run(instance, mtc, run_options);

  stats::Summary lag;
  for (const auto& step : run.trace)
    lag.add(sim::service_cost(step.after, instance.step(step.t)) /
            static_cast<double>(std::max<std::size_t>(1, instance.step(step.t).size())));
  std::cout << "MtC trace: moved " << io::format_double(run.move_cost / d_weight, 4)
            << " distance total; mean per-request service distance "
            << io::format_double(lag.mean(), 3) << " (max "
            << io::format_double(lag.max(), 3) << ")\n";
  return 0;
}
