// Why resource augmentation is necessary: runs the Theorem-1 adversary
// against MtC with and without the (1+δ) speed advantage. Without it the
// competitive ratio grows like √T — with it, the ratio freezes.
//
//   $ ./adversarial_demo [--delta=0.5] [--trials=4]
#include <iostream>

#include "core/mobsrv.hpp"

int main(int argc, char** argv) {
  using namespace mobsrv;
  const io::Args args(argc, argv);
  const double delta = args.get_double("delta", 0.5);
  const int trials = args.get_int("trials", 4);

  std::cout << "The Theorem-1 adversary: phase 1 pins requests to the start while its\n"
            << "own server walks away; phase 2 rides the requests on that server.\n"
            << "An equal-speed chaser stays √T·m behind forever.\n\n";

  par::ThreadPool pool;
  auto measure = [&](std::size_t horizon, double speed_factor) {
    core::RatioOptions opt;
    opt.trials = trials;
    opt.speed_factor = speed_factor;
    opt.oracle = core::OptOracle::kAdversaryCost;
    opt.seed_key = stats::mix_keys({stats::hash_name("adv-demo"), horizon});
    const core::RatioEstimate est = core::estimate_ratio(
        pool, [](std::uint64_t) { return alg::make_algorithm("MtC"); },
        [horizon](std::size_t, stats::Rng& rng) {
          adv::Theorem1Params p;
          p.horizon = horizon;
          adv::AdversarialInstance a = adv::make_theorem1(p, rng);
          return core::PreparedSample{std::move(a.instance), a.adversary_cost, {}};
        },
        opt);
    return est.ratio.mean();
  };

  io::Table table("Competitive ratio of MtC on the Theorem-1 adversary",
                  {"T", "no augmentation", "with (1+" + io::format_double(delta, 3) + ")m"});
  for (const std::size_t horizon : {256u, 1024u, 4096u, 16384u}) {
    table.row()
        .cell(horizon)
        .cell(measure(horizon, 1.0), 3)
        .cell(measure(horizon, 1.0 + delta), 3)
        .done();
  }
  table.print(std::cout);

  std::cout << "Left column: Θ(√T) growth (Theorem 1 says this is unavoidable for\n"
            << "EVERY online algorithm). Right column: bounded, as Theorem 4\n"
            << "guarantees for MtC at any fixed δ > 0.\n";
  return 0;
}
