// Record a workload to disk, read it back, replay it against two
// algorithms, and compare their costs — the full life of a trace file.
//
//   $ ./trace_replay [--scenario=drifting-hotspot] [--seed=7] [--out=demo.jsonl]
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "core/mobsrv.hpp"

int main(int argc, char** argv) {
  using namespace mobsrv;
  const io::Args args(argc, argv);
  const std::string scenario = args.get_string("scenario", "drifting-hotspot");
  const auto seed = args.get_uint64("seed", 7);
  const std::string out = args.get_string("out", "trace_replay_demo.jsonl");

  // 1. Build a corpus scenario and record the paper's algorithm on it.
  //    Everything — instance, parameters, the run's exact costs — lands in
  //    one serializable TraceFile.
  trace::TraceFile recorded = trace::make_corpus_trace(scenario, seed, 0.25);
  recorded.runs.push_back(trace::record_run(recorded.instance, "MtC", seed, 1.5));
  trace::write_trace(out, recorded);
  std::cout << "recorded '" << scenario << "' (T = " << recorded.instance.horizon() << ") with "
            << recorded.runs.size() << " run -> " << out << "\n";

  // 2. Read it back (any codec sniffs) and verify the recorded run replays
  //    bit-identically: same engine + same instance = exactly equal costs.
  const trace::TraceFile loaded = trace::read_trace(out);
  const trace::ReplayReport verify = trace::replay(loaded);
  for (const trace::ReplayOutcome& o : verify.outcomes)
    std::cout << "replay " << o.algorithm << ": recorded " << o.recorded_total << ", replayed "
              << o.replayed_total << " -> " << (o.match ? "bit-identical" : "MISMATCH!") << "\n";

  // 3. Re-run the stored workload with a different algorithm and compare —
  //    traces decouple workloads from the strategies that run on them.
  const sim::RunResult mtc = trace::run_on_trace(loaded, "MtC", seed, 1.5);
  const sim::RunResult lazy = trace::run_on_trace(loaded, "Lazy", seed, 1.5);
  std::cout << "\non the stored workload (speed factor 1.5):\n"
            << "  MtC  total cost : " << mtc.total_cost << " (move " << mtc.move_cost
            << " + service " << mtc.service_cost << ")\n"
            << "  Lazy total cost : " << lazy.total_cost << " (move " << lazy.move_cost
            << " + service " << lazy.service_cost << ")\n"
            << "  winner          : " << (mtc.total_cost < lazy.total_cost ? "MtC" : "Lazy")
            << " by a factor " << std::max(mtc.total_cost, lazy.total_cost) /
                                      std::min(mtc.total_cost, lazy.total_cost)
            << "\n";

  std::remove(out.c_str());
  return verify.all_match() ? 0 : 1;
}
