// Unit tests for trace/corpus: every named scenario materialises, writes,
// reads back identically and deterministically; the demand/waypoint
// importers accept well-formed tables and reject malformed ones loudly.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "trace/corpus.hpp"
#include "trace/replay.hpp"

namespace mobsrv::trace {
namespace {

namespace fs = std::filesystem;

class TraceCorpusTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("mobsrv_corpus_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path write_text(const std::string& name, const std::string& text) {
    const fs::path path = dir_ / name;
    std::ofstream out(path);
    out << text;
    return path;
  }

  fs::path dir_;
};

TEST_F(TraceCorpusTest, EveryScenarioRoundTripsAndReplays) {
  for (const CorpusScenario& scenario : corpus_scenarios()) {
    // Tiny scale keeps the full sweep fast.
    TraceFile file = make_corpus_trace(scenario.name, 3, 0.05);
    EXPECT_EQ(file.meta.name, scenario.name);
    EXPECT_GE(file.instance.horizon(), 16u);
    file.runs.push_back(record_run(file.instance, "MtC", 3, 1.5));
    for (const Codec codec : {Codec::kJsonl, Codec::kBinary}) {
      const TraceFile back = decode_trace(encode_trace(file, codec), scenario.name);
      EXPECT_TRUE(identical(file, back)) << scenario.name << " via " << to_string(codec);
      EXPECT_TRUE(replay(back).all_match()) << scenario.name << " via " << to_string(codec);
    }
  }
}

TEST_F(TraceCorpusTest, GenerationIsDeterministicInSeedAndScale) {
  const std::string bytes_a = encode_trace(make_corpus_trace("bursts", 9, 0.1), Codec::kBinary);
  const std::string bytes_b = encode_trace(make_corpus_trace("bursts", 9, 0.1), Codec::kBinary);
  const std::string bytes_c = encode_trace(make_corpus_trace("bursts", 10, 0.1), Codec::kBinary);
  EXPECT_EQ(bytes_a, bytes_b);
  EXPECT_NE(bytes_a, bytes_c);
}

TEST_F(TraceCorpusTest, MovingClientScenariosCarryTheirPaths) {
  const TraceFile file = make_corpus_trace("random-waypoint", 1, 0.05);
  ASSERT_TRUE(file.moving_client.has_value());
  EXPECT_EQ(file.moving_client->agents.size(), 1u);
  EXPECT_EQ(file.moving_client->horizon(), file.instance.horizon());
  // One request per agent per round.
  EXPECT_EQ(file.instance.total_requests(), file.instance.horizon());
}

TEST_F(TraceCorpusTest, LowerBoundScenariosCarryTheAdversary) {
  const TraceFile file = make_corpus_trace("theorem1", 2, 0.05);
  ASSERT_TRUE(file.adversary.has_value());
  EXPECT_GT(file.adversary->cost, 0.0);
  EXPECT_EQ(file.adversary->positions.size(), file.instance.horizon() + 1);
}

TEST_F(TraceCorpusTest, UnknownScenarioThrows) {
  EXPECT_THROW((void)make_corpus_trace("no-such-scenario", 0), ContractViolation);
  EXPECT_FALSE(is_corpus_scenario("no-such-scenario"));
  EXPECT_TRUE(is_corpus_scenario("commute"));
}

TEST_F(TraceCorpusTest, WriteCorpusProducesOneFilePerScenario) {
  RecorderOptions options;
  options.dir = dir_ / "corpus";
  options.codec = Codec::kBinary;
  Recorder recorder(options);
  const std::vector<fs::path> paths = write_corpus(recorder, 5, 0.05);
  EXPECT_EQ(paths.size(), corpus_scenarios().size());
  for (const fs::path& path : paths) {
    EXPECT_TRUE(fs::is_regular_file(path)) << path;
    EXPECT_EQ(path.extension(), ".mtb");
  }
}

// ---------------------------------------------------------------------------
// Importers.
// ---------------------------------------------------------------------------

TEST_F(TraceCorpusTest, DemandImportBuildsBatchesWithGaps) {
  const fs::path csv = write_text("demand.csv",
                                  "# t x y\n"
                                  "0, 1.0, 2.0\n"
                                  "0, 1.5, 2.5\n"
                                  "3, -1.0, 0.25\n");
  DemandImportOptions options;
  options.move_cost_weight = 2.0;
  const TraceFile file = import_demand(csv, options);
  EXPECT_EQ(file.instance.dim(), 2);
  ASSERT_EQ(file.instance.horizon(), 4u);  // rounds 0..3
  EXPECT_EQ(file.instance.step(0).size(), 2u);
  EXPECT_TRUE(file.instance.step(1).empty());
  EXPECT_TRUE(file.instance.step(2).empty());
  EXPECT_EQ(file.instance.step(3).size(), 1u);
  // Default start: the first request.
  EXPECT_EQ(file.instance.start(), (sim::Point{1.0, 2.0}));
  EXPECT_EQ(file.instance.params().move_cost_weight, 2.0);
  // Imported traces round-trip like any other.
  EXPECT_TRUE(identical(file, decode_trace(encode_trace(file, Codec::kJsonl), "mem")));
}

TEST_F(TraceCorpusTest, DemandImportRejectsMalformedInput) {
  EXPECT_THROW((void)import_demand(dir_ / "missing.csv"), TraceError);
  EXPECT_THROW((void)import_demand(write_text("empty.csv", "# only comments\n")), TraceError);
  EXPECT_THROW((void)import_demand(write_text("badnum.csv", "0 1.0\n1 abc\n")), TraceError);
  EXPECT_THROW((void)import_demand(write_text("order.csv", "5 1.0\n2 1.0\n")), TraceError);
  EXPECT_THROW((void)import_demand(write_text("dims.csv", "0 1.0 2.0\n1 1.0\n")), TraceError);
  EXPECT_THROW((void)import_demand(write_text("negt.csv", "-1 1.0\n")), TraceError);
  try {
    (void)import_demand(write_text("lineinfo.csv", "0 1.0\n1 oops\n"));
    FAIL() << "expected TraceError";
  } catch (const TraceError& error) {
    // Errors carry path:line.
    EXPECT_NE(std::string(error.what()).find("lineinfo.csv:2"), std::string::npos);
  }
}

TEST_F(TraceCorpusTest, WaypointImportProducesFeasibleMovingClient) {
  // Two agents in 2-D; agent 1's waypoints are far apart, so the clamped
  // walk must keep every step within the agent speed.
  const fs::path csv = write_text("waypoints.csv",
                                  "# agent t x y\n"
                                  "0 0 0 0\n"
                                  "0 8 4 0\n"
                                  "1 0 2 2\n"
                                  "1 4 -20 14\n"
                                  "1 8 2 2\n");
  WaypointImportOptions options;
  options.agent_speed = 1.25;
  options.server_speed = 1.0;
  options.move_cost_weight = 3.0;
  const TraceFile file = import_waypoints(csv, options);
  ASSERT_TRUE(file.moving_client.has_value());
  EXPECT_EQ(file.moving_client->agents.size(), 2u);
  EXPECT_EQ(file.instance.horizon(), 8u);
  EXPECT_EQ(file.instance.dim(), 2);
  // validate() enforces the speed limit; must not throw.
  EXPECT_NO_THROW(file.moving_client->validate());
  // Start is the centroid of the agents' first waypoints: ((0,0)+(2,2))/2.
  EXPECT_EQ(file.moving_client->start, (sim::Point{1.0, 1.0}));
  EXPECT_TRUE(identical(file, decode_trace(encode_trace(file, Codec::kBinary), "mem")));
}

TEST_F(TraceCorpusTest, WaypointImportRejectsMalformedInput) {
  EXPECT_THROW((void)import_waypoints(write_text("one.csv", "0 0 1.0\n")), TraceError);
  EXPECT_THROW((void)import_waypoints(write_text("dup.csv", "0 1 1.0\n0 1 2.0\n")), TraceError);
  EXPECT_THROW((void)import_waypoints(write_text("dims.csv", "0 1 1.0 2.0\n0 2 1.0\n")),
               TraceError);
}

}  // namespace
}  // namespace mobsrv::trace
