// Unit tests for algorithms/baselines.hpp and the registry: Lazy,
// GreedyCenter, Move-To-Min, Coin-Flip — the page-migration-derived
// comparators for the shootout experiment (E12).
#include "algorithms/baselines.hpp"

#include <gtest/gtest.h>

#include "algorithms/registry.hpp"
#include "sim/engine.hpp"
#include "stats/rng.hpp"

namespace mobsrv::alg {
namespace {

using geo::Point;

sim::ModelParams make_params(double d_weight, double m) {
  sim::ModelParams p;
  p.move_cost_weight = d_weight;
  p.max_step = m;
  return p;
}

sim::Instance random_instance(std::uint64_t seed, std::size_t horizon = 50, int dim = 2,
                              double d_weight = 3.0) {
  stats::Rng rng(seed);
  std::vector<sim::RequestBatch> steps(horizon);
  for (auto& s : steps) {
    const int r = static_cast<int>(rng.uniform_int(1, 4));
    for (int i = 0; i < r; ++i) {
      Point v(dim);
      for (int d = 0; d < dim; ++d) v[d] = rng.uniform(-10.0, 10.0);
      s.requests.push_back(v);
    }
  }
  return sim::Instance(Point::zero(dim), make_params(d_weight, 1.0), std::move(steps));
}

TEST(Lazy, NeverMoves) {
  const sim::Instance inst = random_instance(1);
  Lazy lazy;
  const sim::RunResult res = sim::run(inst, lazy);
  EXPECT_EQ(res.move_cost, 0.0);
  EXPECT_EQ(res.final_position, inst.start());
}

TEST(GreedyCenter, MovesFullSpeedTowardSingleRequest) {
  GreedyCenter greedy;
  const auto params = make_params(4.0, 1.0);
  sim::RequestBatch batch;
  batch.requests = {Point{10.0, 0.0}};
  sim::StepView view;
  view.batch = batch;
  view.server = Point{0.0, 0.0};
  view.speed_limit = 1.0;
  view.params = &params;
  const Point next = greedy.decide(view);
  EXPECT_NEAR(next[0], 1.0, 1e-12);  // full limit, unlike MtC's d/D damping
}

TEST(GreedyCenter, StopsAtCenter) {
  GreedyCenter greedy;
  const auto params = make_params(1.0, 5.0);
  sim::RequestBatch batch;
  batch.requests = {Point{2.0, 0.0}};
  sim::StepView view;
  view.batch = batch;
  view.server = Point{0.0, 0.0};
  view.speed_limit = 5.0;
  view.params = &params;
  EXPECT_EQ(greedy.decide(view), (Point{2.0, 0.0}));
}

TEST(GreedyCenter, EmptyBatchStays) {
  GreedyCenter greedy;
  const auto params = make_params(1.0, 1.0);
  sim::RequestBatch empty;
  sim::StepView view;
  view.batch = empty;
  view.server = Point{3.0, 3.0};
  view.speed_limit = 1.0;
  view.params = &params;
  EXPECT_EQ(greedy.decide(view), (Point{3.0, 3.0}));
}

TEST(MoveToMin, RetargetsEveryCeilDSteps) {
  // D = 2 → window 2: after two identical batches the target is their
  // median; the algorithm then steers toward it at full speed.
  MoveToMin mtm;
  const auto params = make_params(2.0, 1.0);
  mtm.reset(Point{0.0}, params);
  sim::RequestBatch batch;
  batch.requests = {Point{10.0}};
  sim::StepView view;
  view.batch = batch;
  view.server = Point{0.0};
  view.speed_limit = 1.0;
  view.params = &params;
  // Step 1: window not yet full — target still the start; stays.
  EXPECT_EQ(mtm.decide(view), Point{0.0});
  // Step 2: retarget to median(10,10) = 10; move full speed.
  const Point second = mtm.decide(view);
  EXPECT_NEAR(second[0], 1.0, 1e-12);
}

TEST(MoveToMin, RunsCleanlyThroughEngine) {
  const sim::Instance inst = random_instance(2);
  MoveToMin mtm;
  EXPECT_NO_THROW((void)sim::run(inst, mtm));
}

TEST(CoinFlip, DeterministicGivenSeed) {
  const sim::Instance inst = random_instance(3);
  CoinFlip a(1234), b(1234);
  const double cost_a = sim::run(inst, a).total_cost;
  const double cost_b = sim::run(inst, b).total_cost;
  EXPECT_EQ(cost_a, cost_b);
}

TEST(CoinFlip, ResetRestoresDeterminism) {
  const sim::Instance inst = random_instance(4);
  CoinFlip alg(77);
  const double first = sim::run(inst, alg).total_cost;
  const double second = sim::run(inst, alg).total_cost;  // run() calls reset()
  EXPECT_EQ(first, second);
}

TEST(CoinFlip, DifferentSeedsUsuallyDiffer) {
  const sim::Instance inst = random_instance(5, 100);
  CoinFlip a(1), b(2);
  EXPECT_NE(sim::run(inst, a).total_cost, sim::run(inst, b).total_cost);
}

TEST(AllBaselines, RespectSpeedLimitOnAdversarialInputs) {
  const sim::Instance inst = random_instance(6, 80, 2, 5.0);
  for (const auto& name : algorithm_names()) {
    const sim::AlgorithmPtr algo = make_algorithm(name, 9);
    sim::RunOptions opt;
    opt.policy = sim::SpeedLimitPolicy::kThrow;
    EXPECT_NO_THROW((void)sim::run(inst, *algo)) << name;
  }
}

TEST(Registry, KnowsAllNames) {
  for (const auto& name : algorithm_names()) {
    const sim::AlgorithmPtr algo = make_algorithm(name, 0);
    ASSERT_NE(algo, nullptr);
    EXPECT_EQ(algo->name(), name);
  }
}

TEST(Registry, UnknownNameThrows) {
  EXPECT_THROW((void)make_algorithm("NoSuchAlgorithm"), ContractViolation);
}

TEST(Registry, ContainsThePaperAlgorithm) {
  const auto names = algorithm_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "MtC"), names.end());
  EXPECT_EQ(names.size(), 5u);
}

// On a stationary workload, Lazy at the hotspot beats GreedyCenter (which
// keeps paying movement for noise); on a drifting workload the order flips.
// This is the crossover logic of experiment E12 in miniature.
TEST(BaselineOrdering, StationaryFavorsLazyDriftFavorsChasers) {
  stats::Rng rng(11);
  // Stationary cloud around the start.
  std::vector<sim::RequestBatch> stationary(150);
  for (auto& s : stationary)
    s.requests = {Point{rng.normal(0.0, 0.3), rng.normal(0.0, 0.3)}};
  const sim::Instance inst_stationary(Point{0.0, 0.0}, make_params(8.0, 1.0),
                                      std::move(stationary));
  Lazy lazy;
  GreedyCenter greedy;
  EXPECT_LT(sim::run(inst_stationary, lazy).total_cost,
            sim::run(inst_stationary, greedy).total_cost);

  // Linearly drifting hotspot: chasing wins, staying loses.
  std::vector<sim::RequestBatch> drifting(150);
  for (std::size_t t = 0; t < drifting.size(); ++t)
    drifting[t].requests = {Point{0.5 * static_cast<double>(t + 1), 0.0}};
  const sim::Instance inst_drifting(Point{0.0, 0.0}, make_params(2.0, 1.0), std::move(drifting));
  Lazy lazy2;
  GreedyCenter greedy2;
  EXPECT_GT(sim::run(inst_drifting, lazy2).total_cost,
            sim::run(inst_drifting, greedy2).total_cost);
}

}  // namespace
}  // namespace mobsrv::alg
