// Integration tests: small-scale versions of the E1–E8 experiments. Each
// checks the *shape* a theorem predicts (growth with T, growth with 1/δ,
// boundedness, constants) end-to-end through generators, engine, oracles
// and the ratio estimator. The bench binaries run the full-scale versions.
#include <gtest/gtest.h>

#include "adversary/lower_bounds.hpp"
#include "adversary/mobility.hpp"
#include "adversary/moving_client_lb.hpp"
#include "adversary/workloads.hpp"
#include "algorithms/move_to_center.hpp"
#include "algorithms/registry.hpp"
#include "core/ratio.hpp"

namespace mobsrv::core {
namespace {

AlgorithmFn mtc() {
  return [](std::uint64_t) { return alg::make_algorithm("MtC"); };
}

double theorem1_ratio(par::ThreadPool& pool, std::size_t horizon, double speed_factor) {
  RatioOptions opt;
  opt.trials = 4;
  opt.speed_factor = speed_factor;
  opt.oracle = OptOracle::kAdversaryCost;
  opt.seed_key = stats::mix_keys({stats::hash_name("it-thm1"), horizon});
  const RatioEstimate est = estimate_ratio(
      pool, mtc(),
      [horizon](std::size_t, stats::Rng& rng) {
        adv::Theorem1Params p;
        p.horizon = horizon;
        adv::AdversarialInstance a = adv::make_theorem1(p, rng);
        return PreparedSample{std::move(a.instance), a.adversary_cost, {}};
      },
      opt);
  return est.ratio.mean();
}

// Theorem 1: without augmentation the ratio grows ~√T; quadrupling T
// should roughly double it. (We assert a generous 1.5x to stay robust.)
TEST(TheoremShapes, T1_RatioGrowsWithHorizonWithoutAugmentation) {
  par::ThreadPool pool(2);
  const double small = theorem1_ratio(pool, 256, 1.0);
  const double large = theorem1_ratio(pool, 4096, 1.0);
  EXPECT_GT(small, 1.0);
  EXPECT_GT(large, small * 1.5) << "expected √T-style growth";
}

// Theorem 4 (flat in T): with augmentation the same sequence yields a
// ratio that does NOT keep growing.
TEST(TheoremShapes, T4_AugmentationBoundsTheRatioInT) {
  par::ThreadPool pool(2);
  const double small = theorem1_ratio(pool, 256, 1.5);  // δ = 0.5
  const double large = theorem1_ratio(pool, 4096, 1.5);
  EXPECT_LT(large, small * 1.3 + 1.0) << "ratio must not grow with T under augmentation";
}

double theorem2_ratio(par::ThreadPool& pool, double delta, std::size_t r_min, std::size_t r_max) {
  RatioOptions opt;
  opt.trials = 4;
  opt.speed_factor = 1.0 + delta;
  opt.oracle = OptOracle::kAdversaryCost;
  opt.seed_key = stats::mix_keys(
      {stats::hash_name("it-thm2"), static_cast<std::uint64_t>(delta * 1000), r_min, r_max});
  const RatioEstimate est = estimate_ratio(
      pool, mtc(),
      [=](std::size_t, stats::Rng& rng) {
        adv::Theorem2Params p;
        p.horizon = 2048;
        p.delta = delta;
        p.r_min = r_min;
        p.r_max = r_max;
        adv::AdversarialInstance a = adv::make_theorem2(p, rng);
        return PreparedSample{std::move(a.instance), a.adversary_cost, {}};
      },
      opt);
  return est.ratio.mean();
}

// Theorem 2: the lower-bound sequence forces a ratio growing like 1/δ...
TEST(TheoremShapes, T2_SmallerDeltaForcesLargerRatio) {
  par::ThreadPool pool(2);
  const double at_1 = theorem2_ratio(pool, 1.0, 1, 1);
  const double at_quarter = theorem2_ratio(pool, 0.25, 1, 1);
  EXPECT_GT(at_quarter, at_1 * 1.5);
}

// ... and like Rmax/Rmin.
TEST(TheoremShapes, T2_RequestImbalanceForcesLargerRatio) {
  par::ThreadPool pool(2);
  const double balanced = theorem2_ratio(pool, 0.5, 2, 2);
  const double imbalanced = theorem2_ratio(pool, 0.5, 2, 16);
  EXPECT_GT(imbalanced, balanced * 1.5);
}

double theorem3_ratio(par::ThreadPool& pool, std::size_t r) {
  RatioOptions opt;
  opt.trials = 6;
  opt.speed_factor = 1.5;  // augmentation does not help in the Answer-First LB
  opt.oracle = OptOracle::kAdversaryCost;
  opt.seed_key = stats::mix_keys({stats::hash_name("it-thm3"), r});
  const RatioEstimate est = estimate_ratio(
      pool, mtc(),
      [r](std::size_t, stats::Rng& rng) {
        adv::Theorem3Params p;
        p.horizon = 512;
        p.requests_per_step = r;
        adv::AdversarialInstance a = adv::make_theorem3(p, rng);
        return PreparedSample{std::move(a.instance), a.adversary_cost, {}};
      },
      opt);
  return est.ratio.mean();
}

// Theorem 3: in the Answer-First variant the ratio scales with r even under
// augmentation.
TEST(TheoremShapes, T3_AnswerFirstRatioScalesWithBatchSize) {
  par::ThreadPool pool(2);
  const double r4 = theorem3_ratio(pool, 4);
  const double r32 = theorem3_ratio(pool, 32);
  EXPECT_GT(r32, r4 * 3.0);  // linear in r predicts 8x; allow 3x slack
}

// Theorem 8: moving client with a faster agent and no augmentation —
// ratio grows with T.
TEST(TheoremShapes, T8_FasterAgentUnboundedRatio) {
  par::ThreadPool pool(2);
  auto ratio_at = [&](std::size_t horizon) {
    RatioOptions opt;
    opt.trials = 4;
    opt.oracle = OptOracle::kAdversaryCost;
    opt.seed_key = stats::mix_keys({stats::hash_name("it-thm8"), horizon});
    const RatioEstimate est = estimate_ratio(
        pool, mtc(),
        [horizon](std::size_t, stats::Rng& rng) {
          adv::Theorem8Params p;
          p.horizon = horizon;
          p.epsilon = 1.0;
          adv::MovingClientAdversarial a = adv::make_theorem8(p, rng);
          return PreparedSample{sim::to_instance(a.mc), a.adversary_cost, {}};
        },
        opt);
    return est.ratio.mean();
  };
  const double small = ratio_at(256);
  const double large = ratio_at(4096);
  EXPECT_GT(large, small * 1.5);
}

// Theorem 10: equal speeds — MtC is O(1)-competitive WITHOUT augmentation.
// The paper's constants are ≤ 36; empirically the ratio is tiny. We assert
// a conservative bound and boundedness in T.
TEST(TheoremShapes, T10_EqualSpeedConstantRatio) {
  par::ThreadPool pool(2);
  auto ratio_at = [&](std::size_t horizon) {
    RatioOptions opt;
    opt.trials = 4;
    opt.oracle = OptOracle::kGridDp1D;
    opt.seed_key = stats::mix_keys({stats::hash_name("it-thm10"), horizon});
    const RatioEstimate est = estimate_ratio(
        pool, mtc(),
        [horizon](std::size_t, stats::Rng& rng) {
          sim::MovingClientInstance mc;
          mc.start = geo::Point{0.0};
          mc.server_speed = 1.0;
          mc.agent_speed = 1.0;
          mc.move_cost_weight = 4.0;
          adv::RandomWaypointParams p;
          p.horizon = horizon;
          p.dim = 1;
          p.speed = 1.0;
          p.half_width = 30.0;
          mc.agents.push_back(adv::make_random_waypoint(p, mc.start, rng));
          return PreparedSample{sim::to_instance(mc), 0.0, {}};
        },
        opt);
    return est.ratio.mean();
  };
  const double small = ratio_at(256);
  const double large = ratio_at(1024);
  EXPECT_LT(small, 36.0);  // the paper's constant, very loose in practice
  EXPECT_LT(large, 36.0);
  EXPECT_LT(large, small * 1.5 + 1.0);  // flat in T
}

// Corollary 9 / Theorem 4 applied to the moving client: with augmentation,
// even the Theorem-8 adversary cannot force growth.
TEST(TheoremShapes, C9_AugmentationTamesTheMovingClientAdversary) {
  par::ThreadPool pool(2);
  auto ratio_at = [&](std::size_t horizon) {
    RatioOptions opt;
    opt.trials = 4;
    opt.speed_factor = 2.0;  // (1+δ)·m_s with δ=1: server speed 2 = agent speed
    opt.oracle = OptOracle::kAdversaryCost;
    opt.seed_key = stats::mix_keys({stats::hash_name("it-c9"), horizon});
    const RatioEstimate est = estimate_ratio(
        pool, mtc(),
        [horizon](std::size_t, stats::Rng& rng) {
          adv::Theorem8Params p;
          p.horizon = horizon;
          p.epsilon = 1.0;  // agent speed 2·m_s
          adv::MovingClientAdversarial a = adv::make_theorem8(p, rng);
          return PreparedSample{sim::to_instance(a.mc), a.adversary_cost, {}};
        },
        opt);
    return est.ratio.mean();
  };
  const double small = ratio_at(256);
  const double large = ratio_at(4096);
  EXPECT_LT(large, small * 1.3 + 1.0);
}

// Answer-First MtC (Theorem 7): on the same request sequence, switching to
// Answer-First costs at most a factor ~2·max(1, r/D) more (the proof's
// relation), and stays bounded.
TEST(TheoremShapes, T7_AnswerFirstCostRelation) {
  stats::Rng rng(stats::hash_name("it-thm7"));
  adv::DriftingHotspotParams p;
  p.horizon = 300;
  p.dim = 2;
  p.move_cost_weight = 2.0;
  p.r_min = 4;
  p.r_max = 4;  // fixed r = 4 > D = 2
  const sim::Instance move_first = adv::make_drifting_hotspot(p, rng);
  const sim::Instance answer_first = move_first.with_order(sim::ServiceOrder::kServeThenMove);

  alg::MoveToCenter mtc_alg;
  sim::RunOptions run_opt;
  run_opt.speed_factor = 1.5;
  const double cost_mf = sim::run(move_first, mtc_alg, run_opt).total_cost;
  const double cost_af = sim::run(answer_first, mtc_alg, run_opt).total_cost;
  const double r_over_d = 4.0 / 2.0;
  EXPECT_LE(cost_af, 2.0 * r_over_d * cost_mf * 1.2);  // Theorem 7's 2·r/D, 20% slack
  EXPECT_GE(cost_af, cost_mf * 0.5);                   // sanity: same order of magnitude
}

// Cross-check of the two oracles on the same 1-D instances: the convex
// solver must land inside (or near) the DP bracket.
TEST(OracleConsistency, ConvexWithinDpBracket) {
  stats::Rng rng(stats::hash_name("it-oracle"));
  adv::DriftingHotspotParams p;
  p.horizon = 120;
  p.dim = 1;
  const sim::Instance inst = adv::make_drifting_hotspot(p, rng);
  const opt::GridDpResult dp = opt::solve_grid_dp_1d(inst);
  const opt::OfflineSolution cv = opt::solve_convex_descent(inst);
  EXPECT_GE(cv.cost, dp.solution.opt_lower_bound - 1e-9);
  EXPECT_LE(cv.cost, dp.solution.cost * 1.3);
}

}  // namespace
}  // namespace mobsrv::core
