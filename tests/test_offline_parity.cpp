// Bit-identity of the flat-buffer offline stack against the pre-refactor
// oracles.
//
// The `frozen` namespace below is a verbatim copy of the offline solvers as
// they existed BEFORE trajectories moved to sim::TrajectoryStore: AoS
// std::vector<Point> storage, Point-temporary arithmetic in the descent
// loops, by-value service-cost requests in the DP. The refactor's contract
// is that the new dense-row kernels perform the exact same floating-point
// operation sequence, so every solver must reproduce the frozen costs,
// lower bounds and positions EXACTLY (EXPECT_EQ on doubles, no tolerance)
// on an e11-style corpus covering both service orders and d in {1, 2}.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>

#include "adversary/lower_bounds.hpp"
#include "adversary/workloads.hpp"
#include "median/geometric_median.hpp"
#include "median/weiszfeld.hpp"
#include "opt/brute_force.hpp"
#include "opt/convex_descent.hpp"
#include "opt/coordinate_descent.hpp"
#include "opt/grid_dp.hpp"
#include "opt/warm_starts.hpp"
#include "sim/cost.hpp"
#include "stats/rng.hpp"

namespace mobsrv::opt {
namespace frozen {

// ---------------------------------------------------------------------------
// Pre-refactor warm starts (warm_starts.cpp before the flat-buffer rewire).
// ---------------------------------------------------------------------------

using geo::Point;

std::vector<sim::Point> chase_init(const sim::Instance& instance, bool damped) {
  std::vector<Point> x;
  x.reserve(instance.horizon() + 1);
  x.push_back(instance.start());
  const double m = instance.params().max_step;
  const double D = instance.params().move_cost_weight;
  std::vector<Point> reqs;
  for (std::size_t t = 0; t < instance.horizon(); ++t) {
    const sim::BatchView batch = instance.step(t);
    if (batch.empty()) {
      x.push_back(x.back());
      continue;
    }
    batch.copy_to(reqs);
    const Point center = med::closest_center(reqs, x.back());
    double step = m;
    if (damped) {
      const double dist = geo::distance(x.back(), center);
      step = std::min(m, dist * std::min(1.0, static_cast<double>(reqs.size()) / D));
    }
    x.push_back(geo::move_toward(x.back(), center, step));
  }
  return x;
}

std::vector<sim::Point> forward_clamp(const sim::Instance& instance,
                                      const std::vector<sim::Point>& x) {
  std::vector<sim::Point> y(x.size());
  y[0] = instance.start();
  const double m = instance.params().max_step;
  for (std::size_t t = 0; t + 1 < x.size(); ++t) y[t + 1] = geo::move_toward(y[t], x[t + 1], m);
  return y;
}

// ---------------------------------------------------------------------------
// Pre-refactor convex descent (convex_descent.cpp before the rewire).
// ---------------------------------------------------------------------------

struct FrozenSolution {
  double cost = 0.0;
  double opt_lower_bound = 0.0;
  std::vector<sim::Point> positions;
};

Point smooth_norm_grad(const Point& u, double mu) {
  return u / std::sqrt(u.norm2() + mu * mu);
}

void gradient(const sim::Instance& instance, const std::vector<Point>& x, double mu,
              std::vector<Point>& grad) {
  const auto& params = instance.params();
  const double D = params.move_cost_weight;
  for (auto& g : grad) g = Point::zero(instance.dim());

  for (std::size_t t = 0; t < instance.horizon(); ++t) {
    const Point move_grad = smooth_norm_grad(x[t + 1] - x[t], mu) * D;
    grad[t + 1] += move_grad;
    if (t > 0) grad[t] -= move_grad;

    const std::size_t s = serve_index(params, t);
    if (s == 0) continue;
    for (const geo::Point v : instance.step(t)) grad[s] += smooth_norm_grad(x[s] - v, mu);
  }
}

void projection_sweeps(std::vector<Point>& x, double m, int sweeps) {
  const std::size_t n = x.size();
  for (int s = 0; s < sweeps; ++s) {
    for (std::size_t t = 0; t + 1 < n; ++t) {
      const double d = geo::distance(x[t], x[t + 1]);
      if (d <= m || d == 0.0) continue;
      const double excess = d - m;
      const Point dir = (x[t + 1] - x[t]) / d;
      if (t == 0) {
        x[t + 1] -= dir * excess;
      } else {
        x[t] += dir * (excess / 2.0);
        x[t + 1] -= dir * (excess / 2.0);
      }
    }
  }
}

FrozenSolution solve_convex_descent(const sim::Instance& instance,
                                    const ConvexDescentOptions& options,
                                    const std::vector<sim::Point>* warm_start) {
  const double m = instance.params().max_step;
  const double mu = options.smoothing * m;

  FrozenSolution best;
  if (instance.horizon() == 0) {
    best.positions = {instance.start()};
    best.cost = 0.0;
    return best;
  }

  std::vector<std::vector<Point>> candidates;
  if (warm_start != nullptr) candidates.push_back(*warm_start);
  candidates.push_back(chase_init(instance, /*damped=*/false));
  candidates.push_back(chase_init(instance, /*damped=*/true));

  std::vector<Point> x;
  best.cost = std::numeric_limits<double>::infinity();
  for (auto& candidate : candidates) {
    std::vector<Point> feasible = forward_clamp(instance, candidate);
    const double cost = sim::trajectory_cost(instance, feasible);
    if (cost < best.cost) {
      best.cost = cost;
      best.positions = std::move(feasible);
      x = std::move(candidate);
    }
  }

  const double r_max = static_cast<double>(instance.request_bounds().second);
  const double lipschitz = 2.0 * instance.params().move_cost_weight + r_max;

  std::vector<Point> grad(x.size(), Point::zero(instance.dim()));
  for (int k = 0; k < options.iterations; ++k) {
    gradient(instance, x, mu, grad);

    const double step =
        options.initial_step * m / (lipschitz * std::sqrt(static_cast<double>(k) + 1.0));
    for (std::size_t t = 1; t < x.size(); ++t) x[t] -= grad[t] * step;

    projection_sweeps(x, m, options.projection_sweeps);

    std::vector<Point> candidate = forward_clamp(instance, x);
    const double cost = sim::trajectory_cost(instance, candidate);
    if (cost < best.cost) {
      best.cost = cost;
      best.positions = std::move(candidate);
    }
  }

  best.opt_lower_bound = reachability_lower_bound(instance);
  return best;
}

// ---------------------------------------------------------------------------
// Pre-refactor coordinate descent (coordinate_descent.cpp before the
// rewire; per-position scratch vectors allocated fresh, as the old code
// did).
// ---------------------------------------------------------------------------

Point project_ball(const Point& y, const Point& center, double radius) {
  const double d = geo::distance(center, y);
  if (d <= radius) return y;
  return center + (y - center) * (radius / d);
}

struct Subproblem {
  const Point* prev = nullptr;
  const Point* next = nullptr;
  sim::BatchView batch;
  double d_weight = 1.0;
  double m = 1.0;

  [[nodiscard]] double value(const Point& p) const {
    double v = d_weight * geo::distance(*prev, p);
    if (next != nullptr) v += d_weight * geo::distance(p, *next);
    v += sim::service_cost(p, batch);
    return v;
  }

  [[nodiscard]] bool feasible(const Point& p, double tol = 1e-9) const {
    if (geo::distance(*prev, p) > m * (1.0 + tol)) return false;
    if (next != nullptr && geo::distance(p, *next) > m * (1.0 + tol)) return false;
    return true;
  }
};

Point improve_position(const Subproblem& sub, const Point& current, int projection_rounds) {
  std::vector<Point> points;
  std::vector<double> weights;
  points.push_back(*sub.prev);
  weights.push_back(sub.d_weight);
  if (sub.next != nullptr) {
    points.push_back(*sub.next);
    weights.push_back(sub.d_weight);
  }
  for (const Point v : sub.batch) {
    points.push_back(v);
    weights.push_back(1.0);
  }

  med::WeiszfeldOptions weiszfeld_options;
  weiszfeld_options.max_iterations = 60;
  Point candidate = med::weiszfeld(points, weights, current, weiszfeld_options).median;

  if (!sub.feasible(candidate)) {
    for (int k = 0; k < projection_rounds; ++k) {
      candidate = project_ball(candidate, *sub.prev, sub.m);
      if (sub.next != nullptr) candidate = project_ball(candidate, *sub.next, sub.m);
      if (sub.feasible(candidate)) break;
    }
    if (!sub.feasible(candidate)) return current;
  }
  return sub.value(candidate) < sub.value(current) ? candidate : current;
}

FrozenSolution solve_coordinate_descent(const sim::Instance& instance,
                                        const CoordinateDescentOptions& options,
                                        const std::vector<sim::Point>* warm_start) {
  const auto& params = instance.params();
  const std::size_t T = instance.horizon();

  FrozenSolution out;
  if (T == 0) {
    out.positions = {instance.start()};
    return out;
  }

  std::vector<Point> x;
  if (warm_start != nullptr) {
    x = *warm_start;
  } else {
    const std::vector<Point> eager = chase_init(instance, /*damped=*/false);
    const std::vector<Point> damped = chase_init(instance, /*damped=*/true);
    x = sim::trajectory_cost(instance, eager) <= sim::trajectory_cost(instance, damped) ? eager
                                                                                        : damped;
  }

  auto batch_at = [&](std::size_t t) -> sim::BatchView {
    if (params.order == sim::ServiceOrder::kMoveThenServe) return instance.step(t - 1);
    return t < T ? instance.step(t) : sim::BatchView{};
  };

  double cost = sim::trajectory_cost(instance, x);
  for (int sweep = 0; sweep < options.max_sweeps; ++sweep) {
    for (int dir = 0; dir < 2; ++dir) {
      for (std::size_t k = 1; k <= T; ++k) {
        const std::size_t t = dir == 0 ? k : T + 1 - k;
        Subproblem sub;
        sub.prev = &x[t - 1];
        sub.next = t < T ? &x[t + 1] : nullptr;
        sub.batch = batch_at(t);
        sub.d_weight = params.move_cost_weight;
        sub.m = params.max_step;
        x[t] = improve_position(sub, x[t], options.projection_rounds);
      }
    }
    const double new_cost = sim::trajectory_cost(instance, x);
    if (cost - new_cost <= options.rel_tol * std::max(1.0, cost)) {
      cost = new_cost;
      break;
    }
    cost = new_cost;
  }

  out.cost = cost;
  out.positions = std::move(x);
  out.opt_lower_bound = reachability_lower_bound(instance);
  return out;
}

FrozenSolution solve_best_offline(const sim::Instance& instance,
                                  const std::vector<sim::Point>* warm_start) {
  FrozenSolution shaped = solve_convex_descent(instance, {}, warm_start);
  if (instance.horizon() == 0) return shaped;
  FrozenSolution polished = solve_coordinate_descent(instance, {}, &shaped.positions);
  polished.opt_lower_bound = std::max(polished.opt_lower_bound, shaped.opt_lower_bound);
  return polished.cost <= shaped.cost ? polished : shaped;
}

// ---------------------------------------------------------------------------
// Pre-refactor grid DP (grid_dp.cpp before the scratch-reuse rewrite; note
// the by-value sorted_requests copy per batch).
// ---------------------------------------------------------------------------

constexpr double kInf = std::numeric_limits<double>::infinity();

void service_costs(double origin, double h, std::size_t cells, std::vector<double> sorted_requests,
                   std::vector<double>& out) {
  out.assign(cells, 0.0);
  if (sorted_requests.empty()) return;
  std::sort(sorted_requests.begin(), sorted_requests.end());
  std::vector<double> prefix(sorted_requests.size() + 1, 0.0);
  for (std::size_t i = 0; i < sorted_requests.size(); ++i)
    prefix[i + 1] = prefix[i] + sorted_requests[i];
  const double total = prefix.back();
  const auto r = sorted_requests.size();
  std::size_t below = 0;
  for (std::size_t j = 0; j < cells; ++j) {
    const double x = origin + static_cast<double>(j) * h;
    while (below < r && sorted_requests[below] <= x) ++below;
    const auto nb = static_cast<double>(below);
    out[j] = x * nb - prefix[below] + (total - prefix[below]) - x * (static_cast<double>(r) - nb);
  }
}

void windowed_minplus(const std::vector<double>& src, long w, double unit,
                      std::vector<double>& dst, std::vector<std::int32_t>* parent) {
  const long n = static_cast<long>(src.size());
  dst.assign(src.size(), kInf);
  if (parent) parent->assign(src.size(), -1);
  {
    std::deque<long> q;
    auto key = [&](long k) { return src[static_cast<std::size_t>(k)] - unit * static_cast<double>(k); };
    for (long j = 0; j < n; ++j) {
      while (!q.empty() && key(q.back()) >= key(j)) q.pop_back();
      q.push_back(j);
      while (q.front() < j - w) q.pop_front();
      const long k = q.front();
      const double val = key(k) + unit * static_cast<double>(j);
      if (val < dst[static_cast<std::size_t>(j)]) {
        dst[static_cast<std::size_t>(j)] = val;
        if (parent) (*parent)[static_cast<std::size_t>(j)] = static_cast<std::int32_t>(k);
      }
    }
  }
  {
    std::deque<long> q;
    auto key = [&](long k) { return src[static_cast<std::size_t>(k)] + unit * static_cast<double>(k); };
    for (long j = n - 1; j >= 0; --j) {
      while (!q.empty() && key(q.back()) >= key(j)) q.pop_back();
      q.push_back(j);
      while (q.front() > j + w) q.pop_front();
      const long k = q.front();
      const double val = key(k) - unit * static_cast<double>(j);
      if (val < dst[static_cast<std::size_t>(j)]) {
        dst[static_cast<std::size_t>(j)] = val;
        if (parent) (*parent)[static_cast<std::size_t>(j)] = static_cast<std::int32_t>(k);
      }
    }
  }
}

struct DpRun {
  double cost = kInf;
  std::vector<sim::Point> positions;
};

DpRun run_dp(const sim::Instance& instance, double origin, double h, std::size_t cells,
             std::size_t start_index, long window, bool want_trajectory) {
  const auto& params = instance.params();
  const double unit = params.move_cost_weight * h;
  const std::size_t T = instance.horizon();

  std::vector<std::vector<std::int32_t>> parents;
  if (want_trajectory) parents.resize(T);

  std::vector<double> dp(cells, kInf), next, service, shifted;
  dp[start_index] = 0.0;

  for (std::size_t t = 0; t < T; ++t) {
    const sim::BatchView batch = instance.step(t);
    std::vector<double> coords;
    coords.reserve(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) coords.push_back(batch.coord(i, 0));
    service_costs(origin, h, cells, std::move(coords), service);

    if (params.order == sim::ServiceOrder::kServeThenMove) {
      shifted.resize(cells);
      for (std::size_t j = 0; j < cells; ++j) shifted[j] = dp[j] + service[j];
      windowed_minplus(shifted, window, unit, next, want_trajectory ? &parents[t] : nullptr);
    } else {
      windowed_minplus(dp, window, unit, next, want_trajectory ? &parents[t] : nullptr);
      for (std::size_t j = 0; j < cells; ++j) next[j] += service[j];
    }
    dp.swap(next);
  }

  DpRun out;
  std::size_t best = 0;
  for (std::size_t j = 0; j < cells; ++j)
    if (dp[j] < dp[best]) best = j;
  out.cost = dp[best];

  if (want_trajectory) {
    std::vector<std::size_t> idx(T + 1);
    idx[T] = best;
    for (std::size_t t = T; t > 0; --t) idx[t - 1] = static_cast<std::size_t>(parents[t - 1][idx[t]]);
    out.positions.reserve(T + 1);
    for (std::size_t t = 0; t <= T; ++t)
      out.positions.push_back(geo::Point{origin + static_cast<double>(idx[t]) * h});
  }
  return out;
}

struct FrozenDpResult {
  FrozenSolution solution;
  double relaxed_cost = 0.0;
  double rounding_error = 0.0;
  double spacing = 0.0;
  std::size_t cells = 0;
};

FrozenDpResult solve_grid_dp_1d(const sim::Instance& instance, const GridDpOptions& options) {
  const auto& params = instance.params();
  const double m = params.max_step;
  const double start = instance.start()[0];

  double lo = start, hi = start;
  for (const double v : instance.store().coords()) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  lo -= options.margin_steps * m;
  hi += options.margin_steps * m;

  double h = m / options.cells_per_step;
  auto cell_count = [&](double spacing) {
    const double below = std::ceil((start - lo) / spacing);
    const double above = std::ceil((hi - start) / spacing);
    return static_cast<std::size_t>(below + above) + 1;
  };
  while (cell_count(h) > options.max_cells) h *= 2.0;

  const auto below = static_cast<long>(std::ceil((start - lo) / h));
  const auto above = static_cast<long>(std::ceil((hi - start) / h));
  const std::size_t cells = static_cast<std::size_t>(below + above) + 1;
  const double origin = start - static_cast<double>(below) * h;
  const auto start_index = static_cast<std::size_t>(below);

  const long w_feas = std::max<long>(1, static_cast<long>(std::floor(m / h + 1e-12)));
  const long w_relax = w_feas + 1;

  FrozenDpResult result;
  result.spacing = h;
  result.cells = cells;

  const DpRun feas = run_dp(instance, origin, h, cells, start_index, w_feas,
                            options.want_trajectory);
  result.solution.cost = feas.cost;
  result.solution.positions = feas.positions;

  const DpRun relax = run_dp(instance, origin, h, cells, start_index, w_relax, false);
  result.relaxed_cost = relax.cost;

  double err = 0.0;
  for (std::size_t t = 0; t < instance.horizon(); ++t)
    err += params.move_cost_weight * h + static_cast<double>(instance.step(t).size()) * h / 2.0;
  result.rounding_error = err;
  result.solution.opt_lower_bound = std::max(0.0, relax.cost - err);
  return result;
}

}  // namespace frozen

namespace {

using geo::Point;

/// The e11 experiment's workload shape (bench_e11_offline_solvers.cpp).
sim::Instance e11_workload(std::size_t horizon, int dim, std::uint64_t seed) {
  stats::Rng rng(seed);
  adv::DriftingHotspotParams p;
  p.horizon = horizon;
  p.dim = dim;
  p.move_cost_weight = 4.0;
  return adv::make_drifting_hotspot(p, rng);
}

/// An instance with empty batches mixed in (exercises the empty-step paths
/// in the gradient and chase kernels) under the Answer-First order.
sim::Instance sparse_answer_first(std::size_t horizon, std::uint64_t seed) {
  stats::Rng rng(seed);
  std::vector<sim::RequestBatch> steps(horizon);
  for (std::size_t t = 0; t < horizon; ++t) {
    if (rng.coin()) continue;  // empty step
    const int r = static_cast<int>(rng.uniform_int(1, 3));
    for (int i = 0; i < r; ++i) steps[t].requests.push_back(Point{rng.uniform(-8.0, 8.0)});
  }
  sim::ModelParams params;
  params.move_cost_weight = 2.0;
  params.max_step = 1.0;
  params.order = sim::ServiceOrder::kServeThenMove;
  return sim::Instance(Point{0.0}, params, std::move(steps));
}

void expect_positions_identical(const sim::TrajectoryStore& got,
                                const std::vector<Point>& want, const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t t = 0; t < want.size(); ++t) EXPECT_EQ(got[t], want[t]) << what << " t=" << t;
}

std::vector<sim::Instance> parity_corpus() {
  std::vector<sim::Instance> corpus;
  corpus.push_back(e11_workload(96, 1, 1));
  corpus.push_back(e11_workload(96, 1, 2));
  corpus.push_back(e11_workload(64, 2, 3));
  corpus.push_back(sparse_answer_first(80, 4));
  return corpus;
}

TEST(OfflineParity, WarmStartHelpersBitIdentical) {
  for (const sim::Instance& inst : parity_corpus()) {
    for (const bool damped : {false, true}) {
      const std::vector<Point> want = frozen::chase_init(inst, damped);
      EXPECT_EQ(chase_init(inst, damped), want);
      sim::TrajectoryStore store;
      chase_init(inst, damped, store);
      expect_positions_identical(store, want, "chase_init");

      // Clamp an infeasible scaled-up copy of the chase.
      std::vector<Point> wild = want;
      for (Point& p : wild) p *= 3.0;
      wild[0] = inst.start();
      EXPECT_EQ(forward_clamp(inst, wild), frozen::forward_clamp(inst, wild));
    }
  }
}

TEST(OfflineParity, ConvexDescentBitIdentical) {
  ConvexDescentOptions options;
  options.iterations = 120;  // full shape of the loop, test-sized
  for (const sim::Instance& inst : parity_corpus()) {
    const frozen::FrozenSolution want = frozen::solve_convex_descent(inst, options, nullptr);
    const OfflineSolution got = solve_convex_descent(inst, options);
    EXPECT_EQ(got.cost, want.cost);
    EXPECT_EQ(got.opt_lower_bound, want.opt_lower_bound);
    expect_positions_identical(got.positions, want.positions, "convex");

    // Warm-started path (the ratio oracle's configuration).
    const std::vector<Point> warm_vec = frozen::chase_init(inst, true);
    const frozen::FrozenSolution want_warm =
        frozen::solve_convex_descent(inst, options, &warm_vec);
    const sim::TrajectoryStore warm_store = sim::TrajectoryStore::from_points(warm_vec);
    const OfflineSolution got_warm = solve_convex_descent(inst, options, &warm_store);
    EXPECT_EQ(got_warm.cost, want_warm.cost);
    expect_positions_identical(got_warm.positions, want_warm.positions, "convex warm");
    // The vector shim produces the same results as the store path.
    const OfflineSolution got_shim = solve_convex_descent(inst, options, &warm_vec);
    EXPECT_EQ(got_shim.cost, got_warm.cost);
  }
}

TEST(OfflineParity, CoordinateDescentBitIdentical) {
  CoordinateDescentOptions options;
  options.max_sweeps = 6;  // enough sweeps to exercise both pass directions
  for (const sim::Instance& inst : parity_corpus()) {
    const frozen::FrozenSolution want = frozen::solve_coordinate_descent(inst, options, nullptr);
    const OfflineSolution got = solve_coordinate_descent(inst, options);
    EXPECT_EQ(got.cost, want.cost);
    EXPECT_EQ(got.opt_lower_bound, want.opt_lower_bound);
    expect_positions_identical(got.positions, want.positions, "coordinate");
  }
}

TEST(OfflineParity, BestOfflinePipelineBitIdentical) {
  // The full oracle pipeline (subgradient shaping + polish) as run by
  // core::ratio — the heaviest consumer of the refactor.
  const sim::Instance inst = e11_workload(48, 1, 9);
  const frozen::FrozenSolution want = frozen::solve_best_offline(inst, nullptr);
  const OfflineSolution got = solve_best_offline(inst);
  EXPECT_EQ(got.cost, want.cost);
  EXPECT_EQ(got.opt_lower_bound, want.opt_lower_bound);
  expect_positions_identical(got.positions, want.positions, "best_offline");

  // Adversary-warm-started, as kConvexDescent does on lower-bound rows.
  stats::Rng rng(11);
  adv::Theorem1Params t1;
  t1.horizon = 64;
  const adv::AdversarialInstance a = adv::make_theorem1(t1, rng);
  const std::vector<Point> warm_vec = a.adversary_positions.to_points();
  const frozen::FrozenSolution want_warm = frozen::solve_best_offline(a.instance, &warm_vec);
  const OfflineSolution got_warm = solve_best_offline(a.instance, &a.adversary_positions);
  EXPECT_EQ(got_warm.cost, want_warm.cost);
  expect_positions_identical(got_warm.positions, want_warm.positions, "best_offline warm");
}

TEST(OfflineParity, GridDpBitIdentical) {
  GridDpOptions options;
  options.want_trajectory = true;
  for (const sim::Instance& inst : parity_corpus()) {
    if (inst.dim() != 1) continue;
    const frozen::FrozenDpResult want = frozen::solve_grid_dp_1d(inst, options);
    const GridDpResult got = solve_grid_dp_1d(inst, options);
    EXPECT_EQ(got.solution.cost, want.solution.cost);
    EXPECT_EQ(got.solution.opt_lower_bound, want.solution.opt_lower_bound);
    EXPECT_EQ(got.relaxed_cost, want.relaxed_cost);
    EXPECT_EQ(got.rounding_error, want.rounding_error);
    EXPECT_EQ(got.spacing, want.spacing);
    EXPECT_EQ(got.cells, want.cells);
    expect_positions_identical(got.solution.positions, want.solution.positions, "grid_dp");
  }
}

TEST(OfflineParity, AdversaryTrajectoriesBitIdenticalCosts) {
  // The lower-bound builders now accumulate their trajectories in flat
  // storage; their self-reported costs must equal the Point-path
  // trajectory_cost of the materialised positions exactly.
  stats::Rng rng1(3), rng2(4), rng3(5);
  adv::Theorem1Params t1;
  t1.horizon = 128;
  adv::Theorem2Params t2;
  t2.horizon = 128;
  adv::Theorem3Params t3;
  t3.horizon = 128;
  const adv::AdversarialInstance a1 = adv::make_theorem1(t1, rng1);
  const adv::AdversarialInstance a2 = adv::make_theorem2(t2, rng2);
  const adv::AdversarialInstance a3 = adv::make_theorem3(t3, rng3);
  for (const adv::AdversarialInstance* a : {&a1, &a2, &a3}) {
    const std::vector<Point> aos = a->adversary_positions.to_points();
    EXPECT_EQ(sim::trajectory_cost(a->instance, aos), a->adversary_cost);
    EXPECT_EQ(sim::first_speed_violation(a->instance, a->adversary_positions), -1);
  }
}

TEST(OfflineParity, BruteForceBitIdentical) {
  // Tiny instance; the enumeration itself is unchanged, the result storage
  // moved to the flat store.
  std::vector<sim::RequestBatch> steps(5);
  stats::Rng rng(6);
  for (auto& s : steps) s.requests.push_back(Point{rng.uniform(-2.0, 2.0)});
  sim::ModelParams params;
  params.move_cost_weight = 1.0;
  params.max_step = 1.0;
  const sim::Instance inst(Point{0.0}, params, std::move(steps));

  std::vector<Point> candidates;
  for (double v = -2.0; v <= 2.0; v += 1.0) candidates.push_back(Point{v});
  const OfflineSolution sol = brute_force_offline(inst, candidates);
  ASSERT_EQ(sol.positions.size(), inst.horizon() + 1);
  EXPECT_EQ(sim::trajectory_cost(inst, sol.positions), sol.cost);
  EXPECT_EQ(sim::trajectory_cost(inst, sol.positions.to_points()), sol.cost);
}

}  // namespace
}  // namespace mobsrv::opt
