// Unit tests for io/: table rendering (markdown + CSV), number formatting,
// and flag parsing used by every bench and example binary.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "io/args.hpp"
#include "io/table.hpp"

namespace mobsrv::io {
namespace {

TEST(FormatDouble, SignificantDigitsAndSpecials) {
  EXPECT_EQ(format_double(3.14159265, 4), "3.142");
  EXPECT_EQ(format_double(0.5), "0.5");
  EXPECT_EQ(format_double(120000.0, 6), "120000");
  EXPECT_EQ(format_double(120000.0, 4), "1.2e+05");
  EXPECT_EQ(format_double(1.0 / 0.0), "inf");
  EXPECT_EQ(format_double(-1.0 / 0.0), "-inf");
  EXPECT_EQ(format_double(std::nan("")), "nan");
  EXPECT_EQ(format_double(1234567.0, 2), "1.2e+06");
  EXPECT_THROW((void)format_double(1.0, 0), ContractViolation);
}

TEST(Table, RowConstructionAndAccess) {
  Table t("demo", {"a", "b"});
  t.row().cell("x").cell(1.5).done();
  t.add_row({"y", "2"});
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.num_columns(), 2u);
  EXPECT_EQ(t.at(0, 0), "x");
  EXPECT_EQ(t.at(0, 1), "1.5");
  EXPECT_EQ(t.at(1, 1), "2");
  EXPECT_THROW((void)t.at(2, 0), ContractViolation);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t("demo", {"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractViolation);
}

TEST(Table, EmptyColumnListThrows) {
  EXPECT_THROW(Table("demo", {}), ContractViolation);
}

TEST(Table, MarkdownIsAlignedAndTitled) {
  Table t("My Title", {"col", "value"});
  t.row().cell("first").cell(1).done();
  t.row().cell("x").cell(12345).done();
  const std::string md = t.to_markdown();
  EXPECT_NE(md.find("**My Title**"), std::string::npos);
  EXPECT_NE(md.find("| col   | value |"), std::string::npos);
  EXPECT_NE(md.find("| first | 1     |"), std::string::npos);
  EXPECT_NE(md.find("| x     | 12345 |"), std::string::npos);
  // Separator line present.
  EXPECT_NE(md.find("|-------|"), std::string::npos);
}

TEST(Table, CsvEscapesSpecials) {
  Table t("", {"name", "note"});
  t.add_row({"plain", "with,comma"});
  t.add_row({"quote\"inside", "line\nbreak"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("plain,\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"quote\"\"inside\""), std::string::npos);
}

TEST(Table, PrintWritesMarkdown) {
  Table t("T", {"c"});
  t.add_row({"v"});
  std::ostringstream os;
  t.print(os);
  EXPECT_EQ(os.str(), t.to_markdown() + "\n");
}

TEST(Table, CellTypesFormat) {
  Table t("", {"a", "b", "c", "d"});
  t.row().cell(std::size_t{7}).cell(-3).cell(2.25, 3).cell("s").done();
  EXPECT_EQ(t.at(0, 0), "7");
  EXPECT_EQ(t.at(0, 1), "-3");
  EXPECT_EQ(t.at(0, 2), "2.25");
  EXPECT_EQ(t.at(0, 3), "s");
}

Args parse(std::initializer_list<const char*> argv) {
  std::vector<const char*> v(argv);
  return Args(static_cast<int>(v.size()), v.data());
}

TEST(Args, EqualsSyntax) {
  const Args a = parse({"prog", "--x=5", "--name=hello"});
  EXPECT_EQ(a.get_int("x", 0), 5);
  EXPECT_EQ(a.get_string("name", ""), "hello");
  EXPECT_EQ(a.program(), "prog");
}

TEST(Args, SpaceSyntax) {
  const Args a = parse({"prog", "--x", "5", "--flag"});
  EXPECT_EQ(a.get_int("x", 0), 5);
  EXPECT_TRUE(a.get_bool("flag", false));
}

TEST(Args, DefaultsWhenAbsent) {
  const Args a = parse({"prog"});
  EXPECT_EQ(a.get_int("missing", 42), 42);
  EXPECT_EQ(a.get_double("missing", 2.5), 2.5);
  EXPECT_EQ(a.get_string("missing", "d"), "d");
  EXPECT_FALSE(a.get_bool("missing", false));
  EXPECT_FALSE(a.has("missing"));
}

TEST(Args, BooleanSpellings) {
  const Args a = parse({"prog", "--a=true", "--b=0", "--c=yes", "--d=off"});
  EXPECT_TRUE(a.get_bool("a", false));
  EXPECT_FALSE(a.get_bool("b", true));
  EXPECT_TRUE(a.get_bool("c", false));
  EXPECT_FALSE(a.get_bool("d", true));
  const Args bad = parse({"prog", "--e=maybe"});
  EXPECT_THROW((void)bad.get_bool("e", false), ContractViolation);
}

TEST(Args, PositionalsCollected) {
  const Args a = parse({"prog", "pos1", "--x=1", "pos2"});
  ASSERT_EQ(a.positionals().size(), 2u);
  EXPECT_EQ(a.positionals()[0], "pos1");
  EXPECT_EQ(a.positionals()[1], "pos2");
}

TEST(Args, MalformedNumbersThrow) {
  const Args a = parse({"prog", "--x=abc"});
  EXPECT_THROW((void)a.get_int("x", 0), ContractViolation);
  EXPECT_THROW((void)a.get_double("x", 0.0), ContractViolation);
}

TEST(Args, NegativeNumberAsValue) {
  const Args a = parse({"prog", "--x=-3.5"});
  EXPECT_DOUBLE_EQ(a.get_double("x", 0.0), -3.5);
}

}  // namespace
}  // namespace mobsrv::io
