// Unit + cross-validation tests for opt/coordinate_descent.hpp: the
// strongest general-dimension offline oracle. Key invariants: monotone
// sweeps, permanent feasibility, never worse than its warm start, and
// landing inside the 1-D DP bracket.
#include "opt/coordinate_descent.hpp"

#include <gtest/gtest.h>

#include "opt/convex_descent.hpp"
#include "opt/grid_dp.hpp"
#include "opt/warm_starts.hpp"
#include "sim/cost.hpp"
#include "stats/rng.hpp"

namespace mobsrv::opt {
namespace {

using geo::Point;

sim::ModelParams make_params(double d_weight, double m,
                             sim::ServiceOrder order = sim::ServiceOrder::kMoveThenServe) {
  sim::ModelParams p;
  p.move_cost_weight = d_weight;
  p.max_step = m;
  p.order = order;
  return p;
}

sim::Instance random_instance(std::uint64_t seed, int dim, std::size_t horizon,
                              double d_weight = 4.0,
                              sim::ServiceOrder order = sim::ServiceOrder::kMoveThenServe) {
  stats::Rng rng(seed);
  std::vector<sim::RequestBatch> steps(horizon);
  Point hotspot = Point::zero(dim);
  for (auto& s : steps) {
    for (int d = 0; d < dim; ++d) hotspot[d] += rng.uniform(-0.5, 0.5);
    const int r = static_cast<int>(rng.uniform_int(1, 3));
    for (int i = 0; i < r; ++i) {
      Point v = hotspot;
      for (int d = 0; d < dim; ++d) v[d] += rng.normal(0.0, 1.5);
      s.requests.push_back(v);
    }
  }
  return sim::Instance(Point::zero(dim), make_params(d_weight, 1.0, order), std::move(steps));
}

TEST(CoordinateDescent, EmptyInstance) {
  const sim::Instance inst(Point{0.0}, make_params(1.0, 1.0), std::vector<sim::RequestBatch>{});
  const OfflineSolution sol = solve_coordinate_descent(inst);
  EXPECT_EQ(sol.cost, 0.0);
  EXPECT_EQ(sol.positions.size(), 1u);
}

TEST(CoordinateDescent, AlwaysFeasibleAndConsistent) {
  for (const int dim : {1, 2, 3}) {
    const sim::Instance inst = random_instance(static_cast<std::uint64_t>(dim), dim, 50);
    const OfflineSolution sol = solve_coordinate_descent(inst);
    ASSERT_EQ(sol.positions.size(), inst.horizon() + 1);
    EXPECT_EQ(sim::first_speed_violation(inst, sol.positions), -1) << "dim " << dim;
    EXPECT_NEAR(sim::trajectory_cost(inst, sol.positions), sol.cost, 1e-9 * (1.0 + sol.cost));
  }
}

TEST(CoordinateDescent, NeverWorseThanWarmStart) {
  const sim::Instance inst = random_instance(10, 2, 60);
  const std::vector<Point> warm = chase_init(inst, true);
  const double warm_cost = sim::trajectory_cost(inst, warm);
  const OfflineSolution sol = solve_coordinate_descent(inst, {}, &warm);
  EXPECT_LE(sol.cost, warm_cost + 1e-9);
}

TEST(CoordinateDescent, InfeasibleWarmStartRejected) {
  const sim::Instance inst = random_instance(11, 2, 10);
  std::vector<Point> teleporting(inst.horizon() + 1, inst.start());
  teleporting[1] = inst.start() + Point{50.0, 0.0};
  EXPECT_THROW((void)solve_coordinate_descent(inst, {}, &teleporting), ContractViolation);
}

TEST(CoordinateDescent, BeatsOrMatchesSubgradientSolver) {
  // The polish phase must dominate the shaping phase alone.
  for (const std::uint64_t seed : {20u, 21u, 22u}) {
    const sim::Instance inst = random_instance(seed, 2, 60);
    const OfflineSolution shaped = solve_convex_descent(inst);
    const OfflineSolution polished = solve_coordinate_descent(inst, {}, &shaped.positions);
    EXPECT_LE(polished.cost, shaped.cost + 1e-9);
  }
}

TEST(CoordinateDescent, LandsInsideDpBracketOnTheLine) {
  for (const std::uint64_t seed : {30u, 31u, 32u}) {
    const sim::Instance inst = random_instance(seed, 1, 60);
    const GridDpResult dp = solve_grid_dp_1d(inst);
    // From scratch, coordinate descent alone stays close-ish (chain
    // couplings slow global reshaping)...
    const OfflineSolution cd = solve_coordinate_descent(inst);
    EXPECT_GE(cd.cost, dp.solution.opt_lower_bound - 1e-9);
    EXPECT_LE(cd.cost, dp.solution.cost * 1.25 + 1e-9);
    // ...while the full pipeline (subgradient shaping + CD polish) gets
    // within 10% of the near-exact DP.
    const OfflineSolution best = solve_best_offline(inst);
    EXPECT_GE(best.cost, dp.solution.opt_lower_bound - 1e-9);
    EXPECT_LE(best.cost, dp.solution.cost * 1.10 + 1e-9);
  }
}

TEST(CoordinateDescent, StationaryDemandSolvedExactly) {
  // All requests at one reachable point: the optimal trajectory walks there
  // and parks. Coordinate descent should find it to high accuracy.
  std::vector<sim::RequestBatch> steps(30);
  for (auto& s : steps) s.requests = {Point{3.0, 0.0}};
  const sim::Instance inst(Point{0.0, 0.0}, make_params(1.0, 1.0), std::move(steps));
  const OfflineSolution sol = solve_coordinate_descent(inst);
  // Walk 3 units (cost 3) paying service 2+1 while under way → 6 total.
  EXPECT_NEAR(sol.cost, 6.0, 0.1);
}

TEST(CoordinateDescent, AnswerFirstSupported) {
  const sim::Instance inst =
      random_instance(40, 2, 40, 4.0, sim::ServiceOrder::kServeThenMove);
  const OfflineSolution sol = solve_coordinate_descent(inst);
  EXPECT_EQ(sim::first_speed_violation(inst, sol.positions), -1);
  EXPECT_NEAR(sim::trajectory_cost(inst, sol.positions), sol.cost, 1e-9 * (1.0 + sol.cost));
  // The last position serves nothing in Answer-First; the solver must still
  // handle its one-sided subproblem.
}

TEST(SolveBestOffline, DominatesBothPhases) {
  for (const std::uint64_t seed : {50u, 51u}) {
    for (const int dim : {1, 2}) {
      const sim::Instance inst = random_instance(seed, dim, 50);
      const OfflineSolution best = solve_best_offline(inst);
      const OfflineSolution shaped = solve_convex_descent(inst);
      const OfflineSolution cd_only = solve_coordinate_descent(inst);
      EXPECT_LE(best.cost, shaped.cost + 1e-9);
      EXPECT_LE(best.cost, cd_only.cost * 1.02 + 1e-9);  // near-dominates CD-only too
      EXPECT_EQ(sim::first_speed_violation(inst, best.positions), -1);
    }
  }
}

TEST(WarmStarts, ChaseInitsAreFeasible) {
  for (const int dim : {1, 2, 3}) {
    const sim::Instance inst = random_instance(static_cast<std::uint64_t>(60 + dim), dim, 40);
    for (const bool damped : {false, true}) {
      const std::vector<Point> x = chase_init(inst, damped);
      ASSERT_EQ(x.size(), inst.horizon() + 1);
      EXPECT_EQ(sim::first_speed_violation(inst, x), -1);
    }
  }
}

TEST(WarmStarts, ForwardClampRepairsAnything) {
  const sim::Instance inst = random_instance(70, 2, 20);
  stats::Rng rng(71);
  std::vector<Point> wild(inst.horizon() + 1, Point::zero(2));
  for (auto& p : wild) p = Point{rng.uniform(-100.0, 100.0), rng.uniform(-100.0, 100.0)};
  const std::vector<Point> repaired = forward_clamp(inst, wild);
  EXPECT_EQ(sim::first_speed_violation(inst, repaired), -1);
  EXPECT_EQ(repaired[0], inst.start());
}

TEST(WarmStarts, ServeIndexMatchesOrders) {
  EXPECT_EQ(serve_index(make_params(1.0, 1.0, sim::ServiceOrder::kMoveThenServe), 3), 4u);
  EXPECT_EQ(serve_index(make_params(1.0, 1.0, sim::ServiceOrder::kServeThenMove), 3), 3u);
}

// Property sweep: coordinate descent monotonically improves across many
// random instances and dimensions, and the improvement over the damped
// chase (the online MtC trajectory) is what the oracle contributes.
class CoordinateDescentProperty : public ::testing::TestWithParam<int> {};

TEST_P(CoordinateDescentProperty, ImprovesOnOnlineTrajectory) {
  const int dim = GetParam();
  for (std::uint64_t seed = 100; seed < 104; ++seed) {
    const sim::Instance inst = random_instance(seed, dim, 40);
    const std::vector<Point> online_like = chase_init(inst, true);
    const double online_cost = sim::trajectory_cost(inst, online_like);
    const OfflineSolution sol = solve_coordinate_descent(inst, {}, &online_like);
    EXPECT_LE(sol.cost, online_cost + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, CoordinateDescentProperty, ::testing::Values(1, 2, 3, 8));

}  // namespace
}  // namespace mobsrv::opt
