// Unit tests for sim/trajectory_store.hpp and the kernels that run on it:
// round-trips against std::vector<Point>, strided-view aliasing over AoS
// Point arrays, and bit-identity of the view-based cost/feasibility/clamp
// paths against their Point-arithmetic originals.
#include "sim/trajectory_store.hpp"

#include <gtest/gtest.h>

#include "common/contracts.hpp"
#include "geometry/kernels.hpp"
#include "opt/warm_starts.hpp"
#include "sim/cost.hpp"
#include "stats/rng.hpp"

namespace mobsrv::sim {
namespace {

using geo::Point;

std::vector<Point> random_points(std::uint64_t seed, int dim, std::size_t count) {
  stats::Rng rng(seed);
  std::vector<Point> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Point p(dim);
    for (int k = 0; k < dim; ++k) p[k] = rng.uniform(-10.0, 10.0);
    out.push_back(p);
  }
  return out;
}

Instance random_instance(std::uint64_t seed, int dim, std::size_t horizon) {
  stats::Rng rng(seed);
  std::vector<RequestBatch> steps(horizon);
  for (auto& s : steps) {
    const int r = static_cast<int>(rng.uniform_int(0, 3));
    for (int i = 0; i < r; ++i) {
      Point v(dim);
      for (int k = 0; k < dim; ++k) v[k] = rng.uniform(-5.0, 5.0);
      s.requests.push_back(v);
    }
  }
  ModelParams params;
  params.move_cost_weight = 4.0;
  params.max_step = 1.0;
  return Instance(Point::zero(dim), params, std::move(steps));
}

TEST(TrajectoryStore, RoundTripsAgainstPointVector) {
  for (const int dim : {1, 2, 5}) {
    const std::vector<Point> points = random_points(7, dim, 33);
    const TrajectoryStore store = TrajectoryStore::from_points(points);
    EXPECT_EQ(store.dim(), dim);
    ASSERT_EQ(store.size(), points.size());
    EXPECT_EQ(store.coords().size(), points.size() * static_cast<std::size_t>(dim));
    for (std::size_t t = 0; t < points.size(); ++t) EXPECT_EQ(store[t], points[t]);
    EXPECT_EQ(store.back(), points.back());
    EXPECT_EQ(store.to_points(), points);
  }
}

TEST(TrajectoryStore, PushBackAdoptsDimensionAndChecksIt) {
  TrajectoryStore store;
  EXPECT_EQ(store.dim(), 0);
  EXPECT_TRUE(store.empty());
  store.push_back(Point{1.0, 2.0});
  EXPECT_EQ(store.dim(), 2);
  store.push_back(Point{3.0, 4.0});
  EXPECT_EQ(store.size(), 2u);
  EXPECT_THROW(store.push_back(Point{1.0}), ContractViolation);
}

TEST(TrajectoryStore, AssignAndIteration) {
  TrajectoryStore store(2);
  store.assign(4, Point{1.5, -2.5});
  EXPECT_EQ(store.size(), 4u);
  std::size_t seen = 0;
  for (const Point p : store) {
    EXPECT_EQ(p, (Point{1.5, -2.5}));
    ++seen;
  }
  EXPECT_EQ(seen, 4u);
}

TEST(TrajectoryStore, EqualityUsesIeeeSemantics) {
  TrajectoryStore a, b;
  a.push_back(Point{0.0});
  b.push_back(Point{-0.0});
  EXPECT_TRUE(a == b);  // -0.0 == 0.0, matching Point::operator==
  b.set(0, Point{1.0});
  EXPECT_TRUE(a != b);
  const TrajectoryStore empty1, empty2;
  EXPECT_TRUE(empty1 == empty2);
}

TEST(TrajectoryView, StridedViewAliasesPointArray) {
  std::vector<Point> points = random_points(11, 3, 8);
  const std::vector<Point> original = points;

  // Const view: reads through the stride land on the Points' coordinates.
  const ConstTrajectoryView cview = ConstTrajectoryView::of(points);
  ASSERT_EQ(cview.size(), points.size());
  EXPECT_EQ(cview.dim(), 3);
  EXPECT_EQ(cview.stride(), sizeof(Point) / sizeof(double));
  for (std::size_t t = 0; t < points.size(); ++t) {
    EXPECT_EQ(cview[t], points[t]);
    for (int k = 0; k < 3; ++k) EXPECT_EQ(cview.coord(t, k), points[t][k]);
  }

  // Mutable view: writes through the stride mutate the Points in place.
  const TrajectoryView view = TrajectoryView::of(points);
  view.row(2)[1] = 99.5;
  view.set(5, Point{1.0, 2.0, 3.0});
  EXPECT_EQ(points[2][1], 99.5);
  EXPECT_EQ(points[2][0], original[2][0]);  // neighbours untouched
  EXPECT_EQ(points[5], (Point{1.0, 2.0, 3.0}));
  EXPECT_EQ(points[2].dim(), 3);  // dims survive raw writes
}

TEST(TrajectoryView, MixedDimensionPointArrayIsRejected) {
  std::vector<Point> points{Point{1.0, 2.0}, Point{3.0}};
  EXPECT_THROW((void)ConstTrajectoryView::of(points), ContractViolation);
}

TEST(TrajectoryStore, AssignFromStridedViewDensifies) {
  std::vector<Point> points = random_points(13, 2, 6);
  TrajectoryStore store;
  store.assign_from(ConstTrajectoryView::of(points));
  EXPECT_EQ(store.dim(), 2);
  EXPECT_EQ(store.to_points(), points);
  // Dense view over the store has stride == dim.
  EXPECT_EQ(store.cview().stride(), 2u);
}

TEST(Kernels, DistanceAndMoveTowardMatchPointOpsBitwise) {
  stats::Rng rng(21);
  for (const int dim : {1, 2, 5, 8}) {
    for (int trial = 0; trial < 50; ++trial) {
      Point a(dim), b(dim);
      for (int k = 0; k < dim; ++k) {
        a[k] = rng.uniform(-100.0, 100.0);
        b[k] = rng.uniform(-100.0, 100.0);
      }
      const auto run = [&](auto dtag) {
        constexpr int Dim = decltype(dtag)::value;
        EXPECT_EQ(geo::kern::distance<Dim>(a.data(), b.data(), dim), geo::distance(a, b));
        EXPECT_EQ(geo::kern::distance2<Dim>(a.data(), b.data(), dim), geo::distance2(a, b));
        const double step = rng.uniform(0.0, 50.0);
        const Point expected = geo::move_toward(a, b, step);
        Point raw(dim);
        geo::kern::move_toward<Dim>(a.data(), b.data(), dim, step, raw.data());
        EXPECT_EQ(raw, expected);
      };
      geo::kern::dispatch_dim(dim, run);
      run(std::integral_constant<int, 0>{});  // generic path too
    }
  }
}

TEST(TrajectoryCost, ViewPathBitIdenticalToSpanPath) {
  for (const int dim : {1, 2, 3}) {
    const Instance inst = random_instance(31 + static_cast<std::uint64_t>(dim), dim, 40);
    std::vector<Point> positions = random_points(77, dim, inst.horizon() + 1);
    positions[0] = inst.start();
    const TrajectoryStore store = TrajectoryStore::from_points(positions);

    const double via_span = trajectory_cost(inst, positions);
    EXPECT_EQ(trajectory_cost(inst, store), via_span);
    EXPECT_EQ(trajectory_cost(inst, ConstTrajectoryView::of(positions)), via_span);

    EXPECT_EQ(first_speed_violation(inst, store),
              first_speed_violation(inst, std::span<const Point>(positions)));
    // Feasible trajectory: both paths agree on -1.
    TrajectoryStore feasible(dim, inst.horizon() + 1);
    opt::forward_clamp(inst, store, feasible.view());
    EXPECT_EQ(first_speed_violation(inst, feasible), -1);
    EXPECT_EQ(first_speed_violation(inst, feasible.to_points()), -1);
    EXPECT_EQ(trajectory_cost(inst, feasible), trajectory_cost(inst, feasible.to_points()));
  }
}

TEST(ForwardClamp, ViewAndVectorShimsAgreeBitwiseAndAllowInPlace) {
  const Instance inst = random_instance(41, 2, 32);
  std::vector<Point> wild = random_points(43, 2, inst.horizon() + 1);
  const std::vector<Point> clamped_vec = opt::forward_clamp(inst, wild);

  TrajectoryStore store = TrajectoryStore::from_points(wild);
  TrajectoryStore out(2, wild.size());
  opt::forward_clamp(inst, store, out.view());
  EXPECT_EQ(out.to_points(), clamped_vec);

  // In-place repair: y aliasing x is supported.
  opt::forward_clamp(inst, store, store.view());
  EXPECT_EQ(store.to_points(), clamped_vec);
}

}  // namespace
}  // namespace mobsrv::sim
