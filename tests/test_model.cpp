// Unit tests for sim/model.hpp and sim/cost.hpp: instance validation,
// request bounds, and — critically — the two service orders' cost
// accounting, which every theorem's experiment depends on.
#include <gtest/gtest.h>

#include "sim/cost.hpp"
#include "sim/model.hpp"

namespace mobsrv::sim {
namespace {

ModelParams params(double d_weight, double m, ServiceOrder order = ServiceOrder::kMoveThenServe) {
  ModelParams p;
  p.move_cost_weight = d_weight;
  p.max_step = m;
  p.order = order;
  return p;
}

Instance tiny_instance(ServiceOrder order = ServiceOrder::kMoveThenServe) {
  std::vector<RequestBatch> steps(2);
  steps[0].requests = {Point{1.0}, Point{2.0}};
  steps[1].requests = {Point{-1.0}};
  return Instance(Point{0.0}, params(2.0, 1.0, order), steps);
}

TEST(ModelParams, ValidationRejectsPaperViolations) {
  EXPECT_THROW(params(0.5, 1.0).validate(), ContractViolation);  // D < 1
  EXPECT_THROW(params(1.0, 0.0).validate(), ContractViolation);  // m = 0
  EXPECT_THROW(params(1.0, -1.0).validate(), ContractViolation);
  EXPECT_NO_THROW(params(1.0, 0.25).validate());
}

TEST(Instance, BasicAccessors) {
  const Instance inst = tiny_instance();
  EXPECT_EQ(inst.dim(), 1);
  EXPECT_EQ(inst.horizon(), 2u);
  EXPECT_EQ(inst.step(0).size(), 2u);
  EXPECT_EQ(inst.step(1).size(), 1u);
  EXPECT_EQ(inst.total_requests(), 3u);
  const auto [rmin, rmax] = inst.request_bounds();
  EXPECT_EQ(rmin, 1u);
  EXPECT_EQ(rmax, 2u);
}

TEST(Instance, EmptySequenceAllowed) {
  const Instance inst(Point{0.0}, params(1.0, 1.0), std::vector<RequestBatch>{});
  EXPECT_EQ(inst.horizon(), 0u);
  const auto [rmin, rmax] = inst.request_bounds();
  EXPECT_EQ(rmin, 0u);
  EXPECT_EQ(rmax, 0u);
}

TEST(Instance, EmptyBatchesAllowed) {
  std::vector<RequestBatch> steps(3);
  steps[1].requests = {Point{1.0}};
  const Instance inst(Point{0.0}, params(1.0, 1.0), steps);
  EXPECT_EQ(inst.request_bounds().first, 0u);
}

TEST(Instance, RejectsDimensionMismatch) {
  std::vector<RequestBatch> steps(1);
  steps[0].requests = {Point{1.0, 2.0}};
  EXPECT_THROW(Instance(Point{0.0}, params(1.0, 1.0), steps), ContractViolation);
}

TEST(Instance, RejectsEmptyStart) {
  EXPECT_THROW(Instance(Point{}, params(1.0, 1.0), std::vector<RequestBatch>{}),
               ContractViolation);
}

TEST(Instance, WithOrderFlipsOnlyTheOrder) {
  const Instance inst = tiny_instance(ServiceOrder::kMoveThenServe);
  const Instance flipped = inst.with_order(ServiceOrder::kServeThenMove);
  EXPECT_EQ(flipped.params().order, ServiceOrder::kServeThenMove);
  EXPECT_EQ(flipped.params().move_cost_weight, inst.params().move_cost_weight);
  EXPECT_EQ(flipped.horizon(), inst.horizon());
}

TEST(ServiceOrder, ToString) {
  EXPECT_EQ(to_string(ServiceOrder::kMoveThenServe), "move-then-serve");
  EXPECT_EQ(to_string(ServiceOrder::kServeThenMove), "answer-first");
}

TEST(ServiceCost, SumOfDistances) {
  RequestBatch batch;
  batch.requests = {Point{3.0, 0.0}, Point{0.0, 4.0}};
  EXPECT_DOUBLE_EQ(service_cost(Point{0.0, 0.0}, batch), 7.0);
  EXPECT_DOUBLE_EQ(service_cost(Point{0.0, 0.0}, RequestBatch{}), 0.0);
}

TEST(StepCost, MoveThenServeChargesNewPosition) {
  RequestBatch batch;
  batch.requests = {Point{2.0}};
  const StepCost c =
      step_cost(params(3.0, 1.0, ServiceOrder::kMoveThenServe), Point{0.0}, Point{1.0}, batch);
  EXPECT_DOUBLE_EQ(c.move, 3.0);     // D·d(0,1)
  EXPECT_DOUBLE_EQ(c.service, 1.0);  // d(1,2) — from the NEW position
  EXPECT_DOUBLE_EQ(c.total(), 4.0);
}

TEST(StepCost, AnswerFirstChargesOldPosition) {
  RequestBatch batch;
  batch.requests = {Point{2.0}};
  const StepCost c =
      step_cost(params(3.0, 1.0, ServiceOrder::kServeThenMove), Point{0.0}, Point{1.0}, batch);
  EXPECT_DOUBLE_EQ(c.move, 3.0);
  EXPECT_DOUBLE_EQ(c.service, 2.0);  // d(0,2) — from the OLD position
  EXPECT_DOUBLE_EQ(c.total(), 5.0);
}

TEST(TrajectoryCost, MatchesHandComputation) {
  const Instance inst = tiny_instance();  // D=2, requests {1,2} then {-1}
  // Trajectory 0 -> 1 -> 0.
  const std::vector<Point> traj{Point{0.0}, Point{1.0}, Point{0.0}};
  // Step 0: move 2·1, serve |1-1|+|1-2| = 1 → 3. Step 1: move 2·1, serve
  // |0-(-1)| = 1 → 3.
  EXPECT_DOUBLE_EQ(trajectory_cost(inst, traj), 6.0);
}

TEST(TrajectoryCost, AnswerFirstDiffersOnSameTrajectory) {
  const Instance inst = tiny_instance(ServiceOrder::kServeThenMove);
  const std::vector<Point> traj{Point{0.0}, Point{1.0}, Point{0.0}};
  // Step 0: serve from 0: 1+2 = 3, move 2 → 5. Step 1: serve from 1: 2,
  // move 2 → 4.
  EXPECT_DOUBLE_EQ(trajectory_cost(inst, traj), 9.0);
}

TEST(TrajectoryCost, WrongLengthThrows) {
  const Instance inst = tiny_instance();
  const std::vector<Point> too_short{Point{0.0}, Point{1.0}};
  EXPECT_THROW((void)trajectory_cost(inst, too_short), ContractViolation);
}

TEST(FirstSpeedViolation, DetectsViolatingStep) {
  const Instance inst = tiny_instance();  // m = 1
  const std::vector<Point> ok{Point{0.0}, Point{1.0}, Point{0.5}};
  EXPECT_EQ(first_speed_violation(inst, ok), -1);
  const std::vector<Point> bad{Point{0.0}, Point{0.5}, Point{2.0}};
  EXPECT_EQ(first_speed_violation(inst, bad), 1);
}

TEST(FirstSpeedViolation, AugmentedFactorAllowsMore) {
  const Instance inst = tiny_instance();
  const std::vector<Point> traj{Point{0.0}, Point{1.5}, Point{0.0}};
  EXPECT_EQ(first_speed_violation(inst, traj), 0);
  EXPECT_EQ(first_speed_violation(inst, traj, 1.5), -1);
}

TEST(FirstSpeedViolation, WrongStartOrLengthFlagged) {
  const Instance inst = tiny_instance();
  const std::vector<Point> wrong_start{Point{1.0}, Point{1.0}, Point{1.0}};
  EXPECT_EQ(first_speed_violation(inst, wrong_start), 0);
  const std::vector<Point> wrong_len{Point{0.0}};
  EXPECT_EQ(first_speed_violation(inst, wrong_len), 0);
}

}  // namespace
}  // namespace mobsrv::sim
