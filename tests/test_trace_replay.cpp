// Record -> serialize -> deserialize -> replay determinism: the costs of a
// recorded run must reproduce bit-identically through either codec, for
// the paper's algorithm and baselines, on 1-D and 2-D instances — and for
// a seeded randomized strategy.
#include <gtest/gtest.h>

#include "adversary/lower_bounds.hpp"
#include "adversary/workloads.hpp"
#include "algorithms/registry.hpp"
#include "trace/codec.hpp"
#include "trace/replay.hpp"

namespace mobsrv::trace {
namespace {

sim::Instance one_dim_instance() {
  stats::Rng rng(11);
  adv::Theorem1Params p;
  p.horizon = 96;
  return adv::make_theorem1(p, rng).instance;
}

sim::Instance two_dim_instance() {
  stats::Rng rng(12);
  adv::DriftingHotspotParams p;
  p.horizon = 96;
  p.dim = 2;
  return adv::make_drifting_hotspot(p, rng);
}

void expect_replay_identical(const sim::Instance& instance, const std::string& algorithm,
                             std::uint64_t algo_seed) {
  TraceFile file(TraceMeta{"replay-test", "test", 1}, instance);
  file.runs.push_back(record_run(instance, algorithm, algo_seed, 1.5));

  for (const Codec codec : {Codec::kJsonl, Codec::kBinary}) {
    const TraceFile loaded = decode_trace(encode_trace(file, codec), "mem");
    const ReplayReport report = replay(loaded);
    ASSERT_EQ(report.outcomes.size(), 1u);
    const ReplayOutcome& o = report.outcomes.front();
    // Exact equality, not EXPECT_DOUBLE_EQ: the contract is bit-identity.
    EXPECT_EQ(o.replayed_total, o.recorded_total)
        << algorithm << " via " << to_string(codec) << " (total)";
    EXPECT_EQ(o.replayed_move, o.recorded_move)
        << algorithm << " via " << to_string(codec) << " (move)";
    EXPECT_EQ(o.replayed_service, o.recorded_service)
        << algorithm << " via " << to_string(codec) << " (service)";
    EXPECT_TRUE(o.match);
    EXPECT_TRUE(report.all_match());
  }
}

TEST(TraceReplay, MtcReplaysBitIdentically1D) { expect_replay_identical(one_dim_instance(), "MtC", 0); }

TEST(TraceReplay, MtcReplaysBitIdentically2D) { expect_replay_identical(two_dim_instance(), "MtC", 0); }

TEST(TraceReplay, LazyBaselineReplaysBitIdentically1D) {
  expect_replay_identical(one_dim_instance(), "Lazy", 0);
}

TEST(TraceReplay, LazyBaselineReplaysBitIdentically2D) {
  expect_replay_identical(two_dim_instance(), "Lazy", 0);
}

TEST(TraceReplay, SeededRandomizedStrategyReplaysBitIdentically) {
  // CoinFlip is randomized; the recorded algo_seed must fully determine it.
  expect_replay_identical(two_dim_instance(), "CoinFlip", 0xabcdef12345ULL);
}

TEST(TraceReplay, EveryRegisteredAlgorithmReplaysBitIdentically) {
  const sim::Instance instance = two_dim_instance();
  TraceFile file(TraceMeta{"all-algos", "test", 1}, instance);
  for (const std::string& name : alg::algorithm_names())
    file.runs.push_back(record_run(instance, name, 99, 1.5));
  for (const Codec codec : {Codec::kJsonl, Codec::kBinary}) {
    const ReplayReport report = replay(decode_trace(encode_trace(file, codec), "mem"));
    EXPECT_EQ(report.outcomes.size(), alg::algorithm_names().size());
    EXPECT_TRUE(report.all_match()) << to_string(codec);
  }
}

TEST(TraceReplay, MismatchIsDetected) {
  const sim::Instance instance = one_dim_instance();
  TraceFile file(TraceMeta{"tamper", "test", 1}, instance);
  file.runs.push_back(record_run(instance, "MtC", 0, 1.5));
  file.runs.front().total_cost += 1e-9;  // tamper with the recorded cost
  const ReplayReport report = replay(file);
  EXPECT_FALSE(report.all_match());
  EXPECT_FALSE(report.outcomes.front().match);
}

TEST(TraceReplay, RunOnTraceMatchesDirectEngineRun) {
  const sim::Instance instance = two_dim_instance();
  TraceFile file(TraceMeta{"direct", "test", 1}, instance);
  const sim::RunResult direct = run_on_trace(file, "GreedyCenter", 0, 1.25);
  const RecordedRun recorded = record_run(instance, "GreedyCenter", 0, 1.25);
  EXPECT_EQ(direct.total_cost, recorded.total_cost);
  EXPECT_EQ(direct.move_cost, recorded.move_cost);
  EXPECT_EQ(direct.service_cost, recorded.service_cost);
}

TEST(TraceReplay, UnknownAlgorithmInTraceThrows) {
  const sim::Instance instance = one_dim_instance();
  TraceFile file(TraceMeta{"unknown", "test", 1}, instance);
  RecordedRun run;
  run.algorithm = "NoSuchAlgorithm";
  run.positions.assign(instance.horizon() + 1, instance.start());
  file.runs.push_back(run);
  EXPECT_THROW((void)replay(file), ContractViolation);
}

}  // namespace
}  // namespace mobsrv::trace
