// Unit tests for io/json: exact round-trip of doubles and 64-bit
// integers, object/array access, and parse-error reporting — the
// foundations of the JSONL trace codec and the --json bench report.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

#include "common/contracts.hpp"
#include "io/json.hpp"

namespace mobsrv::io {
namespace {

TEST(Json, ScalarDumpForms) {
  EXPECT_EQ(Json().dump(), "null");
  EXPECT_EQ(Json(nullptr).dump(), "null");
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(false).dump(), "false");
  EXPECT_EQ(Json(0).dump(), "0");
  EXPECT_EQ(Json(-42).dump(), "-42");
  EXPECT_EQ(Json(std::uint64_t{18446744073709551615ULL}).dump(), "18446744073709551615");
  EXPECT_EQ(Json(0.5).dump(), "0.5");
  EXPECT_EQ(Json("hi").dump(), "\"hi\"");
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(Json("a\"b\\c\nd\te").dump(), "\"a\\\"b\\\\c\\nd\\te\"");
  EXPECT_EQ(Json(std::string(1, '\x01')).dump(), "\"\\u0001\"");
  // UTF-8 passes through verbatim.
  EXPECT_EQ(Json("héllo").dump(), "\"héllo\"");
}

TEST(Json, DoublesRoundTripBitExactly) {
  const double values[] = {0.1,
                           1.0 / 3.0,
                           1e-300,
                           1e300,
                           3.141592653589793,
                           -0.0,
                           std::numeric_limits<double>::denorm_min(),
                           std::numeric_limits<double>::max(),
                           123456789.123456789};
  for (const double v : values) {
    const Json parsed = Json::parse(Json(v).dump());
    const double back = parsed.as_double();
    EXPECT_EQ(std::memcmp(&v, &back, sizeof v), 0) << "value " << v << " did not round-trip";
  }
}

TEST(Json, NonFiniteDoublesAreRejectedOnDump) {
  EXPECT_THROW((void)Json(std::nan("")).dump(), ContractViolation);
  EXPECT_THROW((void)Json(std::numeric_limits<double>::infinity()).dump(), ContractViolation);
}

TEST(Json, Uint64RoundTripsExactly) {
  // 2^64 - 1 is not representable as a double; it must survive as an int.
  const std::uint64_t big = 18446744073709551615ULL;
  EXPECT_EQ(Json::parse(Json(big).dump()).as_uint64(), big);
  const std::uint64_t seed = 0xfeedfacecafebeefULL;
  EXPECT_EQ(Json::parse(Json(seed).dump()).as_uint64(), seed);
  EXPECT_EQ(Json::parse("-9223372036854775808").as_int64(),
            std::numeric_limits<std::int64_t>::min());
}

TEST(Json, IntegralDoubleComesBackValueEqual) {
  // 1.0 dumps as "1" and reparses as an integer — as_double must still
  // return exactly 1.0 (JSON has a single number type).
  EXPECT_EQ(Json::parse(Json(1.0).dump()).as_double(), 1.0);
  EXPECT_EQ(Json::parse(Json(-3.0).dump()).as_double(), -3.0);
}

TEST(Json, ObjectPreservesInsertionOrder) {
  Json obj = Json::object();
  obj.set("z", 1);
  obj.set("a", 2);
  obj.set("m", 3);
  EXPECT_EQ(obj.dump(), "{\"z\":1,\"a\":2,\"m\":3}");
  obj.set("a", 9);  // replace keeps position
  EXPECT_EQ(obj.dump(), "{\"z\":1,\"a\":9,\"m\":3}");
}

TEST(Json, ObjectAccess) {
  const Json obj = Json::parse("{\"x\": 1, \"y\": [true, null]}");
  EXPECT_EQ(obj.at("x").as_int64(), 1);
  EXPECT_EQ(obj.find("missing"), nullptr);
  EXPECT_THROW((void)obj.at("missing"), JsonError);
  EXPECT_EQ(obj.at("y").as_array().size(), 2u);
  EXPECT_TRUE(obj.at("y").as_array()[0].as_bool());
  EXPECT_TRUE(obj.at("y").as_array()[1].is_null());
}

TEST(Json, NestedRoundTrip) {
  const std::string text =
      "{\"name\":\"trace\",\"seed\":123,\"points\":[[0.1,0.2],[1,2]],\"nested\":{\"a\":[]}}";
  EXPECT_EQ(Json::parse(text).dump(), text);
}

TEST(Json, UnicodeEscapes) {
  EXPECT_EQ(Json::parse("\"\\u0041\"").as_string(), "A");
  EXPECT_EQ(Json::parse("\"\\u00e9\"").as_string(), "é");
  // Surrogate pair: U+1F600.
  EXPECT_EQ(Json::parse("\"\\uD83D\\uDE00\"").as_string(), "😀");
  EXPECT_THROW((void)Json::parse("\"\\uD83D\""), JsonError);  // unpaired
}

TEST(Json, ParseErrorsCarryOffsets) {
  try {
    (void)Json::parse("{\"a\": }");
    FAIL() << "expected JsonError";
  } catch (const JsonError& error) {
    EXPECT_GT(error.offset(), 0u);
    EXPECT_NE(std::string(error.what()).find("byte"), std::string::npos);
  }
  EXPECT_THROW((void)Json::parse(""), JsonError);
  EXPECT_THROW((void)Json::parse("tru"), JsonError);
  EXPECT_THROW((void)Json::parse("[1,2"), JsonError);
  EXPECT_THROW((void)Json::parse("{\"a\":1} trailing"), JsonError);
  EXPECT_THROW((void)Json::parse("\"unterminated"), JsonError);
  EXPECT_THROW((void)Json::parse("1e999999x"), JsonError);
}

TEST(Json, TypeMismatchThrows) {
  const Json v = Json::parse("\"text\"");
  EXPECT_THROW((void)v.as_double(), JsonError);
  EXPECT_THROW((void)v.as_array(), JsonError);
  EXPECT_THROW((void)Json(1.5).as_int64(), JsonError);
  EXPECT_THROW((void)Json(-1).as_uint64(), JsonError);
}

TEST(Json, DeepNestingIsBounded) {
  std::string deep(1000, '[');
  deep += std::string(1000, ']');
  EXPECT_THROW((void)Json::parse(deep), JsonError);
}

TEST(Json, NegativeZeroKeepsSign) {
  const double back = Json::parse("-0").as_double();
  EXPECT_TRUE(std::signbit(back));
}

}  // namespace
}  // namespace mobsrv::io
