// Unit tests for stats/: Welford summaries (incl. parallel merge),
// quantiles, OLS / log-log fits (the growth-exponent machinery every
// experiment's verdict relies on) and bootstrap CIs.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/bootstrap.hpp"
#include "stats/regression.hpp"
#include "stats/rng.hpp"
#include "stats/summary.hpp"

namespace mobsrv::stats {
namespace {

TEST(Summary, EmptyDefaults) {
  const Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stderr_mean(), 0.0);
}

TEST(Summary, SingleValue) {
  Summary s;
  s.add(4.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 4.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 4.0);
  EXPECT_EQ(s.max(), 4.0);
}

TEST(Summary, KnownMoments) {
  Summary s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stderr_mean(), s.stddev() / std::sqrt(8.0), 1e-12);
}

TEST(Summary, MergeMatchesSequential) {
  Rng rng(3);
  Summary whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    whole.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-8);
  EXPECT_EQ(left.min(), whole.min());
  EXPECT_EQ(left.max(), whole.max());
}

TEST(Summary, MergeWithEmptyIsNoop) {
  Summary s;
  s.add(1.0);
  s.add(3.0);
  const double mean = s.mean();
  Summary empty;
  s.merge(empty);
  EXPECT_EQ(s.count(), 2u);
  EXPECT_EQ(s.mean(), mean);
  empty.merge(s);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_EQ(empty.mean(), mean);
}

TEST(Quantile, MedianAndExtremes) {
  const std::vector<double> xs{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(median_of(xs), 3.0);
}

TEST(Quantile, InterpolatesBetweenOrderStats) {
  const std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.75), 7.5);
}

TEST(Quantile, SingleElement) {
  const std::vector<double> xs{7.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.3), 7.0);
}

TEST(Quantile, RejectsBadInput) {
  EXPECT_THROW((void)quantile({}, 0.5), ContractViolation);
  const std::vector<double> xs{1.0};
  EXPECT_THROW((void)quantile(xs, 1.5), ContractViolation);
}

TEST(LinearFit, ExactLine) {
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y{3.0, 5.0, 7.0, 9.0};
  const LinearFit fit = linear_fit(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
  EXPECT_NEAR(fit.slope_stderr, 0.0, 1e-10);
}

TEST(LinearFit, NoisyLineRecoversSlope) {
  Rng rng(4);
  std::vector<double> x, y;
  for (int i = 0; i < 200; ++i) {
    x.push_back(i);
    y.push_back(0.5 * i + 2.0 + rng.normal(0.0, 0.5));
  }
  const LinearFit fit = linear_fit(x, y);
  EXPECT_NEAR(fit.slope, 0.5, 0.01);
  EXPECT_GT(fit.r2, 0.99);
  EXPECT_GT(fit.slope_stderr, 0.0);
}

TEST(LinearFit, RejectsDegenerateInput) {
  const std::vector<double> one{1.0};
  EXPECT_THROW((void)linear_fit(one, one), ContractViolation);
  const std::vector<double> same{2.0, 2.0};
  const std::vector<double> y{1.0, 2.0};
  EXPECT_THROW((void)linear_fit(same, y), ContractViolation);
  const std::vector<double> x2{1.0, 2.0};
  const std::vector<double> y3{1.0, 2.0, 3.0};
  EXPECT_THROW((void)linear_fit(x2, y3), ContractViolation);
}

TEST(LogLogFit, RecoversPowerLawExponent) {
  // y = 3·x^1.5 — the kind of growth law Theorems 1/4 predict.
  std::vector<double> x, y;
  for (const double v : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0}) {
    x.push_back(v);
    y.push_back(3.0 * std::pow(v, 1.5));
  }
  const LinearFit fit = loglog_fit(x, y);
  EXPECT_NEAR(fit.slope, 1.5, 1e-10);
  EXPECT_NEAR(std::exp(fit.intercept), 3.0, 1e-9);
}

TEST(LogLogFit, RejectsNonPositive) {
  const std::vector<double> x{1.0, 2.0};
  const std::vector<double> y{0.0, 1.0};
  EXPECT_THROW((void)loglog_fit(x, y), ContractViolation);
}

TEST(TheilSen, ExactLine) {
  const std::vector<double> x{0.0, 1.0, 2.0, 3.0};
  const std::vector<double> y{1.0, 3.0, 5.0, 7.0};
  EXPECT_NEAR(theil_sen_slope(x, y), 2.0, 1e-12);
}

TEST(TheilSen, RobustToSingleOutlier) {
  std::vector<double> x, y;
  for (int i = 0; i < 20; ++i) {
    x.push_back(i);
    y.push_back(2.0 * i);
  }
  y[19] = 1000.0;  // gross outlier at the end: pulls the OLS slope hard
  EXPECT_NEAR(theil_sen_slope(x, y), 2.0, 0.1);
  // OLS, by contrast, is pulled far off.
  EXPECT_GT(std::abs(linear_fit(x, y).slope - 2.0), 1.0);
}

TEST(TheilSen, RejectsAllEqualX) {
  const std::vector<double> x{1.0, 1.0};
  const std::vector<double> y{1.0, 2.0};
  EXPECT_THROW((void)theil_sen_slope(x, y), ContractViolation);
}

TEST(Bootstrap, CiContainsTrueMeanUsually) {
  Rng data_rng(5);
  int covered = 0;
  for (int rep = 0; rep < 50; ++rep) {
    std::vector<double> xs;
    for (int i = 0; i < 40; ++i) xs.push_back(data_rng.normal(10.0, 2.0));
    Rng boot_rng({6u, static_cast<std::uint64_t>(rep)});
    const Interval ci = bootstrap_mean_ci(xs, 0.95, 400, boot_rng);
    EXPECT_LT(ci.lo, ci.hi + 1e-12);
    if (ci.contains(10.0)) ++covered;
  }
  EXPECT_GE(covered, 40);  // ~95% nominal; generous slack for 50 reps
}

TEST(Bootstrap, SingleSampleDegenerates) {
  Rng rng(7);
  const std::vector<double> xs{3.0};
  const Interval ci = bootstrap_mean_ci(xs, 0.95, 100, rng);
  EXPECT_EQ(ci.lo, 3.0);
  EXPECT_EQ(ci.hi, 3.0);
  EXPECT_EQ(ci.width(), 0.0);
}

TEST(Bootstrap, RejectsBadArguments) {
  Rng rng(8);
  EXPECT_THROW((void)bootstrap_mean_ci({}, 0.95, 100, rng), ContractViolation);
  const std::vector<double> xs{1.0, 2.0};
  EXPECT_THROW((void)bootstrap_mean_ci(xs, 1.0, 100, rng), ContractViolation);
  EXPECT_THROW((void)bootstrap_mean_ci(xs, 0.95, 0, rng), ContractViolation);
}

// Parameterized sweep: log-log fit recovers a range of exponents through the
// exact pipeline the benches use.
class ExponentRecovery : public ::testing::TestWithParam<double> {};

TEST_P(ExponentRecovery, SlopeMatches) {
  const double exponent = GetParam();
  std::vector<double> x, y;
  for (int k = 0; k < 8; ++k) {
    const double v = std::pow(2.0, k);
    x.push_back(v);
    y.push_back(7.0 * std::pow(v, exponent));
  }
  EXPECT_NEAR(loglog_fit(x, y).slope, exponent, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(PaperExponents, ExponentRecovery,
                         ::testing::Values(0.0, 0.5, 1.0, 1.5, -1.0, -1.5));

}  // namespace
}  // namespace mobsrv::stats
