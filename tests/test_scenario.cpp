// Unit tests for scenario/scenario: the declarative JSON format parses with
// kind-appropriate defaults, round-trips through to_json/canonical_text, and
// rejects every malformed document loudly — unknown members, wrong types,
// out-of-range values, missing required members — with the scenario name
// attached. Importer kinds materialise inline and CSV data.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "scenario/scenario.hpp"
#include "trace/trace.hpp"

namespace mobsrv::scenario {
namespace {

namespace fs = std::filesystem;

Scenario parse_text(const std::string& text) { return parse(text, "<test>"); }

/// EXPECT that parsing \p text throws a ScenarioError mentioning \p needle.
void expect_rejected(const std::string& text, const std::string& needle) {
  try {
    (void)parse_text(text);
    FAIL() << "expected rejection mentioning '" << needle << "' for: " << text;
  } catch (const ScenarioError& error) {
    EXPECT_NE(std::string(error.what()).find(needle), std::string::npos)
        << "message '" << error.what() << "' does not mention '" << needle << "'";
  }
}

class ScenarioFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("mobsrv_scenario_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path write_text(const std::string& name, const std::string& text) {
    const fs::path path = dir_ / name;
    std::ofstream out(path);
    out << text;
    return path;
  }

  fs::path dir_;
};

TEST(ScenarioParse, MinimalDocumentFillsGeneratorDefaults) {
  const Scenario sc = parse_text(R"({"v": 1, "name": "lb", "kind": "theorem1"})");
  EXPECT_EQ(sc.name, "lb");
  EXPECT_EQ(sc.kind, "theorem1");
  EXPECT_EQ(sc.seed, 0u);
  EXPECT_DOUBLE_EQ(sc.speed_factor, 1.5);
  EXPECT_FALSE(sc.fleet.has_value());
  // Defaults come from adv::Theorem1Params itself.
  EXPECT_EQ(sc.params.horizon, 1024u);
  EXPECT_DOUBLE_EQ(sc.params.move_cost_weight, 1.0);
  EXPECT_EQ(sc.params.dim, 1);
  EXPECT_EQ(sc.params.x, 0u);
}

TEST(ScenarioParse, OverridesApplyAndNameAttributesErrors) {
  const Scenario sc = parse_text(
      R"({"v": 1, "name": "tuned", "kind": "uniform-noise", "seed": 9,
          "speed_factor": 2.0,
          "params": {"horizon": 64, "dim": 3, "half_width": 2.5}})");
  EXPECT_EQ(sc.seed, 9u);
  EXPECT_DOUBLE_EQ(sc.speed_factor, 2.0);
  EXPECT_EQ(sc.params.horizon, 64u);
  EXPECT_EQ(sc.params.dim, 3);
  EXPECT_DOUBLE_EQ(sc.params.half_width, 2.5);

  // Once the name is known, it shows up in every later error message.
  expect_rejected(R"({"v": 1, "name": "tuned", "kind": "uniform-noise",
                      "params": {"horizon": 0}})",
                  "scenario \"tuned\"");
}

TEST(ScenarioParse, MissingRequiredMembersFail) {
  expect_rejected(R"({"name": "x", "kind": "theorem1"})", "missing required member \"v\"");
  expect_rejected(R"({"v": 1, "kind": "theorem1"})", "missing required member \"name\"");
  expect_rejected(R"({"v": 1, "name": "x"})", "missing required member \"kind\"");
}

TEST(ScenarioParse, WrongVersionFails) {
  expect_rejected(R"({"v": 2, "name": "x", "kind": "theorem1"})", "unsupported format version");
  expect_rejected(R"({"v": 1.5, "name": "x", "kind": "theorem1"})", "unsupported format version");
  expect_rejected(R"({"v": "1", "name": "x", "kind": "theorem1"})", "unsupported format version");
}

TEST(ScenarioParse, UnknownTopLevelMemberFails) {
  expect_rejected(R"({"v": 1, "name": "x", "kind": "theorem1", "sede": 3})",
                  "unknown member \"sede\"");
}

TEST(ScenarioParse, UnknownParamMemberFailsAndListsAllowed) {
  // The classic typo: "hroizon" must never silently run the default horizon.
  expect_rejected(R"({"v": 1, "name": "x", "kind": "theorem1", "params": {"hroizon": 64}})",
                  "unknown member \"hroizon\"");
  expect_rejected(R"({"v": 1, "name": "x", "kind": "theorem1", "params": {"hroizon": 64}})",
                  "allowed: horizon");
  // Parameters of a *different* kind are unknown members here.
  expect_rejected(R"({"v": 1, "name": "x", "kind": "uniform-noise", "params": {"delta": 0.5}})",
                  "unknown member \"delta\"");
}

TEST(ScenarioParse, Theorem3RejectsTheoremOneOnlyKnob) {
  expect_rejected(R"({"v": 1, "name": "x", "kind": "theorem3", "params": {"x": 4}})",
                  "unknown member \"x\"");
}

TEST(ScenarioParse, UnknownKindFailsAndListsKinds) {
  expect_rejected(R"({"v": 1, "name": "x", "kind": "theorem9"})", "unknown kind \"theorem9\"");
  expect_rejected(R"({"v": 1, "name": "x", "kind": "theorem9"})", "known kinds: theorem1");
}

TEST(ScenarioParse, WrongTypesFail) {
  expect_rejected(R"([1, 2, 3])", "must be a JSON object");
  expect_rejected(R"({"v": 1, "name": 7, "kind": "theorem1"})", "\"name\" must be a string");
  expect_rejected(R"({"v": 1, "name": "x", "kind": "theorem1", "seed": "abc"})",
                  "\"seed\" must be a number");
  expect_rejected(R"({"v": 1, "name": "x", "kind": "theorem1", "seed": -1})",
                  "\"seed\" must be a non-negative integer");
  expect_rejected(R"({"v": 1, "name": "x", "kind": "theorem1", "params": [1]})",
                  "\"params\" must be an object");
  expect_rejected(R"({"v": 1, "name": "x", "kind": "theorem1", "params": {"horizon": "64"}})",
                  "\"horizon\" must be a number");
  expect_rejected(R"({"v": 1, "name": "x", "kind": "theorem1", "params": {"horizon": 64.5}})",
                  "\"horizon\" must be a non-negative integer");
  expect_rejected(R"({"v": 1, "name": "x", "kind": "demand", "params": {"steps": 3}})",
                  "\"steps\" must be an array");
  expect_rejected(R"({"v": 1, "name": "x", "kind": "demand",
                      "params": {"order": "sideways", "steps": [[[0]]]}})",
                  "\"order\" must be");
}

TEST(ScenarioParse, OutOfRangeValuesFail) {
  expect_rejected(R"({"v": 1, "name": "x", "kind": "theorem1", "speed_factor": 0.5})",
                  "\"speed_factor\" must be >= 1");
  expect_rejected(R"({"v": 1, "name": "x", "kind": "theorem1", "params": {"horizon": 0}})",
                  "\"horizon\" must be >= 1");
  expect_rejected(R"({"v": 1, "name": "x", "kind": "theorem1", "params": {"horizon": 4194305}})",
                  "exceeds the limit");
  expect_rejected(R"({"v": 1, "name": "x", "kind": "theorem1", "params": {"dim": 0}})", "\"dim\"");
  expect_rejected(R"({"v": 1, "name": "x", "kind": "theorem1", "params": {"dim": 9}})",
                  "\"dim\" must be in [1, 8]");
  expect_rejected(R"({"v": 1, "name": "x", "kind": "theorem1", "params": {"m": 0}})",
                  "\"m\" must be > 0");
  expect_rejected(R"({"v": 1, "name": "x", "kind": "theorem1", "params": {"d": 0.5}})",
                  "\"d\" must be >= 1");
  expect_rejected(R"({"v": 1, "name": "x", "kind": "theorem2",
                      "params": {"r_min": 4, "r_max": 2}})",
                  "\"r_max\" must be >= \"r_min\"");
  expect_rejected(R"({"v": 1, "name": "x", "kind": "bursts",
                      "params": {"burst_probability": 1.5}})",
                  "\"burst_probability\" must be in [0, 1]");
  expect_rejected(R"({"v": 1, "name": "x", "kind": "random-waypoint",
                      "params": {"min_speed_fraction": 0}})",
                  "\"min_speed_fraction\" must be in (0, 1]");
  expect_rejected(R"({"v": 1, "name": "x", "kind": "theorem8-moving-client",
                      "params": {"epsilon": 0}})",
                  "\"epsilon\" must be > 0");
}

TEST(ScenarioParse, NonFiniteNumbersFail) {
  expect_rejected(R"({"v": 1, "name": "x", "kind": "uniform-noise",
                      "params": {"half_width": 1e999}})",
                  "");  // the JSON layer itself rejects the overflow
}

TEST(ScenarioParse, BadNameCharsetFails) {
  expect_rejected(R"({"v": 1, "name": "has space", "kind": "theorem1"})",
                  "\"name\" must use only");
  expect_rejected(R"({"v": 1, "name": "", "kind": "theorem1"})", "\"name\" must not be empty");
}

TEST(ScenarioParse, FleetSpecValidated) {
  const Scenario sc = parse_text(
      R"({"v": 1, "name": "x", "kind": "uniform-noise", "fleet": {"size": 4, "spread": 3.0}})");
  ASSERT_TRUE(sc.fleet.has_value());
  EXPECT_EQ(sc.fleet->size, 4u);
  EXPECT_DOUBLE_EQ(sc.fleet->spread, 3.0);

  expect_rejected(R"({"v": 1, "name": "x", "kind": "uniform-noise", "fleet": {"size": 0}})",
                  "\"size\" must be >= 1");
  expect_rejected(R"({"v": 1, "name": "x", "kind": "uniform-noise", "fleet": {"size": 4097}})",
                  "\"size\" must be in [1, 4096]");
  expect_rejected(R"({"v": 1, "name": "x", "kind": "uniform-noise", "fleet": {"spread": 0}})",
                  "\"spread\" must be > 0");
  expect_rejected(R"({"v": 1, "name": "x", "kind": "uniform-noise", "fleet": {"sise": 2}})",
                  "unknown member \"sise\"");
}

TEST(ScenarioParse, DemandRequiresExactlyOneOfFileAndSteps) {
  expect_rejected(R"({"v": 1, "name": "x", "kind": "demand", "params": {}})",
                  "exactly one of \"file\" and \"steps\"");
  expect_rejected(R"({"v": 1, "name": "x", "kind": "demand",
                      "params": {"file": "a.csv", "steps": [[[0]]]}})",
                  "exactly one of \"file\" and \"steps\"");
}

TEST(ScenarioParse, InlineStepsValidateDimensions) {
  expect_rejected(R"({"v": 1, "name": "x", "kind": "demand",
                      "params": {"steps": [[[0, 0]], [[1]]]}})",
                  "inconsistent dimension");
  expect_rejected(R"({"v": 1, "name": "x", "kind": "demand",
                      "params": {"start": [0], "steps": [[[1, 2]]]}})",
                  "inconsistent dimension");
  expect_rejected(R"({"v": 1, "name": "x", "kind": "demand", "params": {"steps": [[], []]}})",
                  "cannot infer the dimension");
  expect_rejected(R"({"v": 1, "name": "x", "kind": "demand", "params": {"steps": []}})",
                  "at least one step");
  expect_rejected(R"({"v": 1, "name": "x", "kind": "demand",
                      "params": {"steps": [[[1, 2, 3, 4, 5, 6, 7, 8, 9]]]}})",
                  "1-8 coordinates");
}

TEST(ScenarioParse, InlineDemandMaterializes) {
  const Scenario sc = parse_text(
      R"({"v": 1, "name": "inline", "kind": "demand",
          "params": {"d": 3.0, "order": "serve-then-move",
                     "steps": [[], [[1.0, 2.0]], [[3.0, 4.0], [5.0, 6.0]]]}})");
  const trace::TraceFile file = materialize(sc);
  EXPECT_EQ(file.meta.name, "inline");
  EXPECT_EQ(file.meta.source, "scenario");
  EXPECT_EQ(file.instance.horizon(), 3u);
  // No explicit start: the first request becomes the start.
  EXPECT_EQ(file.instance.start().dim(), 2);
  EXPECT_DOUBLE_EQ(file.instance.start()[0], 1.0);
  EXPECT_DOUBLE_EQ(file.instance.start()[1], 2.0);
  EXPECT_DOUBLE_EQ(file.instance.params().move_cost_weight, 3.0);
  EXPECT_EQ(file.instance.params().order, sim::ServiceOrder::kServeThenMove);
  EXPECT_TRUE(file.instance.step(0).empty());
  EXPECT_EQ(file.instance.step(2).size(), 2u);
}

TEST_F(ScenarioFileTest, CsvDemandMaterializesRelativeToBaseDir) {
  fs::create_directories(dir_ / "data");
  write_text("data/demand.csv", "0 1.5 2.5\n1 2.0 3.0\n3 4.0 5.0\n");
  const Scenario sc = parse_text(
      R"({"v": 1, "name": "csv-demand", "kind": "demand",
          "seed": 5, "params": {"d": 2.0, "file": "data/demand.csv"}})");
  const trace::TraceFile file = materialize(sc, dir_);
  // The importer's "import:" meta is overwritten with the scenario's own.
  EXPECT_EQ(file.meta.name, "csv-demand");
  EXPECT_EQ(file.meta.source, "scenario");
  EXPECT_EQ(file.meta.seed, 5u);
  EXPECT_EQ(file.instance.horizon(), 4u);  // rounds 0..3
  EXPECT_DOUBLE_EQ(file.instance.params().move_cost_weight, 2.0);
}

TEST_F(ScenarioFileTest, CsvWaypointsMaterializeRelativeToBaseDir) {
  fs::create_directories(dir_ / "data");
  write_text("data/agents.csv",
             "0 0 0.0 0.0\n0 16 8.0 0.0\n"
             "1 0 4.0 4.0\n1 16 4.0 -4.0\n");
  const Scenario sc = parse_text(
      R"({"v": 1, "name": "csv-agents", "kind": "waypoints",
          "params": {"d": 2.0, "agent_speed": 1.25, "file": "data/agents.csv"}})");
  const trace::TraceFile file = materialize(sc, dir_);
  EXPECT_EQ(file.meta.name, "csv-agents");
  EXPECT_EQ(file.meta.source, "scenario");
  ASSERT_TRUE(file.moving_client.has_value());
  EXPECT_EQ(file.moving_client->agents.size(), 2u);
  EXPECT_DOUBLE_EQ(file.moving_client->agent_speed, 1.25);
  EXPECT_EQ(file.instance.horizon(), 16u);
}

TEST_F(ScenarioFileTest, MissingCsvFailsAtMaterializeTime) {
  const Scenario sc = parse_text(
      R"({"v": 1, "name": "x", "kind": "demand", "params": {"file": "no/such.csv"}})");
  EXPECT_THROW((void)materialize(sc, dir_), std::exception);
}

TEST_F(ScenarioFileTest, LoadReadsFilesAndFailsOnMissingOnes) {
  const fs::path path =
      write_text("ok.json", R"({"v": 1, "name": "ok", "kind": "zigzag"})" "\n");
  const Scenario sc = load(path);
  EXPECT_EQ(sc.name, "ok");
  EXPECT_THROW((void)load(dir_ / "absent.json"), ScenarioError);

  // A syntax error carries the file path as context.
  const fs::path bad = write_text("bad.json", "{\"v\": 1,,}");
  try {
    (void)load(bad);
    FAIL() << "expected a parse failure";
  } catch (const ScenarioError& error) {
    EXPECT_NE(std::string(error.what()).find("bad.json"), std::string::npos);
  }
}

TEST_F(ScenarioFileTest, ListScenarioFilesSortsAndRejectsEmptyDirs) {
  EXPECT_THROW((void)list_scenario_files(dir_ / "absent"), ScenarioError);
  EXPECT_THROW((void)list_scenario_files(dir_), ScenarioError);  // no *.json yet
  write_text("b.json", "{}");
  write_text("a.json", "{}");
  write_text("notes.txt", "ignored");
  const std::vector<fs::path> files = list_scenario_files(dir_);
  ASSERT_EQ(files.size(), 2u);
  EXPECT_EQ(files[0].filename(), "a.json");
  EXPECT_EQ(files[1].filename(), "b.json");
}

TEST(ScenarioRoundTrip, EveryStarterScenarioSurvivesToJsonAndBack) {
  for (const Scenario& sc : starter_corpus()) {
    const std::string text = canonical_text(sc);
    const Scenario back = parse(text, "<round-trip>");
    EXPECT_EQ(back.name, sc.name);
    EXPECT_EQ(back.kind, sc.kind);
    EXPECT_EQ(back.seed, sc.seed);
    EXPECT_EQ(back.fleet.has_value(), sc.fleet.has_value());
    // Canonical form is a fixed point: parse(canonical_text(s)) re-emits the
    // same bytes.
    EXPECT_EQ(canonical_text(back), text) << sc.name;
  }
}

TEST(ScenarioRoundTrip, MaterializeIsDeterministic) {
  const Scenario sc = parse_text(
      R"({"v": 1, "name": "det", "kind": "uniform-noise", "seed": 3,
          "params": {"horizon": 64}})");
  const trace::TraceFile a = materialize(sc);
  const trace::TraceFile b = materialize(sc);
  EXPECT_TRUE(trace::identical(a.instance, b.instance));

  // A different seed steers the generator elsewhere.
  Scenario other = sc;
  other.seed = 4;
  EXPECT_FALSE(trace::identical(a.instance, materialize(other).instance));
}

}  // namespace
}  // namespace mobsrv::scenario
