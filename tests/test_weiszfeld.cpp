// Unit tests for median/weiszfeld.hpp: convergence to the Fermat–Weber
// point, the Vardi–Zhang anchor rule, weights, and agreement with brute
// force — the numerical core that MtC's center computation stands on.
#include "median/weiszfeld.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "median/geometric_median.hpp"
#include "stats/rng.hpp"

namespace mobsrv::med {
namespace {

using geo::Point;

TEST(SumDistances, KnownValue) {
  const std::vector<Point> pts{{0.0, 0.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(sum_distances(Point{0.0, 0.0}, pts), 5.0);
  const std::vector<double> w{2.0, 1.0};
  EXPECT_DOUBLE_EQ(sum_distances(Point{3.0, 4.0}, pts, w), 10.0);
}

TEST(Centroid, EqualWeights) {
  const std::vector<Point> pts{{0.0, 0.0}, {2.0, 0.0}, {1.0, 3.0}};
  const Point c = centroid(pts);
  EXPECT_NEAR(c[0], 1.0, 1e-12);
  EXPECT_NEAR(c[1], 1.0, 1e-12);
}

TEST(Centroid, WeightsShift) {
  const std::vector<Point> pts{{0.0}, {10.0}};
  const std::vector<double> w{3.0, 1.0};
  EXPECT_NEAR(centroid(pts, w)[0], 2.5, 1e-12);
}

TEST(Weiszfeld, SinglePointIsItsOwnMedian) {
  const std::vector<Point> pts{{2.0, -1.0}};
  const WeiszfeldResult r = weiszfeld(pts);
  EXPECT_NEAR(geo::distance(r.median, pts[0]), 0.0, 1e-9);
  EXPECT_NEAR(r.objective, 0.0, 1e-9);
  EXPECT_TRUE(r.converged);
}

TEST(Weiszfeld, EquilateralTriangleCenter) {
  // For an equilateral triangle the Fermat point is the centroid.
  const std::vector<Point> pts{
      {0.0, 0.0}, {1.0, 0.0}, {0.5, std::sqrt(3.0) / 2.0}};
  const WeiszfeldResult r = weiszfeld(pts);
  const Point c = centroid(pts);
  EXPECT_NEAR(geo::distance(r.median, c), 0.0, 1e-7);
}

TEST(Weiszfeld, ObtuseTriangleMedianIsObtuseVertex) {
  // If one vertex angle is >= 120°, the Fermat point IS that vertex — the
  // case the plain Weiszfeld iteration famously mishandles without the
  // Vardi–Zhang rule.
  const std::vector<Point> pts{{0.0, 0.0}, {10.0, 0.1}, {-10.0, 0.1}};
  const WeiszfeldResult r = weiszfeld(pts);
  EXPECT_NEAR(geo::distance(r.median, pts[0]), 0.0, 1e-6);
  EXPECT_TRUE(r.converged);
}

TEST(Weiszfeld, StartingExactlyOnNonOptimalDataPointEscapes) {
  const std::vector<Point> pts{{0.0, 0.0}, {10.0, 0.0}, {10.0, 1.0}, {10.0, -1.0}};
  // The optimum is near (10, 0); start the iteration exactly on (0,0).
  const WeiszfeldResult r = weiszfeld(pts, {}, Point{0.0, 0.0});
  EXPECT_LT(geo::distance(r.median, Point{10.0, 0.0}), 0.1);
}

TEST(Weiszfeld, DominantWeightPinsMedianToPoint) {
  // With weight(v0) > sum of the rest, v0 is the exact median (Vardi–Zhang
  // optimality test at the anchor).
  const std::vector<Point> pts{{1.0, 1.0}, {5.0, 5.0}, {-3.0, 2.0}};
  const std::vector<double> w{10.0, 1.0, 1.0};
  const WeiszfeldResult r = weiszfeld(pts, w, pts[0]);
  EXPECT_NEAR(geo::distance(r.median, pts[0]), 0.0, 1e-9);
  EXPECT_TRUE(r.converged);
}

TEST(Weiszfeld, AllPointsCoincide) {
  const std::vector<Point> pts{{2.0, 2.0}, {2.0, 2.0}, {2.0, 2.0}};
  const WeiszfeldResult r = weiszfeld(pts);
  EXPECT_NEAR(geo::distance(r.median, pts[0]), 0.0, 1e-9);
}

TEST(Weiszfeld, FourCornersOfSquare) {
  // Symmetric configuration: median is the center.
  const std::vector<Point> pts{{0.0, 0.0}, {2.0, 0.0}, {0.0, 2.0}, {2.0, 2.0}};
  const WeiszfeldResult r = weiszfeld(pts);
  EXPECT_NEAR(geo::distance(r.median, Point{1.0, 1.0}), 0.0, 1e-7);
}

TEST(Weiszfeld, RespectsMaxIterations) {
  const std::vector<Point> pts{{0.0, 0.0}, {1.0, 0.0}, {0.5, 0.9}};
  WeiszfeldOptions opt;
  opt.max_iterations = 2;
  const WeiszfeldResult r = weiszfeld(pts, {}, opt);
  EXPECT_LE(r.iterations, 2);
}

TEST(Weiszfeld, RejectsBadInput) {
  EXPECT_THROW((void)weiszfeld({}), mobsrv::ContractViolation);
  const std::vector<Point> mixed{{0.0, 0.0}, {1.0}};
  EXPECT_THROW((void)weiszfeld(mixed), mobsrv::ContractViolation);
  const std::vector<Point> pts{{0.0}, {1.0}};
  const std::vector<double> bad_w{1.0, -1.0};
  EXPECT_THROW((void)weiszfeld(pts, bad_w), mobsrv::ContractViolation);
}

// Property: Weiszfeld's objective never exceeds brute force by more than
// the grid accuracy, across dimensions and batch sizes.
class WeiszfeldVsBruteForce : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(WeiszfeldVsBruteForce, ObjectiveMatches) {
  const auto [dim, r] = GetParam();
  stats::Rng rng({stats::hash_name("weiszfeld-vs-bf"), static_cast<std::uint64_t>(dim),
                  static_cast<std::uint64_t>(r)});
  for (int rep = 0; rep < 10; ++rep) {
    std::vector<Point> pts;
    for (int i = 0; i < r; ++i) {
      Point p(dim);
      for (int d = 0; d < dim; ++d) p[d] = rng.uniform(-5.0, 5.0);
      pts.push_back(p);
    }
    const WeiszfeldResult w = weiszfeld(pts);
    const Point bf = brute_force_median(pts, {}, 12, 10);
    const double bf_obj = sum_distances(bf, pts);
    // Weiszfeld must be at least as good as the grid search (up to tiny
    // numerical slack).
    EXPECT_LE(w.objective, bf_obj + 1e-6 * (1.0 + bf_obj));
  }
}

INSTANTIATE_TEST_SUITE_P(DimsAndSizes, WeiszfeldVsBruteForce,
                         ::testing::Combine(::testing::Values(1, 2, 3),
                                            ::testing::Values(2, 3, 5, 9)));

}  // namespace
}  // namespace mobsrv::med
