// Unit tests for geometry/segment.hpp and geometry/aabb.hpp: closest-point
// queries (MtC's tie-break primitive), collinearity detection, and the
// bounding boxes the offline solvers rely on.
#include "geometry/aabb.hpp"
#include "geometry/segment.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace mobsrv::geo {
namespace {

TEST(Segment, LengthAndAt) {
  const Segment s{{0.0, 0.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(s.length(), 5.0);
  EXPECT_EQ(s.at(0.0), s.a);
  EXPECT_EQ(s.at(1.0), s.b);
  EXPECT_EQ(s.at(-0.5), s.a);  // clamped
  EXPECT_EQ(s.at(2.0), s.b);   // clamped
  EXPECT_NEAR(distance(s.at(0.5), Point{1.5, 2.0}), 0.0, 1e-12);
}

TEST(ClosestPointOnSegment, ProjectionInside) {
  const Segment s{{0.0, 0.0}, {10.0, 0.0}};
  const Point q{4.0, 3.0};
  const Point c = closest_point_on_segment(s, q);
  EXPECT_NEAR(c[0], 4.0, 1e-12);
  EXPECT_NEAR(c[1], 0.0, 1e-12);
  EXPECT_NEAR(distance_to_segment(s, q), 3.0, 1e-12);
}

TEST(ClosestPointOnSegment, ClampsToEndpoints) {
  const Segment s{{0.0, 0.0}, {10.0, 0.0}};
  EXPECT_EQ(closest_point_on_segment(s, Point{-5.0, 2.0}), s.a);
  EXPECT_EQ(closest_point_on_segment(s, Point{15.0, -2.0}), s.b);
}

TEST(ClosestPointOnSegment, DegenerateSegment) {
  const Segment s{{1.0, 1.0}, {1.0, 1.0}};
  EXPECT_EQ(closest_point_on_segment(s, Point{9.0, 9.0}), s.a);
  EXPECT_DOUBLE_EQ(distance_to_segment(s, Point{1.0, 2.0}), 1.0);
}

TEST(ClosestPointOnSegment, PointOnSegmentIsItself) {
  const Segment s{{0.0, 0.0}, {10.0, 10.0}};
  const Point q{3.0, 3.0};
  EXPECT_NEAR(distance(closest_point_on_segment(s, q), q), 0.0, 1e-12);
}

TEST(Collinear, TwoPointsAlwaysCollinear) {
  const std::vector<Point> pts{{0.0, 0.0}, {5.0, 7.0}};
  EXPECT_TRUE(collinear(pts.data(), 2));
}

TEST(Collinear, PointsOnLineDetected) {
  const std::vector<Point> pts{{0.0, 0.0}, {1.0, 2.0}, {2.0, 4.0}, {-3.0, -6.0}};
  EXPECT_TRUE(collinear(pts.data(), static_cast<int>(pts.size())));
}

TEST(Collinear, OffLinePointDetected) {
  const std::vector<Point> pts{{0.0, 0.0}, {1.0, 2.0}, {2.0, 4.1}};
  EXPECT_FALSE(collinear(pts.data(), static_cast<int>(pts.size())));
}

TEST(Collinear, CoincidentPointsAreCollinear) {
  const std::vector<Point> pts{{1.0, 1.0}, {1.0, 1.0}, {1.0, 1.0}};
  EXPECT_TRUE(collinear(pts.data(), static_cast<int>(pts.size())));
}

TEST(Collinear, OneDimensionalAlwaysCollinear) {
  const std::vector<Point> pts{{0.0}, {3.0}, {-7.0}, {2.5}};
  EXPECT_TRUE(collinear(pts.data(), static_cast<int>(pts.size())));
}

TEST(Collinear, ToleranceScalesWithSpread) {
  // Deviation tiny relative to a huge spread: still collinear.
  const std::vector<Point> pts{{0.0, 0.0}, {1e6, 1e-4}, {2e6, 0.0}};
  EXPECT_TRUE(collinear(pts.data(), static_cast<int>(pts.size()), 1e-9));
}

TEST(CollinearDirection, UnitAlongLine) {
  const std::vector<Point> pts{{0.0, 0.0}, {3.0, 4.0}, {6.0, 8.0}};
  const Point u = collinear_direction(pts.data(), static_cast<int>(pts.size()));
  EXPECT_NEAR(std::abs(u.dot(Point{0.6, 0.8})), 1.0, 1e-12);
}

TEST(CollinearDirection, AllCoincidentGivesZero) {
  const std::vector<Point> pts{{2.0, 2.0}, {2.0, 2.0}};
  EXPECT_EQ(collinear_direction(pts.data(), 2).norm(), 0.0);
}

TEST(Aabb, StartsEmpty) {
  Aabb box;
  EXPECT_TRUE(box.empty());
  box.extend(Point{1.0, 2.0});
  EXPECT_FALSE(box.empty());
  EXPECT_EQ(box.lo(), box.hi());
}

TEST(Aabb, ExtendGrowsBox) {
  Aabb box;
  box.extend(Point{0.0, 0.0});
  box.extend(Point{2.0, -1.0});
  box.extend(Point{-1.0, 3.0});
  EXPECT_EQ(box.lo(), (Point{-1.0, -1.0}));
  EXPECT_EQ(box.hi(), (Point{2.0, 3.0}));
  EXPECT_DOUBLE_EQ(box.extent(), 4.0);
  EXPECT_EQ(box.center(), (Point{0.5, 1.0}));
}

TEST(Aabb, ContainsAndClamp) {
  Aabb box;
  box.extend(Point{0.0, 0.0});
  box.extend(Point{10.0, 10.0});
  EXPECT_TRUE(box.contains(Point{5.0, 5.0}));
  EXPECT_FALSE(box.contains(Point{11.0, 5.0}));
  EXPECT_TRUE(box.contains(Point{10.0 + 1e-12, 5.0}, 1e-9));
  EXPECT_EQ(box.clamp(Point{-5.0, 20.0}), (Point{0.0, 10.0}));
  EXPECT_EQ(box.clamp(Point{3.0, 4.0}), (Point{3.0, 4.0}));
}

TEST(Aabb, InflateAddsMargin) {
  Aabb box;
  box.extend(Point{0.0});
  box.inflate(2.0);
  EXPECT_EQ(box.lo(), Point{-2.0});
  EXPECT_EQ(box.hi(), Point{2.0});
}

TEST(Aabb, OfPointSet) {
  const Aabb box = Aabb::of({{1.0}, {5.0}, {-2.0}});
  EXPECT_EQ(box.lo(), Point{-2.0});
  EXPECT_EQ(box.hi(), Point{5.0});
  EXPECT_THROW((void)Aabb::of({}), ContractViolation);
}

TEST(Aabb, DimensionMismatchThrows) {
  Aabb box;
  box.extend(Point{0.0, 0.0});
  EXPECT_THROW(box.extend(Point{1.0}), ContractViolation);
}

}  // namespace
}  // namespace mobsrv::geo
