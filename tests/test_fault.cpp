/// \file test_fault.cpp
/// The fault-injection subsystem: deterministic scheduling, plan parsing.
///
/// The injector is torture machinery, so its own guarantees are the ones
/// everything downstream leans on: a disabled site costs nothing and does
/// nothing, triggers fire exactly where the plan says, probabilistic rules
/// replay bit-identically under one seed, and a malformed plan is rejected
/// loudly with the offending rule named (a typo'd plan that silently tests
/// nothing is the failure mode a torture harness cannot afford).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "fault/injector.hpp"
#include "fault/plan.hpp"

namespace mobsrv::fault {
namespace {

TEST(FaultInjector, KnownSitesCoverTheWiredHooks) {
  const std::vector<std::string>& sites = known_sites();
  ASSERT_EQ(sites.size(), 7u);
  for (const char* site : {kSiteSnapshotBaseWrite, kSiteSnapshotDeltaAppend, kSiteSnapshotRename,
                           kSiteSnapshotFsync, kSiteMetricsWrite, kSiteServeRead, kSiteTenantStep})
    EXPECT_NE(std::find(sites.begin(), sites.end(), site), sites.end()) << site;
}

TEST(FaultInjector, UnregisteredSiteIsANoOp) {
  Injector injector(7);
  EXPECT_TRUE(injector.empty());
  for (int i = 0; i < 100; ++i) EXPECT_NO_THROW(injector.hit(kSiteServeRead));
  EXPECT_EQ(injector.total_fired(), 0u);
  EXPECT_EQ(injector.stats(kSiteServeRead).hits, 0u);  // never even counted
}

TEST(FaultInjector, NthFiresOnExactlyTheNthHit) {
  Injector injector(0);
  SiteRule rule;
  rule.site = kSiteSnapshotRename;
  rule.nth = 3;
  injector.add_rule(rule);
  EXPECT_NO_THROW(injector.hit(kSiteSnapshotRename));
  EXPECT_NO_THROW(injector.hit(kSiteSnapshotRename));
  EXPECT_THROW(injector.hit(kSiteSnapshotRename), FaultError);
  for (int i = 0; i < 10; ++i) EXPECT_NO_THROW(injector.hit(kSiteSnapshotRename));
  EXPECT_EQ(injector.stats(kSiteSnapshotRename).hits, 13u);
  EXPECT_EQ(injector.stats(kSiteSnapshotRename).fired, 1u);
}

TEST(FaultInjector, EveryWithCountFiresThenSpends) {
  // {every: 1, count: 3} — "fail the first 3 appends, then recover": the
  // retry/degraded state-machine tests drive the service with exactly this.
  Injector injector(0);
  SiteRule rule;
  rule.site = kSiteSnapshotDeltaAppend;
  rule.every = 1;
  rule.count = 3;
  injector.add_rule(rule);
  for (int i = 0; i < 3; ++i) EXPECT_THROW(injector.hit(kSiteSnapshotDeltaAppend), FaultError);
  for (int i = 0; i < 20; ++i) EXPECT_NO_THROW(injector.hit(kSiteSnapshotDeltaAppend));
  EXPECT_EQ(injector.stats(kSiteSnapshotDeltaAppend).fired, 3u);
  EXPECT_EQ(injector.total_fired(), 3u);
}

TEST(FaultInjector, EveryNFiresOnMultiples) {
  Injector injector(0);
  SiteRule rule;
  rule.site = kSiteMetricsWrite;
  rule.every = 4;
  injector.add_rule(rule);
  std::vector<std::size_t> fired_on;
  for (std::size_t i = 1; i <= 12; ++i) {
    try {
      injector.hit(kSiteMetricsWrite);
    } catch (const FaultError&) {
      fired_on.push_back(i);
    }
  }
  EXPECT_EQ(fired_on, (std::vector<std::size_t>{4, 8, 12}));
}

TEST(FaultInjector, ProbabilityIsSeededAndReplaysBitIdentically) {
  auto pattern = [](std::uint64_t seed) {
    Injector injector(seed);
    SiteRule rule;
    rule.site = kSiteServeRead;
    rule.probability = 0.25;
    injector.add_rule(rule);
    std::string fired;
    for (int i = 0; i < 256; ++i) {
      try {
        injector.hit(kSiteServeRead);
        fired += '.';
      } catch (const FaultError&) {
        fired += 'X';
      }
    }
    return fired;
  };
  const std::string a = pattern(42);
  EXPECT_EQ(a, pattern(42));  // the whole point: a plan replays exactly
  const auto fired = static_cast<std::size_t>(std::count(a.begin(), a.end(), 'X'));
  EXPECT_GT(fired, 256u / 4 / 3);  // sane coin: within a loose band of p=0.25
  EXPECT_LT(fired, 256u * 3 / 4);
  EXPECT_NE(a, pattern(43));  // and the seed matters
}

TEST(FaultInjector, DelayOutcomeReturnsNormally) {
  Injector injector(0);
  SiteRule rule;
  rule.site = kSiteTenantStep;
  rule.every = 1;
  rule.delay_us = 1;
  rule.outcome = Outcome::kDelay;
  injector.add_rule(rule);
  for (int i = 0; i < 3; ++i) EXPECT_NO_THROW(injector.hit(kSiteTenantStep));
  EXPECT_EQ(injector.stats(kSiteTenantStep).fired, 3u);
}

TEST(FaultInjector, RulesOnDifferentSitesAreIndependent) {
  Injector injector(0);
  SiteRule a;
  a.site = kSiteSnapshotBaseWrite;
  a.nth = 1;
  injector.add_rule(a);
  SiteRule b;
  b.site = kSiteSnapshotFsync;
  b.nth = 2;
  injector.add_rule(b);
  EXPECT_THROW(injector.hit(kSiteSnapshotBaseWrite), FaultError);
  EXPECT_NO_THROW(injector.hit(kSiteSnapshotFsync));  // its own hit counter
  EXPECT_THROW(injector.hit(kSiteSnapshotFsync), FaultError);
}

// ---------------------------------------------------------------------------
// --fault-plan parsing

TEST(FaultPlan, ParsesAFullPlan) {
  const FaultPlan plan = parse_plan(
      R"({"v": 1, "seed": 7, "faults": [
           {"site": "snapshot.delta_append", "every": 1, "count": 3},
           {"site": "snapshot.rename", "nth": 2, "outcome": "crash"},
           {"site": "serve.read", "probability": 0.01, "delay_us": 250, "outcome": "delay"}]})",
      "test");
  EXPECT_EQ(plan.seed, 7u);
  ASSERT_EQ(plan.rules.size(), 3u);
  EXPECT_EQ(plan.rules[0].site, kSiteSnapshotDeltaAppend);
  EXPECT_EQ(plan.rules[0].every, 1u);
  EXPECT_EQ(plan.rules[0].count, 3u);
  EXPECT_EQ(plan.rules[0].outcome, Outcome::kFail);
  EXPECT_EQ(plan.rules[1].nth, 2u);
  EXPECT_EQ(plan.rules[1].outcome, Outcome::kCrash);
  EXPECT_DOUBLE_EQ(plan.rules[2].probability, 0.01);
  EXPECT_EQ(plan.rules[2].delay_us, 250u);
  EXPECT_EQ(plan.rules[2].outcome, Outcome::kDelay);

  const Injector injector = make_injector(plan);
  EXPECT_EQ(injector.seed(), 7u);
  EXPECT_FALSE(injector.empty());
}

void expect_rejected(const std::string& text, const std::string& needle) {
  try {
    (void)parse_plan(text, "test");
    FAIL() << "plan was accepted: " << text;
  } catch (const PlanError& error) {
    EXPECT_NE(std::string(error.what()).find(needle), std::string::npos)
        << "error \"" << error.what() << "\" does not mention \"" << needle << "\"";
  }
}

TEST(FaultPlan, RejectsMalformedPlans) {
  expect_rejected("not json", "malformed JSON");
  expect_rejected("[]", "must be a JSON object");
  expect_rejected(R"({"v": 2, "faults": [{"site": "serve.read", "nth": 1}]})",
                  "unsupported plan version 2");
  expect_rejected(R"({"v": 1})", "missing required member \"faults\"");
  expect_rejected(R"({"v": 1, "faults": []})", "at least one rule");
  expect_rejected(R"({"v": 1, "faults": [{"nth": 1}]})", "missing required member \"site\"");
  expect_rejected(
      R"({"v": 1, "seed": 0, "extra": 1, "faults": [{"site": "serve.read", "nth": 1}]})",
      "unknown member \"extra\"");
}

TEST(FaultPlan, RejectsUnknownSitesNamingTheKnownOnes) {
  // The typo'd-site error must teach: it lists every registered site.
  expect_rejected(R"({"v": 1, "faults": [{"site": "snapshot.rename_typo", "nth": 1}]})",
                  "snapshot.rename");
  expect_rejected(R"({"v": 1, "faults": [{"site": "nope", "nth": 1}]})", "known sites");
}

TEST(FaultPlan, RejectsRulesThatCouldNeverFire) {
  expect_rejected(R"({"v": 1, "faults": [{"site": "serve.read"}]})", "no trigger");
  expect_rejected(R"({"v": 1, "faults": [{"site": "serve.read", "nth": 1, "outcome": "delay"}]})",
                  "no \"delay_us\"");
  expect_rejected(R"({"v": 1, "faults": [{"site": "serve.read", "probability": 1.5}]})",
                  "must be in [0, 1]");
  expect_rejected(R"({"v": 1, "faults": [{"site": "serve.read", "nth": 1, "outcome": "boom"}]})",
                  "\"fail\", \"crash\" or \"delay\"");
  expect_rejected(R"({"v": 1, "faults": [{"site": "serve.read", "nth": 1, "typo": 2}]})",
                  "unknown member \"typo\"");
}

TEST(FaultPlan, ErrorsNameTheOffendingRule) {
  expect_rejected(
      R"({"v": 1, "faults": [{"site": "serve.read", "nth": 1}, {"site": "bad", "nth": 1}]})",
      "fault 1");
}

TEST(FaultPlan, LoadPlanFailsLoudlyOnMissingFiles) {
  EXPECT_THROW((void)load_plan("/nonexistent/fault_plan.json"), PlanError);
}

TEST(FaultPlan, PlanDrivenInjectorReplaysDeterministically) {
  const char* text = R"({"v": 1, "seed": 99, "faults": [
      {"site": "metrics.write", "probability": 0.5}]})";
  auto run = [&] {
    Injector injector = make_injector(parse_plan(text, "test"));
    std::string fired;
    for (int i = 0; i < 64; ++i) {
      try {
        injector.hit(kSiteMetricsWrite);
        fired += '.';
      } catch (const FaultError&) {
        fired += 'X';
      }
    }
    return fired;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace mobsrv::fault
