// Unit tests for median/median1d.hpp: the exact weighted median interval —
// the object MtC's tie-break is defined on for collinear batches.
#include "median/median1d.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "stats/rng.hpp"

namespace mobsrv::med {
namespace {

TEST(Median1D, SinglePoint) {
  const std::vector<double> v{3.0};
  const Interval1D i = median_interval(v);
  EXPECT_EQ(i.lo, 3.0);
  EXPECT_EQ(i.hi, 3.0);
  EXPECT_TRUE(i.is_point());
}

TEST(Median1D, OddCountIsMiddleValue) {
  const std::vector<double> v{5.0, 1.0, 3.0};
  const Interval1D i = median_interval(v);
  EXPECT_EQ(i.lo, 3.0);
  EXPECT_EQ(i.hi, 3.0);
}

TEST(Median1D, EvenCountIsInterval) {
  const std::vector<double> v{1.0, 2.0, 8.0, 9.0};
  const Interval1D i = median_interval(v);
  EXPECT_EQ(i.lo, 2.0);
  EXPECT_EQ(i.hi, 8.0);
  EXPECT_FALSE(i.is_point());
}

TEST(Median1D, TwoPointsSpanInterval) {
  const std::vector<double> v{-1.0, 4.0};
  const Interval1D i = median_interval(v);
  EXPECT_EQ(i.lo, -1.0);
  EXPECT_EQ(i.hi, 4.0);
}

TEST(Median1D, DuplicatesCollapseInterval) {
  // {1, 5, 5, 9}: between 5 and 9 the subgradient is 3−1 > 0, so the
  // minimiser set is exactly {5} even though the cumulative weight hits
  // half right at the first 5.
  const std::vector<double> v{1.0, 5.0, 5.0, 9.0};
  const Interval1D i = median_interval(v);
  EXPECT_EQ(i.lo, 5.0);
  EXPECT_EQ(i.hi, 5.0);
}

TEST(Median1D, UnsortedInputHandled) {
  const std::vector<double> v{9.0, 1.0, 5.0, 5.0};
  const Interval1D i = median_interval(v);
  EXPECT_EQ(i.lo, 5.0);
  EXPECT_EQ(i.hi, 5.0);
}

TEST(Median1D, WeightsShiftTheMedian) {
  const std::vector<double> v{0.0, 10.0};
  const std::vector<double> heavy_left{3.0, 1.0};
  const Interval1D i = weighted_median_interval(v, heavy_left);
  EXPECT_EQ(i.lo, 0.0);
  EXPECT_EQ(i.hi, 0.0);
}

TEST(Median1D, EqualWeightsSameAsUnweighted) {
  const std::vector<double> v{1.0, 2.0, 7.0};
  const std::vector<double> w{2.0, 2.0, 2.0};
  const Interval1D a = weighted_median_interval(v, w);
  const Interval1D b = median_interval(v);
  EXPECT_EQ(a.lo, b.lo);
  EXPECT_EQ(a.hi, b.hi);
}

TEST(Median1D, ExactHalfSplitWithWeights) {
  // weight 1 at 0, weight 1 at 10: minimisers = [0, 10].
  const std::vector<double> v{0.0, 10.0};
  const std::vector<double> w{1.0, 1.0};
  const Interval1D i = weighted_median_interval(v, w);
  EXPECT_EQ(i.lo, 0.0);
  EXPECT_EQ(i.hi, 10.0);
}

TEST(Median1D, RejectsEmptyAndBadWeights) {
  EXPECT_THROW((void)median_interval({}), mobsrv::ContractViolation);
  const std::vector<double> v{1.0, 2.0};
  const std::vector<double> short_w{1.0};
  EXPECT_THROW((void)weighted_median_interval(v, short_w), mobsrv::ContractViolation);
  const std::vector<double> zero_w{1.0, 0.0};
  EXPECT_THROW((void)weighted_median_interval(v, zero_w), mobsrv::ContractViolation);
}

TEST(Interval1D, ClampPicksClosestPoint) {
  const Interval1D i{2.0, 8.0};
  EXPECT_EQ(i.clamp(0.0), 2.0);
  EXPECT_EQ(i.clamp(10.0), 8.0);
  EXPECT_EQ(i.clamp(5.0), 5.0);
}

TEST(SumAbsDeviation, KnownValues) {
  const std::vector<double> v{1.0, 3.0, 5.0};
  EXPECT_DOUBLE_EQ(sum_abs_deviation(3.0, v), 4.0);
  EXPECT_DOUBLE_EQ(sum_abs_deviation(0.0, v), 9.0);
  const std::vector<double> w{2.0, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(sum_abs_deviation(1.0, v, w), 6.0);
}

// Property: every point of the returned interval achieves the same minimal
// objective, and points strictly outside do strictly worse.
TEST(Median1DProperty, IntervalIsExactlyTheMinimiserSet) {
  stats::Rng rng(42);
  for (int rep = 0; rep < 200; ++rep) {
    const int n = static_cast<int>(rng.uniform_int(1, 9));
    std::vector<double> v, w;
    for (int i = 0; i < n; ++i) {
      v.push_back(rng.uniform(-10.0, 10.0));
      w.push_back(rng.uniform(0.1, 3.0));
    }
    const Interval1D iv = weighted_median_interval(v, w);
    const double at_lo = sum_abs_deviation(iv.lo, v, w);
    const double at_hi = sum_abs_deviation(iv.hi, v, w);
    const double at_mid = sum_abs_deviation((iv.lo + iv.hi) / 2.0, v, w);
    EXPECT_NEAR(at_lo, at_hi, 1e-9 * (1.0 + at_lo));
    EXPECT_NEAR(at_lo, at_mid, 1e-9 * (1.0 + at_lo));
    // Strictly outside must be strictly worse (minimum total weight 0.1
    // gives slope at least 0.1 beyond the interval).
    const double eps = 0.05;
    EXPECT_GT(sum_abs_deviation(iv.lo - eps, v, w), at_lo + 1e-12);
    EXPECT_GT(sum_abs_deviation(iv.hi + eps, v, w), at_hi + 1e-12);
    // And a dense scan never beats the interval value.
    for (double x = -10.0; x <= 10.0; x += 0.37)
      EXPECT_GE(sum_abs_deviation(x, v, w), at_lo - 1e-9);
  }
}

}  // namespace
}  // namespace mobsrv::med
