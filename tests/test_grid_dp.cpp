// Unit + cross-validation tests for opt/grid_dp.hpp: the near-exact 1-D
// offline optimum every upper-bound experiment measures ratios against.
#include "opt/grid_dp.hpp"

#include <gtest/gtest.h>

#include "opt/brute_force.hpp"
#include "sim/cost.hpp"
#include "stats/rng.hpp"

namespace mobsrv::opt {
namespace {

using geo::Point;

sim::ModelParams make_params(double d_weight, double m,
                             sim::ServiceOrder order = sim::ServiceOrder::kMoveThenServe) {
  sim::ModelParams p;
  p.move_cost_weight = d_weight;
  p.max_step = m;
  p.order = order;
  return p;
}

sim::Instance line_instance(std::vector<std::vector<double>> reqs, double d_weight = 2.0,
                            double m = 1.0,
                            sim::ServiceOrder order = sim::ServiceOrder::kMoveThenServe) {
  std::vector<sim::RequestBatch> steps(reqs.size());
  for (std::size_t t = 0; t < reqs.size(); ++t)
    for (const double v : reqs[t]) steps[t].requests.push_back(Point{v});
  return sim::Instance(Point{0.0}, make_params(d_weight, m, order), std::move(steps));
}

TEST(GridDp, RejectsNon1D) {
  std::vector<sim::RequestBatch> steps(1);
  steps[0].requests = {Point{0.0, 0.0}};
  const sim::Instance inst(Point{0.0, 0.0}, make_params(1.0, 1.0), steps);
  EXPECT_THROW((void)solve_grid_dp_1d(inst), ContractViolation);
}

TEST(GridDp, EmptyInstanceCostsNothing) {
  const sim::Instance inst(Point{0.0}, make_params(1.0, 1.0), std::vector<sim::RequestBatch>{});
  const GridDpResult res = solve_grid_dp_1d(inst);
  EXPECT_EQ(res.solution.cost, 0.0);
}

TEST(GridDp, StationaryRequestsOnStartAreFree) {
  const sim::Instance inst = line_instance({{0.0}, {0.0}, {0.0}});
  const GridDpResult res = solve_grid_dp_1d(inst);
  EXPECT_NEAR(res.solution.cost, 0.0, 1e-12);
  EXPECT_EQ(res.solution.opt_lower_bound, 0.0);  // max(0, 0 − err)
}

TEST(GridDp, SingleFarRequestTradeoff) {
  // One request at 10, one step, m = 1, D = 2: moving costs 2/unit but only
  // saves 1/unit of service — OPT stays and pays 10. With two requests per
  // step the saving rate doubles and moving the full step wins: 2·1 + 2·9.
  const sim::Instance one = line_instance({{10.0}});
  EXPECT_NEAR(solve_grid_dp_1d(one).solution.cost, 10.0, 1e-9);
  const sim::Instance two = line_instance({{10.0, 10.0}});
  EXPECT_NEAR(solve_grid_dp_1d(two).solution.cost, 20.0, 1e-9);
}

TEST(GridDp, StaysPutWhenMovingTooExpensive) {
  // D = 8 but only one request of service saving 1 per unit: best to stay.
  const sim::Instance inst = line_instance({{3.0}}, 8.0);
  const GridDpResult res = solve_grid_dp_1d(inst);
  EXPECT_NEAR(res.solution.cost, 3.0, 1e-9);
}

TEST(GridDp, BracketContainsFeasibleCost) {
  stats::Rng rng(3);
  for (int rep = 0; rep < 5; ++rep) {
    std::vector<std::vector<double>> reqs(30);
    for (auto& r : reqs) r = {rng.uniform(-5.0, 5.0), rng.uniform(-5.0, 5.0)};
    const sim::Instance inst = line_instance(std::move(reqs));
    const GridDpResult res = solve_grid_dp_1d(inst);
    EXPECT_GT(res.solution.cost, 0.0);
    EXPECT_LE(res.solution.opt_lower_bound, res.solution.cost + 1e-9);
    EXPECT_LE(res.relaxed_cost, res.solution.cost + 1e-9);  // wider window can't cost more
    EXPECT_GT(res.rounding_error, 0.0);
  }
}

TEST(GridDp, FinerGridTightensTheBracket) {
  stats::Rng rng(4);
  std::vector<std::vector<double>> reqs(40);
  for (auto& r : reqs) r = {rng.uniform(-8.0, 8.0)};
  const sim::Instance inst = line_instance(std::move(reqs));
  GridDpOptions coarse, fine;
  coarse.cells_per_step = 2.0;
  fine.cells_per_step = 16.0;
  const GridDpResult rc = solve_grid_dp_1d(inst, coarse);
  const GridDpResult rf = solve_grid_dp_1d(inst, fine);
  const double coarse_width = rc.solution.cost - rc.solution.opt_lower_bound;
  const double fine_width = rf.solution.cost - rf.solution.opt_lower_bound;
  EXPECT_LT(fine_width, coarse_width);
  EXPECT_LE(rf.solution.cost, rc.solution.cost + 1e-9);
}

TEST(GridDp, TrajectoryIsFeasibleAndMatchesCost) {
  stats::Rng rng(5);
  std::vector<std::vector<double>> reqs(25);
  for (auto& r : reqs) r = {rng.uniform(-4.0, 4.0)};
  const sim::Instance inst = line_instance(std::move(reqs));
  GridDpOptions opt;
  opt.want_trajectory = true;
  const GridDpResult res = solve_grid_dp_1d(inst, opt);
  ASSERT_EQ(res.solution.positions.size(), inst.horizon() + 1);
  EXPECT_EQ(sim::first_speed_violation(inst, res.solution.positions), -1);
  EXPECT_NEAR(sim::trajectory_cost(inst, res.solution.positions), res.solution.cost,
              1e-9 * (1.0 + res.solution.cost));
}

TEST(GridDp, MaxCellsCapCoarsensInsteadOfExploding) {
  std::vector<std::vector<double>> reqs(10);
  for (auto& r : reqs) r = {1000.0};  // huge extent
  const sim::Instance inst = line_instance(std::move(reqs));
  GridDpOptions opt;
  opt.max_cells = 512;
  const GridDpResult res = solve_grid_dp_1d(inst, opt);
  EXPECT_LE(res.cells, 512u);
  EXPECT_GT(res.spacing, 1.0 / 4.0);  // coarsened beyond the default m/4
}

TEST(GridDp, AnswerFirstCostsAtLeastMoveFirst) {
  // Serving before moving can never be cheaper for the same instance
  // (the optimum has strictly less flexibility) — and on a chasing workload
  // it is strictly worse.
  std::vector<std::vector<double>> reqs(20);
  for (std::size_t t = 0; t < reqs.size(); ++t) reqs[t] = {0.5 * static_cast<double>(t + 1)};
  const sim::Instance move_first = line_instance(reqs);
  const sim::Instance answer_first =
      line_instance(reqs, 2.0, 1.0, sim::ServiceOrder::kServeThenMove);
  const double mf = solve_grid_dp_1d(move_first).solution.cost;
  const double af = solve_grid_dp_1d(answer_first).solution.cost;
  EXPECT_GT(af, mf);
}

// Cross-validation against exhaustive enumeration on tiny instances: the DP
// recurrence itself.
class GridDpVsBruteForce : public ::testing::TestWithParam<int> {};

TEST_P(GridDpVsBruteForce, AgreesWithinDiscretisation) {
  const int seed = GetParam();
  stats::Rng rng(static_cast<std::uint64_t>(seed));
  std::vector<std::vector<double>> reqs(4);
  for (auto& r : reqs) r = {rng.uniform(-2.0, 2.0)};
  const double D = rng.uniform(1.0, 4.0);
  const sim::Instance inst = line_instance(std::move(reqs), D);

  // Brute force over the same resolution grid the DP uses (h = m/4).
  std::vector<Point> candidates;
  for (double x = -3.0; x <= 3.0; x += 0.25) candidates.push_back(Point{x});
  const OfflineSolution bf = brute_force_offline(inst, candidates);

  GridDpOptions opt;
  opt.cells_per_step = 8.0;
  const GridDpResult dp = solve_grid_dp_1d(inst, opt);
  // The DP (finer grid, wider coverage) must not be worse than brute force,
  // and the certified lower bound must stay below it.
  EXPECT_LE(dp.solution.cost, bf.cost + 1e-9);
  EXPECT_LE(dp.solution.opt_lower_bound, bf.cost + 1e-9);
  // And they agree up to the coarse grid's resolution-induced slack.
  EXPECT_NEAR(dp.solution.cost, bf.cost, 0.5 * (1.0 + bf.cost));
}

INSTANTIATE_TEST_SUITE_P(Seeds, GridDpVsBruteForce, ::testing::Range(1, 9));

TEST(BruteForce, RespectsMovementLimit) {
  const sim::Instance inst = line_instance({{5.0}, {5.0}});
  std::vector<Point> candidates{Point{0.0}, Point{5.0}};  // jump of 5 > m=1 forbidden
  const OfflineSolution sol = brute_force_offline(inst, candidates);
  // Can't reach 5; must stay at 0 and pay 5+5.
  EXPECT_NEAR(sol.cost, 10.0, 1e-12);
  ASSERT_EQ(sol.positions.size(), 3u);
  EXPECT_EQ(sol.positions[1], Point{0.0});
}

TEST(BruteForce, GuardsStateExplosion) {
  std::vector<std::vector<double>> reqs(30, {1.0});
  const sim::Instance inst = line_instance(std::move(reqs));
  std::vector<Point> candidates;
  for (double x = 0.0; x < 10.0; x += 0.5) candidates.push_back(Point{x});
  EXPECT_THROW((void)brute_force_offline(inst, candidates), ContractViolation);
}

TEST(BruteForce, PicksCheapestPath) {
  // Requests alternate 1, -1; staying at 0 costs 1/step = 4. With D=2 any
  // movement adds >= 2 per unit and saves at most 1 — staying is optimal.
  const sim::Instance inst = line_instance({{1.0}, {-1.0}, {1.0}, {-1.0}});
  std::vector<Point> candidates{Point{-1.0}, Point{0.0}, Point{1.0}};
  const OfflineSolution sol = brute_force_offline(inst, candidates);
  EXPECT_NEAR(sol.cost, 4.0, 1e-12);
}

}  // namespace
}  // namespace mobsrv::opt
