// Unit + cross-validation tests for opt/convex_descent.hpp: the any-
// dimension offline solver. Key invariants: always returns a *feasible*
// trajectory, never worse than its warm start, and agrees with the 1-D DP
// bracket where both apply.
#include "opt/convex_descent.hpp"

#include <gtest/gtest.h>

#include "opt/grid_dp.hpp"
#include "sim/cost.hpp"
#include "stats/rng.hpp"

namespace mobsrv::opt {
namespace {

using geo::Point;

sim::ModelParams make_params(double d_weight, double m,
                             sim::ServiceOrder order = sim::ServiceOrder::kMoveThenServe) {
  sim::ModelParams p;
  p.move_cost_weight = d_weight;
  p.max_step = m;
  p.order = order;
  return p;
}

sim::Instance random_instance(std::uint64_t seed, int dim, std::size_t horizon,
                              double d_weight = 2.0,
                              sim::ServiceOrder order = sim::ServiceOrder::kMoveThenServe) {
  stats::Rng rng(seed);
  std::vector<sim::RequestBatch> steps(horizon);
  Point hotspot = Point::zero(dim);
  for (auto& s : steps) {
    for (int d = 0; d < dim; ++d) hotspot[d] += rng.uniform(-0.4, 0.4);
    const int r = static_cast<int>(rng.uniform_int(1, 3));
    for (int i = 0; i < r; ++i) {
      Point v = hotspot;
      for (int d = 0; d < dim; ++d) v[d] += rng.normal(0.0, 1.0);
      s.requests.push_back(v);
    }
  }
  return sim::Instance(Point::zero(dim), make_params(d_weight, 1.0, order), std::move(steps));
}

TEST(ConvexDescent, EmptyInstance) {
  const sim::Instance inst(Point{0.0, 0.0}, make_params(1.0, 1.0),
                           std::vector<sim::RequestBatch>{});
  const OfflineSolution sol = solve_convex_descent(inst);
  EXPECT_EQ(sol.cost, 0.0);
  ASSERT_EQ(sol.positions.size(), 1u);
  EXPECT_EQ(sol.positions[0], inst.start());
}

TEST(ConvexDescent, AlwaysFeasible) {
  for (const int dim : {1, 2, 3}) {
    const sim::Instance inst = random_instance(10 + static_cast<std::uint64_t>(dim), dim, 40);
    const OfflineSolution sol = solve_convex_descent(inst);
    ASSERT_EQ(sol.positions.size(), inst.horizon() + 1);
    EXPECT_EQ(sim::first_speed_violation(inst, sol.positions), -1) << "dim=" << dim;
    EXPECT_NEAR(sim::trajectory_cost(inst, sol.positions), sol.cost, 1e-9 * (1.0 + sol.cost));
  }
}

TEST(ConvexDescent, BeatsOrMatchesGreedyInit) {
  const sim::Instance inst = random_instance(20, 2, 60);
  ConvexDescentOptions one_iter;
  one_iter.iterations = 1;
  const double greedy_cost = solve_convex_descent(inst, one_iter).cost;
  const double optimised = solve_convex_descent(inst).cost;
  EXPECT_LE(optimised, greedy_cost + 1e-9);
}

TEST(ConvexDescent, WarmStartNeverHurts) {
  const sim::Instance inst = random_instance(30, 2, 50);
  const OfflineSolution cold = solve_convex_descent(inst);
  // Warm-start with the cold solution: the result can only stay or improve.
  const OfflineSolution warm = solve_convex_descent(inst, {}, &cold.positions);
  EXPECT_LE(warm.cost, cold.cost + 1e-9);
}

TEST(ConvexDescent, WarmStartValidation) {
  const sim::Instance inst = random_instance(40, 2, 10);
  std::vector<Point> wrong_length(5, inst.start());
  EXPECT_THROW((void)solve_convex_descent(inst, {}, &wrong_length), ContractViolation);
  std::vector<Point> wrong_start(inst.horizon() + 1, Point{1.0, 1.0});
  EXPECT_THROW((void)solve_convex_descent(inst, {}, &wrong_start), ContractViolation);
}

TEST(ConvexDescent, StationaryHotspotSolvedNearExactly) {
  // All requests at a single reachable point: OPT walks there and sits;
  // descent should find (essentially) that.
  std::vector<sim::RequestBatch> steps(30);
  for (auto& s : steps) s.requests = {Point{2.0, 0.0}};
  const sim::Instance inst(Point{0.0, 0.0}, make_params(2.0, 1.0), std::move(steps));
  const OfflineSolution sol = solve_convex_descent(inst);
  // Walk-and-sit reference: move 2 units (cost 4) + service 1 while 1 away
  // at t=0 (serve from position 1: distance 1) → 4 + 1 = 5.
  const double reference = 5.0;
  EXPECT_LE(sol.cost, reference * 1.1);
}

TEST(ConvexDescent, AgreesWith1DDpBracket) {
  for (const std::uint64_t seed : {51u, 52u, 53u}) {
    const sim::Instance inst = random_instance(seed, 1, 40);
    const OfflineSolution convex = solve_convex_descent(inst);
    const GridDpResult dp = solve_grid_dp_1d(inst);
    // Both are feasible (upper bounds); convex must respect the certified
    // lower bound, and land within a modest factor of the DP value.
    EXPECT_GE(convex.cost, dp.solution.opt_lower_bound - 1e-9);
    EXPECT_LE(convex.cost, dp.solution.cost * 1.25 + 1e-9);
  }
}

TEST(ConvexDescent, AnswerFirstSupported) {
  const sim::Instance inst =
      random_instance(60, 2, 40, 2.0, sim::ServiceOrder::kServeThenMove);
  const OfflineSolution sol = solve_convex_descent(inst);
  EXPECT_EQ(sim::first_speed_violation(inst, sol.positions), -1);
  EXPECT_NEAR(sim::trajectory_cost(inst, sol.positions), sol.cost, 1e-9 * (1.0 + sol.cost));
}

TEST(ReachabilityLowerBound, SoundOnKnownInstance) {
  // Request at distance 10 in step 0 (served at index 1): reach = m = 1 →
  // contributes 9. Step 1 same point: reach 2 → 8.
  std::vector<sim::RequestBatch> steps(2);
  steps[0].requests = {Point{10.0}};
  steps[1].requests = {Point{10.0}};
  const sim::Instance inst(Point{0.0}, make_params(1.0, 1.0), std::move(steps));
  EXPECT_DOUBLE_EQ(reachability_lower_bound(inst), 17.0);
}

TEST(ReachabilityLowerBound, NeverExceedsFeasibleCost) {
  for (const std::uint64_t seed : {70u, 71u, 72u}) {
    for (const int dim : {1, 2}) {
      const sim::Instance inst = random_instance(seed, dim, 30);
      const OfflineSolution sol = solve_convex_descent(inst);
      EXPECT_LE(reachability_lower_bound(inst), sol.cost + 1e-9);
    }
  }
}

TEST(ReachabilityLowerBound, AnswerFirstUsesPreMoveReach) {
  // Answer-first serves step 0 from the start itself: full distance counts.
  std::vector<sim::RequestBatch> steps(1);
  steps[0].requests = {Point{10.0}};
  const sim::Instance inst(Point{0.0}, make_params(1.0, 1.0, sim::ServiceOrder::kServeThenMove),
                           std::move(steps));
  EXPECT_DOUBLE_EQ(reachability_lower_bound(inst), 10.0);
}

// Property: across dimensions, descent cost is within a reasonable factor
// of the certified lower bound when that bound is informative.
class ConvexQuality : public ::testing::TestWithParam<int> {};

TEST_P(ConvexQuality, WithinFactorOfLowerBoundOnChaseWorkload) {
  const int dim = GetParam();
  // A hotspot running away at the speed limit: the reachability bound is
  // tight-ish here, so it meaningfully certifies solution quality.
  std::vector<sim::RequestBatch> steps(40);
  for (std::size_t t = 0; t < steps.size(); ++t)
    steps[t].requests = {Point::on_axis(dim, 2.0 * static_cast<double>(t + 1))};
  const sim::Instance inst(Point::zero(dim), make_params(1.0, 1.0), std::move(steps));
  const OfflineSolution sol = solve_convex_descent(inst);
  const double lb = reachability_lower_bound(inst);
  ASSERT_GT(lb, 0.0);
  EXPECT_LE(sol.cost, 3.0 * lb);
}

INSTANTIATE_TEST_SUITE_P(Dims, ConvexQuality, ::testing::Values(1, 2, 3, 8));

}  // namespace
}  // namespace mobsrv::opt
