// Tests for session checkpoint/restore (sim::Session::save + the restore
// constructor, core::SessionMultiplexer::checkpoint/restore) and the
// versioned trace:: checkpoint codec:
//   * save mid-run → restore → drain equals an uninterrupted run
//     bit-identically, for every registered algorithm and k ∈ {1, 4};
//   * the full loop survives the on-disk codec (encode → file → decode);
//   * corruption, truncation and version mismatch fail loudly;
//   * restore binds checkpoints to their specs — mismatches are rejected.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>

#include "algorithms/registry.hpp"
#include "core/session_multiplexer.hpp"
#include "ext/multi_server.hpp"
#include "sim/session.hpp"
#include "stats/rng.hpp"
#include "trace/checkpoint.hpp"

namespace mobsrv {
namespace {

namespace fs = std::filesystem;
using geo::Point;

sim::Instance hotspot_instance(std::uint64_t seed, std::size_t horizon = 60) {
  ext::MultiHotspotParams params;
  params.horizon = horizon;
  params.clusters = 3;
  stats::Rng rng(seed);
  return ext::make_multi_hotspot(params, rng);
}

sim::RunOptions streaming_options() {
  sim::RunOptions options;
  options.speed_factor = 1.5;
  options.record_positions = false;
  return options;
}

std::vector<Point> starts_for(const sim::Instance& instance, std::size_t k) {
  return ext::spread_starts(instance, static_cast<int>(k), 4.0);
}

/// The names that can drive a fleet of size k.
std::vector<std::string> names_for(std::size_t k) {
  return k == 1 ? alg::fleet_algorithm_names() : alg::fleet_native_names();
}

// ---------------------------------------------------------------------------
// Session-level checkpoint/restore.
// ---------------------------------------------------------------------------

TEST(SessionCheckpoint, RestoredRunEqualsUninterruptedForEveryAlgorithmAndFleetSize) {
  for (const std::size_t k : {std::size_t{1}, std::size_t{4}}) {
    const sim::Instance instance = hotspot_instance(17);
    for (const std::string& name : names_for(k)) {
      const sim::RunOptions options = streaming_options();

      // Reference: never interrupted.
      sim::FleetAlgorithmPtr ref_algo = alg::make_fleet_algorithm(name, 99);
      sim::Session reference(starts_for(instance, k), instance.params(), *ref_algo, options);
      for (std::size_t t = 0; t < instance.horizon(); ++t) reference.push(instance.step(t));

      // Interrupted at an awkward point (mid-MoveToMin-window), then resumed
      // with a FRESH algorithm instance fed only the checkpoint.
      sim::FleetAlgorithmPtr first_algo = alg::make_fleet_algorithm(name, 99);
      sim::Session first(starts_for(instance, k), instance.params(), *first_algo, options);
      const std::size_t cut = instance.horizon() / 2 + 1;
      for (std::size_t t = 0; t < cut; ++t) first.push(instance.step(t));
      const sim::SessionCheckpoint checkpoint = first.save();

      sim::FleetAlgorithmPtr resumed_algo = alg::make_fleet_algorithm(name, 99);
      sim::Session resumed(checkpoint, *resumed_algo);
      EXPECT_EQ(resumed.steps(), cut);
      for (std::size_t t = cut; t < instance.horizon(); ++t) resumed.push(instance.step(t));

      EXPECT_EQ(resumed.total_cost(), reference.total_cost()) << name << " k=" << k;
      EXPECT_EQ(resumed.move_cost(), reference.move_cost()) << name << " k=" << k;
      EXPECT_EQ(resumed.service_cost(), reference.service_cost()) << name << " k=" << k;
      EXPECT_EQ(resumed.fleet(), reference.fleet()) << name << " k=" << k;
      for (std::size_t i = 0; i < k; ++i)
        EXPECT_EQ(resumed.server_move_cost(i), reference.server_move_cost(i)) << name << " " << i;
    }
  }
}

TEST(SessionCheckpoint, OnlineAlgorithmRestoreConstructorWorks) {
  const sim::Instance instance = hotspot_instance(23);
  const sim::RunOptions options = streaming_options();
  const sim::AlgorithmPtr ref_algo = alg::make_algorithm("CoinFlip", 5);
  sim::Session reference(instance.start(), instance.params(), *ref_algo, options);
  for (std::size_t t = 0; t < instance.horizon(); ++t) reference.push(instance.step(t));

  const sim::AlgorithmPtr first_algo = alg::make_algorithm("CoinFlip", 5);
  sim::Session first(instance.start(), instance.params(), *first_algo, options);
  for (std::size_t t = 0; t < 20; ++t) first.push(instance.step(t));

  const sim::AlgorithmPtr resumed_algo = alg::make_algorithm("CoinFlip", 5);
  sim::Session resumed(first.save(), *resumed_algo);
  for (std::size_t t = 20; t < instance.horizon(); ++t) resumed.push(instance.step(t));
  EXPECT_EQ(resumed.total_cost(), reference.total_cost());
  EXPECT_EQ(resumed.position(), reference.position());
}

TEST(SessionCheckpoint, SaveRequiresStreamingSessions) {
  sim::ModelParams params;
  const sim::AlgorithmPtr algo = alg::make_algorithm("Lazy");
  sim::Session history_on(Point{0.0}, params, *algo);  // record_positions default
  EXPECT_THROW((void)history_on.save(), ContractViolation);
}

TEST(SessionCheckpoint, RestoreRejectsWrongAlgorithm) {
  const sim::Instance instance = hotspot_instance(2, 20);
  const sim::AlgorithmPtr algo = alg::make_algorithm("MtC");
  sim::Session session(instance.start(), instance.params(), *algo, streaming_options());
  session.push(instance.step(0));
  const sim::SessionCheckpoint checkpoint = session.save();
  const sim::AlgorithmPtr other = alg::make_algorithm("Lazy");
  EXPECT_THROW(sim::Session(checkpoint, *other), ContractViolation);
}

TEST(SessionCheckpoint, StatefulAlgorithmsRejectCorruptState) {
  const sim::Instance instance = hotspot_instance(3, 20);
  for (const std::string name : {"MoveToMin", "CoinFlip"}) {
    const sim::AlgorithmPtr algo = alg::make_algorithm(name, 1);
    sim::Session session(instance.start(), instance.params(), *algo, streaming_options());
    for (std::size_t t = 0; t < 10; ++t) session.push(instance.step(t));
    sim::SessionCheckpoint checkpoint = session.save();
    EXPECT_FALSE(checkpoint.algorithm_state.empty()) << name;
    checkpoint.algorithm_state.words.push_back(42);  // corrupt the layout
    const sim::AlgorithmPtr resumed = alg::make_algorithm(name, 1);
    EXPECT_THROW(sim::Session(checkpoint, *resumed), ContractViolation) << name;
  }
}

TEST(SessionCheckpoint, StatelessDefaultRejectsNonEmptyState) {
  const sim::Instance instance = hotspot_instance(4, 10);
  const sim::AlgorithmPtr algo = alg::make_algorithm("Lazy");
  sim::Session session(instance.start(), instance.params(), *algo, streaming_options());
  session.push(instance.step(0));
  sim::SessionCheckpoint checkpoint = session.save();
  checkpoint.algorithm_state.reals.push_back(1.0);
  const sim::AlgorithmPtr resumed = alg::make_algorithm("Lazy");
  EXPECT_THROW(sim::Session(checkpoint, *resumed), ContractViolation);
}

// ---------------------------------------------------------------------------
// Multiplexer checkpoint/restore through the on-disk codec.
// ---------------------------------------------------------------------------

class CheckpointFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("mobsrv_ckpt_" + std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

/// A mixed population: every k = 1 algorithm plus k = 4 fleets, shared
/// workloads, heterogeneous horizons.
void populate(core::SessionMultiplexer& mux) {
  std::vector<std::shared_ptr<const sim::Instance>> workloads;
  for (std::uint64_t w = 0; w < 3; ++w)
    workloads.push_back(std::make_shared<const sim::Instance>(hotspot_instance(w, 24 + 8 * w)));
  const std::vector<std::string> singles = alg::algorithm_names();
  for (std::size_t s = 0; s < 24; ++s) {
    core::SessionSpec spec;
    spec.workload = workloads[s % workloads.size()];
    const bool fleet = s % 3 == 0;
    spec.fleet_size = fleet ? 4 : 1;
    spec.algorithm = fleet ? alg::fleet_native_names()[s % 2] : singles[s % singles.size()];
    if (fleet) spec.starts = ext::spread_starts(*spec.workload, 4, 6.0);
    spec.algo_seed = 100 + s;
    spec.speed_factor = 1.5;
    spec.tenant = "tenant-" + std::to_string(s);
    mux.add(std::move(spec));
  }
}

void expect_identical(const core::SessionMultiplexer& a, const core::SessionMultiplexer& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t s = 0; s < a.size(); ++s) {
    const core::SessionStats sa = a.stats(s);
    const core::SessionStats sb = b.stats(s);
    EXPECT_EQ(sa.total_cost, sb.total_cost) << s;
    EXPECT_EQ(sa.move_cost, sb.move_cost) << s;
    EXPECT_EQ(sa.service_cost, sb.service_cost) << s;
    EXPECT_EQ(sa.positions, sb.positions) << s;
    EXPECT_EQ(sa.per_server_move_cost, sb.per_server_move_cost) << s;
    EXPECT_EQ(sa.steps, sb.steps) << s;
  }
}

TEST_F(CheckpointFileTest, CheckpointedMuxResumesBitIdenticallyThroughDisk) {
  par::ThreadPool pool(4);

  core::SessionMultiplexer reference(pool);
  populate(reference);
  reference.drain();

  core::SessionMultiplexer interrupted(pool);
  populate(interrupted);
  interrupted.step(13);  // mid-run, some sessions already done
  const fs::path path = dir_ / "mux.msck";
  trace::write_checkpoint(path, interrupted.checkpoint());

  core::SessionMultiplexer restored(pool);
  populate(restored);
  restored.restore(trace::read_checkpoint(path));
  EXPECT_EQ(restored.totals().steps, interrupted.totals().steps);
  restored.drain();

  expect_identical(reference, restored);
}

TEST_F(CheckpointFileTest, RestoreIsExactAtEveryCutPoint) {
  // Drain in two chunks around the checkpoint for several cut points —
  // catches off-by-one cursor handling.
  par::ThreadPool pool(2);
  core::SessionMultiplexer reference(pool);
  populate(reference);
  reference.drain();
  for (const std::size_t cut : {std::size_t{1}, std::size_t{23}, std::size_t{40}}) {
    core::SessionMultiplexer interrupted(pool);
    populate(interrupted);
    interrupted.step(cut);
    core::SessionMultiplexer restored(pool);
    populate(restored);
    restored.restore(interrupted.checkpoint());
    restored.drain();
    expect_identical(reference, restored);
  }
}

TEST_F(CheckpointFileTest, CodecRoundTripIsExact) {
  par::ThreadPool pool(1);
  core::SessionMultiplexer mux(pool);
  populate(mux);
  mux.step(7);
  const std::vector<core::SessionCheckpointRecord> records = mux.checkpoint();
  const std::string bytes = trace::encode_checkpoint(records);
  const std::vector<core::SessionCheckpointRecord> decoded =
      trace::decode_checkpoint(bytes, "test");
  // Bitwise-identical re-encoding is the round-trip contract.
  EXPECT_EQ(trace::encode_checkpoint(decoded), bytes);
  ASSERT_EQ(decoded.size(), records.size());
  EXPECT_EQ(decoded[0].tenant, records[0].tenant);
  EXPECT_EQ(decoded[0].engine.servers, records[0].engine.servers);
  EXPECT_EQ(decoded[0].engine.algorithm_state, records[0].engine.algorithm_state);
}

TEST_F(CheckpointFileTest, CorruptionAndTruncationAreLoud) {
  par::ThreadPool pool(1);
  core::SessionMultiplexer mux(pool);
  populate(mux);
  mux.step(5);
  const std::string bytes = trace::encode_checkpoint(mux.checkpoint());

  // Truncation anywhere must be detected.
  for (const double frac : {0.1, 0.5, 0.9}) {
    const std::string cut = bytes.substr(0, static_cast<std::size_t>(frac * bytes.size()));
    EXPECT_THROW((void)trace::decode_checkpoint(cut, "trunc"), trace::TraceError) << frac;
  }
  // Losing only the end tag must be detected too.
  EXPECT_THROW((void)trace::decode_checkpoint(bytes.substr(0, bytes.size() - 9), "trunc"),
               trace::TraceError);
  // Bad magic.
  std::string bad_magic = bytes;
  bad_magic[0] = 'X';
  EXPECT_THROW((void)trace::decode_checkpoint(bad_magic, "magic"), trace::TraceError);
  // Version mismatch names both versions.
  std::string bad_version = bytes;
  bad_version[8] = 99;
  try {
    (void)trace::decode_checkpoint(bad_version, "version");
    FAIL() << "version mismatch not detected";
  } catch (const trace::TraceError& error) {
    EXPECT_NE(std::string(error.what()).find("version"), std::string::npos);
  }
  // Trailing garbage.
  EXPECT_THROW((void)trace::decode_checkpoint(bytes + "junk", "trailing"), trace::TraceError);
  // Empty file.
  EXPECT_THROW((void)trace::decode_checkpoint("", "empty"), trace::TraceError);
}

TEST_F(CheckpointFileTest, MissingFileIsLoud) {
  EXPECT_THROW((void)trace::read_checkpoint(dir_ / "nope.msck"), trace::TraceError);
}

TEST_F(CheckpointFileTest, RestoreRejectsMismatchedPopulation) {
  par::ThreadPool pool(1);
  core::SessionMultiplexer mux(pool);
  populate(mux);
  mux.step(3);
  const std::vector<core::SessionCheckpointRecord> records = mux.checkpoint();

  // Wrong session count.
  core::SessionMultiplexer empty_mux(pool);
  EXPECT_THROW(empty_mux.restore(records), ContractViolation);

  // Right count, wrong algorithm in slot 0.
  core::SessionMultiplexer skewed(pool);
  populate(skewed);
  std::vector<core::SessionCheckpointRecord> renamed = records;
  renamed[0].algorithm = "MtC";
  renamed[0].engine.algorithm = "MtC";
  EXPECT_THROW(skewed.restore(renamed), ContractViolation);

  // A failed restore must leave the target untouched and drainable.
  skewed.restore(records);
  skewed.drain();
  EXPECT_EQ(skewed.live(), 0u);
}

TEST_F(CheckpointFileTest, ChurnedMuxCheckpointCoversOpenSlotsOnly) {
  // The service closes tenants between periodic saves; a checkpoint taken
  // after churn must cover exactly the open slots and restore into a mux
  // with the same open population — closed slots never block a restart.
  par::ThreadPool pool(2);
  core::SessionMultiplexer reference(pool);
  populate(reference);
  reference.drain();

  core::SessionMultiplexer churned(pool);
  populate(churned);
  churned.step(7);
  churned.close(3);
  churned.close(11);
  const std::vector<core::SessionCheckpointRecord> records = churned.checkpoint();
  EXPECT_EQ(records.size(), churned.size() - 2);

  // A fresh process re-admits only the open tenants (same specs, same
  // order) — restore must line records up with the open slots.
  core::SessionMultiplexer restored(pool);
  populate(restored);
  restored.close(3);
  restored.close(11);
  restored.restore(records);
  restored.drain();
  for (std::size_t s = 0; s < restored.size(); ++s) {
    if (s == 3 || s == 11) continue;  // closed before any work in `restored`
    const core::SessionStats got = restored.stats(s);
    const core::SessionStats want = reference.stats(s);
    EXPECT_EQ(got.total_cost, want.total_cost) << s;
    EXPECT_EQ(got.positions, want.positions) << s;
    EXPECT_EQ(got.steps, want.steps) << s;
  }

  // A mismatched open population (records from before the churn) is loud.
  core::SessionMultiplexer stale(pool);
  populate(stale);
  EXPECT_THROW(stale.restore(records), ContractViolation);
}

TEST_F(CheckpointFileTest, AtomicWriteReplacesThePreviousSnapshotCleanly) {
  par::ThreadPool pool(2);
  core::SessionMultiplexer mux(pool);
  populate(mux);
  const fs::path path = dir_ / "periodic.msck";

  // Two consecutive periodic saves: the later one wins, no temp file
  // survives, and the result round-trips.
  mux.step(4);
  trace::write_checkpoint_atomic(path, mux.checkpoint());
  mux.step(4);
  const std::vector<core::SessionCheckpointRecord> latest = mux.checkpoint();
  trace::write_checkpoint_atomic(path, latest);
  EXPECT_FALSE(fs::exists(path.string() + ".tmp"));

  const std::vector<core::SessionCheckpointRecord> read = trace::read_checkpoint(path);
  EXPECT_EQ(trace::encode_checkpoint(read), trace::encode_checkpoint(latest));

  // Unwritable destinations fail loudly and leave no temp file either.
  const fs::path bad = dir_ / "no-such-dir" / "x.msck";
  EXPECT_THROW(trace::write_checkpoint_atomic(bad, latest), trace::TraceError);
  EXPECT_FALSE(fs::exists(bad.string() + ".tmp"));
}

TEST_F(CheckpointFileTest, FailedRestoreMidRebuildLeavesMuxUntouched) {
  // A corrupt AlgorithmState passes the spec-binding verification (which
  // does not inspect state internals) and only throws inside the slot
  // rebuild — the multiplexer must come out exactly as it went in.
  par::ThreadPool pool(2);
  core::SessionMultiplexer reference(pool);
  populate(reference);
  reference.drain();

  core::SessionMultiplexer source(pool);
  populate(source);
  source.step(9);
  std::vector<core::SessionCheckpointRecord> records = source.checkpoint();
  // Corrupt a stateful session late in the population so earlier slots
  // were already rebuilt when the throw happens.
  std::size_t victim = records.size();
  for (std::size_t i = records.size(); i-- > 0;)
    if (records[i].algorithm == "MoveToMin" || records[i].algorithm == "CoinFlip") {
      victim = i;
      break;
    }
  ASSERT_LT(victim, records.size());
  ASSERT_GT(victim, 0u);
  records[victim].engine.algorithm_state.words.push_back(7);

  core::SessionMultiplexer target(pool);
  populate(target);
  target.step(9);
  const core::MuxTotals before = target.totals();
  EXPECT_THROW(target.restore(records), ContractViolation);
  EXPECT_EQ(target.totals().steps, before.steps);
  EXPECT_EQ(target.totals().total_cost, before.total_cost);
  EXPECT_EQ(target.live(), before.live);
  target.drain();
  expect_identical(reference, target);
}

}  // namespace
}  // namespace mobsrv
