// Unit tests for the exploratory extensions: the multi-server substrate
// (ext/multi_server.hpp, the paper's Section-6 open question) and the
// ParametricChaser damping ablation knob.
#include "ext/multi_server.hpp"

#include <gtest/gtest.h>

#include <span>

#include "algorithms/move_to_center.hpp"
#include "algorithms/parametric.hpp"
#include "sim/engine.hpp"

namespace mobsrv::ext {
namespace {

using geo::Point;

sim::ModelParams make_params(double d_weight, double m) {
  sim::ModelParams p;
  p.move_cost_weight = d_weight;
  p.max_step = m;
  return p;
}

TEST(NearestServiceCost, PicksNearestServer) {
  const std::vector<Point> servers{{0.0, 0.0}, {10.0, 0.0}};
  sim::RequestBatch batch;
  batch.requests = {Point{1.0, 0.0}, Point{9.0, 0.0}, Point{5.0, 0.0}};
  // 1 (to server 0) + 1 (to server 1) + 5 (tie, both at 5).
  EXPECT_DOUBLE_EQ(nearest_service_cost(servers, batch), 7.0);
}

TEST(NearestServiceCost, SingleServerMatchesSimCost) {
  const std::vector<Point> one{Point{2.0, 2.0}};
  sim::RequestBatch batch;
  batch.requests = {Point{5.0, 6.0}, Point{-1.0, 2.0}};
  EXPECT_DOUBLE_EQ(nearest_service_cost(one, batch), sim::service_cost(one[0], batch));
}

TEST(NearestServiceCost, RequiresServers) {
  const std::vector<Point> none;
  EXPECT_THROW((void)nearest_service_cost(none, sim::RequestBatch{}), ContractViolation);
}

sim::Instance two_cluster_instance(std::size_t horizon = 60) {
  // Static demand at two distant points.
  std::vector<sim::RequestBatch> steps(horizon);
  for (auto& s : steps) s.requests = {Point{-10.0, 0.0}, Point{10.0, 0.0}};
  return sim::Instance(Point{0.0, 0.0}, make_params(4.0, 1.0), std::move(steps));
}

TEST(RunMulti, StaticServersPayPureService) {
  const sim::Instance inst = two_cluster_instance();
  StaticServers still;
  const MultiRunResult res = run_multi(inst, {Point{-10.0, 0.0}, Point{10.0, 0.0}}, still);
  EXPECT_EQ(res.move_cost, 0.0);
  EXPECT_EQ(res.service_cost, 0.0);  // servers sit exactly on the demand
}

TEST(RunMulti, TwoServersBeatOneOnTwoClusters) {
  const sim::Instance inst = two_cluster_instance();
  AssignAndChase chase1, chase2;
  const double one = run_multi(inst, spread_starts(inst, 1, 0.0), chase1).total_cost;
  const double two = run_multi(inst, spread_starts(inst, 2, 2.0), chase2).total_cost;
  EXPECT_LT(two, one);
}

TEST(RunMulti, SingleServerAssignAndChaseMatchesMtcCosts) {
  // With k = 1 the extension reduces to the core model; compare against the
  // core engine running MtC on the same instance.
  const sim::Instance inst = two_cluster_instance();
  AssignAndChase chase;
  const MultiRunResult multi = run_multi(inst, {inst.start()}, chase);
  alg::MoveToCenter mtc;
  const sim::RunResult single = sim::run(inst, mtc);
  EXPECT_NEAR(multi.total_cost, single.total_cost, 1e-9 * (1.0 + single.total_cost));
}

TEST(RunMulti, SpeedLimitEnforcedPerServer) {
  // A strategy that tries to teleport: the engine must clamp each server to
  // the limit.
  class Teleporter final : public sim::FleetAlgorithm {
   public:
    void decide(const sim::FleetStepView& view, std::span<sim::Point> proposals) override {
      for (std::size_t i = 0; i < proposals.size(); ++i)
        proposals[i] = view.servers[i] + Point{100.0, 0.0};
    }
    std::string name() const override { return "Teleporter"; }
  };
  const sim::Instance inst = two_cluster_instance(5);
  Teleporter tp;
  const MultiRunResult res = run_multi(inst, {inst.start()}, tp);
  // 5 steps of at most m = 1 → at most x = 5.
  EXPECT_LE(res.final_positions[0][0], 5.0 + 1e-9);
  EXPECT_NEAR(res.move_cost, 4.0 * 5.0, 1e-9);  // D·(5 moves of length 1)
}

TEST(RunMulti, DimensionChangeRejected) {
  // The span interface makes shrinking the fleet structurally impossible;
  // the remaining way to corrupt the fleet is proposing a different
  // dimension, which the engine rejects loudly.
  class Warper final : public sim::FleetAlgorithm {
   public:
    void decide(const sim::FleetStepView&, std::span<sim::Point> proposals) override {
      proposals[0] = Point{0.0};  // 1-D proposal in a 2-D world
    }
    std::string name() const override { return "Warper"; }
  };
  const sim::Instance inst = two_cluster_instance(2);
  Warper bad;
  EXPECT_THROW((void)run_multi(inst, spread_starts(inst, 2, 1.0), bad), ContractViolation);
}

TEST(RunMulti, PerServerMoveSplitSumsToMoveCost) {
  const sim::Instance inst = two_cluster_instance(40);
  AssignAndChase chase;
  const MultiRunResult res = run_multi(inst, spread_starts(inst, 4, 2.0), chase);
  ASSERT_EQ(res.per_server_move_cost.size(), 4u);
  double sum = 0.0;
  for (double move : res.per_server_move_cost) sum += move;
  EXPECT_NEAR(sum, res.move_cost, 1e-9 * (1.0 + res.move_cost));
}

TEST(SpreadStarts, CountRadiusDimensions) {
  const sim::Instance inst = two_cluster_instance(1);
  const auto starts = spread_starts(inst, 4, 3.0);
  ASSERT_EQ(starts.size(), 4u);
  for (const auto& s : starts) EXPECT_NEAR(geo::distance(s, inst.start()), 3.0, 1e-9);
  const auto one = spread_starts(inst, 1, 3.0);
  EXPECT_EQ(one[0], inst.start());  // k = 1 stays at the start
}

TEST(SpreadStarts, OneDimensionalSpread) {
  std::vector<sim::RequestBatch> steps(1);
  steps[0].requests = {Point{0.0}};
  const sim::Instance inst(Point{0.0}, make_params(1.0, 1.0), std::move(steps));
  const auto starts = spread_starts(inst, 3, 2.0);
  EXPECT_NEAR(starts[0][0], -2.0, 1e-9);
  EXPECT_NEAR(starts[1][0], 0.0, 1e-9);
  EXPECT_NEAR(starts[2][0], 2.0, 1e-9);
}

TEST(MultiHotspot, GeneratesClustersTimesRequests) {
  MultiHotspotParams p;
  p.horizon = 50;
  p.clusters = 3;
  p.requests_per_cluster = 2;
  stats::Rng rng(1);
  const sim::Instance inst = make_multi_hotspot(p, rng);
  EXPECT_EQ(inst.horizon(), 50u);
  for (std::size_t t = 0; t < inst.horizon(); ++t) EXPECT_EQ(inst.step(t).size(), 6u);
}

TEST(MultiHotspot, Deterministic) {
  MultiHotspotParams p;
  stats::Rng a(7), b(7);
  const sim::Instance ia = make_multi_hotspot(p, a);
  const sim::Instance ib = make_multi_hotspot(p, b);
  EXPECT_EQ(ia.step(10)[0], ib.step(10)[0]);
}

TEST(MultiHotspot, MarginalServerValueDiminishes) {
  MultiHotspotParams p;
  p.horizon = 300;
  p.clusters = 4;
  stats::Rng rng(3);
  const sim::Instance inst = make_multi_hotspot(p, rng);
  std::vector<double> costs;
  for (const int k : {1, 2, 4, 8}) {
    AssignAndChase chase;
    costs.push_back(run_multi(inst, spread_starts(inst, k, 5.0), chase).total_cost);
  }
  // More servers never hurt much and the big win comes early.
  EXPECT_LT(costs[2], costs[0]);                       // 4 servers beat 1
  const double gain_1_to_4 = costs[0] - costs[2];
  const double gain_4_to_8 = costs[2] - costs[3];
  EXPECT_LT(gain_4_to_8, gain_1_to_4);                 // diminishing returns
}

}  // namespace
}  // namespace mobsrv::ext

namespace mobsrv::alg {
namespace {

using geo::Point;

sim::StepView make_view(const Point& server, const sim::RequestBatch& batch,
                        const sim::ModelParams& params, double limit) {
  sim::StepView v;
  v.batch = batch;
  v.server = server;
  v.speed_limit = limit;
  v.params = &params;
  return v;
}

TEST(ParametricChaser, GammaZeroIsUndamped) {
  sim::ModelParams params;
  params.move_cost_weight = 8.0;
  sim::RequestBatch batch;
  batch.requests = {Point{10.0}};
  ParametricChaser greedy(0.0);
  // (r/D)^0 = 1 → full distance, capped at the limit.
  EXPECT_NEAR(greedy.decide(make_view(Point{0.0}, batch, params, 1.0))[0], 1.0, 1e-12);
}

TEST(ParametricChaser, GammaOneMatchesMtc) {
  sim::ModelParams params;
  params.move_cost_weight = 4.0;
  sim::RequestBatch batch;
  batch.requests = {Point{8.0}};
  ParametricChaser chaser(1.0);
  MoveToCenter mtc;
  const auto view = make_view(Point{0.0}, batch, params, 100.0);
  EXPECT_NEAR(chaser.decide(view)[0], mtc.decide(view)[0], 1e-12);
}

TEST(ParametricChaser, LargerGammaMovesLess) {
  sim::ModelParams params;
  params.move_cost_weight = 4.0;  // r/D = 1/4 < 1
  sim::RequestBatch batch;
  batch.requests = {Point{8.0}};
  const auto view = make_view(Point{0.0}, batch, params, 100.0);
  double prev = 1e300;
  for (const double gamma : {0.0, 0.5, 1.0, 2.0}) {
    ParametricChaser chaser(gamma);
    const double moved = chaser.decide(view)[0];
    EXPECT_LT(moved, prev + 1e-12);
    prev = moved;
  }
}

TEST(ParametricChaser, RejectsNegativeGamma) {
  EXPECT_THROW(ParametricChaser(-0.1), ContractViolation);
}

TEST(ParametricChaser, NameEncodesGamma) {
  EXPECT_EQ(ParametricChaser(0.5).name(), "Chaser(gamma=0.5)");
}

}  // namespace
}  // namespace mobsrv::alg
