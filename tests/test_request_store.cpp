// Unit tests for the flat SoA request storage (sim/request_store.hpp):
// BatchView semantics over both layouts (dense store and strided AoS
// RequestBatch), dimension validation at build time, and the Instance
// integration (views, cheap copies, streaming build).
#include <gtest/gtest.h>

#include "sim/cost.hpp"
#include "sim/model.hpp"

namespace mobsrv::sim {
namespace {

RequestBatch batch_of(std::initializer_list<Point> points) {
  RequestBatch batch;
  batch.requests = points;
  return batch;
}

TEST(BatchView, EmptyByDefault) {
  const BatchView view;
  EXPECT_TRUE(view.empty());
  EXPECT_EQ(view.size(), 0u);
  EXPECT_EQ(view.dim(), 0);
  EXPECT_TRUE(view.to_points().empty());
}

TEST(BatchView, WrapsAosBatchStrided) {
  const RequestBatch batch = batch_of({Point{1.0, 2.0}, Point{3.0, 4.0}, Point{5.0, 6.0}});
  const BatchView view = batch;  // implicit wrap, no copy
  ASSERT_EQ(view.size(), 3u);
  EXPECT_EQ(view.dim(), 2);
  EXPECT_EQ(view.stride(), sizeof(Point) / sizeof(double));
  EXPECT_DOUBLE_EQ(view.coord(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(view.coord(2, 1), 6.0);
  EXPECT_EQ(view[0], (Point{1.0, 2.0}));
  EXPECT_EQ(view[2], (Point{5.0, 6.0}));
}

TEST(BatchView, IterationMaterialisesPoints) {
  const RequestBatch batch = batch_of({Point{1.0}, Point{2.0}, Point{3.0}});
  double sum = 0.0;
  for (const Point v : BatchView(batch)) sum += v[0];
  EXPECT_DOUBLE_EQ(sum, 6.0);
}

TEST(BatchView, RejectsInconsistentDimensions) {
  RequestBatch bad;
  bad.requests = {Point{1.0}, Point{1.0, 2.0}};
  EXPECT_THROW(BatchView{bad}, ContractViolation);
}

TEST(RequestStore, DenseLayoutAndOffsets) {
  RequestStore store(2);
  store.push_batch(batch_of({Point{1.0, 2.0}, Point{3.0, 4.0}}));
  store.push_batch(RequestBatch{});  // empty step
  store.push_batch(batch_of({Point{5.0, 6.0}}));

  EXPECT_EQ(store.horizon(), 3u);
  EXPECT_EQ(store.total_requests(), 3u);
  const auto [lo, hi] = store.request_bounds();
  EXPECT_EQ(lo, 0u);
  EXPECT_EQ(hi, 2u);

  // The coordinate buffer is one dense run of the live doubles.
  ASSERT_EQ(store.coords().size(), 6u);
  EXPECT_DOUBLE_EQ(store.coords()[0], 1.0);
  EXPECT_DOUBLE_EQ(store.coords()[5], 6.0);

  const BatchView step0 = store.batch(0);
  ASSERT_EQ(step0.size(), 2u);
  EXPECT_EQ(step0.stride(), 2u);  // dense: stride == dim
  EXPECT_EQ(step0[1], (Point{3.0, 4.0}));
  EXPECT_TRUE(store.batch(1).empty());
  EXPECT_EQ(store.batch(2)[0], (Point{5.0, 6.0}));
}

TEST(RequestStore, AdoptsDimensionFromFirstBatch) {
  RequestStore store;
  EXPECT_EQ(store.dim(), 0);
  store.push_batch(RequestBatch{});  // dimensionless while empty
  store.push_batch(batch_of({Point{1.0, 2.0, 3.0}}));
  EXPECT_EQ(store.dim(), 3);
  EXPECT_THROW(store.push_batch(batch_of({Point{1.0}})), ContractViolation);
}

TEST(RequestStore, RejectsDimensionMismatch) {
  RequestStore store(1);
  EXPECT_THROW(store.push_batch(batch_of({Point{1.0, 2.0}})), ContractViolation);
}

TEST(RequestStore, FromBatchesRoundTrip) {
  std::vector<RequestBatch> steps(3);
  steps[0] = batch_of({Point{1.0}, Point{-2.0}});
  steps[2] = batch_of({Point{4.0}});
  const RequestStore store = RequestStore::from_batches(1, steps);
  ASSERT_EQ(store.horizon(), 3u);
  for (std::size_t t = 0; t < steps.size(); ++t) {
    ASSERT_EQ(store.batch(t).size(), steps[t].size());
    for (std::size_t i = 0; i < steps[t].size(); ++i)
      EXPECT_EQ(store.batch(t)[i], steps[t].requests[i]);
  }
}

TEST(RequestStore, FromBatchesAdoptsDimension) {
  std::vector<RequestBatch> steps(3);
  steps[1] = batch_of({Point{1.0, 2.0}});
  const RequestStore store = RequestStore::from_batches(steps);
  EXPECT_EQ(store.dim(), 2);
  EXPECT_EQ(store.horizon(), 3u);
  // All-empty sequences stay dimensionless.
  EXPECT_EQ(RequestStore::from_batches(std::vector<RequestBatch>(2)).dim(), 0);
}

TEST(RequestStore, BatchIndexOutOfRangeThrows) {
  RequestStore store(1);
  store.push_batch(batch_of({Point{1.0}}));
  EXPECT_THROW((void)store.batch(1), ContractViolation);
  EXPECT_THROW((void)store.batch(static_cast<std::size_t>(-1)), ContractViolation);
}

TEST(ServiceCost, IdenticalOnBothLayouts) {
  // The engine's objective must not depend on the storage layout: the same
  // batch viewed AoS (strided) and SoA (dense) yields bit-equal costs.
  const RequestBatch batch =
      batch_of({Point{0.3, -1.7}, Point{2.9, 4.1}, Point{-0.01, 0.57}});
  RequestStore store(2);
  store.push_batch(batch);
  const Point server{0.25, 0.75};
  EXPECT_EQ(service_cost(server, batch), service_cost(server, store.batch(0)));
}

TEST(Instance, StepViewsMatchBuilderData) {
  std::vector<RequestBatch> steps(2);
  steps[0] = batch_of({Point{1.0, 0.0}, Point{0.0, 1.0}});
  steps[1] = batch_of({Point{2.0, 2.0}});
  const Instance inst(Point{0.0, 0.0}, ModelParams{}, steps);
  EXPECT_EQ(inst.step(0)[1], (Point{0.0, 1.0}));
  EXPECT_EQ(inst.step(1)[0], (Point{2.0, 2.0}));
  EXPECT_EQ(inst.store().total_requests(), 3u);
}

TEST(Instance, CopiesAreBitIdenticalWithoutRevalidation) {
  std::vector<RequestBatch> steps(4);
  for (auto& s : steps) s = batch_of({Point{0.125}, Point{-3.5}});
  const Instance inst(Point{0.0}, ModelParams{}, steps);
  const Instance copy = inst.with_order(ServiceOrder::kServeThenMove);
  EXPECT_EQ(copy.params().order, ServiceOrder::kServeThenMove);
  ASSERT_EQ(copy.horizon(), inst.horizon());
  // The flat buffers are equal element-for-element (a memcpy, not a rebuild).
  EXPECT_EQ(copy.store().coords(), inst.store().coords());
}

TEST(Instance, StreamingBuildViaPushStep) {
  Instance inst(Point{0.0}, ModelParams{}, RequestStore(1));
  EXPECT_EQ(inst.horizon(), 0u);
  inst.push_step(batch_of({Point{1.0}}));
  inst.push_step(RequestBatch{});
  EXPECT_EQ(inst.horizon(), 2u);
  EXPECT_EQ(inst.step(0)[0], Point{1.0});
  EXPECT_THROW(inst.push_step(batch_of({Point{1.0, 2.0}})), ContractViolation);
}

TEST(Instance, AdoptedStoreMustMatchStartDimension) {
  RequestStore store(2);
  store.push_batch(batch_of({Point{1.0, 2.0}}));
  EXPECT_THROW(Instance(Point{0.0}, ModelParams{}, store), ContractViolation);
  EXPECT_NO_THROW(Instance(Point{0.0, 0.0}, ModelParams{}, store));
}

}  // namespace
}  // namespace mobsrv::sim
