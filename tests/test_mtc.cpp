// Unit + property tests for algorithms/move_to_center.hpp: the paper's
// algorithm. The step rule min{1, r/D}·d(P,c) capped at (1+δ)m, the
// closest-center tie-break, and the Theorem-10 specialisation for r = 1.
#include "algorithms/move_to_center.hpp"

#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "stats/rng.hpp"

namespace mobsrv::alg {
namespace {

using geo::Point;

sim::ModelParams make_params(double d_weight, double m) {
  sim::ModelParams p;
  p.move_cost_weight = d_weight;
  p.max_step = m;
  return p;
}

sim::StepView make_view(const Point& server, const sim::RequestBatch& batch,
                        const sim::ModelParams& params, double speed_limit) {
  sim::StepView v;
  v.t = 0;
  v.batch = batch;
  v.server = server;
  v.speed_limit = speed_limit;
  v.params = &params;
  return v;
}

TEST(DampedStep, Formula) {
  // r >= D: full distance. r < D: scaled by r/D.
  EXPECT_DOUBLE_EQ(MoveToCenter::damped_step(4, 2.0, 10.0), 10.0);
  EXPECT_DOUBLE_EQ(MoveToCenter::damped_step(2, 2.0, 10.0), 10.0);
  EXPECT_DOUBLE_EQ(MoveToCenter::damped_step(1, 2.0, 10.0), 5.0);
  EXPECT_DOUBLE_EQ(MoveToCenter::damped_step(1, 4.0, 10.0), 2.5);
  EXPECT_DOUBLE_EQ(MoveToCenter::damped_step(0, 4.0, 10.0), 0.0);
}

TEST(MoveToCenter, EmptyBatchStaysPut) {
  MoveToCenter mtc;
  const auto params = make_params(2.0, 1.0);
  sim::RequestBatch empty;
  const Point server{3.0, 4.0};
  EXPECT_EQ(mtc.decide(make_view(server, empty, params, 1.0)), server);
}

TEST(MoveToCenter, SingleRequestMovesDOverDistance) {
  // r=1, D=4: step = d/4 when below the cap (Theorem 10's rule).
  MoveToCenter mtc;
  const auto params = make_params(4.0, 100.0);  // cap far away
  sim::RequestBatch batch;
  batch.requests = {Point{8.0}};
  const Point next = mtc.decide(make_view(Point{0.0}, batch, params, 100.0));
  EXPECT_NEAR(next[0], 2.0, 1e-12);  // 8/4
}

TEST(MoveToCenter, CapsAtSpeedLimit) {
  MoveToCenter mtc;
  const auto params = make_params(1.0, 1.0);
  sim::RequestBatch batch;
  batch.requests = {Point{100.0}};
  // r/D = 1 → wants the full 100; capped at (1+δ)m = 1.5.
  const Point next = mtc.decide(make_view(Point{0.0}, batch, params, 1.5));
  EXPECT_NEAR(next[0], 1.5, 1e-12);
}

TEST(MoveToCenter, ReachesCenterWhenCloseAndRGeqD) {
  MoveToCenter mtc;
  const auto params = make_params(2.0, 1.0);
  sim::RequestBatch batch;
  batch.requests = {Point{0.5}, Point{0.5}, Point{0.5}};  // r=3 > D=2
  const Point next = mtc.decide(make_view(Point{0.0}, batch, params, 1.5));
  EXPECT_NEAR(next[0], 0.5, 1e-12);
}

TEST(MoveToCenter, UsesClosestCenterForEvenCollinearBatch) {
  // Median interval [1, 5]; server at 3 is already a minimiser — MtC must
  // not move (the tie-break picks the center nearest the server).
  MoveToCenter mtc;
  const auto params = make_params(1.0, 1.0);
  sim::RequestBatch batch;
  batch.requests = {Point{0.0}, Point{1.0}, Point{5.0}, Point{9.0}};
  const Point server{3.0};
  EXPECT_EQ(mtc.decide(make_view(server, batch, params, 1.0)), server);
}

TEST(MoveToCenter, TwoRequestsInPlaneProjectOntoSegment) {
  MoveToCenter mtc;
  const auto params = make_params(2.0, 10.0);
  sim::RequestBatch batch;
  batch.requests = {Point{0.0, 0.0}, Point{10.0, 0.0}};
  // Server above the segment: center = its projection (4, 0); r=2 = D → full step.
  const Point next = mtc.decide(make_view(Point{4.0, 3.0}, batch, params, 100.0));
  EXPECT_NEAR(next[0], 4.0, 1e-9);
  EXPECT_NEAR(next[1], 0.0, 1e-9);
}

TEST(MoveToCenter, MovesAlongStraightLineTowardCenter) {
  MoveToCenter mtc;
  const auto params = make_params(4.0, 1.0);
  sim::RequestBatch batch;
  batch.requests = {Point{6.0, 8.0}};
  const Point server{0.0, 0.0};
  const Point next = mtc.decide(make_view(server, batch, params, 1.0));
  // Step = min(10/4, 1) = 1, direction (0.6, 0.8).
  EXPECT_NEAR(next[0], 0.6, 1e-12);
  EXPECT_NEAR(next[1], 0.8, 1e-12);
}

TEST(MoveToCenter, NameIsStable) {
  EXPECT_EQ(MoveToCenter().name(), "MtC");
}

TEST(MoveToCenter, NeverExceedsSpeedLimitThroughEngine) {
  // End-to-end through the engine with the throwing policy: any violation
  // of the movement contract would abort the run.
  stats::Rng rng(7);
  std::vector<sim::RequestBatch> steps(100);
  for (auto& s : steps) {
    const int r = static_cast<int>(rng.uniform_int(1, 5));
    for (int i = 0; i < r; ++i)
      s.requests.push_back(Point{rng.uniform(-50.0, 50.0), rng.uniform(-50.0, 50.0)});
  }
  const sim::Instance inst(Point{0.0, 0.0}, make_params(3.0, 1.0), steps);
  MoveToCenter mtc;
  sim::RunOptions opt;
  opt.speed_factor = 1.25;
  opt.policy = sim::SpeedLimitPolicy::kThrow;
  EXPECT_NO_THROW((void)sim::run(inst, mtc, opt));
}

// Property sweep: the realised step length is exactly
// min(min(1, r/D)·d(P,c), limit) and the move is toward the center.
class MtcStepProperty : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MtcStepProperty, StepLengthContract) {
  const auto [dim, r] = GetParam();
  stats::Rng rng({stats::hash_name("mtc-step"), static_cast<std::uint64_t>(dim),
                  static_cast<std::uint64_t>(r)});
  MoveToCenter mtc;
  for (int rep = 0; rep < 40; ++rep) {
    const double D = rng.uniform(1.0, 8.0);
    const double limit = rng.uniform(0.5, 3.0);
    const auto params = make_params(D, limit);
    sim::RequestBatch batch;
    for (int i = 0; i < r; ++i) {
      Point v(dim);
      for (int d = 0; d < dim; ++d) v[d] = rng.uniform(-20.0, 20.0);
      batch.requests.push_back(v);
    }
    Point server(dim);
    for (int d = 0; d < dim; ++d) server[d] = rng.uniform(-20.0, 20.0);

    const Point next = mtc.decide(make_view(server, batch, params, limit));
    const Point center = med::closest_center(batch.requests, server);
    const double dist = geo::distance(server, center);
    const double expected =
        std::min(std::min(1.0, static_cast<double>(r) / D) * dist, limit);
    EXPECT_NEAR(geo::distance(server, next), expected, 1e-7 * (1.0 + dist));
    // Collinear with the center direction: walking further along must reach c.
    EXPECT_NEAR(geo::distance(server, next) + geo::distance(next, center), dist,
                1e-6 * (1.0 + dist));
  }
}

INSTANTIATE_TEST_SUITE_P(DimsAndSizes, MtcStepProperty,
                         ::testing::Combine(::testing::Values(1, 2, 3, 8),
                                            ::testing::Values(1, 2, 3, 7)));

}  // namespace
}  // namespace mobsrv::alg
