// Unit tests for adversary/workloads.hpp and adversary/mobility.hpp: the
// realistic request/agent generators behind experiments E4, E7, E8, E12.
#include "adversary/workloads.hpp"

#include <gtest/gtest.h>

#include "adversary/mobility.hpp"
#include "geometry/aabb.hpp"

namespace mobsrv::adv {
namespace {

using geo::Point;

TEST(GaussianAround, CentersAndSpreads) {
  stats::Rng rng(1);
  stats::Rng rng2(1);
  const Point c{5.0, -5.0};
  // Determinism.
  EXPECT_EQ(gaussian_around(c, 1.0, rng), gaussian_around(c, 1.0, rng2));
  // Statistical center.
  Point mean = Point::zero(2);
  const int n = 4000;
  for (int i = 0; i < n; ++i) mean += gaussian_around(c, 2.0, rng);
  mean /= n;
  EXPECT_NEAR(mean[0], 5.0, 0.15);
  EXPECT_NEAR(mean[1], -5.0, 0.15);
}

TEST(RandomUnitVector, UnitNormAllDims) {
  stats::Rng rng(2);
  for (const int dim : {1, 2, 3, 8}) {
    for (int i = 0; i < 20; ++i)
      EXPECT_NEAR(random_unit_vector(dim, rng).norm(), 1.0, 1e-12);
  }
}

TEST(RandomUnitVector, OneDimensionalIsSignOnly) {
  stats::Rng rng(3);
  bool plus = false, minus = false;
  for (int i = 0; i < 50; ++i) {
    const double v = random_unit_vector(1, rng)[0];
    EXPECT_NEAR(std::abs(v), 1.0, 1e-12);
    (v > 0 ? plus : minus) = true;
  }
  EXPECT_TRUE(plus && minus);
}

TEST(DriftingHotspot, RespectsBatchBounds) {
  DriftingHotspotParams p;
  p.horizon = 200;
  p.r_min = 2;
  p.r_max = 5;
  stats::Rng rng(4);
  const sim::Instance inst = make_drifting_hotspot(p, rng);
  EXPECT_EQ(inst.horizon(), 200u);
  const auto [lo, hi] = inst.request_bounds();
  EXPECT_GE(lo, 2u);
  EXPECT_LE(hi, 5u);
  EXPECT_EQ(inst.dim(), 2);
  EXPECT_EQ(inst.params().order, sim::ServiceOrder::kMoveThenServe);
}

TEST(DriftingHotspot, HotspotActuallyDrifts) {
  DriftingHotspotParams p;
  p.horizon = 400;
  p.drift_speed = 1.0;
  p.spread = 0.1;
  stats::Rng rng(5);
  const sim::Instance inst = make_drifting_hotspot(p, rng);
  // Requests late in the sequence should be far from the start (a random
  // walk of 400 unit-ish steps wanders).
  geo::Aabb box;
  for (const geo::Point v : inst.step(inst.horizon() - 1)) box.extend(v);
  // Not a sharp statement — just that the cloud left the origin.
  EXPECT_GT(geo::distance(box.center(), inst.start()), 1.0);
}

TEST(DriftingHotspot, Deterministic) {
  DriftingHotspotParams p;
  stats::Rng a(6), b(6);
  const sim::Instance ia = make_drifting_hotspot(p, a);
  const sim::Instance ib = make_drifting_hotspot(p, b);
  for (std::size_t t = 0; t < ia.horizon(); ++t) {
    ASSERT_EQ(ia.step(t).size(), ib.step(t).size());
    for (std::size_t i = 0; i < ia.step(t).size(); ++i)
      EXPECT_EQ(ia.step(t)[i], ib.step(t)[i]);
  }
}

TEST(Commute, AlternatesBetweenSites) {
  CommuteParams p;
  p.horizon = 128;
  p.period = 32;
  p.site_distance = 20.0;
  p.spread = 0.01;
  stats::Rng rng(7);
  const sim::Instance inst = make_commute(p, rng);
  // First block near site A (x = −10), second near B (x = +10).
  EXPECT_NEAR(inst.step(0)[0][0], -10.0, 1.0);
  EXPECT_NEAR(inst.step(32)[0][0], 10.0, 1.0);
  EXPECT_NEAR(inst.step(64)[0][0], -10.0, 1.0);
  EXPECT_NEAR(inst.step(96)[0][0], 10.0, 1.0);
}

TEST(Bursts, BetweenRminAndRmax) {
  BurstParams p;
  p.horizon = 500;
  p.r_min = 1;
  p.r_max = 16;
  p.burst_probability = 0.25;
  stats::Rng rng(8);
  const sim::Instance inst = make_bursts(p, rng);
  int bursts = 0;
  for (std::size_t t = 0; t < inst.horizon(); ++t) {
    const auto step = inst.step(t);
    EXPECT_TRUE(step.size() == 1 || step.size() == 16);
    if (step.size() == 16) ++bursts;
  }
  EXPECT_NEAR(bursts, 125, 40);  // ~25% of 500
}

TEST(UniformNoise, StaysInBox) {
  UniformNoiseParams p;
  p.horizon = 100;
  p.half_width = 4.0;
  stats::Rng rng(9);
  const sim::Instance inst = make_uniform_noise(p, rng);
  for (std::size_t t = 0; t < inst.horizon(); ++t)
    for (const geo::Point v : inst.step(t))
      for (int d = 0; d < v.dim(); ++d) {
        EXPECT_GE(v[d], -4.0);
        EXPECT_LE(v[d], 4.0);
      }
}

TEST(RandomWaypoint, RespectsSpeedLimit) {
  RandomWaypointParams p;
  p.horizon = 500;
  p.speed = 1.5;
  stats::Rng rng(10);
  const Point start = Point::zero(2);
  const sim::AgentPath path = make_random_waypoint(p, start, rng);
  ASSERT_EQ(path.positions.size(), 500u);
  Point prev = start;
  for (const auto& pos : path.positions) {
    EXPECT_LE(geo::distance(prev, pos), 1.5 * (1.0 + 1e-9));
    prev = pos;
  }
}

TEST(RandomWaypoint, ActuallyMovesAndPauses) {
  RandomWaypointParams p;
  p.horizon = 400;
  p.max_pause = 4;
  stats::Rng rng(11);
  const sim::AgentPath path = make_random_waypoint(p, Point::zero(2), rng);
  int moves = 0, stays = 0;
  Point prev = Point::zero(2);
  for (const auto& pos : path.positions) {
    (geo::distance(prev, pos) > 1e-12 ? moves : stays)++;
    prev = pos;
  }
  EXPECT_GT(moves, 100);
  EXPECT_GT(stays, 5);
}

TEST(GaussMarkov, RespectsSpeedLimit) {
  GaussMarkovParams p;
  p.horizon = 500;
  p.speed = 2.0;
  stats::Rng rng(12);
  const sim::AgentPath path = make_gauss_markov(p, Point::zero(2), rng);
  Point prev = Point::zero(2);
  for (const auto& pos : path.positions) {
    EXPECT_LE(geo::distance(prev, pos), 2.0 * (1.0 + 1e-9));
    prev = pos;
  }
}

TEST(GaussMarkov, VelocityHasMemory) {
  // With alpha near 1 the heading changes slowly: consecutive step vectors
  // correlate positively on average.
  GaussMarkovParams p;
  p.horizon = 400;
  p.alpha = 0.95;
  p.noise_fraction = 0.2;
  stats::Rng rng(13);
  const sim::AgentPath path = make_gauss_markov(p, Point::zero(2), rng);
  double corr = 0.0;
  int count = 0;
  Point prev_step = path.positions[0];
  for (std::size_t t = 1; t < path.positions.size(); ++t) {
    const Point step = path.positions[t] - path.positions[t - 1];
    if (prev_step.norm() > 1e-9 && step.norm() > 1e-9) {
      corr += prev_step.normalized().dot(step.normalized());
      ++count;
    }
    prev_step = step;
  }
  EXPECT_GT(corr / count, 0.5);
}

TEST(ZigZag, PeriodicReversals) {
  ZigZagParams p;
  p.horizon = 64;
  p.half_period = 8;
  p.speed = 1.0;
  const sim::AgentPath path = make_zigzag(p, Point::zero(1));
  // Walks +1 for 8 steps, then −1 for 8 steps, returning to the origin.
  EXPECT_NEAR(path.positions[7][0], 8.0, 1e-12);
  EXPECT_NEAR(path.positions[15][0], 0.0, 1e-12);
  EXPECT_NEAR(path.positions[23][0], 8.0, 1e-12);
}

TEST(MobilityPaths, ComposeIntoValidMovingClientInstances) {
  stats::Rng rng(14);
  const Point start = Point::zero(2);
  sim::MovingClientInstance mc;
  mc.start = start;
  mc.server_speed = 1.0;
  mc.agent_speed = 1.0;
  mc.move_cost_weight = 2.0;
  RandomWaypointParams rw;
  rw.horizon = 200;
  rw.speed = 1.0;
  GaussMarkovParams gm;
  gm.horizon = 200;
  gm.speed = 1.0;
  mc.agents.push_back(make_random_waypoint(rw, start, rng));
  mc.agents.push_back(make_gauss_markov(gm, start, rng));
  EXPECT_NO_THROW(mc.validate());
  const sim::Instance inst = sim::to_instance(mc);
  EXPECT_EQ(inst.step(0).size(), 2u);
}

}  // namespace
}  // namespace mobsrv::adv
