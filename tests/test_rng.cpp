// Unit tests for stats/rng.hpp: determinism (the property the whole
// experiment harness rests on), distribution sanity, and key mixing.
#include "stats/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "stats/summary.hpp"

namespace mobsrv::stats {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDifferentStreams) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(7);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(a());
  a.reseed(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a(), first[static_cast<std::size_t>(i)]);
}

TEST(Rng, KeyListConstructorIsOrderSensitive) {
  Rng ab({1, 2}), ba({2, 1});
  EXPECT_NE(ab(), ba());
}

TEST(Rng, SplitProducesIndependentChild) {
  Rng parent(99);
  Rng child = parent.split();
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (parent() == child()) ++same;
  EXPECT_LT(same, 3);
}

TEST(MixKeys, Deterministic) {
  EXPECT_EQ(mix_keys({1, 2, 3}), mix_keys({1, 2, 3}));
  EXPECT_NE(mix_keys({1, 2, 3}), mix_keys({1, 2, 4}));
  EXPECT_NE(mix_keys({1, 2}), mix_keys({2, 1}));
}

TEST(HashName, StableAndDistinct) {
  EXPECT_EQ(hash_name("theorem1"), hash_name("theorem1"));
  EXPECT_NE(hash_name("theorem1"), hash_name("theorem2"));
  EXPECT_NE(hash_name(""), hash_name("a"));
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(5);
  Summary s;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    s.add(u);
  }
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
  EXPECT_NEAR(s.variance(), 1.0 / 12.0, 0.005);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 7.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 7.0);
  }
}

TEST(Rng, UniformIntCoversRangeUniformly) {
  Rng rng(7);
  std::vector<int> counts(6, 0);
  for (int i = 0; i < 60000; ++i) {
    const auto v = rng.uniform_int(10, 15);
    ASSERT_GE(v, 10);
    ASSERT_LE(v, 15);
    ++counts[static_cast<std::size_t>(v - 10)];
  }
  for (const int c : counts) EXPECT_NEAR(c, 10000, 500);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(8);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(4, 4), 4);
}

TEST(Rng, UniformIntInvalidRangeThrows) {
  Rng rng(9);
  EXPECT_THROW((void)rng.uniform_int(3, 2), ContractViolation);
}

TEST(Rng, CoinIsFair) {
  Rng rng(10);
  int heads = 0;
  for (int i = 0; i < 20000; ++i)
    if (rng.coin()) ++heads;
  EXPECT_NEAR(heads, 10000, 300);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 20000; ++i)
    if (rng.bernoulli(0.2)) ++hits;
  EXPECT_NEAR(hits, 4000, 250);
}

TEST(Rng, NormalMoments) {
  Rng rng(12);
  Summary s;
  for (int i = 0; i < 40000; ++i) s.add(rng.normal());
  EXPECT_NEAR(s.mean(), 0.0, 0.02);
  EXPECT_NEAR(s.stddev(), 1.0, 0.02);
}

TEST(Rng, NormalWithParameters) {
  Rng rng(13);
  Summary s;
  for (int i = 0; i < 40000; ++i) s.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(s.mean(), 5.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Rng, ExponentialMeanIsInverseRate) {
  Rng rng(14);
  Summary s;
  for (int i = 0; i < 40000; ++i) {
    const double x = rng.exponential(2.0);
    ASSERT_GE(x, 0.0);
    s.add(x);
  }
  EXPECT_NEAR(s.mean(), 0.5, 0.02);
}

TEST(Rng, ExponentialRejectsNonPositiveRate) {
  Rng rng(15);
  EXPECT_THROW((void)rng.exponential(0.0), ContractViolation);
  EXPECT_THROW((void)rng.exponential(-1.0), ContractViolation);
}

TEST(Rng, PoissonSmallMean) {
  Rng rng(16);
  Summary s;
  for (int i = 0; i < 40000; ++i) s.add(rng.poisson(3.0));
  EXPECT_NEAR(s.mean(), 3.0, 0.06);
  EXPECT_NEAR(s.variance(), 3.0, 0.15);
}

TEST(Rng, PoissonLargeMeanUsesNormalApprox) {
  Rng rng(17);
  Summary s;
  for (int i = 0; i < 20000; ++i) {
    const int x = rng.poisson(100.0);
    ASSERT_GE(x, 0);
    s.add(x);
  }
  EXPECT_NEAR(s.mean(), 100.0, 1.0);
}

TEST(Rng, PoissonZeroMean) {
  Rng rng(18);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.poisson(0.0), 0);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  EXPECT_EQ(Rng::min(), 0u);
  EXPECT_EQ(Rng::max(), ~std::uint64_t{0});
}

// Keyed construction: the (experiment, row, trial) scheme used everywhere
// must give distinct, reproducible streams.
TEST(Rng, KeyedStreamsAreReproducibleAndDistinct) {
  std::set<std::uint64_t> firsts;
  for (std::uint64_t row = 0; row < 10; ++row) {
    for (std::uint64_t trial = 0; trial < 10; ++trial) {
      Rng a({hash_name("e1"), row, trial});
      Rng b({hash_name("e1"), row, trial});
      const auto v = a();
      EXPECT_EQ(v, b());
      firsts.insert(v);
    }
  }
  EXPECT_EQ(firsts.size(), 100u);  // no collisions across keys
}

}  // namespace
}  // namespace mobsrv::stats
