// Unit + property tests for median/geometric_median.hpp: the median *set*
// (point vs segment) and MtC's closest-center tie-break — Section 4's "if c
// is not unique, pick the one minimising d(P_Alg, c)".
#include "median/geometric_median.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "stats/rng.hpp"

namespace mobsrv::med {
namespace {

using geo::Point;

TEST(MedianSet, SingleRequestIsThePoint) {
  const std::vector<Point> pts{{3.0, 4.0}};
  const MedianSet s = median_set(pts);
  EXPECT_TRUE(s.unique());
  EXPECT_EQ(s.segment.a, pts[0]);
  EXPECT_EQ(s.method, MedianMethod::kSinglePoint);
  EXPECT_DOUBLE_EQ(s.objective, 0.0);
}

TEST(MedianSet, TwoRequestsSpanSegment) {
  const std::vector<Point> pts{{0.0, 0.0}, {4.0, 0.0}};
  const MedianSet s = median_set(pts);
  EXPECT_FALSE(s.unique());
  EXPECT_EQ(s.method, MedianMethod::kCollinear);
  // Minimiser set = the segment between the two points; objective = their
  // distance everywhere on it.
  EXPECT_DOUBLE_EQ(s.objective, 4.0);
  EXPECT_NEAR(s.segment.length(), 4.0, 1e-12);
}

TEST(MedianSet, CollinearOddCountUniquePoint) {
  const std::vector<Point> pts{{0.0, 0.0}, {1.0, 1.0}, {3.0, 3.0}};
  const MedianSet s = median_set(pts);
  EXPECT_TRUE(s.unique());
  EXPECT_NEAR(geo::distance(s.segment.a, Point{1.0, 1.0}), 0.0, 1e-9);
  EXPECT_EQ(s.method, MedianMethod::kCollinear);
}

TEST(MedianSet, CollinearEvenCountSegmentBetweenMiddleTwo) {
  const std::vector<Point> pts{{0.0}, {1.0}, {5.0}, {9.0}};
  const MedianSet s = median_set(pts);
  EXPECT_FALSE(s.unique());
  EXPECT_NEAR(s.segment.a[0], 1.0, 1e-12);
  EXPECT_NEAR(s.segment.b[0], 5.0, 1e-12);
}

TEST(MedianSet, AllCoincidentIsSinglePoint) {
  const std::vector<Point> pts{{2.0, 2.0}, {2.0, 2.0}, {2.0, 2.0}, {2.0, 2.0}};
  const MedianSet s = median_set(pts);
  EXPECT_TRUE(s.unique());
  EXPECT_EQ(s.segment.a, pts[0]);
}

TEST(MedianSet, NonCollinearUsesWeiszfeld) {
  const std::vector<Point> pts{{0.0, 0.0}, {2.0, 0.0}, {1.0, 2.0}};
  const MedianSet s = median_set(pts);
  EXPECT_TRUE(s.unique());
  EXPECT_EQ(s.method, MedianMethod::kWeiszfeld);
  EXPECT_GT(s.iterations, 0);
}

TEST(MedianSet, WeightsRespectedInCollinearCase) {
  const std::vector<Point> pts{{0.0, 0.0}, {10.0, 0.0}};
  const std::vector<double> w{5.0, 1.0};
  const MedianSet s = median_set(pts, w);
  EXPECT_TRUE(s.unique());
  EXPECT_EQ(s.segment.a, pts[0]);
}

TEST(ClosestCenter, UniqueMedianIgnoresAnchor) {
  const std::vector<Point> pts{{0.0, 0.0}, {2.0, 0.0}, {1.0, 2.0}};
  const Point far_anchor{100.0, 100.0};
  const Point near_anchor{1.0, 0.5};
  EXPECT_NEAR(geo::distance(closest_center(pts, far_anchor), closest_center(pts, near_anchor)),
              0.0, 1e-7);
}

TEST(ClosestCenter, TwoRequestsProjectAnchorOntoSegment) {
  const std::vector<Point> pts{{0.0, 0.0}, {10.0, 0.0}};
  // Anchor above the middle: projection lands inside.
  EXPECT_NEAR(geo::distance(closest_center(pts, Point{4.0, 3.0}), Point{4.0, 0.0}), 0.0, 1e-12);
  // Anchor beyond an endpoint: clamps to it.
  EXPECT_EQ(closest_center(pts, Point{-5.0, 1.0}), pts[0]);
  EXPECT_EQ(closest_center(pts, Point{50.0, -2.0}), pts[1]);
}

TEST(ClosestCenter, AnchorInsideMedianIntervalStaysPut) {
  // 1-D even batch: median interval [1, 5]; a server already inside it
  // should not be asked to move at all (this is what makes MtC "lazy" when
  // it is already central).
  const std::vector<Point> pts{{0.0}, {1.0}, {5.0}, {9.0}};
  const Point anchor{3.0};
  EXPECT_EQ(closest_center(pts, anchor), anchor);
}

TEST(ClosestCenter, DimensionMismatchThrows) {
  const std::vector<Point> pts{{0.0, 0.0}, {1.0, 0.0}};
  EXPECT_THROW((void)closest_center(pts, Point{0.0}), mobsrv::ContractViolation);
}

TEST(BruteForceMedian, RejectsHighDimension) {
  std::vector<Point> pts;
  Point p(5);
  pts.push_back(p);
  EXPECT_THROW((void)brute_force_median(pts), mobsrv::ContractViolation);
}

// Property: the closest center (a) achieves the minimal objective and (b)
// no other minimiser is closer to the anchor. Verified against dense
// sampling of candidate minimisers.
class ClosestCenterProperty : public ::testing::TestWithParam<int> {};

TEST_P(ClosestCenterProperty, IsMinimiserAndClosest) {
  const int dim = GetParam();
  stats::Rng rng({stats::hash_name("closest-center"), static_cast<std::uint64_t>(dim)});
  for (int rep = 0; rep < 30; ++rep) {
    const int r = static_cast<int>(rng.uniform_int(1, 6));
    std::vector<Point> pts;
    for (int i = 0; i < r; ++i) {
      Point p(dim);
      for (int d = 0; d < dim; ++d) p[d] = rng.uniform(-5.0, 5.0);
      // Half the reps use collinear batches (duplicate a 1-D pattern).
      pts.push_back(p);
    }
    Point anchor(dim);
    for (int d = 0; d < dim; ++d) anchor[d] = rng.uniform(-8.0, 8.0);

    const MedianSet set = median_set(pts);
    const Point c = closest_center(pts, anchor);

    // (a) optimality of the objective at c.
    const double obj_c = sum_distances(c, pts);
    EXPECT_LE(obj_c, set.objective + 1e-6 * (1.0 + set.objective));

    // (b) among dense samples of the median set, none is closer to the
    // anchor than c.
    for (int k = 0; k <= 20; ++k) {
      const Point cand = set.segment.at(k / 20.0);
      EXPECT_LE(geo::distance(anchor, c), geo::distance(anchor, cand) + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, ClosestCenterProperty, ::testing::Values(1, 2, 3));

// Property: for collinear batches the segment reduction agrees with the
// exact 1-D weighted median computed directly on coordinates.
TEST(MedianSetProperty, CollinearMatchesExplicit1D) {
  stats::Rng rng(stats::hash_name("collinear-1d"));
  for (int rep = 0; rep < 100; ++rep) {
    const int r = static_cast<int>(rng.uniform_int(1, 8));
    std::vector<Point> pts;
    for (int i = 0; i < r; ++i) pts.push_back(Point{rng.uniform(-10.0, 10.0)});
    const MedianSet s = median_set(pts);
    // Objective at both segment ends must equal the dense-scan minimum.
    double scan_min = 1e300;
    for (double x = -10.0; x <= 10.0; x += 0.01)
      scan_min = std::min(scan_min, sum_distances(Point{x}, pts));
    EXPECT_NEAR(s.objective, scan_min, 1e-2 * (1.0 + scan_min));
    EXPECT_LE(s.objective, scan_min + 1e-9);
  }
}

}  // namespace
}  // namespace mobsrv::med
